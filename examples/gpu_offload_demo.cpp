// Demonstrates the paper's offload cycle on the simulated Tesla C2050:
// freeze a real pool of sub-problems on a Taillard instance, ship it to
// the device under both data placements, and dissect where the modeled
// time goes (transfers, kernel, host) and what the occupancy calculator
// says about each placement.
//
//   $ ./gpu_offload_demo --jobs 100 --pool 8192
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "core/protocol.h"
#include "fsp/taillard.h"
#include "gpubb/autotuner.h"
#include "gpubb/gpu_evaluator.h"

int main(int argc, char** argv) {
  using namespace fsbb;

  const CliArgs args = CliArgs::parse(argc, argv, {"jobs", "pool"});
  const int jobs = static_cast<int>(args.get_int_or("jobs", 20));
  const auto pool_size =
      static_cast<std::size_t>(args.get_int_or("pool", 8192));

  const fsp::Instance inst = fsp::taillard_class_representative(jobs, 20);
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());

  std::cout << "instance " << inst.name() << ", device " << device.spec().name
            << ", pool " << pool_size << "\n\n";

  std::cout << "freezing a live pool with a serial best-first run...\n";
  const core::FrozenPool frozen = core::freeze_pool(inst, data, 1024);
  std::cout << "frozen " << frozen.nodes.size() << " nodes, incumbent "
            << frozen.incumbent << "\n\n";

  AsciiTable table("offload cost breakdown by placement (modeled)");
  table.set_header({"placement", "block", "warps/SM", "limited by",
                    "host ms", "h2d ms", "kernel ms", "d2h ms", "speedup"});

  for (const auto policy : {gpubb::PlacementPolicy::kAllGlobal,
                            gpubb::PlacementPolicy::kSharedJmPtm,
                            gpubb::PlacementPolicy::kAuto}) {
    const auto scenario = gpubb::measure_scenario(
        device, inst, data, policy, frozen.nodes, frozen.nodes.size());
    const auto cost = gpubb::model_offload_cycle(scenario, pool_size);
    const auto plan = gpubb::make_placement_plan(policy, data, device.spec());
    table.add_row({to_string(policy),
                   std::to_string(scenario.block_threads),
                   std::to_string(scenario.occupancy.active_warps),
                   to_string(scenario.occupancy.limiter),
                   AsciiTable::num(cost.host_seconds * 1e3),
                   AsciiTable::num(cost.h2d_seconds * 1e3),
                   AsciiTable::num(cost.kernel_seconds * 1e3),
                   AsciiTable::num(cost.d2h_seconds * 1e3),
                   AsciiTable::num(cost.speedup())});
    std::cout << "  " << plan.describe() << "\n";
  }
  std::cout << "\n";
  table.render(std::cout);

  // And a real (functional) offload through the evaluator for good measure.
  gpubb::GpuBoundEvaluator evaluator(device, inst, data,
                                     gpubb::PlacementPolicy::kSharedJmPtm);
  auto batch = frozen.nodes;
  evaluator.evaluate(batch);
  const gpubb::GpuLedger& ledger = evaluator.gpu_ledger();
  std::cout << "\nfunctional offload of the frozen pool: " << batch.size()
            << " bounds computed; " << ledger.transfers.h2d_bytes
            << " B down, " << ledger.transfers.d2h_bytes << " B up, "
            << ledger.counters.total_accesses()
            << " device memory accesses counted\n";
  return 0;
}
