// Async walkthrough: submit jobs to api::SolverService, stream progress
// events, race a deadline, and cancel a job mid-search.
//
//   $ ./async_progress
//
// Three jobs, all on the same 12x8 instance with a deliberately weak
// starting incumbent so the search is long enough to observe:
//
//   1. a full solve with streamed incumbent improvements,
//   2. the same search under a 50 ms hard deadline (partial result,
//      stop_reason "deadline"),
//   3. the same search canceled from the main thread after the first
//      incumbent event (stop_reason "canceled").
//
// Every job returns a consistent SolveReport either way — an early stop is
// a result, not an error.
#include <atomic>
#include <iostream>
#include <thread>

#include "api/service.h"
#include "fsp/taillard.h"

int main() {
  using namespace fsbb;

  const fsp::Instance inst =
      fsp::make_taillard_instance(12, 8, 20260731, "async-12x8");
  api::SolverConfig config;
  config.backend = "cpu-steal";
  config.threads = 4;
  config.initial_ub = inst.total_work();  // weak on purpose: longer search
  config.progress_interval_ms = 20;

  api::SolverService service(api::SolverService::Options{2});

  std::cout << "-- job 1: solve with streamed progress --\n";
  api::SolveHandle full = service.submit(
      inst, config, [](const api::ProgressEvent& event) {
        std::cout << "   " << event.to_json() << "\n";
      });
  const api::SolveReport solved = full.wait_report();
  std::cout << "   optimal " << solved.best_makespan << " ("
            << core::to_string(solved.stop_reason) << ")\n\n";

  std::cout << "-- job 2: the same search under a 50 ms deadline --\n";
  api::SolverConfig bounded = config;
  bounded.deadline_ms = 50;
  const api::SolveReport partial =
      service.submit(inst, bounded).wait_report();
  std::cout << "   stopped: " << core::to_string(partial.stop_reason)
            << ", incumbent " << partial.best_makespan << " after "
            << partial.stats.branched << " branched nodes\n\n";

  std::cout << "-- job 3: cancel after the first incumbent event --\n";
  std::atomic<bool> seen_incumbent{false};
  api::SolveHandle canceled = service.submit(
      inst, config, [&seen_incumbent](const api::ProgressEvent& event) {
        if (event.kind == api::ProgressEvent::Kind::kIncumbent) {
          seen_incumbent.store(true);
        }
      });
  while (!seen_incumbent.load() && !canceled.done()) {
    std::this_thread::yield();
  }
  canceled.cancel();
  const api::SolveReport stopped = canceled.wait_report();
  std::cout << "   stopped: " << core::to_string(stopped.stop_reason)
            << ", incumbent " << stopped.best_makespan
            << " (proven optimal: " << (stopped.proven_optimal ? "yes" : "no")
            << ")\n";

  std::cout << "\nevery stop produced a consistent report: an early stop is "
               "a result, not an error.\n";
  return 0;
}
