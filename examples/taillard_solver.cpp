// Solve (or partially explore) a Taillard benchmark instance with any of
// the library's backends.
//
//   $ ./taillard_solver --id 1 --backend mt --threads 8
//   $ ./taillard_solver --id 21 --backend gpusim --batch 8192 --budget 20000
//   $ ./taillard_solver --jobs 12 --machines 10 --seed 4242 --backend serial
//
// Backends: serial | threads | gpusim | mt. For the hard m = 20 classes use
// --budget to cap the exploration (they are open research problems!).
#include <iostream>
#include <memory>
#include <optional>

#include "common/cli.h"
#include "core/engine.h"
#include "fsp/makespan.h"
#include "fsp/neh.h"
#include "fsp/taillard.h"
#include "gpubb/gpu_evaluator.h"
#include "mtbb/mt_engine.h"

int main(int argc, char** argv) {
  using namespace fsbb;

  const CliArgs args = CliArgs::parse(
      argc, argv,
      {"id", "jobs", "machines", "seed", "backend", "threads", "batch",
       "budget", "time-limit", "placement"});

  const fsp::Instance inst = [&] {
    if (args.has("id")) {
      return fsp::taillard_instance(
          static_cast<int>(args.get_int_or("id", 1)));
    }
    return fsp::make_taillard_instance(
        static_cast<int>(args.get_int_or("jobs", 10)),
        static_cast<int>(args.get_int_or("machines", 5)),
        static_cast<std::int32_t>(args.get_int_or("seed", 873654221)));
  }();
  const auto data = fsp::LowerBoundData::build(inst);
  const std::string backend = args.get_or("backend", "serial");
  const auto budget =
      static_cast<std::uint64_t>(args.get_int_or("budget", 0));

  std::cout << "instance " << inst.name() << " (" << inst.jobs() << "x"
            << inst.machines() << "), backend " << backend << "\n";
  std::cout << "NEH seed UB: " << fsp::neh(inst).makespan << "\n";

  core::SolveResult result;
  if (backend == "mt") {
    mtbb::MtOptions options;
    options.threads =
        static_cast<std::size_t>(args.get_int_or("threads", 4));
    options.node_budget = budget;
    result = mtbb::mt_solve(inst, data, options);
  } else {
    std::unique_ptr<gpusim::SimDevice> device;
    std::unique_ptr<core::BoundEvaluator> evaluator;
    core::EngineOptions options;
    options.node_budget = budget;
    options.time_limit_seconds = args.get_double_or("time-limit", 0);
    if (backend == "serial") {
      evaluator = std::make_unique<core::SerialCpuEvaluator>(inst, data);
    } else if (backend == "threads") {
      evaluator = std::make_unique<core::ThreadedCpuEvaluator>(
          inst, data, static_cast<std::size_t>(args.get_int_or("threads", 4)));
      options.batch_size =
          static_cast<std::size_t>(args.get_int_or("batch", 1024));
    } else if (backend == "gpusim") {
      device = std::make_unique<gpusim::SimDevice>(
          gpusim::DeviceSpec::tesla_c2050());
      const std::string placement = args.get_or("placement", "shared");
      evaluator = std::make_unique<gpubb::GpuBoundEvaluator>(
          *device, inst, data,
          placement == "global" ? gpubb::PlacementPolicy::kAllGlobal
                                : gpubb::PlacementPolicy::kSharedJmPtm);
      options.batch_size =
          static_cast<std::size_t>(args.get_int_or("batch", 8192));
    } else {
      std::cerr << "unknown backend '" << backend
                << "' (serial|threads|gpusim|mt)\n";
      return 1;
    }
    core::BBEngine engine(inst, data, *evaluator, options);
    result = engine.solve();
    std::cout << "evaluator: " << evaluator->name() << "\n";
  }

  std::cout << (result.proven_optimal ? "OPTIMAL " : "best-so-far ")
            << "makespan: " << result.best_makespan << "\n"
            << "branched " << result.stats.branched << ", bounded "
            << result.stats.evaluated << ", pruned " << result.stats.pruned
            << ", leaves " << result.stats.leaves << "\n"
            << "wall time " << result.stats.wall_seconds << " s ("
            << static_cast<int>(result.stats.bounding_fraction() * 100)
            << "% bounding)\n";
  if (!result.best_permutation.empty()) {
    std::cout << "schedule:";
    for (const fsp::JobId job : result.best_permutation) std::cout << " " << job;
    std::cout << "\n";
  }
  return 0;
}
