// Solve (or partially explore) a Taillard benchmark instance with any
// registered backend — a thin wrapper over the Solver facade, showing that
// a complete CLI needs no evaluator or engine wiring at all.
//
//   $ ./taillard_solver --ta 1 --backend multicore --threads 8
//   $ ./taillard_solver --ta 21 --backend gpu-sim --batch 8192 --node-budget 20000
//   $ ./taillard_solver --jobs 12 --machines 10 --seed 4242
//
// Backends: whatever the registry holds (cpu-serial, cpu-threads, callback,
// gpu-sim, adaptive, multicore, ...). For the hard m = 20 classes use
// --node-budget to cap the exploration (they are open research problems!).
#include <iostream>

#include "api/solver.h"
#include "fsp/neh.h"

int main(int argc, char** argv) {
  using namespace fsbb;

  api::SolverConfig config;
  try {
    config = api::SolverConfig::from_argv(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  const std::vector<fsp::Instance> instances =
      api::make_instances(config.instance);
  const fsp::Instance& inst = instances.front();

  std::cout << "instance " << inst.name() << " (" << inst.jobs() << "x"
            << inst.machines() << "), backend " << config.backend << "\n"
            << "NEH seed UB: " << fsp::neh(inst).makespan << "\n\n";

  const api::Solver solver(config);
  std::cout << solver.solve(inst);
  return 0;
}
