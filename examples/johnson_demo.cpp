// Johnson's rule demo: the polynomial 2-machine case that anchors the
// paper's lower bound. Builds a random 2-machine instance, solves it three
// ways — Johnson's rule (O(n log n)), exhaustive search, and the B&B — and
// shows they agree; then shows the lag-extended variant (Mitten) on one
// machine couple of a 20-machine instance, which is exactly what every
// LB1 evaluation does m(m-1)/2 times.
#include <iostream>

#include "common/cli.h"
#include "core/engine.h"
#include "fsp/brute_force.h"
#include "fsp/johnson.h"
#include "fsp/lb1.h"
#include "fsp/makespan.h"
#include "fsp/taillard.h"

int main(int argc, char** argv) {
  using namespace fsbb;

  const CliArgs args = CliArgs::parse(argc, argv, {"jobs", "seed"});
  const int jobs = static_cast<int>(args.get_int_or("jobs", 8));
  const auto seed = static_cast<std::int32_t>(args.get_int_or("seed", 998877));

  const fsp::Instance inst =
      fsp::make_taillard_instance(jobs, 2, seed, "johnson-demo");
  std::cout << "2-machine instance with " << jobs << " jobs (seed " << seed
            << ")\n\n";

  // --- Johnson's rule ---------------------------------------------------
  std::vector<fsp::Time> a, b;
  for (int j = 0; j < jobs; ++j) {
    a.push_back(inst.pt(j, 0));
    b.push_back(inst.pt(j, 1));
  }
  const auto order = fsp::johnson_order(a, b);
  const fsp::Time johnson_ms = fsp::makespan(inst, order);
  std::cout << "Johnson order: ";
  for (const fsp::JobId j : order) std::cout << "J" << j << " ";
  std::cout << " -> makespan " << johnson_ms << "\n";

  // --- exhaustive check ---------------------------------------------------
  const auto brute = fsp::brute_force(inst, jobs);
  std::cout << "brute force (" << brute.schedules_evaluated
            << " schedules): " << brute.makespan << "\n";

  // --- branch and bound ---------------------------------------------------
  const auto data = fsp::LowerBoundData::build(inst);
  core::SerialCpuEvaluator evaluator(inst, data);
  core::BBEngine engine(inst, data, evaluator, core::EngineOptions{});
  const auto result = engine.solve();
  std::cout << "branch-and-bound: " << result.best_makespan << " ("
            << result.stats.branched
            << " nodes branched — LB1 is exact for m = 2, so the tree "
               "collapses)\n";

  if (johnson_ms == brute.makespan && brute.makespan == result.best_makespan) {
    std::cout << "\nall three methods agree.\n";
  } else {
    std::cout << "\nMISMATCH — this is a bug.\n";
    return 1;
  }

  // --- the lag-extended 2-machine relaxation inside LB1 -------------------
  const fsp::Instance big = fsp::taillard_class_representative(20, 20);
  const auto big_data = fsp::LowerBoundData::build(big);
  const int pair = big_data.pairs() / 2;  // some middle machine couple
  const auto [mk, ml] = big_data.mm(pair);
  std::cout << "\nLB1 inner view on " << big.name() << ": machine couple (M"
            << mk << ", M" << ml << ") with per-job lags\n";
  std::vector<fsp::Time> ba, bb, lags;
  for (int j = 0; j < big.jobs(); ++j) {
    ba.push_back(big.pt(j, mk));
    bb.push_back(big.pt(j, ml));
    lags.push_back(big_data.lm(j, pair));
  }
  const auto lag_order = fsp::johnson_order_with_lags(ba, bb, lags);
  const fsp::Time relaxed =
      fsp::two_machine_lag_makespan(lag_order, ba, bb, lags);
  std::cout << "lag-relaxation makespan for this couple: " << relaxed
            << "; LB1(root) = max over all " << big_data.pairs()
            << " couples (+ tails) = "
            << fsp::lb1_from_prefix(big, big_data, {}) << "\n";
  return 0;
}
