// Quickstart: solve one small flow-shop instance with EVERY registered
// backend, purely through the facade — no evaluator or engine is
// constructed by hand anywhere in this file.
//
//   $ ./quickstart
//
// This is the five-minute tour of the public API: SolverConfig selects the
// execution mode, the backend registry builds it, Solver runs it, and the
// structured SolveReport carries the result. All backends prove the same
// optimum (the cross-backend guarantee behind every comparison the paper
// makes); only the operator counts and bounding shares differ.
#include <iostream>

#include "api/backend_registry.h"
#include "api/solver.h"
#include "fsp/taillard.h"

int main() {
  using namespace fsbb;

  // A reproducible 10-job, 5-machine instance from the Taillard generator.
  const fsp::Instance inst = fsp::make_taillard_instance(10, 5, 123456789,
                                                         "quickstart-10x5");
  std::cout << "instance " << inst.name() << ": " << inst.jobs() << " jobs x "
            << inst.machines() << " machines\n\n";

  const api::BackendRegistry& registry = api::BackendRegistry::global();
  for (const std::string& key : registry.keys()) {
    api::SolverConfig config;
    config.backend = key;  // the ONLY per-backend difference

    const api::Solver solver(config);
    const api::SolveReport report = solver.solve(inst);
    std::cout << report << "\n";
  }

  std::cout << "every backend above proved the same optimal makespan from "
               "the same SolverConfig — only the backend key changed.\n";
  return 0;
}
