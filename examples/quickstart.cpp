// Quickstart: build a small flow-shop instance, solve it to optimality
// with the serial branch-and-bound, and print the schedule.
//
//   $ ./quickstart
//
// This is the five-minute tour of the public API: Instance construction,
// LowerBoundData, the engine, and schedule evaluation.
#include <iostream>

#include "core/engine.h"
#include "fsp/makespan.h"
#include "fsp/neh.h"
#include "fsp/taillard.h"

int main() {
  using namespace fsbb;

  // A reproducible 10-job, 5-machine instance from the Taillard generator.
  const fsp::Instance inst = fsp::make_taillard_instance(10, 5, 123456789,
                                                         "quickstart-10x5");
  std::cout << "instance " << inst.name() << ": " << inst.jobs() << " jobs x "
            << inst.machines() << " machines\n";

  // The NEH heuristic provides the initial incumbent ("initial seed UB").
  const fsp::NehResult neh = fsp::neh(inst);
  std::cout << "NEH upper bound: " << neh.makespan << "\n";

  // The six lower-bound structures (PTM, LM, JM, RM, QM, MM) are built once.
  const fsp::LowerBoundData data = fsp::LowerBoundData::build(inst);

  // Serial B&B: best-first selection, LB1 bounding, NEH seed.
  core::SerialCpuEvaluator evaluator(inst, data);
  core::BBEngine engine(inst, data, evaluator, core::EngineOptions{});
  const core::SolveResult result = engine.solve();

  std::cout << "optimal makespan: " << result.best_makespan
            << (result.proven_optimal ? " (proven)" : " (not proven!)")
            << "\n";
  std::cout << "optimal order:   ";
  for (const fsp::JobId job : result.best_permutation) {
    std::cout << " J" << job;
  }
  std::cout << "\n";

  std::cout << "search effort:    " << result.stats.branched
            << " nodes branched, " << result.stats.evaluated
            << " bounds computed, " << result.stats.pruned << " pruned, "
            << result.stats.leaves << " leaves\n";
  std::cout << "bounding share:   "
            << static_cast<int>(result.stats.bounding_fraction() * 100)
            << "% of wall time (the paper's ~98.5% motivation)\n";
  return 0;
}
