// Runtime pool-size auto-tuning, the paper's §VI recommendation: measure
// the kernel on a sample of real nodes, then sweep candidate pool sizes
// through the offload model and pick the throughput argmax.
//
//   $ ./pool_autotune --jobs 200 --min 4096 --max 262144
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "core/protocol.h"
#include "fsp/taillard.h"
#include "gpubb/autotuner.h"

int main(int argc, char** argv) {
  using namespace fsbb;

  const CliArgs args = CliArgs::parse(argc, argv, {"jobs", "min", "max"});
  const int jobs = static_cast<int>(args.get_int_or("jobs", 50));
  const auto min_pool = static_cast<std::size_t>(args.get_int_or("min", 4096));
  const auto max_pool =
      static_cast<std::size_t>(args.get_int_or("max", 262144));

  const fsp::Instance inst = fsp::taillard_class_representative(jobs, 20);
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());

  std::cout << "auto-tuning the offload pool size for " << inst.name()
            << " on " << device.spec().name << "\n\n";

  const core::FrozenPool frozen = core::freeze_pool(inst, data, 1024);
  const auto scenario = gpubb::measure_scenario(
      device, inst, data, gpubb::PlacementPolicy::kSharedJmPtm, frozen.nodes,
      frozen.nodes.size());
  const auto tuned = gpubb::autotune_pool_size(scenario, min_pool, max_pool);

  AsciiTable table("pool-size sweep");
  table.set_header({"pool size", "blocks", "Mnodes/s", "speedup vs serial"});
  for (const auto& point : tuned.curve) {
    table.add_row({std::to_string(point.pool_size),
                   std::to_string(point.pool_size /
                                  static_cast<std::size_t>(
                                      scenario.block_threads)),
                   AsciiTable::num(point.nodes_per_second / 1e6, 3),
                   AsciiTable::num(point.speedup)});
  }
  table.render(std::cout);

  std::cout << "\nrecommended pool size: " << tuned.best_pool_size << " ("
            << AsciiTable::num(tuned.best_nodes_per_second / 1e6, 3)
            << " Mnodes/s modeled)\n"
            << "paper's guidance: small instances peak early (8192), large "
               "ones want the biggest pool (262144)\n";
  return 0;
}
