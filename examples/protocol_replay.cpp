// The paper's §IV experimental protocol as a reusable workflow: freeze a
// pool of live sub-problems once, archive it to a file, then replay the
// exact same workload against different backends — the way the paper makes
// "parallel efficiency" well-defined on instances nobody can solve.
//
//   $ ./protocol_replay --jobs 20 --nodes 512 --file /tmp/ta021.pool
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "core/pool_io.h"
#include "core/protocol.h"
#include "fsp/taillard.h"
#include "gpubb/gpu_evaluator.h"
#include "mtbb/mt_engine.h"

int main(int argc, char** argv) {
  using namespace fsbb;

  const CliArgs args = CliArgs::parse(argc, argv, {"jobs", "nodes", "file"});
  const int jobs = static_cast<int>(args.get_int_or("jobs", 20));
  const auto nodes = static_cast<std::size_t>(args.get_int_or("nodes", 512));
  const std::string path =
      args.get_or("file", std::string("/tmp/fsbb_replay.pool"));

  const fsp::Instance inst = fsp::taillard_class_representative(jobs, 20);
  const auto data = fsp::LowerBoundData::build(inst);

  // Phase 1: generate and archive the frozen workload.
  std::cout << "freezing " << nodes << " live nodes of " << inst.name()
            << "...\n";
  const core::FrozenPool frozen = core::freeze_pool(inst, data, nodes);
  core::write_frozen_pool_file(path, frozen);
  std::cout << "archived to " << path << " (incumbent " << frozen.incumbent
            << ")\n\n";

  // Phase 2: reload and replay with a node budget on every backend.
  const core::FrozenPool loaded = core::read_frozen_pool_file(path);
  constexpr std::uint64_t kBudget = 2000;

  AsciiTable table("replaying the archived workload (budget 2000 branchings)");
  table.set_header({"backend", "branched", "bounded", "best makespan"});

  core::SerialCpuEvaluator serial(inst, data);
  const auto serial_result =
      core::explore_frozen(inst, data, loaded, serial,
                           core::SelectionStrategy::kBestFirst, 1, kBudget);
  table.add_row({serial.name(),
                 AsciiTable::num(static_cast<std::int64_t>(
                     serial_result.stats.branched)),
                 AsciiTable::num(static_cast<std::int64_t>(
                     serial_result.stats.evaluated)),
                 AsciiTable::num(static_cast<std::int64_t>(
                     serial_result.best_makespan))});

  core::ThreadedCpuEvaluator threaded(inst, data, 4);
  const auto threaded_result =
      core::explore_frozen(inst, data, loaded, threaded,
                           core::SelectionStrategy::kBestFirst, 1024, kBudget);
  table.add_row({threaded.name(),
                 AsciiTable::num(static_cast<std::int64_t>(
                     threaded_result.stats.branched)),
                 AsciiTable::num(static_cast<std::int64_t>(
                     threaded_result.stats.evaluated)),
                 AsciiTable::num(static_cast<std::int64_t>(
                     threaded_result.best_makespan))});

  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  gpubb::GpuBoundEvaluator gpu(device, inst, data,
                               gpubb::PlacementPolicy::kSharedJmPtm);
  const auto gpu_result =
      core::explore_frozen(inst, data, loaded, gpu,
                           core::SelectionStrategy::kBestFirst, 4096, kBudget);
  table.add_row({gpu.name(),
                 AsciiTable::num(static_cast<std::int64_t>(
                     gpu_result.stats.branched)),
                 AsciiTable::num(static_cast<std::int64_t>(
                     gpu_result.stats.evaluated)),
                 AsciiTable::num(static_cast<std::int64_t>(
                     gpu_result.best_makespan))});

  table.render(std::cout);
  std::cout << "\nall backends saw the identical frozen node list; different "
               "batch sizes legitimately explore slightly different frontiers "
               "under a budget\n";
  return 0;
}
