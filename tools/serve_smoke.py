#!/usr/bin/env python3
"""Socket-mode smoke test for fsbb_serve --listen.

Spawns the server on an ephemeral port with a one-job-per-tenant quota,
then drives three concurrent clients over real TCP connections:

  * client A (tenant "alpha") parks a long search and is then rejected
    with a structured tenant-quota reason when it over-submits;
  * client B (tenant "beta") solves a small instance to optimality while
    alpha's quota is exhausted — tenants are isolated;
  * client C asks for the metrics registry and asserts the accepted /
    rejected counters reflect the other two.

Finally client A cancels its long job, the server is shut down via the
remote shutdown op, and the process must exit 0.

Usage: serve_smoke.py /path/to/fsbb_serve
"""

import json
import socket
import subprocess
import sys
import threading


class Client:
    """One NDJSON connection to the server."""

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        self.reader = self.sock.makefile("r", encoding="utf-8")

    def send(self, obj):
        self.sock.sendall((json.dumps(obj) + "\n").encode())

    def read_until(self, **fields):
        """Next event whose fields all match (skips progress etc.)."""
        for line in self.reader:
            event = json.loads(line)
            if all(event.get(k) == v for k, v in fields.items()):
                return event
        raise AssertionError(f"connection closed waiting for {fields}")

    def close(self):
        self.sock.close()


def main():
    server = subprocess.Popen(
        [
            sys.argv[1],
            "--listen", "0",
            "--workers", "2",
            "--max-tenant-jobs", "1",
            "--quiet-progress",
            "--allow-remote-shutdown",
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    listening = json.loads(server.stdout.readline())
    assert listening["event"] == "listening", listening
    port = listening["port"]
    print(f"server listening on port {port}")

    alpha = Client(port)
    beta = Client(port)
    monitor = Client(port)

    # Alpha fills its quota with a search that cannot finish quickly (the
    # weak explicit upper bound suppresses the NEH seed).
    alpha.send({
        "op": "submit", "id": "long", "tenant": "alpha",
        "cli": "--jobs 14 --machines 10 --seed 777 --ub 1000000",
    })
    accepted = alpha.read_until(event="accepted", id="long")
    assert accepted["tenant"] == "alpha", accepted

    # Over-quota submit bounces with a structured reason and retry hint.
    alpha.send({
        "op": "submit", "id": "extra", "tenant": "alpha",
        "cli": "--jobs 8 --machines 4 --seed 1",
    })
    rejected = alpha.read_until(event="rejected", id="extra")
    assert rejected["reason"] == "tenant-quota", rejected
    assert rejected["retry_after_ms"] >= 100, rejected
    print(f"alpha over-quota rejected: {rejected}")

    # Beta proceeds concurrently — run it on its own thread so the three
    # connections genuinely overlap on the server.
    def solve_beta():
        beta.send({
            "op": "submit", "id": "b1", "tenant": "beta",
            "cli": "--jobs 8 --machines 4 --seed 1 --backend cpu-serial",
        })
        result = beta.read_until(event="result", id="b1")
        assert result["ok"] and result["stop_reason"] == "optimal", result
        print(f"beta solved: makespan "
              f"{result['report']['result']['best_makespan']}")

    beta_thread = threading.Thread(target=solve_beta)
    beta_thread.start()
    beta_thread.join(timeout=120)
    assert not beta_thread.is_alive(), "beta solve hung"

    # The shared registry saw all of it.
    monitor.send({"op": "metrics"})
    data = monitor.read_until(event="metrics")["data"]
    assert data["admission"]["accepted"] == 2, data["admission"]
    assert data["admission"]["rejected"]["tenant-quota"] == 1, \
        data["admission"]
    assert data["connections"]["opened"] >= 3, data["connections"]
    print(f"metrics: {json.dumps(data['admission'])}")

    # Cancel the parked job, then stop the server remotely.
    alpha.send({"op": "cancel", "id": "long"})
    canceled = alpha.read_until(event="result", id="long")
    assert canceled["stop_reason"] == "canceled", canceled

    monitor.send({"op": "shutdown"})
    for client in (alpha, beta, monitor):
        client.close()
    code = server.wait(timeout=60)
    assert code == 0, f"server exited {code}"
    print("OK: quota enforced, tenants isolated, clean remote shutdown")


if __name__ == "__main__":
    main()
