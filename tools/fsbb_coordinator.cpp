// fsbb_coordinator — multi-process sharded solving (src/dist/).
//
// Grows a root frontier, shards it, and drives N `fsbb_serve --worker`
// child processes with incumbent broadcasting, work rebalancing and
// crash recovery from checkpoints (see src/dist/coordinator.h for the
// wiring diagram). All SolverConfig flags apply and describe the solve
// each worker runs; on top:
//
//   --dist-workers N        worker processes (default 3)
//   --frontier-nodes N      root frontier target size (default 64)
//   --slice-nodes N         worker checkpoint granularity (default 2000)
//   --worker-cmd PATH       worker binary (default: fsbb_serve found next
//                           to this binary; --worker is appended)
//   --max-respawns N        worker deaths tolerated (default 3)
//   --kill-worker I         fault injection: SIGKILL worker I after its
//                           checkpoint ack (tests/CI; default off)
//   --kill-after-checkpoints N   ...after N acks (default 1)
//   --json                  one JSON report line instead of text
//   --verbose               coordinator event log on stderr
//
// Examples:
//   $ fsbb_coordinator --jobs 12 --machines 6 --dist-workers 3
//   $ fsbb_coordinator --ta 1 --backend cpu-threads --dist-workers 4 --json
//   $ fsbb_coordinator --jobs 12 --machines 6 --kill-worker 1 --verbose
#include <iostream>
#include <string>
#include <vector>

#include "api/solver_config.h"
#include "dist/coordinator.h"

int main(int argc, char** argv) {
  using namespace fsbb;

  api::SolverConfig config;
  dist::CoordinatorOptions options;
  options.workers = 3;
  bool json = false;
  CliArgs args;
  try {
    std::vector<std::string> known = api::SolverConfig::cli_flags();
    known.insert(known.end(),
                 {"dist-workers", "frontier-nodes", "slice-nodes",
                  "worker-cmd", "max-respawns", "kill-worker",
                  "kill-after-checkpoints"});
    args = CliArgs::parse(argc, argv, known, {"json", "verbose"});
    config = api::SolverConfig::from_cli(args);

    const std::int64_t workers = args.get_int_or("dist-workers", 3);
    if (workers < 1) throw CheckFailure("--dist-workers must be >= 1");
    options.workers = static_cast<std::size_t>(workers);
    options.frontier_nodes =
        static_cast<std::size_t>(args.get_int_or("frontier-nodes", 64));
    options.slice_nodes =
        static_cast<std::uint64_t>(args.get_int_or("slice-nodes", 2000));
    options.max_respawns =
        static_cast<std::size_t>(args.get_int_or("max-respawns", 3));
    options.kill_worker = static_cast<int>(args.get_int_or("kill-worker", -1));
    options.kill_after_checkpoints = static_cast<std::size_t>(
        args.get_int_or("kill-after-checkpoints", 1));
    const std::string worker_cmd = args.get_or("worker-cmd", "");
    if (!worker_cmd.empty()) options.worker_command = {worker_cmd, "--worker"};
    json = args.has("json");
    if (args.has("verbose")) {
      options.on_log = [](const std::string& line) {
        std::cerr << "# " << line << "\n";
      };
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n\nflags: ";
    for (const std::string& f : api::SolverConfig::cli_flags()) {
      std::cerr << "--" << f << " ";
    }
    std::cerr << "--dist-workers --frontier-nodes --slice-nodes "
                 "--worker-cmd --max-respawns --kill-worker "
                 "--kill-after-checkpoints --json --verbose\n";
    return 1;
  }

  try {
    std::vector<fsp::Instance> instances = api::make_instances(config.instance);
    if (instances.size() != 1) {
      std::cerr << "fsbb_coordinator shards one instance (got --count "
                << instances.size() << ")\n";
      return 1;
    }
    dist::Coordinator coordinator(std::move(instances.front()), config,
                                  options);
    const api::SolveReport report = coordinator.run();
    if (json) {
      std::cout << report.to_json() << "\n";
    } else {
      std::cout << report;
      const dist::DistSummary& s = coordinator.summary();
      std::cout << "  dist: " << s.shards_completed << "/"
                << s.shards_dispatched << " shards, " << s.broadcasts
                << " incumbent broadcasts, " << s.rebalances
                << " rebalances, " << s.respawns << " respawns\n";
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  return 0;
}
