// fsbb_serve — the long-running NDJSON solve server (stdio or TCP).
//
// Front door of the library as a process: requests are one JSON object
// per line, events are one JSON object per line (NDJSON both ways). The
// protocol and all multi-tenant behavior — per-tenant admission quotas,
// the canonical-instance result cache with incumbent warm starts, the
// metrics registry — live in src/serve/; this file only wires a
// transport to it:
//
//   fsbb_serve                 stdio daemon: one peer over stdin/stdout
//   fsbb_serve --listen 5555   TCP server on 127.0.0.1:5555, any number
//                              of concurrent connections multiplexed
//                              onto one solver pool + one result cache
//   fsbb_serve --listen 0      ephemeral port; the first stdout line is
//                              {"event":"listening","port":N}
//
// Flags:
//   --workers N               concurrent jobs (default 8)
//   --quiet-progress          suppress progress events (results still flow)
//   --listen PORT             TCP mode on 127.0.0.1 (0 = ephemeral)
//   --max-line-bytes N        request-line cap, both modes (default 1 MiB);
//                             longer lines answer {"event":"error",...}
//   --max-tenant-jobs N       per-tenant concurrent job quota (default 4,
//                             0 = unlimited)
//   --max-queue-depth N       service backlog ceiling (default 256, 0 =
//                             unlimited; low-priority sheds at 50%,
//                             normal at 85%)
//   --idle-timeout-ms N       TCP: drop connections idle this long (0 = off)
//   --max-connections N       TCP: concurrent connections (default 64)
//   --cache-capacity N        canonical result-cache entries (default 1024)
//   --metrics-interval-ms N   log a metrics line to stderr this often
//   --allow-remote-shutdown   TCP: {"op":"shutdown"} stops the whole
//                             server instead of one session (CI teardown)
//   --worker                  distributed worker mode (dist/ shard
//                             protocol; see src/dist/worker.h)
//
// Requests:
//   {"op":"submit","id":"j1","cli":"--jobs 12 --machines 8 --backend cpu-steal",
//    "tenant":"acme","priority":"low","cache":"use"}
//   {"op":"submit","id":"j2","cli":"--backend cpu-steal",
//    "instance":{"name":"acme-1","ptm":[[5,3,2],[1,4,4]]}}   explicit matrix
//   {"op":"cancel","id":"j1"}
//   {"op":"status"}            one status event per known job
//   {"op":"metrics"}           full serve::Metrics registry + queue snapshot
//   {"op":"shutdown"}          stdio: cancel everything, drain, exit;
//                              TCP: close this session (see above)
//   (stdio EOF waits for in-flight jobs, then exits.)
//
// The "cli" payload is the exact flag language of fsbb_solve /
// SolverConfig::from_argv — one config surface for every front end; the
// top-level "tenant"/"priority" fields override their cli equivalents.
//
// Events: accepted (with tenant/priority/cache disposition), rejected
// (admission rejects carry "reason" + "retry_after_ms"), progress,
// result, status, metrics, error. Job ids are forgotten once their
// result event streamed, so an id may be reused afterwards.
#include <csignal>
#include <iostream>
#include <memory>
#include <string>

#include "common/cli.h"
#include "common/json.h"
#include "dist/transport.h"
#include "dist/worker.h"
#include "serve/line_io.h"
#include "serve/listener.h"
#include "serve/server.h"

namespace {

using namespace fsbb;

serve::Listener* g_listener = nullptr;

void handle_signal(int) {
  if (g_listener != nullptr) g_listener->request_stop();
}

std::size_t size_flag(const CliArgs& args, const std::string& name,
                      std::int64_t fallback, std::int64_t min_value) {
  const std::int64_t v = args.get_int_or(name, fallback);
  if (v < min_value) {
    throw CheckFailure("--" + name + " must be >= " +
                       std::to_string(min_value));
  }
  return static_cast<std::size_t>(v);
}

int run_stdio(serve::Server& server) {
  auto client = std::make_shared<serve::Client>(
      server, [](const std::string& json) {
        // The Client serializes sink calls; this just writes.
        std::cout << json << "\n" << std::flush;
      });

  std::string line;
  bool shutdown = false;
  while (!shutdown) {
    const serve::LineStatus status = serve::read_line_bounded(
        std::cin, line, server.options().max_line_bytes);
    if (status == serve::LineStatus::kEof) break;
    if (status == serve::LineStatus::kOversized) {
      client->handle_oversized_line();
      continue;
    }
    // CRLF clients (netcat -C, telnet, Windows pipes) terminate every
    // line with \r\n, and interactive sessions send blank keep-alive
    // lines; neither must reach the JSON parser.
    if (!dist::normalize_transport_line(line)) continue;
    shutdown = client->handle_line(line) == serve::Client::Action::kShutdown;
  }
  if (shutdown) client->cancel_all();  // explicit shutdown: stop everything
  client->drain();  // EOF: let in-flight jobs finish, results still stream
  return 0;
}

int run_listener(serve::Server& server, std::uint16_t port) {
  serve::Listener listener(server, {.port = port});
  g_listener = &listener;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  JsonWriter o;
  o.str("event", "listening");
  o.integer("port", listener.port());
  std::cout << o.done() << "\n" << std::flush;

  listener.serve();
  g_listener = nullptr;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions options;
  bool listen = false;
  std::uint16_t port = 0;
  try {
    const CliArgs args = CliArgs::parse(
        argc, argv,
        {"workers", "listen", "max-line-bytes", "max-tenant-jobs",
         "max-queue-depth", "idle-timeout-ms", "max-connections",
         "cache-capacity", "metrics-interval-ms"},
        {"quiet-progress", "worker", "allow-remote-shutdown"});
    if (args.has("worker")) {
      return dist::run_worker(std::cin, std::cout);
    }
    options.workers = size_flag(args, "workers", 8, 1);
    options.quiet_progress = args.has("quiet-progress");
    options.max_line_bytes = size_flag(args, "max-line-bytes", 1 << 20, 2);
    options.admission.max_tenant_jobs =
        size_flag(args, "max-tenant-jobs", 4, 0);
    options.admission.max_queue_depth =
        size_flag(args, "max-queue-depth", 256, 0);
    options.idle_timeout_ms = static_cast<std::uint64_t>(
        size_flag(args, "idle-timeout-ms", 0, 0));
    options.max_connections = size_flag(args, "max-connections", 64, 1);
    options.cache.capacity = size_flag(args, "cache-capacity", 1024, 1);
    options.metrics_interval_ms = static_cast<std::uint64_t>(
        size_flag(args, "metrics-interval-ms", 0, 0));
    options.allow_remote_shutdown = args.has("allow-remote-shutdown");
    if (args.has("listen")) {
      const std::int64_t p = args.get_int_or("listen", 0);
      if (p < 0 || p > 65535) {
        throw CheckFailure("--listen must be a port in [0, 65535]");
      }
      listen = true;
      port = static_cast<std::uint16_t>(p);
    }
  } catch (const std::exception& e) {
    std::cerr << e.what()
              << "\nusage: fsbb_serve [--workers N] [--quiet-progress]"
                 " [--listen PORT] [--max-line-bytes N]"
                 " [--max-tenant-jobs N] [--max-queue-depth N]"
                 " [--idle-timeout-ms N] [--max-connections N]"
                 " [--cache-capacity N] [--metrics-interval-ms N]"
                 " [--allow-remote-shutdown] [--worker]"
                 "  (NDJSON requests on stdin or the socket)\n";
    return 1;
  }

  serve::Server server(options);
  return listen ? run_listener(server, port) : run_stdio(server);
}
