// fsbb_serve — the long-running NDJSON job daemon over api::SolverService.
//
// Reads one JSON request object per stdin line, multiplexes the submitted
// jobs over the service's worker pool, and emits one JSON event object per
// stdout line (NDJSON both ways). This is the process-level front door of
// the library: a scheduler, queue or socket bridge talks to a pool of
// fsbb_serve processes without linking anything.
//
// Flags:
//   --workers N               concurrent jobs (default 8)
//   --quiet-progress          suppress progress events (results still flow)
//   --worker                  distributed worker mode: speak the dist/
//                             shard protocol (solve/inject_incumbent/
//                             checkpoint/recall) instead of the job-daemon
//                             protocol below; see src/dist/worker.h
//
// Requests:
//   {"op":"submit","id":"j1","cli":"--jobs 12 --machines 8 --backend cpu-steal"}
//   {"op":"submit","id":"j2","cli":["--ta","1","--deadline-ms","500"]}
//   {"op":"cancel","id":"j1"}
//   {"op":"status"}              one status event per known job
//   {"op":"status","id":"j2"}
//   {"op":"shutdown"}            cancel everything, drain, exit
//   (EOF waits for in-flight jobs, then exits.)
//
// The "cli" payload is the exact flag language of fsbb_solve /
// SolverConfig::from_argv — one config surface for every front end.
//
// Job ids are forgotten once their result event streamed (the daemon does
// not accumulate finished jobs), so an id may be reused afterwards; a
// resubmit racing the eviction by a hair can be rejected with "job id
// already in use" — retry after the result line.
//
// Events (all single-line JSON):
//   {"event":"accepted","id":"j1","job":1}
//   {"event":"rejected","id":"j1","error":"..."}
//   {"event":"progress","id":"j1","data":{...ProgressEvent...}}
//   {"event":"result","id":"j1","ok":true,"stop_reason":"optimal",
//    "report":{...SolveReport...}}
//   {"event":"result","id":"j1","ok":false,"error":"..."}
//   {"event":"status","id":"j1","state":"running"}
//   {"event":"error","error":"..."}        (malformed request)
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/service.h"
#include "api/solver_config.h"
#include "common/cli.h"
#include "common/json.h"
#include "common/mutex.h"
#include "dist/transport.h"
#include "dist/worker.h"

namespace {

using namespace fsbb;

/// Serializes stdout so events from concurrent jobs never interleave.
class EventWriter {
 public:
  void line(const std::string& json) {
    const LockGuard lock(mu_);
    std::cout << json << "\n" << std::flush;
  }

 private:
  Mutex mu_;
};

/// Envelope helper: {"event":<event>,"id":<id>, ...extras}.
JsonWriter envelope(const std::string& event, const std::string& id) {
  JsonWriter o;
  o.str("event", event);
  o.str("id", id);
  return o;
}

/// Splits a "cli" payload (string or array of strings) into argv tokens.
std::vector<std::string> cli_tokens(const JsonValue& cli) {
  std::vector<std::string> tokens;
  if (cli.is_array()) {
    for (const JsonValue& item : cli.as_array()) {
      tokens.push_back(item.as_string());
    }
    return tokens;
  }
  std::istringstream stream(cli.as_string());
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

api::SolverConfig config_from_cli_tokens(const std::vector<std::string>& tokens) {
  std::vector<const char*> argv{"fsbb_serve"};
  argv.reserve(tokens.size() + 1);
  for (const std::string& t : tokens) argv.push_back(t.c_str());
  return api::SolverConfig::from_argv(static_cast<int>(argv.size()),
                                      argv.data());
}

class Daemon {
 public:
  Daemon(std::size_t workers, bool quiet_progress)
      : quiet_progress_(quiet_progress),
        service_(api::SolverService::Options{workers}) {}

  /// Handles one request line. Returns false on shutdown.
  bool handle_line(const std::string& line);

  /// Blocks until every accepted job reached a terminal state.
  void drain() {
    std::vector<api::SolveHandle> handles;
    {
      const LockGuard lock(mu_);
      for (auto& [id, handle] : jobs_) handles.push_back(handle);
    }
    for (api::SolveHandle& handle : handles) handle.wait();
  }

  void cancel_all() {
    const LockGuard lock(mu_);
    for (auto& [id, handle] : jobs_) handle.cancel();
  }

 private:
  void submit(const JsonValue& request);
  void cancel(const JsonValue& request);
  void status(const JsonValue& request);

  void reject(const std::string& id, const std::string& error) {
    JsonWriter o = envelope("rejected", id);
    o.str("error", error);
    out_.line(o.done());
  }

  EventWriter out_;
  const bool quiet_progress_;
  Mutex mu_;
  std::map<std::string, api::SolveHandle> jobs_ FSBB_GUARDED_BY(mu_);
  api::SolverService service_;  // last member: workers stop first
};

void Daemon::submit(const JsonValue& request) {
  const std::string id = request.string_or("id", "");
  if (id.empty()) {
    reject(id, "submit needs a non-empty \"id\"");
    return;
  }
  const JsonValue* cli = request.find("cli");
  if (cli == nullptr) {
    reject(id, "submit needs a \"cli\" string or array");
    return;
  }
  {
    const LockGuard lock(mu_);
    if (jobs_.count(id) != 0) {
      reject(id, "job id already in use");
      return;
    }
  }

  // The job may start (and even finish) on a worker thread before this
  // thread prints the accepted line; every callback takes this gate, which
  // is held until the accepted line is out — so the event stream always
  // reads accepted → progress* → result for each id.
  auto gate = std::make_shared<Mutex>();
  const LockGuard announcing(*gate);

  api::SolveHandle handle;
  try {
    const api::SolverConfig config = config_from_cli_tokens(cli_tokens(*cli));
    const std::vector<fsp::Instance> instances =
        api::make_instances(config.instance);
    if (instances.size() != 1) {
      reject(id, "submit solves exactly one instance per job (got --count " +
                     std::to_string(instances.size()) + "); submit one job "
                     "per instance instead");
      return;
    }
    api::SolverService::EventCallback on_event;
    if (!quiet_progress_) {
      on_event = [this, id, gate](const api::ProgressEvent& event) {
        if (event.kind == api::ProgressEvent::Kind::kFinished) return;
        const LockGuard announced(*gate);
        JsonWriter o = envelope("progress", id);
        o.field("data", event.to_json());
        out_.line(o.done());
      };
    }
    auto on_complete = [this, id, gate](const api::SolveOutcome& outcome) {
      {
        const LockGuard announced(*gate);
        JsonWriter o = envelope("result", id);
        o.boolean("ok", outcome.ok());
        if (outcome.ok()) {
          o.str("stop_reason", core::to_string(outcome.report->stop_reason));
          o.field("report", outcome.report->to_json());
        } else {
          o.str("error", outcome.error);
        }
        out_.line(o.done());
      }
      // The result streamed: forget the job so a long-running daemon does
      // not accumulate every instance + report it ever solved. (status /
      // cancel afterwards answer "unknown job id" — the job is done.)
      const LockGuard lock(mu_);
      jobs_.erase(id);
    };
    handle = service_.submit(instances.front(), config, std::move(on_event),
                             std::move(on_complete));
  } catch (const std::exception& e) {
    reject(id, e.what());
    return;
  }

  {
    const LockGuard lock(mu_);
    jobs_.emplace(id, handle);
  }
  JsonWriter o = envelope("accepted", id);
  o.integer("job", handle.id());
  out_.line(o.done());
}

void Daemon::cancel(const JsonValue& request) {
  const std::string id = request.string_or("id", "");
  api::SolveHandle handle;
  {
    const LockGuard lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      reject(id, "unknown job id");
      return;
    }
    handle = it->second;
  }
  handle.cancel();
  out_.line(envelope("canceling", id).done());
}

void Daemon::status(const JsonValue& request) {
  const std::string id = request.string_or("id", "");
  std::vector<std::pair<std::string, api::SolveHandle>> selected;
  {
    const LockGuard lock(mu_);
    for (auto& [job_id, handle] : jobs_) {
      if (id.empty() || job_id == id) selected.emplace_back(job_id, handle);
    }
  }
  if (!id.empty() && selected.empty()) {
    reject(id, "unknown job id");
    return;
  }
  for (auto& [job_id, handle] : selected) {
    JsonWriter o = envelope("status", job_id);
    o.str("state", api::to_string(handle.state()));
    out_.line(o.done());
  }
}

bool Daemon::handle_line(const std::string& line) {
  JsonValue request;
  try {
    request = JsonValue::parse(line);
  } catch (const std::exception& e) {
    JsonWriter o;
    o.str("event", "error");
    o.str("error", e.what());
    out_.line(o.done());
    return true;
  }
  const std::string op = request.string_or("op", "");
  if (op == "submit") {
    submit(request);
  } else if (op == "cancel") {
    cancel(request);
  } else if (op == "status") {
    status(request);
  } else if (op == "shutdown") {
    return false;
  } else {
    JsonWriter o;
    o.str("event", "error");
    o.str("error", "unknown op '" + op + "'");
    out_.line(o.done());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t workers = 8;
  bool quiet_progress = false;
  try {
    const CliArgs args =
        CliArgs::parse(argc, argv, {"workers"}, {"quiet-progress", "worker"});
    if (args.has("worker")) {
      return dist::run_worker(std::cin, std::cout);
    }
    const std::int64_t w = args.get_int_or("workers", 8);
    if (w < 1) throw CheckFailure("--workers must be >= 1");
    workers = static_cast<std::size_t>(w);
    quiet_progress = args.has("quiet-progress");
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\nusage: fsbb_serve [--workers N] "
                             "[--quiet-progress] [--worker]  "
                             "(NDJSON requests on stdin)\n";
    return 1;
  }

  Daemon daemon(workers, quiet_progress);
  std::string line;
  bool keep_going = true;
  while (keep_going && std::getline(std::cin, line)) {
    // CRLF clients (netcat -C, telnet, Windows pipes) terminate every
    // line with \r\n, and interactive sessions send blank keep-alive
    // lines; neither must reach the JSON parser.
    if (!dist::normalize_transport_line(line)) continue;
    keep_going = daemon.handle_line(line);
  }
  if (!keep_going) daemon.cancel_all();  // explicit shutdown: stop everything
  daemon.drain();  // EOF: let in-flight jobs finish, results still stream
  return 0;
}
