// fsbb_solve — the configuration-driven solver CLI.
//
// Everything is selected by SolverConfig flags; no backend, bound or engine
// is named in code. Root solves run as jobs on api::SolverService — the
// same asynchronous path fsbb_serve exposes — so --deadline-ms and
// --progress work uniformly across every backend. Extra switches on top of
// the config:
//
//   --list-backends     print the registry and exit
//   --all               run every registered backend on the same instance(s)
//   --json              emit one JSON report per line instead of text
//   --progress          stream incumbent/tick progress lines on stderr
//   --frozen N          freeze a pool of N nodes first, then explore it
//                       (the paper's §IV protocol) instead of root solves
//
// Examples:
//   $ fsbb_solve --jobs 10 --machines 5 --seed 123456789 --all
//   $ fsbb_solve --ta 1 --backend gpu-sim --placement shared-JM+PTM --json
//   $ fsbb_solve --ta 1 --backend gpu-sim --gpu-pool repack      # paper shape
//   $ fsbb_solve --jobs 9 --count 8 --backend cpu-serial --batch-workers 4
//   $ fsbb_solve --ta 4 --backend cpu-steal --deadline-ms 2000 --progress
//   $ fsbb_solve --ta 4 --backend cpu-steal --bound lb2 --threads 4
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/backend_registry.h"
#include "api/scenario.h"
#include "api/service.h"
#include "api/solver.h"
#include "common/table.h"

namespace {

int list_backends() {
  using namespace fsbb;
  const api::BackendRegistry& registry = api::BackendRegistry::global();
  AsciiTable table("registered backends");
  table.set_header({"key", "description"});
  for (const std::string& key : registry.keys()) {
    table.add_row({key, registry.description(key)});
  }
  table.render(std::cout);
  return 0;
}

/// Progress lines on stderr, one per event, tagged with the job id.
void print_progress(const fsbb::api::ProgressEvent& event) {
  using Kind = fsbb::api::ProgressEvent::Kind;
  std::ostringstream line;
  line << "# job " << event.job << " t=" << std::fixed << std::setprecision(2)
       << event.elapsed_seconds << "s ";
  switch (event.kind) {
    case Kind::kIncumbent:
      line << "incumbent " << event.incumbent << " after " << event.branched
           << " branched";
      break;
    case Kind::kTick:
      line << "searching: " << event.branched << " branched, incumbent "
           << event.incumbent;
      break;
    case Kind::kFinished:
      if (event.error.empty()) {
        line << "finished: " << fsbb::core::to_string(event.stop_reason);
      } else {
        line << "failed: " << event.error;
      }
      break;
  }
  std::cerr << line.str() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsbb;

  api::SolverConfig config;
  CliArgs args;
  try {
    std::vector<std::string> known = api::SolverConfig::cli_flags();
    known.push_back("frozen");
    args = CliArgs::parse(argc, argv, known,
                          {"list-backends", "all", "json", "progress"});
    config = api::SolverConfig::from_cli(args);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n\nflags: ";
    for (const std::string& f : api::SolverConfig::cli_flags()) {
      std::cerr << "--" << f << " ";
    }
    std::cerr << "--list-backends --all --json --progress --frozen\n";
    return 1;
  }

  if (args.has("list-backends")) return list_backends();

  const bool json = args.has("json");
  const auto freeze_target =
      static_cast<std::size_t>(args.get_int_or("frozen", 0));

  api::SolverService::EventCallback progress;
  if (args.has("progress")) progress = print_progress;

  std::vector<std::string> backends;
  if (args.has("all")) {
    backends = api::BackendRegistry::global().keys();
  } else {
    backends.push_back(config.backend);
  }

  const auto print = [&](const api::SolveReport& report) {
    if (json) {
      std::cout << report.to_json() << "\n";
    } else {
      std::cout << report << "\n";
    }
  };

  try {
    if (freeze_target > 0) {
      // §IV protocol: every backend explores the same frozen list, so it
      // is built once, outside the backend loop. On instances NEH nearly
      // solves, pass a weak --ub (e.g. the total work) so the pool can
      // actually reach the target.
      if (progress) {
        std::cerr << "# --progress only streams root solves; frozen-pool "
                     "runs execute directly\n";
      }
      const api::Workload workload =
          api::make_workload(config.instance, freeze_target, config.initial_ub);
      for (const std::string& backend : backends) {
        config.backend = backend;
        print(api::Solver(config).solve_frozen(workload.inst(),
                                               workload.frozen));
      }
      return 0;
    }

    // Root solves run as service jobs: one shared worker pool multiplexes
    // every (backend, instance) pair, exactly like fsbb_serve would.
    const std::vector<fsp::Instance> instances =
        api::make_instances(config.instance);
    std::size_t workers = config.batch_workers;
    if (workers == 0) {
      workers = std::min<std::size_t>(
          std::max<std::size_t>(instances.size() * backends.size(), 1),
          config.threads);
    }
    api::SolverService service(api::SolverService::Options{workers});
    std::vector<api::SolveHandle> handles;
    for (const std::string& backend : backends) {
      config.backend = backend;
      for (const fsp::Instance& inst : instances) {
        handles.push_back(service.submit(inst, config, progress));
      }
    }
    for (api::SolveHandle& handle : handles) {
      print(handle.wait_report());
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  return 0;
}
