// fsbb_solve — the configuration-driven solver CLI.
//
// Everything is selected by SolverConfig flags; no backend, bound or engine
// is named in code. Extra switches on top of the config:
//
//   --list-backends     print the registry and exit
//   --all               run every registered backend on the same instance(s)
//   --json              emit one JSON report per line instead of text
//   --frozen N          freeze a pool of N nodes first, then explore it
//                       (the paper's §IV protocol) instead of root solves
//
// Examples:
//   $ fsbb_solve --jobs 10 --machines 5 --seed 123456789 --all
//   $ fsbb_solve --ta 1 --backend gpu-sim --placement shared-JM+PTM --json
//   $ fsbb_solve --jobs 9 --count 8 --backend cpu-serial --batch-workers 4
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "api/backend_registry.h"
#include "api/scenario.h"
#include "api/solver.h"
#include "common/table.h"

namespace {

int list_backends() {
  using namespace fsbb;
  const api::BackendRegistry& registry = api::BackendRegistry::global();
  AsciiTable table("registered backends");
  table.set_header({"key", "description"});
  for (const std::string& key : registry.keys()) {
    table.add_row({key, registry.description(key)});
  }
  table.render(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsbb;

  api::SolverConfig config;
  CliArgs args;
  try {
    std::vector<std::string> known = api::SolverConfig::cli_flags();
    known.push_back("frozen");
    args = CliArgs::parse(argc, argv, known, {"list-backends", "all", "json"});
    config = api::SolverConfig::from_cli(args);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n\nflags: ";
    for (const std::string& f : api::SolverConfig::cli_flags()) {
      std::cerr << "--" << f << " ";
    }
    std::cerr << "--list-backends --all --json --frozen\n";
    return 1;
  }

  if (args.has("list-backends")) return list_backends();

  const bool json = args.has("json");
  const auto freeze_target =
      static_cast<std::size_t>(args.get_int_or("frozen", 0));

  std::vector<std::string> backends;
  if (args.has("all")) {
    backends = api::BackendRegistry::global().keys();
  } else {
    backends.push_back(config.backend);
  }

  try {
    // §IV protocol: every backend explores the same frozen list, so it is
    // built once, outside the backend loop. On instances NEH nearly
    // solves, pass a weak --ub (e.g. the total work) so the pool can
    // actually reach the target.
    std::optional<api::Workload> workload;
    if (freeze_target > 0) {
      workload = api::make_workload(config.instance, freeze_target,
                                    config.initial_ub);
    }
    for (const std::string& backend : backends) {
      config.backend = backend;
      const api::Solver solver(config);

      std::vector<api::SolveReport> reports;
      if (workload) {
        reports.push_back(solver.solve_frozen(workload->inst(),
                                              workload->frozen));
      } else {
        const std::vector<fsp::Instance> instances =
            api::make_instances(config.instance);
        reports = instances.size() == 1
                      ? std::vector<api::SolveReport>{solver.solve(
                            instances.front())}
                      : solver.solve_many(instances);
      }

      for (const api::SolveReport& report : reports) {
        if (json) {
          std::cout << report.to_json() << "\n";
        } else {
          std::cout << report << "\n";
        }
      }
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  return 0;
}
