#include "gpusim/occupancy.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace fsbb::gpusim {
namespace {

const DeviceSpec kC2050 = DeviceSpec::tesla_c2050();

KernelResources lb_kernel(std::size_t smem) {
  // The paper's kernel: 256-thread blocks, 26 registers per thread.
  return KernelResources{256, 26, smem};
}

TEST(Occupancy, PaperGlobalMemoryCase32Warps) {
  // §IV-B: with only registers limiting, 26 regs/thread caps residency at
  // 4 blocks x 8 warps = 32 active warps.
  const auto r = compute_occupancy(kC2050, SmemConfig::kPreferL1, lb_kernel(0));
  EXPECT_EQ(r.warps_per_block, 8);
  EXPECT_EQ(r.blocks_per_sm, 4);
  EXPECT_EQ(r.active_warps, 32);
  EXPECT_EQ(r.limiter, OccupancyLimiter::kRegisters);
  EXPECT_DOUBLE_EQ(r.occupancy, 32.0 / 48.0);
}

TEST(Occupancy, PaperSharedCases) {
  // Packed JM+PTM staged in shared memory (u8 entries):
  //   n =  20: 20*190 + 20*20   = 4200  B -> registers still limit: 32 warps
  //   n =  50: 50*190 + 50*20   = 10500 B -> 4 blocks fit: 32 warps
  //   n = 100: 100*190 + 100*20 = 21000 B -> 2 blocks: 16 warps
  //   n = 200: 200*190 + 200*20 = 42000 B -> 1 block: 8 warps
  // The paper claims 16 warps for BOTH n = 100 and n = 200; Fermi's actual
  // shared-memory rule gives 8 for n = 200 (see EXPERIMENTS.md).
  struct Case {
    std::size_t smem;
    int expect_blocks;
    int expect_warps;
    OccupancyLimiter expect_limiter;
  };
  const Case cases[] = {
      {4200, 4, 32, OccupancyLimiter::kRegisters},
      {10500, 4, 32, OccupancyLimiter::kRegisters},
      {21000, 2, 16, OccupancyLimiter::kSharedMemory},
      {42000, 1, 8, OccupancyLimiter::kSharedMemory},
  };
  for (const Case& c : cases) {
    const auto r =
        compute_occupancy(kC2050, SmemConfig::kPreferShared, lb_kernel(c.smem));
    EXPECT_EQ(r.blocks_per_sm, c.expect_blocks) << "smem " << c.smem;
    EXPECT_EQ(r.active_warps, c.expect_warps) << "smem " << c.smem;
    EXPECT_EQ(r.limiter, c.expect_limiter) << "smem " << c.smem;
  }
}

TEST(Occupancy, WarpCapLimitsLightKernels) {
  // 256-thread blocks, no registers, no smem: 8-block cap = 64 warps > 48
  // warp cap -> warps limit first (48 / 8 = 6 blocks).
  const auto r = compute_occupancy(kC2050, SmemConfig::kPreferL1,
                                   KernelResources{256, 0, 0});
  EXPECT_EQ(r.blocks_per_sm, 6);
  EXPECT_EQ(r.active_warps, 48);
  EXPECT_EQ(r.limiter, OccupancyLimiter::kWarpCap);
  EXPECT_DOUBLE_EQ(r.occupancy, 1.0);
}

TEST(Occupancy, BlockCapLimitsTinyBlocks) {
  // 32-thread blocks: 8-block cap -> 8 warps.
  const auto r = compute_occupancy(kC2050, SmemConfig::kPreferL1,
                                   KernelResources{32, 0, 0});
  EXPECT_EQ(r.blocks_per_sm, 8);
  EXPECT_EQ(r.active_warps, 8);
  EXPECT_EQ(r.limiter, OccupancyLimiter::kBlockCap);
}

TEST(Occupancy, RegisterAllocationIsWarpGranular) {
  // 33 regs/thread: per warp 33*32 = 1056 -> rounded to 1088 (unit 64).
  // Per 8-warp block: 8704; 32768/8704 = 3 blocks.
  const auto r = compute_occupancy(kC2050, SmemConfig::kPreferL1,
                                   KernelResources{256, 33, 0});
  EXPECT_EQ(r.blocks_per_sm, 3);
  EXPECT_EQ(r.limiter, OccupancyLimiter::kRegisters);
}

TEST(Occupancy, SharedMemoryRoundedToAllocationUnit) {
  // 4100 B rounds to 4224 (unit 128); 48K/4224 = 11 blocks -> regs cap 4.
  const auto r = compute_occupancy(kC2050, SmemConfig::kPreferShared,
                                   lb_kernel(4100));
  EXPECT_EQ(r.blocks_per_sm, 4);
}

TEST(Occupancy, ImpossibleKernelsThrow) {
  // Block larger than the device allows.
  EXPECT_THROW(compute_occupancy(kC2050, SmemConfig::kPreferL1,
                                 KernelResources{2048, 8, 0}),
               CheckFailure);
  // One block needing more shared memory than the SM owns.
  EXPECT_THROW(compute_occupancy(kC2050, SmemConfig::kPreferShared,
                                 lb_kernel(64 * 1024)),
               CheckFailure);
  // Shared demand that fits kPreferShared but not kPreferL1.
  EXPECT_THROW(
      compute_occupancy(kC2050, SmemConfig::kPreferL1, lb_kernel(42000)),
      CheckFailure);
}

TEST(Occupancy, LimiterNames) {
  EXPECT_STREQ(to_string(OccupancyLimiter::kRegisters), "registers");
  EXPECT_STREQ(to_string(OccupancyLimiter::kSharedMemory), "shared-memory");
  EXPECT_STREQ(to_string(OccupancyLimiter::kWarpCap), "warp-cap");
  EXPECT_STREQ(to_string(OccupancyLimiter::kBlockCap), "block-cap");
}

}  // namespace
}  // namespace fsbb::gpusim
