#include "gpusim/timing.h"

#include <gtest/gtest.h>

namespace fsbb::gpusim {
namespace {

const DeviceSpec kSpec = DeviceSpec::tesla_c2050();
const GpuCalibration kCalib = GpuCalibration::fermi_defaults();

ThreadWork lb_like_work(double global_accesses, double shared_accesses) {
  ThreadWork w;
  w.ops = (global_accesses + shared_accesses) * 1.5;
  w.accesses[static_cast<std::size_t>(MemSpace::kGlobal)] = global_accesses;
  w.accesses[static_cast<std::size_t>(MemSpace::kShared)] = shared_accesses;
  return w;
}

OccupancyResult occupancy_for(std::size_t smem) {
  return compute_occupancy(kSpec,
                           smem > 0 ? SmemConfig::kPreferShared
                                    : SmemConfig::kPreferL1,
                           KernelResources{256, 26, smem});
}

TEST(Timing, MoreWorkTakesLonger) {
  const auto occ = occupancy_for(0);
  const LaunchConfig config{1024, 256};
  const double light =
      estimate_kernel_time(kSpec, kCalib, config, occ, lb_like_work(1e3, 0))
          .seconds;
  const double heavy =
      estimate_kernel_time(kSpec, kCalib, config, occ, lb_like_work(1e5, 0))
          .seconds;
  EXPECT_GT(heavy, 10 * light);
}

TEST(Timing, LargerGridsTakeProportionallyLongerOnceSaturated) {
  const auto occ = occupancy_for(0);
  const auto work = lb_like_work(2e4, 0);
  const double t1 =
      estimate_kernel_time(kSpec, kCalib, LaunchConfig{256, 256}, occ, work)
          .seconds;
  const double t2 =
      estimate_kernel_time(kSpec, kCalib, LaunchConfig{512, 256}, occ, work)
          .seconds;
  EXPECT_NEAR(t2 / t1, 2.0, 0.1);
}

TEST(Timing, SmallGridsLoseEfficiency) {
  // The paper's observation: 16 blocks on 14 SMs cannot feed the card; the
  // per-node cost at 16 blocks must exceed the per-node cost at 1024.
  const auto occ = occupancy_for(0);
  const auto work = lb_like_work(2e4, 0);
  const auto at_16 =
      estimate_kernel_time(kSpec, kCalib, LaunchConfig{16, 256}, occ, work);
  const auto at_1024 =
      estimate_kernel_time(kSpec, kCalib, LaunchConfig{1024, 256}, occ, work);
  const double per_node_16 = at_16.seconds / (16 * 256);
  const double per_node_1024 = at_1024.seconds / (1024 * 256);
  EXPECT_GT(per_node_16, 1.2 * per_node_1024);
  EXPECT_LT(at_16.effective_warps, at_1024.effective_warps);
}

TEST(Timing, HigherOccupancyHidesLatency) {
  // Same per-thread work, same grid; fewer resident warps (more smem per
  // block) must not be faster.
  const auto work = lb_like_work(2e4, 0);
  const LaunchConfig config{1024, 256};
  const double w32 =
      estimate_kernel_time(kSpec, kCalib, config, occupancy_for(0), work)
          .seconds;
  const double w16 =
      estimate_kernel_time(kSpec, kCalib, config, occupancy_for(21000), work)
          .seconds;
  const double w8 =
      estimate_kernel_time(kSpec, kCalib, config, occupancy_for(42000), work)
          .seconds;
  EXPECT_LE(w32, w16);
  EXPECT_LE(w16, w8);
}

TEST(Timing, SharedAccessesAreCheaperThanGlobal) {
  const auto occ = occupancy_for(0);
  const LaunchConfig config{1024, 256};
  const double global_heavy =
      estimate_kernel_time(kSpec, kCalib, config, occ, lb_like_work(2e4, 0))
          .seconds;
  const double shared_heavy =
      estimate_kernel_time(kSpec, kCalib, config, occ, lb_like_work(0, 2e4))
          .seconds;
  EXPECT_LT(shared_heavy, global_heavy);
}

TEST(Timing, RoundsReflectGridOverCapacity) {
  const auto occ = occupancy_for(0);  // 4 blocks/SM -> 56 slots
  const auto work = lb_like_work(1e3, 0);
  EXPECT_DOUBLE_EQ(
      estimate_kernel_time(kSpec, kCalib, LaunchConfig{56, 256}, occ, work)
          .rounds,
      1.0);
  EXPECT_DOUBLE_EQ(
      estimate_kernel_time(kSpec, kCalib, LaunchConfig{112, 256}, occ, work)
          .rounds,
      2.0);
  // Sub-capacity grids still take one round.
  EXPECT_DOUBLE_EQ(
      estimate_kernel_time(kSpec, kCalib, LaunchConfig{10, 256}, occ, work)
          .rounds,
      1.0);
}

TEST(Timing, LaunchOverheadIsTheFloor) {
  const auto occ = occupancy_for(0);
  const auto est = estimate_kernel_time(kSpec, kCalib, LaunchConfig{1, 32},
                                        occ, lb_like_work(0, 0));
  EXPECT_GE(est.seconds, kCalib.kernel_launch_overhead_s);
}

TEST(Timing, BreakdownSumsConsistently) {
  const auto occ = occupancy_for(0);
  const auto est = estimate_kernel_time(kSpec, kCalib, LaunchConfig{512, 256},
                                        occ, lb_like_work(1e4, 2e3));
  EXPECT_GT(est.issue_seconds, 0);
  EXPECT_GT(est.latency_seconds, 0);
  EXPECT_NEAR(est.seconds,
              est.issue_seconds + est.latency_seconds +
                  kCalib.kernel_launch_overhead_s,
              est.seconds * 1e-9);
}

}  // namespace
}  // namespace fsbb::gpusim
