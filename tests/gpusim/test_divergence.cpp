#include <gtest/gtest.h>

#include "gpusim/kernel.h"
#include "gpusim/timing.h"

namespace fsbb::gpusim {
namespace {

TEST(Divergence, UniformWorkHasFactorOne) {
  SimDevice dev(DeviceSpec::tesla_c2050());
  const LaunchConfig config{4, 128};
  const KernelRun run = dev.launch(config, [](ThreadCtx& ctx) {
    ctx.add_ops(100);
    ctx.add_loads(MemSpace::kGlobal, 10);
  });
  EXPECT_DOUBLE_EQ(run.divergence_factor(), 1.0);
}

TEST(Divergence, HalfWarpDoingTripleWorkGivesExpectedFactor) {
  // Lanes 0..15 do w work, lanes 16..31 do 3w: every lane pays for the
  // busiest (3w), so the factor is 3w / mean(2w) = 1.5.
  SimDevice dev(DeviceSpec::tesla_c2050());
  const LaunchConfig config{2, 64};
  const KernelRun run = dev.launch(config, [](ThreadCtx& ctx) {
    const bool heavy = (ctx.thread_idx() % 32) >= 16;
    ctx.add_ops(heavy ? 300 : 100);
  });
  EXPECT_NEAR(run.divergence_factor(), 1.5, 1e-12);
}

TEST(Divergence, OneHotLaneIsTheWorstCase) {
  // One lane per warp does all the work: factor == 32.
  SimDevice dev(DeviceSpec::tesla_c2050());
  const LaunchConfig config{1, 32};
  const KernelRun run = dev.launch(config, [](ThreadCtx& ctx) {
    if (ctx.thread_idx() == 0) ctx.add_ops(1000);
  });
  EXPECT_NEAR(run.divergence_factor(), 32.0, 1e-12);
}

TEST(Divergence, IdleThreadsDoNotCrash) {
  SimDevice dev(DeviceSpec::tesla_c2050());
  const KernelRun run = dev.launch(LaunchConfig{2, 64}, [](ThreadCtx&) {});
  EXPECT_DOUBLE_EQ(run.divergence_factor(), 1.0);  // 0/0 defined as 1
}

TEST(Divergence, FactorFeedsTheTimingModel) {
  const DeviceSpec spec = DeviceSpec::tesla_c2050();
  const GpuCalibration calib = GpuCalibration::fermi_defaults();
  const auto occ = compute_occupancy(spec, SmemConfig::kPreferL1,
                                     KernelResources{256, 26, 0});
  ThreadWork base;
  base.ops = 1e4;
  base.accesses[static_cast<std::size_t>(MemSpace::kGlobal)] = 2e4;

  ThreadWork divergent = base;
  divergent.divergence = 2.0;

  const LaunchConfig config{512, 256};
  const double t1 = estimate_kernel_time(spec, calib, config, occ, base).seconds;
  const double t2 =
      estimate_kernel_time(spec, calib, config, occ, divergent).seconds;
  EXPECT_NEAR(t2 / t1, 2.0, 0.01);  // launch overhead blurs it slightly
}

TEST(Divergence, ThreadWorkFromRunCarriesTheFactor) {
  SimDevice dev(DeviceSpec::tesla_c2050());
  const KernelRun run = dev.launch(LaunchConfig{1, 64}, [](ThreadCtx& ctx) {
    ctx.add_ops((ctx.thread_idx() % 32) == 0 ? 640 : 0);
  });
  const ThreadWork work = ThreadWork::from_run(run);
  EXPECT_NEAR(work.divergence, 32.0, 1e-9);
}

TEST(Divergence, RealLbPoolsHaveMildDivergence) {
  // Depth differences across a mixed pool cause some divergence (prefix
  // replay length varies) but the dominant pair sweep is uniform — the
  // measured factor should stay below ~1.5.
  SimDevice dev(DeviceSpec::tesla_c2050());
  const LaunchConfig config{2, 128};
  const KernelRun run = dev.launch(config, [](ThreadCtx& ctx) {
    // Mimic the LB kernel's shape: uniform sweep + depth-dependent replay.
    const auto depth =
        static_cast<std::uint64_t>(ctx.global_idx() % 20);
    ctx.add_ops(7600);                          // pair sweep, same for all
    ctx.add_loads(MemSpace::kLocal, depth * 40);  // replay varies
  });
  EXPECT_GT(run.divergence_factor(), 1.0);
  EXPECT_LT(run.divergence_factor(), 1.5);
}

}  // namespace
}  // namespace fsbb::gpusim
