#include "gpusim/kernel.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace fsbb::gpusim {
namespace {

TEST(Kernel, EveryThreadRunsExactlyOnce) {
  SimDevice dev(DeviceSpec::tesla_c2050());
  auto out = dev.alloc<std::int32_t>(1024, MemSpace::kGlobal);
  const auto view = out.mut_view();
  const LaunchConfig config{4, 256};
  const KernelRun run = dev.launch(config, [&](ThreadCtx& ctx) {
    ctx.st(view, static_cast<std::size_t>(ctx.global_idx()),
           static_cast<std::int32_t>(ctx.global_idx()));
  });
  EXPECT_EQ(run.threads_executed, 1024);
  EXPECT_EQ(run.threads_logical, 1024);
  EXPECT_EQ(run.blocks_executed, 4);
  EXPECT_DOUBLE_EQ(run.sample_fraction(), 1.0);
  for (int i = 0; i < 1024; ++i) {
    EXPECT_EQ(out.host_span()[static_cast<std::size_t>(i)], i);
  }
}

TEST(Kernel, CountersAreExact) {
  SimDevice dev(DeviceSpec::tesla_c2050());
  auto in = dev.alloc<std::int32_t>(256, MemSpace::kShared);
  auto out = dev.alloc<std::int32_t>(256, MemSpace::kGlobal);
  const auto in_view = in.view();
  const auto out_view = out.mut_view();
  const LaunchConfig config{2, 128};
  const KernelRun run = dev.launch(config, [&](ThreadCtx& ctx) {
    const auto i = static_cast<std::size_t>(ctx.global_idx());
    const std::int32_t v = ctx.ld(in_view, i);   // 1 shared load
    ctx.st(out_view, i, v + 1);                  // 1 global store
    ctx.add_ops(3);
  });
  EXPECT_EQ(run.counters.of(MemSpace::kShared).loads, 256u);
  EXPECT_EQ(run.counters.of(MemSpace::kGlobal).stores, 256u);
  EXPECT_EQ(run.counters.of(MemSpace::kGlobal).loads, 0u);
  EXPECT_EQ(run.counters.arithmetic_ops, 256u * 3u);
  EXPECT_DOUBLE_EQ(run.per_thread(MemSpace::kShared), 1.0);
  EXPECT_DOUBLE_EQ(run.per_thread_ops(), 3.0);
}

TEST(Kernel, ThreadGeometryIsCorrect) {
  SimDevice dev(DeviceSpec::tesla_c2050());
  std::vector<std::atomic<int>> block_hits(8);
  const LaunchConfig config{8, 64};
  dev.launch(config, [&](ThreadCtx& ctx) {
    EXPECT_GE(ctx.thread_idx(), 0);
    EXPECT_LT(ctx.thread_idx(), 64);
    EXPECT_EQ(ctx.block_dim(), 64);
    EXPECT_EQ(ctx.global_idx(),
              static_cast<std::int64_t>(ctx.block_idx()) * 64 + ctx.thread_idx());
    block_hits[static_cast<std::size_t>(ctx.block_idx())].fetch_add(1);
  });
  for (const auto& h : block_hits) EXPECT_EQ(h.load(), 64);
}

TEST(Kernel, ProloguePerBlock) {
  SimDevice dev(DeviceSpec::tesla_c2050());
  const LaunchConfig config{6, 32};
  const KernelRun run = dev.launch(
      config, [](ThreadCtx&) {},
      [](int /*block*/, AccessCounters& counters) {
        counters.add_load(MemSpace::kGlobal, 100);
        counters.add_store(MemSpace::kShared, 100);
      });
  EXPECT_EQ(run.counters.of(MemSpace::kGlobal).loads, 600u);
  EXPECT_EQ(run.counters.of(MemSpace::kShared).stores, 600u);
}

TEST(Kernel, SampledLaunchRunsAPrefixOfBlocks) {
  SimDevice dev(DeviceSpec::tesla_c2050());
  auto out = dev.alloc<std::int32_t>(10 * 256, MemSpace::kGlobal);
  const auto view = out.mut_view();
  const LaunchConfig config{10, 256};
  const KernelRun run = dev.launch_sampled(config, /*max_threads=*/512,
                                           [&](ThreadCtx& ctx) {
    ctx.st(view, static_cast<std::size_t>(ctx.global_idx()), 1);
  });
  EXPECT_EQ(run.blocks_executed, 2);
  EXPECT_EQ(run.threads_executed, 512);
  EXPECT_EQ(run.threads_logical, 2560);
  EXPECT_NEAR(run.sample_fraction(), 0.2, 1e-12);
  // Non-sampled region untouched.
  EXPECT_EQ(out.host_span()[511], 1);
  EXPECT_EQ(out.host_span()[512], 0);
}

TEST(Kernel, SampledLaunchAlwaysRunsAtLeastOneBlock) {
  SimDevice dev(DeviceSpec::tesla_c2050());
  const LaunchConfig config{4, 256};
  const KernelRun run =
      dev.launch_sampled(config, /*max_threads=*/10, [](ThreadCtx&) {});
  EXPECT_EQ(run.blocks_executed, 1);
}

TEST(Kernel, DeterministicAcrossPoolSizes) {
  auto run_with = [](std::size_t host_threads) {
    ThreadPool pool(host_threads);
    SimDevice dev(DeviceSpec::tesla_c2050(), &pool);
    auto out = dev.alloc<std::int64_t>(2048, MemSpace::kGlobal);
    const auto view = out.mut_view();
    dev.launch(LaunchConfig{8, 256}, [&](ThreadCtx& ctx) {
      const auto i = static_cast<std::size_t>(ctx.global_idx());
      ctx.st(view, i, static_cast<std::int64_t>(i * i % 977));
    });
    return std::vector<std::int64_t>(out.host_span().begin(),
                                     out.host_span().end());
  };
  EXPECT_EQ(run_with(1), run_with(7));
}

TEST(Kernel, InvalidConfigsThrow) {
  SimDevice dev(DeviceSpec::tesla_c2050());
  EXPECT_THROW(dev.launch(LaunchConfig{0, 256}, [](ThreadCtx&) {}),
               CheckFailure);
  EXPECT_THROW(dev.launch(LaunchConfig{1, 4096}, [](ThreadCtx&) {}),
               CheckFailure);
}

}  // namespace
}  // namespace fsbb::gpusim
