#include "gpusim/memory.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "gpusim/kernel.h"

namespace fsbb::gpusim {
namespace {

TEST(DeviceBuffer, DefaultIsEmpty) {
  DeviceBuffer<int> b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
}

TEST(DeviceBuffer, ViewsAliasStorage) {
  DeviceBuffer<int> b(4, MemSpace::kShared);
  b.host_span()[2] = 42;
  EXPECT_EQ(b.view().data[2], 42);
  EXPECT_EQ(b.view().space, MemSpace::kShared);
  EXPECT_EQ(b.view().size, 4u);
  b.mut_view().data[3] = 7;
  EXPECT_EQ(b.host_span()[3], 7);
}

TEST(SimDevice, TracksGlobalAllocations) {
  SimDevice dev(DeviceSpec::tesla_c2050());
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  auto a = dev.alloc<std::int32_t>(1000, MemSpace::kGlobal);
  EXPECT_EQ(dev.allocated_bytes(), 4000u);
  {
    auto b = dev.alloc<std::uint8_t>(512, MemSpace::kGlobal);
    EXPECT_EQ(dev.allocated_bytes(), 4512u);
  }
  // b released on scope exit.
  EXPECT_EQ(dev.allocated_bytes(), 4000u);
}

TEST(SimDevice, SharedViewsDoNotConsumeGlobalCapacity) {
  SimDevice dev(DeviceSpec::tesla_c2050());
  auto s = dev.alloc<int>(100, MemSpace::kShared);
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(SimDevice, ExhaustionThrows) {
  DeviceSpec tiny = DeviceSpec::tesla_c2050();
  tiny.global_mem_bytes = 1024;
  SimDevice dev(tiny);
  EXPECT_THROW(dev.alloc<std::int64_t>(1000, MemSpace::kGlobal), CheckFailure);
}

TEST(DeviceBuffer, MoveTransfersLedgerOwnership) {
  SimDevice dev(DeviceSpec::tesla_c2050());
  auto a = dev.alloc<int>(256, MemSpace::kGlobal);
  EXPECT_EQ(dev.allocated_bytes(), 1024u);
  DeviceBuffer<int> b = std::move(a);
  EXPECT_EQ(dev.allocated_bytes(), 1024u);  // no double count, no release
  DeviceBuffer<int> c;
  c = std::move(b);
  EXPECT_EQ(dev.allocated_bytes(), 1024u);
}

TEST(DeviceBuffer, ReassignmentReleasesTheOldAllocation) {
  SimDevice dev(DeviceSpec::tesla_c2050());
  auto a = dev.alloc<int>(256, MemSpace::kGlobal);
  a = dev.alloc<int>(128, MemSpace::kGlobal);
  EXPECT_EQ(dev.allocated_bytes(), 512u);
}

TEST(MemSpace, Names) {
  EXPECT_STREQ(to_string(MemSpace::kGlobal), "global");
  EXPECT_STREQ(to_string(MemSpace::kShared), "shared");
  EXPECT_STREQ(to_string(MemSpace::kConstant), "constant");
  EXPECT_STREQ(to_string(MemSpace::kLocal), "local");
  EXPECT_STREQ(to_string(MemSpace::kRegister), "register");
}

TEST(AccessCounters, AccumulateAndMerge) {
  AccessCounters a;
  a.add_load(MemSpace::kGlobal, 5);
  a.add_store(MemSpace::kGlobal, 2);
  a.add_load(MemSpace::kShared);
  a.add_ops(10);
  EXPECT_EQ(a.of(MemSpace::kGlobal).loads, 5u);
  EXPECT_EQ(a.of(MemSpace::kGlobal).stores, 2u);
  EXPECT_EQ(a.of(MemSpace::kGlobal).total(), 7u);
  EXPECT_EQ(a.total_accesses(), 8u);

  AccessCounters b;
  b.add_load(MemSpace::kGlobal, 3);
  b.add_ops(1);
  b += a;
  EXPECT_EQ(b.of(MemSpace::kGlobal).loads, 8u);
  EXPECT_EQ(b.arithmetic_ops, 11u);
}

}  // namespace
}  // namespace fsbb::gpusim
