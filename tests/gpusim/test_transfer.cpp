#include "gpusim/transfer.h"

#include <gtest/gtest.h>

namespace fsbb::gpusim {
namespace {

TEST(TransferModel, LatencyPlusBandwidth) {
  const DeviceSpec spec = DeviceSpec::tesla_c2050();
  const TransferModel model(spec);
  // Zero bytes still pays the latency.
  EXPECT_DOUBLE_EQ(model.seconds(0), spec.pcie_latency_s);
  // One GB at 5.6 GB/s.
  const double one_gb = model.seconds(1'000'000'000);
  EXPECT_NEAR(one_gb, spec.pcie_latency_s + 1.0 / 5.6, 1e-9);
}

TEST(TransferModel, MonotoneInBytes) {
  const TransferModel model(DeviceSpec::tesla_c2050());
  double prev = 0;
  for (std::size_t bytes = 1; bytes < 1u << 28; bytes *= 4) {
    const double t = model.seconds(bytes);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(TransferModel, LedgerAccumulatesBothDirections) {
  const TransferModel model(DeviceSpec::tesla_c2050());
  TransferLedger ledger;
  model.record(TransferDir::kHostToDevice, 1000, ledger);
  model.record(TransferDir::kHostToDevice, 2000, ledger);
  model.record(TransferDir::kDeviceToHost, 500, ledger);
  EXPECT_EQ(ledger.h2d_transfers, 2u);
  EXPECT_EQ(ledger.d2h_transfers, 1u);
  EXPECT_EQ(ledger.h2d_bytes, 3000u);
  EXPECT_EQ(ledger.d2h_bytes, 500u);
  EXPECT_GT(ledger.h2d_seconds, ledger.d2h_seconds);
  EXPECT_NEAR(ledger.total_seconds(), ledger.h2d_seconds + ledger.d2h_seconds,
              1e-15);
}

TEST(TransferModel, RecordReturnsTheModeledSeconds) {
  const TransferModel model(DeviceSpec::tesla_c2050());
  TransferLedger ledger;
  const double s = model.record(TransferDir::kDeviceToHost, 4096, ledger);
  EXPECT_DOUBLE_EQ(s, model.seconds(4096));
}

TEST(TransferModel, SmallPoolsAreLatencyDominated) {
  // The paper's small-pool regime: a 4096-node pool of 20-job nodes moves
  // ~90 KB — latency is a visible fraction of the cost.
  const DeviceSpec spec = DeviceSpec::tesla_c2050();
  const TransferModel model(spec);
  const double t = model.seconds(4096 * 22);
  EXPECT_GT(spec.pcie_latency_s / t, 0.4);
}

}  // namespace
}  // namespace fsbb::gpusim
