#include "gpusim/device_spec.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace fsbb::gpusim {
namespace {

TEST(DeviceSpec, TeslaC2050MatchesThePaper) {
  const DeviceSpec s = DeviceSpec::tesla_c2050();
  EXPECT_EQ(s.sm_count, 14);
  EXPECT_EQ(s.cores_per_sm, 32);
  EXPECT_EQ(s.total_cores(), 448);
  EXPECT_DOUBLE_EQ(s.clock_ghz, 1.15);
  EXPECT_EQ(s.warp_size, 32);
  EXPECT_DOUBLE_EQ(s.peak_gflops_double, 515.0);  // paper §V
  EXPECT_EQ(s.shared_mem_bytes(SmemConfig::kPreferShared), 48u * 1024u);
  EXPECT_EQ(s.shared_mem_bytes(SmemConfig::kPreferL1), 16u * 1024u);
  EXPECT_EQ(s.global_mem_bytes, std::size_t{2800} * 1024 * 1024);
}

TEST(DeviceSpec, FermiResidencyLimits) {
  const DeviceSpec s = DeviceSpec::tesla_c2050();
  EXPECT_EQ(s.max_warps_per_sm, 48);
  EXPECT_EQ(s.max_blocks_per_sm, 8);
  EXPECT_EQ(s.max_threads_per_block, 1024);
  EXPECT_EQ(s.registers_per_sm, 32768u);
}

TEST(DeviceSpec, C1060IsAValidOlderDevice) {
  const DeviceSpec s = DeviceSpec::tesla_c1060();
  EXPECT_NO_THROW(s.validate());
  EXPECT_EQ(s.total_cores(), 240);
  // GT200 has no configurable split.
  EXPECT_EQ(s.shared_mem_bytes(SmemConfig::kPreferShared),
            s.shared_mem_bytes(SmemConfig::kPreferL1));
}

TEST(DeviceSpec, ValidationCatchesNonsense) {
  DeviceSpec s = DeviceSpec::tesla_c2050();
  s.sm_count = 0;
  EXPECT_THROW(s.validate(), CheckFailure);

  s = DeviceSpec::tesla_c2050();
  s.max_threads_per_block = 1000;  // not warp-aligned
  EXPECT_THROW(s.validate(), CheckFailure);

  s = DeviceSpec::tesla_c2050();
  s.pcie_bandwidth_gbps = 0;
  EXPECT_THROW(s.validate(), CheckFailure);
}

TEST(DeviceSpec, SmemConfigNames) {
  EXPECT_STREQ(to_string(SmemConfig::kPreferL1), "16KB-shared/48KB-L1");
  EXPECT_STREQ(to_string(SmemConfig::kPreferShared), "48KB-shared/16KB-L1");
}

}  // namespace
}  // namespace fsbb::gpusim
