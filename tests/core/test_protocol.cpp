#include "core/protocol.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fsp/brute_force.h"

namespace fsbb::core {
namespace {

fsp::Instance random_instance(int jobs, int machines, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Matrix<fsp::Time> pt(static_cast<std::size_t>(jobs),
                       static_cast<std::size_t>(machines));
  for (auto& v : pt.flat()) v = static_cast<fsp::Time>(rng.next_in(1, 50));
  return fsp::Instance("rand", std::move(pt));
}

TEST(Protocol, FreezeProducesBoundedNodesAndAnIncumbent) {
  const fsp::Instance inst = random_instance(11, 5, 3);
  const auto data = fsp::LowerBoundData::build(inst);
  // Weak incumbent: random instances this small are otherwise pruned at
  // the root, and the protocol needs a live pool to freeze.
  const FrozenPool frozen = freeze_pool(inst, data, 50, inst.total_work());
  EXPECT_GE(frozen.nodes.size(), 50u);
  EXPECT_GT(frozen.incumbent, 0);
  for (const Subproblem& sp : frozen.nodes) {
    EXPECT_NE(sp.lb, Subproblem::kUnevaluated);
    EXPECT_LT(sp.lb, frozen.incumbent);
  }
  EXPECT_GT(frozen.generation_stats.branched, 0u);
}

TEST(Protocol, FreezeIsDeterministic) {
  const fsp::Instance inst = random_instance(11, 5, 4);
  const auto data = fsp::LowerBoundData::build(inst);
  const FrozenPool a = freeze_pool(inst, data, 40, inst.total_work());
  const FrozenPool b = freeze_pool(inst, data, 40, inst.total_work());
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  EXPECT_EQ(a.incumbent, b.incumbent);
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].perm, b.nodes[i].perm);
    EXPECT_EQ(a.nodes[i].depth, b.nodes[i].depth);
    EXPECT_EQ(a.nodes[i].lb, b.nodes[i].lb);
  }
}

TEST(Protocol, ExploringTheFrozenPoolFindsTheOptimum) {
  const fsp::Instance inst = random_instance(9, 4, 5);
  const auto data = fsp::LowerBoundData::build(inst);
  const auto opt = fsp::brute_force(inst);
  const FrozenPool frozen = freeze_pool(inst, data, 20, inst.total_work());

  SerialCpuEvaluator eval(inst, data);
  const SolveResult result = explore_frozen(
      inst, data, frozen, eval, SelectionStrategy::kBestFirst, 1);
  EXPECT_TRUE(result.proven_optimal);
  // The frozen frontier plus the incumbent covers the whole tree, so the
  // final answer must still be the global optimum.
  EXPECT_EQ(std::min(result.best_makespan, frozen.incumbent), opt.makespan);
}

TEST(Protocol, SerialAndThreadedBackendsExploreIdenticalNodeSets) {
  const fsp::Instance inst = random_instance(10, 5, 6);
  const auto data = fsp::LowerBoundData::build(inst);
  const FrozenPool frozen = freeze_pool(inst, data, 30, inst.total_work());

  SerialCpuEvaluator serial(inst, data);
  ThreadedCpuEvaluator threaded(inst, data, 4);

  const SolveResult a = explore_frozen(inst, data, frozen, serial,
                                       SelectionStrategy::kBestFirst, 16);
  const SolveResult b = explore_frozen(inst, data, frozen, threaded,
                                       SelectionStrategy::kBestFirst, 16);
  EXPECT_EQ(a.best_makespan, b.best_makespan);
  // Same batches, deterministic bounds -> identical operator counts.
  EXPECT_EQ(a.stats.branched, b.stats.branched);
  EXPECT_EQ(a.stats.generated, b.stats.generated);
  EXPECT_EQ(a.stats.evaluated, b.stats.evaluated);
  EXPECT_EQ(a.stats.pruned, b.stats.pruned);
  EXPECT_EQ(a.stats.leaves, b.stats.leaves);
}

TEST(Protocol, NodeBudgetCapsExploration) {
  const fsp::Instance inst = random_instance(12, 5, 7);
  const auto data = fsp::LowerBoundData::build(inst);
  const FrozenPool frozen = freeze_pool(inst, data, 30, inst.total_work());
  SerialCpuEvaluator eval(inst, data);
  const SolveResult result =
      explore_frozen(inst, data, frozen, eval, SelectionStrategy::kBestFirst,
                     8, /*node_budget=*/10);
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_LE(result.stats.branched, 10u);
}

TEST(Protocol, FreezeTargetBeyondTreeSizeThrows) {
  // A 3-job instance cannot hold a pool of 10000 live nodes.
  const fsp::Instance inst = random_instance(3, 2, 8);
  const auto data = fsp::LowerBoundData::build(inst);
  EXPECT_THROW(freeze_pool(inst, data, 10000), CheckFailure);
}

}  // namespace
}  // namespace fsbb::core
