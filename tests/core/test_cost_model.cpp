#include "core/cost_model.h"

#include <gtest/gtest.h>

#include "fsp/taillard.h"

namespace fsbb::core {
namespace {

TEST(CpuCostModel, LbCostInCrediblePerNodeRange) {
  // The LB of a 200x20 node costs O(100 us) on a ~2 GHz core; the model
  // must land in that magnitude for the speedup tables to be meaningful.
  const auto inst = fsp::taillard_instance(101);  // 200x20
  const auto data = fsp::LowerBoundData::build(inst);
  const CpuCostModel model(data, CpuCostParams::xeon_e5520_reference());
  const double t = model.lb_eval_seconds(200);
  EXPECT_GT(t, 20e-6);
  EXPECT_LT(t, 1e-3);
}

TEST(CpuCostModel, LbCostGrowsWithRemainingJobs) {
  const auto inst = fsp::taillard_instance(21);  // 20x20
  const auto data = fsp::LowerBoundData::build(inst);
  const CpuCostModel model(data, CpuCostParams::xeon_e5520_reference());
  double prev = 0;
  for (int r = 1; r <= 20; ++r) {
    const double t = model.lb_eval_seconds(r);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CpuCostModel, LbCostGrowsWithInstanceSize) {
  const CpuCostParams params = CpuCostParams::xeon_e5520_reference();
  double prev = 0;
  for (const int id : {21, 51, 81, 101}) {  // 20x20, 50x20, 100x20, 200x20
    const auto inst = fsp::taillard_instance(id);
    const auto data = fsp::LowerBoundData::build(inst);
    const CpuCostModel model(data, params);
    const double t = model.lb_eval_seconds(inst.jobs());
    EXPECT_GT(t, prev) << inst.name();
    prev = t;
  }
}

TEST(CpuCostModel, PoolOpGrowsLogarithmically) {
  const auto inst = fsp::taillard_instance(21);
  const auto data = fsp::LowerBoundData::build(inst);
  const CpuCostModel model(data, CpuCostParams::xeon_e5520_reference());
  const double at_1k = model.pool_op_seconds(1 << 10);
  const double at_1m = model.pool_op_seconds(1 << 20);
  EXPECT_GT(at_1m, at_1k);
  // Doubling the exponent should roughly double the log part, nowhere near
  // the 1000x of linear growth.
  EXPECT_LT(at_1m, 3 * at_1k);
}

TEST(CpuCostModel, SerialNodeCostDominatedByBounding) {
  const auto inst = fsp::taillard_instance(101);
  const auto data = fsp::LowerBoundData::build(inst);
  const CpuCostModel model(data, CpuCostParams::xeon_e5520_reference());
  const double node = model.serial_node_seconds(200, 100000);
  const double lb = model.lb_eval_seconds(200);
  // The paper measured ~98.5% of serial time in the bounding operator.
  EXPECT_GT(lb / node, 0.95);
}

TEST(CpuCostModel, BranchCostLinearInChildren) {
  const auto inst = fsp::taillard_instance(21);
  const auto data = fsp::LowerBoundData::build(inst);
  const CpuCostModel model(data, CpuCostParams::xeon_e5520_reference());
  EXPECT_DOUBLE_EQ(model.branch_seconds(10), 10 * model.branch_seconds(1));
}

}  // namespace
}  // namespace fsbb::core
