#include "core/subproblem.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace fsbb::core {
namespace {

TEST(Subproblem, RootHasIdentityPermAndEmptyPrefix) {
  const Subproblem root = Subproblem::root(5);
  EXPECT_EQ(root.jobs(), 5);
  EXPECT_EQ(root.depth, 0);
  EXPECT_EQ(root.remaining(), 5);
  EXPECT_FALSE(root.is_complete());
  EXPECT_TRUE(root.prefix().empty());
  EXPECT_EQ(root.free_jobs().size(), 5u);
  EXPECT_EQ(root.lb, Subproblem::kUnevaluated);
  for (int j = 0; j < 5; ++j) {
    EXPECT_EQ(root.perm[static_cast<std::size_t>(j)], j);
  }
}

TEST(Subproblem, ChildSwapsSelectedJobToFront) {
  const Subproblem root = Subproblem::root(4);
  const Subproblem c2 = root.child(2);  // schedule free job #2 (= job 2)
  EXPECT_EQ(c2.depth, 1);
  EXPECT_EQ(c2.perm[0], 2);
  EXPECT_EQ(c2.remaining(), 3);
  ASSERT_EQ(c2.prefix().size(), 1u);
  EXPECT_EQ(c2.prefix()[0], 2);
  // The child's perm is still a permutation.
  auto sorted = c2.perm;
  std::sort(sorted.begin(), sorted.end());
  for (int j = 0; j < 4; ++j) EXPECT_EQ(sorted[static_cast<std::size_t>(j)], j);
  // Parent untouched.
  EXPECT_EQ(root.perm[0], 0);
  EXPECT_EQ(root.depth, 0);
}

TEST(Subproblem, ChildOfChildReachesCompletion) {
  Subproblem sp = Subproblem::root(3);
  sp = sp.child(1);  // schedule job 1
  sp = sp.child(0);  // schedule first free job
  sp = sp.child(0);
  EXPECT_TRUE(sp.is_complete());
  EXPECT_EQ(sp.remaining(), 0);
  EXPECT_EQ(sp.prefix().size(), 3u);
}

TEST(Subproblem, EveryChildSchedulesADistinctJob) {
  const Subproblem root = Subproblem::root(6);
  std::vector<JobId> firsts;
  for (int i = 0; i < root.remaining(); ++i) {
    firsts.push_back(root.child(i).perm[0]);
  }
  std::sort(firsts.begin(), firsts.end());
  for (int j = 0; j < 6; ++j) EXPECT_EQ(firsts[static_cast<std::size_t>(j)], j);
}

TEST(Subproblem, ChildResetsLb) {
  Subproblem root = Subproblem::root(3);
  root.lb = 123;
  EXPECT_EQ(root.child(0).lb, Subproblem::kUnevaluated);
}

#ifndef NDEBUG
TEST(Subproblem, ChildIndexOutOfRangeThrowsInDebug) {
  const Subproblem root = Subproblem::root(3);
  EXPECT_THROW(root.child(3), CheckFailure);
  EXPECT_THROW(root.child(-1), CheckFailure);
}
#endif

}  // namespace
}  // namespace fsbb::core
