// Stopping-condition coverage: time limits, combined limits, and the
// DFS strategy under budgets (the best-first paths are covered in
// test_engine.cpp).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "fsp/brute_force.h"
#include "fsp/generators.h"

namespace fsbb::core {
namespace {

fsp::Instance hard_instance(std::uint64_t seed) {
  // 13 jobs x 10 machines uniform: far too big to finish within a
  // millisecond-scale limit, small enough to build instantly.
  return fsp::make_instance(fsp::InstanceFamily::kUniform, 13, 10, seed);
}

TEST(EngineLimits, TimeLimitStopsTheSearch) {
  const fsp::Instance inst = hard_instance(3);
  const auto data = fsp::LowerBoundData::build(inst);
  SerialCpuEvaluator eval(inst, data);
  EngineOptions options;
  options.initial_ub = inst.total_work();
  options.time_limit_seconds = 0.05;
  options.collect_pool_on_stop = true;
  BBEngine engine(inst, data, eval, options);
  const SolveResult result = engine.solve();
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_FALSE(result.remaining_pool.empty());
  // Generous ceiling: the limit plus scheduling noise.
  EXPECT_LT(result.stats.wall_seconds, 2.0);
}

TEST(EngineLimits, ZeroLimitsMeanUnlimited) {
  const fsp::Instance inst =
      fsp::make_instance(fsp::InstanceFamily::kUniform, 8, 4, 5);
  const auto data = fsp::LowerBoundData::build(inst);
  SerialCpuEvaluator eval(inst, data);
  EngineOptions options;  // all limits at their 0 defaults
  BBEngine engine(inst, data, eval, options);
  const SolveResult result = engine.solve();
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.best_makespan, fsp::brute_force(inst).makespan);
}

TEST(EngineLimits, NodeBudgetWinsWhenTighterThanTime) {
  const fsp::Instance inst = hard_instance(4);
  const auto data = fsp::LowerBoundData::build(inst);
  SerialCpuEvaluator eval(inst, data);
  EngineOptions options;
  options.initial_ub = inst.total_work();
  options.node_budget = 3;
  options.time_limit_seconds = 3600;
  BBEngine engine(inst, data, eval, options);
  const SolveResult result = engine.solve();
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_LE(result.stats.branched, 3u);
}

TEST(EngineLimits, DfsWithBudgetKeepsDiving) {
  // Under DFS with a node budget, the deepest frontier node is at least as
  // deep as the budget allows (each branching dives one level).
  const fsp::Instance inst = hard_instance(5);
  const auto data = fsp::LowerBoundData::build(inst);
  SerialCpuEvaluator eval(inst, data);
  EngineOptions options;
  options.strategy = SelectionStrategy::kDepthFirst;
  options.initial_ub = inst.total_work();
  options.node_budget = 10;
  options.collect_pool_on_stop = true;
  BBEngine engine(inst, data, eval, options);
  const SolveResult result = engine.solve();
  ASSERT_FALSE(result.remaining_pool.empty());
  std::int32_t max_depth = 0;
  for (const Subproblem& sp : result.remaining_pool) {
    max_depth = std::max(max_depth, sp.depth);
  }
  EXPECT_GE(max_depth, 5);
}

TEST(EngineLimits, DfsAndBestFirstAgreeOnTheOptimum) {
  const fsp::Instance inst =
      fsp::make_instance(fsp::InstanceFamily::kTwoPlateaus, 9, 5, 8);
  const auto data = fsp::LowerBoundData::build(inst);
  const auto opt = fsp::brute_force(inst);
  for (const auto strategy :
       {SelectionStrategy::kDepthFirst, SelectionStrategy::kBestFirst}) {
    SerialCpuEvaluator eval(inst, data);
    EngineOptions options;
    options.strategy = strategy;
    BBEngine engine(inst, data, eval, options);
    const SolveResult result = engine.solve();
    ASSERT_TRUE(result.proven_optimal) << to_string(strategy);
    ASSERT_EQ(result.best_makespan, opt.makespan) << to_string(strategy);
  }
}

}  // namespace
}  // namespace fsbb::core
