#include "core/bidir.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/engine.h"
#include "fsp/brute_force.h"
#include "fsp/generators.h"
#include "fsp/makespan.h"

namespace fsbb::core {
namespace {

fsp::Instance random_instance(int jobs, int machines, std::uint64_t seed) {
  return fsp::make_instance(fsp::InstanceFamily::kUniform, jobs, machines,
                            seed);
}

// Best makespan over every ordering of the free middle jobs.
fsp::Time best_middle_completion(const fsp::Instance& inst,
                                 const BidirNode& node) {
  std::vector<fsp::JobId> perm = node.perm;
  const auto mid_begin = perm.begin() + node.head;
  const auto mid_end = perm.end() - node.tail;
  std::sort(mid_begin, mid_end);
  fsp::Time best = std::numeric_limits<fsp::Time>::max();
  do {
    best = std::min(best, fsp::makespan(inst, perm));
  } while (std::next_permutation(mid_begin, mid_end));
  return best;
}

// Builds a random node with the given head/tail sizes.
BidirNode random_node(const fsp::Instance& inst, int head, int tail,
                      SplitMix64& rng) {
  BidirNode node = BidirNode::root(inst.jobs());
  shuffle(node.perm, rng);
  node.head = head;
  node.tail = tail;
  return node;
}

class BidirBound : public ::testing::TestWithParam<int> {};

TEST_P(BidirBound, NeverExceedsTheBestCompletion) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  SplitMix64 rng(seed * 29 + 3);
  const fsp::Instance inst = random_instance(8, 3 + GetParam() % 4, seed);
  const auto data = fsp::LowerBoundData::build(inst);
  for (int head = 0; head <= 3; ++head) {
    for (int tail = 0; tail <= 3; ++tail) {
      const BidirNode node = random_node(inst, head, tail, rng);
      const fsp::Time lb = bidir_lower_bound(inst, data, node);
      ASSERT_LE(lb, best_middle_completion(inst, node))
          << "head " << head << " tail " << tail;
    }
  }
}

TEST_P(BidirBound, SuffixInformationNeverWeakensTheBound) {
  // With tail = 0 the bound must equal LB1's value shape (backs are zero);
  // adding a fixed suffix can only raise it for the same middle set... we
  // verify the weaker, always-true property: the bound with the suffix
  // fixed is >= the forward LB1 bound of the same head prefix restricted
  // to scheduled = head (since the suffix constrains completions further).
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 13 + 1;
  SplitMix64 rng(seed);
  const fsp::Instance inst = random_instance(9, 5, seed);
  const auto data = fsp::LowerBoundData::build(inst);
  BidirNode node = random_node(inst, 2, 0, rng);
  const fsp::Time without_suffix = bidir_lower_bound(inst, data, node);
  node.tail = 2;  // fix the last two free jobs as a suffix
  const fsp::Time with_suffix = bidir_lower_bound(inst, data, node);
  EXPECT_GE(with_suffix, without_suffix);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BidirBound, ::testing::Range(0, 12));

class BidirSolve : public ::testing::TestWithParam<int> {};

TEST_P(BidirSolve, MatchesBruteForceAndForwardEngine) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const fsp::Instance inst = random_instance(8, 4 + GetParam() % 3, seed);
  const auto data = fsp::LowerBoundData::build(inst);
  const auto opt = fsp::brute_force(inst);

  const BidirResult bidir = bidir_solve(inst, data);
  EXPECT_TRUE(bidir.proven_optimal);
  EXPECT_EQ(bidir.best_makespan, opt.makespan);
  ASSERT_FALSE(bidir.best_permutation.empty());
  EXPECT_EQ(fsp::makespan(inst, bidir.best_permutation), opt.makespan);

  SerialCpuEvaluator eval(inst, data);
  BBEngine forward(inst, data, eval, EngineOptions{});
  EXPECT_EQ(forward.solve().best_makespan, bidir.best_makespan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BidirSolve, ::testing::Range(0, 10));

TEST(Bidir, RootNodeShape) {
  const BidirNode root = BidirNode::root(6);
  EXPECT_EQ(root.jobs(), 6);
  EXPECT_EQ(root.head, 0);
  EXPECT_EQ(root.tail, 0);
  EXPECT_EQ(root.remaining(), 6);
  EXPECT_FALSE(root.is_complete());
}

TEST(Bidir, CompleteNodeBoundIsTheExactMakespan) {
  SplitMix64 rng(9);
  const fsp::Instance inst = random_instance(7, 4, 5);
  const auto data = fsp::LowerBoundData::build(inst);
  BidirNode node = BidirNode::root(inst.jobs());
  shuffle(node.perm, rng);
  node.head = 4;
  node.tail = 3;
  ASSERT_TRUE(node.is_complete());
  EXPECT_EQ(bidir_lower_bound(inst, data, node),
            fsp::makespan(inst, node.perm));
}

TEST(Bidir, TreeSizeComparableToForwardInAggregate) {
  // With the symmetric bound, bidirectional branching lands at rough
  // parity with forward branching on small uniform instances (its wins
  // come on larger instances with asymmetric congestion — see
  // bench_bidir_branching). Guard against systematic blow-up: the
  // aggregate tree must stay within 25% of the forward engine's.
  std::uint64_t forward_total = 0;
  std::uint64_t bidir_total = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const fsp::Instance inst = random_instance(9, 6, seed + 100);
    const auto data = fsp::LowerBoundData::build(inst);
    SerialCpuEvaluator eval(inst, data);
    EngineOptions options;
    options.initial_ub = inst.total_work();
    BBEngine forward(inst, data, eval, options);
    forward_total += forward.solve().stats.branched;

    BidirOptions bopts;
    bopts.initial_ub = inst.total_work();
    bidir_total += bidir_solve(inst, data, bopts).stats.branched;
  }
  EXPECT_LT(static_cast<double>(bidir_total),
            1.25 * static_cast<double>(forward_total));
}

TEST(Bidir, NodeBudgetStopsEarly) {
  const fsp::Instance inst = random_instance(12, 8, 3);
  const auto data = fsp::LowerBoundData::build(inst);
  BidirOptions options;
  options.initial_ub = inst.total_work();
  options.node_budget = 10;
  const BidirResult result = bidir_solve(inst, data, options);
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_LE(result.stats.branched, 10u);
}

}  // namespace
}  // namespace fsbb::core
