// core/audit.h: the debug-mode invariant auditors. Two halves:
//
//   1. Deliberate violations — a leaked arena slot, a double-released
//      ticket, a non-monotone incumbent — must throw CheckFailure with a
//      message that names the offender (slot/ticket/lane/value), so a
//      failure in a fuzz run points at the bug, not just at "audit failed".
//   2. Clean solves on every registered backend must pass with auditing
//      enabled — including early-stopped (deadline) solves, whose drained
//      pools exercise the end-of-run release path.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

#include "api/backend_registry.h"
#include "api/solver.h"
#include "common/check.h"
#include "core/audit.h"
#include "core/search_control.h"
#include "core/steal_stats.h"
#include "fsp/generators.h"
#include "fsp/lb_data.h"

namespace fsbb::core {
namespace {

using audit::ArenaAudit;
using audit::IncumbentAudit;
using audit::ScopedEnable;
using audit::TicketAudit;

std::string message_of(const std::function<void()>& f) {
  try {
    f();
  } catch (const CheckFailure& e) {
    return e.what();
  }
  return {};
}

TEST(AuditToggle, ScopedEnableRestoresThePreviousMode) {
  const bool before = audit::enabled();
  {
    const ScopedEnable on(true);
    EXPECT_TRUE(audit::enabled());
    {
      const ScopedEnable off(false);
      EXPECT_FALSE(audit::enabled());
    }
    EXPECT_TRUE(audit::enabled());
  }
  EXPECT_EQ(audit::enabled(), before);
}

// ------------------------------------------------------------ ArenaAudit --

TEST(ArenaAudit, CleanLifecyclePasses) {
  ArenaAudit audit("test");
  audit.on_allocate(0, 0);
  audit.on_allocate(1, 1);
  audit.on_release(1, 0);  // cross-lane release is legal
  audit.on_release(0, 0);
  audit.on_allocate(0, 2);  // slot reuse after release is legal
  audit.on_release(0, 2);
  EXPECT_NO_THROW(audit.check_drained());
  EXPECT_EQ(audit.allocations(), 3u);
  EXPECT_EQ(audit.releases(), 3u);
}

TEST(ArenaAudit, LeakedSlotThrowsNamingSlotAndLane) {
  ArenaAudit audit("leaky-engine");
  audit.on_allocate(7, 2);
  const std::string what = message_of([&] { audit.check_drained(); });
  EXPECT_NE(what.find("leaky-engine"), std::string::npos) << what;
  EXPECT_NE(what.find("slot 7"), std::string::npos) << what;
  EXPECT_NE(what.find("lane 2"), std::string::npos) << what;
  EXPECT_NE(what.find("never released"), std::string::npos) << what;
}

TEST(ArenaAudit, DoubleReleaseThrowsAtTheReleasingCall) {
  ArenaAudit audit("test");
  audit.on_allocate(3, 0);
  audit.on_release(3, 1);
  const std::string what = message_of([&] { audit.on_release(3, 1); });
  EXPECT_NE(what.find("slot 3"), std::string::npos) << what;
  EXPECT_NE(what.find("double release"), std::string::npos) << what;
}

TEST(ArenaAudit, ReleaseOfNeverAllocatedSlotThrows) {
  ArenaAudit audit("test");
  EXPECT_THROW(audit.on_release(42, 0), CheckFailure);
}

TEST(ArenaAudit, DoubleAllocationOfALiveSlotThrows) {
  ArenaAudit audit("test");
  audit.on_allocate(5, 0);
  const std::string what = message_of([&] { audit.on_allocate(5, 1); });
  EXPECT_NE(what.find("slot 5"), std::string::npos) << what;
  EXPECT_NE(what.find("allocated twice"), std::string::npos) << what;
}

// ----------------------------------------------------------- TicketAudit --

ResidentPoolStats clean_stats(std::uint64_t per_shard, std::size_t shards) {
  ResidentPoolStats stats;
  stats.shards.resize(shards);
  for (ShardOccupancy& s : stats.shards) {
    s.allocated = per_shard;
    s.released = per_shard;
  }
  return stats;
}

TEST(TicketAudit, CleanConservationPasses) {
  TicketAudit audit("test-pool");
  audit.on_issue(0);
  audit.on_issue(1);
  audit.on_release(0);
  audit.on_release(1);
  audit.on_issue(0);  // ticket reuse after release is legal
  audit.on_release(0);
  EXPECT_NO_THROW(audit.finish(clean_stats(3, 1)));
  EXPECT_EQ(audit.issued(), 3u);
  EXPECT_EQ(audit.released(), 3u);
}

TEST(TicketAudit, DoubleReleaseThrowsNamingTheTicket) {
  TicketAudit audit("test-pool");
  audit.on_issue(9);
  audit.on_release(9);
  const std::string what = message_of([&] { audit.on_release(9); });
  EXPECT_NE(what.find("test-pool"), std::string::npos) << what;
  EXPECT_NE(what.find("ticket 9"), std::string::npos) << what;
  EXPECT_NE(what.find("double release"), std::string::npos) << what;
}

TEST(TicketAudit, DoubleIssueWithoutReleaseThrows) {
  TicketAudit audit("test-pool");
  audit.on_issue(4);
  const std::string what = message_of([&] { audit.on_issue(4); });
  EXPECT_NE(what.find("ticket 4"), std::string::npos) << what;
  EXPECT_NE(what.find("issued twice"), std::string::npos) << what;
}

TEST(TicketAudit, OutstandingTicketAtFinishThrows) {
  TicketAudit audit("test-pool");
  audit.on_issue(2);
  const std::string what =
      message_of([&] { audit.finish(clean_stats(1, 1)); });
  EXPECT_NE(what.find("ticket 2"), std::string::npos) << what;
  EXPECT_NE(what.find("never released"), std::string::npos) << what;
}

TEST(TicketAudit, PerShardConservationMismatchThrows) {
  const TicketAudit audit("test-pool");
  ResidentPoolStats stats = clean_stats(5, 2);
  stats.shards[1].released = 4;  // one release lost inside the pool
  const std::string what = message_of([&] { audit.finish(stats); });
  EXPECT_NE(what.find("shard 1"), std::string::npos) << what;
}

TEST(TicketAudit, LiveSlotsAfterDrainThrow) {
  const TicketAudit audit("test-pool");
  ResidentPoolStats stats = clean_stats(0, 1);
  stats.shards[0].live = 3;
  EXPECT_THROW(audit.finish(stats), CheckFailure);
}

TEST(TicketAudit, SpillStealImbalanceThrows) {
  const TicketAudit audit("test-pool");
  ResidentPoolStats stats = clean_stats(0, 2);
  stats.shards[0].spills = 2;
  stats.shards[1].steals = 1;  // one borrowed slot not counted on the lender
  const std::string what = message_of([&] { audit.finish(stats); });
  EXPECT_NE(what.find("spills 2"), std::string::npos) << what;
  EXPECT_NE(what.find("steals 1"), std::string::npos) << what;
}

TEST(TicketAudit, RefillTotalMismatchThrows) {
  const TicketAudit audit("test-pool");
  ResidentPoolStats stats = clean_stats(0, 1);
  stats.refills = 2;
  stats.shards[0].refills = 1;
  EXPECT_THROW(audit.finish(stats), CheckFailure);
}

// -------------------------------------------------------- IncumbentAudit --

TEST(IncumbentAudit, StrictlyImprovingStreamPasses) {
  IncumbentAudit audit("test-stream");
  audit.observe(100);
  audit.observe(90);
  audit.observe(89);
  EXPECT_EQ(audit.observed(), 3u);
}

TEST(IncumbentAudit, NonImprovingIncumbentThrowsNamingBothValues) {
  IncumbentAudit audit("test-stream");
  audit.observe(90);
  const std::string what = message_of([&] { audit.observe(90); });
  EXPECT_NE(what.find("test-stream"), std::string::npos) << what;
  EXPECT_NE(what.find("90"), std::string::npos) << what;
  EXPECT_NE(what.find("strictly improving"), std::string::npos) << what;
}

TEST(IncumbentAudit, RegressionThrows) {
  IncumbentAudit audit("test-stream");
  audit.observe(80);
  EXPECT_THROW(audit.observe(95), CheckFailure);
}

// ----------------------------------------------- audited solves, all backends

// Every registered backend solves cleanly with the auditors live: the
// engines attach arena/ticket/incumbent auditors per solve, and a clean
// search must drain every slot and ticket and stream improving incumbents.
TEST(AuditedSolve, EveryBackendPassesCleanlyWithAuditingOn) {
  const ScopedEnable audited;
  const fsp::Instance inst = fsp::make_instance(
      fsp::InstanceFamily::kUniform, 8, 5, /*seed=*/0xA0D17u);
  for (const std::string& backend : api::BackendRegistry::global().keys()) {
    api::SolverConfig config;
    config.backend = backend;
    config.threads = 3;
    config.batch_size = 16;
    const api::SolveReport report = api::Solver(config).solve(inst);
    EXPECT_TRUE(report.proven_optimal) << backend;
  }
}

// Early-stopped solves exercise the other half of the drain logic: the
// stop leaves live nodes in the pool, and the engine must release every
// one of them (and every resident ticket) before the drain check runs.
TEST(AuditedSolve, EarlyStoppedSolvesStayConserved) {
  const ScopedEnable audited;
  const fsp::Instance inst = fsp::make_instance(
      fsp::InstanceFamily::kUniform, 12, 8, /*seed=*/0xDEAD1u);
  for (const std::string& backend : api::BackendRegistry::global().keys()) {
    api::SolverConfig config;
    config.backend = backend;
    config.threads = 3;
    config.batch_size = 16;
    // A poor seed incumbent + a tiny node budget: the search stops after
    // a few batches with a pool full of live nodes to drain.
    config.initial_ub = 1000000;
    config.node_budget = 32;
    const api::SolveReport report = api::Solver(config).solve(inst);
    EXPECT_FALSE(report.proven_optimal) << backend;
  }
}

// An already-expired deadline stops the search before it branches
// anything — the seeded root must still be released, not leaked.
TEST(AuditedSolve, ExpiredDeadlineSolvesStayConserved) {
  const ScopedEnable audited;
  const fsp::Instance inst = fsp::make_instance(
      fsp::InstanceFamily::kUniform, 10, 6, /*seed=*/0xF00Du);
  for (const std::string& backend : api::BackendRegistry::global().keys()) {
    api::SolverConfig config;
    config.backend = backend;
    config.threads = 3;
    config.deadline_ms = 0;
    const api::SolveReport report = api::Solver(config).solve(inst);
    EXPECT_FALSE(report.proven_optimal) << backend;
  }
}

// The event-stream auditor rides SearchControl: a sink installed while
// auditing is on gets the monotonicity auditor attached, and a full
// audited solve with progress streaming stays clean end to end.
TEST(AuditedSolve, ProgressStreamingSolvePassesUnderAudit) {
  const ScopedEnable audited;
  const fsp::Instance inst = fsp::make_instance(
      fsp::InstanceFamily::kTrend, 9, 6, /*seed=*/0xBEEFu);
  api::SolverConfig config;
  config.backend = "cpu-steal";
  config.threads = 4;
  config.initial_ub = 1000000;  // force a stream of improvements
  core::SearchControl control;
  fsp::Time last = std::numeric_limits<fsp::Time>::max();
  int incumbents = 0;
  control.set_sink([&](const SearchEvent& event) {
    if (event.kind != SearchEvent::Kind::kIncumbent) return;
    EXPECT_LT(event.incumbent, last);
    last = event.incumbent;
    ++incumbents;
  });
  const fsp::LowerBoundData data = fsp::LowerBoundData::build(inst);
  const api::BackendContext ctx{&inst, &data, &config, &control};
  const auto backend =
      api::BackendRegistry::global().create(config.backend, ctx);
  const SolveResult result = backend->solve();
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_GE(incumbents, 1);
}

}  // namespace
}  // namespace fsbb::core
