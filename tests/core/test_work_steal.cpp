// WorkStealingDeque / ShardedPool: LIFO-owner / FIFO-thief semantics,
// deterministic drain() for the frozen-pool protocol, and a concurrent
// push/pop/steal smoke test that checks linearizability's observable
// consequence here: every node leaves the pool exactly once.
#include "core/work_steal.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace fsbb::core {
namespace {

// A recognizable node: depth stores a payload id, perm is minimal.
Subproblem tagged(int id) {
  Subproblem sp = Subproblem::root(2);
  sp.lb = id;
  return sp;
}

TEST(VictimOrder, RoundTripsThroughStrings) {
  for (const VictimOrder order :
       {VictimOrder::kRoundRobin, VictimOrder::kRandom}) {
    EXPECT_EQ(parse_victim_order(to_string(order)), order);
  }
  EXPECT_THROW(parse_victim_order("leftmost"), CheckFailure);
}

TEST(WorkStealingDeque, OwnerPopsLifo) {
  WorkStealingDeque dq;
  for (int i = 0; i < 4; ++i) dq.push(tagged(i));
  for (int i = 3; i >= 0; --i) {
    const auto sp = dq.pop();
    ASSERT_TRUE(sp.has_value());
    EXPECT_EQ(sp->lb, i);
  }
  EXPECT_FALSE(dq.pop().has_value());
}

TEST(WorkStealingDeque, ThiefStealsOldestFirst) {
  WorkStealingDeque dq;
  for (int i = 0; i < 5; ++i) dq.push(tagged(i));
  std::vector<Subproblem> loot;
  EXPECT_EQ(dq.steal(loot, 2), 2u);
  ASSERT_EQ(loot.size(), 2u);
  EXPECT_EQ(loot[0].lb, 0);  // oldest (closest to the root) goes first
  EXPECT_EQ(loot[1].lb, 1);
  // The owner's hot end is untouched.
  EXPECT_EQ(dq.pop()->lb, 4);
  EXPECT_EQ(dq.size(), 2u);
}

TEST(WorkStealingDeque, StealFromEmptyReturnsZero) {
  WorkStealingDeque dq;
  std::vector<Subproblem> loot;
  EXPECT_EQ(dq.steal(loot, 8), 0u);
  EXPECT_TRUE(loot.empty());
}

TEST(WorkStealingDeque, DrainIsFrontToBack) {
  WorkStealingDeque dq;
  for (int i = 0; i < 6; ++i) dq.push(tagged(i));
  const std::vector<Subproblem> out = dq.drain();
  ASSERT_EQ(out.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)].lb, i);
  EXPECT_TRUE(dq.empty());
}

TEST(ShardedPool, DistributeRoundRobinsAndDrainIsDeterministic) {
  ShardedPool pool(3);
  std::vector<Subproblem> nodes;
  for (int i = 0; i < 7; ++i) nodes.push_back(tagged(i));
  pool.distribute(std::move(nodes));
  EXPECT_EQ(pool.size(), 7u);
  EXPECT_EQ(pool.shard(0).size(), 3u);  // 0, 3, 6
  EXPECT_EQ(pool.shard(1).size(), 2u);  // 1, 4
  EXPECT_EQ(pool.shard(2).size(), 2u);  // 2, 5

  // Shard-major, front-to-back — the frozen-pool protocol relies on the
  // same inputs draining in the same order every time.
  const std::vector<Subproblem> out = pool.drain();
  ASSERT_EQ(out.size(), 7u);
  const std::vector<fsp::Time> expected = {0, 3, 6, 1, 4, 2, 5};
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].lb, expected[i]) << i;
  }
  EXPECT_TRUE(pool.empty());
}

TEST(ShardedPool, RejectsZeroShards) {
  EXPECT_THROW(ShardedPool(0), CheckFailure);
}

// --- bounded rings over externally owned fixed-stride storage -----------
// The form the device-resident pools instantiate: same deque/shard
// machinery, but the slots live in a caller-owned slab and push can fail.

TEST(FixedRingDeque, PushFailsExactlyWhenTheSlabIsFull) {
  std::vector<std::uint32_t> slab(4);
  WorkStealingDequeT<std::uint32_t, FixedRingStorage<std::uint32_t>> deque{
      FixedRingStorage<std::uint32_t>(slab)};
  EXPECT_EQ(deque.capacity(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_TRUE(deque.push(i + 10));
  EXPECT_FALSE(deque.push(99));
  EXPECT_EQ(deque.size(), 4u);
  EXPECT_EQ(deque.pop(), 13u);  // LIFO owner end
  EXPECT_TRUE(deque.push(99));  // freed slot is reusable
}

TEST(FixedRingDeque, StealTakesOldestAndDrainIsFrontToBack) {
  std::vector<std::uint32_t> slab(8);
  WorkStealingDequeT<std::uint32_t, FixedRingStorage<std::uint32_t>> deque{
      FixedRingStorage<std::uint32_t>(slab)};
  for (std::uint32_t i = 0; i < 6; ++i) deque.push(std::uint32_t{i});
  std::vector<std::uint32_t> loot;
  EXPECT_EQ(deque.steal(loot, 2), 2u);
  EXPECT_EQ(loot, (std::vector<std::uint32_t>{0, 1}));
  // The ring wraps: pushes after front-pops reuse the vacated slots.
  deque.push(6u);
  deque.push(7u);
  deque.push(8u);
  EXPECT_EQ(deque.drain(), (std::vector<std::uint32_t>{2, 3, 4, 5, 6, 7, 8}));
  EXPECT_TRUE(deque.empty());
}

TEST(ShardedPool, ShardsOverExternalStorageKeepTheSameOperations) {
  std::vector<std::uint32_t> slab(12);
  std::vector<FixedRingStorage<std::uint32_t>> rings;
  for (int s = 0; s < 3; ++s) {
    rings.emplace_back(std::span<std::uint32_t>(slab).subspan(
        static_cast<std::size_t>(s) * 4, 4));
  }
  ShardedPoolT<std::uint32_t, FixedRingStorage<std::uint32_t>> pool(
      std::move(rings));
  ASSERT_EQ(pool.shards(), 3u);
  std::vector<std::uint32_t> nodes;
  for (std::uint32_t i = 0; i < 9; ++i) nodes.push_back(i);
  pool.distribute(std::move(nodes));
  EXPECT_EQ(pool.size(), 9u);
  // Round-robin placement, then the deterministic shard-0-first drain.
  EXPECT_EQ(pool.drain(),
            (std::vector<std::uint32_t>{0, 3, 6, 1, 4, 7, 2, 5, 8}));
}

// Concurrency smoke test: one owner per shard pushes and pops its own
// deque while every worker also steals from the others. Each popped or
// stolen node is recorded; at the end every id must have left the pool
// exactly once — no loss, no duplication, regardless of interleaving.
TEST(WorkStealingDeque, ConcurrentPushPopStealLosesAndDuplicatesNothing) {
  constexpr int kWorkers = 4;
  constexpr int kPerWorker = 2000;
  ShardedPool pool(kWorkers);
  std::atomic<int> consumed{0};
  std::vector<std::vector<int>> seen(kWorkers);

  auto body = [&](int id) {
    std::vector<Subproblem> loot;
    int pushed = 0;
    std::size_t rr = static_cast<std::size_t>(id + 1) % kWorkers;
    while (consumed.load(std::memory_order_acquire) <
           kWorkers * kPerWorker) {
      if (pushed < kPerWorker) {
        // Globally unique payload id.
        pool.shard(static_cast<std::size_t>(id))
            .push(tagged(id * kPerWorker + pushed));
        ++pushed;
      }
      if (auto sp = pool.shard(static_cast<std::size_t>(id)).pop()) {
        seen[static_cast<std::size_t>(id)].push_back(
            static_cast<int>(sp->lb));
        consumed.fetch_add(1, std::memory_order_acq_rel);
        continue;
      }
      loot.clear();
      if (pool.shard(rr).steal(loot, 3) > 0) {
        for (const Subproblem& sp : loot) {
          seen[static_cast<std::size_t>(id)].push_back(
              static_cast<int>(sp.lb));
          consumed.fetch_add(1, std::memory_order_acq_rel);
        }
      }
      rr = (rr + 1) % kWorkers;
      if (rr == static_cast<std::size_t>(id)) rr = (rr + 1) % kWorkers;
    }
  };

  {
    std::vector<std::thread> threads;
    for (int id = 0; id < kWorkers; ++id) threads.emplace_back(body, id);
    for (auto& t : threads) t.join();
  }

  std::multiset<int> all;
  for (const auto& part : seen) all.insert(part.begin(), part.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kWorkers * kPerWorker));
  for (int id = 0; id < kWorkers * kPerWorker; ++id) {
    EXPECT_EQ(all.count(id), 1u) << "node " << id;
  }
  EXPECT_TRUE(pool.empty());
}

// --- the lock-free Chase–Lev specialization ------------------------------
// Same observable semantics as the mutex deque (owner LIFO, thieves FIFO,
// deterministic quiescent drain), selected via ChaseLevStorage. Nodes must
// be trivially copyable, so these run over raw integers and a 12-byte
// multi-word struct standing in for NodeRef.

using ChaseLevU32 =
    WorkStealingDequeT<std::uint32_t, ChaseLevStorage<std::uint32_t>>;

TEST(ChaseLevDeque, OwnerPopsLifoAndThiefStealsOldest) {
  ChaseLevU32 dq;
  for (std::uint32_t i = 0; i < 5; ++i) dq.push(std::uint32_t{i});
  std::vector<std::uint32_t> loot;
  EXPECT_EQ(dq.steal(loot, 2), 2u);
  EXPECT_EQ(loot, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(dq.pop(), 4u);  // the owner's hot end is untouched
  EXPECT_EQ(dq.pop(), 3u);
  EXPECT_EQ(dq.pop(), 2u);
  EXPECT_FALSE(dq.pop().has_value());
  std::vector<std::uint32_t> empty_loot;
  EXPECT_EQ(dq.steal(empty_loot, 4), 0u);
}

TEST(ChaseLevDeque, GrowsPastTheInitialCapacity) {
  // The initial circular array holds 64 cells; pushing well past that
  // must grow transparently and preserve full LIFO order.
  ChaseLevU32 dq;
  constexpr std::uint32_t kCount = 1000;
  for (std::uint32_t i = 0; i < kCount; ++i) dq.push(std::uint32_t{i});
  EXPECT_EQ(dq.size(), static_cast<std::size_t>(kCount));
  for (std::uint32_t i = kCount; i-- > 0;) {
    const auto v = dq.pop();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);
  }
  EXPECT_TRUE(dq.empty());
}

TEST(ChaseLevDeque, DrainIsFrontToBack) {
  ChaseLevU32 dq;
  for (std::uint32_t i = 0; i < 6; ++i) dq.push(std::uint32_t{i});
  EXPECT_EQ(dq.drain(), (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_TRUE(dq.empty());
  // The deque stays usable after a drain.
  dq.push(42u);
  EXPECT_EQ(dq.pop(), 42u);
}

TEST(ChaseLevDeque, MultiWordNodesRoundTripIntact) {
  // 12-byte nodes span three atomic words per cell — the NodeRef shape
  // the steal engine actually stores.
  struct Node12 {
    std::uint32_t a, b, c;
  };
  static_assert(sizeof(Node12) == 12);
  WorkStealingDequeT<Node12, ChaseLevStorage<Node12>> dq;
  for (std::uint32_t i = 0; i < 100; ++i) {
    dq.push(Node12{i, i * 31 + 7, ~i});
  }
  std::vector<Node12> loot;
  ASSERT_EQ(dq.steal(loot, 3), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(loot[i].a, i);
    EXPECT_EQ(loot[i].b, i * 31 + 7);
    EXPECT_EQ(loot[i].c, ~i);
  }
  for (std::uint32_t i = 100; i-- > 3;) {
    const auto v = dq.pop();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(v->a, i);
    ASSERT_EQ(v->b, i * 31 + 7);
    ASSERT_EQ(v->c, ~i);
  }
  EXPECT_TRUE(dq.empty());
}

TEST(ChaseLevSharded, DistributeAndDrainMatchTheMutexPool) {
  // ShardedPoolT composes over the Chase–Lev shards unchanged: same
  // round-robin placement, same deterministic shard-major drain.
  ShardedPoolT<std::uint32_t, ChaseLevStorage<std::uint32_t>> pool(3);
  std::vector<std::uint32_t> nodes;
  for (std::uint32_t i = 0; i < 9; ++i) nodes.push_back(i);
  pool.distribute(std::move(nodes));
  EXPECT_EQ(pool.size(), 9u);
  EXPECT_EQ(pool.drain(),
            (std::vector<std::uint32_t>{0, 3, 6, 1, 4, 7, 2, 5, 8}));
  EXPECT_TRUE(pool.empty());
}

// One owner pushes and pops its own deque at full speed while several
// thieves hammer steal() on the same deque. Every id must leave exactly
// once — the observable consequence of Chase–Lev's linearizability — and
// under TSAN this doubles as a fence-placement audit.
TEST(ChaseLevDeque, ConcurrentOwnerAndThievesLoseAndDuplicateNothing) {
  constexpr std::uint32_t kTotal = 20000;
  constexpr int kThieves = 3;
  ChaseLevU32 dq;
  std::atomic<std::uint32_t> consumed{0};
  std::vector<std::uint32_t> owner_seen;
  std::vector<std::vector<std::uint32_t>> thief_seen(kThieves);

  auto thief = [&](int id) {
    std::vector<std::uint32_t> loot;
    while (consumed.load(std::memory_order_acquire) < kTotal) {
      loot.clear();
      if (dq.steal(loot, 4) > 0) {
        for (const std::uint32_t v : loot) {
          thief_seen[static_cast<std::size_t>(id)].push_back(v);
        }
        consumed.fetch_add(static_cast<std::uint32_t>(loot.size()),
                           std::memory_order_acq_rel);
      }
    }
  };

  std::vector<std::thread> thieves;
  for (int id = 0; id < kThieves; ++id) thieves.emplace_back(thief, id);

  // Owner: interleave pushes with pops, then pop until genuinely empty.
  std::uint32_t next = 0;
  while (next < kTotal) {
    for (int burst = 0; burst < 8 && next < kTotal; ++burst) {
      dq.push(std::uint32_t{next});
      ++next;
    }
    if (auto v = dq.pop()) {
      owner_seen.push_back(*v);
      consumed.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  while (auto v = dq.pop()) {
    owner_seen.push_back(*v);
    consumed.fetch_add(1, std::memory_order_acq_rel);
  }
  // pop() returned empty, so every remaining node is already with a
  // thief; wait for their counts to land.
  for (auto& t : thieves) t.join();

  std::multiset<std::uint32_t> all(owner_seen.begin(), owner_seen.end());
  for (const auto& part : thief_seen) all.insert(part.begin(), part.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kTotal));
  for (std::uint32_t id = 0; id < kTotal; ++id) {
    ASSERT_EQ(all.count(id), 1u) << "node " << id;
  }
  EXPECT_TRUE(dq.empty());
}

}  // namespace
}  // namespace fsbb::core
