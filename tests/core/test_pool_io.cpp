#include "core/pool_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/check.h"
#include "fsp/generators.h"

namespace fsbb::core {
namespace {

FrozenPool sample_pool() {
  const fsp::Instance inst =
      fsp::make_instance(fsp::InstanceFamily::kUniform, 10, 5, 42);
  const auto data = fsp::LowerBoundData::build(inst);
  return freeze_pool(inst, data, 25, inst.total_work());
}

TEST(PoolIo, RoundTripIsBitIdentical) {
  const FrozenPool pool = sample_pool();
  std::stringstream ss;
  write_frozen_pool(ss, pool);
  const FrozenPool loaded = read_frozen_pool(ss);

  EXPECT_EQ(loaded.incumbent, pool.incumbent);
  ASSERT_EQ(loaded.nodes.size(), pool.nodes.size());
  for (std::size_t i = 0; i < pool.nodes.size(); ++i) {
    EXPECT_EQ(loaded.nodes[i].perm, pool.nodes[i].perm);
    EXPECT_EQ(loaded.nodes[i].depth, pool.nodes[i].depth);
    EXPECT_EQ(loaded.nodes[i].lb, pool.nodes[i].lb);
  }
}

TEST(PoolIo, FileRoundTrip) {
  const FrozenPool pool = sample_pool();
  const std::string path = ::testing::TempDir() + "/fsbb_pool_io_test.pool";
  write_frozen_pool_file(path, pool);
  const FrozenPool loaded = read_frozen_pool_file(path);
  EXPECT_EQ(loaded.nodes.size(), pool.nodes.size());
  EXPECT_EQ(loaded.incumbent, pool.incumbent);
}

TEST(PoolIo, ReloadedPoolExploresIdentically) {
  const fsp::Instance inst =
      fsp::make_instance(fsp::InstanceFamily::kUniform, 10, 5, 42);
  const auto data = fsp::LowerBoundData::build(inst);
  const FrozenPool pool = freeze_pool(inst, data, 25, inst.total_work());

  std::stringstream ss;
  write_frozen_pool(ss, pool);
  const FrozenPool loaded = read_frozen_pool(ss);

  SerialCpuEvaluator e1(inst, data);
  SerialCpuEvaluator e2(inst, data);
  const auto a =
      explore_frozen(inst, data, pool, e1, SelectionStrategy::kBestFirst, 8);
  const auto b =
      explore_frozen(inst, data, loaded, e2, SelectionStrategy::kBestFirst, 8);
  EXPECT_EQ(a.best_makespan, b.best_makespan);
  EXPECT_EQ(a.stats.branched, b.stats.branched);
  EXPECT_EQ(a.stats.pruned, b.stats.pruned);
}

TEST(PoolIo, RejectsCorruptInputs) {
  {
    std::istringstream in("not-a-pool 1\n");
    EXPECT_THROW(read_frozen_pool(in), CheckFailure);
  }
  {
    std::istringstream in("fsbb-frozen-pool 99\n3 1 100\n0 0 1 2 50\n");
    EXPECT_THROW(read_frozen_pool(in), CheckFailure);  // bad version
  }
  {
    // Duplicate job in the permutation.
    std::istringstream in("fsbb-frozen-pool 1\n3 1 100\n0 0 0 2 50\n");
    EXPECT_THROW(read_frozen_pool(in), CheckFailure);
  }
  {
    // Truncated node line.
    std::istringstream in("fsbb-frozen-pool 1\n3 2 100\n0 0 1 2 50\n");
    EXPECT_THROW(read_frozen_pool(in), CheckFailure);
  }
  {
    // Depth beyond the job count.
    std::istringstream in("fsbb-frozen-pool 1\n3 1 100\n7 0 1 2 50\n");
    EXPECT_THROW(read_frozen_pool(in), CheckFailure);
  }
}

TEST(PoolIo, RefusesEmptyPools) {
  FrozenPool empty;
  std::stringstream ss;
  EXPECT_THROW(write_frozen_pool(ss, empty), CheckFailure);
  try {
    write_frozen_pool(ss, empty);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("empty pool"), std::string::npos)
        << e.what();
  }
}

TEST(PoolIo, StringRoundTrip) {
  const FrozenPool pool = sample_pool();
  const std::string text = write_frozen_pool_string(pool);
  const FrozenPool loaded = read_frozen_pool_string(text, "test");
  EXPECT_EQ(loaded.incumbent, pool.incumbent);
  ASSERT_EQ(loaded.nodes.size(), pool.nodes.size());
  for (std::size_t i = 0; i < pool.nodes.size(); ++i) {
    EXPECT_EQ(loaded.nodes[i].perm, pool.nodes[i].perm);
  }
}

TEST(PoolIo, ErrorsNameTheSourceAndLineNumber) {
  // Node 2 lives on line 4 (magic, header, node, node) and carries a
  // duplicate job — the message must say where, in which source.
  const std::string text =
      "fsbb-frozen-pool 1\n3 2 100\n0 0 1 2 50\n0 0 0 2 50\n";
  try {
    read_frozen_pool_string(text, "shard-7.pool");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard-7.pool"), std::string::npos) << what;
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
  }
}

TEST(PoolIo, FileErrorsNameThePath) {
  const std::string path = ::testing::TempDir() + "/fsbb_pool_io_bad.pool";
  {
    std::ofstream out(path);
    out << "fsbb-frozen-pool 1\ngarbage\n";
  }
  try {
    read_frozen_pool_file(path);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
}

TEST(PoolIo, ReadsCrlfTerminatedPools) {
  // A pool file that traveled through a Windows pipe: every line ends
  // \r\n. The reader must strip the '\r' instead of failing the parse.
  const FrozenPool pool = sample_pool();
  std::string text = write_frozen_pool_string(pool);
  std::string crlf;
  for (const char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  const FrozenPool loaded = read_frozen_pool_string(crlf, "crlf");
  EXPECT_EQ(loaded.incumbent, pool.incumbent);
  EXPECT_EQ(loaded.nodes.size(), pool.nodes.size());
}

}  // namespace
}  // namespace fsbb::core
