#include <gtest/gtest.h>

#include "core/engine.h"
#include "fsp/brute_force.h"
#include "fsp/generators.h"
#include "fsp/lb2.h"
#include "fsp/lb_one_machine.h"

namespace fsbb::core {
namespace {

fsp::Instance test_instance(std::uint64_t seed) {
  return fsp::make_instance(fsp::InstanceFamily::kUniform, 8, 4, seed);
}

TEST(CallbackEvaluator, WrapsAnArbitraryBound) {
  const fsp::Instance inst = test_instance(1);
  CallbackEvaluator eval("always-7", [](const Subproblem&) { return 7; });
  std::vector<Subproblem> batch(3, Subproblem::root(inst.jobs()));
  eval.evaluate(batch);
  for (const Subproblem& sp : batch) EXPECT_EQ(sp.lb, 7);
  EXPECT_EQ(eval.name(), "always-7");
  EXPECT_EQ(eval.ledger().nodes, 3u);
}

class BoundChoice : public ::testing::TestWithParam<int> {};

TEST_P(BoundChoice, EngineProvesTheSameOptimumWithEveryBound) {
  // LB0, LB1 and LB2 differ in tree size, never in the answer.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const fsp::Instance inst = test_instance(seed);
  const auto lb1_data = fsp::LowerBoundData::build(inst);
  const auto lb2_data = fsp::Lb2Data::build(inst);
  const auto opt = fsp::brute_force(inst);

  CallbackEvaluator lb0("lb0", [&](const Subproblem& sp) {
    return fsp::lb0_from_prefix(inst, lb1_data, sp.prefix());
  });
  CallbackEvaluator lb2("lb2", [&](const Subproblem& sp) {
    return fsp::lb2_from_prefix(inst, lb1_data, lb2_data, sp.prefix());
  });
  SerialCpuEvaluator lb1(inst, lb1_data);

  std::uint64_t branched_lb0 = 0;
  std::uint64_t branched_lb2 = 0;
  for (BoundEvaluator* eval :
       std::initializer_list<BoundEvaluator*>{&lb0, &lb1, &lb2}) {
    EngineOptions options;
    options.initial_ub = inst.total_work();  // same weak UB for all bounds
    BBEngine engine(inst, lb1_data, *eval, options);
    const SolveResult result = engine.solve();
    ASSERT_TRUE(result.proven_optimal) << eval->name();
    ASSERT_EQ(result.best_makespan, opt.makespan) << eval->name();
    if (eval == &lb0) branched_lb0 = result.stats.branched;
    if (eval == &lb2) branched_lb2 = result.stats.branched;
  }
  // A stronger bound never explores a larger tree under identical control.
  EXPECT_LE(branched_lb2, branched_lb0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundChoice, ::testing::Range(0, 8));

}  // namespace
}  // namespace fsbb::core
