#include "core/engine.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "fsp/brute_force.h"
#include "fsp/makespan.h"
#include "fsp/neh.h"

namespace fsbb::core {
namespace {

fsp::Instance random_instance(int jobs, int machines, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Matrix<fsp::Time> pt(static_cast<std::size_t>(jobs),
                       static_cast<std::size_t>(machines));
  for (auto& v : pt.flat()) v = static_cast<fsp::Time>(rng.next_in(1, 50));
  return fsp::Instance("rand", std::move(pt));
}

// (seed, strategy, batch_size)
using EngineCase = std::tuple<int, SelectionStrategy, int>;

class EngineVsBruteForce : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineVsBruteForce, FindsTheOptimum) {
  const auto [seed, strategy, batch] = GetParam();
  const fsp::Instance inst =
      random_instance(7, 3 + seed % 3, static_cast<std::uint64_t>(seed));
  const auto data = fsp::LowerBoundData::build(inst);
  const auto opt = fsp::brute_force(inst);

  SerialCpuEvaluator eval(inst, data);
  EngineOptions options;
  options.strategy = strategy;
  options.batch_size = static_cast<std::size_t>(batch);
  BBEngine engine(inst, data, eval, options);
  const SolveResult result = engine.solve();

  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.best_makespan, opt.makespan);
  ASSERT_FALSE(result.best_permutation.empty());
  EXPECT_EQ(fsp::makespan(inst, result.best_permutation), opt.makespan);
  // branched may legitimately be 0: when NEH already found the optimum the
  // root is pruned immediately.
  EXPECT_GE(result.stats.generated, result.stats.branched);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineVsBruteForce,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(SelectionStrategy::kDepthFirst,
                                         SelectionStrategy::kBestFirst),
                       ::testing::Values(1, 16, 64)));

TEST(Engine, PrunesAgainstAPerfectInitialUb) {
  const fsp::Instance inst = random_instance(7, 4, 123);
  const auto data = fsp::LowerBoundData::build(inst);
  const auto opt = fsp::brute_force(inst);

  SerialCpuEvaluator eval(inst, data);
  EngineOptions options;
  options.initial_ub = opt.makespan;  // nothing strictly better exists
  BBEngine engine(inst, data, eval, options);
  const SolveResult result = engine.solve();

  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.best_makespan, opt.makespan);
  // With UB = optimum, strictly-improving schedules don't exist, so the
  // incumbent permutation may legitimately stay empty.
}

TEST(Engine, TighterUbExploresNoMoreNodes) {
  const fsp::Instance inst = random_instance(8, 4, 9);
  const auto data = fsp::LowerBoundData::build(inst);
  const auto opt = fsp::brute_force(inst);

  auto run_with_ub = [&](fsp::Time ub) {
    SerialCpuEvaluator eval(inst, data);
    EngineOptions options;
    options.initial_ub = ub;
    BBEngine engine(inst, data, eval, options);
    return engine.solve().stats.branched;
  };
  const auto loose = run_with_ub(opt.makespan + 100);
  const auto tight = run_with_ub(opt.makespan + 1);
  EXPECT_LE(tight, loose);
}

TEST(Engine, NodeBudgetStopsEarly) {
  const fsp::Instance inst = random_instance(10, 5, 77);
  const auto data = fsp::LowerBoundData::build(inst);
  SerialCpuEvaluator eval(inst, data);
  EngineOptions options;
  // A deliberately weak incumbent so the engine must branch.
  options.initial_ub = inst.total_work();
  options.node_budget = 5;
  options.collect_pool_on_stop = true;
  BBEngine engine(inst, data, eval, options);
  const SolveResult result = engine.solve();
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_LE(result.stats.branched, 5u);
  EXPECT_FALSE(result.remaining_pool.empty());
  for (const Subproblem& sp : result.remaining_pool) {
    EXPECT_NE(sp.lb, Subproblem::kUnevaluated);
  }
}

TEST(Engine, FreezePoolSizeStop) {
  const fsp::Instance inst = random_instance(10, 5, 78);
  const auto data = fsp::LowerBoundData::build(inst);
  SerialCpuEvaluator eval(inst, data);
  EngineOptions options;
  options.initial_ub = inst.total_work();
  options.freeze_pool_size = 30;
  options.collect_pool_on_stop = true;
  BBEngine engine(inst, data, eval, options);
  const SolveResult result = engine.solve();
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_GE(result.remaining_pool.size(), 30u);
}

TEST(Engine, SolveFromFrozenNodesReachesTheOptimum) {
  const fsp::Instance inst = random_instance(8, 4, 55);
  const auto data = fsp::LowerBoundData::build(inst);
  const auto opt = fsp::brute_force(inst);

  SerialCpuEvaluator eval(inst, data);
  EngineOptions freeze_opts;
  freeze_opts.initial_ub = inst.total_work();
  freeze_opts.freeze_pool_size = 10;
  freeze_opts.collect_pool_on_stop = true;
  BBEngine freezer(inst, data, eval, freeze_opts);
  SolveResult frozen = freezer.solve();
  ASSERT_FALSE(frozen.remaining_pool.empty());

  SerialCpuEvaluator eval2(inst, data);
  BBEngine engine(inst, data, eval2, EngineOptions{});
  const SolveResult result =
      engine.solve_from(std::move(frozen.remaining_pool), frozen.best_makespan);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.best_makespan, opt.makespan);
}

TEST(Engine, SolveFromRejectsUnevaluatedNodes) {
  const fsp::Instance inst = random_instance(6, 3, 2);
  const auto data = fsp::LowerBoundData::build(inst);
  SerialCpuEvaluator eval(inst, data);
  BBEngine engine(inst, data, eval, EngineOptions{});
  std::vector<Subproblem> nodes;
  nodes.push_back(Subproblem::root(inst.jobs()));  // lb unset
  EXPECT_THROW(engine.solve_from(std::move(nodes), 1000), CheckFailure);
}

TEST(Engine, StatsAreInternallyConsistent) {
  const fsp::Instance inst = random_instance(7, 4, 31);
  const auto data = fsp::LowerBoundData::build(inst);
  SerialCpuEvaluator eval(inst, data);
  BBEngine engine(inst, data, eval, EngineOptions{});
  const SolveResult r = engine.solve();
  // Children either became leaves, got evaluated, or were pruned at pop.
  EXPECT_EQ(r.stats.generated, r.stats.evaluated + r.stats.leaves);
  EXPECT_GE(r.stats.wall_seconds, r.stats.bounding_seconds);
  EXPECT_GT(r.stats.bounding_fraction(), 0.0);
}

TEST(Engine, BatchSizeDoesNotChangeTheOptimum) {
  const fsp::Instance inst = random_instance(9, 4, 13);
  const auto data = fsp::LowerBoundData::build(inst);
  const auto opt = fsp::brute_force(inst);
  for (const std::size_t batch : {std::size_t{1}, std::size_t{8},
                                  std::size_t{64}, std::size_t{1024}}) {
    SerialCpuEvaluator eval(inst, data);
    EngineOptions options;
    options.batch_size = batch;
    BBEngine engine(inst, data, eval, options);
    const SolveResult result = engine.solve();
    ASSERT_EQ(result.best_makespan, opt.makespan) << "batch " << batch;
    ASSERT_TRUE(result.proven_optimal);
  }
}

}  // namespace
}  // namespace fsbb::core
