#include "core/pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace fsbb::core {
namespace {

Subproblem node(int jobs, int depth, Time lb) {
  Subproblem sp = Subproblem::root(jobs);
  sp.depth = depth;
  sp.lb = lb;
  return sp;
}

TEST(DfsPool, LifoOrder) {
  auto pool = make_pool(SelectionStrategy::kDepthFirst);
  pool->push(node(4, 1, 10));
  pool->push(node(4, 2, 5));
  pool->push(node(4, 3, 20));
  EXPECT_EQ(pool->size(), 3u);
  EXPECT_EQ(pool->pop().depth, 3);
  EXPECT_EQ(pool->pop().depth, 2);
  EXPECT_EQ(pool->pop().depth, 1);
  EXPECT_TRUE(pool->empty());
}

TEST(BestFirstPool, PopsSmallestLowerBound) {
  auto pool = make_pool(SelectionStrategy::kBestFirst);
  pool->push(node(4, 1, 30));
  pool->push(node(4, 1, 10));
  pool->push(node(4, 1, 20));
  EXPECT_EQ(pool->pop().lb, 10);
  EXPECT_EQ(pool->pop().lb, 20);
  EXPECT_EQ(pool->pop().lb, 30);
}

TEST(BestFirstPool, TieBreaksDeeperFirstThenInsertion) {
  auto pool = make_pool(SelectionStrategy::kBestFirst);
  Subproblem a = node(4, 1, 10);
  a.perm[0] = 1;  // tag via perm to identify later
  Subproblem b = node(4, 3, 10);
  b.perm[0] = 2;
  Subproblem c = node(4, 3, 10);
  c.perm[0] = 3;
  pool->push(std::move(a));
  pool->push(std::move(b));
  pool->push(std::move(c));
  // Same lb: deeper first; same depth: earlier insertion first.
  EXPECT_EQ(pool->pop().perm[0], 2);
  EXPECT_EQ(pool->pop().perm[0], 3);
  EXPECT_EQ(pool->pop().perm[0], 1);
}

TEST(BestFirstPool, InterleavedPushPop) {
  auto pool = make_pool(SelectionStrategy::kBestFirst);
  pool->push(node(4, 1, 50));
  pool->push(node(4, 1, 40));
  EXPECT_EQ(pool->pop().lb, 40);
  pool->push(node(4, 1, 30));
  pool->push(node(4, 1, 60));
  EXPECT_EQ(pool->pop().lb, 30);
  EXPECT_EQ(pool->pop().lb, 50);
  EXPECT_EQ(pool->pop().lb, 60);
}

TEST(Pool, DrainReturnsEverythingDeterministically) {
  for (const auto strategy :
       {SelectionStrategy::kDepthFirst, SelectionStrategy::kBestFirst}) {
    auto pool = make_pool(strategy);
    for (int i = 0; i < 20; ++i) pool->push(node(4, i % 4, 100 - i));
    auto a = pool->drain();
    EXPECT_EQ(a.size(), 20u);
    EXPECT_TRUE(pool->empty());

    auto pool2 = make_pool(strategy);
    for (int i = 0; i < 20; ++i) pool2->push(node(4, i % 4, 100 - i));
    const auto b = pool2->drain();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].lb, b[i].lb);
      EXPECT_EQ(a[i].depth, b[i].depth);
    }
  }
}

TEST(BestFirstPool, DrainIsSortedByPriority) {
  auto pool = make_pool(SelectionStrategy::kBestFirst);
  for (int i = 0; i < 50; ++i) pool->push(node(4, 0, (i * 37) % 100));
  const auto nodes = pool->drain();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LE(nodes[i - 1].lb, nodes[i].lb);
  }
}

TEST(Pool, PopOnEmptyThrows) {
  auto pool = make_pool(SelectionStrategy::kBestFirst);
  EXPECT_THROW(pool->pop(), CheckFailure);
}

TEST(Pool, StrategyNames) {
  EXPECT_STREQ(to_string(SelectionStrategy::kDepthFirst), "depth-first");
  EXPECT_STREQ(to_string(SelectionStrategy::kBestFirst), "best-first");
}

}  // namespace
}  // namespace fsbb::core
