// SearchControl: cancellation latches, deadlines (including already-expired
// ones) latch, the first reason wins for every observer, incumbent events are
// gated to strictly improving quality, and ticks are rate limited.
#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "common/check.h"
#include "core/search_control.h"

namespace fsbb::core {
namespace {

TEST(StopReason, ToStringCoversEveryReason) {
  EXPECT_STREQ(to_string(StopReason::kOptimal), "optimal");
  EXPECT_STREQ(to_string(StopReason::kCanceled), "canceled");
  EXPECT_STREQ(to_string(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(to_string(StopReason::kBudget), "budget");
  EXPECT_STREQ(to_string(StopReason::kFrozen), "frozen");
}

TEST(SearchControl, RunsFreelyWithoutCancelOrDeadline) {
  SearchControl control;
  EXPECT_FALSE(control.should_stop().has_value());
  EXPECT_FALSE(control.cancel_requested());
  EXPECT_FALSE(control.has_deadline());
  EXPECT_FALSE(control.should_stop().has_value());
}

TEST(SearchControl, CancelLatchesForever) {
  SearchControl control;
  control.request_cancel();
  EXPECT_TRUE(control.cancel_requested());
  ASSERT_TRUE(control.should_stop().has_value());
  EXPECT_EQ(*control.should_stop(), StopReason::kCanceled);
  // Latched: still canceled on every later poll.
  EXPECT_EQ(*control.should_stop(), StopReason::kCanceled);
}

TEST(SearchControl, ZeroDeadlineStopsTheVeryFirstPoll) {
  SearchControl control;
  control.set_deadline_after(0);
  EXPECT_TRUE(control.has_deadline());
  ASSERT_TRUE(control.should_stop().has_value());
  EXPECT_EQ(*control.should_stop(), StopReason::kDeadline);
}

TEST(SearchControl, FutureDeadlineDoesNotStopYet) {
  SearchControl control;
  control.set_deadline_after(3600.0);  // one hour: never reached in-test
  EXPECT_FALSE(control.should_stop().has_value());
}

TEST(SearchControl, FirstReasonWinsAcrossThreads) {
  // A past deadline and a cancel race; whatever latches first must be
  // reported identically to every poller afterwards.
  SearchControl control;
  control.set_deadline_after(0);
  control.request_cancel();
  const StopReason first = *control.should_stop();
  std::vector<std::thread> pollers;
  std::vector<StopReason> seen(8, StopReason::kOptimal);
  for (int i = 0; i < 8; ++i) {
    pollers.emplace_back([&control, &seen, i] {
      seen[static_cast<std::size_t>(i)] = *control.should_stop();
    });
  }
  for (std::thread& t : pollers) t.join();
  for (const StopReason reason : seen) EXPECT_EQ(reason, first);
}

TEST(SearchControl, IncumbentEventsAreStrictlyImproving) {
  SearchControl control;
  std::vector<SearchEvent> events;
  control.set_sink([&events](const SearchEvent& e) { events.push_back(e); });

  const std::vector<fsp::JobId> perm{2, 0, 1};
  control.emit_incumbent(100, perm, 1, 1, 0);
  control.emit_incumbent(120, perm, 2, 2, 0);  // worse: dropped
  control.emit_incumbent(100, perm, 3, 3, 0);  // equal: dropped
  control.emit_incumbent(90, perm, 4, 4, 0);

  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, SearchEvent::Kind::kIncumbent);
  EXPECT_EQ(events[0].incumbent, 100);
  EXPECT_EQ(events[0].permutation, perm);
  EXPECT_EQ(events[1].incumbent, 90);
  EXPECT_GE(events[1].elapsed_seconds, events[0].elapsed_seconds);
}

TEST(SearchControl, TicksAreRateLimited) {
  SearchControl control;
  int ticks = 0;
  control.set_sink([&ticks](const SearchEvent& e) {
                     if (e.kind == SearchEvent::Kind::kTick) ++ticks;
                   },
                   /*min_tick_seconds=*/3600.0);
  for (int i = 0; i < 100; ++i) control.maybe_emit_tick(50, i, i, i);
  EXPECT_EQ(ticks, 1);  // only the first one fits in the hour-long window
}

TEST(SearchControl, ZeroIntervalTicksAllPass) {
  SearchControl control;
  int ticks = 0;
  control.set_sink([&ticks](const SearchEvent& e) {
                     if (e.kind == SearchEvent::Kind::kTick) ++ticks;
                   },
                   /*min_tick_seconds=*/0);
  for (int i = 0; i < 10; ++i) control.maybe_emit_tick(50, i, i, i);
  EXPECT_EQ(ticks, 10);
}

TEST(StopReason, ParseRoundTripsEveryReason) {
  for (const StopReason r :
       {StopReason::kOptimal, StopReason::kCanceled, StopReason::kDeadline,
        StopReason::kBudget, StopReason::kFrozen}) {
    EXPECT_EQ(parse_stop_reason(to_string(r)), r);
  }
}

TEST(StopReason, ParseRejectsUnknownText) {
  EXPECT_THROW(parse_stop_reason("bogus"), CheckFailure);
  EXPECT_THROW(parse_stop_reason(""), CheckFailure);
  EXPECT_THROW(parse_stop_reason("Optimal"), CheckFailure);  // case-sensitive
}

TEST(SearchControl, ExternalIncumbentDefaultsToNoBound) {
  SearchControl control;
  EXPECT_EQ(control.external_incumbent(),
            std::numeric_limits<fsp::Time>::max());
}

TEST(SearchControl, OfferIncumbentKeepsTheTightestBound) {
  SearchControl control;
  control.offer_incumbent(200);
  EXPECT_EQ(control.external_incumbent(), 200);
  control.offer_incumbent(300);  // looser: ignored
  EXPECT_EQ(control.external_incumbent(), 200);
  control.offer_incumbent(150);
  EXPECT_EQ(control.external_incumbent(), 150);
}

TEST(SearchControl, ConcurrentOffersConvergeToTheMinimum) {
  SearchControl control;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&control, t] {
      for (fsp::Time v = 1000 - t; v >= 100; v -= 4) {
        control.offer_incumbent(v);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(control.external_incumbent(), 100);
}

TEST(SearchControl, EventsWithoutSinkAreNoOps) {
  SearchControl control;
  const std::vector<fsp::JobId> perm{0};
  control.emit_incumbent(10, perm, 0, 0, 0);  // must not crash
  control.maybe_emit_tick(10, 0, 0, 0);
  EXPECT_FALSE(control.should_stop().has_value());
}

}  // namespace
}  // namespace fsbb::core
