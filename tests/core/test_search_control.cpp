// SearchControl: cancellation latches, deadlines (including already-expired
// ones) latch, the first reason wins for every observer, incumbent events are
// gated to strictly improving quality, and ticks are rate limited.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/search_control.h"

namespace fsbb::core {
namespace {

TEST(StopReason, ToStringCoversEveryReason) {
  EXPECT_STREQ(to_string(StopReason::kOptimal), "optimal");
  EXPECT_STREQ(to_string(StopReason::kCanceled), "canceled");
  EXPECT_STREQ(to_string(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(to_string(StopReason::kBudget), "budget");
  EXPECT_STREQ(to_string(StopReason::kFrozen), "frozen");
}

TEST(SearchControl, RunsFreelyWithoutCancelOrDeadline) {
  SearchControl control;
  EXPECT_FALSE(control.should_stop().has_value());
  EXPECT_FALSE(control.cancel_requested());
  EXPECT_FALSE(control.has_deadline());
  EXPECT_FALSE(control.should_stop().has_value());
}

TEST(SearchControl, CancelLatchesForever) {
  SearchControl control;
  control.request_cancel();
  EXPECT_TRUE(control.cancel_requested());
  ASSERT_TRUE(control.should_stop().has_value());
  EXPECT_EQ(*control.should_stop(), StopReason::kCanceled);
  // Latched: still canceled on every later poll.
  EXPECT_EQ(*control.should_stop(), StopReason::kCanceled);
}

TEST(SearchControl, ZeroDeadlineStopsTheVeryFirstPoll) {
  SearchControl control;
  control.set_deadline_after(0);
  EXPECT_TRUE(control.has_deadline());
  ASSERT_TRUE(control.should_stop().has_value());
  EXPECT_EQ(*control.should_stop(), StopReason::kDeadline);
}

TEST(SearchControl, FutureDeadlineDoesNotStopYet) {
  SearchControl control;
  control.set_deadline_after(3600.0);  // one hour: never reached in-test
  EXPECT_FALSE(control.should_stop().has_value());
}

TEST(SearchControl, FirstReasonWinsAcrossThreads) {
  // A past deadline and a cancel race; whatever latches first must be
  // reported identically to every poller afterwards.
  SearchControl control;
  control.set_deadline_after(0);
  control.request_cancel();
  const StopReason first = *control.should_stop();
  std::vector<std::thread> pollers;
  std::vector<StopReason> seen(8, StopReason::kOptimal);
  for (int i = 0; i < 8; ++i) {
    pollers.emplace_back([&control, &seen, i] {
      seen[static_cast<std::size_t>(i)] = *control.should_stop();
    });
  }
  for (std::thread& t : pollers) t.join();
  for (const StopReason reason : seen) EXPECT_EQ(reason, first);
}

TEST(SearchControl, IncumbentEventsAreStrictlyImproving) {
  SearchControl control;
  std::vector<SearchEvent> events;
  control.set_sink([&events](const SearchEvent& e) { events.push_back(e); });

  const std::vector<fsp::JobId> perm{2, 0, 1};
  control.emit_incumbent(100, perm, 1, 1, 0);
  control.emit_incumbent(120, perm, 2, 2, 0);  // worse: dropped
  control.emit_incumbent(100, perm, 3, 3, 0);  // equal: dropped
  control.emit_incumbent(90, perm, 4, 4, 0);

  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, SearchEvent::Kind::kIncumbent);
  EXPECT_EQ(events[0].incumbent, 100);
  EXPECT_EQ(events[0].permutation, perm);
  EXPECT_EQ(events[1].incumbent, 90);
  EXPECT_GE(events[1].elapsed_seconds, events[0].elapsed_seconds);
}

TEST(SearchControl, TicksAreRateLimited) {
  SearchControl control;
  int ticks = 0;
  control.set_sink([&ticks](const SearchEvent& e) {
                     if (e.kind == SearchEvent::Kind::kTick) ++ticks;
                   },
                   /*min_tick_seconds=*/3600.0);
  for (int i = 0; i < 100; ++i) control.maybe_emit_tick(50, i, i, i);
  EXPECT_EQ(ticks, 1);  // only the first one fits in the hour-long window
}

TEST(SearchControl, ZeroIntervalTicksAllPass) {
  SearchControl control;
  int ticks = 0;
  control.set_sink([&ticks](const SearchEvent& e) {
                     if (e.kind == SearchEvent::Kind::kTick) ++ticks;
                   },
                   /*min_tick_seconds=*/0);
  for (int i = 0; i < 10; ++i) control.maybe_emit_tick(50, i, i, i);
  EXPECT_EQ(ticks, 10);
}

TEST(SearchControl, EventsWithoutSinkAreNoOps) {
  SearchControl control;
  const std::vector<fsp::JobId> perm{0};
  control.emit_incumbent(10, perm, 0, 0, 0);  // must not crash
  control.maybe_emit_tick(10, 0, 0, 0);
  EXPECT_FALSE(control.should_stop().has_value());
}

}  // namespace
}  // namespace fsbb::core
