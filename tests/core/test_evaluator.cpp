#include "core/evaluator.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "fsp/taillard.h"

namespace fsbb::core {
namespace {

std::vector<Subproblem> random_batch(const fsp::Instance& inst, int count,
                                     std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<Subproblem> batch;
  batch.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Subproblem sp = Subproblem::root(inst.jobs());
    shuffle(sp.perm, rng);
    sp.depth = static_cast<std::int32_t>(rng.next_below(
        static_cast<std::uint64_t>(inst.jobs())));
    batch.push_back(std::move(sp));
  }
  return batch;
}

TEST(SerialCpuEvaluator, FillsEveryBound) {
  const fsp::Instance inst = fsp::taillard_instance(1);
  const auto data = fsp::LowerBoundData::build(inst);
  SerialCpuEvaluator eval(inst, data);

  auto batch = random_batch(inst, 64, 1);
  eval.evaluate(batch);
  for (const Subproblem& sp : batch) {
    EXPECT_NE(sp.lb, Subproblem::kUnevaluated);
    EXPECT_GT(sp.lb, 0);
  }
  EXPECT_EQ(eval.ledger().batches, 1u);
  EXPECT_EQ(eval.ledger().nodes, 64u);
}

class ThreadedMatchesSerial : public ::testing::TestWithParam<int> {};

TEST_P(ThreadedMatchesSerial, IdenticalBoundsForAnyThreadCount) {
  const fsp::Instance inst = fsp::taillard_instance(21);  // 20x20
  const auto data = fsp::LowerBoundData::build(inst);

  auto serial_batch = random_batch(inst, 100, 42);
  auto threaded_batch = serial_batch;  // copy

  SerialCpuEvaluator serial(inst, data);
  ThreadedCpuEvaluator threaded(inst, data,
                                static_cast<std::size_t>(GetParam()));
  serial.evaluate(serial_batch);
  threaded.evaluate(threaded_batch);

  for (std::size_t i = 0; i < serial_batch.size(); ++i) {
    ASSERT_EQ(serial_batch[i].lb, threaded_batch[i].lb) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadedMatchesSerial,
                         ::testing::Values(1, 2, 3, 8));

TEST(ThreadedCpuEvaluator, NameIsStableAcrossThreadCounts) {
  // Reports and golden tests must not vary with detected hardware
  // concurrency, so the name excludes the pool size.
  const fsp::Instance inst = fsp::taillard_instance(1);
  const auto data = fsp::LowerBoundData::build(inst);
  ThreadedCpuEvaluator three(inst, data, 3);
  ThreadedCpuEvaluator detected(inst, data, 0);
  EXPECT_EQ(three.name(), "cpu-threads");
  EXPECT_EQ(three.name(), detected.name());
  EXPECT_EQ(three.threads(), 3u);
}

TEST(Evaluators, EmptyBatchIsHarmless) {
  const fsp::Instance inst = fsp::taillard_instance(1);
  const auto data = fsp::LowerBoundData::build(inst);
  SerialCpuEvaluator serial(inst, data);
  ThreadedCpuEvaluator threaded(inst, data, 2);
  std::vector<Subproblem> empty;
  EXPECT_NO_THROW(serial.evaluate(empty));
  EXPECT_NO_THROW(threaded.evaluate(empty));
}

TEST(Evaluators, RepeatedEvaluationIsIdempotent) {
  const fsp::Instance inst = fsp::taillard_instance(1);
  const auto data = fsp::LowerBoundData::build(inst);
  SerialCpuEvaluator eval(inst, data);
  auto batch = random_batch(inst, 10, 7);
  eval.evaluate(batch);
  std::vector<fsp::Time> first;
  for (const auto& sp : batch) first.push_back(sp.lb);
  eval.evaluate(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].lb, first[i]);
  }
}

}  // namespace
}  // namespace fsbb::core
