#include "core/evaluator.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "fsp/taillard.h"

namespace fsbb::core {
namespace {

std::vector<Subproblem> random_batch(const fsp::Instance& inst, int count,
                                     std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<Subproblem> batch;
  batch.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Subproblem sp = Subproblem::root(inst.jobs());
    shuffle(sp.perm, rng);
    sp.depth = static_cast<std::int32_t>(rng.next_below(
        static_cast<std::uint64_t>(inst.jobs())));
    batch.push_back(std::move(sp));
  }
  return batch;
}

TEST(SerialCpuEvaluator, FillsEveryBound) {
  const fsp::Instance inst = fsp::taillard_instance(1);
  const auto data = fsp::LowerBoundData::build(inst);
  SerialCpuEvaluator eval(inst, data);

  auto batch = random_batch(inst, 64, 1);
  eval.evaluate(batch);
  for (const Subproblem& sp : batch) {
    EXPECT_NE(sp.lb, Subproblem::kUnevaluated);
    EXPECT_GT(sp.lb, 0);
  }
  EXPECT_EQ(eval.ledger().batches, 1u);
  EXPECT_EQ(eval.ledger().nodes, 64u);
}

class ThreadedMatchesSerial : public ::testing::TestWithParam<int> {};

TEST_P(ThreadedMatchesSerial, IdenticalBoundsForAnyThreadCount) {
  const fsp::Instance inst = fsp::taillard_instance(21);  // 20x20
  const auto data = fsp::LowerBoundData::build(inst);

  auto serial_batch = random_batch(inst, 100, 42);
  auto threaded_batch = serial_batch;  // copy

  SerialCpuEvaluator serial(inst, data);
  ThreadedCpuEvaluator threaded(inst, data,
                                static_cast<std::size_t>(GetParam()));
  serial.evaluate(serial_batch);
  threaded.evaluate(threaded_batch);

  for (std::size_t i = 0; i < serial_batch.size(); ++i) {
    ASSERT_EQ(serial_batch[i].lb, threaded_batch[i].lb) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadedMatchesSerial,
                         ::testing::Values(1, 2, 3, 8));

TEST(ThreadedCpuEvaluator, NameIsStableAcrossThreadCounts) {
  // Reports and golden tests must not vary with detected hardware
  // concurrency, so the name excludes the pool size.
  const fsp::Instance inst = fsp::taillard_instance(1);
  const auto data = fsp::LowerBoundData::build(inst);
  ThreadedCpuEvaluator three(inst, data, 3);
  ThreadedCpuEvaluator detected(inst, data, 0);
  EXPECT_EQ(three.name(), "cpu-threads");
  EXPECT_EQ(three.name(), detected.name());
  EXPECT_EQ(three.threads(), 3u);
}

TEST(Evaluators, EmptyBatchIsHarmless) {
  const fsp::Instance inst = fsp::taillard_instance(1);
  const auto data = fsp::LowerBoundData::build(inst);
  SerialCpuEvaluator serial(inst, data);
  ThreadedCpuEvaluator threaded(inst, data, 2);
  std::vector<Subproblem> empty;
  EXPECT_NO_THROW(serial.evaluate(empty));
  EXPECT_NO_THROW(threaded.evaluate(empty));
}

// ---- the sibling-batch seam ---------------------------------------------

/// Builds the SiblingBatch view of one parent plus the materialized
/// children (via Subproblem::child) for the reference bounds.
struct SiblingCase {
  Subproblem parent;
  std::vector<Subproblem> children;
  std::vector<fsp::Time> bounds;

  explicit SiblingCase(Subproblem p) : parent(std::move(p)) {
    for (int i = 0; i < parent.remaining(); ++i) {
      children.push_back(parent.child(i));
    }
    bounds.assign(children.size(), Subproblem::kUnevaluated);
  }

  SiblingBatch batch() {
    return SiblingBatch{parent.prefix(), parent.free_jobs(), bounds};
  }
};

std::vector<SiblingCase> random_sibling_cases(const fsp::Instance& inst,
                                              int count, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<SiblingCase> cases;
  for (int i = 0; i < count; ++i) {
    Subproblem sp = Subproblem::root(inst.jobs());
    shuffle(sp.perm, rng);
    // remaining >= 2: engines never hand complete children to the seam.
    sp.depth = static_cast<std::int32_t>(rng.next_below(
        static_cast<std::uint64_t>(inst.jobs() - 1)));
    cases.emplace_back(std::move(sp));
  }
  return cases;
}

TEST(SiblingSeam, SerialIncrementalMatchesFlatReplay) {
  const fsp::Instance inst = fsp::taillard_instance(21);  // 20x20
  const auto data = fsp::LowerBoundData::build(inst);
  SerialCpuEvaluator eval(inst, data);
  ASSERT_TRUE(eval.supports_sibling_batches());

  auto cases = random_sibling_cases(inst, 16, 11);
  std::vector<SiblingBatch> groups;
  for (auto& c : cases) groups.push_back(c.batch());
  eval.evaluate_siblings(groups);

  for (auto& c : cases) {
    eval.evaluate(c.children);  // the replay path
    for (std::size_t i = 0; i < c.children.size(); ++i) {
      ASSERT_EQ(c.bounds[i], c.children[i].lb)
          << "parent depth " << c.parent.depth << " child " << i;
    }
  }
}

TEST(SiblingSeam, DefaultFallbackMatchesPerChildCallback) {
  // CallbackEvaluator does not override the seam: the base-class default
  // must materialize children exactly as Subproblem::child() would.
  const fsp::Instance inst = fsp::taillard_instance(1);
  const auto data = fsp::LowerBoundData::build(inst);
  CallbackEvaluator eval("lb1-callback", [&](const Subproblem& sp) {
    return fsp::lb1_from_prefix(inst, data, sp.prefix());
  });
  ASSERT_FALSE(eval.supports_sibling_batches());

  auto cases = random_sibling_cases(inst, 8, 29);
  std::vector<SiblingBatch> groups;
  for (auto& c : cases) groups.push_back(c.batch());
  eval.evaluate_siblings(groups);

  for (auto& c : cases) {
    for (std::size_t i = 0; i < c.children.size(); ++i) {
      const fsp::Time expected =
          fsp::lb1_from_prefix(inst, data, c.children[i].prefix());
      ASSERT_EQ(c.bounds[i], expected);
    }
  }
}

class ThreadedSiblingsMatchSerial : public ::testing::TestWithParam<int> {};

TEST_P(ThreadedSiblingsMatchSerial, IdenticalBoundsForAnyThreadCount) {
  const fsp::Instance inst = fsp::taillard_instance(21);
  const auto data = fsp::LowerBoundData::build(inst);
  SerialCpuEvaluator serial(inst, data);
  ThreadedCpuEvaluator threaded(inst, data,
                                static_cast<std::size_t>(GetParam()));
  ASSERT_TRUE(threaded.supports_sibling_batches());

  auto serial_cases = random_sibling_cases(inst, 24, 1234);
  auto threaded_cases = random_sibling_cases(inst, 24, 1234);
  std::vector<SiblingBatch> serial_groups, threaded_groups;
  for (auto& c : serial_cases) serial_groups.push_back(c.batch());
  for (auto& c : threaded_cases) threaded_groups.push_back(c.batch());
  serial.evaluate_siblings(serial_groups);
  threaded.evaluate_siblings(threaded_groups);

  for (std::size_t g = 0; g < serial_cases.size(); ++g) {
    ASSERT_EQ(serial_cases[g].bounds, threaded_cases[g].bounds)
        << "group " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadedSiblingsMatchSerial,
                         ::testing::Values(1, 2, 3, 8));

TEST(SiblingSeam, LedgerCountsSiblingNodes) {
  const fsp::Instance inst = fsp::taillard_instance(1);
  const auto data = fsp::LowerBoundData::build(inst);
  SerialCpuEvaluator eval(inst, data);
  auto cases = random_sibling_cases(inst, 3, 5);
  std::vector<SiblingBatch> groups;
  std::size_t nodes = 0;
  for (auto& c : cases) {
    groups.push_back(c.batch());
    nodes += c.children.size();
  }
  eval.evaluate_siblings(groups);
  EXPECT_EQ(eval.ledger().batches, 1u);
  EXPECT_EQ(eval.ledger().nodes, nodes);
}

TEST(Evaluators, RepeatedEvaluationIsIdempotent) {
  const fsp::Instance inst = fsp::taillard_instance(1);
  const auto data = fsp::LowerBoundData::build(inst);
  SerialCpuEvaluator eval(inst, data);
  auto batch = random_batch(inst, 10, 7);
  eval.evaluate(batch);
  std::vector<fsp::Time> first;
  for (const auto& sp : batch) first.push_back(sp.lb);
  eval.evaluate(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].lb, first[i]);
  }
}

}  // namespace
}  // namespace fsbb::core
