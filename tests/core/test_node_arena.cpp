#include "core/node_arena.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/subproblem.h"

namespace fsbb::core {
namespace {

TEST(NodeArena, AllocateGivesDistinctStableSlots) {
  NodeArena arena(6);
  std::vector<NodeArena::Handle> handles;
  std::set<NodeArena::Handle> seen;
  for (int i = 0; i < 100; ++i) {
    const NodeArena::Handle h = arena.allocate();
    ASSERT_TRUE(seen.insert(h).second) << "duplicate handle " << h;
    auto p = arena.perm(h);
    ASSERT_EQ(p.size(), 6u);
    std::fill(p.begin(), p.end(), static_cast<fsp::JobId>(i));
    handles.push_back(h);
  }
  // Growth never moved earlier permutations.
  for (int i = 0; i < 100; ++i) {
    for (const fsp::JobId v : arena.perm(handles[static_cast<std::size_t>(i)])) {
      ASSERT_EQ(v, static_cast<fsp::JobId>(i));
    }
  }
  EXPECT_EQ(arena.live(), 100u);
}

TEST(NodeArena, ReleaseRecyclesSlots) {
  NodeArena arena(4);
  const NodeArena::Handle a = arena.allocate();
  arena.release(a);
  const NodeArena::Handle b = arena.allocate();
  EXPECT_EQ(a, b);  // freelist reuse, no bump growth
  EXPECT_EQ(arena.live(), 1u);
}

TEST(NodeArena, AdoptMaterializeRoundTrips) {
  NodeArena arena(8);
  SplitMix64 rng(3);
  Subproblem sp = Subproblem::root(8);
  shuffle(sp.perm, rng);
  sp.depth = 3;
  sp.lb = 412;

  const NodeArena::Handle h = arena.adopt(sp);
  const Subproblem back = arena.materialize(h, sp.depth, sp.lb);
  EXPECT_EQ(back.perm, sp.perm);
  EXPECT_EQ(back.depth, 3);
  EXPECT_EQ(back.lb, 412);
}

TEST(NodeArena, GrowthCrossesChunkBoundaries) {
  NodeArena arena(3);
  const std::size_t count = NodeArena::kChunkNodes * 2 + 17;
  std::vector<NodeArena::Handle> handles;
  handles.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeArena::Handle h = arena.allocate();
    arena.perm(h)[0] = static_cast<fsp::JobId>(i % 1000);
    handles.push_back(h);
  }
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(arena.perm(handles[i])[0], static_cast<fsp::JobId>(i % 1000));
  }
  EXPECT_EQ(arena.live(), count);
}

TEST(NodeArena, CrossLaneReleaseIsBalanced) {
  // A handle allocated on one lane may be released on another (nodes
  // migrate between shards in the steal engine); live() still balances.
  NodeArena arena(5, /*lanes=*/3);
  std::vector<NodeArena::Handle> handles;
  for (int i = 0; i < 10; ++i) handles.push_back(arena.allocate(0));
  for (const NodeArena::Handle h : handles) arena.release(h, 2);
  EXPECT_EQ(arena.live(), 0u);
  // Lane 2 recycles what it received.
  const NodeArena::Handle h = arena.allocate(2);
  EXPECT_NE(h, NodeArena::kNull);
}

TEST(NodeArena, ConcurrentLanesDoNotCollide) {
  // Each thread hammers its own lane; every handle handed out must be
  // unique and its bytes must stay private to the writer.
  constexpr std::size_t kThreads = 4;
  constexpr int kPerThread = 5000;
  NodeArena arena(4, kThreads);
  std::vector<std::vector<NodeArena::Handle>> all(kThreads);
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        SplitMix64 rng(t);
        auto& mine = all[t];
        for (int i = 0; i < kPerThread; ++i) {
          const NodeArena::Handle h = arena.allocate(t);
          arena.perm(h)[0] = static_cast<fsp::JobId>(t);
          mine.push_back(h);
          if (rng.next_below(3) == 0 && !mine.empty()) {
            // Churn the freelist like pruning does.
            arena.release(mine.back(), t);
            mine.pop_back();
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  std::set<NodeArena::Handle> seen;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (const NodeArena::Handle h : all[t]) {
      ASSERT_TRUE(seen.insert(h).second) << "handle " << h << " double-issued";
      ASSERT_EQ(arena.perm(h)[0], static_cast<fsp::JobId>(t));
    }
  }
}

TEST(NodeRef, IsSmallTriviallyCopyable) {
  static_assert(std::is_trivially_copyable_v<NodeRef>);
  static_assert(sizeof(NodeRef) <= 12);
  const NodeRef def;
  EXPECT_EQ(def.lb, Subproblem::kUnevaluated);
  EXPECT_EQ(def.slot, NodeArena::kNull);
}

}  // namespace
}  // namespace fsbb::core
