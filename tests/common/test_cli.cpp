#include "common/cli.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace fsbb {
namespace {

CliArgs parse(std::initializer_list<const char*> argv,
              std::vector<std::string> known,
              std::vector<std::string> bool_flags = {}) {
  std::vector<const char*> v(argv);
  return CliArgs::parse(static_cast<int>(v.size()), v.data(), known,
                        bool_flags);
}

TEST(Cli, ParsesSeparateAndEqualsForms) {
  const auto args = parse({"prog", "--pool", "8192", "--policy=shared"},
                          {"pool", "policy"});
  EXPECT_EQ(args.get_or("pool", ""), "8192");
  EXPECT_EQ(args.get_or("policy", ""), "shared");
  EXPECT_EQ(args.get_int_or("pool", 0), 8192);
}

TEST(Cli, PositionalArgumentsCollected) {
  const auto args = parse({"prog", "file1", "--n", "5", "file2"}, {"n"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "file1");
  EXPECT_EQ(args.positional()[1], "file2");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, UnknownFlagThrows) {
  EXPECT_THROW(parse({"prog", "--nope", "1"}, {"yes"}), CheckFailure);
  EXPECT_THROW(parse({"prog", "--nope=1"}, {"yes"}), CheckFailure);
}

TEST(Cli, MissingValueThrows) {
  EXPECT_THROW(parse({"prog", "--pool"}, {"pool"}), CheckFailure);
}

TEST(Cli, DefaultsWhenAbsent) {
  const auto args = parse({"prog"}, {"pool"});
  EXPECT_FALSE(args.has("pool"));
  EXPECT_EQ(args.get_int_or("pool", 4096), 4096);
  EXPECT_DOUBLE_EQ(args.get_double_or("x", 1.5), 1.5);
  EXPECT_FALSE(args.get("pool").has_value());
}

TEST(Cli, BooleanSwitchesNeedNoValue) {
  const auto args = parse({"prog", "--json", "--pool", "64"}, {"pool"},
                          {"json", "all"});
  EXPECT_TRUE(args.has("json"));
  EXPECT_FALSE(args.has("all"));
  EXPECT_EQ(args.get_int_or("pool", 0), 64);
  // A trailing switch must not consume a missing value.
  EXPECT_TRUE(parse({"prog", "--all"}, {}, {"all"}).has("all"));
  // Unknown switches still throw.
  EXPECT_THROW(parse({"prog", "--verbose"}, {"pool"}, {"json"}), CheckFailure);
}

TEST(Cli, DoubleParsing) {
  const auto args = parse({"prog", "--ratio", "2.75"}, {"ratio"});
  EXPECT_DOUBLE_EQ(args.get_double_or("ratio", 0), 2.75);
}

}  // namespace
}  // namespace fsbb
