#include "common/stats.h"

#include <gtest/gtest.h>

namespace fsbb {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-10.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -10.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_NEAR(s.stddev(), 14.142135623730951, 1e-9);
}

TEST(RunningStats, ManyIdenticalValuesHaveZeroVariance) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(42.0);
  EXPECT_NEAR(s.variance(), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

}  // namespace
}  // namespace fsbb
