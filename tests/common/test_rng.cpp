#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

namespace fsbb {
namespace {

// The classic minimal-standard validation (Park & Miller 1988): starting
// from seed 1, the 10000th successive state must be 1043618065. This pins
// our LCG to the exact generator Taillard's benchmark paper uses.
TEST(Lcg31, ParkMillerGoldenValue) {
  Lcg31 rng(1);
  for (int i = 0; i < 10000; ++i) {
    rng.unif(0, 0);  // advance; the [0,0] draw returns 0 but steps the state
  }
  EXPECT_EQ(rng.state(), 1043618065);
}

TEST(Lcg31, UnifStaysInRange) {
  Lcg31 rng(873654221);  // the ta001 time seed
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.unif(1, 99);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 99);
  }
}

TEST(Lcg31, DeterministicForEqualSeeds) {
  Lcg31 a(12345);
  Lcg31 b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.unif(0, 1000), b.unif(0, 1000));
  }
}

TEST(Lcg31, RejectsInvalidSeeds) {
  EXPECT_THROW(Lcg31(0), CheckFailure);
  EXPECT_THROW(Lcg31(-5), CheckFailure);
  EXPECT_THROW(Lcg31(Lcg31::kModulus), CheckFailure);
}

TEST(Lcg31, CoversFullRangeEventually) {
  Lcg31 rng(42);
  std::set<std::int32_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(rng.unif(0, 9));
  EXPECT_EQ(seen.size(), 10u);  // all of 0..9 observed
}

TEST(SplitMix64, KnownFirstOutputs) {
  // Reference values of the canonical splitmix64 with seed 0.
  SplitMix64 rng(0);
  EXPECT_EQ(rng.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(rng.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(rng.next(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, NextBelowIsInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(SplitMix64, NextInIsInclusive) {
  SplitMix64 rng(9);
  bool saw_low = false;
  bool saw_high = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_low |= v == -3;
    saw_high |= v == 3;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(SplitMix64, NextDoubleInUnitInterval) {
  SplitMix64 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Shuffle, ProducesAPermutationDeterministically) {
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  SplitMix64 rng(123);
  shuffle(v, rng);

  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);

  std::vector<int> v2(50);
  for (int i = 0; i < 50; ++i) v2[static_cast<std::size_t>(i)] = i;
  SplitMix64 rng2(123);
  shuffle(v2, rng2);
  EXPECT_EQ(v, v2);
}

}  // namespace
}  // namespace fsbb
