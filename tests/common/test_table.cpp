#include "common/table.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace fsbb {
namespace {

TEST(AsciiTable, RendersHeaderRuleAndRows) {
  AsciiTable t("demo");
  t.set_header({"instance", "speedup"});
  t.add_row({"200x20", "77.46"});
  t.add_row({"20x20", "41.65"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("### demo"), std::string::npos);
  EXPECT_NE(out.find("instance"), std::string::npos);
  EXPECT_NE(out.find("77.46"), std::string::npos);
  EXPECT_NE(out.find("|--"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(AsciiTable, ColumnsAreAligned) {
  AsciiTable t;
  t.set_header({"a", "bbbb"});
  t.add_row({"xxxxxx", "1"});
  const std::string out = t.to_string();
  // Every data line must have the same length as the header line.
  const auto first_nl = out.find('\n');
  const auto header_len = first_nl;
  std::size_t pos = first_nl + 1;
  while (pos < out.size()) {
    const auto nl = out.find('\n', pos);
    EXPECT_EQ(nl - pos, header_len);
    pos = nl + 1;
  }
}

TEST(AsciiTable, MismatchedRowWidthThrows) {
  AsciiTable t;
  t.set_header({"one", "two"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
}

TEST(AsciiTable, HeaderAfterRowsThrows) {
  AsciiTable t;
  t.add_row({"a"});
  EXPECT_THROW(t.set_header({"h"}), CheckFailure);
}

TEST(AsciiTable, NumFormatting) {
  EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::num(3.14159, 4), "3.1416");
  EXPECT_EQ(AsciiTable::num(std::int64_t{262144}), "262144");
}

TEST(AsciiTable, TableWithoutHeader) {
  AsciiTable t;
  t.add_row({"x", "y"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| x | y |"), std::string::npos);
}

}  // namespace
}  // namespace fsbb
