#include "common/check.h"

#include <gtest/gtest.h>

namespace fsbb {
namespace {

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(FSBB_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(FSBB_CHECK_MSG(true, "never seen"));
}

TEST(Check, FailingConditionThrowsCheckFailure) {
  EXPECT_THROW(FSBB_CHECK(false), CheckFailure);
  EXPECT_THROW(FSBB_CHECK_MSG(false, "boom"), CheckFailure);
}

TEST(Check, MessageCarriesConditionAndLocation) {
  try {
    FSBB_CHECK_MSG(2 < 1, "two is not less than one");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
  }
}

TEST(Check, AssertActiveInDebugBuilds) {
#ifdef NDEBUG
  EXPECT_NO_THROW(FSBB_ASSERT(false));
#else
  EXPECT_THROW(FSBB_ASSERT(false), CheckFailure);
#endif
}

}  // namespace
}  // namespace fsbb
