// The minimal JSON parser: value types, nesting, string escapes (including
// \uXXXX and surrogate pairs), numbers, lookup helpers, error reporting,
// and a round trip through the library's own json_escape writer.
#include <gtest/gtest.h>

#include "api/report.h"
#include "common/check.h"
#include "common/json.h"

namespace fsbb {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(JsonValue::parse("3.5").as_number(), 3.5);
  EXPECT_EQ(JsonValue::parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(JsonValue::parse("  \"pad\"  ").as_string(), "pad");
}

TEST(Json, ParsesNestedContainers) {
  const JsonValue v = JsonValue::parse(
      R"({"op":"submit","id":"j1","cli":["--jobs","9"],"nested":{"a":[1,2,3],"b":null}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.string_or("op", ""), "submit");
  EXPECT_EQ(v.string_or("id", ""), "j1");
  EXPECT_EQ(v.string_or("missing", "fallback"), "fallback");
  const JsonValue* cli = v.find("cli");
  ASSERT_NE(cli, nullptr);
  ASSERT_TRUE(cli->is_array());
  ASSERT_EQ(cli->as_array().size(), 2u);
  EXPECT_EQ(cli->as_array()[0].as_string(), "--jobs");
  const JsonValue* nested = v.find("nested");
  ASSERT_NE(nested, nullptr);
  const JsonValue* a = nested->find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->as_array()[2].as_int(), 3);
  EXPECT_TRUE(nested->find("b")->is_null());
}

TEST(Json, ParsesEmptyContainers) {
  EXPECT_TRUE(JsonValue::parse("{}").as_object().empty());
  EXPECT_TRUE(JsonValue::parse("[]").as_array().empty());
  EXPECT_TRUE(JsonValue::parse("[ ]").as_array().empty());
}

TEST(Json, DecodesStringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\/d")").as_string(), "a\"b\\c/d");
  EXPECT_EQ(JsonValue::parse(R"("\b\f\n\r\t")").as_string(), "\b\f\n\r\t");
  EXPECT_EQ(JsonValue::parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(JsonValue::parse(R"("\u00e9")").as_string(), "\xC3\xA9");  // é
  EXPECT_EQ(JsonValue::parse(R"("\u20ac")").as_string(),
            "\xE2\x82\xAC");  // €
  // Surrogate pair: U+1F600.
  EXPECT_EQ(JsonValue::parse(R"("\ud83d\ude00")").as_string(),
            "\xF0\x9F\x98\x80");
}

TEST(Json, RoundTripsThroughJsonEscape) {
  const std::string nasty = "quote\" slash\\ ctrl\x01 tab\t nl\n";
  // Built with appends: `const char* + std::string&&` trips GCC 12's
  // -Wrestrict false positive (GCC PR105329) under -Werror.
  std::string quoted;
  quoted += '"';
  quoted += api::json_escape(nasty);
  quoted += '"';
  const JsonValue v = JsonValue::parse(quoted);
  EXPECT_EQ(v.as_string(), nasty);
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "\"unterminated", "{\"a\":}", "tru", "nul", "01a",
        "[1 2]", "{\"a\" 1}", "\"\\q\"", "\"\\ud800\"", "{} extra"}) {
    EXPECT_THROW(JsonValue::parse(bad), CheckFailure) << bad;
  }
}

TEST(Json, ErrorsNameTheOffset) {
  try {
    JsonValue::parse("[1, x]");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("offset 4"), std::string::npos)
        << e.what();
  }
}

TEST(Json, RejectsIntegersThatRoundTripInexactly) {
  // Doubles hold 53 bits of mantissa; a 19-digit scheduler job id would
  // silently come back off by a few units. The parser must refuse instead.
  EXPECT_THROW(JsonValue::parse("{\"id\":9223372036854775807}"), CheckFailure);
  EXPECT_THROW(JsonValue::parse("1234567890123456789"), CheckFailure);
  EXPECT_THROW(JsonValue::parse("9007199254740993"), CheckFailure);  // 2^53+1
  EXPECT_THROW(JsonValue::parse("-9007199254740993"), CheckFailure);
}

TEST(Json, AcceptsIntegersUpToTheExactDoubleRange) {
  // 2^53 and every smaller magnitude round-trip exactly.
  EXPECT_EQ(JsonValue::parse("9007199254740992").as_int(), 9007199254740992LL);
  EXPECT_EQ(JsonValue::parse("-9007199254740992").as_int(),
            -9007199254740992LL);
  EXPECT_EQ(JsonValue::parse("{\"id\":123456789012}").int_or("id", 0),
            123456789012LL);
  // Large values written as doubles are still doubles, not integers —
  // only the integer token syntax claims exactness.
  EXPECT_DOUBLE_EQ(JsonValue::parse("1.2345678901234568e18").as_number(),
                   1.2345678901234568e18);
}

TEST(Json, BigIntegerErrorsPointAtTheToken) {
  try {
    JsonValue::parse("{\"job\":1234567890123456789}");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("exactly"), std::string::npos) << what;
    EXPECT_NE(what.find("offset 7"), std::string::npos) << what;
  }
}

TEST(Json, TypedAccessorsRejectMismatches) {
  const JsonValue v = JsonValue::parse("{\"n\":1.5,\"s\":\"x\"}");
  EXPECT_THROW(v.as_array(), CheckFailure);
  EXPECT_THROW(v.find("s")->as_number(), CheckFailure);
  EXPECT_THROW(v.find("n")->as_int(), CheckFailure);  // not integral
  EXPECT_THROW(v.int_or("s", 0), CheckFailure);       // present, wrong type
  EXPECT_EQ(v.int_or("missing", 7), 7);
  EXPECT_EQ(v.bool_or("missing", true), true);
}

TEST(Json, ParsesTheLibrarysOwnReportJson) {
  // The writer (SolveReport::to_json) and this parser must agree; a small
  // handcrafted report-shaped object stands in for the full pipeline
  // (integration tests cover the real thing through fsbb_serve).
  const JsonValue v = JsonValue::parse(
      R"({"result":{"best_makespan":603,"proven_optimal":true,)"
      R"("stop_reason":"optimal","best_permutation":[8,6,5]}})");
  const JsonValue* result = v.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->int_or("best_makespan", 0), 603);
  EXPECT_TRUE(result->bool_or("proven_optimal", false));
  EXPECT_EQ(result->string_or("stop_reason", ""), "optimal");
  EXPECT_EQ(result->find("best_permutation")->as_array().size(), 3u);
}

}  // namespace
}  // namespace fsbb
