#include "common/matrix.h"

#include <gtest/gtest.h>

#include <numeric>

namespace fsbb {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix<int> m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstructorAndIndexing) {
  Matrix<int> m(3, 4, 7);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(m(r, c), 7);
    }
  }
  m(2, 3) = -1;
  EXPECT_EQ(m(2, 3), -1);
}

TEST(Matrix, RowsAreContiguousSpans) {
  Matrix<int> m(2, 3);
  std::iota(m.flat().begin(), m.flat().end(), 0);
  const auto row1 = m.row(1);
  ASSERT_EQ(row1.size(), 3u);
  EXPECT_EQ(row1[0], 3);
  EXPECT_EQ(row1[2], 5);
}

TEST(Matrix, EqualityComparesShapeAndContent) {
  Matrix<int> a(2, 2, 1);
  Matrix<int> b(2, 2, 1);
  EXPECT_EQ(a, b);
  b(0, 1) = 9;
  EXPECT_FALSE(a == b);
  Matrix<int> c(4, 1, 1);  // same element count, different shape
  EXPECT_FALSE(a == c);
}

TEST(Matrix, SizeBytes) {
  Matrix<std::int16_t> m(10, 20);
  EXPECT_EQ(m.size_bytes(), 10u * 20u * sizeof(std::int16_t));
}

TEST(Span2d, ViewsAliasTheMatrix) {
  Matrix<int> m(2, 2, 0);
  auto v = m.view();
  v(1, 1) = 42;
  EXPECT_EQ(m(1, 1), 42);
  EXPECT_EQ(m.view()(1, 1), 42);
}

TEST(Span2d, RowAccess) {
  Matrix<int> m(3, 2, 5);
  Span2d<const int> v = std::as_const(m).view();
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_EQ(v.cols(), 2u);
  EXPECT_EQ(v.row(2)[1], 5);
}

#ifndef NDEBUG
TEST(Matrix, OutOfBoundsThrowsInDebug) {
  Matrix<int> m(2, 2);
  EXPECT_THROW(m(2, 0), CheckFailure);
  EXPECT_THROW(m(0, 2), CheckFailure);
  EXPECT_THROW(m.row(5), CheckFailure);
}
#endif

}  // namespace
}  // namespace fsbb
