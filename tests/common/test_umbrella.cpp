// The umbrella header must compile standalone and expose the whole API.
#include "fsbb.h"

#include <gtest/gtest.h>

namespace fsbb {
namespace {

TEST(Umbrella, EndToEndThroughTheUmbrellaHeaderOnly) {
  const fsp::Instance inst =
      fsp::make_instance(fsp::InstanceFamily::kUniform, 7, 4, 99);
  const auto data = fsp::LowerBoundData::build(inst);
  core::SerialCpuEvaluator eval(inst, data);
  core::BBEngine engine(inst, data, eval, core::EngineOptions{});
  const core::SolveResult result = engine.solve();
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.best_makespan, fsp::brute_force(inst).makespan);

  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  gpubb::GpuBoundEvaluator gpu(device, inst, data,
                               gpubb::PlacementPolicy::kAuto);
  std::vector<core::Subproblem> batch{core::Subproblem::root(inst.jobs())};
  gpu.evaluate(batch);
  EXPECT_GT(batch.front().lb, 0);

  EXPECT_GT(mtbb::multicore_speedup(
                mtbb::MulticoreModelParams::i7_970_defaults(), 7, 20),
            1.0);
}

}  // namespace
}  // namespace fsbb
