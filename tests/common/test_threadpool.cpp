#include "common/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/check.h"

namespace fsbb {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t lo, std::size_t hi, std::size_t) {
                      for (std::size_t i = lo; i < hi; ++i) {
                        hits[i].fetch_add(1);
                      }
                    });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, WorkerIndicesStayInBounds) {
  ThreadPool pool(3);
  std::atomic<bool> bad{false};
  pool.parallel_for(0, 500,
                    [&](std::size_t, std::size_t, std::size_t worker) {
                      if (worker > pool.thread_count()) bad = true;
                    },
                    /*chunks=*/64);
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool;
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<long long>> partial(pool.thread_count() + 1);
  pool.parallel_for(1, kN + 1,
                    [&](std::size_t lo, std::size_t hi, std::size_t worker) {
                      long long s = 0;
                      for (std::size_t i = lo; i < hi; ++i) {
                        s += static_cast<long long>(i);
                      }
                      partial[worker] += s;
                    });
  long long total = 0;
  for (const auto& p : partial) total += p.load();
  EXPECT_EQ(total, static_cast<long long>(kN) * (kN + 1) / 2);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t lo, std::size_t, std::size_t) {
                          if (lo == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(0, 10, [](std::size_t, std::size_t, std::size_t) {
      throw std::runtime_error("first");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::size_t lo, std::size_t hi, std::size_t) {
    count += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(0, 64, [&](std::size_t lo, std::size_t hi, std::size_t) {
    count += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ManySequentialBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 97, [&](std::size_t lo, std::size_t hi, std::size_t) {
      count += static_cast<int>(hi - lo);
    });
    ASSERT_EQ(count.load(), 97);
  }
}

TEST(ThreadPool, ChunkParameterRespected) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 100,
                    [&](std::size_t, std::size_t, std::size_t) { ++calls; },
                    /*chunks=*/10);
  EXPECT_EQ(calls.load(), 10);
}

}  // namespace
}  // namespace fsbb
