// The backend registry: deterministic keys, useful errors, out-of-tree
// registration, and — the acceptance guarantee of the facade — every
// registered backend proves the same optimum on the same instance purely
// via SolverConfig, both from the root and on a frozen §IV pool.
#include <gtest/gtest.h>

#include <algorithm>

#include "api/scenario.h"
#include "api/solver.h"
#include "fsp/brute_force.h"
#include "fsp/taillard.h"

namespace fsbb::api {
namespace {

TEST(BackendRegistry, BuiltinsArePresentAndSorted) {
  const std::vector<std::string> keys = BackendRegistry::global().keys();
  for (const char* expected : {"adaptive", "callback", "cpu-serial",
                               "cpu-steal", "cpu-threads", "gpu-sim",
                               "multicore"}) {
    EXPECT_NE(std::find(keys.begin(), keys.end(), expected), keys.end())
        << expected;
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (const std::string& key : keys) {
    EXPECT_FALSE(BackendRegistry::global().description(key).empty()) << key;
  }
}

TEST(BackendRegistry, CreateRejectsUnknownKeysNamingTheRegistered) {
  const fsp::Instance inst = fsp::make_taillard_instance(5, 3, 7, "tiny");
  const auto data = fsp::LowerBoundData::build(inst);
  const SolverConfig config;
  const BackendContext ctx{&inst, &data, &config};
  try {
    BackendRegistry::global().create("fpga", ctx);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("registered:"), std::string::npos);
  }
}

TEST(BackendRegistry, CreateValidatesTheContext) {
  const SolverConfig config;
  const BackendContext incomplete{nullptr, nullptr, &config};
  EXPECT_THROW(BackendRegistry::global().create("cpu-serial", incomplete),
               CheckFailure);
}

TEST(BackendRegistry, OutOfTreeBackendsPlugIn) {
  // New execution modes register a factory; no engine or caller changes.
  BackendRegistry local;
  local.add("echo", "test backend",
            [](const BackendContext& ctx) -> std::unique_ptr<Backend> {
              class EchoBackend final : public Backend {
               public:
                explicit EchoBackend(const BackendContext& ctx) : ctx_(ctx) {}
                std::string name() const override { return "echo"; }
                core::SolveResult solve() override {
                  core::SolveResult r;
                  r.best_makespan = ctx_.instance->total_work();
                  return r;
                }
                core::SolveResult solve_from(std::vector<core::Subproblem>,
                                             fsp::Time ub) override {
                  core::SolveResult r;
                  r.best_makespan = ub;
                  return r;
                }

               private:
                BackendContext ctx_;
              };
              return std::make_unique<EchoBackend>(ctx);
            });
  EXPECT_TRUE(local.contains("echo"));
  EXPECT_THROW(local.add("echo", "dup", nullptr), CheckFailure);

  const fsp::Instance inst = fsp::make_taillard_instance(5, 3, 7, "tiny");
  const auto data = fsp::LowerBoundData::build(inst);
  const SolverConfig config;
  const BackendContext ctx{&inst, &data, &config};
  const auto backend = local.create("echo", ctx);
  EXPECT_EQ(backend->solve().best_makespan, inst.total_work());
}

TEST(BackendRegistry, NamesAreMachineStable) {
  // Registry keys and backend names must not embed detected hardware
  // concurrency — golden reports diff cleanly across machines.
  const fsp::Instance inst = fsp::make_taillard_instance(6, 3, 11, "stable");
  const auto data = fsp::LowerBoundData::build(inst);
  SolverConfig four;
  four.threads = 4;
  SolverConfig one = four;
  one.threads = 1;
  for (const std::string& key : BackendRegistry::global().keys()) {
    const BackendContext a{&inst, &data, &four};
    const BackendContext b{&inst, &data, &one};
    EXPECT_EQ(BackendRegistry::global().create(key, a)->name(),
              BackendRegistry::global().create(key, b)->name())
        << key;
    EXPECT_EQ(BackendRegistry::global().create(key, a)->name(), key);
  }
}

// The facade-level acceptance guarantee: every registered backend, selected
// purely by SolverConfig, proves the same optimum on a small Taillard
// instance — the makespan brute force certifies.
TEST(BackendAgreement, AllRegisteredBackendsProveTheBruteForceOptimum) {
  const fsp::Instance inst =
      fsp::make_taillard_instance(8, 5, 123456789, "agreement-8x5");
  const fsp::Time expected = fsp::brute_force(inst).makespan;

  for (const std::string& key : BackendRegistry::global().keys()) {
    SolverConfig config;
    config.backend = key;  // the only thing that varies
    config.threads = 2;
    const SolveReport report = Solver(config).solve(inst);
    EXPECT_TRUE(report.proven_optimal) << key;
    EXPECT_EQ(report.best_makespan, expected) << key;
  }
}

TEST(BackendAgreement, AllRegisteredBackendsAgreeOnAFrozenPool) {
  // §IV protocol through the facade: one frozen list, every backend.
  InstanceSpec spec;
  spec.jobs = 11;
  spec.machines = 6;
  spec.seed = 99;
  // Weak incumbent: NEH nearly solves 11x6, the pool would never fill.
  const Workload workload = api::make_workload(spec, 40, 1000000);

  std::optional<fsp::Time> reference;
  for (const std::string& key : BackendRegistry::global().keys()) {
    SolverConfig config;
    config.backend = key;
    config.threads = 2;
    const SolveReport report =
        Solver(config).solve_frozen(workload.inst(), workload.frozen);
    EXPECT_TRUE(report.proven_optimal) << key;
    if (!reference) {
      reference = report.best_makespan;
    } else {
      EXPECT_EQ(report.best_makespan, *reference) << key;
    }
  }
}

TEST(BackendAgreement, EveryBoundProvesTheSameOptimum) {
  const fsp::Instance inst =
      fsp::make_taillard_instance(8, 4, 31337, "bounds-8x4");
  const fsp::Time expected = fsp::brute_force(inst).makespan;
  for (const Bound bound : {Bound::kLb0, Bound::kLb1, Bound::kLb2}) {
    for (const std::string backend : {"cpu-serial", "callback"}) {
      SolverConfig config;
      config.backend = backend;
      config.bound = bound;
      const SolveReport report = Solver(config).solve(inst);
      EXPECT_TRUE(report.proven_optimal)
          << backend << "/" << to_string(bound);
      EXPECT_EQ(report.best_makespan, expected)
          << backend << "/" << to_string(bound);
    }
  }
}

TEST(BackendAgreement, Lb1OnlyBackendsRejectOtherBounds) {
  const fsp::Instance inst = fsp::make_taillard_instance(6, 3, 5, "lb1only");
  for (const std::string backend :
       {"cpu-threads", "gpu-sim", "adaptive", "multicore", "cpu-steal"}) {
    SolverConfig config;
    config.backend = backend;
    config.bound = Bound::kLb0;
    EXPECT_THROW(Solver(config).solve(inst), CheckFailure) << backend;
  }
}

TEST(BackendAgreement, StealRunsLb2AndMatchesTheSerialLb2Optimum) {
  const fsp::Instance inst =
      fsp::make_taillard_instance(9, 5, 424242, "steal-lb2-9x5");
  SolverConfig serial;
  serial.backend = "cpu-serial";
  serial.bound = Bound::kLb2;
  const SolveReport reference = Solver(serial).solve(inst);
  ASSERT_TRUE(reference.proven_optimal);

  SolverConfig steal;
  steal.backend = "cpu-steal";
  steal.bound = Bound::kLb2;
  steal.threads = 4;
  const SolveReport report = Solver(steal).solve(inst);
  EXPECT_TRUE(report.proven_optimal);
  EXPECT_EQ(report.best_makespan, reference.best_makespan);
}

TEST(BackendAgreement, UnsupportedBoundErrorNamesTheSupportedSet) {
  const fsp::Instance inst = fsp::make_taillard_instance(6, 3, 7, "rej-6x3");
  SolverConfig config;
  config.backend = "gpu-sim";
  config.bound = Bound::kLb2;
  try {
    Solver(config).solve(inst);
    FAIL() << "lb2 on gpu-sim should be rejected";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    // The reject-or-run decision is explicit: the message names the
    // backend, its supported bounds, and where the requested bound runs.
    EXPECT_NE(what.find("gpu-sim"), std::string::npos) << what;
    EXPECT_NE(what.find("lb1"), std::string::npos) << what;
    EXPECT_NE(what.find("cpu-steal"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace fsbb::api
