// The Solver facade: config parsing round-trips, misconfiguration fails
// fast with useful errors, reports are structured (text + JSON), and the
// batch API solves independent instances concurrently with identical
// results to one-at-a-time solves.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "api/solver.h"
#include "common/threadpool.h"
#include "fsp/taillard.h"

namespace fsbb::api {
namespace {

fsp::Instance small_instance(std::int32_t seed = 123456789) {
  return fsp::make_taillard_instance(9, 5, seed,
                                     "api-9x5-" + std::to_string(seed));
}

CliArgs parse_tokens(const std::vector<std::string>& tokens) {
  std::vector<const char*> argv{"solver-test"};
  for (const std::string& t : tokens) argv.push_back(t.c_str());
  return CliArgs::parse(static_cast<int>(argv.size()), argv.data(),
                        SolverConfig::cli_flags());
}

TEST(SolverConfig, DefaultsRoundTripThroughCli) {
  const SolverConfig original;
  const SolverConfig reparsed = SolverConfig::from_cli(
      parse_tokens(original.to_cli()));
  EXPECT_EQ(reparsed, original);
}

TEST(SolverConfig, EveryFieldRoundTripsThroughCli) {
  SolverConfig original;
  original.backend = "gpu-sim";
  original.bound = Bound::kLb2;
  original.strategy = core::SelectionStrategy::kDepthFirst;
  original.batch_size = 512;
  original.threads = 3;
  original.batch_workers = 2;
  original.block_threads = 128;
  original.placement = gpubb::PlacementPolicy::kSharedJm;
  original.device = "c1060";
  original.initial_ub = 4321;
  original.node_budget = 99999;
  original.time_limit_seconds = 1.5;
  original.instance.ta_id = 0;
  original.instance.jobs = 12;
  original.instance.machines = 7;
  original.instance.seed = 424242;
  original.instance.count = 5;

  const SolverConfig reparsed = SolverConfig::from_cli(
      parse_tokens(original.to_cli()));
  EXPECT_EQ(reparsed, original);
}

TEST(SolverConfig, FromCliParsesIndividualFlags) {
  const SolverConfig c = SolverConfig::from_cli(parse_tokens(
      {"--backend", "multicore", "--bound=lb0", "--strategy", "depth-first",
       "--placement", "shared-JM+PTM", "--ub", "777", "--ta", "3"}));
  EXPECT_EQ(c.backend, "multicore");
  EXPECT_EQ(c.bound, Bound::kLb0);
  EXPECT_EQ(c.strategy, core::SelectionStrategy::kDepthFirst);
  EXPECT_EQ(c.placement, gpubb::PlacementPolicy::kSharedJmPtm);
  ASSERT_TRUE(c.initial_ub.has_value());
  EXPECT_EQ(*c.initial_ub, 777);
  EXPECT_EQ(c.instance.ta_id, 3);
}

TEST(SolverConfig, RejectsBadEnumsAndDevices) {
  EXPECT_THROW(SolverConfig::from_cli(parse_tokens({"--bound", "lb9"})),
               CheckFailure);
  EXPECT_THROW(SolverConfig::from_cli(parse_tokens({"--strategy", "random"})),
               CheckFailure);
  EXPECT_THROW(SolverConfig::from_cli(parse_tokens({"--placement", "what"})),
               CheckFailure);
  EXPECT_THROW(SolverConfig::from_cli(parse_tokens({"--device", "h100"})),
               CheckFailure);
}

TEST(SolverConfig, MakeInstancesHonorsCountAndSeeds) {
  InstanceSpec spec;
  spec.jobs = 6;
  spec.machines = 3;
  spec.seed = 1000;
  spec.count = 3;
  const std::vector<fsp::Instance> instances = make_instances(spec);
  ASSERT_EQ(instances.size(), 3u);
  for (const fsp::Instance& inst : instances) {
    EXPECT_EQ(inst.jobs(), 6);
    EXPECT_EQ(inst.machines(), 3);
  }
  // Distinct seeds produce distinct processing-time matrices.
  const auto first = instances[0].ptm().flat();
  const auto second = instances[1].ptm().flat();
  EXPECT_FALSE(std::equal(first.begin(), first.end(), second.begin(),
                          second.end()));
  // ta_id takes precedence and yields the published instance.
  spec.ta_id = 1;
  const std::vector<fsp::Instance> ta = make_instances(spec);
  ASSERT_EQ(ta.size(), 1u);
  EXPECT_EQ(ta[0].jobs(), 20);
  EXPECT_EQ(ta[0].machines(), 5);
}

TEST(Solver, UnknownBackendFailsAtConstructionNamingTheRegistry) {
  SolverConfig config;
  config.backend = "quantum";
  try {
    const Solver solver(config);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("quantum"), std::string::npos) << what;
    EXPECT_NE(what.find("cpu-serial"), std::string::npos)
        << "error should list registered keys: " << what;
  }
}

TEST(Solver, ReportEchoesConfigAndInstance) {
  SolverConfig config;
  config.backend = "cpu-serial";
  const fsp::Instance inst = small_instance();
  const SolveReport report = Solver(config).solve(inst);

  EXPECT_EQ(report.config, config);
  EXPECT_EQ(report.instance_name, inst.name());
  EXPECT_EQ(report.jobs, 9);
  EXPECT_EQ(report.machines, 5);
  EXPECT_EQ(report.backend, "cpu-serial");
  EXPECT_EQ(report.evaluator, "cpu-serial");
  EXPECT_TRUE(report.proven_optimal);
  EXPECT_EQ(report.best_permutation.size(), 9u);
  EXPECT_GT(report.stats.branched, 0u);
  ASSERT_TRUE(report.eval.has_value());
  // The ledger also counts the root evaluation the engine does not.
  EXPECT_GE(report.eval->nodes, report.stats.evaluated);
  EXPECT_LE(report.eval->nodes, report.stats.evaluated + 1);
}

TEST(Solver, ReportJsonCarriesTheStructuredFields) {
  SolverConfig config;
  config.backend = "gpu-sim";
  const SolveReport report = Solver(config).solve(small_instance());
  const std::string json = report.to_json();

  // Spot-check the deterministic shape (full parsing needs no dependency).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"config\":{\"backend\":\"gpu-sim\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"bound\":\"lb1\""), std::string::npos);
  EXPECT_NE(json.find("\"instance\":{\"name\":\"api-9x5-123456789\""),
            std::string::npos);
  EXPECT_NE(json.find("\"best_makespan\":" +
                      std::to_string(report.best_makespan)),
            std::string::npos);
  EXPECT_NE(json.find("\"proven_optimal\":true"), std::string::npos);
  EXPECT_NE(json.find("\"evaluated\":" +
                      std::to_string(report.stats.evaluated)),
            std::string::npos);
  EXPECT_NE(json.find("\"eval\":{\"batches\":"), std::string::npos);
  EXPECT_NE(json.find("\"initial_ub\":null"), std::string::npos);
}

TEST(Solver, MulticoreReportHasNoEvaluatorLedger) {
  SolverConfig config;
  config.backend = "multicore";
  config.threads = 2;
  const SolveReport report = Solver(config).solve(small_instance());
  EXPECT_FALSE(report.eval.has_value());
  EXPECT_NE(report.to_json().find("\"eval\":null"), std::string::npos);
}

TEST(Solver, SolveManyMatchesIndividualSolves) {
  SolverConfig config;
  config.backend = "cpu-serial";
  config.batch_workers = 3;
  const Solver solver(config);

  std::vector<fsp::Instance> instances;
  for (int i = 0; i < 6; ++i) {
    instances.push_back(small_instance(1000 + i));
  }

  const std::vector<SolveReport> batch = solver.solve_many(instances);
  ASSERT_EQ(batch.size(), instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const SolveReport one = solver.solve(instances[i]);
    EXPECT_EQ(batch[i].instance_name, instances[i].name());
    EXPECT_EQ(batch[i].best_makespan, one.best_makespan) << i;
    EXPECT_EQ(batch[i].proven_optimal, one.proven_optimal) << i;
    EXPECT_EQ(batch[i].stats.branched, one.stats.branched) << i;
  }
}

TEST(Solver, SolveManyOverExternalSharedPool) {
  SolverConfig config;
  config.backend = "cpu-threads";
  config.threads = 2;
  const Solver solver(config);

  std::vector<fsp::Instance> instances;
  for (int i = 0; i < 4; ++i) instances.push_back(small_instance(2000 + i));

  ThreadPool pool(2);  // shared across the whole batch
  const std::vector<SolveReport> reports = solver.solve_many(instances, pool);
  ASSERT_EQ(reports.size(), 4u);
  for (const SolveReport& r : reports) {
    EXPECT_TRUE(r.proven_optimal);
    EXPECT_EQ(r.backend, "cpu-threads");
  }
  EXPECT_TRUE(solver.solve_many({}).empty());
}

TEST(Solver, HonorsNodeBudgetAcrossBackends) {
  for (const std::string backend : {"cpu-serial", "gpu-sim"}) {
    SolverConfig config;
    config.backend = backend;
    config.node_budget = 5;
    const SolveReport report = Solver(config).solve(small_instance());
    EXPECT_FALSE(report.proven_optimal) << backend;
    EXPECT_LE(report.stats.branched, 6u) << backend;
    EXPECT_EQ(report.stop_reason, core::StopReason::kBudget) << backend;
  }
}

// An instance only the GPU path rejects (it packs processing times as u8):
// with backend gpu-sim, this fails while ordinary Taillard instances
// succeed — a genuinely per-instance failure under one config.
fsp::Instance gpu_poison_instance() {
  Matrix<fsp::Time> pt(4, 3, 10);
  pt(1, 1) = 300;  // > 255: DeviceLbData::build throws
  return fsp::Instance("poison-4x3", std::move(pt));
}

TEST(Solver, SolveManyOutcomesKeepsPerInstanceResultsOnMixedFailure) {
  SolverConfig config;
  config.backend = "gpu-sim";
  config.batch_workers = 2;
  const Solver solver(config);

  std::vector<fsp::Instance> instances;
  instances.push_back(small_instance(3000));
  instances.push_back(gpu_poison_instance());
  instances.push_back(small_instance(3001));

  const std::vector<SolveOutcome> outcomes =
      solver.solve_many_outcomes(instances);
  ASSERT_EQ(outcomes.size(), 3u);
  // Completed work survives the failing sibling, in input order.
  ASSERT_TRUE(outcomes[0].ok());
  EXPECT_TRUE(outcomes[0].report->proven_optimal);
  EXPECT_EQ(outcomes[0].report->instance_name, instances[0].name());
  ASSERT_FALSE(outcomes[1].ok());
  EXPECT_NE(outcomes[1].error.find("u8"), std::string::npos)
      << outcomes[1].error;
  ASSERT_TRUE(outcomes[2].ok());
  EXPECT_TRUE(outcomes[2].report->proven_optimal);
  EXPECT_EQ(outcomes[2].report->instance_name, instances[2].name());
}

TEST(Solver, SolveManyRethrowsTheFirstErrorOnlyAfterTheBatchDrains) {
  SolverConfig config;
  config.backend = "gpu-sim";
  config.batch_workers = 2;
  const Solver solver(config);

  std::vector<fsp::Instance> instances;
  instances.push_back(gpu_poison_instance());
  instances.push_back(small_instance(3002));

  // The compat shim still throws — with the original exception type — but
  // only once every instance finished.
  EXPECT_THROW(solver.solve_many(instances), CheckFailure);

  // The same batch through the ThreadPool overload behaves identically.
  ThreadPool pool(2);
  EXPECT_THROW(solver.solve_many(instances, pool), CheckFailure);
}

TEST(Solver, DeadlineFlowsThroughTheSynchronousFacade) {
  SolverConfig config;
  config.backend = "cpu-steal";
  config.threads = 2;
  config.deadline_ms = 0;  // expired before the search starts
  const fsp::Instance inst = small_instance();
  const SolveReport report = Solver(config).solve(inst);
  EXPECT_EQ(report.stop_reason, core::StopReason::kDeadline);
  EXPECT_FALSE(report.proven_optimal);
  EXPECT_EQ(report.stats.branched, 0u);
  // JSON and text both surface the stop reason.
  EXPECT_NE(report.to_json().find("\"stop_reason\":\"deadline\""),
            std::string::npos);
  std::ostringstream text;
  text << report;
  EXPECT_NE(text.str().find("stopped: deadline"), std::string::npos);
}

TEST(SolverConfig, DeadlineAndProgressFlagsRoundTripThroughCli) {
  SolverConfig original;
  original.deadline_ms = 1500;
  original.progress_interval_ms = 50;
  const SolverConfig reparsed =
      SolverConfig::from_cli(parse_tokens(original.to_cli()));
  EXPECT_EQ(reparsed, original);
  ASSERT_TRUE(reparsed.deadline_ms.has_value());
  EXPECT_EQ(*reparsed.deadline_ms, 1500u);

  // Absent flag stays unset; --deadline-ms 0 parses as "already expired".
  EXPECT_FALSE(SolverConfig().deadline_ms.has_value());
  const SolverConfig zero = SolverConfig::from_cli(
      parse_tokens({"--deadline-ms", "0"}));
  ASSERT_TRUE(zero.deadline_ms.has_value());
  EXPECT_EQ(*zero.deadline_ms, 0u);
}

}  // namespace
}  // namespace fsbb::api
