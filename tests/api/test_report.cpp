// SolveReport serialization: json_escape must emit RFC 8259-valid string
// bodies for any byte sequence (control characters included), and the
// report JSON must carry the steal statistics of sharded-pool backends.
#include "api/report.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace fsbb::api {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("cpu-steal"), "cpu-steal");
  EXPECT_EQ(json_escape(""), "");
  EXPECT_EQ(json_escape("ta-like-10x5-s42"), "ta-like-10x5-s42");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, EscapesNamedControlCharacters) {
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(json_escape("a\bb"), "a\\bb");
  EXPECT_EQ(json_escape("a\fb"), "a\\fb");
}

TEST(JsonEscape, EscapesEveryRemainingControlCharacterAsUXxxx) {
  // U+0000..U+001F must never appear raw inside a JSON string (RFC 8259
  // §7) — a backend name or error string with a stray byte would
  // otherwise emit invalid JSON.
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(json_escape(std::string("a") + '\0' + "b"),
            std::string("a\\u0000b"));
  for (int c = 0; c < 0x20; ++c) {
    const std::string escaped = json_escape(std::string(1, static_cast<char>(c)));
    EXPECT_GE(escaped.size(), 2u) << "control char " << c << " left raw";
    EXPECT_EQ(escaped[0], '\\') << "control char " << c << " left raw";
  }
}

TEST(JsonEscape, LeavesHighBytesAlone) {
  // Non-ASCII (UTF-8 continuation) bytes are not control characters and
  // must pass through — the signed-char cast bug would send them through
  // the \u path with a wild sign-extended value.
  const std::string utf8 = "\xc3\xa9";  // é
  EXPECT_EQ(json_escape(utf8), utf8);
}

SolveReport sample_report() {
  SolveReport r;
  r.instance_name = "sample-5x3";
  r.jobs = 5;
  r.machines = 3;
  r.backend = "cpu-steal";
  r.best_makespan = 123;
  r.best_permutation = {2, 0, 1, 4, 3};
  r.proven_optimal = true;
  return r;
}

TEST(SolveReport, JsonSurvivesControlCharactersInStrings) {
  SolveReport r = sample_report();
  r.instance_name = std::string("bad\tname\nwith") + '\x01' + "controls";
  r.evaluator = "eval\r\"quoted\"";
  const std::string json = r.to_json();
  EXPECT_EQ(json.find('\t'), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.find('\r'), std::string::npos);
  EXPECT_EQ(json.find('\x01'), std::string::npos);
  EXPECT_NE(json.find("bad\\tname\\nwith\\u0001controls"), std::string::npos);
}

TEST(SolveReport, JsonCarriesStealStatsWhenPresent) {
  SolveReport r = sample_report();
  EXPECT_NE(r.to_json().find("\"steal\":null"), std::string::npos);

  core::StealStats steals;
  steals.steal_attempts = 10;
  steals.steal_successes = 4;
  steals.nodes_stolen = 9;
  r.steal = steals;
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"steal\":{\"attempts\":10,\"successes\":4,"
                      "\"nodes_stolen\":9,\"success_rate\":0.4}"),
            std::string::npos);
}

TEST(SolveReport, TextSummaryMentionsStealsOnlyWhenPresent) {
  SolveReport r = sample_report();
  std::ostringstream plain;
  plain << r;
  EXPECT_EQ(plain.str().find("stolen"), std::string::npos);

  core::StealStats steals;
  steals.steal_attempts = 3;
  steals.steal_successes = 2;
  steals.nodes_stolen = 5;
  r.steal = steals;
  std::ostringstream with;
  with << r;
  EXPECT_NE(with.str().find("5 nodes stolen in 2/3 successful steals"),
            std::string::npos);
}

TEST(SolveReport, ConfigEchoCarriesStealKnobs) {
  SolveReport r = sample_report();
  r.config.victim_order = core::VictimOrder::kRandom;
  r.config.steal_batch = 7;
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"victim_order\":\"random\""), std::string::npos);
  EXPECT_NE(json.find("\"steal_batch\":7"), std::string::npos);
}

TEST(SolveReport, ConfigEchoCarriesGpuDevices) {
  SolveReport r = sample_report();
  r.config.gpu_devices = "2:c2050,c1060";
  EXPECT_NE(r.to_json().find("\"gpu_devices\":\"2:c2050,c1060\""),
            std::string::npos);
}

core::ResidentPoolStats sample_pool_stats() {
  core::ResidentPoolStats p;
  p.capacity = 128;
  p.slot_bytes = 32;
  p.overflow = 3;
  p.refills = 7;
  p.devices = 2;
  p.rebalanced = 5;
  core::ShardOccupancy a;
  a.device = 0;
  a.live = 4;
  a.peak_live = 9;
  a.allocated = 20;
  a.released = 16;
  a.spills = 1;
  a.steals = 2;
  a.refills = 3;
  core::ShardOccupancy b;
  b.device = 1;
  b.live = 0;
  b.peak_live = 6;
  b.allocated = 11;
  b.released = 11;
  b.spills = 2;
  b.steals = 1;
  b.refills = 4;
  p.shards = {a, b};
  return p;
}

TEST(PoolStatsJson, RoundTripsTheDeviceDimension) {
  const core::ResidentPoolStats p = sample_pool_stats();
  const core::ResidentPoolStats q =
      pool_stats_from_json(JsonValue::parse(pool_stats_to_json(p)));
  EXPECT_EQ(q.capacity, p.capacity);
  EXPECT_EQ(q.slot_bytes, p.slot_bytes);
  EXPECT_EQ(q.overflow, p.overflow);
  EXPECT_EQ(q.refills, p.refills);
  EXPECT_EQ(q.devices, p.devices);
  EXPECT_EQ(q.rebalanced, p.rebalanced);
  ASSERT_EQ(q.shards.size(), p.shards.size());
  for (std::size_t i = 0; i < p.shards.size(); ++i) {
    EXPECT_EQ(q.shards[i].device, p.shards[i].device) << i;
    EXPECT_EQ(q.shards[i].live, p.shards[i].live) << i;
    EXPECT_EQ(q.shards[i].peak_live, p.shards[i].peak_live) << i;
    EXPECT_EQ(q.shards[i].allocated, p.shards[i].allocated) << i;
    EXPECT_EQ(q.shards[i].released, p.shards[i].released) << i;
    EXPECT_EQ(q.shards[i].spills, p.shards[i].spills) << i;
    EXPECT_EQ(q.shards[i].steals, p.shards[i].steals) << i;
    EXPECT_EQ(q.shards[i].refills, p.shards[i].refills) << i;
  }
}

TEST(PoolStatsJson, ReadsThePreMultiDeviceFlatShape) {
  // The shape emitted before the device dimension existed: no "devices",
  // no "rebalanced", shards without a "device" field. Old recorded
  // reports must keep parsing, defaulting to one device.
  const std::string old_shape =
      "{\"capacity\":64,\"slot_bytes\":16,\"overflow\":2,\"refills\":5,"
      "\"peak_live\":9,\"shards\":[{\"live\":1,\"peak_live\":9,"
      "\"allocated\":10,\"released\":9,\"spills\":0,\"steals\":0,"
      "\"refills\":5}]}";
  const core::ResidentPoolStats q =
      pool_stats_from_json(JsonValue::parse(old_shape));
  EXPECT_EQ(q.capacity, 64u);
  EXPECT_EQ(q.slot_bytes, 16u);
  EXPECT_EQ(q.overflow, 2u);
  EXPECT_EQ(q.refills, 5u);
  EXPECT_EQ(q.devices, 1u);
  EXPECT_EQ(q.rebalanced, 0u);
  ASSERT_EQ(q.shards.size(), 1u);
  EXPECT_EQ(q.shards[0].device, 0u);
  EXPECT_EQ(q.shards[0].allocated, 10u);
  EXPECT_EQ(q.shards[0].refills, 5u);
}

TEST(SolveReport, JsonCarriesTheMultiDevicePoolShape) {
  SolveReport r = sample_report();
  r.pool = sample_pool_stats();
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"devices\":2"), std::string::npos);
  EXPECT_NE(json.find("\"rebalanced\":5"), std::string::npos);
  EXPECT_NE(json.find("\"device\":1"), std::string::npos);

  std::ostringstream text;
  text << r;
  EXPECT_NE(text.str().find("(2 devices, 5 rebalanced)"), std::string::npos);
}

}  // namespace
}  // namespace fsbb::api
