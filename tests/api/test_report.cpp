// SolveReport serialization: json_escape must emit RFC 8259-valid string
// bodies for any byte sequence (control characters included), and the
// report JSON must carry the steal statistics of sharded-pool backends.
#include "api/report.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace fsbb::api {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("cpu-steal"), "cpu-steal");
  EXPECT_EQ(json_escape(""), "");
  EXPECT_EQ(json_escape("ta-like-10x5-s42"), "ta-like-10x5-s42");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, EscapesNamedControlCharacters) {
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(json_escape("a\bb"), "a\\bb");
  EXPECT_EQ(json_escape("a\fb"), "a\\fb");
}

TEST(JsonEscape, EscapesEveryRemainingControlCharacterAsUXxxx) {
  // U+0000..U+001F must never appear raw inside a JSON string (RFC 8259
  // §7) — a backend name or error string with a stray byte would
  // otherwise emit invalid JSON.
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(json_escape(std::string("a") + '\0' + "b"),
            std::string("a\\u0000b"));
  for (int c = 0; c < 0x20; ++c) {
    const std::string escaped = json_escape(std::string(1, static_cast<char>(c)));
    EXPECT_GE(escaped.size(), 2u) << "control char " << c << " left raw";
    EXPECT_EQ(escaped[0], '\\') << "control char " << c << " left raw";
  }
}

TEST(JsonEscape, LeavesHighBytesAlone) {
  // Non-ASCII (UTF-8 continuation) bytes are not control characters and
  // must pass through — the signed-char cast bug would send them through
  // the \u path with a wild sign-extended value.
  const std::string utf8 = "\xc3\xa9";  // é
  EXPECT_EQ(json_escape(utf8), utf8);
}

SolveReport sample_report() {
  SolveReport r;
  r.instance_name = "sample-5x3";
  r.jobs = 5;
  r.machines = 3;
  r.backend = "cpu-steal";
  r.best_makespan = 123;
  r.best_permutation = {2, 0, 1, 4, 3};
  r.proven_optimal = true;
  return r;
}

TEST(SolveReport, JsonSurvivesControlCharactersInStrings) {
  SolveReport r = sample_report();
  r.instance_name = std::string("bad\tname\nwith") + '\x01' + "controls";
  r.evaluator = "eval\r\"quoted\"";
  const std::string json = r.to_json();
  EXPECT_EQ(json.find('\t'), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.find('\r'), std::string::npos);
  EXPECT_EQ(json.find('\x01'), std::string::npos);
  EXPECT_NE(json.find("bad\\tname\\nwith\\u0001controls"), std::string::npos);
}

TEST(SolveReport, JsonCarriesStealStatsWhenPresent) {
  SolveReport r = sample_report();
  EXPECT_NE(r.to_json().find("\"steal\":null"), std::string::npos);

  core::StealStats steals;
  steals.steal_attempts = 10;
  steals.steal_successes = 4;
  steals.nodes_stolen = 9;
  r.steal = steals;
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"steal\":{\"attempts\":10,\"successes\":4,"
                      "\"nodes_stolen\":9,\"success_rate\":0.4}"),
            std::string::npos);
}

TEST(SolveReport, TextSummaryMentionsStealsOnlyWhenPresent) {
  SolveReport r = sample_report();
  std::ostringstream plain;
  plain << r;
  EXPECT_EQ(plain.str().find("stolen"), std::string::npos);

  core::StealStats steals;
  steals.steal_attempts = 3;
  steals.steal_successes = 2;
  steals.nodes_stolen = 5;
  r.steal = steals;
  std::ostringstream with;
  with << r;
  EXPECT_NE(with.str().find("5 nodes stolen in 2/3 successful steals"),
            std::string::npos);
}

TEST(SolveReport, ConfigEchoCarriesStealKnobs) {
  SolveReport r = sample_report();
  r.config.victim_order = core::VictimOrder::kRandom;
  r.config.steal_batch = 7;
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"victim_order\":\"random\""), std::string::npos);
  EXPECT_NE(json.find("\"steal_batch\":7"), std::string::npos);
}

}  // namespace
}  // namespace fsbb::api
