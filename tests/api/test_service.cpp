// SolverService + SolveHandle: futures resolve with the same results the
// synchronous facade produces, try_get/wait/state behave, cancellation and
// deadlines produce consistent partial reports, failed jobs carry their
// error (and rethrow with the original type), progress events stream with
// strictly improving incumbents and a terminal event, and ≥ 8 concurrent
// jobs multiplex over the worker pool correctly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "api/service.h"
#include "api/solver.h"
#include "fsp/taillard.h"

namespace fsbb::api {
namespace {

fsp::Instance small_instance(std::int32_t seed = 123456789) {
  return fsp::make_taillard_instance(9, 5, seed,
                                     "svc-9x5-" + std::to_string(seed));
}

/// An instance big enough (with a weak incumbent) that it cannot finish
/// before a cancel lands, on any backend.
fsp::Instance big_instance() {
  return fsp::make_taillard_instance(14, 10, 777, "svc-big-14x10");
}

SolverConfig weak_ub_config(const std::string& backend,
                            const fsp::Instance& inst) {
  SolverConfig config;
  config.backend = backend;
  config.threads = 2;
  config.initial_ub = inst.total_work();  // weak: long search
  return config;
}

TEST(SolverService, SubmitWaitMatchesSynchronousSolve) {
  const fsp::Instance inst = small_instance();
  SolverConfig config;
  config.backend = "cpu-serial";

  SolverService service(SolverService::Options{2});
  SolveHandle handle = service.submit(inst, config);
  EXPECT_TRUE(handle.valid());
  EXPECT_GT(handle.id(), 0u);
  const SolveReport async_report = handle.wait_report();
  EXPECT_TRUE(handle.done());
  EXPECT_EQ(handle.state(), JobState::kDone);

  const SolveReport sync_report = Solver(config).solve(inst);
  EXPECT_EQ(async_report.best_makespan, sync_report.best_makespan);
  EXPECT_EQ(async_report.proven_optimal, sync_report.proven_optimal);
  EXPECT_EQ(async_report.stop_reason, core::StopReason::kOptimal);
  EXPECT_EQ(async_report.stats.branched, sync_report.stats.branched);
  EXPECT_EQ(service.jobs_submitted(), 1u);
  while (service.jobs_active() != 0) std::this_thread::yield();
  EXPECT_EQ(service.jobs_active(), 0u);
}

TEST(SolverService, TryGetIsNonBlockingAndWaitIdempotent) {
  SolverService service(SolverService::Options{1});
  // Park a long job so the second one is observably queued.
  SolveHandle blocker =
      service.submit(big_instance(),
                     weak_ub_config("cpu-serial", big_instance()));
  SolveHandle queued = service.submit(small_instance(),
                                      SolverConfig{});  // cpu-serial default
  EXPECT_EQ(queued.state(), JobState::kQueued);
  EXPECT_FALSE(queued.try_get().has_value());
  blocker.cancel();
  const SolveOutcome& outcome = queued.wait();
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(queued.try_get().has_value());
  EXPECT_EQ(queued.try_get()->report->best_makespan,
            outcome.report->best_makespan);
  // wait() again returns the same terminal outcome.
  EXPECT_EQ(queued.wait().report->best_makespan,
            outcome.report->best_makespan);
  blocker.wait();
}

TEST(SolverService, EmptyHandleThrows) {
  SolveHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_THROW(handle.id(), CheckFailure);
  EXPECT_THROW(handle.state(), CheckFailure);
  EXPECT_THROW(handle.cancel(), CheckFailure);
  EXPECT_THROW(handle.wait(), CheckFailure);
  EXPECT_THROW(handle.try_get(), CheckFailure);
}

TEST(SolverService, SubmitRejectsMisconfigurationSynchronously) {
  SolverService service(SolverService::Options{1});
  SolverConfig config;
  config.backend = "quantum";
  EXPECT_THROW(service.submit(small_instance(), config), CheckFailure);
  config.backend = "cpu-serial";
  config.threads = 0;
  EXPECT_THROW(service.submit(small_instance(), config), CheckFailure);
}

TEST(SolverService, FailedJobCarriesErrorAndRethrowsOriginalType) {
  SolverService service(SolverService::Options{1});
  SolverConfig config;
  config.backend = "multicore";
  config.bound = Bound::kLb0;  // lb1-only backend: fails at execution
  SolveHandle handle = service.submit(small_instance(), config);
  const SolveOutcome& outcome = handle.wait();
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(handle.state(), JobState::kFailed);
  EXPECT_NE(outcome.error.find("lb1"), std::string::npos) << outcome.error;
  EXPECT_THROW(handle.wait_report(), CheckFailure);
}

TEST(SolverService, ZeroDeadlineStopsBeforeBranching) {
  SolverService service(SolverService::Options{2});
  const fsp::Instance inst = small_instance();
  SolverConfig config;
  config.backend = "cpu-serial";
  config.deadline_ms = 0;  // already expired at submission
  const SolveReport report =
      service.submit(inst, config).wait_report();
  EXPECT_EQ(report.stop_reason, core::StopReason::kDeadline);
  EXPECT_FALSE(report.proven_optimal);
  EXPECT_EQ(report.stats.branched, 0u);
  // The incumbent is still the NEH seed — a valid schedule bound.
  EXPECT_EQ(report.best_makespan, report.stats.initial_ub);
  EXPECT_EQ(report.best_permutation.size(),
            static_cast<std::size_t>(inst.jobs()));
}

TEST(SolverService, DeadlineMidSearchReturnsPartialReport) {
  SolverService service(SolverService::Options{1});
  const fsp::Instance inst = big_instance();
  SolverConfig config = weak_ub_config("cpu-serial", inst);
  config.deadline_ms = 30;
  const SolveReport report = service.submit(inst, config).wait_report();
  EXPECT_EQ(report.stop_reason, core::StopReason::kDeadline);
  EXPECT_FALSE(report.proven_optimal);
  EXPECT_LE(report.best_makespan, inst.total_work());
  EXPECT_LT(report.stats.wall_seconds, 10.0);  // stopped long before optimal
}

TEST(SolverService, CancelWhileQueuedStillYieldsCanceledOutcome) {
  SolverService service(SolverService::Options{1});
  SolveHandle blocker =
      service.submit(big_instance(),
                     weak_ub_config("cpu-serial", big_instance()));
  SolveHandle queued = service.submit(small_instance(), SolverConfig{});
  queued.cancel();  // latched while still queued
  blocker.cancel();  // unblock the single worker
  const SolveOutcome& outcome = queued.wait();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.report->stop_reason, core::StopReason::kCanceled);
  EXPECT_EQ(outcome.report->stats.branched, 0u);
  EXPECT_EQ(queued.state(), JobState::kCanceled);
  blocker.wait();
}

TEST(SolverService, IncumbentEventsStreamInStrictlyImprovingOrder) {
  SolverService service(SolverService::Options{1});
  const fsp::Instance inst = small_instance();
  SolverConfig config = weak_ub_config("cpu-serial", inst);
  config.progress_interval_ms = 0;  // every tick passes

  std::mutex mu;
  std::vector<ProgressEvent> events;
  SolveHandle handle = service.submit(
      inst, config, [&mu, &events](const ProgressEvent& event) {
        const std::lock_guard<std::mutex> lock(mu);
        events.push_back(event);
      });
  const SolveReport report = handle.wait_report();

  const std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(events.empty());
  // Terminal event arrives exactly once, last.
  EXPECT_EQ(events.back().kind, ProgressEvent::Kind::kFinished);
  EXPECT_EQ(events.back().stop_reason, core::StopReason::kOptimal);
  fsp::Time last = std::numeric_limits<fsp::Time>::max();
  std::size_t incumbents = 0;
  for (std::size_t i = 0; i + 1 < events.size(); ++i) {
    EXPECT_NE(events[i].kind, ProgressEvent::Kind::kFinished) << i;
    EXPECT_EQ(events[i].job, handle.id());
    if (events[i].kind == ProgressEvent::Kind::kIncumbent) {
      EXPECT_LT(events[i].incumbent, last) << "quality must improve";
      EXPECT_EQ(events[i].permutation.size(),
                static_cast<std::size_t>(inst.jobs()));
      last = events[i].incumbent;
      ++incumbents;
    }
  }
  EXPECT_GT(incumbents, 0u);
  // The last streamed incumbent is the final answer.
  EXPECT_EQ(last, report.best_makespan);
}

TEST(SolverService, CompletionCallbackFiresBeforeWaitUnblocks) {
  SolverService service(SolverService::Options{1});
  std::atomic<bool> completed{false};
  SolveHandle handle = service.submit(
      small_instance(), SolverConfig{}, nullptr,
      [&completed](const SolveOutcome& outcome) {
        EXPECT_TRUE(outcome.ok());
        completed.store(true);
      });
  handle.wait();
  EXPECT_TRUE(completed.load());
}

TEST(SolverService, EightConcurrentJobsMultiplexAndAllAgree) {
  SolverService service(SolverService::Options{8});
  const fsp::Instance inst = small_instance();
  const fsp::Time expected =
      Solver(SolverConfig{}).solve(inst).best_makespan;

  // Mixed backends on the same instance, all in flight together.
  const std::vector<std::string> backends = {
      "cpu-serial", "cpu-threads", "cpu-steal",  "multicore",
      "gpu-sim",    "adaptive",    "cpu-serial", "cpu-steal"};
  std::vector<SolveHandle> handles;
  for (const std::string& backend : backends) {
    SolverConfig config;
    config.backend = backend;
    config.threads = 2;
    handles.push_back(service.submit(inst, config));
  }
  ASSERT_EQ(handles.size(), 8u);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const SolveReport report = handles[i].wait_report();
    EXPECT_TRUE(report.proven_optimal) << backends[i];
    EXPECT_EQ(report.best_makespan, expected) << backends[i];
    EXPECT_EQ(report.backend, backends[i]);
  }
  EXPECT_EQ(service.jobs_submitted(), 8u);
  // wait() can return a hair before the worker drops the job from the
  // live set; settle briefly instead of racing it.
  while (service.jobs_active() != 0) std::this_thread::yield();
  EXPECT_EQ(service.jobs_active(), 0u);
}

TEST(SolverService, SnapshotTracksQueuedRunningAndCompleted) {
  SolverService service(SolverService::Options{1});
  const QueueSnapshot idle = service.snapshot();
  EXPECT_EQ(idle.queued, 0u);
  EXPECT_EQ(idle.running, 0u);
  EXPECT_EQ(idle.submitted, 0u);
  EXPECT_EQ(idle.completed, 0u);
  EXPECT_EQ(idle.oldest_age_seconds, 0.0);

  // One worker: the blocker runs, the second job is observably queued.
  SolveHandle blocker =
      service.submit(big_instance(),
                     weak_ub_config("cpu-serial", big_instance()));
  SolveHandle queued = service.submit(small_instance(), SolverConfig{});
  while (service.snapshot().running == 0) std::this_thread::yield();
  const QueueSnapshot busy = service.snapshot();
  EXPECT_EQ(busy.running, 1u);
  EXPECT_EQ(busy.queued, 1u);
  EXPECT_EQ(busy.submitted, 2u);
  EXPECT_EQ(busy.completed, 0u);
  EXPECT_GE(busy.oldest_age_seconds, 0.0);

  blocker.cancel();
  blocker.wait();
  queued.wait();
  while (service.jobs_active() != 0) std::this_thread::yield();
  const QueueSnapshot done = service.snapshot();
  EXPECT_EQ(done.queued, 0u);
  EXPECT_EQ(done.running, 0u);
  EXPECT_EQ(done.submitted, 2u);
  EXPECT_EQ(done.completed, 2u);
  EXPECT_EQ(done.oldest_age_seconds, 0.0);
}

TEST(SolverService, SnapshotAgeGrowsWhileAJobWaits) {
  SolverService service(SolverService::Options{1});
  SolveHandle blocker =
      service.submit(big_instance(),
                     weak_ub_config("cpu-serial", big_instance()));
  while (service.snapshot().running == 0) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_GT(service.snapshot().oldest_age_seconds, 0.0);
  blocker.cancel();
  blocker.wait();
}

TEST(SolverService, SnapshotSerializesToJson) {
  QueueSnapshot snap;
  snap.queued = 3;
  snap.running = 2;
  snap.submitted = 9;
  snap.completed = 4;
  snap.oldest_age_seconds = 1.5;
  const JsonValue parsed = JsonValue::parse(snap.to_json());
  EXPECT_EQ(parsed.int_or("queued", -1), 3);
  EXPECT_EQ(parsed.int_or("running", -1), 2);
  EXPECT_EQ(parsed.int_or("submitted", -1), 9);
  EXPECT_EQ(parsed.int_or("completed", -1), 4);
  EXPECT_EQ(parsed.find("oldest_age_seconds")->as_number(), 1.5);
}

TEST(SolverService, DestructorCancelsOutstandingJobs) {
  SolveHandle held;
  {
    SolverService service(SolverService::Options{1});
    held = service.submit(big_instance(),
                          weak_ub_config("cpu-serial", big_instance()));
    // Destroy the service while the job runs (or is queued).
  }
  ASSERT_TRUE(held.done());
  const SolveOutcome& outcome = held.wait();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.report->stop_reason, core::StopReason::kCanceled);
  EXPECT_FALSE(outcome.report->proven_optimal);
}

TEST(SolverService, DestructorDrainsEveryQueuedJobToATerminalState) {
  // More jobs than workers, all slow, then immediate teardown: every held
  // handle must still resolve (canceled), queued and running alike.
  std::vector<SolveHandle> handles;
  {
    SolverService service(SolverService::Options{2});
    for (int i = 0; i < 4; ++i) {
      handles.push_back(
          service.submit(big_instance(),
                         weak_ub_config("cpu-steal", big_instance())));
    }
  }
  for (SolveHandle& handle : handles) {
    const SolveOutcome& outcome = handle.wait();
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.report->stop_reason, core::StopReason::kCanceled);
  }
}

}  // namespace
}  // namespace fsbb::api
