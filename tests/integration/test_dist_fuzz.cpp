// Randomized differential testing of the multi-process distributed path:
// seeded random ta-like instances, each solved by the serial engine
// (the oracle) and by a dist::Coordinator over real worker processes with
// small slices (many checkpoints, live incumbent traffic) — and every
// third run SIGKILLs a worker mid-shard. The distributed optimum must be
// bit-for-bit the serial one, proven, with a schedule that actually has
// that makespan and merged stats that respect the search-tree invariants.
//
// Sharded so ctest -j spreads the runs; each shard is deterministic in its
// index. Skipped when fsbb_serve is not next to the test binary.
#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "api/solver.h"
#include "api/solver_config.h"
#include "common/rng.h"
#include "dist/coordinator.h"
#include "dist/process.h"
#include "fsp/makespan.h"

namespace fsbb {
namespace {

constexpr int kShards = 4;
constexpr int kRunsPerShard = 5;  // 4 x 5 = 20 distributed solves

bool worker_binary_available() {
  const std::vector<std::string> cmd = dist::default_worker_command();
  return !cmd.empty() && ::access(cmd.front().c_str(), X_OK) == 0;
}

class DistFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DistFuzz, DistributedOptimumMatchesSerialBitForBit) {
  if (!worker_binary_available()) {
    GTEST_SKIP() << "fsbb_serve not found next to the test binary";
  }
  const int shard = GetParam();
  SplitMix64 rng(0xD157u * 1000003u + static_cast<std::uint64_t>(shard));

  for (int run = 0; run < kRunsPerShard; ++run) {
    api::SolverConfig config;
    config.backend = "cpu-serial";
    config.instance.jobs = static_cast<int>(rng.next_in(8, 11));
    config.instance.machines = static_cast<int>(rng.next_in(3, 8));
    config.instance.seed = static_cast<std::int32_t>(rng.next_below(1 << 30));
    const std::string label =
        std::to_string(config.instance.jobs) + "x" +
        std::to_string(config.instance.machines) + " seed " +
        std::to_string(config.instance.seed);

    const fsp::Instance inst = api::make_instances(config.instance).front();
    const api::SolveReport oracle = api::Solver(config).solve(inst);
    ASSERT_TRUE(oracle.proven_optimal) << label;

    dist::CoordinatorOptions options;
    options.workers = 2 + rng.next_below(2);          // 2..3
    options.frontier_nodes = 16 + rng.next_below(33); // 16..48
    options.slice_nodes = 30 + rng.next_below(171);   // 30..200
    const bool kill = run % 3 == 2;
    if (kill) {
      options.kill_worker =
          static_cast<int>(rng.next_below(options.workers));
      options.kill_after_checkpoints = 1;
    }

    fsp::Instance copy = api::make_instances(config.instance).front();
    dist::Coordinator coordinator(std::move(copy), config, options);
    const api::SolveReport report = coordinator.run();

    EXPECT_EQ(report.best_makespan, oracle.best_makespan)
        << label << (kill ? " (killed worker)" : "");
    EXPECT_TRUE(report.proven_optimal) << label;
    EXPECT_EQ(report.stop_reason, core::StopReason::kOptimal) << label;
    if (!report.best_permutation.empty()) {
      EXPECT_EQ(fsp::makespan(inst, report.best_permutation),
                report.best_makespan)
          << label;
    }
    EXPECT_GE(report.stats.generated, report.stats.branched) << label;
    EXPECT_LE(report.stats.evaluated, report.stats.generated) << label;
    const dist::DistSummary& s = coordinator.summary();
    EXPECT_LE(s.shards_completed, s.shards_dispatched) << label;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, DistFuzz, ::testing::Range(0, kShards));

}  // namespace
}  // namespace fsbb
