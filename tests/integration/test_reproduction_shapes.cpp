// Shape tests for the paper's headline results. These pin the *qualitative*
// claims of Tables II/III and Figures 4/5 on the simulated C2050 so any
// calibration or model regression that would flip a conclusion of the
// reproduction fails loudly. Absolute values are checked only as wide bands
// (see EXPERIMENTS.md for the full numeric comparison).
#include <gtest/gtest.h>

#include <map>

#include "core/protocol.h"
#include "fsp/taillard.h"
#include "gpubb/autotuner.h"
#include "gpubb/offload_model.h"
#include "mtbb/multicore_model.h"

namespace fsbb {
namespace {

struct InstanceScenarios {
  gpubb::OffloadScenario global;
  gpubb::OffloadScenario shared;
};

// Scenario measurements are expensive (a frozen pool needs thousands of
// real LB evaluations), so build them once for the whole suite.
class ReproductionShapes : public ::testing::Test {
 protected:
  static constexpr std::size_t kFrontier = 4096;

  static void SetUpTestSuite() {
    device_ = new gpusim::SimDevice(gpusim::DeviceSpec::tesla_c2050());
    scenarios_ = new std::map<int, InstanceScenarios>;
    instances_ = new std::vector<std::unique_ptr<fsp::Instance>>;
    lb_data_ = new std::vector<std::unique_ptr<fsp::LowerBoundData>>;
    for (const int jobs : {20, 50, 100, 200}) {
      instances_->push_back(std::make_unique<fsp::Instance>(
          fsp::taillard_class_representative(jobs, 20)));
      const fsp::Instance& inst = *instances_->back();
      lb_data_->push_back(std::make_unique<fsp::LowerBoundData>(
          fsp::LowerBoundData::build(inst)));
      const fsp::LowerBoundData& data = *lb_data_->back();
      const core::FrozenPool frozen = core::freeze_pool(inst, data, 1024);
      InstanceScenarios s{
          gpubb::measure_scenario(*device_, inst, data,
                                  gpubb::PlacementPolicy::kAllGlobal,
                                  frozen.nodes, kFrontier),
          gpubb::measure_scenario(*device_, inst, data,
                                  gpubb::PlacementPolicy::kSharedJmPtm,
                                  frozen.nodes, kFrontier)};
      scenarios_->emplace(jobs, std::move(s));
    }
  }
  static void TearDownTestSuite() {
    delete scenarios_;
    delete lb_data_;
    delete instances_;
    delete device_;
  }

  static double speedup(int jobs, bool shared, std::size_t pool) {
    const InstanceScenarios& s = scenarios_->at(jobs);
    return gpubb::model_offload_cycle(shared ? s.shared : s.global, pool)
        .speedup();
  }

  static gpusim::SimDevice* device_;
  static std::map<int, InstanceScenarios>* scenarios_;
  static std::vector<std::unique_ptr<fsp::Instance>>* instances_;
  static std::vector<std::unique_ptr<fsp::LowerBoundData>>* lb_data_;
};

gpusim::SimDevice* ReproductionShapes::device_ = nullptr;
std::map<int, InstanceScenarios>* ReproductionShapes::scenarios_ = nullptr;
std::vector<std::unique_ptr<fsp::Instance>>* ReproductionShapes::instances_ =
    nullptr;
std::vector<std::unique_ptr<fsp::LowerBoundData>>* ReproductionShapes::lb_data_ =
    nullptr;

TEST_F(ReproductionShapes, TableII_SmallestPoolIsNeverBest) {
  // 16 blocks on 14 SMs starve the card (paper §IV-A).
  for (const int jobs : {20, 50, 100, 200}) {
    EXPECT_GT(speedup(jobs, false, 8192), speedup(jobs, false, 4096))
        << jobs << "x20";
  }
}

TEST_F(ReproductionShapes, TableII_LargeInstancesKeepImprovingWithPoolSize) {
  for (const int jobs : {100, 200}) {
    EXPECT_GT(speedup(jobs, false, 262144), speedup(jobs, false, 16384))
        << jobs << "x20";
  }
}

TEST_F(ReproductionShapes, TableII_SmallInstancePeaksEarlyThenDeclines) {
  // The 20x20 row of Table II peaks at pool 8192 and declines afterwards.
  EXPECT_GT(speedup(20, false, 8192), speedup(20, false, 262144));
}

TEST_F(ReproductionShapes, TableII_SpeedupBandsAreCredible) {
  // Paper Table II spans roughly x41..x78. Allow generous slack: every
  // configuration must accelerate by more than x15 and less than x160.
  for (const int jobs : {20, 50, 100, 200}) {
    for (const std::size_t pool : {8192u, 65536u, 262144u}) {
      const double s = speedup(jobs, false, pool);
      EXPECT_GT(s, 15.0) << jobs << "x20 pool " << pool;
      EXPECT_LT(s, 160.0) << jobs << "x20 pool " << pool;
    }
  }
}

TEST_F(ReproductionShapes, TableIII_SharedPlacementWinsEverywhere) {
  // Table III dominates Table II cell-by-cell.
  for (const int jobs : {20, 50, 100, 200}) {
    for (const std::size_t pool : {8192u, 65536u, 262144u}) {
      EXPECT_GT(speedup(jobs, true, pool), speedup(jobs, false, pool))
          << jobs << "x20 pool " << pool;
    }
  }
}

TEST_F(ReproductionShapes, TableIII_PeakGainOverGlobalNearPaperRatio) {
  // Paper: 200x20 at the largest pool goes from x77.46 to x100.48 — a
  // 1.30x gain. Accept 1.1x .. 1.8x.
  const double gain =
      speedup(200, true, 262144) / speedup(200, false, 262144);
  EXPECT_GT(gain, 1.10);
  EXPECT_LT(gain, 1.80);
}

TEST_F(ReproductionShapes, Figure4_GapWidensWithInstanceSize) {
  // At the largest pool, the absolute shared-vs-global gap grows with n.
  const double gap_small =
      speedup(20, true, 262144) - speedup(20, false, 262144);
  const double gap_large =
      speedup(200, true, 262144) - speedup(200, false, 262144);
  EXPECT_GT(gap_large, gap_small);
}

TEST_F(ReproductionShapes, Figure5_GpuBeatsIsoGflopsMulticoreEverywhere) {
  const auto params = mtbb::MulticoreModelParams::i7_970_defaults();
  const int threads = mtbb::threads_for_gflops(params, 500.0);
  for (const int jobs : {20, 50, 100, 200}) {
    const double gpu = speedup(jobs, true, 8192);
    const double cpu = mtbb::multicore_speedup(params, threads, jobs);
    EXPECT_GT(gpu, cpu) << jobs << "x20";
  }
}

TEST_F(ReproductionShapes, Figure5_GpuAdvantageGrowsWithInstanceSize) {
  // Paper: x6.7 on 20x20 up to x11.5 on 200x20 at iso-GFLOPS.
  const auto params = mtbb::MulticoreModelParams::i7_970_defaults();
  const int threads = mtbb::threads_for_gflops(params, 500.0);
  const double ratio_small = speedup(20, true, 262144) /
                             mtbb::multicore_speedup(params, threads, 20);
  const double ratio_large = speedup(200, true, 262144) /
                             mtbb::multicore_speedup(params, threads, 200);
  EXPECT_GT(ratio_large, ratio_small);
  EXPECT_GT(ratio_large, 4.0);
}

TEST_F(ReproductionShapes, OccupancyStory_SharedPlacementLimitsWarps) {
  // §IV-B: registers cap the all-global kernel at 32 warps for every
  // instance; the staged tables push large instances below that.
  for (const int jobs : {20, 50, 100, 200}) {
    const auto& s = scenarios_->at(jobs);
    EXPECT_EQ(s.global.occupancy.active_warps, 32) << jobs;
    if (jobs >= 100) {
      EXPECT_LT(s.shared.occupancy.active_warps, 32) << jobs;
    } else {
      EXPECT_EQ(s.shared.occupancy.active_warps, 32) << jobs;
    }
  }
}

TEST_F(ReproductionShapes, Autotuner_PrefersLargePoolsForLargeInstances) {
  const auto tuned_small = gpubb::autotune_pool_size(
      scenarios_->at(20).shared, 4096, 262144);
  const auto tuned_large = gpubb::autotune_pool_size(
      scenarios_->at(200).shared, 4096, 262144);
  EXPECT_GE(tuned_large.best_pool_size, tuned_small.best_pool_size);
}

}  // namespace
}  // namespace fsbb
