// Cancellation and deadline semantics across EVERY registered backend —
// the acceptance guarantee of the asynchronous API: cancel mid-search
// returns a consistent partial SolveReport (valid incumbent, not proven,
// stop reason canceled), an already-expired deadline stops before any
// branching, and both unwind promptly on serial and concurrent engines
// alike. Runs under the integration label, which CI also executes under
// ThreadSanitizer — covering the SearchControl path in both concurrent
// engines.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "api/solver.h"
#include "core/audit.h"
#include "fsp/makespan.h"
#include "fsp/taillard.h"

namespace fsbb::api {
namespace {

/// Big enough (with the weak incumbent below) that no backend can finish
/// before a cancel or a short deadline lands — this seed takes minutes to
/// solve serially — while root setup stays cheap.
fsp::Instance big_instance() {
  return fsp::make_taillard_instance(14, 10, 777, "cancel-14x10");
}

SolverConfig config_for(const std::string& backend,
                        const fsp::Instance& inst) {
  SolverConfig config;
  config.backend = backend;
  config.threads = 2;
  config.initial_ub = inst.total_work();  // weak: the search runs long
  config.progress_interval_ms = 0;
  return config;
}

/// A report from an early stop must still be internally consistent.
void expect_consistent_partial(const SolveReport& report,
                               const fsp::Instance& inst,
                               core::StopReason reason,
                               const std::string& backend) {
  EXPECT_EQ(report.stop_reason, reason) << backend;
  EXPECT_FALSE(report.proven_optimal) << backend;
  // The incumbent never exceeds the starting bound...
  EXPECT_LE(report.best_makespan, inst.total_work()) << backend;
  // ...and when a schedule was found, its makespan must check out exactly.
  if (!report.best_permutation.empty()) {
    EXPECT_EQ(static_cast<int>(report.best_permutation.size()), inst.jobs())
        << backend;
    EXPECT_EQ(fsp::makespan(inst, report.best_permutation),
              report.best_makespan)
        << backend;
  }
}

TEST(Cancellation, MidSearchCancelYieldsConsistentPartialReportAllBackends) {
  const fsp::Instance inst = big_instance();
  SolverService service(SolverService::Options{1});
  for (const std::string& backend : BackendRegistry::global().keys()) {
    const SolverConfig config = config_for(backend, inst);

    // Cancel only after the search demonstrably made progress.
    std::atomic<bool> progressed{false};
    SolveHandle handle = service.submit(
        inst, config, [&progressed](const ProgressEvent& event) {
          if (event.kind != ProgressEvent::Kind::kFinished &&
              event.branched > 0) {
            progressed.store(true);
          }
        });
    while (!progressed.load() && !handle.done()) {
      std::this_thread::yield();
    }
    handle.cancel();
    const SolveReport report = handle.wait_report();
    expect_consistent_partial(report, inst, core::StopReason::kCanceled,
                              backend);
    EXPECT_EQ(handle.state(), JobState::kCanceled) << backend;
  }
}

TEST(Cancellation, ZeroDeadlineStopsBeforeBranchingAllBackends) {
  const fsp::Instance inst = big_instance();
  SolverService service(SolverService::Options{1});
  for (const std::string& backend : BackendRegistry::global().keys()) {
    SolverConfig config = config_for(backend, inst);
    config.deadline_ms = 0;  // expired at submission
    const SolveReport report = service.submit(inst, config).wait_report();
    expect_consistent_partial(report, inst, core::StopReason::kDeadline,
                              backend);
    EXPECT_EQ(report.stats.branched, 0u) << backend;
  }
}

TEST(Cancellation, ShortDeadlineStopsMidSearchAllBackends) {
  const fsp::Instance inst = big_instance();
  SolverService service(SolverService::Options{1});
  for (const std::string& backend : BackendRegistry::global().keys()) {
    SolverConfig config = config_for(backend, inst);
    config.deadline_ms = 40;
    const SolveReport report = service.submit(inst, config).wait_report();
    expect_consistent_partial(report, inst, core::StopReason::kDeadline,
                              backend);
    // Stopped within one bounding batch of the deadline — far below the
    // (effectively unbounded) full solve time.
    EXPECT_LT(report.stats.wall_seconds, 10.0) << backend;
  }
}

// Every simulated-device pool organization — per-offload repack, resident
// shards, and the per-thread DFS pool — must drain cleanly out of a
// mid-kernel stop. The DFS pool is the interesting one: a cancel or
// deadline lands between whole-subtree launches and the budget clamps the
// launch's expansion quota, so surviving lanes must resurface their
// subtree state without losing or duplicating nodes. Runs with the
// invariant auditors live so a leaked arena slot or non-monotone
// incumbent fails loudly.
TEST(Cancellation, GpuPoolModesStopCleanlyOnCancelDeadlineAndBudget) {
  const core::audit::ScopedEnable audited;
  const fsp::Instance inst = big_instance();
  SolverService service(SolverService::Options{1});

  for (const gpubb::GpuPoolMode mode :
       {gpubb::GpuPoolMode::kRepack, gpubb::GpuPoolMode::kResident,
        gpubb::GpuPoolMode::kDfs}) {
    const std::string label =
        std::string("gpu-sim/") + gpubb::to_string(mode);
    SolverConfig base = config_for("gpu-sim", inst);
    base.gpu_pool = mode;
    if (mode == gpubb::GpuPoolMode::kDfs) {
      base.strategy = core::SelectionStrategy::kDepthFirst;
    }

    // Cancel after the search demonstrably made progress.
    {
      std::atomic<bool> progressed{false};
      SolveHandle handle = service.submit(
          inst, base, [&progressed](const ProgressEvent& event) {
            if (event.kind != ProgressEvent::Kind::kFinished &&
                event.branched > 0) {
              progressed.store(true);
            }
          });
      while (!progressed.load() && !handle.done()) {
        std::this_thread::yield();
      }
      handle.cancel();
      const SolveReport report = handle.wait_report();
      expect_consistent_partial(report, inst, core::StopReason::kCanceled,
                                label);
    }

    // A short deadline lands between kernel launches.
    {
      SolverConfig config = base;
      config.deadline_ms = 40;
      const SolveReport report = service.submit(inst, config).wait_report();
      expect_consistent_partial(report, inst, core::StopReason::kDeadline,
                                label);
      EXPECT_LT(report.stats.wall_seconds, 10.0) << label;
    }

    // A node budget stop. The batch engines (repack/resident) may finish
    // the batch in flight, so allow up to one batch of overshoot; the DFS
    // launch clamps its expansion quota to the remaining budget, so the
    // kernel cannot overshoot at all.
    {
      SolverConfig config = base;
      config.batch_size = 64;
      config.node_budget = 500;
      const SolveReport report = service.submit(inst, config).wait_report();
      expect_consistent_partial(report, inst, core::StopReason::kBudget,
                                label);
      EXPECT_GE(report.stats.branched, 500u) << label;
      if (mode == gpubb::GpuPoolMode::kDfs) {
        EXPECT_EQ(report.stats.branched, 500u) << label;
      } else {
        EXPECT_LE(report.stats.branched, 564u) << label;
      }
    }
  }
}

TEST(Cancellation, CanceledConcurrentEnginesAgreeOnTheReason) {
  // Both mtbb engines propagate one latched reason to every worker: run
  // them with 4 workers, cancel mid-flight, and check the single reason.
  const fsp::Instance inst = big_instance();
  SolverService service(SolverService::Options{2});
  for (const std::string backend : {"multicore", "cpu-steal"}) {
    SolverConfig config = config_for(backend, inst);
    config.threads = 4;
    std::atomic<bool> progressed{false};
    SolveHandle handle = service.submit(
        inst, config, [&progressed](const ProgressEvent& event) {
          if (event.kind != ProgressEvent::Kind::kFinished) {
            progressed.store(true);
          }
        });
    while (!progressed.load() && !handle.done()) {
      std::this_thread::yield();
    }
    handle.cancel();
    const SolveReport report = handle.wait_report();
    EXPECT_EQ(report.stop_reason, core::StopReason::kCanceled) << backend;
    EXPECT_NE(report.to_json().find("\"stop_reason\":\"canceled\""),
              std::string::npos)
        << backend;
  }
}

}  // namespace
}  // namespace fsbb::api
