// Randomized differential testing: ~200 seeded random instances drawn from
// every fsp::generators family (n <= 9 so the brute-force oracle stays
// cheap, m varied), and every registered backend — including the
// work-stealing cpu-steal engine — must match the oracle on makespan and
// prove optimality. This is the exactness net under the concurrent engines:
// a racy incumbent, a lost node or an unsound bound shows up here as a
// wrong or unproven optimum on a pinpointed (family, n, m, seed) tuple.
//
// Sharded so ctest -j spreads the instances across cores; every shard is
// deterministic in its index.
#include <gtest/gtest.h>

#include "api/backend_registry.h"
#include "api/solver.h"
#include "common/rng.h"
#include "core/audit.h"
#include "core/engine.h"
#include "core/search_control.h"
#include "fsp/brute_force.h"
#include "fsp/generators.h"
#include "fsp/makespan.h"
#include "gpubb/multi_device_pool.h"
#include "gpusim/device_spec.h"

namespace fsbb {
namespace {

constexpr int kShards = 8;
constexpr int kInstancesPerShard = 25;  // 8 x 25 = 200 instances

constexpr fsp::InstanceFamily kFamilies[] = {
    fsp::InstanceFamily::kUniform,           fsp::InstanceFamily::kJobCorrelated,
    fsp::InstanceFamily::kMachineCorrelated, fsp::InstanceFamily::kTrend,
    fsp::InstanceFamily::kTwoPlateaus,
};

class DifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFuzz, EveryBackendMatchesBruteForce) {
  // Every solve in this body runs with the invariant auditors live
  // (core/audit.h): arena slot lifecycle, resident-pool tickets and
  // incumbent monotonicity all fail the test loudly if violated.
  const core::audit::ScopedEnable audited;
  const int shard = GetParam();
  SplitMix64 rng(0xD1FFu * 1000003u + static_cast<std::uint64_t>(shard));
  const std::vector<std::string> backends = api::BackendRegistry::global().keys();

  for (int i = 0; i < kInstancesPerShard; ++i) {
    const auto family = kFamilies[rng.next_below(std::size(kFamilies))];
    const int jobs = static_cast<int>(rng.next_in(5, 9));
    const int machines = static_cast<int>(rng.next_in(2, 10));
    const std::uint64_t seed = rng.next();
    const fsp::Instance inst =
        fsp::make_instance(family, jobs, machines, seed);
    const std::string label = std::string(fsp::to_string(family)) + " " +
                              std::to_string(jobs) + "x" +
                              std::to_string(machines) + " seed " +
                              std::to_string(seed);

    const fsp::BruteForceResult oracle = fsp::brute_force(inst);
    ASSERT_EQ(fsp::makespan(inst, oracle.permutation), oracle.makespan)
        << label;

    for (const std::string& backend : backends) {
      api::SolverConfig config;
      config.backend = backend;
      config.threads = 3;
      const api::SolveReport report = api::Solver(config).solve(inst);
      EXPECT_TRUE(report.proven_optimal) << backend << " on " << label;
      EXPECT_EQ(report.best_makespan, oracle.makespan)
          << backend << " on " << label;
      if (!report.best_permutation.empty()) {
        EXPECT_EQ(fsp::makespan(inst, report.best_permutation),
                  report.best_makespan)
            << backend << " on " << label;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, DifferentialFuzz,
                         ::testing::Range(0, kShards));

// The incremental sibling-batch seam (Lb1BoundContext through
// evaluate_siblings) against the prefix-replay path (CallbackEvaluator,
// which takes the default flat-batch fallback): same engine, same batch
// size, so not just the optimum but the *entire search* — every counter
// of every operator — must be bit-identical. A single off-by-one bound
// would branch a different tree and show up in `generated`/`pruned`.
class SeamVsReplayFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SeamVsReplayFuzz, SearchCountersAreBitIdentical) {
  // Every solve in this body runs with the invariant auditors live
  // (core/audit.h): arena slot lifecycle, resident-pool tickets and
  // incumbent monotonicity all fail the test loudly if violated.
  const core::audit::ScopedEnable audited;
  const int shard = GetParam();
  SplitMix64 rng(0x5EA3u * 999983u + static_cast<std::uint64_t>(shard));
  for (int i = 0; i < 8; ++i) {
    const auto family = kFamilies[rng.next_below(std::size(kFamilies))];
    const int jobs = static_cast<int>(rng.next_in(6, 10));
    const int machines = static_cast<int>(rng.next_in(2, 10));
    const std::uint64_t seed = rng.next();
    const fsp::Instance inst =
        fsp::make_instance(family, jobs, machines, seed);
    const std::string label = std::string(fsp::to_string(family)) + " " +
                              std::to_string(jobs) + "x" +
                              std::to_string(machines) + " seed " +
                              std::to_string(seed);

    // cpu-serial and cpu-threads cover both sibling-capable evaluators;
    // callback with the same batch size is the replay reference.
    for (const std::size_t batch : {std::size_t{1}, std::size_t{64}}) {
      api::SolverConfig seam;
      seam.backend = batch == 1 ? "cpu-serial" : "cpu-threads";
      seam.threads = 3;
      seam.batch_size = batch;
      api::SolverConfig replay;
      replay.backend = "callback";
      replay.batch_size = batch;

      const api::SolveReport a = api::Solver(seam).solve(inst);
      const api::SolveReport b = api::Solver(replay).solve(inst);
      ASSERT_EQ(a.best_makespan, b.best_makespan) << label;
      ASSERT_EQ(a.proven_optimal, b.proven_optimal) << label;
      ASSERT_EQ(a.best_permutation, b.best_permutation) << label;
      ASSERT_EQ(a.stats.branched, b.stats.branched) << label;
      ASSERT_EQ(a.stats.generated, b.stats.generated) << label;
      ASSERT_EQ(a.stats.evaluated, b.stats.evaluated) << label;
      ASSERT_EQ(a.stats.pruned, b.stats.pruned) << label;
      ASSERT_EQ(a.stats.leaves, b.stats.leaves) << label;
      ASSERT_EQ(a.stats.ub_updates, b.stats.ub_updates) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, SeamVsReplayFuzz, ::testing::Range(0, 4));

// The device-resident pool path against the host reference: gpu-sim (and
// adaptive) drive ResidentPool::iterate offload iterations, cpu-serial
// drives the sibling seam — same engine, same batch size, so not just the
// optimum but every search counter must be bit-identical. A single wrong
// device-side bound, a lost child slot or a mis-derived permutation would
// branch a different tree and show up in `generated`/`pruned`.
class GpuResidentVsSerialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GpuResidentVsSerialFuzz, SearchCountersAreBitIdentical) {
  // Every solve in this body runs with the invariant auditors live
  // (core/audit.h): arena slot lifecycle, resident-pool tickets and
  // incumbent monotonicity all fail the test loudly if violated.
  const core::audit::ScopedEnable audited;
  const int shard = GetParam();
  SplitMix64 rng(0x6F0A1u * 1000003u + static_cast<std::uint64_t>(shard));
  for (int i = 0; i < 6; ++i) {
    const auto family = kFamilies[rng.next_below(std::size(kFamilies))];
    const int jobs = static_cast<int>(rng.next_in(6, 10));
    const int machines = static_cast<int>(rng.next_in(2, 10));
    const std::uint64_t seed = rng.next();
    const fsp::Instance inst =
        fsp::make_instance(family, jobs, machines, seed);
    const std::string label = std::string(fsp::to_string(family)) + " " +
                              std::to_string(jobs) + "x" +
                              std::to_string(machines) + " seed " +
                              std::to_string(seed);

    api::SolverConfig serial;
    serial.backend = "cpu-serial";
    serial.batch_size = 64;  // same offload shape on both sides
    const api::SolveReport reference = api::Solver(serial).solve(inst);

    for (const std::string backend : {"gpu-sim", "adaptive"}) {
      api::SolverConfig gpu;
      gpu.backend = backend;
      gpu.batch_size = 64;
      gpu.threads = 3;
      const api::SolveReport report = api::Solver(gpu).solve(inst);
      ASSERT_EQ(report.best_makespan, reference.best_makespan)
          << backend << " " << label;
      ASSERT_EQ(report.best_permutation, reference.best_permutation)
          << backend << " " << label;
      ASSERT_EQ(report.stats.branched, reference.stats.branched)
          << backend << " " << label;
      ASSERT_EQ(report.stats.generated, reference.stats.generated)
          << backend << " " << label;
      ASSERT_EQ(report.stats.evaluated, reference.stats.evaluated)
          << backend << " " << label;
      ASSERT_EQ(report.stats.pruned, reference.stats.pruned)
          << backend << " " << label;
      ASSERT_EQ(report.stats.leaves, reference.stats.leaves)
          << backend << " " << label;
      ASSERT_EQ(report.stats.ub_updates, reference.stats.ub_updates)
          << backend << " " << label;
      if (backend == "gpu-sim") {
        // The resident pool actually carried the search: shard stats are
        // present and account every bounded child.
        ASSERT_TRUE(report.pool.has_value()) << label;
        std::uint64_t allocated = 0;
        for (const auto& s : report.pool->shards) allocated += s.allocated;
        EXPECT_EQ(allocated + report.pool->overflow, report.stats.evaluated)
            << label;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, GpuResidentVsSerialFuzz,
                         ::testing::Range(0, 4));

// The per-thread device DFS pool against the host depth-first reference:
// gpu-sim --gpu-pool dfs drives whole-subtree kernel launches (fused
// select/branch/bound, lazy pop-time elimination inside the kernel),
// cpu-serial with --strategy depth-first --batch-size 1 replays the same
// exploration order one node at a time. Every counter must be
// bit-identical: a wrong IvmNode decode, a missed incumbent check between
// expansions or a mis-ordered resurface after the quota recall would
// branch a different tree.
class GpuDfsVsSerialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GpuDfsVsSerialFuzz, SearchCountersAreBitIdentical) {
  // Every solve in this body runs with the invariant auditors live
  // (core/audit.h): arena slot lifecycle, resident-pool tickets and
  // incumbent monotonicity all fail the test loudly if violated.
  const core::audit::ScopedEnable audited;
  const int shard = GetParam();
  SplitMix64 rng(0xDF5B1u * 1000003u + static_cast<std::uint64_t>(shard));
  for (int i = 0; i < 6; ++i) {
    const auto family = kFamilies[rng.next_below(std::size(kFamilies))];
    const int jobs = static_cast<int>(rng.next_in(6, 10));
    const int machines = static_cast<int>(rng.next_in(2, 10));
    const std::uint64_t seed = rng.next();
    const fsp::Instance inst =
        fsp::make_instance(family, jobs, machines, seed);
    const std::string label = std::string(fsp::to_string(family)) + " " +
                              std::to_string(jobs) + "x" +
                              std::to_string(machines) + " seed " +
                              std::to_string(seed);

    api::SolverConfig serial;
    serial.backend = "cpu-serial";
    serial.strategy = core::SelectionStrategy::kDepthFirst;
    serial.batch_size = 1;  // the order the kernel lanes replay
    const api::SolveReport reference = api::Solver(serial).solve(inst);

    api::SolverConfig gpu;
    gpu.backend = "gpu-sim";
    gpu.strategy = core::SelectionStrategy::kDepthFirst;
    gpu.gpu_pool = gpubb::GpuPoolMode::kDfs;
    const api::SolveReport report = api::Solver(gpu).solve(inst);
    ASSERT_EQ(report.best_makespan, reference.best_makespan) << label;
    ASSERT_EQ(report.proven_optimal, reference.proven_optimal) << label;
    ASSERT_EQ(report.best_permutation, reference.best_permutation) << label;
    ASSERT_EQ(report.stats.branched, reference.stats.branched) << label;
    ASSERT_EQ(report.stats.generated, reference.stats.generated) << label;
    ASSERT_EQ(report.stats.evaluated, reference.stats.evaluated) << label;
    ASSERT_EQ(report.stats.pruned, reference.stats.pruned) << label;
    ASSERT_EQ(report.stats.leaves, reference.stats.leaves) << label;
    ASSERT_EQ(report.stats.ub_updates, reference.stats.ub_updates) << label;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, GpuDfsVsSerialFuzz, ::testing::Range(0, 4));

// The multi-device pool against the host reference: gpu-sim with
// --gpu-devices 2 (and one heterogeneous c2050+c1060 mix) shards the
// resident pool over two simulated cards — refill routing, outer-ticket
// translation and cross-card incumbent broadcast all live on the solve
// path — while cpu-serial drives the sibling seam with the same batch
// size. Same engine, same serial control flow, so every counter and the
// incumbent stream must be bit-identical: a group routed to the wrong
// card, a mistranslated ticket or a lost payload would branch a
// different tree. Includes a mid-solve cancel (both engines stop at the
// same batch boundary) and a starved-device rebalance run with the
// ticket-conservation identity pinned.
class MultiDeviceVsSerialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MultiDeviceVsSerialFuzz, SearchCountersAreBitIdentical) {
  // Every solve in this body runs with the invariant auditors live
  // (core/audit.h): arena slot lifecycle, resident-pool tickets and
  // incumbent monotonicity all fail the test loudly if violated.
  const core::audit::ScopedEnable audited;
  const int shard = GetParam();
  SplitMix64 rng(0x3D0C1u * 1000003u + static_cast<std::uint64_t>(shard));
  for (int i = 0; i < 5; ++i) {
    const auto family = kFamilies[rng.next_below(std::size(kFamilies))];
    const int jobs = static_cast<int>(rng.next_in(6, 10));
    const int machines = static_cast<int>(rng.next_in(2, 10));
    const std::uint64_t seed = rng.next();
    const fsp::Instance inst =
        fsp::make_instance(family, jobs, machines, seed);
    const std::string label = std::string(fsp::to_string(family)) + " " +
                              std::to_string(jobs) + "x" +
                              std::to_string(machines) + " seed " +
                              std::to_string(seed);

    api::SolverConfig serial;
    serial.backend = "cpu-serial";
    serial.batch_size = 64;  // same offload shape on both sides
    const api::SolveReport reference = api::Solver(serial).solve(inst);

    // Device layouts under test: homogeneous pair, heterogeneous mix.
    for (const char* devices : {"2", "2:c2050,c1060"}) {
      api::SolverConfig gpu;
      gpu.backend = "gpu-sim";
      gpu.batch_size = 64;
      gpu.gpu_devices = devices;
      const api::SolveReport report = api::Solver(gpu).solve(inst);
      ASSERT_EQ(report.best_makespan, reference.best_makespan)
          << devices << " " << label;
      ASSERT_EQ(report.best_permutation, reference.best_permutation)
          << devices << " " << label;
      ASSERT_EQ(report.stats.branched, reference.stats.branched)
          << devices << " " << label;
      ASSERT_EQ(report.stats.generated, reference.stats.generated)
          << devices << " " << label;
      ASSERT_EQ(report.stats.evaluated, reference.stats.evaluated)
          << devices << " " << label;
      ASSERT_EQ(report.stats.pruned, reference.stats.pruned)
          << devices << " " << label;
      ASSERT_EQ(report.stats.leaves, reference.stats.leaves)
          << devices << " " << label;
      ASSERT_EQ(report.stats.ub_updates, reference.stats.ub_updates)
          << devices << " " << label;
      // The sharded pool carried the search, and the ticket conservation
      // identity holds: every bounded child was a resident slot, an
      // overflow, or a rebalancer move.
      ASSERT_TRUE(report.pool.has_value()) << devices << " " << label;
      EXPECT_EQ(report.pool->devices, 2u) << devices << " " << label;
      std::uint64_t allocated = 0;
      for (const auto& s : report.pool->shards) allocated += s.allocated;
      EXPECT_EQ(allocated + report.pool->overflow,
                report.stats.evaluated + report.pool->rebalanced)
          << devices << " " << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, MultiDeviceVsSerialFuzz,
                         ::testing::Range(0, 4));

// Mid-solve cancellation determinism: both engines share the batch size,
// so a cancel latched at the first incumbent event stops both at the
// same batch boundary — counters stay bit-identical even though the
// solve is cut short. Drives BBEngine directly (the facade owns its
// control block; here the test needs to inject the cancel).
TEST(MultiDeviceVsSerialCancel, CanceledSearchesStayBitIdentical) {
  const core::audit::ScopedEnable audited;
  const fsp::Instance inst = fsp::make_instance(
      fsp::InstanceFamily::kUniform, 9, 6, 0xC4A11u);
  const auto data = fsp::LowerBoundData::build(inst);

  const auto canceled_solve = [&](core::BoundEvaluator& eval) {
    core::SearchControl control;
    control.set_sink([&](const core::SearchEvent& e) {
      if (e.kind == core::SearchEvent::Kind::kIncumbent) {
        control.request_cancel();
      }
    });
    core::EngineOptions o;
    o.strategy = core::SelectionStrategy::kDepthFirst;
    o.batch_size = 16;
    // Loose starting incumbent: the first leaf reached improves it, the
    // sink fires, and the cancel latches long before exhaustion.
    o.initial_ub = 1000000;
    o.control = &control;
    core::BBEngine engine(inst, data, eval, o);
    return engine.solve();
  };

  core::SerialCpuEvaluator serial_eval(inst, data);
  const core::SolveResult reference = canceled_solve(serial_eval);
  ASSERT_EQ(reference.stop_reason, core::StopReason::kCanceled);

  gpubb::MultiDeviceConfig mdc;
  mdc.specs = {gpusim::DeviceSpec::tesla_c2050(),
               gpusim::DeviceSpec::tesla_c1060()};
  gpubb::MultiDevicePool pool(inst, data, mdc);
  const core::SolveResult result = canceled_solve(pool);

  EXPECT_EQ(result.stop_reason, core::StopReason::kCanceled);
  EXPECT_EQ(result.best_makespan, reference.best_makespan);
  EXPECT_EQ(result.best_permutation, reference.best_permutation);
  EXPECT_EQ(result.stats.branched, reference.stats.branched);
  EXPECT_EQ(result.stats.generated, reference.stats.generated);
  EXPECT_EQ(result.stats.evaluated, reference.stats.evaluated);
  EXPECT_EQ(result.stats.pruned, reference.stats.pruned);
  EXPECT_EQ(result.stats.leaves, reference.stats.leaves);
  EXPECT_EQ(result.stats.ub_updates, reference.stats.ub_updates);
}

// Starved-device rebalance on the live solve path: tiny per-card pools
// and an aggressive trigger force recall-and-resplit traffic during a
// real solve, and the search must still be bit-identical to the serial
// reference with conservation intact (the engine never observes a move —
// its outer tickets stay stable).
TEST(MultiDeviceVsSerialRebalance, RebalancedSearchStaysBitIdentical) {
  const core::audit::ScopedEnable audited;
  const fsp::Instance inst = fsp::make_instance(
      fsp::InstanceFamily::kTwoPlateaus, 9, 7, 0x5EEDBA1u);
  const auto data = fsp::LowerBoundData::build(inst);

  core::EngineOptions o;
  o.batch_size = 64;
  core::SerialCpuEvaluator serial_eval(inst, data);
  core::BBEngine serial_engine(inst, data, serial_eval, o);
  const core::SolveResult reference = serial_engine.solve();

  gpubb::MultiDeviceConfig mdc;
  mdc.specs = {gpusim::DeviceSpec::tesla_c2050(),
               gpusim::DeviceSpec::tesla_c2050()};
  mdc.pool_config.shards = 2;
  mdc.pool_config.slots_per_shard = 16;
  mdc.pool_config.block_threads = 8;
  mdc.rebalance_min_gap = 4;  // aggressive: rebalance on small skews
  mdc.rebalance_batch = 8;
  gpubb::MultiDevicePool pool(inst, data, mdc);
  core::BBEngine engine(inst, data, pool, o);
  const core::SolveResult result = engine.solve();

  EXPECT_GT(pool.rebalanced(), 0u) << "test knobs no longer trigger moves";
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.best_makespan, reference.best_makespan);
  EXPECT_EQ(result.best_permutation, reference.best_permutation);
  EXPECT_EQ(result.stats.branched, reference.stats.branched);
  EXPECT_EQ(result.stats.generated, reference.stats.generated);
  EXPECT_EQ(result.stats.evaluated, reference.stats.evaluated);
  EXPECT_EQ(result.stats.pruned, reference.stats.pruned);
  EXPECT_EQ(result.stats.leaves, reference.stats.leaves);
  EXPECT_EQ(result.stats.ub_updates, reference.stats.ub_updates);

  ASSERT_TRUE(result.pool.has_value());
  std::uint64_t allocated = 0;
  for (const auto& s : result.pool->shards) allocated += s.allocated;
  EXPECT_EQ(allocated + result.pool->overflow,
            result.stats.evaluated + result.pool->rebalanced);
}

// cpu-steal's LB2 plumbing (per-worker Lb2Scratch): the work-stealing
// engine under --bound lb2 must prove the same optimum as the serial LB2
// reference on every generator family.
class StealLb2Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(StealLb2Fuzz, Lb2StealMatchesSerialLb2) {
  // Every solve in this body runs with the invariant auditors live
  // (core/audit.h): arena slot lifecycle, resident-pool tickets and
  // incumbent monotonicity all fail the test loudly if violated.
  const core::audit::ScopedEnable audited;
  const int shard = GetParam();
  SplitMix64 rng(0x1B2A7u * 999979u + static_cast<std::uint64_t>(shard));
  for (int i = 0; i < 5; ++i) {
    const auto family = kFamilies[rng.next_below(std::size(kFamilies))];
    const int jobs = static_cast<int>(rng.next_in(6, 9));
    const int machines = static_cast<int>(rng.next_in(3, 8));
    const std::uint64_t seed = rng.next();
    const fsp::Instance inst =
        fsp::make_instance(family, jobs, machines, seed);
    const fsp::Time expected = fsp::brute_force(inst).makespan;

    api::SolverConfig steal;
    steal.backend = "cpu-steal";
    steal.bound = api::Bound::kLb2;
    steal.threads = 4;
    const api::SolveReport report = api::Solver(steal).solve(inst);
    EXPECT_TRUE(report.proven_optimal) << "seed " << seed;
    EXPECT_EQ(report.best_makespan, expected) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, StealLb2Fuzz, ::testing::Range(0, 4));

// The steal engine's own knob matrix gets a dedicated sweep: victim order
// and steal batch must never change the proven optimum.
class StealKnobFuzz : public ::testing::TestWithParam<int> {};

TEST_P(StealKnobFuzz, KnobsNeverChangeTheOptimum) {
  // Every solve in this body runs with the invariant auditors live
  // (core/audit.h): arena slot lifecycle, resident-pool tickets and
  // incumbent monotonicity all fail the test loudly if violated.
  const core::audit::ScopedEnable audited;
  const int shard = GetParam();
  SplitMix64 rng(0x57EA1u * 1000033u + static_cast<std::uint64_t>(shard));
  for (int i = 0; i < 5; ++i) {
    const auto family = kFamilies[rng.next_below(std::size(kFamilies))];
    const int jobs = static_cast<int>(rng.next_in(6, 9));
    const int machines = static_cast<int>(rng.next_in(3, 8));
    const std::uint64_t seed = rng.next();
    const fsp::Instance inst =
        fsp::make_instance(family, jobs, machines, seed);
    const fsp::Time expected = fsp::brute_force(inst).makespan;

    for (const char* order : {"round-robin", "random"}) {
      for (const std::size_t batch : {std::size_t{1}, std::size_t{8}}) {
        api::SolverConfig config;
        config.backend = "cpu-steal";
        config.threads = 4;
        config.victim_order = core::parse_victim_order(order);
        config.steal_batch = batch;
        const api::SolveReport report = api::Solver(config).solve(inst);
        EXPECT_TRUE(report.proven_optimal)
            << order << "/" << batch << " on seed " << seed;
        EXPECT_EQ(report.best_makespan, expected)
            << order << "/" << batch << " on seed " << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, StealKnobFuzz, ::testing::Range(0, 4));

}  // namespace
}  // namespace fsbb
