// Cross-backend integration: the serial CPU engine, the threaded CPU
// engine, the multi-threaded shared-pool engine and the hybrid
// CPU/simulated-GPU engine must all prove the same optimum on the same
// instances — the end-to-end guarantee behind every comparison the paper
// makes.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "core/protocol.h"
#include "fsp/brute_force.h"
#include "fsp/makespan.h"
#include "fsp/taillard.h"
#include "gpubb/gpu_evaluator.h"
#include "mtbb/mt_engine.h"
#include "mtbb/steal_engine.h"

namespace fsbb {
namespace {

fsp::Instance random_instance(int jobs, int machines, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Matrix<fsp::Time> pt(static_cast<std::size_t>(jobs),
                       static_cast<std::size_t>(machines));
  for (auto& v : pt.flat()) v = static_cast<fsp::Time>(rng.next_in(1, 99));
  return fsp::Instance("rand", std::move(pt));
}

class BackendAgreement : public ::testing::TestWithParam<int> {};

TEST_P(BackendAgreement, AllFourBackendsProveTheSameOptimum) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const fsp::Instance inst = random_instance(8, 5, seed);
  const auto data = fsp::LowerBoundData::build(inst);
  const fsp::Time expected = fsp::brute_force(inst).makespan;

  // Serial CPU.
  {
    core::SerialCpuEvaluator eval(inst, data);
    core::BBEngine engine(inst, data, eval, core::EngineOptions{});
    const auto r = engine.solve();
    ASSERT_TRUE(r.proven_optimal);
    ASSERT_EQ(r.best_makespan, expected) << "serial";
  }
  // Threaded-evaluator engine (Type 1 parallel bounding on host threads).
  {
    core::ThreadedCpuEvaluator eval(inst, data, 4);
    core::EngineOptions options;
    options.batch_size = 32;
    core::BBEngine engine(inst, data, eval, options);
    const auto r = engine.solve();
    ASSERT_TRUE(r.proven_optimal);
    ASSERT_EQ(r.best_makespan, expected) << "threaded";
  }
  // Multi-threaded shared-pool B&B (the paper's §V baseline).
  {
    mtbb::MtOptions options;
    options.threads = 4;
    const auto r = mtbb::mt_solve(inst, data, options);
    ASSERT_TRUE(r.proven_optimal);
    ASSERT_EQ(r.best_makespan, expected) << "mtbb";
  }
  // Work-stealing sharded-pool B&B (the scalable multicore successor).
  {
    mtbb::MtOptions options;
    options.threads = 4;
    const auto r = mtbb::steal_solve(inst, data, options);
    ASSERT_TRUE(r.proven_optimal);
    ASSERT_EQ(r.best_makespan, expected) << "steal";
  }
  // Hybrid CPU + simulated GPU (the paper's contribution).
  {
    gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
    gpubb::GpuBoundEvaluator eval(device, inst, data,
                                  gpubb::PlacementPolicy::kSharedJmPtm);
    core::EngineOptions options;
    options.batch_size = 128;
    core::BBEngine engine(inst, data, eval, options);
    const auto r = engine.solve();
    ASSERT_TRUE(r.proven_optimal);
    ASSERT_EQ(r.best_makespan, expected) << "gpu";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendAgreement, ::testing::Range(0, 6));

TEST(BackendAgreement, FrozenPoolProtocolAcrossBackends) {
  // The paper's §IV protocol end-to-end: freeze a pool on a moderately
  // sized instance, then every backend explores exactly that list.
  const fsp::Instance inst = random_instance(12, 6, 424242);
  const auto data = fsp::LowerBoundData::build(inst);
  const core::FrozenPool frozen =
      core::freeze_pool(inst, data, 100, inst.total_work());

  core::SerialCpuEvaluator serial(inst, data);
  const auto serial_result = core::explore_frozen(
      inst, data, frozen, serial, core::SelectionStrategy::kBestFirst, 1);

  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  gpubb::GpuBoundEvaluator gpu(device, inst, data,
                               gpubb::PlacementPolicy::kAuto);
  const auto gpu_result = core::explore_frozen(
      inst, data, frozen, gpu, core::SelectionStrategy::kBestFirst, 256);

  mtbb::MtOptions mt_options;
  mt_options.threads = 4;
  const auto mt_result = mtbb::mt_solve_from(inst, data, frozen.nodes,
                                             frozen.incumbent, mt_options);
  const auto steal_result = mtbb::steal_solve_from(
      inst, data, frozen.nodes, frozen.incumbent, mt_options);

  EXPECT_EQ(serial_result.best_makespan, gpu_result.best_makespan);
  EXPECT_EQ(serial_result.best_makespan, mt_result.best_makespan);
  EXPECT_EQ(serial_result.best_makespan, steal_result.best_makespan);
  EXPECT_TRUE(serial_result.proven_optimal);
  EXPECT_TRUE(gpu_result.proven_optimal);
  EXPECT_TRUE(mt_result.proven_optimal);
  EXPECT_TRUE(steal_result.proven_optimal);
}

TEST(BackendAgreement, IdenticalNodeCountsForIdenticalBatching) {
  // With the same selection strategy, batch size and deterministic bounds,
  // the engine's operator counts must not depend on the evaluator backend.
  const fsp::Instance inst = random_instance(10, 5, 7);
  const auto data = fsp::LowerBoundData::build(inst);
  const core::FrozenPool frozen =
      core::freeze_pool(inst, data, 50, inst.total_work());

  core::SerialCpuEvaluator serial(inst, data);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  gpubb::GpuBoundEvaluator gpu(device, inst, data,
                               gpubb::PlacementPolicy::kSharedJmPtm);

  const auto a = core::explore_frozen(inst, data, frozen, serial,
                                      core::SelectionStrategy::kBestFirst, 64);
  const auto b = core::explore_frozen(inst, data, frozen, gpu,
                                      core::SelectionStrategy::kBestFirst, 64);
  EXPECT_EQ(a.stats.branched, b.stats.branched);
  EXPECT_EQ(a.stats.generated, b.stats.generated);
  EXPECT_EQ(a.stats.evaluated, b.stats.evaluated);
  EXPECT_EQ(a.stats.pruned, b.stats.pruned);
  EXPECT_EQ(a.stats.leaves, b.stats.leaves);
}

}  // namespace
}  // namespace fsbb
