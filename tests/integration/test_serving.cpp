// End-to-end serving-layer acceptance over the NDJSON protocol:
//
//   * incumbent warm start — solve an instance under a node budget, then
//     re-submit it with its jobs PERMUTED: the second solve must start
//     from the cached incumbent (stats.initial_ub proves it), finish to
//     optimality, and agree with a from-scratch solve; a third submit is
//     answered straight from the cache without searching.
//   * admission control — an over-quota tenant is rejected with a
//     structured reason while another tenant's work proceeds, and the
//     metrics registry reflects both the rejects and the cache traffic.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/solver.h"
#include "common/json.h"
#include "common/matrix.h"
#include "fsp/makespan.h"
#include "fsp/taillard.h"
#include "serve/server.h"

namespace fsbb::serve {
namespace {

struct LineCollector {
  std::mutex mu;
  std::vector<std::string> lines;

  Client::Sink sink() {
    return [this](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mu);
      lines.push_back(line);
    };
  }

  /// First line containing all needles, waiting for worker threads.
  std::string wait_for(const std::vector<std::string>& needles,
                       int timeout_ms = 60000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      {
        const std::lock_guard<std::mutex> lock(mu);
        for (const std::string& line : lines) {
          bool all = true;
          for (const std::string& needle : needles) {
            if (line.find(needle) == std::string::npos) {
              all = false;
              break;
            }
          }
          if (all) return line;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ADD_FAILURE() << "no line containing: " << needles.front();
    return "{}";
  }
};

/// Submit request with an explicit processing-time matrix — the only way
/// a wire client can express a permuted twin of an earlier instance.
std::string submit_line(const std::string& id, const fsp::Instance& inst,
                        const std::string& cli, const std::string& tenant) {
  std::ostringstream os;
  os << R"({"op":"submit","id":")" << id << R"(","tenant":")" << tenant
     << R"(","cli":")" << cli << R"(","instance":{"name":")" << inst.name()
     << R"(","ptm":[)";
  for (int j = 0; j < inst.jobs(); ++j) {
    os << (j == 0 ? "[" : ",[");
    for (int k = 0; k < inst.machines(); ++k) {
      os << (k == 0 ? "" : ",") << inst.pt(j, k);
    }
    os << "]";
  }
  os << "]}}";
  return os.str();
}

fsp::Instance relabeled(const fsp::Instance& inst,
                        const std::vector<fsp::JobId>& perm,
                        const std::string& name) {
  Matrix<fsp::Time> pt(static_cast<std::size_t>(inst.jobs()),
                       static_cast<std::size_t>(inst.machines()));
  for (int j = 0; j < inst.jobs(); ++j) {
    for (int k = 0; k < inst.machines(); ++k) {
      pt(static_cast<std::size_t>(j), static_cast<std::size_t>(k)) =
          inst.pt(perm[static_cast<std::size_t>(j)], k);
    }
  }
  return fsp::Instance(name, std::move(pt));
}

std::vector<fsp::JobId> permutation_from(const JsonValue& report) {
  std::vector<fsp::JobId> perm;
  for (const JsonValue& v :
       report.find("result")->find("best_permutation")->as_array()) {
    perm.push_back(static_cast<fsp::JobId>(v.as_int()));
  }
  return perm;
}

TEST(ServeIntegration, PermutedResubmitWarmStartsFromCachedIncumbent) {
  ServerOptions options;
  options.workers = 1;
  options.quiet_progress = true;
  Server server(options);
  LineCollector out;
  auto client = std::make_shared<Client>(server, out.sink());

  // Phase 1: a budget-starved solve leaves an unproven incumbent behind.
  const fsp::Instance a = fsp::make_taillard_instance(12, 6, 4242, "warm-a");
  client->handle_line(
      submit_line("first", a, "--backend cpu-serial --node-budget 5", "t"));
  const JsonValue first = JsonValue::parse(
      out.wait_for({"\"event\":\"result\"", "\"id\":\"first\""}));
  ASSERT_TRUE(first.bool_or("ok", false));
  EXPECT_EQ(first.string_or("stop_reason", ""), "budget");
  const JsonValue* first_report = first.find("report");
  EXPECT_FALSE(first_report->find("result")->bool_or("proven_optimal", true));
  const std::int64_t cached_ub =
      first_report->find("result")->int_or("best_makespan", -1);
  ASSERT_GT(cached_ub, 0);
  EXPECT_EQ(server.cache().size(), 1u);

  // Phase 2: the SAME problem with its jobs permuted, no budget. The
  // canonical cache recognizes it; the accepted line announces the warm
  // start and the engine's recorded starting bound IS the cached
  // incumbent — the search resumed below it instead of re-seeding NEH.
  const std::vector<fsp::JobId> shuffle = {7, 2, 9, 0, 11, 4, 1, 10,
                                           3, 8, 5, 6};
  const fsp::Instance b = relabeled(a, shuffle, "warm-b");
  client->handle_line(submit_line("second", b, "--backend cpu-serial", "t"));
  const JsonValue accepted = JsonValue::parse(
      out.wait_for({"\"event\":\"accepted\"", "\"id\":\"second\""}));
  EXPECT_EQ(accepted.string_or("cache", ""), "warm");
  EXPECT_EQ(accepted.int_or("warm_ub", -1), cached_ub);

  const JsonValue second = JsonValue::parse(
      out.wait_for({"\"event\":\"result\"", "\"id\":\"second\""}));
  ASSERT_TRUE(second.bool_or("ok", false));
  EXPECT_EQ(second.string_or("stop_reason", ""), "optimal");
  const JsonValue* second_report = second.find("report");
  EXPECT_TRUE(second_report->find("result")->bool_or("proven_optimal",
                                                     false));
  EXPECT_EQ(second_report->find("stats")->int_or("initial_ub", -1),
            cached_ub);

  // Identical optimum to a from-scratch solve of the permuted instance,
  // with a schedule that actually achieves it in b's labels.
  api::SolverConfig reference;
  reference.backend = "cpu-serial";
  const fsp::Time expected = api::Solver(reference).solve(b).best_makespan;
  const std::int64_t optimum =
      second_report->find("result")->int_or("best_makespan", -1);
  EXPECT_EQ(optimum, expected);
  EXPECT_LE(optimum, cached_ub);
  const std::vector<fsp::JobId> perm = permutation_from(*second_report);
  ASSERT_TRUE(fsp::is_valid_permutation(b, perm));
  EXPECT_EQ(fsp::makespan(b, perm), static_cast<fsp::Time>(optimum));

  // Phase 3: the optimum is now cached as proven — a re-submit is
  // answered from the cache without touching the service.
  const std::uint64_t solved_before = server.service().jobs_submitted();
  client->handle_line(submit_line("third", b, "--backend cpu-serial", "t"));
  const JsonValue third = JsonValue::parse(
      out.wait_for({"\"event\":\"result\"", "\"id\":\"third\""}));
  EXPECT_EQ(third.string_or("cache", ""), "exact");
  EXPECT_EQ(third.find("report")->string_or("backend", ""), "cache");
  EXPECT_EQ(third.find("report")->find("result")->int_or("best_makespan", -1),
            optimum);
  EXPECT_EQ(server.service().jobs_submitted(), solved_before);

  const JsonValue metrics = JsonValue::parse(server.metrics_json());
  const JsonValue* cache = metrics.find("cache");
  EXPECT_EQ(cache->int_or("warm_starts", -1), 1);
  EXPECT_EQ(cache->int_or("exact_hits", -1), 1);
  EXPECT_GE(cache->int_or("insertions", -1), 2);  // budget run + optimum
  client->drain();
}

TEST(ServeIntegration, OverQuotaTenantRejectedWhileOthersProceed) {
  ServerOptions options;
  options.workers = 2;
  options.quiet_progress = true;
  options.admission.max_tenant_jobs = 1;
  Server server(options);
  LineCollector out;
  auto client = std::make_shared<Client>(server, out.sink());

  // Tenant alpha occupies its whole quota with one long search.
  client->handle_line(
      R"({"op":"submit","id":"long","tenant":"alpha",)"
      R"("cli":"--jobs 14 --machines 10 --seed 777 --ub 1000000"})");
  out.wait_for({"\"event\":\"accepted\"", "\"id\":\"long\""});

  // Alpha's second request bounces with a structured reason + hint...
  client->handle_line(
      R"({"op":"submit","id":"extra","tenant":"alpha",)"
      R"("cli":"--jobs 8 --machines 4 --seed 1"})");
  const JsonValue rejected = JsonValue::parse(
      out.wait_for({"\"event\":\"rejected\"", "\"id\":\"extra\""}));
  EXPECT_EQ(rejected.string_or("reason", ""), "tenant-quota");
  EXPECT_GE(rejected.int_or("retry_after_ms", 0), 100);

  // ...while tenant beta's work lands and completes normally.
  client->handle_line(
      R"({"op":"submit","id":"beta1","tenant":"beta",)"
      R"("cli":"--jobs 8 --machines 4 --seed 1"})");
  const JsonValue beta = JsonValue::parse(
      out.wait_for({"\"event\":\"result\"", "\"id\":\"beta1\""}));
  EXPECT_TRUE(beta.bool_or("ok", false));
  EXPECT_EQ(beta.string_or("stop_reason", ""), "optimal");

  const JsonValue metrics = JsonValue::parse(server.metrics_json());
  EXPECT_EQ(metrics.find("admission")->int_or("accepted", -1), 2);
  EXPECT_EQ(
      metrics.find("admission")->find("rejected")->int_or("tenant-quota", -1),
      1);

  // Canceling alpha's job frees the quota: the retry is admitted.
  client->handle_line(R"({"op":"cancel","id":"long"})");
  out.wait_for({"\"event\":\"result\"", "\"id\":\"long\""});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.admission().active_jobs("alpha") != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  client->handle_line(
      R"({"op":"submit","id":"retry","tenant":"alpha",)"
      R"("cli":"--jobs 8 --machines 4 --seed 2"})");
  const JsonValue retry = JsonValue::parse(
      out.wait_for({"\"event\":\"result\"", "\"id\":\"retry\""}));
  EXPECT_TRUE(retry.bool_or("ok", false));
  client->drain();
}

}  // namespace
}  // namespace fsbb::serve
