// Golden regression tests against the published Taillard optima.
//
// The full ta001–ta010 instances (20x5) are not provable in CI time with
// the LB1/LB2 ladder, so the published optima (Taillard, EJOR 1993 +
// follow-ups) are pinned through checks that stay exact yet cheap:
//
//   1. soundness   — LB1/LB2 at the root never exceed the known optimum,
//                    and NEH never beats it (an "improvement" on either
//                    side means a broken bound/heuristic, not a discovery);
//   2. no phantom  — a budgeted solve seeded AT the known optimum must
//      optima        come back with exactly that makespan: any engine or
//                    bound bug that conjures a better schedule fails here;
//   3. golden subs — the first-12-jobs sub-instances of ta001–ta010 ARE
//                    provable in milliseconds; their optima (computed once,
//                    pinned below) must be re-proven by the serial engine
//                    under both bounds and by the work-stealing engine, so
//                    a bound or engine regression fails loudly instead of
//                    silently exploring more nodes.
#include <gtest/gtest.h>

#include "api/solver.h"
#include "core/subproblem.h"
#include "fsp/lb1.h"
#include "fsp/lb2.h"
#include "fsp/makespan.h"
#include "fsp/neh.h"
#include "fsp/taillard.h"

namespace fsbb {
namespace {

struct GoldenTa {
  int ta_id;
  fsp::Time optimum;        ///< published optimal makespan (20x5)
  fsp::Time sub12_optimum;  ///< proven optimum of the first-12-jobs prefix
};

// Published optima: Taillard's benchmark page; all ten 20x5 instances are
// long closed. The sub-12 optima were proven by this repo's cpu-serial
// engine under LB1 and LB2 independently (identical node counts between
// runs pin the tree shape too, but only the value is asserted here).
constexpr GoldenTa kGolden[] = {
    {1, 1278, 907}, {2, 1359, 888}, {3, 1081, 799}, {4, 1293, 947},
    {5, 1235, 807}, {6, 1195, 826}, {7, 1234, 855}, {8, 1206, 777},
    {9, 1230, 810}, {10, 1108, 817},
};

fsp::Instance first_jobs(const fsp::Instance& full, int keep) {
  Matrix<fsp::Time> pt(static_cast<std::size_t>(keep),
                       static_cast<std::size_t>(full.machines()));
  for (int j = 0; j < keep; ++j) {
    for (int k = 0; k < full.machines(); ++k) {
      pt(static_cast<std::size_t>(j), static_cast<std::size_t>(k)) =
          full.pt(j, k);
    }
  }
  return fsp::Instance(full.name() + "-first" + std::to_string(keep),
                       std::move(pt));
}

class GoldenTaillard : public ::testing::TestWithParam<GoldenTa> {};

TEST_P(GoldenTaillard, RootBoundsAndNehBracketTheKnownOptimum) {
  const GoldenTa golden = GetParam();
  const fsp::Instance inst = fsp::taillard_instance(golden.ta_id);
  const auto data = fsp::LowerBoundData::build(inst);
  const auto lb2_data = fsp::Lb2Data::build(inst);
  const core::Subproblem root = core::Subproblem::root(inst.jobs());

  const fsp::Time lb1 = fsp::lb1_from_prefix(inst, data, root.prefix());
  const fsp::Time lb2 = fsp::lb2_from_prefix(inst, data, lb2_data,
                                             root.prefix());
  EXPECT_LE(lb1, golden.optimum) << "LB1 exceeds the published optimum";
  EXPECT_LE(lb2, golden.optimum) << "LB2 exceeds the published optimum";
  EXPECT_GE(lb2, lb1) << "LB2 must dominate LB1";

  const fsp::NehResult neh = fsp::neh(inst);
  EXPECT_GE(neh.makespan, golden.optimum) << "NEH beats the published optimum";
  EXPECT_EQ(fsp::makespan(inst, neh.permutation), neh.makespan);
}

TEST_P(GoldenTaillard, BudgetedSolveNeverBeatsTheKnownOptimum) {
  const GoldenTa golden = GetParam();
  const fsp::Instance inst = fsp::taillard_instance(golden.ta_id);
  for (const char* backend : {"cpu-serial", "cpu-steal"}) {
    api::SolverConfig config;
    config.backend = backend;
    config.initial_ub = golden.optimum;  // seeded AT the optimum
    config.node_budget = 20000;
    const api::SolveReport report = api::Solver(config).solve(inst);
    // A makespan below the published optimum is a phantom schedule from a
    // broken bound or engine; equal to it is merely the echoed incumbent.
    EXPECT_EQ(report.best_makespan, golden.optimum) << backend;
    if (!report.best_permutation.empty()) {
      EXPECT_EQ(fsp::makespan(inst, report.best_permutation),
                report.best_makespan)
          << backend;
    }
  }
}

TEST_P(GoldenTaillard, Sub12OptimaAreReprovenByEveryEngine) {
  const GoldenTa golden = GetParam();
  const fsp::Instance sub =
      first_jobs(fsp::taillard_instance(golden.ta_id), 12);

  for (const api::Bound bound : {api::Bound::kLb1, api::Bound::kLb2}) {
    api::SolverConfig config;
    config.backend = "cpu-serial";
    config.bound = bound;
    const api::SolveReport report = api::Solver(config).solve(sub);
    EXPECT_TRUE(report.proven_optimal) << to_string(bound);
    EXPECT_EQ(report.best_makespan, golden.sub12_optimum) << to_string(bound);
  }
  for (const char* backend : {"cpu-steal", "multicore"}) {
    api::SolverConfig config;
    config.backend = backend;
    config.threads = 4;
    const api::SolveReport report = api::Solver(config).solve(sub);
    EXPECT_TRUE(report.proven_optimal) << backend;
    EXPECT_EQ(report.best_makespan, golden.sub12_optimum) << backend;
  }
}

INSTANTIATE_TEST_SUITE_P(Ta01ToTa10, GoldenTaillard,
                         ::testing::ValuesIn(kGolden),
                         [](const auto& info) {
                           return "ta" + std::to_string(info.param.ta_id);
                         });

}  // namespace
}  // namespace fsbb
