// Multi-process distributed solving end to end: a dist::Coordinator
// driving real `fsbb_serve --worker` child processes. Pins the aggregate
// report against the serial engine (exact optimum, valid schedule, merged
// stats), the early-solve path, crash recovery via fault-injected SIGKILL,
// and the all-workers-dead failure mode.
//
// Skipped when fsbb_serve is not next to this test binary (both land in
// the build root; a partial build is the only way to lose it).
#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "api/solver.h"
#include "api/solver_config.h"
#include "common/check.h"
#include "dist/coordinator.h"
#include "dist/process.h"
#include "fsp/makespan.h"

namespace fsbb {
namespace {

bool worker_binary_available() {
  const std::vector<std::string> cmd = dist::default_worker_command();
  return !cmd.empty() && ::access(cmd.front().c_str(), X_OK) == 0;
}

#define SKIP_WITHOUT_WORKER_BINARY()                                   \
  if (!worker_binary_available()) {                                    \
    GTEST_SKIP() << "fsbb_serve not found next to the test binary";    \
  }

api::SolverConfig small_config(int jobs, int machines, std::int32_t seed) {
  api::SolverConfig config;
  config.backend = "cpu-serial";
  config.instance.jobs = jobs;
  config.instance.machines = machines;
  config.instance.seed = seed;
  return config;
}

/// The serial engine's proven optimum for the config's single instance.
api::SolveReport serial_oracle(const api::SolverConfig& config) {
  const fsp::Instance inst = api::make_instances(config.instance).front();
  const api::SolveReport report = api::Solver(config).solve(inst);
  EXPECT_TRUE(report.proven_optimal);
  return report;
}

TEST(DistSolve, CleanRunMatchesTheSerialEngine) {
  SKIP_WITHOUT_WORKER_BINARY();
  const api::SolverConfig config = small_config(12, 6, 42);
  const api::SolveReport oracle = serial_oracle(config);

  dist::CoordinatorOptions options;
  options.workers = 3;
  options.frontier_nodes = 48;
  options.slice_nodes = 500;
  fsp::Instance inst = api::make_instances(config.instance).front();
  dist::Coordinator coordinator(std::move(inst), config, options);
  const api::SolveReport report = coordinator.run();

  EXPECT_EQ(report.best_makespan, oracle.best_makespan);
  EXPECT_TRUE(report.proven_optimal);
  EXPECT_EQ(report.stop_reason, core::StopReason::kOptimal);
  EXPECT_EQ(report.backend, "dist:cpu-serial");
  ASSERT_FALSE(report.best_permutation.empty());
  const fsp::Instance check = api::make_instances(config.instance).front();
  EXPECT_EQ(fsp::makespan(check, report.best_permutation),
            report.best_makespan);

  // Merged per-worker stats still satisfy the search-tree invariants.
  EXPECT_GE(report.stats.generated, report.stats.branched);
  EXPECT_LE(report.stats.evaluated, report.stats.generated);
  EXPECT_GT(report.stats.branched, 0u);

  // Every dispatch either completes or is recalled/requeued into new
  // dispatches, so completed <= dispatched and both are positive; without
  // fault injection no worker ever dies.
  const dist::DistSummary& s = coordinator.summary();
  EXPECT_GT(s.shards_completed, 0u);
  EXPECT_LE(s.shards_completed, s.shards_dispatched);
  EXPECT_EQ(s.respawns, 0u);
}

TEST(DistSolve, SigkilledWorkerRecoversToTheExactOptimum) {
  SKIP_WITHOUT_WORKER_BINARY();
  const api::SolverConfig config = small_config(12, 6, 42);
  const api::SolveReport oracle = serial_oracle(config);

  dist::CoordinatorOptions options;
  options.workers = 3;
  options.frontier_nodes = 48;
  // Slices small enough that shards checkpoint several times — the kill
  // fires on worker 1's first checkpoint ack, mid-shard.
  options.slice_nodes = 25;
  options.kill_worker = 1;
  options.kill_after_checkpoints = 1;
  fsp::Instance inst = api::make_instances(config.instance).front();
  dist::Coordinator coordinator(std::move(inst), config, options);
  const api::SolveReport report = coordinator.run();

  // Bit-for-bit the serial optimum, SIGKILL or not: the respawned shard
  // resumes from the last acked checkpoint, which carries the complete
  // remaining sub-pool.
  EXPECT_EQ(report.best_makespan, oracle.best_makespan);
  EXPECT_TRUE(report.proven_optimal);
  ASSERT_FALSE(report.best_permutation.empty());
  const fsp::Instance check = api::make_instances(config.instance).front();
  EXPECT_EQ(fsp::makespan(check, report.best_permutation),
            report.best_makespan);
  const dist::DistSummary& s = coordinator.summary();
  EXPECT_GT(s.shards_completed, 0u);
  EXPECT_LE(s.shards_completed, s.shards_dispatched);
}

TEST(DistSolve, EarlySolveAtTheFrontierSkipsDispatch) {
  SKIP_WITHOUT_WORKER_BINARY();
  const api::SolverConfig config = small_config(7, 4, 9);
  const api::SolveReport oracle = serial_oracle(config);

  dist::CoordinatorOptions options;
  options.workers = 2;
  options.frontier_nodes = 1000000;  // unreachable: the root run exhausts
  fsp::Instance inst = api::make_instances(config.instance).front();
  dist::Coordinator coordinator(std::move(inst), config, options);
  const api::SolveReport report = coordinator.run();

  EXPECT_EQ(report.best_makespan, oracle.best_makespan);
  EXPECT_TRUE(report.proven_optimal);
  EXPECT_EQ(coordinator.summary().shards_dispatched, 0u);
}

TEST(DistSolve, ThrowsWhenEveryWorkerIsGone) {
  const api::SolverConfig config = small_config(12, 6, 42);
  dist::CoordinatorOptions options;
  options.workers = 2;
  options.frontier_nodes = 32;
  options.max_respawns = 1;
  options.respawn_backoff_seconds = 0.0;
  // A worker that exits immediately without ever speaking the protocol.
  options.worker_command = {"/bin/false"};
  fsp::Instance inst = api::make_instances(config.instance).front();
  dist::Coordinator coordinator(std::move(inst), config, options);
  EXPECT_THROW(coordinator.run(), CheckFailure);
}

}  // namespace
}  // namespace fsbb
