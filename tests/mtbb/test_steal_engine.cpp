#include "mtbb/steal_engine.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "core/protocol.h"
#include "fsp/brute_force.h"
#include "fsp/makespan.h"

namespace fsbb::mtbb {
namespace {

fsp::Instance random_instance(int jobs, int machines, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Matrix<fsp::Time> pt(static_cast<std::size_t>(jobs),
                       static_cast<std::size_t>(machines));
  for (auto& v : pt.flat()) v = static_cast<fsp::Time>(rng.next_in(1, 50));
  return fsp::Instance("rand", std::move(pt));
}

using StealCase = std::tuple<int, int>;  // (seed, threads)

class StealEngineVsBruteForce : public ::testing::TestWithParam<StealCase> {};

TEST_P(StealEngineVsBruteForce, FindsTheOptimum) {
  const auto [seed, threads] = GetParam();
  const fsp::Instance inst =
      random_instance(8, 4, static_cast<std::uint64_t>(seed));
  const auto data = fsp::LowerBoundData::build(inst);
  const auto opt = fsp::brute_force(inst);

  MtOptions options;
  options.threads = static_cast<std::size_t>(threads);
  const core::SolveResult result = steal_solve(inst, data, options);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.best_makespan, opt.makespan);
  ASSERT_FALSE(result.best_permutation.empty());
  EXPECT_EQ(fsp::makespan(inst, result.best_permutation), opt.makespan);
  ASSERT_TRUE(result.steal.has_value());
}

INSTANTIATE_TEST_SUITE_P(Sweep, StealEngineVsBruteForce,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(1, 2, 4, 8)));

TEST(StealEngine, RandomVictimOrderProvesTheSameOptimum) {
  const fsp::Instance inst = random_instance(9, 5, 99);
  const auto data = fsp::LowerBoundData::build(inst);
  const auto opt = fsp::brute_force(inst);
  for (const std::size_t batch : {1u, 2u, 8u}) {
    MtOptions options;
    options.threads = 6;
    options.victim_order = core::VictimOrder::kRandom;
    options.steal_batch = batch;
    const core::SolveResult result = steal_solve(inst, data, options);
    EXPECT_TRUE(result.proven_optimal) << "batch " << batch;
    EXPECT_EQ(result.best_makespan, opt.makespan) << "batch " << batch;
  }
}

TEST(StealEngine, RepeatedRunsAgreeOnTheOptimum) {
  const fsp::Instance inst = random_instance(9, 5, 7);
  const auto data = fsp::LowerBoundData::build(inst);
  MtOptions options;
  options.threads = 6;
  const auto first = steal_solve(inst, data, options).best_makespan;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(steal_solve(inst, data, options).best_makespan, first);
  }
}

TEST(StealEngine, NodeBudgetStopsEarly) {
  const fsp::Instance inst = random_instance(11, 5, 3);
  const auto data = fsp::LowerBoundData::build(inst);
  MtOptions options;
  options.threads = 4;
  options.node_budget = 20;
  const core::SolveResult result = steal_solve(inst, data, options);
  EXPECT_FALSE(result.proven_optimal);
  // Budget is a stop signal, not a hard cap: in-flight workers finish
  // their node, so allow a small overshoot.
  EXPECT_LE(result.stats.branched, 20u + options.threads);
}

TEST(StealEngine, SolveFromFrozenPoolMatchesSerialOutcome) {
  const fsp::Instance inst = random_instance(9, 4, 17);
  const auto data = fsp::LowerBoundData::build(inst);
  const core::FrozenPool frozen =
      core::freeze_pool(inst, data, 15, inst.total_work());

  core::SerialCpuEvaluator eval(inst, data);
  const core::SolveResult serial = core::explore_frozen(
      inst, data, frozen, eval, core::SelectionStrategy::kBestFirst, 1);

  MtOptions options;
  options.threads = 4;
  const core::SolveResult st =
      steal_solve_from(inst, data, frozen.nodes, frozen.incumbent, options);
  EXPECT_EQ(st.best_makespan, serial.best_makespan);
  EXPECT_TRUE(st.proven_optimal);
}

TEST(StealEngine, InitialUbEqualToOptimumStillTerminates) {
  const fsp::Instance inst = random_instance(7, 4, 21);
  const auto data = fsp::LowerBoundData::build(inst);
  const auto opt = fsp::brute_force(inst);
  MtOptions options;
  options.threads = 3;
  options.initial_ub = opt.makespan;
  const core::SolveResult result = steal_solve(inst, data, options);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.best_makespan, opt.makespan);
}

TEST(StealEngine, RejectsUnevaluatedInitialNodes) {
  const fsp::Instance inst = random_instance(6, 3, 1);
  const auto data = fsp::LowerBoundData::build(inst);
  std::vector<core::Subproblem> nodes;
  nodes.push_back(core::Subproblem::root(inst.jobs()));
  MtOptions options;
  EXPECT_THROW(steal_solve_from(inst, data, std::move(nodes), 1000, options),
               CheckFailure);
}

TEST(StealEngine, RejectsZeroStealBatch) {
  const fsp::Instance inst = random_instance(6, 3, 2);
  const auto data = fsp::LowerBoundData::build(inst);
  MtOptions options;
  options.steal_batch = 0;
  EXPECT_THROW(steal_solve(inst, data, options), CheckFailure);
}

TEST(StealEngine, StatsAccumulateAcrossWorkers) {
  const fsp::Instance inst = random_instance(8, 4, 12);
  const auto data = fsp::LowerBoundData::build(inst);
  MtOptions options;
  options.threads = 4;
  options.initial_ub = inst.total_work();  // force real branching
  const core::SolveResult result = steal_solve(inst, data, options);
  EXPECT_GT(result.stats.branched, 0u);
  EXPECT_GE(result.stats.generated, result.stats.branched);
  EXPECT_EQ(result.stats.generated,
            result.stats.evaluated + result.stats.leaves);
}

TEST(StealEngine, MultiWorkerRunsActuallySteal) {
  // With one root node and several workers, everyone but the starter must
  // acquire its first node by stealing; the merged stats must show it.
  // (The engine's start barrier makes this deterministic enough: thieves
  // exist before the root is branched, and the weak incumbent guarantees
  // a tree far larger than one worker clears before they probe.)
  const fsp::Instance inst = random_instance(11, 5, 5);
  const auto data = fsp::LowerBoundData::build(inst);
  MtOptions options;
  options.threads = 4;
  options.initial_ub = inst.total_work();  // big tree, plenty to steal
  const core::SolveResult result = steal_solve(inst, data, options);
  ASSERT_TRUE(result.steal.has_value());
  EXPECT_GT(result.steal->steal_attempts, 0u);
  EXPECT_GT(result.steal->nodes_stolen, 0u);
  EXPECT_GE(result.steal->steal_attempts, result.steal->steal_successes);
  EXPECT_GE(result.steal->nodes_stolen, result.steal->steal_successes);
}

TEST(StealEngine, SingleThreadStealsNothing) {
  const fsp::Instance inst = random_instance(8, 4, 9);
  const auto data = fsp::LowerBoundData::build(inst);
  MtOptions options;
  options.threads = 1;
  const core::SolveResult result = steal_solve(inst, data, options);
  EXPECT_TRUE(result.proven_optimal);
  ASSERT_TRUE(result.steal.has_value());
  EXPECT_EQ(result.steal->steal_attempts, 0u);
  EXPECT_EQ(result.steal->nodes_stolen, 0u);
}

}  // namespace
}  // namespace fsbb::mtbb
