#include "mtbb/mt_engine.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "core/protocol.h"
#include "fsp/brute_force.h"
#include "fsp/makespan.h"

namespace fsbb::mtbb {
namespace {

fsp::Instance random_instance(int jobs, int machines, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Matrix<fsp::Time> pt(static_cast<std::size_t>(jobs),
                       static_cast<std::size_t>(machines));
  for (auto& v : pt.flat()) v = static_cast<fsp::Time>(rng.next_in(1, 50));
  return fsp::Instance("rand", std::move(pt));
}

using MtCase = std::tuple<int, int>;  // (seed, threads)

class MtEngineVsBruteForce : public ::testing::TestWithParam<MtCase> {};

TEST_P(MtEngineVsBruteForce, FindsTheOptimum) {
  const auto [seed, threads] = GetParam();
  const fsp::Instance inst =
      random_instance(8, 4, static_cast<std::uint64_t>(seed));
  const auto data = fsp::LowerBoundData::build(inst);
  const auto opt = fsp::brute_force(inst);

  MtOptions options;
  options.threads = static_cast<std::size_t>(threads);
  const core::SolveResult result = mt_solve(inst, data, options);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.best_makespan, opt.makespan);
  ASSERT_FALSE(result.best_permutation.empty());
  EXPECT_EQ(fsp::makespan(inst, result.best_permutation), opt.makespan);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MtEngineVsBruteForce,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(1, 2, 4, 8)));

TEST(MtEngine, RepeatedRunsAgreeOnTheOptimum) {
  const fsp::Instance inst = random_instance(9, 5, 99);
  const auto data = fsp::LowerBoundData::build(inst);
  MtOptions options;
  options.threads = 6;
  const auto first = mt_solve(inst, data, options).best_makespan;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(mt_solve(inst, data, options).best_makespan, first);
  }
}

TEST(MtEngine, NodeBudgetStopsEarly) {
  const fsp::Instance inst = random_instance(11, 5, 3);
  const auto data = fsp::LowerBoundData::build(inst);
  MtOptions options;
  options.threads = 4;
  options.node_budget = 20;
  const core::SolveResult result = mt_solve(inst, data, options);
  EXPECT_FALSE(result.proven_optimal);
  // Budget is a stop signal, not a hard cap: in-flight workers finish
  // their node, so allow a small overshoot.
  EXPECT_LE(result.stats.branched, 20u + options.threads);
}

TEST(MtEngine, SolveFromFrozenPoolMatchesSerialOutcome) {
  const fsp::Instance inst = random_instance(9, 4, 17);
  const auto data = fsp::LowerBoundData::build(inst);
  const core::FrozenPool frozen =
      core::freeze_pool(inst, data, 15, inst.total_work());

  core::SerialCpuEvaluator eval(inst, data);
  const core::SolveResult serial = core::explore_frozen(
      inst, data, frozen, eval, core::SelectionStrategy::kBestFirst, 1);

  MtOptions options;
  options.threads = 4;
  const core::SolveResult mt =
      mt_solve_from(inst, data, frozen.nodes, frozen.incumbent, options);
  EXPECT_EQ(mt.best_makespan, serial.best_makespan);
  EXPECT_TRUE(mt.proven_optimal);
}

TEST(MtEngine, InitialUbEqualToOptimumStillTerminates) {
  const fsp::Instance inst = random_instance(7, 4, 21);
  const auto data = fsp::LowerBoundData::build(inst);
  const auto opt = fsp::brute_force(inst);
  MtOptions options;
  options.threads = 3;
  options.initial_ub = opt.makespan;
  const core::SolveResult result = mt_solve(inst, data, options);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.best_makespan, opt.makespan);
}

TEST(MtEngine, RejectsUnevaluatedInitialNodes) {
  const fsp::Instance inst = random_instance(6, 3, 1);
  const auto data = fsp::LowerBoundData::build(inst);
  std::vector<core::Subproblem> nodes;
  nodes.push_back(core::Subproblem::root(inst.jobs()));
  MtOptions options;
  EXPECT_THROW(mt_solve_from(inst, data, std::move(nodes), 1000, options),
               CheckFailure);
}

TEST(MtEngine, StatsAccumulateAcrossWorkers) {
  const fsp::Instance inst = random_instance(8, 4, 12);
  const auto data = fsp::LowerBoundData::build(inst);
  MtOptions options;
  options.threads = 4;
  options.initial_ub = inst.total_work();  // force real branching
  const core::SolveResult result = mt_solve(inst, data, options);
  EXPECT_GT(result.stats.branched, 0u);
  EXPECT_GE(result.stats.generated, result.stats.branched);
  EXPECT_EQ(result.stats.generated,
            result.stats.evaluated + result.stats.leaves);
}

}  // namespace
}  // namespace fsbb::mtbb
