#include "mtbb/multicore_model.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace fsbb::mtbb {
namespace {

const MulticoreModelParams kParams = MulticoreModelParams::i7_970_defaults();

TEST(MulticoreModel, ClockRatioMatchesThePaperMachines) {
  EXPECT_NEAR(kParams.clock_ratio(), 3.20 / 2.27, 1e-12);
}

TEST(MulticoreModel, TableIvBands200x20) {
  // Paper Table IV, 200x20 row: 4.03, 6.98, 8.76, 9.04, 9.32 for
  // 3, 5, 7, 9, 11 threads. The model must land in ±15% of each cell.
  const int threads[] = {3, 5, 7, 9, 11};
  const double paper[] = {4.03, 6.98, 8.76, 9.04, 9.32};
  for (int i = 0; i < 5; ++i) {
    const double s = multicore_speedup(kParams, threads[i], 200);
    EXPECT_NEAR(s, paper[i], paper[i] * 0.15)
        << "threads " << threads[i];
  }
}

TEST(MulticoreModel, TableIvBands20x20) {
  // Paper Table IV, 20x20 row: 4.43, 7.35, 9.22, 10.04, 10.85.
  const int threads[] = {3, 5, 7, 9, 11};
  const double paper[] = {4.43, 7.35, 9.22, 10.04, 10.85};
  for (int i = 0; i < 5; ++i) {
    const double s = multicore_speedup(kParams, threads[i], 20);
    EXPECT_NEAR(s, paper[i], paper[i] * 0.15)
        << "threads " << threads[i];
  }
}

TEST(MulticoreModel, SpeedupIsMonotoneInThreads) {
  for (const int jobs : {20, 50, 100, 200}) {
    double prev = 0;
    for (int t = 1; t <= 12; ++t) {
      const double s = multicore_speedup(kParams, t, jobs);
      EXPECT_GT(s, prev) << "threads " << t << " jobs " << jobs;
      prev = s;
    }
  }
}

TEST(MulticoreModel, SaturatesBeyondPhysicalCores) {
  // Marginal gain of an extra physical core vs. an extra hyper-thread.
  const double core_gain = multicore_speedup(kParams, 6, 200) -
                           multicore_speedup(kParams, 5, 200);
  const double smt_gain = multicore_speedup(kParams, 8, 200) -
                          multicore_speedup(kParams, 7, 200);
  EXPECT_GT(core_gain, 3 * smt_gain);
}

TEST(MulticoreModel, SmallerInstancesScaleSlightlyBetter) {
  for (const int t : {3, 7, 11}) {
    EXPECT_GT(multicore_speedup(kParams, t, 20),
              multicore_speedup(kParams, t, 200));
    EXPECT_GT(multicore_speedup(kParams, t, 50),
              multicore_speedup(kParams, t, 100));
  }
}

TEST(MulticoreModel, SuperlinearityComesOnlyFromTheClockRatio) {
  // Per-thread efficiency on the same machine never exceeds 1.
  for (int t = 1; t <= 12; ++t) {
    const double s = multicore_speedup(kParams, t, 200);
    EXPECT_LE(s / (kParams.clock_ratio() * t), 1.0 + 1e-9);
  }
}

TEST(MulticoreModel, GflopsColumnMatchesThePaper) {
  // Table IV header: 230.4, 384, 537.6, 691.2, 844.8 GFLOPS.
  EXPECT_NEAR(multicore_gflops(kParams, 3), 230.4, 1e-9);
  EXPECT_NEAR(multicore_gflops(kParams, 5), 384.0, 1e-9);
  EXPECT_NEAR(multicore_gflops(kParams, 7), 537.6, 1e-9);
  EXPECT_NEAR(multicore_gflops(kParams, 9), 691.2, 1e-9);
  EXPECT_NEAR(multicore_gflops(kParams, 11), 844.8, 1e-9);
}

TEST(MulticoreModel, IsoGflopsThreadCountForFigure5) {
  // The paper picks 7 threads as the ~500 GFLOPS match for the C2050.
  EXPECT_EQ(threads_for_gflops(kParams, 500.0), 7);
  EXPECT_EQ(threads_for_gflops(kParams, 76.8), 1);
  EXPECT_THROW(threads_for_gflops(kParams, 0), CheckFailure);
}

TEST(MulticoreModel, InvalidInputsThrow) {
  EXPECT_THROW(multicore_speedup(kParams, 0, 20), CheckFailure);
  EXPECT_THROW(multicore_speedup(kParams, 3, 0), CheckFailure);
}

}  // namespace
}  // namespace fsbb::mtbb
