// Bounded line reading: both primitives cap memory per request line,
// discard over-long lines (surfacing a marker instead of dying or
// buffering without limit), normalize CRLF, and keep the stream usable
// for the next well-behaved line.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "serve/line_io.h"

namespace fsbb::serve {
namespace {

std::vector<BoundedLineReader::Line> feed_str(BoundedLineReader& reader,
                                              const std::string& bytes) {
  return reader.feed(bytes.data(), bytes.size());
}

TEST(ServeLineIO, ReaderSplitsLinesAcrossArbitraryChunks) {
  BoundedLineReader reader(64);
  auto first = feed_str(reader, "{\"op\":\"st");
  EXPECT_TRUE(first.empty());
  EXPECT_EQ(reader.pending(), 9u);
  auto rest = feed_str(reader, "atus\"}\n{\"op\":\"metrics\"}\npartial");
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].text, "{\"op\":\"status\"}");
  EXPECT_EQ(rest[1].text, "{\"op\":\"metrics\"}");
  EXPECT_FALSE(rest[0].oversized);
  EXPECT_EQ(reader.pending(), 7u);  // "partial" still buffered
  auto tail = feed_str(reader, "\n");
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].text, "partial");
}

TEST(ServeLineIO, ReaderNormalizesCrlfAndDropsBlankLines) {
  BoundedLineReader reader(64);
  auto lines = feed_str(reader, "a\r\n\r\n\nb\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].text, "a");
  EXPECT_EQ(lines[1].text, "b");
}

TEST(ServeLineIO, ReaderDiscardsOversizedLineAndRecovers) {
  BoundedLineReader reader(8);
  // One oversized line streamed in several chunks: exactly one marker,
  // no accumulation, and the following line parses normally.
  auto a = feed_str(reader, "0123456789");
  ASSERT_EQ(a.size(), 1u);
  EXPECT_TRUE(a[0].oversized);
  auto b = feed_str(reader, "more-of-the-same");
  EXPECT_TRUE(b.empty());  // still the same discarded line
  EXPECT_EQ(reader.pending(), 0u);
  auto c = feed_str(reader, "tail\nok\n");
  ASSERT_EQ(c.size(), 1u);  // "tail" belongs to the discarded line
  EXPECT_EQ(c[0].text, "ok");
  EXPECT_FALSE(c[0].oversized);
}

TEST(ServeLineIO, ReaderEmitsOneMarkerPerOversizedLine) {
  BoundedLineReader reader(4);
  auto lines = feed_str(reader, "toolong1\nalsotoolong\nok\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_TRUE(lines[0].oversized);
  EXPECT_TRUE(lines[1].oversized);
  EXPECT_EQ(lines[2].text, "ok");
}

TEST(ServeLineIO, ReaderRejectsTinyCap) {
  EXPECT_THROW(BoundedLineReader(1), CheckFailure);
}

TEST(ServeLineIO, StreamReadsLinesWithinCap) {
  std::istringstream in("first\nsecond\n");
  std::string line;
  EXPECT_EQ(read_line_bounded(in, line, 32), LineStatus::kLine);
  EXPECT_EQ(line, "first");
  EXPECT_EQ(read_line_bounded(in, line, 32), LineStatus::kLine);
  EXPECT_EQ(line, "second");
  EXPECT_EQ(read_line_bounded(in, line, 32), LineStatus::kEof);
}

TEST(ServeLineIO, StreamSkipsOversizedLineAndContinues) {
  std::istringstream in(std::string(10000, 'x') + "\nok\n");
  std::string line;
  EXPECT_EQ(read_line_bounded(in, line, 64), LineStatus::kOversized);
  EXPECT_EQ(read_line_bounded(in, line, 64), LineStatus::kLine);
  EXPECT_EQ(line, "ok");
}

TEST(ServeLineIO, StreamHandlesLinesLongerThanInternalChunk) {
  // Longer than the 4096-byte getline chunk but within the cap: must
  // come back intact, not truncated or flagged.
  const std::string big(6000, 'y');
  std::istringstream in(big + "\nnext\n");
  std::string line;
  EXPECT_EQ(read_line_bounded(in, line, 1 << 20), LineStatus::kLine);
  EXPECT_EQ(line, big);
  EXPECT_EQ(read_line_bounded(in, line, 1 << 20), LineStatus::kLine);
  EXPECT_EQ(line, "next");
}

TEST(ServeLineIO, StreamReturnsFinalUnterminatedLine) {
  std::istringstream in("no-newline-at-eof");
  std::string line;
  EXPECT_EQ(read_line_bounded(in, line, 64), LineStatus::kLine);
  EXPECT_EQ(line, "no-newline-at-eof");
  EXPECT_EQ(read_line_bounded(in, line, 64), LineStatus::kEof);
}

}  // namespace
}  // namespace fsbb::serve
