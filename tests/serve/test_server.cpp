// serve::Client protocol behavior against a live Server: structured
// errors for malformed/oversized/unknown requests, explicit-instance
// submits, the metrics op, tenant/priority overrides, and close()
// canceling a peer's jobs while muting its sink.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "serve/server.h"

namespace fsbb::serve {
namespace {

/// Collects sink lines; wait_for() polls for the first line containing a
/// substring (events arrive from service worker threads).
struct LineCollector {
  std::mutex mu;
  std::vector<std::string> lines;

  Client::Sink sink() {
    return [this](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mu);
      lines.push_back(line);
    };
  }

  std::vector<std::string> snapshot() {
    const std::lock_guard<std::mutex> lock(mu);
    return lines;
  }

  std::string wait_for(const std::string& needle, int timeout_ms = 30000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      {
        const std::lock_guard<std::mutex> lock(mu);
        for (const std::string& line : lines) {
          if (line.find(needle) != std::string::npos) return line;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ADD_FAILURE() << "no line containing: " << needle;
    return "";
  }
};

ServerOptions small_options() {
  ServerOptions options;
  options.workers = 2;
  options.quiet_progress = true;
  return options;
}

TEST(ServeClient, MalformedAndUnknownRequestsAnswerErrors) {
  Server server(small_options());
  LineCollector out;
  auto client = std::make_shared<Client>(server, out.sink());

  EXPECT_EQ(client->handle_line("{not json"), Client::Action::kContinue);
  EXPECT_EQ(client->handle_line("{\"op\":\"fly\"}"), Client::Action::kContinue);
  const auto lines = out.snapshot();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"event\":\"error\""), std::string::npos);
  EXPECT_NE(lines[1].find("unknown op 'fly'"), std::string::npos);

  const JsonValue metrics =
      JsonValue::parse(server.metrics_json());
  EXPECT_EQ(metrics.find("errors")->int_or("malformed_requests", -1), 2);
}

TEST(ServeClient, SubmitValidationRejectsWithReasons) {
  Server server(small_options());
  LineCollector out;
  auto client = std::make_shared<Client>(server, out.sink());

  client->handle_line(R"({"op":"submit","cli":"--jobs 4"})");
  out.wait_for("non-empty \\\"id\\\"");
  client->handle_line(R"({"op":"submit","id":"a"})");
  out.wait_for("\\\"cli\\\" string or array");
  client->handle_line(
      R"({"op":"submit","id":"a","cli":"--jobs 4","priority":"urgent"})");
  out.wait_for("unknown priority");
  client->handle_line(
      R"({"op":"submit","id":"a","cli":"--jobs 4","cache":"always"})");
  out.wait_for("use | refresh | bypass");
  client->handle_line(
      R"({"op":"submit","id":"a","cli":"--jobs 4 --machines 3 --count 2"})");
  out.wait_for("exactly one instance per job");
  // None of these reached the service or charged a quota.
  EXPECT_EQ(server.service().jobs_submitted(), 0u);
  EXPECT_EQ(server.admission().active_jobs("anonymous"), 0u);
}

TEST(ServeClient, OversizedLineAnswersStructuredError) {
  Server server(small_options());
  LineCollector out;
  auto client = std::make_shared<Client>(server, out.sink());
  client->handle_oversized_line();
  const std::string line = out.wait_for("\"event\":\"error\"");
  EXPECT_NE(line.find("exceeds"), std::string::npos);
  const JsonValue metrics = JsonValue::parse(server.metrics_json());
  EXPECT_EQ(metrics.find("errors")->int_or("oversized_lines", -1), 1);
}

TEST(ServeClient, ExplicitInstanceSubmitSolvesAndEchoesTenant) {
  Server server(small_options());
  LineCollector out;
  auto client = std::make_shared<Client>(server, out.sink());
  client->handle_line(
      R"({"op":"submit","id":"w1","tenant":"acme","priority":"high",)"
      R"("cli":"--backend cpu-serial",)"
      R"("instance":{"name":"wire-3x2","ptm":[[3,2],[1,4],[2,2]]}})");
  const std::string accepted = out.wait_for("\"event\":\"accepted\"");
  EXPECT_NE(accepted.find("\"tenant\":\"acme\""), std::string::npos);
  EXPECT_NE(accepted.find("\"priority\":\"high\""), std::string::npos);
  EXPECT_NE(accepted.find("\"cache\":\"miss\""), std::string::npos);
  const JsonValue result =
      JsonValue::parse(out.wait_for("\"event\":\"result\""));
  EXPECT_TRUE(result.bool_or("ok", false));
  const JsonValue* report = result.find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->find("instance")->string_or("name", ""), "wire-3x2");
  // The report echoes who asked — billing-grade attribution.
  EXPECT_EQ(report->find("config")->string_or("tenant", ""), "acme");
  client->drain();
}

TEST(ServeClient, MalformedExplicitInstanceRejects) {
  Server server(small_options());
  LineCollector out;
  auto client = std::make_shared<Client>(server, out.sink());
  client->handle_line(
      R"({"op":"submit","id":"w2","cli":"","instance":{"name":"bad"}})");
  out.wait_for("\\\"ptm\\\" array");
  client->handle_line(
      R"({"op":"submit","id":"w3","cli":"","instance":{"ptm":[[1,2],[3]]}})");
  out.wait_for("same machine count");
}

TEST(ServeClient, MetricsOpReturnsFullRegistry) {
  Server server(small_options());
  LineCollector out;
  auto client = std::make_shared<Client>(server, out.sink());
  client->handle_line(R"({"op":"metrics"})");
  const JsonValue event =
      JsonValue::parse(out.wait_for("\"event\":\"metrics\""));
  const JsonValue* data = event.find("data");
  ASSERT_NE(data, nullptr);
  for (const char* section : {"queue", "admission", "cache", "latency_ms",
                              "backends", "connections", "errors"}) {
    EXPECT_NE(data->find(section), nullptr) << section;
  }
}

TEST(ServeClient, CloseCancelsJobsAndMutesTheSink) {
  Server server(small_options());
  LineCollector out;
  auto client = std::make_shared<Client>(server, out.sink());
  // A search that cannot finish fast: weak explicit upper bound.
  client->handle_line(
      R"({"op":"submit","id":"long","tenant":"t",)"
      R"("cli":"--jobs 14 --machines 10 --seed 777 --ub 1000000"})");
  out.wait_for("\"event\":\"accepted\"");
  EXPECT_EQ(client->jobs_open(), 1u);

  client->close();
  const std::size_t muted_at = out.snapshot().size();
  client->drain();  // job reaches a terminal state (canceled)
  // The quota was released by the completion callback even though the
  // peer is gone, and nothing was emitted after close().
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.admission().active_jobs("t") != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server.admission().active_jobs("t"), 0u);
  EXPECT_EQ(out.snapshot().size(), muted_at);
}

}  // namespace
}  // namespace fsbb::serve
