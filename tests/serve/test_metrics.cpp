// serve::Metrics: counters aggregate, latency quantiles are bucket-exact,
// and the JSON export carries every section the `metrics` request (and
// the CI smoke test) reads.
#include <gtest/gtest.h>

#include "common/json.h"
#include "serve/metrics.h"

namespace fsbb::serve {
namespace {

TEST(ServeMetrics, QuantilesFromGeometricBuckets) {
  Metrics metrics;
  EXPECT_EQ(metrics.latency_quantile_ms(0.5), 0);
  // 9 fast jobs and one slow one: p50 stays near the fast cluster, p99
  // lands in the slow bucket (clamped to the observed max).
  for (int i = 0; i < 9; ++i) {
    metrics.record_completion("cpu-serial", true, core::StopReason::kOptimal,
                              10.0, 100);
  }
  metrics.record_completion("cpu-serial", true, core::StopReason::kOptimal,
                            5000.0, 100);
  const double p50 = metrics.p50_latency_ms();
  const double p99 = metrics.latency_quantile_ms(0.99);
  EXPECT_GT(p50, 5.0);
  EXPECT_LT(p50, 20.0);
  EXPECT_GT(p99, 1000.0);
  EXPECT_LE(p99, 5000.0);
  EXPECT_EQ(metrics.completions(), 10u);
}

TEST(ServeMetrics, CountersShowUpInJson) {
  Metrics metrics;
  metrics.record_submit_accepted();
  metrics.record_submit_accepted();
  metrics.record_admission_reject("tenant-quota");
  metrics.record_admission_reject("queue-full");
  metrics.record_admission_reject("queue-full");
  metrics.record_cache_exact_hit();
  metrics.record_cache_warm_start();
  metrics.record_cache_miss();
  metrics.record_cache_insert();
  metrics.record_connection_opened();
  metrics.record_connection_rejected();
  metrics.record_idle_timeout();
  metrics.record_protocol_error();
  metrics.record_oversized_line();
  metrics.record_completion("gpu-sim", true, core::StopReason::kBudget, 12.5,
                            400);
  metrics.record_completion("gpu-sim", false, core::StopReason::kCanceled,
                            1.0, 0);

  api::QueueSnapshot queue;
  queue.queued = 3;
  queue.running = 2;
  const JsonValue root = JsonValue::parse(metrics.to_json(queue, 7));

  const JsonValue* admission = root.find("admission");
  ASSERT_NE(admission, nullptr);
  EXPECT_EQ(admission->int_or("accepted", -1), 2);
  EXPECT_EQ(admission->find("rejected")->int_or("tenant-quota", -1), 1);
  EXPECT_EQ(admission->find("rejected")->int_or("queue-full", -1), 2);

  const JsonValue* cache = root.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->int_or("exact_hits", -1), 1);
  EXPECT_EQ(cache->int_or("warm_starts", -1), 1);
  EXPECT_EQ(cache->int_or("misses", -1), 1);
  EXPECT_EQ(cache->int_or("insertions", -1), 1);
  EXPECT_EQ(cache->int_or("entries", -1), 7);

  EXPECT_EQ(root.find("queue")->int_or("queued", -1), 3);
  EXPECT_EQ(root.find("latency_ms")->int_or("count", -1), 2);

  const JsonValue* backend = root.find("backends")->find("gpu-sim");
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->int_or("jobs", -1), 2);
  EXPECT_EQ(backend->int_or("failed", -1), 1);
  EXPECT_EQ(backend->int_or("nodes", -1), 400);

  EXPECT_EQ(root.find("stop_reasons")->int_or("budget", -1), 1);
  const JsonValue* connections = root.find("connections");
  EXPECT_EQ(connections->int_or("opened", -1), 1);
  EXPECT_EQ(connections->int_or("rejected", -1), 1);
  EXPECT_EQ(connections->int_or("idle_timeouts", -1), 1);
  const JsonValue* errors = root.find("errors");
  EXPECT_EQ(errors->int_or("malformed_requests", -1), 1);
  EXPECT_EQ(errors->int_or("oversized_lines", -1), 1);

  EXPECT_EQ(metrics.admission_rejects(), 3u);
  EXPECT_EQ(metrics.cache_exact_hits(), 1u);
  EXPECT_EQ(metrics.cache_warm_starts(), 1u);
}

TEST(ServeMetrics, LogLineIsCompactAndPopulated) {
  Metrics metrics;
  metrics.record_submit_accepted();
  metrics.record_completion("cpu-serial", true, core::StopReason::kOptimal,
                            3.0, 10);
  api::QueueSnapshot queue;
  queue.queued = 1;
  const std::string line = metrics.log_line(queue, 4);
  EXPECT_NE(line.find("[serve]"), std::string::npos);
  EXPECT_NE(line.find("queued=1"), std::string::npos);
  EXPECT_NE(line.find("accepted=1"), std::string::npos);
  EXPECT_NE(line.find("p50="), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace fsbb::serve
