// Admission control: per-tenant concurrency quotas, priority-scaled
// queue shedding, structured rejections with retry-after hints, and the
// admit/release pairing contract.
#include <gtest/gtest.h>

#include "common/check.h"
#include "serve/admission.h"

namespace fsbb::serve {
namespace {

TEST(ServeAdmission, PriorityParsesAndRoundTrips) {
  EXPECT_EQ(parse_priority("high"), Priority::kHigh);
  EXPECT_EQ(parse_priority("normal"), Priority::kNormal);
  EXPECT_EQ(parse_priority("low"), Priority::kLow);
  EXPECT_STREQ(to_string(Priority::kLow), "low");
  EXPECT_THROW(parse_priority("urgent"), CheckFailure);
}

TEST(ServeAdmission, TenantQuotaEnforcedPerTenant) {
  AdmissionController admission({.max_tenant_jobs = 2, .max_queue_depth = 0});
  EXPECT_TRUE(admission.try_admit("a", Priority::kNormal, 0, 0).admitted);
  EXPECT_TRUE(admission.try_admit("a", Priority::kNormal, 0, 0).admitted);
  const AdmissionDecision third =
      admission.try_admit("a", Priority::kNormal, 0, 0);
  EXPECT_FALSE(third.admitted);
  EXPECT_EQ(third.reason, "tenant-quota");
  EXPECT_GE(third.retry_after_ms, 100u);
  EXPECT_NE(third.detail.find("'a'"), std::string::npos);
  // Another tenant is unaffected by a's saturation.
  EXPECT_TRUE(admission.try_admit("b", Priority::kNormal, 0, 0).admitted);
  EXPECT_EQ(admission.active_jobs("a"), 2u);
  EXPECT_EQ(admission.active_jobs("b"), 1u);
  // Releasing one of a's jobs reopens the quota.
  admission.release("a");
  EXPECT_TRUE(admission.try_admit("a", Priority::kNormal, 0, 0).admitted);
}

TEST(ServeAdmission, RejectionDoesNotChargeTheTenant) {
  AdmissionController admission({.max_tenant_jobs = 1, .max_queue_depth = 0});
  EXPECT_TRUE(admission.try_admit("a", Priority::kNormal, 0, 0).admitted);
  EXPECT_FALSE(admission.try_admit("a", Priority::kNormal, 0, 0).admitted);
  EXPECT_EQ(admission.active_jobs("a"), 1u);
  admission.release("a");
  EXPECT_EQ(admission.active_jobs("a"), 0u);
}

TEST(ServeAdmission, QueueDepthShedsByPriorityClass) {
  AdmissionController admission({.max_tenant_jobs = 0,
                                 .max_queue_depth = 100});
  // Low priority sheds at 50% depth, normal at 85%, high at 100%.
  EXPECT_TRUE(admission.try_admit("t", Priority::kLow, 49, 0).admitted);
  const AdmissionDecision low = admission.try_admit("t", Priority::kLow, 50, 0);
  EXPECT_FALSE(low.admitted);
  EXPECT_EQ(low.reason, "queue-full");

  EXPECT_TRUE(admission.try_admit("t", Priority::kNormal, 84, 0).admitted);
  EXPECT_FALSE(admission.try_admit("t", Priority::kNormal, 85, 0).admitted);

  EXPECT_TRUE(admission.try_admit("t", Priority::kHigh, 99, 0).admitted);
  EXPECT_FALSE(admission.try_admit("t", Priority::kHigh, 100, 0).admitted);
}

TEST(ServeAdmission, RetryHintScalesWithObservedLatencyAndBacklog) {
  AdmissionController admission({.max_tenant_jobs = 0, .max_queue_depth = 10});
  // 200ms median jobs, 10 deep: the hint suggests about one drained
  // queue, capped at a minute.
  const AdmissionDecision d =
      admission.try_admit("t", Priority::kHigh, 10, 200.0);
  ASSERT_FALSE(d.admitted);
  EXPECT_EQ(d.retry_after_ms, 2000u);
  const AdmissionDecision capped =
      admission.try_admit("t", Priority::kHigh, 10, 1e9);
  EXPECT_EQ(capped.retry_after_ms, 60000u);
}

TEST(ServeAdmission, ZeroQuotasMeanUnlimited) {
  AdmissionController admission({.max_tenant_jobs = 0, .max_queue_depth = 0});
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(
        admission.try_admit("t", Priority::kLow, 1000000, 0).admitted);
  }
}

TEST(ServeAdmission, UnmatchedReleaseThrows) {
  AdmissionController admission({.max_tenant_jobs = 2, .max_queue_depth = 0});
  EXPECT_THROW(admission.release("ghost"), CheckFailure);
  ASSERT_TRUE(admission.try_admit("a", Priority::kNormal, 0, 0).admitted);
  admission.release("a");
  EXPECT_THROW(admission.release("a"), CheckFailure);
}

}  // namespace
}  // namespace fsbb::serve
