// Result cache: canonical-form keying merges relabeled/reversed twins
// into one entry, hits translate schedules into the requester's labels
// and re-verify them, better results replace worse ones, and the LRU
// bound holds.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "fsp/makespan.h"
#include "fsp/taillard.h"
#include "serve/result_cache.h"

namespace fsbb::serve {
namespace {

fsp::Instance base_instance(std::int32_t seed,
                            const std::string& name = "rc-base") {
  return fsp::make_taillard_instance(9, 5, seed, name);
}

/// The same problem with relabeled jobs and (optionally) the machine
/// axis reversed — the two symmetries the canonical digest quotients by.
fsp::Instance transformed(const fsp::Instance& inst,
                          const std::vector<fsp::JobId>& perm,
                          bool reverse_machines, const std::string& name) {
  const int n = inst.jobs();
  const int m = inst.machines();
  Matrix<fsp::Time> pt(static_cast<std::size_t>(n),
                       static_cast<std::size_t>(m));
  for (int j = 0; j < n; ++j) {
    for (int k = 0; k < m; ++k) {
      pt(static_cast<std::size_t>(j), static_cast<std::size_t>(k)) =
          inst.pt(perm[static_cast<std::size_t>(j)],
                  reverse_machines ? m - 1 - k : k);
    }
  }
  return fsp::Instance(name, std::move(pt));
}

/// Inserts the identity schedule of `inst` (with its true makespan).
fsp::Time insert_identity(ResultCache& cache, const fsp::Instance& inst,
                          bool proven) {
  const fsp::CanonicalForm form = fsp::CanonicalForm::of(inst);
  const std::vector<fsp::JobId> identity =
      fsp::identity_permutation(inst.jobs());
  const fsp::Time ms = fsp::makespan(inst, identity);
  EXPECT_TRUE(cache.insert(inst, form, ms, identity, proven));
  return ms;
}

TEST(ServeResultCache, MissOnEmptyAndHitAfterInsert) {
  ResultCache cache({.capacity = 4});
  const fsp::Instance inst = base_instance(11);
  const fsp::CanonicalForm form = fsp::CanonicalForm::of(inst);
  EXPECT_FALSE(cache.lookup(inst, form).has_value());
  const fsp::Time ms = insert_identity(cache, inst, true);
  const auto hit = cache.lookup(inst, form);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->makespan, ms);
  EXPECT_TRUE(hit->proven_optimal);
  EXPECT_EQ(hit->source_instance, "rc-base");
  EXPECT_EQ(fsp::makespan(inst, hit->permutation), ms);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ServeResultCache, RelabeledTwinHitsTheSameEntryWithTranslatedSchedule) {
  ResultCache cache({.capacity = 4});
  const fsp::Instance a = base_instance(22, "twin-a");
  insert_identity(cache, a, false);

  // Same problem, jobs listed in a different order (and reversed
  // machines): one cache entry serves both, and the returned schedule is
  // valid *in the twin's labels* with the same makespan.
  const std::vector<fsp::JobId> relabel = {4, 7, 1, 0, 8, 3, 6, 2, 5};
  const fsp::Instance b = transformed(a, relabel, true, "twin-b");
  const fsp::CanonicalForm form_b = fsp::CanonicalForm::of(b);
  const auto hit = cache.lookup(b, form_b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(fsp::is_valid_permutation(b, hit->permutation));
  EXPECT_EQ(fsp::makespan(b, hit->permutation), hit->makespan);
  EXPECT_EQ(hit->source_instance, "twin-a");
  EXPECT_EQ(cache.size(), 1u);  // no second entry for the twin
}

TEST(ServeResultCache, LowerMakespanReplacesAndProvenUpgrades) {
  ResultCache cache({.capacity = 4});
  const fsp::Instance inst = base_instance(33);
  const fsp::CanonicalForm form = fsp::CanonicalForm::of(inst);
  const std::vector<fsp::JobId> identity =
      fsp::identity_permutation(inst.jobs());
  const fsp::Time identity_ms = fsp::makespan(inst, identity);

  // A worse schedule: identity reversed (whatever its makespan, inserting
  // the identity at a strictly lower value afterwards must win; first
  // find any ordering pair where the makespans differ).
  std::vector<fsp::JobId> worse = identity;
  std::reverse(worse.begin(), worse.end());
  const fsp::Time worse_ms = fsp::makespan(inst, worse);
  const auto& better_perm = worse_ms < identity_ms ? worse : identity;
  const auto& worse_perm = worse_ms < identity_ms ? identity : worse;
  const fsp::Time better_ms = std::min(worse_ms, identity_ms);
  const fsp::Time worse_val = std::max(worse_ms, identity_ms);
  ASSERT_NE(better_ms, worse_val) << "pick a seed with distinct makespans";

  ASSERT_TRUE(cache.insert(inst, form, worse_val, worse_perm, false));
  // Worse (higher) result does not replace.
  EXPECT_FALSE(cache.insert(inst, form, worse_val, worse_perm, false));
  // Strictly better one does.
  EXPECT_TRUE(cache.insert(inst, form, better_ms, better_perm, false));
  EXPECT_EQ(cache.lookup(inst, form)->makespan, better_ms);
  EXPECT_FALSE(cache.lookup(inst, form)->proven_optimal);
  // Equal makespan + proven optimality upgrades the claim.
  EXPECT_TRUE(cache.insert(inst, form, better_ms, better_perm, true));
  EXPECT_TRUE(cache.lookup(inst, form)->proven_optimal);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ServeResultCache, EmptyScheduleIsIgnored) {
  ResultCache cache({.capacity = 4});
  const fsp::Instance inst = base_instance(44);
  const fsp::CanonicalForm form = fsp::CanonicalForm::of(inst);
  EXPECT_FALSE(cache.insert(inst, form, 123, {}, false));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ServeResultCache, LruEvictsOldestBeyondCapacity) {
  ResultCache cache({.capacity = 2});
  const fsp::Instance a = base_instance(1, "lru-a");
  const fsp::Instance b = base_instance(2, "lru-b");
  const fsp::Instance c = base_instance(3, "lru-c");
  insert_identity(cache, a, true);
  insert_identity(cache, b, true);
  // Touch a so b becomes the least recently used, then insert c.
  EXPECT_TRUE(cache.lookup(a, fsp::CanonicalForm::of(a)).has_value());
  insert_identity(cache, c, true);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(a, fsp::CanonicalForm::of(a)).has_value());
  EXPECT_FALSE(cache.lookup(b, fsp::CanonicalForm::of(b)).has_value());
  EXPECT_TRUE(cache.lookup(c, fsp::CanonicalForm::of(c)).has_value());
}

}  // namespace
}  // namespace fsbb::serve
