// serve::Listener over real loopback sockets: ephemeral binding,
// concurrent sessions sharing one cache and quota table, oversized-line
// errors, idle timeouts, max-connection rejection, and — the teardown
// property the serving layer exists for — a client killed mid-solve
// leaves the server healthy, with its job canceled and drained.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "common/json.h"
#include "serve/listener.h"
#include "serve/server.h"

namespace fsbb::serve {
namespace {

/// Minimal blocking NDJSON test client over one loopback connection.
class TestConn {
 public:
  explicit TestConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0)
        << std::strerror(errno);
  }

  ~TestConn() { close(); }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void send_line(const std::string& line) {
    const std::string framed = line + "\n";
    ASSERT_EQ(::send(fd_, framed.data(), framed.size(), 0),
              static_cast<ssize_t>(framed.size()));
  }

  /// Next complete line; "" on timeout or peer close.
  std::string read_line(int timeout_ms = 30000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return "";
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, static_cast<int>(left.count())) <= 0) return "";
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return "";  // closed
      buffer_.append(buf, static_cast<std::size_t>(n));
    }
  }

  /// Reads until a line contains `needle` (skipping progress etc.).
  std::string read_until(const std::string& needle, int timeout_ms = 30000) {
    for (;;) {
      const std::string line = read_line(timeout_ms);
      if (line.empty()) {
        ADD_FAILURE() << "connection closed waiting for: " << needle;
        return "";
      }
      if (line.find(needle) != std::string::npos) return line;
    }
  }

  /// True once the server closed this connection (recv returns 0).
  bool wait_closed(int timeout_ms = 30000) {
    for (;;) {
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Server + listener + serve() thread, torn down on destruction.
struct Harness {
  explicit Harness(ServerOptions options)
      : server(options), listener(server, {}) {
    thread = std::thread([this] { listener.serve(); });
  }

  ~Harness() {
    listener.request_stop();
    thread.join();
  }

  Server server;
  Listener listener;
  std::thread thread;
};

ServerOptions quiet_options() {
  ServerOptions options;
  options.workers = 2;
  options.quiet_progress = true;
  return options;
}

TEST(ServeListener, EphemeralPortSolvesAndServesMetrics) {
  Harness h(quiet_options());
  ASSERT_GT(h.listener.port(), 0);

  TestConn conn(h.listener.port());
  conn.send_line(
      R"({"op":"submit","id":"s1","tenant":"net",)"
      R"("cli":"--jobs 8 --machines 4 --seed 5 --backend cpu-serial"})");
  conn.read_until("\"event\":\"accepted\"");
  const JsonValue result =
      JsonValue::parse(conn.read_until("\"event\":\"result\""));
  EXPECT_TRUE(result.bool_or("ok", false));
  EXPECT_EQ(result.string_or("stop_reason", ""), "optimal");

  conn.send_line(R"({"op":"metrics"})");
  const JsonValue metrics =
      JsonValue::parse(conn.read_until("\"event\":\"metrics\""));
  EXPECT_EQ(metrics.find("data")->find("admission")->int_or("accepted", -1),
            1);
  EXPECT_GE(metrics.find("data")->find("connections")->int_or("opened", -1),
            1);
}

TEST(ServeListener, SessionsShareTheResultCache) {
  Harness h(quiet_options());
  {
    TestConn first(h.listener.port());
    first.send_line(
        R"({"op":"submit","id":"a","cli":"--jobs 8 --machines 4 --seed 9"})");
    first.read_until("\"event\":\"result\"");
  }
  // A different connection asking for the same instance is served from
  // the shared cache without a solve.
  TestConn second(h.listener.port());
  second.send_line(
      R"({"op":"submit","id":"b","cli":"--jobs 8 --machines 4 --seed 9"})");
  EXPECT_NE(second.read_until("\"event\":\"accepted\"").find(
                "\"cache\":\"exact\""),
            std::string::npos);
  const std::string result = second.read_until("\"event\":\"result\"");
  EXPECT_NE(result.find("\"backend\":\"cache\""), std::string::npos);
  EXPECT_EQ(h.server.metrics().cache_exact_hits(), 1u);
}

TEST(ServeListener, OversizedLineAnswersErrorAndSessionSurvives) {
  ServerOptions options = quiet_options();
  options.max_line_bytes = 128;
  Harness h(options);
  TestConn conn(h.listener.port());
  conn.send_line(std::string(500, 'x'));
  EXPECT_NE(conn.read_until("\"event\":\"error\"").find("exceeds"),
            std::string::npos);
  // The connection still works afterwards.
  conn.send_line(R"({"op":"metrics"})");
  const JsonValue metrics =
      JsonValue::parse(conn.read_until("\"event\":\"metrics\""));
  EXPECT_EQ(
      metrics.find("data")->find("errors")->int_or("oversized_lines", -1), 1);
}

TEST(ServeListener, ShutdownOpClosesOnlyThatSessionByDefault) {
  Harness h(quiet_options());
  TestConn doomed(h.listener.port());
  doomed.send_line(R"({"op":"shutdown"})");
  EXPECT_TRUE(doomed.wait_closed());
  // The listener itself is still accepting and serving.
  EXPECT_FALSE(h.listener.stop_requested());
  TestConn next(h.listener.port());
  next.send_line(R"({"op":"metrics"})");
  EXPECT_FALSE(next.read_until("\"event\":\"metrics\"").empty());
}

TEST(ServeListener, RemoteShutdownStopsTheWholeServerWhenAllowed) {
  ServerOptions options = quiet_options();
  options.allow_remote_shutdown = true;
  Harness h(options);
  TestConn conn(h.listener.port());
  conn.send_line(R"({"op":"shutdown"})");
  EXPECT_TRUE(conn.wait_closed());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!h.listener.stop_requested() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(h.listener.stop_requested());
}

TEST(ServeListener, IdleConnectionTimesOut) {
  ServerOptions options = quiet_options();
  options.idle_timeout_ms = 300;
  Harness h(options);
  TestConn conn(h.listener.port());
  // Say nothing: the server notices, answers, and hangs up.
  EXPECT_NE(conn.read_until("idle timeout", 30000), "");
  EXPECT_TRUE(conn.wait_closed());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (h.listener.active_sessions() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(h.listener.active_sessions(), 0u);
}

TEST(ServeListener, ConnectionsBeyondTheCapAreTurnedAway) {
  ServerOptions options = quiet_options();
  options.max_connections = 1;
  Harness h(options);
  TestConn kept(h.listener.port());
  // Round-trip once so the first session is registered before the second
  // connection races it.
  kept.send_line(R"({"op":"metrics"})");
  kept.read_until("\"event\":\"metrics\"");

  TestConn extra(h.listener.port());
  EXPECT_NE(extra.read_until("max connections").find("retry later"),
            std::string::npos);
  EXPECT_TRUE(extra.wait_closed());
  // The first connection is unaffected.
  kept.send_line(R"({"op":"metrics"})");
  EXPECT_FALSE(kept.read_until("\"event\":\"metrics\"").empty());
}

TEST(ServeListener, ClientKilledMidSolveLeavesServerHealthy) {
  Harness h(quiet_options());
  auto doomed = std::make_unique<TestConn>(h.listener.port());
  // A search too big to finish before the disconnect lands (weak
  // explicit upper bound suppresses the NEH seed).
  doomed->send_line(
      R"({"op":"submit","id":"d","tenant":"gone",)"
      R"("cli":"--jobs 14 --machines 10 --seed 777 --ub 1000000"})");
  doomed->read_until("\"event\":\"accepted\"");
  ASSERT_EQ(h.server.service().snapshot().running +
                h.server.service().snapshot().queued,
            1u);
  doomed.reset();  // abrupt disconnect, no shutdown op

  // The session tears down, cancels the orphan job, and the service
  // drains — nothing leaks, nothing hangs.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while ((h.server.service().jobs_active() != 0 ||
          h.listener.active_sessions() != 0 ||
          h.server.admission().active_jobs("gone") != 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(h.server.service().jobs_active(), 0u);
  EXPECT_EQ(h.listener.active_sessions(), 0u);
  EXPECT_EQ(h.server.admission().active_jobs("gone"), 0u);

  // And the server still serves: a fresh connection solves to optimality.
  TestConn next(h.listener.port());
  next.send_line(
      R"({"op":"submit","id":"n","cli":"--jobs 8 --machines 4 --seed 6"})");
  const JsonValue result =
      JsonValue::parse(next.read_until("\"event\":\"result\""));
  EXPECT_TRUE(result.bool_or("ok", false));
  EXPECT_EQ(result.string_or("stop_reason", ""), "optimal");
}

}  // namespace
}  // namespace fsbb::serve
