// NDJSON transport line handling: CRLF stripping, blank-line skipping and
// the incremental LineReader the coordinator runs per worker stdout.
#include "dist/transport.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fsbb::dist {
namespace {

TEST(DistTransport, NormalizeStripsOneTrailingCarriageReturn) {
  std::string line = "{\"op\":\"status\"}\r";
  EXPECT_TRUE(normalize_transport_line(line));
  EXPECT_EQ(line, "{\"op\":\"status\"}");

  // Only the CRLF framing '\r' goes; an embedded one is payload.
  line = "a\rb\r";
  EXPECT_TRUE(normalize_transport_line(line));
  EXPECT_EQ(line, "a\rb");
}

TEST(DistTransport, NormalizeRejectsBlankLines) {
  for (const char* blank : {"", "\r", " ", "   ", "\t", " \t ", " \t\r"}) {
    std::string line = blank;
    EXPECT_FALSE(normalize_transport_line(line)) << '"' << blank << '"';
  }
}

TEST(DistTransport, NormalizeKeepsPayloadLinesIntact) {
  std::string line = "{}";
  EXPECT_TRUE(normalize_transport_line(line));
  EXPECT_EQ(line, "{}");

  // Leading/inner whitespace is the JSON parser's business, not ours.
  line = "  {\"a\": 1}";
  EXPECT_TRUE(normalize_transport_line(line));
  EXPECT_EQ(line, "  {\"a\": 1}");
}

TEST(DistTransport, LineReaderReassemblesSplitChunks) {
  LineReader reader;
  const std::string stream = "{\"event\":\"ready\"}\n{\"event\":\"done\"}\n";
  std::vector<std::string> lines;
  // Feed one byte at a time — the worst poll(2) can do.
  for (const char c : stream) {
    for (std::string& line : reader.feed(&c, 1)) {
      lines.push_back(std::move(line));
    }
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"event\":\"ready\"}");
  EXPECT_EQ(lines[1], "{\"event\":\"done\"}");
  EXPECT_EQ(reader.pending(), 0u);
}

TEST(DistTransport, LineReaderDropsBlankAndNormalizesCrlf) {
  LineReader reader;
  const std::string stream = "a\r\n\r\n\n  \nb\n";
  const std::vector<std::string> lines =
      reader.feed(stream.data(), stream.size());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
}

TEST(DistTransport, LineReaderBuffersUnterminatedTail) {
  LineReader reader;
  const std::string head = "{\"half\":";
  EXPECT_TRUE(reader.feed(head.data(), head.size()).empty());
  EXPECT_EQ(reader.pending(), head.size());

  const std::string tail = "1}\n";
  const std::vector<std::string> lines = reader.feed(tail.data(), tail.size());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "{\"half\":1}");
  EXPECT_EQ(reader.pending(), 0u);
}

}  // namespace
}  // namespace fsbb::dist
