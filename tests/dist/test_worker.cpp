// The distributed worker loop (fsbb_serve --worker) driven in-process over
// real pipes: protocol hygiene (ready/error/rejected events, CRLF and blank
// lines), a full shard solve to a done event, checkpoint emission and exact
// resume from a checkpointed sub-pool, and incumbent injection.
//
// Pipes rather than stringstreams because the worker cancels its in-flight
// shard on stdin EOF — a pre-filled stringstream would race the solve. The
// GNU stdio_filebuf extension wraps the fds; the codebase is POSIX-only
// (dist/process.h) so this is no new portability loss.
#include "dist/worker.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <ext/stdio_filebuf.h>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/solver.h"
#include "api/solver_config.h"
#include "common/json.h"
#include "core/pool_io.h"
#include "dist/frontier.h"
#include "fsp/lb_data.h"
#include "fsp/makespan.h"

namespace fsbb::dist {
namespace {

/// One in-process worker on its own thread, with line-oriented request and
/// event streams for the test to drive.
class WorkerHarness {
 public:
  WorkerHarness() {
    int to_worker[2], from_worker[2];
    EXPECT_EQ(::pipe(to_worker), 0);
    EXPECT_EQ(::pipe(from_worker), 0);
    worker_in_ = std::make_unique<__gnu_cxx::stdio_filebuf<char>>(
        to_worker[0], std::ios::in);
    worker_out_ = std::make_unique<__gnu_cxx::stdio_filebuf<char>>(
        from_worker[1], std::ios::out);
    requests_buf_ = std::make_unique<__gnu_cxx::stdio_filebuf<char>>(
        to_worker[1], std::ios::out);
    events_buf_ = std::make_unique<__gnu_cxx::stdio_filebuf<char>>(
        from_worker[0], std::ios::in);
    in_ = std::make_unique<std::istream>(worker_in_.get());
    out_ = std::make_unique<std::ostream>(worker_out_.get());
    requests_ = std::make_unique<std::ostream>(requests_buf_.get());
    events_ = std::make_unique<std::istream>(events_buf_.get());
    thread_ = std::thread([this] { exit_code_ = run_worker(*in_, *out_); });
  }

  ~WorkerHarness() {
    if (thread_.joinable()) shutdown();
  }

  void send(const std::string& line) { *requests_ << line << "\n" << std::flush; }

  /// Blocks until the worker emits its next event line.
  JsonValue next_event() {
    std::string line;
    EXPECT_TRUE(std::getline(*events_, line)) << "worker closed its stream";
    return JsonValue::parse(line);
  }

  /// Reads events until one matches `kind`, returning it (and any events
  /// skipped on the way, for callers that care).
  JsonValue next_event_of(const std::string& kind,
                          std::vector<JsonValue>* skipped = nullptr) {
    for (;;) {
      JsonValue event = next_event();
      if (event.string_or("event", "") == kind) return event;
      if (skipped != nullptr) skipped->push_back(std::move(event));
    }
  }

  int shutdown() {
    send("{\"op\":\"shutdown\"}");
    requests_.reset();
    requests_buf_.reset();  // close write end: EOF backs up the shutdown
    thread_.join();
    return exit_code_;
  }

 private:
  std::unique_ptr<__gnu_cxx::stdio_filebuf<char>> worker_in_, worker_out_,
      requests_buf_, events_buf_;
  std::unique_ptr<std::istream> in_, events_;
  std::unique_ptr<std::ostream> out_, requests_;
  std::thread thread_;
  int exit_code_ = -1;
};

struct Shard {
  fsp::Instance inst;
  std::int32_t seed;
  std::string pool_text;
  fsp::Time optimum;
};

/// A one-shard frontier for a small instance, with the serial engine's
/// proven optimum as the oracle. Built from the same InstanceSpec the
/// worker will regenerate from the request's cli tokens.
Shard make_shard(int jobs, int machines, std::int32_t seed,
                 std::size_t frontier_nodes) {
  api::InstanceSpec spec;
  spec.jobs = jobs;
  spec.machines = machines;
  spec.seed = seed;
  Shard s{std::move(api::make_instances(spec).front()), seed, "", 0};
  const auto data = fsp::LowerBoundData::build(s.inst);
  const FrontierResult r =
      build_root_frontier(s.inst, data, frontier_nodes, std::nullopt);
  EXPECT_FALSE(r.solved);
  s.pool_text = core::write_frozen_pool_string(r.frontier);
  api::SolverConfig config;
  config.backend = "cpu-serial";
  const api::SolveReport oracle = api::Solver(config).solve(s.inst);
  EXPECT_TRUE(oracle.proven_optimal);
  s.optimum = oracle.best_makespan;
  return s;
}

/// {"op":"solve","id":...,"cli":[--jobs...],"pool":...,"slice_nodes":...}
/// The cli regenerates the instance in the worker — the same InstanceSpec
/// language every front end speaks.
std::string solve_request(const std::string& id, const Shard& shard,
                          std::uint64_t slice_nodes) {
  JsonWriter o;
  o.str("op", "solve");
  o.str("id", id);
  std::string cli = "[\"--jobs\",\"" + std::to_string(shard.inst.jobs()) +
                    "\",\"--machines\"," + "\"" +
                    std::to_string(shard.inst.machines()) + "\",\"--seed\"," +
                    "\"" + std::to_string(shard.seed) +
                    "\",\"--backend\",\"cpu-serial\"]";
  o.field("cli", cli);
  o.str("pool", shard.pool_text);
  o.integer("slice_nodes", slice_nodes);
  return o.done();
}

TEST(DistWorker, AnnouncesReadyAndSurvivesProtocolNoise) {
  WorkerHarness w;
  EXPECT_EQ(w.next_event().string_or("event", ""), "ready");

  w.send("this is not json");
  EXPECT_EQ(w.next_event().string_or("event", ""), "error");

  w.send("");                      // blank keep-alive: silently skipped
  w.send("\r");                    // bare CRLF: likewise
  w.send("{\"op\":\"bogus\"}\r");  // CRLF-framed request still parses
  const JsonValue e = w.next_event();
  EXPECT_EQ(e.string_or("event", ""), "error");
  EXPECT_NE(e.string_or("error", "").find("bogus"), std::string::npos);

  EXPECT_EQ(w.shutdown(), 0);
}

TEST(DistWorker, RejectsMalformedSolveRequests) {
  WorkerHarness w;
  w.next_event_of("ready");

  w.send("{\"op\":\"solve\",\"cli\":[],\"pool\":\"x\"}");  // no id
  EXPECT_EQ(w.next_event().string_or("event", ""), "rejected");

  w.send("{\"op\":\"solve\",\"id\":\"s0\",\"cli\":[]}");  // no pool
  JsonValue e = w.next_event();
  EXPECT_EQ(e.string_or("event", ""), "rejected");
  EXPECT_EQ(e.string_or("id", ""), "s0");

  // A corrupt pool: the rejection names the transport source, not a file.
  w.send(
      "{\"op\":\"solve\",\"id\":\"s1\",\"cli\":[\"--jobs\",\"8\"],"
      "\"pool\":\"garbage\"}");
  e = w.next_event();
  EXPECT_EQ(e.string_or("event", ""), "rejected");
  EXPECT_NE(e.string_or("error", "").find("solve request"), std::string::npos);

  // Checkpoint/recall with nothing running are protocol errors, not crashes.
  w.send("{\"op\":\"checkpoint\"}");
  EXPECT_EQ(w.next_event().string_or("event", ""), "error");
  w.send("{\"op\":\"recall\"}");
  EXPECT_EQ(w.next_event().string_or("event", ""), "error");

  EXPECT_EQ(w.shutdown(), 0);
}

TEST(DistWorker, SolvesAShardToTheExactOptimum) {
  const Shard shard = make_shard(9, 5, 21, 12);

  WorkerHarness w;
  w.next_event_of("ready");
  w.send(solve_request("s0", shard, 1 << 20));
  w.next_event_of("accepted");

  const JsonValue done = w.next_event_of("done");
  EXPECT_EQ(done.string_or("id", ""), "s0");
  EXPECT_EQ(done.int_or("best", -1), shard.optimum);
  EXPECT_TRUE(done.bool_or("proven_optimal", false));
  EXPECT_EQ(done.string_or("stop_reason", ""), "optimal");
  ASSERT_NE(done.find("stats"), nullptr);
  const JsonValue& stats = *done.find("stats");
  EXPECT_GE(stats.int_or("generated", 0), stats.int_or("branched", 0));

  // The schedule travels with the result and actually has that makespan
  // (the root frontier seeds an NEH bound, so a strictly better schedule
  // may or may not exist; when one does, verify it).
  const JsonValue* perm = done.find("permutation");
  ASSERT_NE(perm, nullptr);
  if (!perm->as_array().empty()) {
    std::vector<fsp::JobId> p;
    for (const JsonValue& j : perm->as_array()) {
      p.push_back(static_cast<fsp::JobId>(j.as_int()));
    }
    EXPECT_EQ(fsp::makespan(shard.inst, p), shard.optimum);
  }

  EXPECT_EQ(w.shutdown(), 0);
}

TEST(DistWorker, CheckpointsCarryAResumableSubPool) {
  const Shard shard = make_shard(10, 5, 13, 16);

  // Tiny slices force checkpoint events at every slice boundary.
  WorkerHarness w;
  w.next_event_of("ready");
  w.send(solve_request("s0", shard, 20));
  w.next_event_of("accepted");

  std::vector<JsonValue> seen;
  const JsonValue done = w.next_event_of("done", &seen);
  EXPECT_EQ(done.int_or("best", -1), shard.optimum);
  EXPECT_TRUE(done.bool_or("proven_optimal", false));

  // At least one checkpoint streamed, with monotone seq and a pool whose
  // node count matches the advertised one.
  std::string checkpoint_pool;
  std::int64_t last_seq = 0;
  for (const JsonValue& event : seen) {
    if (event.string_or("event", "") != "checkpoint") continue;
    EXPECT_GT(event.int_or("seq", 0), last_seq);
    last_seq = event.int_or("seq", 0);
    const core::FrozenPool pool = core::read_frozen_pool_string(
        event.string_or("pool", ""), "checkpoint event");
    EXPECT_EQ(static_cast<std::int64_t>(pool.nodes.size()),
              event.int_or("nodes", -1));
    EXPECT_EQ(pool.incumbent, event.int_or("incumbent", -1));
    checkpoint_pool = event.string_or("pool", "");
  }
  ASSERT_GT(last_seq, 0) << "no checkpoint in " << seen.size() << " events";

  // Crash-recovery contract: a fresh solve from the *last* checkpoint's
  // sub-pool alone still reaches the exact optimum — the checkpoint is the
  // complete remaining work, not a hint.
  Shard resumed = shard;
  resumed.pool_text = checkpoint_pool;
  w.send(solve_request("s1", resumed, 1 << 20));
  w.next_event_of("accepted");
  const JsonValue redone = w.next_event_of("done");
  EXPECT_EQ(redone.int_or("best", -1), shard.optimum);
  EXPECT_TRUE(redone.bool_or("proven_optimal", false));

  EXPECT_EQ(w.shutdown(), 0);
}

TEST(DistWorker, InjectedIncumbentsTightenTheShardBound) {
  const Shard shard = make_shard(9, 5, 21, 12);

  WorkerHarness w;
  w.next_event_of("ready");
  // Inject while idle: the bound must stick to the next dispatch. A bound
  // *below* the optimum prunes the entire shard, so the done event reports
  // the injected value — proof the injection reached the engine.
  const fsp::Time impossible = shard.optimum - 1;
  w.send("{\"op\":\"inject_incumbent\",\"value\":" +
         std::to_string(impossible) + "}");
  w.send(solve_request("s0", shard, 1 << 20));
  w.next_event_of("accepted");
  const JsonValue done = w.next_event_of("done");
  EXPECT_EQ(done.int_or("best", -1), impossible);
  EXPECT_EQ(done.string_or("stop_reason", ""), "optimal");

  EXPECT_EQ(w.shutdown(), 0);
}

}  // namespace
}  // namespace fsbb::dist
