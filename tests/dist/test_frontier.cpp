// Root-frontier construction and sharding: target sizes, the early-solve
// path, and that split_frontier is a partition (no node lost or duplicated,
// balanced shard sizes, incumbent inherited).
#include "dist/frontier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "fsp/brute_force.h"
#include "fsp/generators.h"
#include "fsp/lb_data.h"

namespace fsbb::dist {
namespace {

using NodeKey = std::tuple<int, std::vector<fsp::JobId>, fsp::Time>;

std::vector<NodeKey> keys(const std::vector<core::Subproblem>& nodes) {
  std::vector<NodeKey> out;
  out.reserve(nodes.size());
  for (const core::Subproblem& sp : nodes) {
    out.emplace_back(sp.depth, sp.perm, sp.lb);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(DistFrontier, GrowsToTheTargetSize) {
  const fsp::Instance inst =
      fsp::make_instance(fsp::InstanceFamily::kUniform, 10, 5, 7);
  const auto data = fsp::LowerBoundData::build(inst);
  const FrontierResult r = build_root_frontier(inst, data, 30, std::nullopt);
  ASSERT_FALSE(r.solved);
  EXPECT_GE(r.frontier.nodes.size(), 30u);
  EXPECT_GT(r.best, 0);  // the NEH seed (or better) is a real bound
  EXPECT_GT(r.stats.branched, 0u);
}

TEST(DistFrontier, EarlySolveIsASuccessNotAProtocolViolation) {
  // A 6-job instance exhausts long before a million-node pool exists;
  // unlike core::freeze_pool this must return the proven optimum.
  const fsp::Instance inst =
      fsp::make_instance(fsp::InstanceFamily::kUniform, 6, 4, 11);
  const auto data = fsp::LowerBoundData::build(inst);
  const FrontierResult r =
      build_root_frontier(inst, data, 1000000, std::nullopt);
  ASSERT_TRUE(r.solved);
  EXPECT_TRUE(r.frontier.nodes.empty());
  EXPECT_EQ(r.best, fsp::brute_force(inst).makespan);
}

TEST(DistFrontier, SplitIsABalancedPartition) {
  const fsp::Instance inst =
      fsp::make_instance(fsp::InstanceFamily::kUniform, 10, 5, 7);
  const auto data = fsp::LowerBoundData::build(inst);
  const FrontierResult r = build_root_frontier(inst, data, 32, std::nullopt);
  ASSERT_FALSE(r.solved);

  const std::vector<core::FrozenPool> shards = split_frontier(r.frontier, 3);
  ASSERT_EQ(shards.size(), 3u);

  std::vector<core::Subproblem> reunited;
  std::size_t largest = 0, smallest = r.frontier.nodes.size();
  for (const core::FrozenPool& shard : shards) {
    EXPECT_EQ(shard.incumbent, r.frontier.incumbent);
    EXPECT_FALSE(shard.nodes.empty());
    largest = std::max(largest, shard.nodes.size());
    smallest = std::min(smallest, shard.nodes.size());
    reunited.insert(reunited.end(), shard.nodes.begin(), shard.nodes.end());
  }
  EXPECT_LE(largest - smallest, 1u);  // round-robin deal
  EXPECT_EQ(keys(reunited), keys(r.frontier.nodes));  // nothing lost or duped
}

TEST(DistFrontier, SplitNeverReturnsEmptyShards) {
  const fsp::Instance inst =
      fsp::make_instance(fsp::InstanceFamily::kUniform, 10, 5, 7);
  const auto data = fsp::LowerBoundData::build(inst);
  core::FrozenPool tiny;
  tiny.incumbent = 999;
  const FrontierResult r = build_root_frontier(inst, data, 10, std::nullopt);
  ASSERT_FALSE(r.solved);
  tiny.nodes.assign(r.frontier.nodes.begin(), r.frontier.nodes.begin() + 2);

  // More parts than nodes: every node gets its own shard, none are empty.
  const std::vector<core::FrozenPool> shards = split_frontier(tiny, 8);
  ASSERT_EQ(shards.size(), 2u);
  for (const core::FrozenPool& shard : shards) {
    EXPECT_EQ(shard.nodes.size(), 1u);
    EXPECT_EQ(shard.incumbent, 999);
  }
}

}  // namespace
}  // namespace fsbb::dist
