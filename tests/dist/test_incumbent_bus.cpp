// IncumbentBus: strict-improvement gating, permutation adoption rules and
// thread safety of the fleet-wide monotone bound.
#include "dist/incumbent_bus.h"

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

namespace fsbb::dist {
namespace {

TEST(DistIncumbentBus, StartsUnbounded) {
  IncumbentBus bus;
  EXPECT_EQ(bus.best(), std::numeric_limits<fsp::Time>::max());
  EXPECT_TRUE(bus.best_permutation().empty());
}

TEST(DistIncumbentBus, AcceptsOnlyStrictImprovements) {
  IncumbentBus bus;
  EXPECT_TRUE(bus.offer(100, {0, 1, 2}));
  EXPECT_EQ(bus.best(), 100);
  EXPECT_FALSE(bus.offer(100, {2, 1, 0}));  // ties do not broadcast
  EXPECT_FALSE(bus.offer(150, {1, 0, 2}));  // worse: ignored entirely
  EXPECT_EQ(bus.best(), 100);
  EXPECT_EQ(bus.best_permutation(), (std::vector<fsp::JobId>{0, 1, 2}));
  EXPECT_TRUE(bus.offer(90, {1, 2, 0}));
  EXPECT_EQ(bus.best(), 90);
  EXPECT_EQ(bus.best_permutation(), (std::vector<fsp::JobId>{1, 2, 0}));
}

TEST(DistIncumbentBus, BoundsTravelWithoutSchedules) {
  IncumbentBus bus;
  // An external bound (no schedule) still tightens the bus...
  EXPECT_TRUE(bus.offer(80, {}));
  EXPECT_EQ(bus.best(), 80);
  EXPECT_TRUE(bus.best_permutation().empty());
  // ...and an equal-value offer that does carry one closes the gap
  // (returns false — the bound itself is not news).
  EXPECT_FALSE(bus.offer(80, {2, 0, 1}));
  EXPECT_EQ(bus.best_permutation(), (std::vector<fsp::JobId>{2, 0, 1}));
  // A later bare bound never erases a stored schedule.
  EXPECT_TRUE(bus.offer(70, {}));
  EXPECT_EQ(bus.best_permutation(), (std::vector<fsp::JobId>{2, 0, 1}));
}

TEST(DistIncumbentBus, ConcurrentOffersConvergeToTheMinimum) {
  IncumbentBus bus;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&bus, t] {
      for (fsp::Time v = 400 + t; v >= 10; v -= 4) {
        bus.offer(v, {static_cast<fsp::JobId>(t)});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(bus.best(), 13);  // one of the four lanes' minimum
  EXPECT_EQ(bus.best_permutation().size(), 1u);
}

}  // namespace
}  // namespace fsbb::dist
