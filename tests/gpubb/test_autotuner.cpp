#include "gpubb/autotuner.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/protocol.h"
#include "fsp/taillard.h"

namespace fsbb::gpubb {
namespace {

class AutotunerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    inst_ = new fsp::Instance(fsp::taillard_instance(21));  // 20x20
    data_ = new fsp::LowerBoundData(fsp::LowerBoundData::build(*inst_));
    device_ = new gpusim::SimDevice(gpusim::DeviceSpec::tesla_c2050());
    frozen_ = new core::FrozenPool(core::freeze_pool(*inst_, *data_, 1500));
    scenario_ = new OffloadScenario(measure_scenario(
        *device_, *inst_, *data_, PlacementPolicy::kSharedJmPtm,
        frozen_->nodes, frozen_->nodes.size()));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    delete frozen_;
    delete device_;
    delete data_;
    delete inst_;
  }

  static fsp::Instance* inst_;
  static fsp::LowerBoundData* data_;
  static gpusim::SimDevice* device_;
  static core::FrozenPool* frozen_;
  static OffloadScenario* scenario_;
};

fsp::Instance* AutotunerFixture::inst_ = nullptr;
fsp::LowerBoundData* AutotunerFixture::data_ = nullptr;
gpusim::SimDevice* AutotunerFixture::device_ = nullptr;
core::FrozenPool* AutotunerFixture::frozen_ = nullptr;
OffloadScenario* AutotunerFixture::scenario_ = nullptr;

TEST_F(AutotunerFixture, SweepsTheFullDoublingRange) {
  const AutotuneResult result =
      autotune_pool_size(*scenario_, 4096, 262144);
  EXPECT_EQ(result.curve.size(), 7u);  // 4096 .. 262144 doubling
  EXPECT_EQ(result.curve.front().pool_size, 4096u);
  EXPECT_EQ(result.curve.back().pool_size, 262144u);
}

TEST_F(AutotunerFixture, BestIsTheArgmaxOfTheCurve) {
  const AutotuneResult result = autotune_pool_size(*scenario_, 4096, 262144);
  double best = 0;
  std::size_t best_pool = 0;
  for (const AutotunePoint& p : result.curve) {
    EXPECT_GT(p.nodes_per_second, 0);
    EXPECT_GT(p.speedup, 0);
    if (p.nodes_per_second > best) {
      best = p.nodes_per_second;
      best_pool = p.pool_size;
    }
  }
  EXPECT_EQ(result.best_pool_size, best_pool);
  EXPECT_DOUBLE_EQ(result.best_nodes_per_second, best);
}

TEST_F(AutotunerFixture, RecommendsMoreThanTheMinimumBlockCount) {
  // The paper: 16 blocks (4096) is never optimal — at least double the SM
  // count is needed. The tuner must not pick the smallest pool.
  const AutotuneResult result = autotune_pool_size(*scenario_, 4096, 262144);
  EXPECT_GT(result.best_pool_size, 4096u);
}

TEST_F(AutotunerFixture, PoolSizesAreBlockAligned) {
  const AutotuneResult result = autotune_pool_size(*scenario_, 5000, 50000);
  for (const AutotunePoint& p : result.curve) {
    EXPECT_EQ(p.pool_size % 256, 0u) << p.pool_size;
  }
}

TEST_F(AutotunerFixture, InvalidRangeThrows) {
  EXPECT_THROW(autotune_pool_size(*scenario_, 4096, 1024), CheckFailure);
  EXPECT_THROW(autotune_pool_size(*scenario_, 0, 1024), CheckFailure);
}

TEST_F(AutotunerFixture, ScenarioSampleMustFillABlock) {
  std::vector<core::Subproblem> tiny(
      10, core::Subproblem::root(inst_->jobs()));
  EXPECT_THROW(measure_scenario(*device_, *inst_, *data_,
                                PlacementPolicy::kAllGlobal, tiny, 100),
               CheckFailure);
}

}  // namespace
}  // namespace fsbb::gpubb
