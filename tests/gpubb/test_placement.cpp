#include "gpubb/placement.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "fsp/taillard.h"

namespace fsbb::gpubb {
namespace {

const gpusim::DeviceSpec kSpec = gpusim::DeviceSpec::tesla_c2050();

TEST(PackedSizes, MatchThePapersArithmetic) {
  // §IV-B: for n = 200, JM is 38 KB, PTM 4 KB; together 42 KB < 48 KB,
  // while adding LM would exceed the budget.
  const auto inst = fsp::taillard_instance(101);  // 200x20
  const auto data = fsp::LowerBoundData::build(inst);
  const PackedSizes sizes = PackedSizes::from(data);
  EXPECT_EQ(sizes.of(LbStructure::kJm), 200u * 190u);       // 38000 B
  EXPECT_EQ(sizes.of(LbStructure::kPtm), 200u * 20u);       // 4000 B
  EXPECT_EQ(sizes.of(LbStructure::kLm), 200u * 190u * 2u);  // u16 lags
  EXPECT_EQ(sizes.of(LbStructure::kRm), 80u);
  EXPECT_EQ(sizes.of(LbStructure::kQm), 80u);
  EXPECT_EQ(sizes.of(LbStructure::kMm), 760u);
}

TEST(Placement, AllGlobalUsesNoSharedAndPrefersL1) {
  const auto inst = fsp::taillard_instance(21);
  const auto data = fsp::LowerBoundData::build(inst);
  const PlacementPlan plan =
      make_placement_plan(PlacementPolicy::kAllGlobal, data, kSpec);
  EXPECT_EQ(plan.shared_bytes_per_block, 0u);
  EXPECT_EQ(plan.smem_config, gpusim::SmemConfig::kPreferL1);
  for (int i = 0; i < kNumLbStructures; ++i) {
    EXPECT_EQ(plan.of(static_cast<LbStructure>(i)), gpusim::MemSpace::kGlobal);
  }
}

TEST(Placement, SharedJmPtmPutsExactlyThoseTwoInShared) {
  const auto inst = fsp::taillard_instance(101);  // 200x20
  const auto data = fsp::LowerBoundData::build(inst);
  const PlacementPlan plan =
      make_placement_plan(PlacementPolicy::kSharedJmPtm, data, kSpec);
  EXPECT_TRUE(plan.in_shared(LbStructure::kJm));
  EXPECT_TRUE(plan.in_shared(LbStructure::kPtm));
  EXPECT_FALSE(plan.in_shared(LbStructure::kLm));
  EXPECT_FALSE(plan.in_shared(LbStructure::kRm));
  EXPECT_EQ(plan.shared_bytes_per_block, 42000u);
  EXPECT_EQ(plan.smem_config, gpusim::SmemConfig::kPreferShared);
}

TEST(Placement, AutoReproducesThePapersRecommendation) {
  // Greedy frequency/size selection must always include JM and PTM (the
  // paper's recommendation). LM must be excluded exactly when it does not
  // fit (n >= 100 at m = 20); for the small classes everything fits, so
  // the greedy plan legitimately stages LM too.
  for (const int id : {21, 51, 81, 101}) {
    const auto inst = fsp::taillard_instance(id);
    const auto data = fsp::LowerBoundData::build(inst);
    const PlacementPlan plan =
        make_placement_plan(PlacementPolicy::kAuto, data, kSpec);
    EXPECT_TRUE(plan.in_shared(LbStructure::kJm)) << inst.name();
    EXPECT_TRUE(plan.in_shared(LbStructure::kPtm)) << inst.name();
    if (inst.jobs() >= 100) {
      EXPECT_FALSE(plan.in_shared(LbStructure::kLm)) << inst.name();
    } else {
      EXPECT_TRUE(plan.in_shared(LbStructure::kLm)) << inst.name();
    }
    EXPECT_LE(plan.shared_bytes_per_block,
              kSpec.shared_mem_bytes(gpusim::SmemConfig::kPreferShared));
  }
}

TEST(Placement, LmDoesNotFitForLargeInstances) {
  // For n = 200 the u16 lag matrix alone is 76 KB > 48 KB: asking for an
  // impossible placement must fail loudly.
  const auto inst = fsp::taillard_instance(101);
  const auto data = fsp::LowerBoundData::build(inst);
  PlacementPlan plan;
  EXPECT_THROW(
      plan = [&] {
        PlacementPlan p;
        p.policy = PlacementPolicy::kSharedJmPtm;
        // Simulate the paper's rejected alternative by hand: JM + LM.
        const PackedSizes sizes = PackedSizes::from(data);
        FSBB_CHECK(sizes.of(LbStructure::kJm) + sizes.of(LbStructure::kLm) <=
                   kSpec.shared_mem_bytes(gpusim::SmemConfig::kPreferShared));
        return p;
      }(),
      CheckFailure);
}

TEST(Placement, SingleStructurePolicies) {
  const auto inst = fsp::taillard_instance(101);
  const auto data = fsp::LowerBoundData::build(inst);
  const PlacementPlan jm =
      make_placement_plan(PlacementPolicy::kSharedJm, data, kSpec);
  EXPECT_TRUE(jm.in_shared(LbStructure::kJm));
  EXPECT_FALSE(jm.in_shared(LbStructure::kPtm));
  EXPECT_EQ(jm.shared_bytes_per_block, 38000u);

  const PlacementPlan ptm =
      make_placement_plan(PlacementPolicy::kSharedPtm, data, kSpec);
  EXPECT_TRUE(ptm.in_shared(LbStructure::kPtm));
  EXPECT_EQ(ptm.shared_bytes_per_block, 4000u);
}

TEST(Placement, DescribeMentionsPolicyAndPlacements) {
  const auto inst = fsp::taillard_instance(21);
  const auto data = fsp::LowerBoundData::build(inst);
  const PlacementPlan plan =
      make_placement_plan(PlacementPolicy::kSharedJmPtm, data, kSpec);
  const std::string desc = plan.describe();
  EXPECT_NE(desc.find("shared-JM+PTM"), std::string::npos);
  EXPECT_NE(desc.find("JM=shared"), std::string::npos);
  EXPECT_NE(desc.find("LM=global"), std::string::npos);
}

TEST(Placement, PolicyNames) {
  EXPECT_STREQ(to_string(PlacementPolicy::kAllGlobal), "all-global");
  EXPECT_STREQ(to_string(PlacementPolicy::kSharedJmPtm), "shared-JM+PTM");
  EXPECT_STREQ(to_string(PlacementPolicy::kAuto), "auto-greedy");
}

TEST(Placement, StructureNames) {
  EXPECT_STREQ(to_string(LbStructure::kPtm), "PTM");
  EXPECT_STREQ(to_string(LbStructure::kJm), "JM");
  EXPECT_STREQ(to_string(LbStructure::kMm), "MM");
}

}  // namespace
}  // namespace fsbb::gpubb
