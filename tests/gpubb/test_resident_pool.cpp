// DeviceResidentPool unit suite: geometry, bit-exact bounds from resident
// payloads, deterministic starvation/refill routing, spill/steal
// accounting when a shard fills, graceful overflow when the whole pool is
// full, and free-list round-trips. The shard policy is deterministic, so
// every counter here is asserted exactly.
#include "gpubb/resident_pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "fsp/lb1.h"
#include "fsp/taillard.h"
#include "gpubb/placement.h"
#include "gpusim/device_spec.h"

namespace fsbb::gpubb {
namespace {

constexpr std::uint32_t kNull = core::ResidentPool::kNullTicket;

struct Fixture {
  fsp::Instance inst = fsp::make_taillard_instance(10, 4, 99, "rp-10x4");
  fsp::LowerBoundData data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device{gpusim::DeviceSpec::tesla_c2050()};
  DeviceLbData dev_data{
      device, data,
      make_placement_plan(PlacementPolicy::kAllGlobal, data, device.spec())};

  DeviceResidentPool small_pool(int shards = 4, std::size_t slots = 8) {
    ResidentPoolConfig config;
    config.shards = shards;
    config.slots_per_shard = slots;
    config.block_threads = 8;
    return DeviceResidentPool(device, dev_data, config);
  }

  /// One refill group expanding `parent` (all free jobs).
  core::ResidentGroup group_of(const core::Subproblem& parent,
                               std::vector<fsp::Time>& bounds,
                               std::vector<std::uint32_t>& tickets,
                               std::uint32_t ticket = kNull) {
    const auto r = static_cast<std::size_t>(parent.remaining());
    bounds.assign(r, 0);
    tickets.assign(r, kNull);
    core::ResidentGroup g;
    g.ticket = ticket;
    g.perm = parent.perm;
    g.depth = parent.depth;
    g.bounds = bounds;
    g.child_tickets = tickets;
    return g;
  }

  fsp::Time host_bound(const core::Subproblem& child) {
    return fsp::lb1_from_prefix(inst, data, child.prefix());
  }
};

TEST(ResidentPool, GeometryIsBlockAlignedPerShard) {
  Fixture f;
  DeviceResidentPool pool = f.small_pool();
  EXPECT_EQ(pool.shards(), 4);
  EXPECT_EQ(pool.slots_per_shard(), 8u);
  EXPECT_EQ(pool.capacity(), 32u);
  // perm (10 B) + depth (2 B) + fronts (4 x 4 B) + lb (4 B)
  EXPECT_EQ(pool.slot_bytes(), 10u + 2u + 16u + 4u);

  // Defaults: one shard per simulated SM, whole-block slot counts.
  DeviceResidentPool dflt(f.device, f.dev_data, ResidentPoolConfig{});
  EXPECT_EQ(dflt.shards(), f.device.spec().sm_count);
  EXPECT_EQ(dflt.slots_per_shard() % 256, 0u);
}

TEST(ResidentPool, RefillThenResidentIterationsMatchHostBounds) {
  Fixture f;
  DeviceResidentPool pool = f.small_pool(4, 16);

  // Level 1: the root enters as a refill (no resident payload).
  const core::Subproblem root = core::Subproblem::root(f.inst.jobs());
  std::vector<fsp::Time> bounds;
  std::vector<std::uint32_t> tickets;
  core::ResidentGroup g = f.group_of(root, bounds, tickets);
  ResidentIterationIo io;
  pool.iterate(1000000, {&g, 1}, io);

  EXPECT_EQ(io.children, 10u);
  EXPECT_EQ(io.refills, 1u);
  for (int i = 0; i < root.remaining(); ++i) {
    const core::Subproblem child = root.child(i);
    ASSERT_EQ(bounds[static_cast<std::size_t>(i)], f.host_bound(child)) << i;
    // The device-resident permutation equals the host child permutation.
    const auto ticket = tickets[static_cast<std::size_t>(i)];
    ASSERT_NE(ticket, kNull) << i;
    const auto resident = pool.debug_perm(ticket);
    for (int j = 0; j < f.inst.jobs(); ++j) {
      ASSERT_EQ(static_cast<fsp::JobId>(resident[static_cast<std::size_t>(j)]),
                child.perm[static_cast<std::size_t>(j)])
          << i << "," << j;
    }
  }

  // Level 2: a child expands from its RESIDENT payload (fronts included —
  // the O(m) extension path) and must still match the host exactly.
  const core::Subproblem parent = root.child(3);
  std::vector<fsp::Time> bounds2;
  std::vector<std::uint32_t> tickets2;
  core::ResidentGroup g2 =
      f.group_of(parent, bounds2, tickets2, tickets[3]);
  pool.iterate(1000000, {&g2, 1}, io);
  EXPECT_EQ(io.refills, 0u);
  for (int i = 0; i < parent.remaining(); ++i) {
    ASSERT_EQ(bounds2[static_cast<std::size_t>(i)],
              f.host_bound(parent.child(i)))
        << i;
  }
}

TEST(ResidentPool, FirstRefillFillsOneShardThenSpillsToTheNextSibling) {
  Fixture f;
  DeviceResidentPool pool = f.small_pool(4, 8);

  const core::Subproblem root = core::Subproblem::root(f.inst.jobs());
  std::vector<fsp::Time> bounds;
  std::vector<std::uint32_t> tickets;
  core::ResidentGroup g = f.group_of(root, bounds, tickets);
  ResidentIterationIo io;
  pool.iterate(1000000, {&g, 1}, io);

  // 10 children, 8-slot home shard: 8 land at home (shard 0, the refill
  // target), then the two spills each borrow from the sibling with the
  // most free slots — shard 1 first, then shard 2 (7 < 8 free) — counted
  // as spills at home and steals at the lenders.
  const core::ResidentPoolStats stats = pool.stats();
  EXPECT_EQ(stats.shards[0].allocated, 8u);
  EXPECT_EQ(stats.shards[0].refills, 1u);
  EXPECT_EQ(stats.shards[0].spills, 2u);
  EXPECT_EQ(stats.shards[1].allocated, 1u);
  EXPECT_EQ(stats.shards[1].steals, 1u);
  EXPECT_EQ(stats.shards[2].allocated, 1u);
  EXPECT_EQ(stats.shards[2].steals, 1u);
  EXPECT_EQ(stats.overflow, 0u);
  for (const std::uint32_t t : tickets) EXPECT_NE(t, kNull);
}

TEST(ResidentPool, RefillBatchesLandOnTheStarvedShard) {
  Fixture f;
  DeviceResidentPool pool = f.small_pool(4, 16);

  // Starve shards 0, 1 and 3: drain their free slots so shard 2 is the
  // only one with capacity — the "least occupied" target.
  auto s0 = pool.debug_drain_shard(0);
  auto s1 = pool.debug_drain_shard(1);
  auto s3 = pool.debug_drain_shard(3);

  const core::Subproblem root = core::Subproblem::root(f.inst.jobs());
  std::vector<fsp::Time> bounds;
  std::vector<std::uint32_t> tickets;
  core::ResidentGroup g = f.group_of(root, bounds, tickets);
  ResidentIterationIo io;
  pool.iterate(1000000, {&g, 1}, io);

  const core::ResidentPoolStats stats = pool.stats();
  EXPECT_EQ(stats.shards[2].refills, 1u);
  EXPECT_EQ(stats.shards[2].allocated, 10u);
  EXPECT_EQ(stats.refills, 1u);
  for (const std::uint32_t t : tickets) {
    ASSERT_NE(t, kNull);
    EXPECT_EQ(pool.shard_of(t), 2);
  }

  pool.debug_refill_shard(std::move(s0));
  pool.debug_refill_shard(std::move(s1));
  pool.debug_refill_shard(std::move(s3));
}

TEST(ResidentPool, FullPoolOverflowsGracefullyWithCorrectBounds) {
  Fixture f;
  DeviceResidentPool pool = f.small_pool(2, 8);

  // Drain everything: no shard can host a child.
  auto s0 = pool.debug_drain_shard(0);
  auto s1 = pool.debug_drain_shard(1);

  const core::Subproblem root = core::Subproblem::root(f.inst.jobs());
  std::vector<fsp::Time> bounds;
  std::vector<std::uint32_t> tickets;
  core::ResidentGroup g = f.group_of(root, bounds, tickets);
  ResidentIterationIo io;
  pool.iterate(1000000, {&g, 1}, io);

  // Children were bounded in scratch and returned non-resident; the
  // bounds are still bit-identical to the host.
  EXPECT_EQ(pool.stats().overflow, 10u);
  for (int i = 0; i < root.remaining(); ++i) {
    EXPECT_EQ(tickets[static_cast<std::size_t>(i)], kNull) << i;
    EXPECT_EQ(bounds[static_cast<std::size_t>(i)],
              f.host_bound(root.child(i)))
        << i;
  }
}

TEST(ResidentPool, ReleaseRoundTripsThroughTheFreeDeques) {
  Fixture f;
  DeviceResidentPool pool = f.small_pool(4, 16);

  const core::Subproblem root = core::Subproblem::root(f.inst.jobs());
  std::vector<fsp::Time> bounds;
  std::vector<std::uint32_t> tickets;
  core::ResidentGroup g = f.group_of(root, bounds, tickets);
  ResidentIterationIo io;
  pool.iterate(1000000, {&g, 1}, io);

  core::ResidentPoolStats stats = pool.stats();
  EXPECT_EQ(stats.live(), 10u);
  for (const std::uint32_t t : tickets) pool.release(t);
  stats = pool.stats();
  EXPECT_EQ(stats.live(), 0u);
  std::uint64_t released = 0;
  for (const auto& s : stats.shards) released += s.released;
  EXPECT_EQ(released, 10u);
  // The freed slots are reusable: the next refill succeeds fully.
  std::vector<fsp::Time> bounds2;
  std::vector<std::uint32_t> tickets2;
  core::ResidentGroup g2 = f.group_of(root, bounds2, tickets2);
  pool.iterate(1000000, {&g2, 1}, io);
  for (const std::uint32_t t : tickets2) EXPECT_NE(t, kNull);
}

TEST(ResidentPool, IterationIoShrinksVersusRepackTraffic) {
  Fixture f;
  DeviceResidentPool pool = f.small_pool(4, 64);

  // A resident parent's expansion ships descriptors + child slots down
  // and bounds up — strictly less than the repack path's per-child
  // (jobs + 2) down / 4 up for the same children.
  const core::Subproblem root = core::Subproblem::root(f.inst.jobs());
  std::vector<fsp::Time> bounds;
  std::vector<std::uint32_t> tickets;
  core::ResidentGroup g = f.group_of(root, bounds, tickets);
  ResidentIterationIo io;
  pool.iterate(1000000, {&g, 1}, io);

  const core::Subproblem parent = root.child(0);
  std::vector<fsp::Time> bounds2;
  std::vector<std::uint32_t> tickets2;
  core::ResidentGroup g2 = f.group_of(parent, bounds2, tickets2, tickets[0]);
  pool.iterate(1000000, {&g2, 1}, io);

  const std::size_t repack_h2d =
      io.children * (static_cast<std::size_t>(f.inst.jobs()) + 2);
  EXPECT_LT(io.h2d_bytes, repack_h2d);
  EXPECT_EQ(io.refills, 0u);
}

}  // namespace
}  // namespace fsbb::gpubb
