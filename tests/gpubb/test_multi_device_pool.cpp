// MultiDevicePool unit suite: one-evaluator facade over N simulated
// cards, heterogeneous flat-batch splitting, refill routing to the
// hungriest card, outer-ticket stability across cross-card rebalancing,
// and the starved-device recall-and-resplit path under the core::audit
// ticket conservation check (issued + rebalanced == allocated).
#include "gpubb/multi_device_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/audit.h"
#include "fsp/lb1.h"
#include "fsp/taillard.h"
#include "gpusim/device_spec.h"

namespace fsbb::gpubb {
namespace {

constexpr std::uint32_t kNull = core::ResidentPool::kNullTicket;

struct Fixture {
  fsp::Instance inst = fsp::make_taillard_instance(10, 4, 99, "md-10x4");
  fsp::LowerBoundData data = fsp::LowerBoundData::build(inst);

  MultiDeviceConfig two_cards(std::uint64_t min_gap = 8,
                              std::size_t move_batch = 64) {
    MultiDeviceConfig config;
    config.specs = {gpusim::DeviceSpec::tesla_c2050(),
                    gpusim::DeviceSpec::tesla_c2050()};
    config.policy = PlacementPolicy::kAllGlobal;
    config.block_threads = 8;  // keep the tiny slot geometry un-rounded
    config.pool_config.shards = 2;
    config.pool_config.slots_per_shard = 32;
    config.pool_config.block_threads = 8;
    config.rebalance_min_gap = min_gap;
    config.rebalance_batch = move_batch;
    return config;
  }

  /// A valid parent at `depth`: the identity permutation rotated by `rot`.
  core::Subproblem parent_at(int depth, int rot) {
    core::Subproblem sp = core::Subproblem::root(inst.jobs());
    std::rotate(sp.perm.begin(), sp.perm.begin() + rot, sp.perm.end());
    sp.depth = depth;
    return sp;
  }

  core::ResidentGroup group_of(const core::Subproblem& parent,
                               std::vector<fsp::Time>& bounds,
                               std::vector<std::uint32_t>& tickets) {
    const auto r = static_cast<std::size_t>(parent.remaining());
    bounds.assign(r, 0);
    tickets.assign(r, kNull);
    core::ResidentGroup g;
    g.perm = parent.perm;
    g.depth = parent.depth;
    g.bounds = bounds;
    g.child_tickets = tickets;
    return g;
  }

  fsp::Time host_bound(const core::Subproblem& child) {
    return fsp::lb1_from_prefix(inst, data, child.prefix());
  }
};

std::uint64_t lane_live(const MultiDevicePool& pool, std::size_t d) {
  return pool.lane(d).resident()->live_slots();
}

TEST(MultiDevicePool, PresentsOneEvaluatorOverTwoCards) {
  Fixture f;
  MultiDevicePool pool(f.inst, f.data, f.two_cards());
  EXPECT_EQ(pool.device_count(), 2u);
  EXPECT_EQ(pool.resident_pool(), &pool);
  EXPECT_EQ(pool.subtree_dfs(), nullptr);  // resident lanes, not dfs
  EXPECT_NE(pool.name().find("x2"), std::string::npos);

  const core::ResidentPoolStats stats = pool.shard_stats();
  EXPECT_EQ(stats.devices, 2u);
  EXPECT_EQ(stats.rebalanced, 0u);
  ASSERT_EQ(stats.shards.size(), 4u);  // 2 shards per card, concatenated
  EXPECT_EQ(stats.shards[0].device, 0u);
  EXPECT_EQ(stats.shards[1].device, 0u);
  EXPECT_EQ(stats.shards[2].device, 1u);
  EXPECT_EQ(stats.shards[3].device, 1u);
  EXPECT_EQ(stats.capacity, 2u * 2u * 32u);
}

TEST(MultiDevicePool, HeterogeneousFlatBatchMatchesHostBounds) {
  Fixture f;
  MultiDeviceConfig config = f.two_cards();
  config.specs = {gpusim::DeviceSpec::tesla_c2050(),
                  gpusim::DeviceSpec::tesla_c1060()};
  MultiDevicePool pool(f.inst, f.data, config);
  EXPECT_NE(pool.device(0).spec().sm_count, pool.device(1).spec().sm_count);

  // A flat batch splits across both cards by modeled throughput; the
  // bounds must be the exact host LB1 values regardless of the split.
  std::vector<core::Subproblem> batch;
  for (int rot = 0; rot < 10; ++rot) {
    core::Subproblem parent = f.parent_at(3, rot);
    batch.push_back(parent.child(0));
    batch.push_back(parent.child(2));
  }
  std::vector<core::Subproblem> expect = batch;
  pool.evaluate(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].lb, f.host_bound(expect[i])) << "node " << i;
  }
  EXPECT_GT(pool.modeled_wall_seconds(), 0.0);
  EXPECT_EQ(pool.combined_gpu_ledger().launches, 2u);
}

TEST(MultiDevicePool, RefillGroupsRouteToTheHungriestCard) {
  Fixture f;
  MultiDevicePool pool(f.inst, f.data, f.two_cards());
  std::vector<fsp::Time> bounds;
  std::vector<std::uint32_t> tickets;

  // One refill group per iterate: with equal headroom the first group
  // lands on card 0, and the routing then alternates as each upload
  // shrinks the receiving card's headroom.
  for (int rot = 0; rot < 6; ++rot) {
    core::Subproblem parent = f.parent_at(4, rot);
    std::vector<core::ResidentGroup> groups = {
        f.group_of(parent, bounds, tickets)};
    pool.iterate(1 << 30, groups);
    for (const fsp::Time b : bounds) EXPECT_GT(b, 0);
    for (const std::uint32_t t : tickets) EXPECT_NE(t, kNull);
  }
  EXPECT_EQ(lane_live(pool, 0), lane_live(pool, 1));
  EXPECT_EQ(lane_live(pool, 0) + lane_live(pool, 1), 6u * 6u);
}

TEST(MultiDevicePool, StarvedDeviceRebalanceConservesTickets) {
  const core::audit::ScopedEnable audited;
  Fixture f;
  MultiDevicePool pool(f.inst, f.data, f.two_cards(/*min_gap=*/8));
  core::audit::TicketAudit audit("multi-device-pool");

  // 16 single-group refill iterations; track which card each group's
  // children landed on by watching the per-card live counts move.
  std::vector<std::vector<std::uint32_t>> on_card(2);
  std::vector<fsp::Time> bounds;
  std::vector<std::uint32_t> tickets;
  for (int rot = 0; rot < 16; ++rot) {
    core::Subproblem parent = f.parent_at(4, rot % 10);
    const std::uint64_t live0 = lane_live(pool, 0);
    std::vector<core::ResidentGroup> groups = {
        f.group_of(parent, bounds, tickets)};
    pool.iterate(1 << 30, groups);
    const std::size_t card = lane_live(pool, 0) > live0 ? 0 : 1;
    for (const std::uint32_t t : tickets) {
      ASSERT_NE(t, kNull);
      audit.on_issue(t);
      on_card[card].push_back(t);
    }
  }
  ASSERT_EQ(on_card[0].size(), 48u);
  ASSERT_EQ(on_card[1].size(), 48u);

  // Starve card 1: the search "pruned" its entire resident population.
  for (const std::uint32_t t : on_card[1]) {
    audit.on_release(t);
    pool.release(t);
  }
  EXPECT_EQ(lane_live(pool, 0), 48u);
  EXPECT_EQ(lane_live(pool, 1), 0u);
  EXPECT_EQ(pool.rebalanced(), 0u);

  // The recall-and-resplit moves half the gap to the starved card. The
  // engine-visible (outer) tickets never change, only the payload homes.
  const std::size_t moved = pool.debug_rebalance();
  EXPECT_EQ(moved, 24u);  // min(rebalance_batch, gap / 2)
  EXPECT_EQ(pool.rebalanced(), 24u);
  EXPECT_EQ(lane_live(pool, 0), 24u);
  EXPECT_EQ(lane_live(pool, 1), 24u);

  // Releasing through the stable outer tickets drains both cards.
  for (const std::uint32_t t : on_card[0]) {
    audit.on_release(t);
    pool.release(t);
  }
  EXPECT_EQ(lane_live(pool, 0), 0u);
  EXPECT_EQ(lane_live(pool, 1), 0u);

  // Conservation: every payload slot ever allocated is either a ticket
  // the engine saw or a rebalancer move (issued + rebalanced ==
  // allocated); finish() throws on any imbalance.
  const core::ResidentPoolStats stats = pool.shard_stats();
  EXPECT_EQ(stats.rebalanced, 24u);
  std::uint64_t allocated = 0;
  for (const auto& s : stats.shards) allocated += s.allocated;
  EXPECT_EQ(audit.issued() + stats.rebalanced, allocated);
  EXPECT_NO_THROW(audit.finish(stats));
}

TEST(MultiDevicePool, RebalanceIsIdleWhenBalanced) {
  Fixture f;
  MultiDevicePool pool(f.inst, f.data, f.two_cards());
  std::vector<fsp::Time> bounds;
  std::vector<std::uint32_t> tickets;
  for (int rot = 0; rot < 4; ++rot) {
    core::Subproblem parent = f.parent_at(4, rot);
    std::vector<core::ResidentGroup> groups = {
        f.group_of(parent, bounds, tickets)};
    pool.iterate(1 << 30, groups);
  }
  EXPECT_EQ(pool.debug_rebalance(), 0u);
  EXPECT_EQ(pool.rebalanced(), 0u);
}

TEST(MultiDevicePool, SingleCardDegeneratesToOneLane) {
  Fixture f;
  MultiDeviceConfig config = f.two_cards();
  config.specs.resize(1);
  MultiDevicePool pool(f.inst, f.data, config);
  EXPECT_EQ(pool.device_count(), 1u);

  std::vector<fsp::Time> bounds;
  std::vector<std::uint32_t> tickets;
  core::Subproblem parent = f.parent_at(4, 1);
  std::vector<core::ResidentGroup> groups = {
      f.group_of(parent, bounds, tickets)};
  pool.iterate(1 << 30, groups);
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_EQ(bounds[i], f.host_bound(parent.child(static_cast<int>(i))));
    EXPECT_NE(tickets[i], kNull);
  }
  for (const std::uint32_t t : tickets) pool.release(t);
  EXPECT_EQ(pool.debug_rebalance(), 0u);  // nothing to move on one card
}

}  // namespace
}  // namespace fsbb::gpubb
