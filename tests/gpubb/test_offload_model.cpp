#include "gpubb/offload_model.h"

#include <gtest/gtest.h>

#include "core/protocol.h"
#include "fsp/taillard.h"
#include "gpubb/autotuner.h"

namespace fsbb::gpubb {
namespace {

// A realistic scenario measured from a frozen pool of a 20x20 instance.
class OffloadModelFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    inst_ = new fsp::Instance(fsp::taillard_instance(21));
    data_ = new fsp::LowerBoundData(fsp::LowerBoundData::build(*inst_));
    device_ = new gpusim::SimDevice(gpusim::DeviceSpec::tesla_c2050());
    frozen_ = new core::FrozenPool(core::freeze_pool(*inst_, *data_, 2000));
    scenario_ = new OffloadScenario(measure_scenario(
        *device_, *inst_, *data_, PlacementPolicy::kAllGlobal,
        frozen_->nodes, frozen_->nodes.size()));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    delete frozen_;
    delete device_;
    delete data_;
    delete inst_;
  }

  static fsp::Instance* inst_;
  static fsp::LowerBoundData* data_;
  static gpusim::SimDevice* device_;
  static core::FrozenPool* frozen_;
  static OffloadScenario* scenario_;
};

fsp::Instance* OffloadModelFixture::inst_ = nullptr;
fsp::LowerBoundData* OffloadModelFixture::data_ = nullptr;
gpusim::SimDevice* OffloadModelFixture::device_ = nullptr;
core::FrozenPool* OffloadModelFixture::frozen_ = nullptr;
OffloadScenario* OffloadModelFixture::scenario_ = nullptr;

TEST_F(OffloadModelFixture, ScenarioMeasurementIsSane) {
  EXPECT_GT(scenario_->thread_work.ops, 0);
  EXPECT_GT(scenario_->thread_work
                .accesses[static_cast<std::size_t>(gpusim::MemSpace::kGlobal)],
            0);
  EXPECT_GT(scenario_->avg_remaining, 0);
  EXPECT_LE(scenario_->avg_remaining, inst_->jobs());
  EXPECT_EQ(scenario_->node_bytes_down, 22u);  // 20 u8 perm + u16 depth
  EXPECT_EQ(scenario_->occupancy.active_warps, 32);
}

TEST_F(OffloadModelFixture, CostComponentsArePositiveAndConsistent) {
  const OffloadCycleCost c = model_offload_cycle(*scenario_, 8192);
  EXPECT_GT(c.serial_seconds, 0);
  EXPECT_GT(c.host_seconds, 0);
  EXPECT_GT(c.h2d_seconds, 0);
  EXPECT_GT(c.kernel_seconds, 0);
  EXPECT_GT(c.d2h_seconds, 0);
  EXPECT_GT(c.overhead_seconds, 0);
  EXPECT_NEAR(c.gpu_total_seconds(),
              c.host_seconds + c.h2d_seconds + c.kernel_seconds +
                  c.d2h_seconds + c.overhead_seconds,
              1e-12);
  EXPECT_GT(c.speedup(), 1.0);  // the GPU must win at a healthy pool size
}

TEST_F(OffloadModelFixture, SerialCostScalesLinearly) {
  const double s1 = model_offload_cycle(*scenario_, 4096).serial_seconds;
  const double s2 = model_offload_cycle(*scenario_, 8192).serial_seconds;
  EXPECT_NEAR(s2 / s1, 2.0, 1e-6);
}

TEST_F(OffloadModelFixture, SmallPoolsArePenalized) {
  // The paper's core observation (Table II): 4096-node pools under-fill
  // the card and pay relatively more overhead than 8192-node pools.
  const double s_small = model_offload_cycle(*scenario_, 4096).speedup();
  const double s_mid = model_offload_cycle(*scenario_, 8192).speedup();
  EXPECT_GT(s_mid, s_small);
}

TEST_F(OffloadModelFixture, KernelTimeGrowsWithPool) {
  const double k1 = model_offload_cycle(*scenario_, 16384).kernel_seconds;
  const double k2 = model_offload_cycle(*scenario_, 65536).kernel_seconds;
  EXPECT_GT(k2, 2 * k1);
  EXPECT_LT(k2, 8 * k1);
}

TEST_F(OffloadModelFixture, HostHeapCostGrowsWithPool) {
  const double h1 =
      model_offload_cycle(*scenario_, 8192).host_seconds / 8192;
  const double h2 =
      model_offload_cycle(*scenario_, 262144).host_seconds / 262144;
  EXPECT_GT(h2, h1);  // per-node host cost rises with the inflated heap
}

TEST(OffloadModel, RequiresScenarioPointers) {
  OffloadScenario empty;
  EXPECT_THROW(model_offload_cycle(empty, 1024), CheckFailure);
}

}  // namespace
}  // namespace fsbb::gpubb
