#include "gpubb/lb_kernel.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/protocol.h"
#include "fsp/lb1.h"
#include "fsp/taillard.h"

namespace fsbb::gpubb {
namespace {

std::vector<core::Subproblem> random_pool(const fsp::Instance& inst, int count,
                                          std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<core::Subproblem> pool;
  pool.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    core::Subproblem sp = core::Subproblem::root(inst.jobs());
    shuffle(sp.perm, rng);
    sp.depth = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(inst.jobs())));
    pool.push_back(std::move(sp));
  }
  return pool;
}

// (taillard id, placement policy)
using KernelCase = std::tuple<int, PlacementPolicy>;

class KernelBitExactness : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelBitExactness, KernelBoundsEqualCpuBounds) {
  const auto [id, policy] = GetParam();
  const fsp::Instance inst = fsp::taillard_instance(id);
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  const DeviceLbData dev_data(
      device, data, make_placement_plan(policy, data, device.spec()));

  const auto nodes = random_pool(inst, 300, 1234 + static_cast<unsigned>(id));
  PackedPool packed = PackedPool::pack(nodes, inst.jobs());
  DevicePool pool = DevicePool::upload(device, packed);
  launch_lb1_kernel(device, dev_data, pool, /*block_threads=*/128);

  fsp::Lb1Scratch scratch(inst.jobs(), inst.machines());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const fsp::Time cpu =
        fsp::lb1_from_prefix(inst, data, nodes[i].prefix(), scratch);
    ASSERT_EQ(pool.lbs.host_span()[i], cpu)
        << "node " << i << " policy " << to_string(policy);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PlacementsAndInstances, KernelBitExactness,
    ::testing::Combine(::testing::Values(1, 21, 51),
                       ::testing::Values(PlacementPolicy::kAllGlobal,
                                         PlacementPolicy::kSharedJmPtm,
                                         PlacementPolicy::kSharedJm,
                                         PlacementPolicy::kSharedPtm,
                                         PlacementPolicy::kAuto)));

TEST(LbKernel, PlacementChangesCountersNotValues) {
  const fsp::Instance inst = fsp::taillard_instance(21);
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  const auto nodes = random_pool(inst, 256, 9);
  PackedPool packed = PackedPool::pack(nodes, inst.jobs());

  auto run_policy = [&](PlacementPolicy policy) {
    const DeviceLbData dev_data(
        device, data, make_placement_plan(policy, data, device.spec()));
    DevicePool pool = DevicePool::upload(device, packed);
    const auto run = launch_lb1_kernel(device, dev_data, pool, 256);
    return std::make_pair(
        std::vector<std::int32_t>(pool.lbs.host_span().begin(),
                                  pool.lbs.host_span().end()),
        run);
  };

  const auto [global_lbs, global_run] = run_policy(PlacementPolicy::kAllGlobal);
  const auto [shared_lbs, shared_run] =
      run_policy(PlacementPolicy::kSharedJmPtm);

  EXPECT_EQ(global_lbs, shared_lbs);
  // All-global: no shared traffic at all. Shared placement: JM+PTM reads
  // move from global to shared.
  EXPECT_EQ(global_run.counters.of(gpusim::MemSpace::kShared).loads, 0u);
  EXPECT_GT(shared_run.counters.of(gpusim::MemSpace::kShared).loads, 0u);
  EXPECT_LT(shared_run.counters.of(gpusim::MemSpace::kGlobal).loads,
            global_run.counters.of(gpusim::MemSpace::kGlobal).loads);
}

TEST(LbKernel, JohnsonMatrixAccessCountsMatchTableI) {
  // Every thread scans the full Johnson row per machine pair: exactly
  // n * p JM loads per node, regardless of depth.
  const fsp::Instance inst = fsp::taillard_instance(1);  // 20x5
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  const DeviceLbData dev_data(
      device, data,
      make_placement_plan(PlacementPolicy::kAllGlobal, data, device.spec()));

  const int count = 128;
  const auto nodes = random_pool(inst, count, 5);
  PackedPool packed = PackedPool::pack(nodes, inst.jobs());
  DevicePool pool = DevicePool::upload(device, packed);
  const auto run = launch_lb1_kernel(device, dev_data, pool, 128);

  const auto jm_per_eval =
      static_cast<std::uint64_t>(data.accesses_per_eval(0).jm);
  // JM lives in its own buffer; with all-global placement its loads are
  // indistinguishable from other global loads, so re-run with JM alone in
  // shared memory to isolate the count.
  const DeviceLbData jm_shared(
      device, data,
      make_placement_plan(PlacementPolicy::kSharedJm, data, device.spec()));
  DevicePool pool2 = DevicePool::upload(device, packed);
  const auto run2 = launch_lb1_kernel(device, jm_shared, pool2, 128);
  const auto staging = jm_shared.staged_elements_per_block() *
                       static_cast<std::uint64_t>(run2.blocks_executed);
  EXPECT_EQ(run2.counters.of(gpusim::MemSpace::kShared).loads,
            jm_per_eval * count);
  EXPECT_EQ(run2.counters.of(gpusim::MemSpace::kShared).stores, staging);
  (void)run;
}

TEST(PackedPool, PackingRoundTrips) {
  const fsp::Instance inst = fsp::taillard_instance(1);
  const auto nodes = random_pool(inst, 10, 3);
  const PackedPool packed = PackedPool::pack(nodes, inst.jobs());
  EXPECT_EQ(packed.count, 10);
  EXPECT_EQ(packed.jobs, 20);
  EXPECT_EQ(packed.h2d_bytes(), 10u * 20u + 10u * 2u);
  EXPECT_EQ(packed.d2h_bytes(), 10u * 4u);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(packed.depths[i], static_cast<std::uint16_t>(nodes[i].depth));
    for (int j = 0; j < 20; ++j) {
      EXPECT_EQ(static_cast<fsp::JobId>(
                    packed.perms[i * 20 + static_cast<std::size_t>(j)]),
                nodes[i].perm[static_cast<std::size_t>(j)]);
    }
  }
}

TEST(LbKernel, ResourceFigureMatchesThePaper) {
  const fsp::Instance inst = fsp::taillard_instance(21);
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  const DeviceLbData dev_data(
      device, data,
      make_placement_plan(PlacementPolicy::kAllGlobal, data, device.spec()));
  const auto res = lb1_kernel_resources(dev_data, 256);
  EXPECT_EQ(res.registers_per_thread, 26);  // the paper's reported figure
  EXPECT_EQ(res.block_threads, 256);
  EXPECT_EQ(res.shared_bytes_per_block, 0u);
}

}  // namespace
}  // namespace fsbb::gpubb
