#include "gpubb/adaptive_evaluator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "fsp/brute_force.h"
#include "fsp/taillard.h"

namespace fsbb::gpubb {
namespace {

fsp::Instance random_instance(int jobs, int machines, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Matrix<fsp::Time> pt(static_cast<std::size_t>(jobs),
                       static_cast<std::size_t>(machines));
  for (auto& v : pt.flat()) v = static_cast<fsp::Time>(rng.next_in(1, 50));
  return fsp::Instance("rand", std::move(pt));
}

std::vector<core::Subproblem> random_batch(const fsp::Instance& inst,
                                           int count, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<core::Subproblem> batch;
  for (int i = 0; i < count; ++i) {
    core::Subproblem sp = core::Subproblem::root(inst.jobs());
    shuffle(sp.perm, rng);
    sp.depth = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(inst.jobs())));
    batch.push_back(std::move(sp));
  }
  return batch;
}

TEST(AdaptiveEvaluator, RoutesByBatchSize) {
  const fsp::Instance inst = fsp::taillard_instance(21);
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  AdaptiveEvaluator eval(device, inst, data, PlacementPolicy::kSharedJmPtm,
                         /*cpu_threads=*/2, /*threshold=*/64);
  EXPECT_EQ(eval.threshold(), 64u);

  auto small = random_batch(inst, 10, 1);
  eval.evaluate(small);
  EXPECT_EQ(eval.cpu_batches(), 1u);
  EXPECT_EQ(eval.gpu_batches(), 0u);

  auto large = random_batch(inst, 128, 2);
  eval.evaluate(large);
  EXPECT_EQ(eval.cpu_batches(), 1u);
  EXPECT_EQ(eval.gpu_batches(), 1u);
  EXPECT_EQ(eval.ledger().nodes, 138u);
}

TEST(AdaptiveEvaluator, BothPathsProduceIdenticalBounds) {
  const fsp::Instance inst = fsp::taillard_instance(1);
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  AdaptiveEvaluator eval(device, inst, data, PlacementPolicy::kAuto, 2, 64);
  core::SerialCpuEvaluator reference(inst, data);

  auto batch_small = random_batch(inst, 20, 5);   // CPU path
  auto batch_large = random_batch(inst, 200, 6);  // GPU path
  auto ref_small = batch_small;
  auto ref_large = batch_large;
  eval.evaluate(batch_small);
  eval.evaluate(batch_large);
  reference.evaluate(ref_small);
  reference.evaluate(ref_large);
  for (std::size_t i = 0; i < batch_small.size(); ++i) {
    ASSERT_EQ(batch_small[i].lb, ref_small[i].lb);
  }
  for (std::size_t i = 0; i < batch_large.size(); ++i) {
    ASSERT_EQ(batch_large[i].lb, ref_large[i].lb);
  }
}

TEST(AdaptiveEvaluator, DerivedThresholdIsAWholeNumberOfBlocks) {
  const fsp::Instance inst = fsp::taillard_instance(21);
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  AdaptiveEvaluator eval(device, inst, data, PlacementPolicy::kSharedJmPtm, 4);
  EXPECT_GT(eval.threshold(), 0u);
  EXPECT_EQ(eval.threshold() %
                static_cast<std::size_t>(eval.gpu().block_threads()),
            0u);
  // The break-even must be well below the paper's best pool sizes.
  EXPECT_LE(eval.threshold(), 262144u);
}

TEST(AdaptiveEvaluator, EngineSolvesToTheOptimum) {
  const fsp::Instance inst = random_instance(8, 5, 77);
  const auto data = fsp::LowerBoundData::build(inst);
  const auto opt = fsp::brute_force(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  AdaptiveEvaluator eval(device, inst, data, PlacementPolicy::kAuto,
                         /*cpu_threads=*/2, /*threshold=*/32);
  core::EngineOptions options;
  options.batch_size = 64;  // above and below threshold across the run
  core::BBEngine engine(inst, data, eval, options);
  const auto result = engine.solve();
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.best_makespan, opt.makespan);
  EXPECT_GT(eval.cpu_batches() + eval.gpu_batches(), 0u);
}

TEST(AdaptiveEvaluator, NameDescribesRoutingSetup) {
  const fsp::Instance inst = fsp::taillard_instance(1);
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  AdaptiveEvaluator eval(device, inst, data, PlacementPolicy::kAllGlobal, 3,
                         128);
  EXPECT_NE(eval.name().find("adaptive["), std::string::npos);
  EXPECT_NE(eval.name().find("@128"), std::string::npos);
}

}  // namespace
}  // namespace fsbb::gpubb
