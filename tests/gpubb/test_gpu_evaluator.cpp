#include "gpubb/gpu_evaluator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "fsp/brute_force.h"
#include "fsp/taillard.h"

namespace fsbb::gpubb {
namespace {

fsp::Instance random_instance(int jobs, int machines, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Matrix<fsp::Time> pt(static_cast<std::size_t>(jobs),
                       static_cast<std::size_t>(machines));
  for (auto& v : pt.flat()) v = static_cast<fsp::Time>(rng.next_in(1, 50));
  return fsp::Instance("rand", std::move(pt));
}

TEST(GpuBoundEvaluator, MatchesSerialBoundsExactly) {
  const fsp::Instance inst = fsp::taillard_instance(21);
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());

  SplitMix64 rng(77);
  std::vector<core::Subproblem> gpu_batch;
  for (int i = 0; i < 200; ++i) {
    core::Subproblem sp = core::Subproblem::root(inst.jobs());
    shuffle(sp.perm, rng);
    sp.depth = static_cast<std::int32_t>(rng.next_below(20));
    gpu_batch.push_back(std::move(sp));
  }
  auto cpu_batch = gpu_batch;

  GpuBoundEvaluator gpu(device, inst, data, PlacementPolicy::kSharedJmPtm);
  core::SerialCpuEvaluator cpu(inst, data);
  gpu.evaluate(gpu_batch);
  cpu.evaluate(cpu_batch);
  for (std::size_t i = 0; i < gpu_batch.size(); ++i) {
    ASSERT_EQ(gpu_batch[i].lb, cpu_batch[i].lb);
  }
}

class GpuEngineVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(GpuEngineVsBruteForce, HybridEngineFindsTheOptimum) {
  // The full paper pipeline at miniature scale: CPU branches, the
  // simulated GPU bounds pools of children, elimination prunes.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const fsp::Instance inst = random_instance(8, 4 + GetParam() % 3, seed);
  const auto data = fsp::LowerBoundData::build(inst);
  const auto opt = fsp::brute_force(inst);

  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  GpuBoundEvaluator gpu(device, inst, data, PlacementPolicy::kAuto);
  core::EngineOptions options;
  options.batch_size = 64;  // pool size of the offload
  core::BBEngine engine(inst, data, gpu, options);
  const core::SolveResult result = engine.solve();

  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.best_makespan, opt.makespan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpuEngineVsBruteForce, ::testing::Range(0, 10));

TEST(GpuBoundEvaluator, LedgerTracksOffloadTraffic) {
  const fsp::Instance inst = fsp::taillard_instance(1);
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  GpuBoundEvaluator gpu(device, inst, data, PlacementPolicy::kAllGlobal);

  // Table upload is recorded at construction.
  EXPECT_EQ(gpu.gpu_ledger().transfers.h2d_transfers, 1u);
  EXPECT_EQ(gpu.gpu_ledger().launches, 0u);

  std::vector<core::Subproblem> batch;
  for (int i = 0; i < 256; ++i) {
    batch.push_back(core::Subproblem::root(inst.jobs()));
  }
  gpu.evaluate(batch);

  const GpuLedger& ledger = gpu.gpu_ledger();
  EXPECT_EQ(ledger.launches, 1u);
  EXPECT_EQ(ledger.transfers.h2d_transfers, 2u);
  EXPECT_EQ(ledger.transfers.d2h_transfers, 1u);
  EXPECT_GT(ledger.kernel_seconds, 0.0);
  EXPECT_GT(ledger.modeled_seconds(), 0.0);
  EXPECT_GT(ledger.counters.total_accesses(), 0u);
  EXPECT_EQ(gpu.ledger().nodes, 256u);

  gpu.evaluate(batch);
  EXPECT_EQ(gpu.gpu_ledger().launches, 2u);
}

TEST(GpuBoundEvaluator, OccupancyReflectsPlacement) {
  const fsp::Instance inst = fsp::taillard_instance(101);  // 200x20
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());

  const GpuBoundEvaluator global(device, inst, data,
                                 PlacementPolicy::kAllGlobal);
  const GpuBoundEvaluator shared(device, inst, data,
                                 PlacementPolicy::kSharedJmPtm);
  EXPECT_EQ(global.occupancy().active_warps, 32);  // register-limited
  EXPECT_LT(shared.occupancy().active_warps, 32);  // smem-limited
}

TEST(GpuBoundEvaluator, NameMentionsThePolicy) {
  const fsp::Instance inst = fsp::taillard_instance(1);
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  GpuBoundEvaluator gpu(device, inst, data, PlacementPolicy::kSharedJmPtm);
  EXPECT_NE(gpu.name().find("shared-JM+PTM"), std::string::npos);
}

}  // namespace
}  // namespace fsbb::gpubb
