#include "gpubb/device_lb_data.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "fsp/taillard.h"

namespace fsbb::gpubb {
namespace {

TEST(DeviceLbData, PackedValuesRoundTrip) {
  const auto inst = fsp::taillard_instance(21);  // 20x20
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  const PlacementPlan plan =
      make_placement_plan(PlacementPolicy::kAllGlobal, data, device.spec());
  const DeviceLbData dev(device, data, plan);

  const auto n = static_cast<std::size_t>(data.jobs());
  const auto p = static_cast<std::size_t>(data.pairs());
  for (int j = 0; j < data.jobs(); ++j) {
    for (int k = 0; k < data.machines(); ++k) {
      ASSERT_EQ(static_cast<fsp::Time>(
                    dev.ptm().data[static_cast<std::size_t>(j) *
                                       static_cast<std::size_t>(data.machines()) +
                                   static_cast<std::size_t>(k)]),
                data.ptm(j, k));
    }
    for (int s = 0; s < data.pairs(); ++s) {
      ASSERT_EQ(static_cast<fsp::Time>(
                    dev.lm().data[static_cast<std::size_t>(j) * p +
                                  static_cast<std::size_t>(s)]),
                data.lm(j, s));
    }
  }
  for (int s = 0; s < data.pairs(); ++s) {
    for (int i = 0; i < data.jobs(); ++i) {
      ASSERT_EQ(static_cast<fsp::JobId>(
                    dev.jm().data[static_cast<std::size_t>(s) * n +
                                  static_cast<std::size_t>(i)]),
                data.jm(s, i));
    }
    ASSERT_EQ(dev.mm().data[2 * static_cast<std::size_t>(s)], data.mm(s).k);
    ASSERT_EQ(dev.mm().data[2 * static_cast<std::size_t>(s) + 1],
              data.mm(s).l);
  }
  for (int k = 0; k < data.machines(); ++k) {
    ASSERT_EQ(dev.rm().data[static_cast<std::size_t>(k)], data.rm(k));
    ASSERT_EQ(dev.qm().data[static_cast<std::size_t>(k)], data.qm(k));
  }
}

TEST(DeviceLbData, SpaceTagsFollowThePlan) {
  const auto inst = fsp::taillard_instance(21);
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  const PlacementPlan plan =
      make_placement_plan(PlacementPolicy::kSharedJmPtm, data, device.spec());
  const DeviceLbData dev(device, data, plan);
  EXPECT_EQ(dev.jm().space, gpusim::MemSpace::kShared);
  EXPECT_EQ(dev.ptm().space, gpusim::MemSpace::kShared);
  EXPECT_EQ(dev.lm().space, gpusim::MemSpace::kGlobal);
  EXPECT_EQ(dev.rm().space, gpusim::MemSpace::kGlobal);
}

TEST(DeviceLbData, UploadBytesAreThePackedTotal) {
  const auto inst = fsp::taillard_instance(101);  // 200x20
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  const PlacementPlan plan =
      make_placement_plan(PlacementPolicy::kAllGlobal, data, device.spec());
  const DeviceLbData dev(device, data, plan);
  EXPECT_EQ(dev.upload_bytes(), PackedSizes::from(data).total());
}

TEST(DeviceLbData, StagingCountsOnlySharedStructures) {
  const auto inst = fsp::taillard_instance(21);  // 20x20
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());

  const DeviceLbData all_global(
      device, data,
      make_placement_plan(PlacementPolicy::kAllGlobal, data, device.spec()));
  EXPECT_EQ(all_global.staged_elements_per_block(), 0u);

  const DeviceLbData shared(
      device, data,
      make_placement_plan(PlacementPolicy::kSharedJmPtm, data, device.spec()));
  // JM: 190*20 entries + PTM: 20*20 entries.
  EXPECT_EQ(shared.staged_elements_per_block(), 190u * 20u + 20u * 20u);

  gpusim::AccessCounters counters;
  shared.account_block_staging(counters);
  EXPECT_EQ(counters.of(gpusim::MemSpace::kGlobal).loads, 4200u);
  EXPECT_EQ(counters.of(gpusim::MemSpace::kShared).stores, 4200u);
}

TEST(DeviceLbData, RejectsInstancesBeyondPackedRanges) {
  // 300 jobs exceeds the u8 job-id packing (the paper's GPU path also
  // stops at 200 jobs).
  const auto inst = fsp::make_taillard_instance(300, 5, 12345);
  const auto data = fsp::LowerBoundData::build(inst);
  gpusim::SimDevice device(gpusim::DeviceSpec::tesla_c2050());
  const PlacementPlan plan =
      make_placement_plan(PlacementPolicy::kAllGlobal, data, device.spec());
  EXPECT_THROW(DeviceLbData(device, data, plan), CheckFailure);
}

}  // namespace
}  // namespace fsbb::gpubb
