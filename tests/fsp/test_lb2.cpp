#include "fsp/lb2.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "fsp/brute_force.h"
#include "fsp/generators.h"
#include "fsp/makespan.h"
#include "fsp/taillard.h"

namespace fsbb::fsp {
namespace {

Instance random_instance(int jobs, int machines, std::uint64_t seed) {
  return make_instance(InstanceFamily::kUniform, jobs, machines, seed);
}

class Lb2Random : public ::testing::TestWithParam<int> {};

TEST_P(Lb2Random, ValidAtEveryDepth) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  SplitMix64 rng(seed * 101 + 7);
  const Instance inst = random_instance(7, 3 + GetParam() % 4, seed);
  const auto lb1_data = LowerBoundData::build(inst);
  const auto lb2_data = Lb2Data::build(inst);

  auto perm = identity_permutation(inst.jobs());
  shuffle(perm, rng);
  for (int depth = 0; depth <= inst.jobs(); ++depth) {
    const std::span<const JobId> prefix(perm.data(),
                                        static_cast<std::size_t>(depth));
    const Time lb = lb2_from_prefix(inst, lb1_data, lb2_data, prefix);
    ASSERT_LE(lb, brute_force_completion(inst, prefix).makespan)
        << "depth " << depth;
  }
}

TEST_P(Lb2Random, DominatesLb1NodeForNode) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  SplitMix64 rng(seed * 31 + 11);
  const Instance inst = random_instance(9, 5, seed);
  const auto lb1_data = LowerBoundData::build(inst);
  const auto lb2_data = Lb2Data::build(inst);

  auto perm = identity_permutation(inst.jobs());
  shuffle(perm, rng);
  for (int depth = 0; depth < inst.jobs(); ++depth) {
    const std::span<const JobId> prefix(perm.data(),
                                        static_cast<std::size_t>(depth));
    ASSERT_GE(lb2_from_prefix(inst, lb1_data, lb2_data, prefix),
              lb1_from_prefix(inst, lb1_data, prefix))
        << "depth " << depth;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lb2Random, ::testing::Range(0, 20));

TEST(Lb2, RootEqualsLb1AtTheRoot) {
  // With nothing scheduled, U is the full job set, so LB2's minima equal
  // LB1's static ones and the bounds coincide.
  const Instance inst = taillard_instance(21);
  const auto lb1_data = LowerBoundData::build(inst);
  const auto lb2_data = Lb2Data::build(inst);
  EXPECT_EQ(lb2_from_prefix(inst, lb1_data, lb2_data, {}),
            lb1_from_prefix(inst, lb1_data, {}));
}

TEST(Lb2, CompleteScheduleReturnsExactMakespan) {
  SplitMix64 rng(5);
  const Instance inst = random_instance(10, 6, 3);
  const auto lb1_data = LowerBoundData::build(inst);
  const auto lb2_data = Lb2Data::build(inst);
  auto perm = identity_permutation(inst.jobs());
  shuffle(perm, rng);
  EXPECT_EQ(lb2_from_prefix(inst, lb1_data, lb2_data, perm),
            makespan(inst, perm));
}

TEST(Lb2, StrictlyStrongerSomewhere) {
  // On uniform instances LB2 must actually improve on LB1 for at least one
  // mid-tree node — otherwise the extra sweep is pointless.
  SplitMix64 rng(17);
  bool improved = false;
  for (std::uint64_t seed = 0; seed < 20 && !improved; ++seed) {
    const Instance inst = random_instance(10, 6, seed);
    const auto lb1_data = LowerBoundData::build(inst);
    const auto lb2_data = Lb2Data::build(inst);
    auto perm = identity_permutation(inst.jobs());
    shuffle(perm, rng);
    for (int depth = 2; depth <= 6; ++depth) {
      const std::span<const JobId> prefix(perm.data(),
                                          static_cast<std::size_t>(depth));
      if (lb2_from_prefix(inst, lb1_data, lb2_data, prefix) >
          lb1_from_prefix(inst, lb1_data, prefix)) {
        improved = true;
        break;
      }
    }
  }
  EXPECT_TRUE(improved);
}

// ---- the incremental sibling-batch context ------------------------------

class Lb2ContextRandom : public ::testing::TestWithParam<int> {};

TEST_P(Lb2ContextRandom, BoundChildIsBitIdenticalToPrefixReplay) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 53 + 1;
  SplitMix64 rng(seed);
  const Instance inst = random_instance(8, 2 + GetParam() % 7, seed);
  const auto lb1_data = LowerBoundData::build(inst);
  const auto lb2_data = Lb2Data::build(inst);
  Lb2BoundContext ctx(inst, lb1_data, lb2_data);

  auto perm = identity_permutation(inst.jobs());
  shuffle(perm, rng);
  // Every depth, every sibling: the two-smallest incremental bound must
  // equal the full replay of the child's prefix.
  std::vector<JobId> child_prefix;
  for (int depth = 0; depth < inst.jobs(); ++depth) {
    const std::span<const JobId> prefix(perm.data(),
                                        static_cast<std::size_t>(depth));
    ctx.set_parent(prefix);
    ASSERT_EQ(ctx.free_count(), inst.jobs() - depth) << "depth " << depth;
    for (int i = depth; i < inst.jobs(); ++i) {
      const JobId job = perm[static_cast<std::size_t>(i)];
      child_prefix.assign(prefix.begin(), prefix.end());
      child_prefix.push_back(job);
      ASSERT_EQ(ctx.bound_child(job),
                lb2_from_prefix(inst, lb1_data, lb2_data, child_prefix))
          << "depth " << depth << " job " << job;
    }
  }
}

TEST_P(Lb2ContextRandom, TiedMinimaStayBitIdentical) {
  // Duplicate processing times force ties in the per-machine two-smallest
  // head/tail minima; removal of the argmin vs a duplicate must still give
  // the true min over U \ {j}.
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 19 + 3;
  SplitMix64 rng(seed);
  Matrix<Time> pt(9, 4);
  for (auto& v : pt.flat()) v = static_cast<Time>(1 + rng.next_below(4));
  const Instance inst("ties", std::move(pt));
  const auto lb1_data = LowerBoundData::build(inst);
  const auto lb2_data = Lb2Data::build(inst);
  Lb2BoundContext ctx(inst, lb1_data, lb2_data);

  auto perm = identity_permutation(inst.jobs());
  shuffle(perm, rng);
  std::vector<JobId> child_prefix;
  for (int depth = 0; depth < inst.jobs(); ++depth) {
    const std::span<const JobId> prefix(perm.data(),
                                        static_cast<std::size_t>(depth));
    ctx.set_parent(prefix);
    for (int i = depth; i < inst.jobs(); ++i) {
      const JobId job = perm[static_cast<std::size_t>(i)];
      child_prefix.assign(prefix.begin(), prefix.end());
      child_prefix.push_back(job);
      ASSERT_EQ(ctx.bound_child(job),
                lb2_from_prefix(inst, lb1_data, lb2_data, child_prefix))
          << "depth " << depth << " job " << job;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lb2ContextRandom, ::testing::Range(0, 20));

TEST(Lb2BoundContext, RebindingParentsIsClean) {
  // One context across many parents (the evaluator usage pattern): no
  // state may leak between set_parent calls.
  const Instance inst = taillard_instance(1);
  const auto lb1_data = LowerBoundData::build(inst);
  const auto lb2_data = Lb2Data::build(inst);
  Lb2BoundContext ctx(inst, lb1_data, lb2_data);
  SplitMix64 rng(77);
  auto perm = identity_permutation(inst.jobs());

  for (int round = 0; round < 10; ++round) {
    shuffle(perm, rng);
    const auto depth = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(inst.jobs())));
    const std::span<const JobId> prefix(perm.data(), depth);
    ctx.set_parent(prefix);
    const JobId job = perm[depth];
    std::vector<JobId> child_prefix(prefix.begin(), prefix.end());
    child_prefix.push_back(job);
    ASSERT_EQ(ctx.bound_child(job),
              lb2_from_prefix(inst, lb1_data, lb2_data, child_prefix))
        << "round " << round;
  }
}

TEST(Lb2BoundContext, CompleteChildBoundEqualsMakespan) {
  // Binding the parent at depth n-1 and scheduling the last job must give
  // the exact makespan.
  const Instance inst = random_instance(8, 5, 123);
  const auto lb1_data = LowerBoundData::build(inst);
  const auto lb2_data = Lb2Data::build(inst);
  Lb2BoundContext ctx(inst, lb1_data, lb2_data);
  SplitMix64 rng(5);
  auto perm = identity_permutation(inst.jobs());
  shuffle(perm, rng);
  const std::span<const JobId> prefix(perm.data(), perm.size() - 1);
  ctx.set_parent(prefix);
  EXPECT_EQ(ctx.bound_child(perm.back()), makespan(inst, perm));
}

TEST(Lb2, HeadTailMatricesAreConsistent) {
  const Instance inst = taillard_instance(1);
  const auto lb2_data = Lb2Data::build(inst);
  for (int j = 0; j < inst.jobs(); ++j) {
    EXPECT_EQ(lb2_data.head(j, 0), 0);
    EXPECT_EQ(lb2_data.tail(j, inst.machines() - 1), 0);
    // head(k) + pt(k) + tail(k) is the job's total work, for every k.
    Time total = 0;
    for (int k = 0; k < inst.machines(); ++k) total += inst.pt(j, k);
    for (int k = 0; k < inst.machines(); ++k) {
      ASSERT_EQ(lb2_data.head(j, k) + inst.pt(j, k) + lb2_data.tail(j, k),
                total);
    }
  }
}

}  // namespace
}  // namespace fsbb::fsp
