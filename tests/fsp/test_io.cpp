#include "fsp/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "fsp/taillard.h"

namespace fsbb::fsp {
namespace {

TEST(Io, RoundTripPreservesEverything) {
  const Instance inst = taillard_instance(1);
  std::stringstream ss;
  write_taillard_stream(ss, inst, /*time_seed=*/873654221,
                        /*upper_bound=*/1278, /*lower_bound=*/1232);
  const auto records = read_taillard_stream(ss);
  ASSERT_EQ(records.size(), 1u);
  const InstanceRecord& rec = records.front();
  EXPECT_EQ(rec.instance.ptm(), inst.ptm());
  EXPECT_EQ(rec.time_seed, 873654221);
  ASSERT_TRUE(rec.published_upper_bound.has_value());
  EXPECT_EQ(*rec.published_upper_bound, 1278);
  ASSERT_TRUE(rec.published_lower_bound.has_value());
  EXPECT_EQ(*rec.published_lower_bound, 1232);
}

TEST(Io, ParsesTheCanonicalTextLayout) {
  const std::string text = R"(number of jobs, number of machines, initial seed, upper bound, lower bound :
          4           3   12345        99        90
processing times :
  1  2  3  4
  5  6  7  8
  9 10 11 12
)";
  std::istringstream in(text);
  const auto records = read_taillard_stream(in);
  ASSERT_EQ(records.size(), 1u);
  const Instance& inst = records.front().instance;
  EXPECT_EQ(inst.jobs(), 4);
  EXPECT_EQ(inst.machines(), 3);
  // Matrix is machine-major in the file: row k = machine k across jobs.
  EXPECT_EQ(inst.pt(0, 0), 1);
  EXPECT_EQ(inst.pt(3, 0), 4);
  EXPECT_EQ(inst.pt(0, 2), 9);
  EXPECT_EQ(inst.pt(3, 2), 12);
}

TEST(Io, MultipleInstancesInOneStream) {
  std::stringstream ss;
  write_taillard_stream(ss, taillard_instance(1), 1);
  write_taillard_stream(ss, taillard_instance(2), 2);
  const auto records = read_taillard_stream(ss);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].instance.jobs(), 20);
  EXPECT_EQ(records[1].instance.jobs(), 20);
  EXPECT_FALSE(records[0].instance.ptm() == records[1].instance.ptm());
}

TEST(Io, ZeroBoundsBecomeNullopt) {
  std::stringstream ss;
  write_taillard_stream(ss, taillard_instance(1), 42);
  const auto records = read_taillard_stream(ss);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records.front().published_upper_bound.has_value());
  EXPECT_FALSE(records.front().published_lower_bound.has_value());
}

TEST(Io, TruncatedMatrixThrows) {
  const std::string text = R"(header :
  3 2 1 0 0
processing times :
  1 2 3
  4 5
)";
  std::istringstream in(text);
  EXPECT_THROW(read_taillard_stream(in), CheckFailure);
}

TEST(Io, NegativeTimeThrows) {
  const std::string text = "2 2 1 0 0\n1 -2\n3 4\n";
  std::istringstream in(text);
  EXPECT_THROW(read_taillard_stream(in), CheckFailure);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(read_taillard_file("/nonexistent/path/inst.txt"), CheckFailure);
}

TEST(Io, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/fsbb_io_test.txt";
  const Instance inst = taillard_instance(3);
  write_taillard_file(path, inst, 7);
  const auto records = read_taillard_file(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records.front().instance.ptm(), inst.ptm());
}

TEST(Io, EmptyStreamYieldsNoRecords) {
  std::istringstream in("");
  EXPECT_TRUE(read_taillard_stream(in).empty());
}

}  // namespace
}  // namespace fsbb::fsp
