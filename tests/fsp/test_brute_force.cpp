#include "fsp/brute_force.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "fsp/makespan.h"

namespace fsbb::fsp {
namespace {

TEST(BruteForce, TwoJobInstancePicksBetterOrder) {
  Matrix<Time> pt(2, 2);
  pt(0, 0) = 3;
  pt(0, 1) = 2;
  pt(1, 0) = 1;
  pt(1, 1) = 4;
  const Instance inst("tiny", std::move(pt));
  const BruteForceResult r = brute_force(inst);
  EXPECT_EQ(r.makespan, 7);
  EXPECT_EQ(r.permutation, (std::vector<JobId>{1, 0}));
  EXPECT_EQ(r.schedules_evaluated, 2u);
}

TEST(BruteForce, EvaluatesFactoriallyManySchedules) {
  SplitMix64 rng(5);
  Matrix<Time> pt(6, 3);
  for (auto& v : pt.flat()) v = static_cast<Time>(rng.next_in(1, 9));
  const Instance inst("6x3", std::move(pt));
  const BruteForceResult r = brute_force(inst);
  EXPECT_EQ(r.schedules_evaluated, 720u);
  EXPECT_EQ(r.makespan, makespan(inst, r.permutation));
}

TEST(BruteForce, GuardsAgainstLargeInstances) {
  Matrix<Time> pt(12, 2, 1);
  const Instance inst("12x2", std::move(pt));
  EXPECT_THROW(brute_force(inst), CheckFailure);
  EXPECT_NO_THROW(brute_force(inst, /*max_jobs=*/12));
}

TEST(BruteForceCompletion, RespectsThePrefix) {
  SplitMix64 rng(8);
  Matrix<Time> pt(6, 3);
  for (auto& v : pt.flat()) v = static_cast<Time>(rng.next_in(1, 9));
  const Instance inst("6x3", std::move(pt));

  const std::vector<JobId> prefix{2, 4};
  const BruteForceResult r = brute_force_completion(inst, prefix);
  EXPECT_EQ(r.schedules_evaluated, 24u);  // 4! completions
  ASSERT_EQ(r.permutation.size(), 6u);
  EXPECT_EQ(r.permutation[0], 2);
  EXPECT_EQ(r.permutation[1], 4);
  EXPECT_TRUE(is_valid_permutation(inst, r.permutation));
  // No completion may beat the reported optimum.
  EXPECT_LE(r.makespan, makespan(inst, std::vector<JobId>{2, 4, 0, 1, 3, 5}));
}

TEST(BruteForceCompletion, FullPrefixReturnsItsMakespan) {
  Matrix<Time> pt(3, 2, 2);
  const Instance inst("3x2", std::move(pt));
  const std::vector<JobId> perm{2, 0, 1};
  const BruteForceResult r = brute_force_completion(inst, perm);
  EXPECT_EQ(r.schedules_evaluated, 1u);
  EXPECT_EQ(r.makespan, makespan(inst, perm));
}

TEST(BruteForceCompletion, RejectsDuplicatePrefixJobs) {
  Matrix<Time> pt(4, 2, 1);
  const Instance inst("4x2", std::move(pt));
  EXPECT_THROW(brute_force_completion(inst, std::vector<JobId>{1, 1}),
               CheckFailure);
}

}  // namespace
}  // namespace fsbb::fsp
