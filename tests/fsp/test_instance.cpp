#include "fsp/instance.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace fsbb::fsp {
namespace {

Matrix<Time> small_pt() {
  Matrix<Time> pt(2, 3);
  pt(0, 0) = 1;
  pt(0, 1) = 2;
  pt(0, 2) = 3;
  pt(1, 0) = 4;
  pt(1, 1) = 5;
  pt(1, 2) = 6;
  return pt;
}

TEST(Instance, BasicAccessors) {
  const Instance inst("tiny", small_pt());
  EXPECT_EQ(inst.jobs(), 2);
  EXPECT_EQ(inst.machines(), 3);
  EXPECT_EQ(inst.name(), "tiny");
  EXPECT_EQ(inst.pt(0, 2), 3);
  EXPECT_EQ(inst.pt(1, 0), 4);
  EXPECT_EQ(inst.total_work(), 21);
}

TEST(Instance, MachinePairsFormula) {
  EXPECT_EQ(Instance("t", small_pt()).machine_pairs(), 3);  // m=3 -> 3 pairs
  Matrix<Time> pt(1, 20, 1);
  EXPECT_EQ(Instance("m20", std::move(pt)).machine_pairs(), 190);
}

TEST(Instance, RejectsEmptyDimensions) {
  EXPECT_THROW(Instance("bad", Matrix<Time>(0, 3)), CheckFailure);
  EXPECT_THROW(Instance("bad", Matrix<Time>(3, 0)), CheckFailure);
}

TEST(Instance, RejectsNegativeTimes) {
  Matrix<Time> pt(2, 2, 1);
  pt(1, 1) = -1;
  EXPECT_THROW(Instance("bad", std::move(pt)), CheckFailure);
}

TEST(Instance, ZeroTimesAreAllowed) {
  Matrix<Time> pt(2, 2, 0);
  const Instance inst("zeros", std::move(pt));
  EXPECT_EQ(inst.total_work(), 0);
}

TEST(Instance, PtmMatrixViewMatchesAccessor) {
  const Instance inst("tiny", small_pt());
  for (int j = 0; j < inst.jobs(); ++j) {
    for (int k = 0; k < inst.machines(); ++k) {
      EXPECT_EQ(inst.ptm()(j, k), inst.pt(j, k));
    }
  }
}

}  // namespace
}  // namespace fsbb::fsp
