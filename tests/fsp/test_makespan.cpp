#include "fsp/makespan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "fsp/taillard.h"

namespace fsbb::fsp {
namespace {

Instance tiny_2x2() {
  Matrix<Time> pt(2, 2);
  pt(0, 0) = 3;
  pt(0, 1) = 2;
  pt(1, 0) = 1;
  pt(1, 1) = 4;
  return Instance("2x2", std::move(pt));
}

TEST(Makespan, HandComputedTwoJobsTwoMachines) {
  const Instance inst = tiny_2x2();
  // Order (0, 1): M1 finishes 0 at 3, 1 at 4; M2: 0 at 5, 1 at max(5,4)+4=9.
  const std::vector<JobId> order01{0, 1};
  EXPECT_EQ(makespan(inst, order01), 9);
  // Order (1, 0): M1: 1 at 1, 0 at 4; M2: 1 at 5, 0 at max(5,4)+2=7.
  const std::vector<JobId> order10{1, 0};
  EXPECT_EQ(makespan(inst, order10), 7);
}

TEST(Makespan, SingleMachineIsSumOfTimes) {
  Matrix<Time> pt(4, 1);
  pt(0, 0) = 5;
  pt(1, 0) = 7;
  pt(2, 0) = 1;
  pt(3, 0) = 2;
  const Instance inst("1m", std::move(pt));
  const auto perm = identity_permutation(4);
  EXPECT_EQ(makespan(inst, perm), 15);
}

TEST(Makespan, SingleJobIsSumOverMachines) {
  Matrix<Time> pt(1, 5);
  for (int k = 0; k < 5; ++k) pt(0, k) = k + 1;
  const Instance inst("1j", std::move(pt));
  const std::vector<JobId> perm{0};
  EXPECT_EQ(makespan(inst, perm), 15);
}

TEST(Makespan, LowerBoundedByCriticalSums) {
  const Instance inst = taillard_instance(1);  // 20x5
  auto perm = identity_permutation(inst.jobs());
  const Time ms = makespan(inst, perm);

  Time max_machine_load = 0;
  for (int k = 0; k < inst.machines(); ++k) {
    Time load = 0;
    for (int j = 0; j < inst.jobs(); ++j) load += inst.pt(j, k);
    max_machine_load = std::max(max_machine_load, load);
  }
  Time max_job_total = 0;
  for (int j = 0; j < inst.jobs(); ++j) {
    Time total = 0;
    for (int k = 0; k < inst.machines(); ++k) total += inst.pt(j, k);
    max_job_total = std::max(max_job_total, total);
  }
  EXPECT_GE(ms, max_machine_load);
  EXPECT_GE(ms, max_job_total);
  EXPECT_LE(ms, inst.total_work());
}

TEST(Fronts, IncrementalMatchesBatchReplay) {
  const Instance inst = taillard_instance(21);  // 20x20
  SplitMix64 rng(7);
  auto perm = identity_permutation(inst.jobs());
  shuffle(perm, rng);

  std::vector<Time> inc(static_cast<std::size_t>(inst.machines()), 0);
  for (std::size_t depth = 0; depth <= 10; ++depth) {
    std::vector<Time> batch(static_cast<std::size_t>(inst.machines()));
    compute_fronts(inst, std::span<const JobId>(perm.data(), depth), batch);
    EXPECT_EQ(inc, batch) << "depth " << depth;
    if (depth < 10) extend_fronts(inst, perm[depth], inc);
  }
}

TEST(Fronts, LastFrontOfFullPermIsMakespan) {
  const Instance inst = taillard_instance(1);
  auto perm = identity_permutation(inst.jobs());
  std::vector<Time> fronts(static_cast<std::size_t>(inst.machines()));
  compute_fronts(inst, perm, fronts);
  EXPECT_EQ(fronts.back(), makespan(inst, perm));
}

TEST(CompletionMatrix, RowsAreMonotoneAndMatchMakespan) {
  const Instance inst = taillard_instance(1);
  const auto perm = identity_permutation(inst.jobs());
  const Matrix<Time> c = completion_matrix(inst, perm);
  ASSERT_EQ(c.rows(), static_cast<std::size_t>(inst.jobs()));
  ASSERT_EQ(c.cols(), static_cast<std::size_t>(inst.machines()));
  EXPECT_EQ(c(c.rows() - 1, c.cols() - 1), makespan(inst, perm));
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t k = 1; k < c.cols(); ++k) {
      EXPECT_GT(c(i, k), c(i, k - 1));  // strictly later down the line (pt >= 1)
    }
    if (i > 0) {
      for (std::size_t k = 0; k < c.cols(); ++k) {
        EXPECT_GT(c(i, k), c(i - 1, k));  // each machine processes in order
      }
    }
  }
}

TEST(Validation, DetectsBadPermutations) {
  const Instance inst = tiny_2x2();
  EXPECT_TRUE(is_valid_permutation(inst, std::vector<JobId>{0, 1}));
  EXPECT_TRUE(is_valid_permutation(inst, std::vector<JobId>{1, 0}));
  EXPECT_FALSE(is_valid_permutation(inst, std::vector<JobId>{0, 0}));
  EXPECT_FALSE(is_valid_permutation(inst, std::vector<JobId>{0}));
  EXPECT_FALSE(is_valid_permutation(inst, std::vector<JobId>{0, 2}));
  EXPECT_FALSE(is_valid_permutation(inst, std::vector<JobId>{-1, 1}));
}

TEST(Validation, IdentityPermutation) {
  const auto perm = identity_permutation(5);
  ASSERT_EQ(perm.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(perm[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace fsbb::fsp
