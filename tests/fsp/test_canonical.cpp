// Canonical instance form: the digest must collide exactly on the safe
// symmetries (job relabeling, machine reversal, instance name) and on
// nothing else, and schedule translation through canonical space must
// preserve makespans — the properties the serving-layer result cache
// leans on for correctness.
#include "fsp/canonical.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "common/rng.h"
#include "fsp/generators.h"
#include "fsp/makespan.h"
#include "fsp/taillard.h"

namespace fsbb::fsp {
namespace {

Instance base_instance(int jobs, int machines, std::int32_t seed) {
  return make_taillard_instance(jobs, machines, seed,
                                "canon-base");
}

/// Rebuilds `inst` with its job rows permuted by `perm` and, optionally,
/// its machine axis reversed — the two symmetries the digest quotients by.
Instance transformed(const Instance& inst, const std::vector<JobId>& perm,
                     bool reverse_machines, const std::string& name) {
  const int n = inst.jobs();
  const int m = inst.machines();
  Matrix<Time> pt(static_cast<std::size_t>(n), static_cast<std::size_t>(m));
  for (int j = 0; j < n; ++j) {
    for (int k = 0; k < m; ++k) {
      pt(static_cast<std::size_t>(j), static_cast<std::size_t>(k)) =
          inst.pt(perm[static_cast<std::size_t>(j)],
                  reverse_machines ? m - 1 - k : k);
    }
  }
  return Instance(name, std::move(pt));
}

std::vector<JobId> random_permutation(int n, SplitMix64& rng) {
  std::vector<JobId> perm = identity_permutation(n);
  shuffle(perm, rng);
  return perm;
}

TEST(CanonicalForm, DigestIgnoresInstanceName) {
  const Instance a = base_instance(9, 5, 42);
  const Instance b = transformed(a, identity_permutation(9), false, "other");
  EXPECT_EQ(CanonicalForm::of(a).digest(), CanonicalForm::of(b).digest());
}

TEST(CanonicalForm, DigestInvariantUnderJobRelabeling) {
  SplitMix64 rng(7);
  const Instance a = base_instance(11, 6, 99);
  const std::string digest = CanonicalForm::of(a).digest();
  for (int trial = 0; trial < 10; ++trial) {
    const Instance b =
        transformed(a, random_permutation(11, rng), false, "relabel");
    EXPECT_EQ(digest, CanonicalForm::of(b).digest());
  }
}

TEST(CanonicalForm, DigestInvariantUnderMachineReversal) {
  SplitMix64 rng(13);
  const Instance a = base_instance(10, 7, 1234);
  const Instance rev = transformed(a, identity_permutation(10), true, "rev");
  EXPECT_EQ(CanonicalForm::of(a).digest(), CanonicalForm::of(rev).digest());
  // Both symmetries at once.
  const Instance both =
      transformed(a, random_permutation(10, rng), true, "both");
  EXPECT_EQ(CanonicalForm::of(a).digest(), CanonicalForm::of(both).digest());
}

// Machine order is semantically significant in a flow shop: swapping two
// inner machines changes the optimum, so it must change the digest. (This
// pins that the canonical form does NOT over-merge: only the reversal is
// a true equivalence on the machine axis.)
TEST(CanonicalForm, DigestSensitiveToInnerMachineSwap) {
  const Instance a = base_instance(9, 5, 77);
  const int n = a.jobs();
  const int m = a.machines();
  Matrix<Time> pt(static_cast<std::size_t>(n), static_cast<std::size_t>(m));
  for (int j = 0; j < n; ++j) {
    for (int k = 0; k < m; ++k) {
      int src = k;
      if (k == 1) src = 2;
      if (k == 2) src = 1;
      pt(static_cast<std::size_t>(j), static_cast<std::size_t>(k)) =
          a.pt(j, src);
    }
  }
  const Instance swapped("swapped", std::move(pt));
  EXPECT_NE(CanonicalForm::of(a).digest(),
            CanonicalForm::of(swapped).digest());
}

TEST(CanonicalForm, TranslationRoundTripsAndPreservesMakespan) {
  SplitMix64 rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 6 + static_cast<int>(rng.next_below(6));
    const int m = 3 + static_cast<int>(rng.next_below(4));
    const Instance a = base_instance(n, m, 1000 + trial);
    const Instance b = transformed(a, random_permutation(n, rng),
                                   (trial % 2) == 1, "twin");
    const CanonicalForm fa = CanonicalForm::of(a);
    const CanonicalForm fb = CanonicalForm::of(b);
    ASSERT_EQ(fa.digest(), fb.digest());

    const std::vector<JobId> perm_a = random_permutation(n, rng);
    // Identity round trip on one form...
    EXPECT_EQ(perm_a, fa.from_canonical(fa.to_canonical(perm_a)));
    // ...and the cache path across the two: a schedule of A, shipped
    // through canonical space, lands on B with the same makespan.
    const std::vector<JobId> perm_b =
        fb.from_canonical(fa.to_canonical(perm_a));
    ASSERT_TRUE(is_valid_permutation(b, perm_b));
    EXPECT_EQ(makespan(a, perm_a), makespan(b, perm_b));
  }
}

// Collision sanity over the synthetic-family fuzz corpus: hundreds of
// genuinely different instances must produce hundreds of different
// digests (the digest is 128 bits; any collision here is a bug, not luck).
TEST(CanonicalForm, NoCollisionsOverGeneratorCorpus) {
  std::set<std::string> digests;
  std::size_t count = 0;
  for (const InstanceFamily family :
       {InstanceFamily::kUniform, InstanceFamily::kJobCorrelated,
        InstanceFamily::kMachineCorrelated, InstanceFamily::kTrend,
        InstanceFamily::kTwoPlateaus}) {
    for (const auto& [jobs, machines] :
         {std::pair{8, 4}, std::pair{10, 5}, std::pair{12, 8}}) {
      for (std::uint64_t seed = 0; seed < 16; ++seed) {
        const Instance inst = make_instance(family, jobs, machines, seed);
        const CanonicalForm form = CanonicalForm::of(inst);
        EXPECT_EQ(form.digest().size(), 32u);
        digests.insert(form.digest());
        ++count;
      }
    }
  }
  EXPECT_EQ(digests.size(), count);
}

}  // namespace
}  // namespace fsbb::fsp
