#include "fsp/lb_data.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fsp/johnson.h"
#include "fsp/taillard.h"

namespace fsbb::fsp {
namespace {

class LbDataOnInstance : public ::testing::TestWithParam<int> {
 protected:
  Instance inst_ = taillard_instance(GetParam());
  LowerBoundData data_ = LowerBoundData::build(inst_);
};

TEST_P(LbDataOnInstance, DimensionsMatchTableI) {
  const int n = inst_.jobs();
  const int m = inst_.machines();
  const int p = m * (m - 1) / 2;
  EXPECT_EQ(data_.jobs(), n);
  EXPECT_EQ(data_.machines(), m);
  EXPECT_EQ(data_.pairs(), p);
  EXPECT_EQ(data_.ptm_matrix().rows(), static_cast<std::size_t>(n));
  EXPECT_EQ(data_.ptm_matrix().cols(), static_cast<std::size_t>(m));
  EXPECT_EQ(data_.lm_matrix().rows(), static_cast<std::size_t>(n));
  EXPECT_EQ(data_.lm_matrix().cols(), static_cast<std::size_t>(p));
  EXPECT_EQ(data_.jm_matrix().rows(), static_cast<std::size_t>(p));
  EXPECT_EQ(data_.jm_matrix().cols(), static_cast<std::size_t>(n));
  EXPECT_EQ(data_.rm_span().size(), static_cast<std::size_t>(m));
  EXPECT_EQ(data_.qm_span().size(), static_cast<std::size_t>(m));
  EXPECT_EQ(data_.mm_span().size(), static_cast<std::size_t>(p));
}

TEST_P(LbDataOnInstance, MachinePairsAreOrderedCouples) {
  int idx = 0;
  for (int k = 0; k < inst_.machines(); ++k) {
    for (int l = k + 1; l < inst_.machines(); ++l) {
      EXPECT_EQ(data_.mm(idx).k, k);
      EXPECT_EQ(data_.mm(idx).l, l);
      ++idx;
    }
  }
  EXPECT_EQ(idx, data_.pairs());
}

TEST_P(LbDataOnInstance, LagsArePartialSumsBetweenPair) {
  for (int s = 0; s < data_.pairs(); ++s) {
    const auto [k, l] = data_.mm(s);
    for (int j = 0; j < inst_.jobs(); ++j) {
      Time expect = 0;
      for (int u = k + 1; u < l; ++u) expect += inst_.pt(j, u);
      ASSERT_EQ(data_.lm(j, s), expect) << "job " << j << " pair " << s;
    }
  }
}

TEST_P(LbDataOnInstance, AdjacentPairsHaveZeroLag) {
  for (int s = 0; s < data_.pairs(); ++s) {
    const auto [k, l] = data_.mm(s);
    if (l == k + 1) {
      for (int j = 0; j < inst_.jobs(); ++j) EXPECT_EQ(data_.lm(j, s), 0);
    }
  }
}

TEST_P(LbDataOnInstance, JohnsonRowsArePermutations) {
  for (int s = 0; s < data_.pairs(); ++s) {
    std::vector<JobId> row(data_.jm_matrix().row(s).begin(),
                           data_.jm_matrix().row(s).end());
    std::sort(row.begin(), row.end());
    for (int j = 0; j < inst_.jobs(); ++j) {
      ASSERT_EQ(row[static_cast<std::size_t>(j)], j) << "pair " << s;
    }
  }
}

TEST_P(LbDataOnInstance, JohnsonRowsMatchDirectConstruction) {
  // Spot-check the first and last machine pair against johnson_order_with_lags.
  for (const int s : {0, data_.pairs() - 1}) {
    const auto [k, l] = data_.mm(s);
    std::vector<Time> a, b, lags;
    for (int j = 0; j < inst_.jobs(); ++j) {
      a.push_back(inst_.pt(j, k));
      b.push_back(inst_.pt(j, l));
      lags.push_back(data_.lm(j, s));
    }
    const auto expect = johnson_order_with_lags(a, b, lags);
    for (int i = 0; i < inst_.jobs(); ++i) {
      ASSERT_EQ(data_.jm(s, i), expect[static_cast<std::size_t>(i)]);
    }
  }
}

TEST_P(LbDataOnInstance, HeadAndTailMinimaDefinitions) {
  const int n = inst_.jobs();
  const int m = inst_.machines();
  for (int k = 0; k < m; ++k) {
    Time min_head = std::numeric_limits<Time>::max();
    Time min_tail = std::numeric_limits<Time>::max();
    for (int j = 0; j < n; ++j) {
      Time head = 0;
      for (int u = 0; u < k; ++u) head += inst_.pt(j, u);
      Time tail = 0;
      for (int u = k + 1; u < m; ++u) tail += inst_.pt(j, u);
      min_head = std::min(min_head, head);
      min_tail = std::min(min_tail, tail);
    }
    EXPECT_EQ(data_.rm(k), min_head);
    EXPECT_EQ(data_.qm(k), min_tail);
  }
  EXPECT_EQ(data_.rm(0), 0);      // no machine before the first
  EXPECT_EQ(data_.qm(m - 1), 0);  // no machine after the last
}

INSTANTIATE_TEST_SUITE_P(TaillardSmall, LbDataOnInstance,
                         ::testing::Values(1, 11, 21));

TEST(LbDataSizes, HostSizesForPaperInstance) {
  const Instance inst = taillard_instance(101);  // 200x20
  const LowerBoundData data = LowerBoundData::build(inst);
  const auto sizes = data.host_sizes();
  EXPECT_EQ(sizes.ptm, 200u * 20u * sizeof(Time));
  EXPECT_EQ(sizes.lm, 200u * 190u * sizeof(Time));
  EXPECT_EQ(sizes.jm, 190u * 200u * sizeof(JobId));
  EXPECT_EQ(sizes.rm, 20u * sizeof(Time));
  EXPECT_EQ(sizes.qm, 20u * sizeof(Time));
  EXPECT_EQ(sizes.mm, 190u * sizeof(MachinePair));
  EXPECT_EQ(sizes.total(),
            sizes.ptm + sizes.lm + sizes.jm + sizes.rm + sizes.qm + sizes.mm);
}

TEST(LbDataAccessCounts, MatchTableIFormulas) {
  const Instance inst = taillard_instance(21);  // 20x20
  const LowerBoundData data = LowerBoundData::build(inst);
  const auto acc = data.accesses_per_eval(/*n_remaining=*/15);
  const std::int64_t m = 20;
  const std::int64_t p = m * (m - 1) / 2;
  EXPECT_EQ(acc.ptm, 15 * m * (m - 1));
  EXPECT_EQ(acc.lm, 15 * p);
  EXPECT_EQ(acc.jm, 20 * p);
  EXPECT_EQ(acc.rm, m * (m - 1));
  EXPECT_EQ(acc.qm, p);
  EXPECT_EQ(acc.mm, m * (m - 1));
  EXPECT_EQ(acc.total(), acc.ptm + acc.lm + acc.jm + acc.rm + acc.qm + acc.mm);
}

}  // namespace
}  // namespace fsbb::fsp
