#include "fsp/taillard.h"

#include <gtest/gtest.h>

#include <map>

#include "common/check.h"
#include "common/rng.h"

namespace fsbb::fsp {
namespace {

TEST(TaillardRegistry, HasAll120Instances) {
  const auto reg = taillard_registry();
  ASSERT_EQ(reg.size(), 120u);
  for (int i = 0; i < 120; ++i) {
    EXPECT_EQ(reg[static_cast<std::size_t>(i)].id, i + 1);
  }
}

TEST(TaillardRegistry, ClassStructure) {
  std::map<std::pair<int, int>, int> counts;
  for (const auto& spec : taillard_registry()) {
    ++counts[{spec.jobs, spec.machines}];
  }
  ASSERT_EQ(counts.size(), 12u);
  for (const auto& [cls, count] : counts) {
    EXPECT_EQ(count, 10) << cls.first << "x" << cls.second;
  }
  // The paper's four benchmark classes are present.
  EXPECT_TRUE(counts.count({20, 20}));
  EXPECT_TRUE(counts.count({50, 20}));
  EXPECT_TRUE(counts.count({100, 20}));
  EXPECT_TRUE(counts.count({200, 20}));
}

TEST(TaillardRegistry, KnownSeeds) {
  const auto reg = taillard_registry();
  EXPECT_EQ(reg[0].time_seed, 873654221);     // ta001, 20x5
  EXPECT_EQ(reg[20].time_seed, 479340445);    // ta021, 20x20
  EXPECT_EQ(reg[100].time_seed, 2013025619);  // ta101, 200x20
  EXPECT_EQ(reg[110].time_seed, 1368624604);  // ta111, 500x20
}

TEST(TaillardGenerator, MatchesPublishedScheme) {
  // Re-derive ta001's first processing times directly from the LCG to pin
  // the machine-major generation order.
  Lcg31 rng(873654221);
  const Instance inst = taillard_instance(1);
  ASSERT_EQ(inst.jobs(), 20);
  ASSERT_EQ(inst.machines(), 5);
  for (int machine = 0; machine < 5; ++machine) {
    for (int job = 0; job < 20; ++job) {
      EXPECT_EQ(inst.pt(job, machine), rng.unif(1, 99));
    }
  }
}

TEST(TaillardGenerator, TimesInPublishedRange) {
  const Instance inst = taillard_instance(21);  // 20x20
  for (int j = 0; j < inst.jobs(); ++j) {
    for (int k = 0; k < inst.machines(); ++k) {
      EXPECT_GE(inst.pt(j, k), 1);
      EXPECT_LE(inst.pt(j, k), 99);
    }
  }
}

TEST(TaillardGenerator, Deterministic) {
  const Instance a = make_taillard_instance(15, 7, 424242);
  const Instance b = make_taillard_instance(15, 7, 424242);
  EXPECT_EQ(a.ptm(), b.ptm());
  const Instance c = make_taillard_instance(15, 7, 424243);
  EXPECT_FALSE(a.ptm() == c.ptm());
}

TEST(TaillardGenerator, NamesFollowConvention) {
  EXPECT_EQ(taillard_instance(1).name(), "ta001");
  EXPECT_EQ(taillard_instance(42).name(), "ta042");
  EXPECT_EQ(taillard_instance(111).name(), "ta111");
}

TEST(TaillardGenerator, ClassRepresentative) {
  const Instance inst = taillard_class_representative(200, 20);
  EXPECT_EQ(inst.jobs(), 200);
  EXPECT_EQ(inst.machines(), 20);
  EXPECT_EQ(inst.name(), "ta101");  // first 200x20 instance
  EXPECT_THROW(taillard_class_representative(33, 3), CheckFailure);
}

TEST(TaillardGenerator, InvalidIdsThrow) {
  EXPECT_THROW(taillard_instance(0), CheckFailure);
  EXPECT_THROW(taillard_instance(121), CheckFailure);
}

}  // namespace
}  // namespace fsbb::fsp
