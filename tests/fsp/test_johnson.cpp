#include "fsp/johnson.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "fsp/brute_force.h"
#include "fsp/makespan.h"

namespace fsbb::fsp {
namespace {

// Exhaustive optimum of the 2-machine (lagged) problem by permutation scan.
Time brute_force_two_machine(std::span<const Time> a, std::span<const Time> b,
                             std::span<const Time> lags) {
  std::vector<JobId> perm(a.size());
  std::iota(perm.begin(), perm.end(), JobId{0});
  Time best = std::numeric_limits<Time>::max();
  do {
    best = std::min(best, two_machine_lag_makespan(perm, a, b, lags));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(Johnson, TextbookExample) {
  // Classic Johnson instance: optimal order starts with small-a jobs.
  const std::vector<Time> a{3, 5, 1, 6, 7};
  const std::vector<Time> b{6, 2, 2, 6, 5};
  const auto order = johnson_order(a, b);
  const std::vector<Time> zero(a.size(), 0);
  EXPECT_EQ(two_machine_lag_makespan(order, a, b, zero),
            brute_force_two_machine(a, b, zero));
}

class JohnsonRandom : public ::testing::TestWithParam<int> {};

TEST_P(JohnsonRandom, OptimalOnRandomInstances) {
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 3 + static_cast<int>(rng.next_below(5));  // 3..7 jobs
  std::vector<Time> a(static_cast<std::size_t>(n));
  std::vector<Time> b(static_cast<std::size_t>(n));
  const std::vector<Time> zero(static_cast<std::size_t>(n), 0);
  for (int j = 0; j < n; ++j) {
    a[static_cast<std::size_t>(j)] = static_cast<Time>(rng.next_in(1, 30));
    b[static_cast<std::size_t>(j)] = static_cast<Time>(rng.next_in(1, 30));
  }
  const auto order = johnson_order(a, b);
  EXPECT_EQ(two_machine_lag_makespan(order, a, b, zero),
            brute_force_two_machine(a, b, zero));
}

TEST_P(JohnsonRandom, LagVariantOptimalOnRandomInstances) {
  // Mitten: Johnson's rule on (a+l, l+b) is optimal with time lags.
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int n = 3 + static_cast<int>(rng.next_below(4));  // 3..6 jobs
  std::vector<Time> a(static_cast<std::size_t>(n));
  std::vector<Time> b(static_cast<std::size_t>(n));
  std::vector<Time> lags(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    a[static_cast<std::size_t>(j)] = static_cast<Time>(rng.next_in(1, 20));
    b[static_cast<std::size_t>(j)] = static_cast<Time>(rng.next_in(1, 20));
    lags[static_cast<std::size_t>(j)] = static_cast<Time>(rng.next_in(0, 40));
  }
  const auto order = johnson_order_with_lags(a, b, lags);
  EXPECT_EQ(two_machine_lag_makespan(order, a, b, lags),
            brute_force_two_machine(a, b, lags));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JohnsonRandom, ::testing::Range(0, 30));

TEST(Johnson, OrderIsAPermutation) {
  const std::vector<Time> a{9, 9, 9, 1};
  const std::vector<Time> b{9, 9, 9, 9};
  auto order = johnson_order(a, b);
  std::sort(order.begin(), order.end());
  for (int j = 0; j < 4; ++j) EXPECT_EQ(order[static_cast<std::size_t>(j)], j);
}

TEST(Johnson, DeterministicTieBreaking) {
  const std::vector<Time> a{5, 5, 5};
  const std::vector<Time> b{5, 5, 5};
  const auto o1 = johnson_order(a, b);
  const auto o2 = johnson_order(a, b);
  EXPECT_EQ(o1, o2);
  // All ties: job-id order within the second (a >= b) class.
  EXPECT_EQ(o1, (std::vector<JobId>{0, 1, 2}));
}

TEST(Johnson, TwoMachineMakespanRecurrence) {
  const std::vector<Time> a{2, 3};
  const std::vector<Time> b{4, 1};
  const std::vector<JobId> order{0, 1};
  // t1: 2 then 5; t2: max(0,2)+4=6 then max(6,5)+1=7.
  EXPECT_EQ(two_machine_makespan(order, a, b), 7);
}

TEST(Johnson, LagMakespanRespectsStartOffsets) {
  const std::vector<Time> a{2};
  const std::vector<Time> b{3};
  const std::vector<Time> lags{4};
  const std::vector<JobId> order{0};
  // t1 = 10+2 = 12; t2 = max(20, 12+4) + 3 = 23.
  EXPECT_EQ(two_machine_lag_makespan(order, a, b, lags, 10, 20), 23);
}

TEST(Johnson, MismatchedSizesThrow) {
  const std::vector<Time> a{1, 2};
  const std::vector<Time> b{1};
  EXPECT_THROW(johnson_order(a, b), CheckFailure);
}

}  // namespace
}  // namespace fsbb::fsp
