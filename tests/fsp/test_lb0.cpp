#include "fsp/lb_one_machine.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fsp/brute_force.h"
#include "fsp/lb1.h"
#include "fsp/makespan.h"
#include "fsp/taillard.h"

namespace fsbb::fsp {
namespace {

Instance random_instance(int jobs, int machines, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Matrix<Time> pt(static_cast<std::size_t>(jobs),
                  static_cast<std::size_t>(machines));
  for (auto& v : pt.flat()) v = static_cast<Time>(rng.next_in(1, 50));
  return Instance("rand", std::move(pt));
}

class Lb0Random : public ::testing::TestWithParam<int> {};

TEST_P(Lb0Random, RootBoundNeverExceedsOptimum) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Instance inst = random_instance(7, 3 + GetParam() % 4, seed);
  const LowerBoundData data = LowerBoundData::build(inst);
  const Time lb = lb0_from_prefix(inst, data, {});
  EXPECT_LE(lb, brute_force(inst).makespan);
  EXPECT_GT(lb, 0);
}

TEST_P(Lb0Random, PrefixBoundNeverExceedsBestCompletion) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 13 + 1;
  SplitMix64 rng(seed);
  const Instance inst = random_instance(7, 4, seed);
  const LowerBoundData data = LowerBoundData::build(inst);
  auto perm = identity_permutation(inst.jobs());
  shuffle(perm, rng);
  for (int depth = 0; depth <= inst.jobs(); ++depth) {
    const std::span<const JobId> prefix(perm.data(),
                                        static_cast<std::size_t>(depth));
    ASSERT_LE(lb0_from_prefix(inst, data, prefix),
              brute_force_completion(inst, prefix).makespan)
        << "depth " << depth;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lb0Random, ::testing::Range(0, 20));

TEST(Lb0, MachineLoadIsCovered) {
  // On a 1-machine instance LB0 equals the total load exactly.
  Matrix<Time> pt(4, 1);
  pt(0, 0) = 5;
  pt(1, 0) = 7;
  pt(2, 0) = 1;
  pt(3, 0) = 2;
  const Instance inst("1m", std::move(pt));
  const LowerBoundData data = LowerBoundData::build(inst);
  EXPECT_EQ(lb0_from_prefix(inst, data, {}), 15);
}

TEST(Lb0, CheaperButUsuallyWeakerThanLb1) {
  // LB1 dominates LB0 on the Taillard class the paper benchmarks. This is
  // an empirical property of these instances (locked as a regression), not
  // a theorem.
  const Instance inst = taillard_instance(21);
  const LowerBoundData data = LowerBoundData::build(inst);
  EXPECT_LE(lb0_from_prefix(inst, data, {}), lb1_from_prefix(inst, data, {}));
}

}  // namespace
}  // namespace fsbb::fsp
