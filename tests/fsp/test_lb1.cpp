#include "fsp/lb1.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "fsp/brute_force.h"
#include "fsp/makespan.h"
#include "fsp/taillard.h"

namespace fsbb::fsp {
namespace {

Instance random_instance(int jobs, int machines, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Matrix<Time> pt(static_cast<std::size_t>(jobs),
                  static_cast<std::size_t>(machines));
  for (auto& v : pt.flat()) v = static_cast<Time>(rng.next_in(1, 50));
  return Instance("rand", std::move(pt));
}

class Lb1Random : public ::testing::TestWithParam<int> {};

TEST_P(Lb1Random, RootBoundNeverExceedsOptimum) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Instance inst = random_instance(7, 2 + GetParam() % 5, seed);
  const LowerBoundData data = LowerBoundData::build(inst);
  const Time lb = lb1_from_prefix(inst, data, {});
  const BruteForceResult opt = brute_force(inst);
  EXPECT_LE(lb, opt.makespan) << inst.name();
  EXPECT_GT(lb, 0);
}

TEST_P(Lb1Random, PrefixBoundNeverExceedsBestCompletion) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 31 + 5;
  SplitMix64 rng(seed);
  const Instance inst = random_instance(7, 3 + GetParam() % 4, seed);
  const LowerBoundData data = LowerBoundData::build(inst);

  auto perm = identity_permutation(inst.jobs());
  shuffle(perm, rng);
  for (int depth = 0; depth <= inst.jobs(); ++depth) {
    const std::span<const JobId> prefix(perm.data(),
                                        static_cast<std::size_t>(depth));
    const Time lb = lb1_from_prefix(inst, data, prefix);
    const BruteForceResult best = brute_force_completion(inst, prefix);
    ASSERT_LE(lb, best.makespan) << "depth " << depth;
  }
}

TEST_P(Lb1Random, CompleteScheduleBoundEqualsMakespan) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 17 + 3;
  SplitMix64 rng(seed);
  const Instance inst = random_instance(8, 4, seed);
  const LowerBoundData data = LowerBoundData::build(inst);
  auto perm = identity_permutation(inst.jobs());
  shuffle(perm, rng);
  EXPECT_EQ(lb1_from_prefix(inst, data, perm), makespan(inst, perm));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lb1Random, ::testing::Range(0, 25));

TEST(Lb1, TwoMachineRootBoundIsExact) {
  // For m = 2 the relaxation is the original problem: the root LB equals
  // the Johnson optimum.
  const Instance inst = random_instance(8, 2, 99);
  const LowerBoundData data = LowerBoundData::build(inst);
  const Time lb = lb1_from_prefix(inst, data, {});
  EXPECT_EQ(lb, brute_force(inst).makespan);
}

TEST(Lb1, RootBoundOnKnownTinyInstance) {
  // 2 jobs x 2 machines, hand-checkable: optimum is 7 (order 1,0).
  Matrix<Time> pt(2, 2);
  pt(0, 0) = 3;
  pt(0, 1) = 2;
  pt(1, 0) = 1;
  pt(1, 1) = 4;
  const Instance inst("tiny", std::move(pt));
  const LowerBoundData data = LowerBoundData::build(inst);
  EXPECT_EQ(lb1_from_prefix(inst, data, {}), 7);
}

TEST(Lb1, StateAndPrefixEntrypointsAgree) {
  const Instance inst = taillard_instance(1);
  const LowerBoundData data = LowerBoundData::build(inst);
  SplitMix64 rng(4);
  auto perm = identity_permutation(inst.jobs());
  shuffle(perm, rng);
  const std::span<const JobId> prefix(perm.data(), 6);

  std::vector<Time> fronts(static_cast<std::size_t>(inst.machines()));
  std::vector<std::uint8_t> scheduled(static_cast<std::size_t>(inst.jobs()), 0);
  compute_fronts(inst, prefix, fronts);
  for (const JobId j : prefix) scheduled[static_cast<std::size_t>(j)] = 1;

  EXPECT_EQ(lb1_from_state(data, fronts, scheduled),
            lb1_from_prefix(inst, data, prefix));
}

TEST(Lb1, BoundGrowsAlongABranch) {
  // Not a theorem for arbitrary bounds, but LB1 with machine fronts is
  // monotone in practice along any chain of our branching; lock the
  // behaviour on a real instance so regressions surface.
  const Instance inst = taillard_instance(21);
  const LowerBoundData data = LowerBoundData::build(inst);
  SplitMix64 rng(11);
  auto perm = identity_permutation(inst.jobs());
  shuffle(perm, rng);
  Time prev = 0;
  for (int depth = 0; depth + 1 < inst.jobs(); ++depth) {
    const Time lb = lb1_from_prefix(
        inst, data, std::span<const JobId>(perm.data(),
                                           static_cast<std::size_t>(depth)));
    ASSERT_GE(lb, prev) << "depth " << depth;
    prev = lb;
  }
}

// ---- the incremental sibling-batch context ------------------------------

class Lb1ContextRandom : public ::testing::TestWithParam<int> {};

TEST_P(Lb1ContextRandom, IncrementalFrontsMatchComputeFronts) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 101 + 7;
  SplitMix64 rng(seed);
  const Instance inst = random_instance(9, 2 + GetParam() % 6, seed);
  const LowerBoundData data = LowerBoundData::build(inst);
  Lb1BoundContext ctx(inst, data);

  auto perm = identity_permutation(inst.jobs());
  shuffle(perm, rng);
  for (int depth = 0; depth <= inst.jobs(); ++depth) {
    const std::span<const JobId> prefix(perm.data(),
                                        static_cast<std::size_t>(depth));
    ctx.set_parent(prefix);
    std::vector<Time> expected(static_cast<std::size_t>(inst.machines()));
    compute_fronts(inst, prefix, expected);
    ASSERT_EQ(ctx.free_count(), inst.jobs() - depth) << "depth " << depth;
    for (int k = 0; k < inst.machines(); ++k) {
      ASSERT_EQ(ctx.parent_fronts()[static_cast<std::size_t>(k)],
                expected[static_cast<std::size_t>(k)])
          << "depth " << depth << " machine " << k;
    }
    for (int j = 0; j < inst.jobs(); ++j) {
      const bool in_prefix =
          std::find(prefix.begin(), prefix.end(), static_cast<JobId>(j)) !=
          prefix.end();
      ASSERT_EQ(ctx.scheduled()[static_cast<std::size_t>(j)] != 0, in_prefix)
          << "depth " << depth << " job " << j;
    }
  }
}

TEST_P(Lb1ContextRandom, BoundChildIsBitIdenticalToPrefixReplay) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 53 + 1;
  SplitMix64 rng(seed);
  const Instance inst = random_instance(8, 2 + GetParam() % 7, seed);
  const LowerBoundData data = LowerBoundData::build(inst);
  Lb1BoundContext ctx(inst, data);

  auto perm = identity_permutation(inst.jobs());
  shuffle(perm, rng);
  // Every depth, every sibling: the incremental bound must equal the
  // full O(depth m + m^2 n) replay of the child's prefix.
  std::vector<JobId> child_prefix;
  for (int depth = 0; depth < inst.jobs(); ++depth) {
    const std::span<const JobId> prefix(perm.data(),
                                        static_cast<std::size_t>(depth));
    ctx.set_parent(prefix);
    for (int i = depth; i < inst.jobs(); ++i) {
      const JobId job = perm[static_cast<std::size_t>(i)];
      child_prefix.assign(prefix.begin(), prefix.end());
      child_prefix.push_back(job);
      ASSERT_EQ(ctx.bound_child(job),
                lb1_from_prefix(inst, data, child_prefix))
          << "depth " << depth << " job " << job;
    }
  }
}

TEST_P(Lb1ContextRandom, VectorizedSweepMatchesScalarReference) {
  // The branchless position-outer sweep against the scalar couple-outer
  // oracle it replaced: bit-identical for every depth and every sibling.
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 67 + 29;
  SplitMix64 rng(seed);
  const Instance inst = random_instance(9, 2 + GetParam() % 7, seed);
  const LowerBoundData data = LowerBoundData::build(inst);
  Lb1BoundContext ctx(inst, data);

  auto perm = identity_permutation(inst.jobs());
  shuffle(perm, rng);
  for (int depth = 0; depth < inst.jobs(); ++depth) {
    const std::span<const JobId> prefix(perm.data(),
                                        static_cast<std::size_t>(depth));
    ctx.set_parent(prefix);
    for (int i = depth; i < inst.jobs(); ++i) {
      const JobId job = perm[static_cast<std::size_t>(i)];
      ASSERT_EQ(ctx.bound_child(job), ctx.bound_child_reference(job))
          << "depth " << depth << " job " << job;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lb1ContextRandom, ::testing::Range(0, 20));

TEST(Lb1BoundContext, RebindingParentsIsClean) {
  // One context across many parents (the evaluator usage pattern): no
  // state may leak between set_parent calls.
  const Instance inst = taillard_instance(1);
  const LowerBoundData data = LowerBoundData::build(inst);
  Lb1BoundContext ctx(inst, data);
  SplitMix64 rng(77);
  auto perm = identity_permutation(inst.jobs());

  for (int round = 0; round < 10; ++round) {
    shuffle(perm, rng);
    const auto depth = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(inst.jobs())));
    const std::span<const JobId> prefix(perm.data(), depth);
    ctx.set_parent(prefix);
    const JobId job = perm[depth];
    std::vector<JobId> child_prefix(prefix.begin(), prefix.end());
    child_prefix.push_back(job);
    ASSERT_EQ(ctx.bound_child(job), lb1_from_prefix(inst, data, child_prefix))
        << "round " << round;
  }
}

TEST(Lb1BoundContext, CompleteChildBoundEqualsMakespan) {
  // Binding the parent at depth n-1 and scheduling the last job must give
  // the exact makespan, like lb1_evaluate on a full schedule.
  const Instance inst = random_instance(8, 5, 123);
  const LowerBoundData data = LowerBoundData::build(inst);
  Lb1BoundContext ctx(inst, data);
  SplitMix64 rng(5);
  auto perm = identity_permutation(inst.jobs());
  shuffle(perm, rng);
  const std::span<const JobId> prefix(perm.data(), perm.size() - 1);
  ctx.set_parent(prefix);
  EXPECT_EQ(ctx.bound_child(perm.back()), makespan(inst, perm));
}

TEST(Lb1, ScratchReuseIsClean) {
  const Instance inst = taillard_instance(1);
  const LowerBoundData data = LowerBoundData::build(inst);
  Lb1Scratch scratch(inst.jobs(), inst.machines());
  const std::vector<JobId> p1{0, 1, 2};
  const std::vector<JobId> p2{5, 6};
  const Time a1 = lb1_from_prefix(inst, data, p1, scratch);
  const Time a2 = lb1_from_prefix(inst, data, p2, scratch);
  // Recompute with fresh scratch: identical results.
  EXPECT_EQ(a1, lb1_from_prefix(inst, data, p1));
  EXPECT_EQ(a2, lb1_from_prefix(inst, data, p2));
}

}  // namespace
}  // namespace fsbb::fsp
