#include "fsp/neh.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "fsp/brute_force.h"
#include "fsp/lb1.h"
#include "fsp/makespan.h"
#include "fsp/taillard.h"

namespace fsbb::fsp {
namespace {

Instance random_instance(int jobs, int machines, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Matrix<Time> pt(static_cast<std::size_t>(jobs),
                  static_cast<std::size_t>(machines));
  for (auto& v : pt.flat()) v = static_cast<Time>(rng.next_in(1, 99));
  return Instance("rand", std::move(pt));
}

TEST(Neh, ProducesAValidPermutationWithMatchingMakespan) {
  const Instance inst = taillard_instance(21);  // 20x20
  const NehResult result = neh(inst);
  EXPECT_TRUE(is_valid_permutation(inst, result.permutation));
  EXPECT_EQ(result.makespan, makespan(inst, result.permutation));
}

class NehQuality : public ::testing::TestWithParam<int> {};

TEST_P(NehQuality, WithinReasonOfOptimumOnSmallInstances) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Instance inst = random_instance(8, 5, seed);
  const NehResult result = neh(inst);
  const BruteForceResult opt = brute_force(inst);
  EXPECT_GE(result.makespan, opt.makespan);
  // NEH is typically within a few percent; 25% is a loose safety margin.
  EXPECT_LE(static_cast<double>(result.makespan),
            1.25 * static_cast<double>(opt.makespan))
      << "seed " << seed;
}

TEST_P(NehQuality, UpperBoundIsAtLeastTheRootLowerBound) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 7 + 2;
  const Instance inst = random_instance(12, 6, seed);
  const LowerBoundData data = LowerBoundData::build(inst);
  EXPECT_GE(neh(inst).makespan, lb1_from_prefix(inst, data, {}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NehQuality, ::testing::Range(0, 15));

TEST(Neh, BestInsertionMatchesNaiveScan) {
  const Instance inst = taillard_instance(1);  // 20x5
  SplitMix64 rng(3);
  auto all = identity_permutation(inst.jobs());
  shuffle(all, rng);
  const std::vector<JobId> seq(all.begin(), all.begin() + 7);
  const JobId candidate = all[7];

  const auto [pos, ms] = best_insertion(inst, seq, candidate);

  // Naive: try every slot with a full makespan evaluation.
  int naive_pos = -1;
  Time naive_ms = std::numeric_limits<Time>::max();
  for (int i = 0; i <= static_cast<int>(seq.size()); ++i) {
    std::vector<JobId> trial = seq;
    trial.insert(trial.begin() + i, candidate);
    std::vector<Time> fronts(static_cast<std::size_t>(inst.machines()));
    compute_fronts(inst, trial, fronts);
    if (fronts.back() < naive_ms) {
      naive_ms = fronts.back();
      naive_pos = i;
    }
  }
  EXPECT_EQ(ms, naive_ms);
  EXPECT_EQ(pos, naive_pos);
}

TEST(Neh, SingleJobInstance) {
  Matrix<Time> pt(1, 3);
  pt(0, 0) = 2;
  pt(0, 1) = 3;
  pt(0, 2) = 4;
  const Instance inst("one", std::move(pt));
  const NehResult result = neh(inst);
  EXPECT_EQ(result.makespan, 9);
  EXPECT_EQ(result.permutation, std::vector<JobId>{0});
}

TEST(Neh, DeterministicAcrossRuns) {
  const Instance inst = taillard_instance(11);  // 20x10
  const NehResult a = neh(inst);
  const NehResult b = neh(inst);
  EXPECT_EQ(a.permutation, b.permutation);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(Neh, KnownGoodQualityOnTaillard20x5) {
  // ta001's optimum is 1278 (published). NEH must land within 10% — a
  // well-known empirical property of NEH on this instance family.
  const Instance inst = taillard_instance(1);
  const NehResult result = neh(inst);
  EXPECT_GE(result.makespan, 1278);
  EXPECT_LE(result.makespan, 1278 * 1.10);
}

}  // namespace
}  // namespace fsbb::fsp
