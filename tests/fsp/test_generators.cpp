#include "fsp/generators.h"

#include <gtest/gtest.h>

#include <tuple>

#include "fsp/brute_force.h"
#include "fsp/lb1.h"
#include "fsp/lb_data.h"

namespace fsbb::fsp {
namespace {

const InstanceFamily kAllFamilies[] = {
    InstanceFamily::kUniform, InstanceFamily::kJobCorrelated,
    InstanceFamily::kMachineCorrelated, InstanceFamily::kTrend,
    InstanceFamily::kTwoPlateaus};

class EveryFamily
    : public ::testing::TestWithParam<std::tuple<InstanceFamily, int>> {};

TEST_P(EveryFamily, TimesStayInThePackedRange) {
  const auto [family, seed] = GetParam();
  const Instance inst =
      make_instance(family, 15, 8, static_cast<std::uint64_t>(seed));
  EXPECT_EQ(inst.jobs(), 15);
  EXPECT_EQ(inst.machines(), 8);
  for (int j = 0; j < inst.jobs(); ++j) {
    for (int k = 0; k < inst.machines(); ++k) {
      ASSERT_GE(inst.pt(j, k), 1);
      ASSERT_LE(inst.pt(j, k), 99);
    }
  }
}

TEST_P(EveryFamily, DeterministicInSeed) {
  const auto [family, seed] = GetParam();
  const Instance a =
      make_instance(family, 10, 5, static_cast<std::uint64_t>(seed));
  const Instance b =
      make_instance(family, 10, 5, static_cast<std::uint64_t>(seed));
  EXPECT_EQ(a.ptm(), b.ptm());
  const Instance c =
      make_instance(family, 10, 5, static_cast<std::uint64_t>(seed) + 1);
  EXPECT_FALSE(a.ptm() == c.ptm());
}

TEST_P(EveryFamily, Lb1RemainsValid) {
  const auto [family, seed] = GetParam();
  const Instance inst =
      make_instance(family, 7, 4, static_cast<std::uint64_t>(seed));
  const auto data = LowerBoundData::build(inst);
  EXPECT_LE(lb1_from_prefix(inst, data, {}), brute_force(inst).makespan);
}

INSTANTIATE_TEST_SUITE_P(FamiliesAndSeeds, EveryFamily,
                         ::testing::Combine(::testing::ValuesIn(kAllFamilies),
                                            ::testing::Values(1, 2, 3)));

TEST(Generators, JobCorrelatedRowsHaveLowSpread) {
  const Instance inst =
      make_instance(InstanceFamily::kJobCorrelated, 30, 10, 7);
  for (int j = 0; j < inst.jobs(); ++j) {
    Time lo = 99;
    Time hi = 1;
    for (int k = 0; k < inst.machines(); ++k) {
      lo = std::min(lo, inst.pt(j, k));
      hi = std::max(hi, inst.pt(j, k));
    }
    EXPECT_LE(hi - lo, 16) << "job " << j;  // base +-8 noise
  }
}

TEST(Generators, TrendGrowsAlongMachines) {
  const Instance inst = make_instance(InstanceFamily::kTrend, 40, 10, 9);
  // Column means must increase from the first to the last machine.
  auto column_mean = [&](int k) {
    double sum = 0;
    for (int j = 0; j < inst.jobs(); ++j) sum += inst.pt(j, k);
    return sum / inst.jobs();
  };
  EXPECT_GT(column_mean(inst.machines() - 1), column_mean(0) + 20);
}

TEST(Generators, TwoPlateausIsBimodal) {
  const Instance inst = make_instance(InstanceFamily::kTwoPlateaus, 30, 10, 4);
  int mid = 0;
  for (const Time t : inst.ptm().flat()) {
    if (t > 20 && t < 70) ++mid;
  }
  EXPECT_EQ(mid, 0);  // nothing between the plateaus
}

TEST(Generators, FamilyNames) {
  EXPECT_STREQ(to_string(InstanceFamily::kUniform), "uniform");
  EXPECT_STREQ(to_string(InstanceFamily::kTrend), "trend");
  EXPECT_STREQ(to_string(InstanceFamily::kTwoPlateaus), "two-plateaus");
}

TEST(Generators, NamesEncodeShapeAndSeed) {
  const Instance inst = make_instance(InstanceFamily::kTrend, 12, 6, 42);
  EXPECT_NE(inst.name().find("trend"), std::string::npos);
  EXPECT_NE(inst.name().find("12x6"), std::string::npos);
  EXPECT_NE(inst.name().find("42"), std::string::npos);
}

}  // namespace
}  // namespace fsbb::fsp
