// fsbb::api::Solver — the synchronous facade and front door of the library.
//
//   api::SolverConfig config;            // or SolverConfig::from_argv(...)
//   config.backend = "gpu-sim";
//   api::Solver solver(config);
//   api::SolveReport report = solver.solve(instance);
//
// The Solver validates the configuration once and is a thin synchronous
// wrapper over api::SolverService: solve() submits one job and blocks on
// its handle, solve_many() submits the whole batch and waits for every
// handle, so the synchronous and asynchronous paths run the exact same
// code — including cooperative cancellation and SolverConfig::deadline_ms.
// Callers that need cancellation, progress streaming or non-blocking
// futures use SolverService directly (api/service.h).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "api/backend_registry.h"
#include "api/report.h"
#include "api/service.h"
#include "api/solver_config.h"
#include "common/threadpool.h"
#include "core/protocol.h"

namespace fsbb::api {

class Solver {
 public:
  /// Validates the config (including backend existence); throws
  /// CheckFailure so misconfiguration fails before any search runs.
  explicit Solver(SolverConfig config);

  const SolverConfig& config() const { return config_; }

  /// Solves one instance from the root (submit + wait on the service).
  /// Rethrows the job's exception with its original type on failure.
  SolveReport solve(const fsp::Instance& inst) const;

  /// Explores a frozen pool (§IV protocol) under this configuration.
  SolveReport solve_frozen(const fsp::Instance& inst,
                           const core::FrozenPool& frozen) const;

  /// Batch API: submits every instance to the internal service (workers =
  /// config.batch_workers, or config.threads when 0) and waits for all of
  /// them. Outcomes come back in input order, each carrying its report or
  /// its error — no completed work is discarded when one instance fails.
  std::vector<SolveOutcome> solve_many_outcomes(
      std::span<const fsp::Instance> instances) const;

  /// Compatibility shim over solve_many_outcomes: returns the reports, or
  /// rethrows the first (input-order) error — but only after every
  /// instance finished, so no in-flight work is abandoned. Prefer
  /// solve_many_outcomes when partial results matter.
  std::vector<SolveReport> solve_many(
      std::span<const fsp::Instance> instances) const;

  /// Batch API over a caller-owned pool (one chunk per instance, so
  /// finished workers steal the next one). Same error semantics as
  /// solve_many(instances).
  std::vector<SolveReport> solve_many(std::span<const fsp::Instance> instances,
                                      ThreadPool& pool) const;

 private:
  /// The internal job service, created lazily on the first solve.
  SolverService& service() const;
  /// Arms a fresh control from the config (deadline), for the direct
  /// (non-service) execution paths.
  void arm(core::SearchControl& control) const;

  SolverConfig config_;
  mutable Mutex service_mu_;
  mutable std::unique_ptr<SolverService> service_ FSBB_GUARDED_BY(service_mu_);
};

}  // namespace fsbb::api
