// fsbb::api::Solver — the facade and single front door of the library.
//
//   api::SolverConfig config;            // or SolverConfig::from_argv(...)
//   config.backend = "gpu-sim";
//   api::Solver solver(config);
//   api::SolveReport report = solver.solve(instance);
//
// The Solver validates the configuration once, builds per-instance state
// (LowerBoundData, the backend from the registry) per call, and returns a
// structured SolveReport. solve_many() runs independent instances
// concurrently over a shared ThreadPool — each instance gets its own
// backend, so any registered backend batches safely.
#pragma once

#include <span>
#include <vector>

#include "api/backend_registry.h"
#include "api/report.h"
#include "api/solver_config.h"
#include "common/threadpool.h"
#include "core/protocol.h"

namespace fsbb::api {

class Solver {
 public:
  /// Validates the config (including backend existence); throws
  /// CheckFailure so misconfiguration fails before any search runs.
  explicit Solver(SolverConfig config);

  const SolverConfig& config() const { return config_; }

  /// Solves one instance from the root.
  SolveReport solve(const fsp::Instance& inst) const;

  /// Explores a frozen pool (§IV protocol) under this configuration.
  SolveReport solve_frozen(const fsp::Instance& inst,
                           const core::FrozenPool& frozen) const;

  /// Batch API: solves independent instances concurrently on `pool`
  /// (one chunk per instance, so finished workers steal the next one).
  /// Reports come back in input order. The first exception, if any, is
  /// rethrown after the batch drains.
  std::vector<SolveReport> solve_many(std::span<const fsp::Instance> instances,
                                      ThreadPool& pool) const;

  /// Convenience overload over an internal pool of config.batch_workers
  /// workers (0 = min(instances, config.threads)).
  std::vector<SolveReport> solve_many(
      std::span<const fsp::Instance> instances) const;

 private:
  SolveReport run_one(const fsp::Instance& inst,
                      const core::FrozenPool* frozen) const;

  SolverConfig config_;
};

}  // namespace fsbb::api
