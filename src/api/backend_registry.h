// String-keyed backend registry — the pluggable seam of the facade.
//
// A Backend owns everything one solve needs beyond the shared instance +
// LB data: the bounding evaluator (core/, gpubb/) or the whole search
// (mtbb/), plus any device state. New execution modes register a factory
// under a key; the engine, the Solver facade, the CLI and every bench pick
// them up without code changes — the paper's "one search, interchangeable
// bounding operators" made concrete.
//
// Built-in keys (all deterministic given the config):
//
//   cpu-serial   serial host bounding (LB0/LB1/LB2 per config.bound)
//   cpu-threads  LB1 fanned over a host thread pool (config.threads)
//   callback     serial CallbackEvaluator around the configured bound —
//                the template for out-of-tree bounds
//   gpu-sim      the paper's hybrid CPU + simulated-GPU B&B
//   adaptive     batch-size routed CPU-threads / GPU hybrid (§VI outlook)
//   multicore    the §V shared-pool Pthread baseline (ignores strategy,
//                batch and time limit; node counts vary across runs,
//                results do not)
//   cpu-steal    work-stealing sharded-pool B&B (config.victim_order,
//                config.steal_batch; same caveats as multicore, plus
//                steal statistics in the result)
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/solver_config.h"
#include "common/mutex.h"
#include "core/engine.h"
#include "core/evaluator.h"
#include "fsp/instance.h"
#include "fsp/lb_data.h"

namespace fsbb::api {

/// Everything a factory may capture. All pointers outlive the Backend.
struct BackendContext {
  const fsp::Instance* instance = nullptr;
  const fsp::LowerBoundData* data = nullptr;
  const SolverConfig* config = nullptr;
  /// Cooperative cancellation / deadline / progress block for this solve
  /// (may be null — solves are then uninterruptible but fully valid).
  core::SearchControl* control = nullptr;
  /// Ask engine-driven backends to keep the unexplored pool in the result
  /// when stopping early (SolveResult::remaining_pool) — the distributed
  /// worker checkpoints from it. Backends without a serial pool
  /// (multicore, cpu-steal) ignore this; probe collects_remaining_pool().
  bool collect_pool_on_stop = false;
};

/// One ready-to-run execution mode bound to a specific instance + config.
class Backend {
 public:
  virtual ~Backend() = default;

  /// The registry key this backend was created under (machine-stable).
  virtual std::string name() const = 0;
  /// Human detail: the bounding operator's self-description ("" if n/a).
  virtual std::string detail() const { return {}; }

  /// Solves from the root, honoring the config's limits.
  virtual core::SolveResult solve() = 0;
  /// Explores a frozen node list with a given incumbent (§IV protocol).
  virtual core::SolveResult solve_from(std::vector<core::Subproblem> initial,
                                       fsp::Time initial_ub) = 0;

  /// The evaluator's ledger, if this backend drives one (else nullptr).
  virtual const core::EvalLedger* eval_ledger() const { return nullptr; }

  /// True when an early stop can hand back the unexplored pool
  /// (BackendContext::collect_pool_on_stop → SolveResult::remaining_pool).
  /// The distributed worker requires this to checkpoint; the mtbb engines
  /// (multicore, cpu-steal) scatter their pool across threads and cannot.
  virtual bool collects_remaining_pool() const { return false; }
};

/// Process-wide key → factory map. Thread-safe; keys list deterministically.
class BackendRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Backend>(const BackendContext&)>;

  /// The global registry, with the built-in backends pre-registered.
  static BackendRegistry& global();

  /// Registers a backend; throws CheckFailure on duplicate keys.
  void add(std::string key, std::string description, Factory factory);

  bool contains(const std::string& key) const;
  std::vector<std::string> keys() const;  ///< sorted, machine-independent
  std::string description(const std::string& key) const;

  /// Throws CheckFailure naming the registered keys unless `key` exists.
  void require(const std::string& key) const;

  /// Instantiates `key` for the context. Throws CheckFailure naming the
  /// registered keys when the key is unknown.
  std::unique_ptr<Backend> create(const std::string& key,
                                  const BackendContext& ctx) const;

 private:
  struct Entry {
    std::string description;
    Factory factory;
  };

  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ FSBB_GUARDED_BY(mu_);
};

}  // namespace fsbb::api
