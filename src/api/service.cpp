#include "api/service.h"

#include <algorithm>
#include <utility>

#include "api/backend_registry.h"
#include "common/check.h"

namespace fsbb::api {

namespace detail {

/// Shared state of one job. The control block lives here so cancel() and
/// the deadline outlive the running engine; `mu` guards the state machine
/// and the outcome, `cv` wakes wait()ers on the terminal transition.
struct JobBlock {
  JobBlock(std::uint64_t job_id, fsp::Instance inst, SolverConfig cfg)
      : id(job_id), instance(std::move(inst)), config(std::move(cfg)) {}

  const std::uint64_t id;
  const fsp::Instance instance;
  const SolverConfig config;
  core::SearchControl control;
  SolverService::EventCallback on_event;
  SolverService::CompletionCallback on_complete;

  Mutex mu;
  CondVar cv;
  JobState state FSBB_GUARDED_BY(mu) = JobState::kQueued;
  SolveOutcome outcome FSBB_GUARDED_BY(mu);  // set once, terminal
};

namespace {

bool is_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kCanceled ||
         state == JobState::kFailed;
}

}  // namespace

SolveReport execute_solve(const fsp::Instance& inst,
                          const SolverConfig& config,
                          core::SearchControl* control,
                          const core::FrozenPool* frozen) {
  const fsp::LowerBoundData data = fsp::LowerBoundData::build(inst);
  const BackendContext ctx{&inst, &data, &config, control};
  const std::unique_ptr<Backend> backend =
      BackendRegistry::global().create(config.backend, ctx);

  const core::SolveResult result =
      frozen ? backend->solve_from(frozen->nodes, frozen->incumbent)
             : backend->solve();

  SolveReport report;
  report.config = config;
  report.instance_name = inst.name();
  report.jobs = inst.jobs();
  report.machines = inst.machines();
  report.backend = backend->name();
  report.evaluator = backend->detail();
  report.best_makespan = result.best_makespan;
  report.best_permutation = result.best_permutation;
  report.proven_optimal = result.proven_optimal;
  report.stop_reason = result.stop_reason;
  report.stats = result.stats;
  report.steal = result.steal;
  report.pool = result.pool;
  if (const core::EvalLedger* ledger = backend->eval_ledger()) {
    report.eval = *ledger;
  }
  return report;
}

}  // namespace detail

// ---------------------------------------------------------- SolveHandle --

std::uint64_t SolveHandle::id() const {
  FSBB_CHECK_MSG(valid(), "empty SolveHandle");
  return block_->id;
}

JobState SolveHandle::state() const {
  FSBB_CHECK_MSG(valid(), "empty SolveHandle");
  const LockGuard lock(block_->mu);
  return block_->state;
}

bool SolveHandle::done() const { return detail::is_terminal(state()); }

void SolveHandle::cancel() {
  FSBB_CHECK_MSG(valid(), "empty SolveHandle");
  block_->control.request_cancel();
}

const SolveOutcome& SolveHandle::wait() {
  FSBB_CHECK_MSG(valid(), "empty SolveHandle");
  UniqueLock lock(block_->mu);
  while (!detail::is_terminal(block_->state)) block_->cv.wait(lock);
  return block_->outcome;
}

SolveReport SolveHandle::wait_report() {
  const SolveOutcome& outcome = wait();
  if (!outcome.ok()) std::rethrow_exception(outcome.exception);
  return *outcome.report;
}

std::optional<SolveOutcome> SolveHandle::try_get() const {
  FSBB_CHECK_MSG(valid(), "empty SolveHandle");
  const LockGuard lock(block_->mu);
  if (!detail::is_terminal(block_->state)) return std::nullopt;
  return block_->outcome;
}

void SolveHandle::offer_incumbent(fsp::Time upper_bound) {
  FSBB_CHECK_MSG(valid(), "empty SolveHandle");
  block_->control.offer_incumbent(upper_bound);
}

// -------------------------------------------------------- SolverService --

SolverService::SolverService(Options options) {
  FSBB_CHECK_MSG(options.workers >= 1, "service needs at least one worker");
  workers_.reserve(options.workers);
  for (std::size_t i = 0; i < options.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SolverService::~SolverService() {
  {
    const LockGuard lock(mu_);
    stop_ = true;
    // Every held handle still reaches a terminal state: queued jobs run
    // with cancel pre-set (stopping before they branch), running jobs
    // unwind at their next poll.
    for (const auto& job : queue_) job->control.request_cancel();
    for (const auto& job : live_) job->control.request_cancel();
    cv_.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
}

SolveHandle SolverService::submit(fsp::Instance instance, SolverConfig config,
                                  EventCallback on_event,
                                  CompletionCallback on_complete) {
  config.validate();
  BackendRegistry::global().require(config.backend);

  std::shared_ptr<detail::JobBlock> job;
  {
    const LockGuard lock(mu_);
    FSBB_CHECK_MSG(!stop_, "SolverService is shutting down");
    job = std::make_shared<detail::JobBlock>(next_id_++, std::move(instance),
                                             std::move(config));
    ++submitted_;
  }
  job->on_event = std::move(on_event);
  job->on_complete = std::move(on_complete);
  // The deadline clock starts at submission: queue wait counts against it.
  if (job->config.deadline_ms) {
    job->control.set_deadline_after(
        static_cast<double>(*job->config.deadline_ms) / 1e3);
  }
  if (job->on_event) {
    // The sink outlives nothing: it is owned by the control, which is
    // owned by the block — a raw pointer avoids a shared_ptr cycle.
    detail::JobBlock* raw = job.get();
    job->control.set_sink(
        [raw](const core::SearchEvent& event) {
          raw->on_event(from_search_event(event, raw->id));
        },
        static_cast<double>(job->config.progress_interval_ms) / 1e3);
  }
  {
    const LockGuard lock(mu_);
    queue_.push_back(job);
  }
  cv_.notify_one();
  return SolveHandle(job);
}

std::uint64_t SolverService::jobs_submitted() const {
  const LockGuard lock(mu_);
  return submitted_;
}

std::size_t SolverService::jobs_active() const {
  const LockGuard lock(mu_);
  return queue_.size() + live_.size();
}

QueueSnapshot SolverService::snapshot() const {
  QueueSnapshot snap;
  const LockGuard lock(mu_);
  snap.queued = queue_.size();
  snap.running = live_.size();
  snap.submitted = submitted_;
  snap.completed = submitted_ - snap.queued - snap.running;
  // Each job's SearchControl is armed at submission, so its elapsed clock
  // IS the job's age — queue wait included. The oldest queued job is the
  // queue front, but a long-running live job can be older still.
  double oldest = 0;
  if (!queue_.empty()) {
    oldest = queue_.front()->control.elapsed_seconds();
  }
  for (const auto& job : live_) {
    oldest = std::max(oldest, job->control.elapsed_seconds());
  }
  snap.oldest_age_seconds = oldest;
  return snap;
}

std::string QueueSnapshot::to_json() const {
  JsonWriter o;
  o.integer("queued", queued);
  o.integer("running", running);
  o.integer("submitted", submitted);
  o.integer("completed", completed);
  o.real("oldest_age_seconds", oldest_age_seconds);
  return o.done();
}

void SolverService::worker_loop() {
  for (;;) {
    std::shared_ptr<detail::JobBlock> job;
    {
      UniqueLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(lock);
      // Drain the queue even when stopping: every accepted job must reach
      // a terminal state (they were all canceled, so they unwind fast).
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      job = queue_.front();
      queue_.pop_front();
      live_.push_back(job);
    }
    run_job(job);
  }
}

void SolverService::run_job(const std::shared_ptr<detail::JobBlock>& job) {
  {
    const LockGuard lock(job->mu);
    job->state = JobState::kRunning;
  }

  SolveOutcome outcome;
  try {
    outcome.report =
        detail::execute_solve(job->instance, job->config, &job->control);
  } catch (const std::exception& e) {
    outcome.error = e.what();
    outcome.exception = std::current_exception();
  } catch (...) {
    outcome.error = "unknown error";
    outcome.exception = std::current_exception();
  }

  const JobState terminal =
      !outcome.ok() ? JobState::kFailed
      : outcome.report->stop_reason == core::StopReason::kCanceled
          ? JobState::kCanceled
          : JobState::kDone;

  // Callbacks fire from this worker thread, before wait() unblocks; they
  // must not throw (anything thrown here is swallowed, not propagated).
  if (job->on_event) {
    ProgressEvent event;
    event.kind = ProgressEvent::Kind::kFinished;
    event.job = job->id;
    event.elapsed_seconds = job->control.elapsed_seconds();
    if (outcome.ok()) {
      event.incumbent = outcome.report->best_makespan;
      event.branched = outcome.report->stats.branched;
      event.evaluated = outcome.report->stats.evaluated;
      event.pruned = outcome.report->stats.pruned;
      event.stop_reason = outcome.report->stop_reason;
    } else {
      event.error = outcome.error;
    }
    try {
      job->on_event(event);
    } catch (...) {
    }
  }
  if (job->on_complete) {
    try {
      job->on_complete(outcome);
    } catch (...) {
    }
  }

  // Drop the job from the live set before waking waiters, so a returned
  // wait() (almost always) observes jobs_active() without this job.
  {
    const LockGuard lock(mu_);
    live_.erase(std::find(live_.begin(), live_.end(), job));
  }
  {
    const LockGuard lock(job->mu);
    job->outcome = std::move(outcome);
    job->state = terminal;
  }
  job->cv.notify_all();
}

}  // namespace fsbb::api
