// SolveReport — the structured outcome of one facade solve.
//
// Replaces ad-hoc stdout printing: the config echo makes the run
// reproducible (config.to_cli() is a working command line), the engine
// stats and evaluator ledger make it comparable, and to_json() makes it
// machine-readable for harnesses that aggregate many runs.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "api/solver_config.h"
#include "common/json.h"
#include "core/engine.h"
#include "core/evaluator.h"

namespace fsbb::api {

/// The JSON string-literal escaper (common/json.h), re-exported from its
/// original home so api::json_escape keeps working.
using fsbb::json_escape;

struct SolveReport {
  SolverConfig config;  ///< echo of the requesting configuration

  std::string instance_name;
  int jobs = 0;
  int machines = 0;

  std::string backend;    ///< registry key that ran the solve
  std::string evaluator;  ///< bounding operator detail ("" when n/a)

  fsp::Time best_makespan = 0;
  std::vector<fsp::JobId> best_permutation;  ///< empty if nothing beat the UB
  bool proven_optimal = false;
  /// Why the solve returned (optimal | canceled | deadline | budget |
  /// frozen); anything but optimal is an early stop whose incumbent is
  /// still a valid schedule bound.
  core::StopReason stop_reason = core::StopReason::kOptimal;

  core::EngineStats stats;
  /// Bounding-operator totals; unset for backends without an evaluator
  /// seam (multicore, cpu-steal).
  std::optional<core::EvalLedger> eval;
  /// Work-stealing traffic; set only by sharded-pool backends (cpu-steal).
  std::optional<core::StealStats> steal;
  /// Per-shard occupancy of a device-resident pool; set only by backends
  /// that ran resident offload iterations (gpu-sim/adaptive).
  std::optional<core::ResidentPoolStats> pool;

  /// Single-line-per-field JSON object, deterministic key order.
  std::string to_json() const;

  /// Human-readable multi-line summary (what the examples print).
  void print_text(std::ostream& os) const;
};

std::ostream& operator<<(std::ostream& os, const SolveReport& report);

/// EngineStats ⇄ JSON (the exact "stats" object SolveReport::to_json
/// emits). The distributed transport ships per-worker stats through
/// NDJSON and the coordinator parses them back to aggregate.
std::string engine_stats_to_json(const core::EngineStats& stats);
core::EngineStats engine_stats_from_json(const JsonValue& value);

/// ResidentPoolStats ⇄ JSON (the exact "pool" object SolveReport::to_json
/// emits). The multi-device dimension is additive: single-device emitters
/// write devices = 1, rebalanced = 0 and shard device = 0, and from_json
/// defaults the same way, so the pre-multi-device flat shape (no "devices",
/// no per-shard "device") still parses.
std::string pool_stats_to_json(const core::ResidentPoolStats& stats);
core::ResidentPoolStats pool_stats_from_json(const JsonValue& value);

/// Folds one worker's stats into an aggregate: operator counters and
/// bounding time sum; wall time takes the max (the workers ran
/// concurrently); initial_ub keeps `into`'s value unless it is unset (0).
void accumulate_engine_stats(core::EngineStats& into,
                             const core::EngineStats& more);

/// Merges stop reasons for an aggregate report: optimal only when both
/// sides finished optimal, otherwise the more severe early-stop wins
/// (canceled > deadline > budget > frozen > optimal).
core::StopReason combine_stop_reasons(core::StopReason a, core::StopReason b);

}  // namespace fsbb::api
