// SolveReport — the structured outcome of one facade solve.
//
// Replaces ad-hoc stdout printing: the config echo makes the run
// reproducible (config.to_cli() is a working command line), the engine
// stats and evaluator ledger make it comparable, and to_json() makes it
// machine-readable for harnesses that aggregate many runs.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "api/solver_config.h"
#include "core/engine.h"
#include "core/evaluator.h"

namespace fsbb::api {

/// Escapes `s` for use inside a JSON string literal: quotes, backslashes
/// and every control character (U+0000–U+001F, per RFC 8259).
std::string json_escape(const std::string& s);

struct SolveReport {
  SolverConfig config;  ///< echo of the requesting configuration

  std::string instance_name;
  int jobs = 0;
  int machines = 0;

  std::string backend;    ///< registry key that ran the solve
  std::string evaluator;  ///< bounding operator detail ("" when n/a)

  fsp::Time best_makespan = 0;
  std::vector<fsp::JobId> best_permutation;  ///< empty if nothing beat the UB
  bool proven_optimal = false;

  core::EngineStats stats;
  /// Bounding-operator totals; unset for backends without an evaluator
  /// seam (multicore, cpu-steal).
  std::optional<core::EvalLedger> eval;
  /// Work-stealing traffic; set only by sharded-pool backends (cpu-steal).
  std::optional<core::StealStats> steal;

  /// Single-line-per-field JSON object, deterministic key order.
  std::string to_json() const;

  /// Human-readable multi-line summary (what the examples print).
  void print_text(std::ostream& os) const;
};

std::ostream& operator<<(std::ostream& os, const SolveReport& report);

}  // namespace fsbb::api
