// SolverService — the asynchronous job front door of the library.
//
//   api::SolverService service({.workers = 8});
//   api::SolveHandle job = service.submit(instance, config,
//                                         [](const api::ProgressEvent& e) {
//                                           std::cerr << e.to_json() << "\n";
//                                         });
//   ...
//   job.cancel();                        // cooperative, any thread
//   const api::SolveOutcome& out = job.wait();
//
// The paper's B&B is a long-running, irregular search; the service turns
// it into a managed job: submit() validates the config and returns a
// SolveHandle future immediately, a fixed pool of service workers
// multiplexes the queued jobs, and each job carries its own
// core::SearchControl so it can be canceled, bounded by a hard deadline
// (SolverConfig::deadline_ms, measured from submission) and observed
// through streaming ProgressEvents. Every backend stops cooperatively at
// a bounding-batch boundary and reports why in SolveReport::stop_reason.
//
// The synchronous api::Solver facade is a thin wrapper over this service,
// so both paths run the exact same code.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/events.h"
#include "common/mutex.h"
#include "api/report.h"
#include "api/solver_config.h"
#include "core/protocol.h"
#include "core/search_control.h"
#include "fsp/instance.h"

namespace fsbb::api {

/// Terminal outcome of one job: a report, or the error that ended it.
/// The exception pointer preserves the original type for synchronous
/// rethrow; `error` is its message, for transports (NDJSON) and logs.
struct SolveOutcome {
  std::optional<SolveReport> report;
  std::string error;
  std::exception_ptr exception;

  bool ok() const { return report.has_value(); }
};

namespace detail {
struct JobBlock;

/// The one execution path every solve goes through (service workers and
/// the synchronous facade alike): builds the LB data and the backend,
/// arms the deadline, runs the search, fills the report.
SolveReport execute_solve(const fsp::Instance& inst,
                          const SolverConfig& config,
                          core::SearchControl* control,
                          const core::FrozenPool* frozen = nullptr);
}  // namespace detail

/// Future for one submitted job. Cheap to copy (shared state); an empty
/// handle (default-constructed) is invalid until assigned from submit().
class SolveHandle {
 public:
  SolveHandle() = default;

  bool valid() const { return block_ != nullptr; }
  std::uint64_t id() const;
  JobState state() const;
  /// True once the job reached a terminal state (done/canceled/failed).
  bool done() const;

  /// Requests cooperative cancellation; idempotent, returns immediately.
  /// The job still produces an outcome: a partial report whose stop
  /// reason is canceled (or its natural outcome if it won the race).
  void cancel();

  /// Blocks until the job is terminal; never throws on job failure (the
  /// outcome carries the error instead).
  const SolveOutcome& wait();

  /// wait(), then returns the report or rethrows the job's exception with
  /// its original type — the synchronous facade's error semantics.
  SolveReport wait_report();

  /// Non-blocking: the outcome if terminal, nullopt while queued/running.
  std::optional<SolveOutcome> try_get() const;

  /// Offers an externally known upper bound to this job's search (see
  /// core::SearchControl::offer_incumbent): the engine folds it in at its
  /// next batch boundary and prunes against it from then on. Safe before
  /// the job starts (the bound is read at engine start) and while it
  /// runs; a no-op once the job is terminal. The serving layer's result
  /// cache uses this to warm-start repeated instances from cached
  /// incumbents.
  void offer_incumbent(fsp::Time upper_bound);

 private:
  friend class SolverService;
  explicit SolveHandle(std::shared_ptr<detail::JobBlock> block)
      : block_(std::move(block)) {}

  std::shared_ptr<detail::JobBlock> block_;
};

/// Point-in-time view of the service queue — what admission control and
/// the metrics exporter need without reaching into the job table.
struct QueueSnapshot {
  std::size_t queued = 0;    ///< accepted, waiting for a worker
  std::size_t running = 0;   ///< currently on a worker
  std::uint64_t submitted = 0;  ///< accepted over the service's lifetime
  std::uint64_t completed = 0;  ///< reached a terminal state
  /// Seconds since the oldest non-terminal job was submitted (queue wait
  /// included); 0 when the service is idle.
  double oldest_age_seconds = 0;

  std::string to_json() const;
};

/// Fixed worker pool multiplexing asynchronous solve jobs.
class SolverService {
 public:
  struct Options {
    /// Jobs running concurrently (each backend may add its own threads).
    std::size_t workers = 4;
  };

  using EventCallback = std::function<void(const ProgressEvent&)>;
  using CompletionCallback = std::function<void(const SolveOutcome&)>;

  SolverService() : SolverService(Options{}) {}
  explicit SolverService(Options options);

  /// Cancels every queued and running job, then joins the workers. Jobs
  /// still reach a terminal state (canceled), so held handles stay valid.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Validates the config (throwing CheckFailure on misconfiguration
  /// before anything runs) and enqueues the job. `on_event` streams
  /// progress (from service worker threads; incumbents arrive in strictly
  /// improving order, ticks rate-limited per config.progress_interval_ms,
  /// one terminal kFinished event last). `on_complete` fires once with
  /// the outcome, after the terminal event, before wait() unblocks.
  /// If config.deadline_ms is set the deadline clock starts now — queue
  /// wait counts against it.
  SolveHandle submit(fsp::Instance instance, SolverConfig config,
                     EventCallback on_event = nullptr,
                     CompletionCallback on_complete = nullptr);

  std::size_t workers() const { return workers_.size(); }
  /// Jobs accepted over the service's lifetime.
  std::uint64_t jobs_submitted() const;
  /// Jobs not yet terminal (queued + running).
  std::size_t jobs_active() const;
  /// Consistent point-in-time queue counts + oldest-job age.
  QueueSnapshot snapshot() const;

 private:
  void worker_loop();
  void run_job(const std::shared_ptr<detail::JobBlock>& job);

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::shared_ptr<detail::JobBlock>> queue_ FSBB_GUARDED_BY(mu_);
  std::vector<std::shared_ptr<detail::JobBlock>> live_ FSBB_GUARDED_BY(mu_);
  std::uint64_t next_id_ FSBB_GUARDED_BY(mu_) = 1;
  std::uint64_t submitted_ FSBB_GUARDED_BY(mu_) = 0;
  bool stop_ FSBB_GUARDED_BY(mu_) = false;

  std::vector<std::thread> workers_;
};

}  // namespace fsbb::api
