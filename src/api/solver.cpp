#include "api/solver.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace fsbb::api {

Solver::Solver(SolverConfig config) : config_(std::move(config)) {
  config_.validate();
  BackendRegistry::global().require(config_.backend);
}

SolveReport Solver::solve(const fsp::Instance& inst) const {
  return run_one(inst, nullptr);
}

SolveReport Solver::solve_frozen(const fsp::Instance& inst,
                                 const core::FrozenPool& frozen) const {
  return run_one(inst, &frozen);
}

SolveReport Solver::run_one(const fsp::Instance& inst,
                            const core::FrozenPool* frozen) const {
  const fsp::LowerBoundData data = fsp::LowerBoundData::build(inst);
  const BackendContext ctx{&inst, &data, &config_};
  const std::unique_ptr<Backend> backend =
      BackendRegistry::global().create(config_.backend, ctx);

  const core::SolveResult result =
      frozen ? backend->solve_from(frozen->nodes, frozen->incumbent)
             : backend->solve();

  SolveReport report;
  report.config = config_;
  report.instance_name = inst.name();
  report.jobs = inst.jobs();
  report.machines = inst.machines();
  report.backend = backend->name();
  report.evaluator = backend->detail();
  report.best_makespan = result.best_makespan;
  report.best_permutation = result.best_permutation;
  report.proven_optimal = result.proven_optimal;
  report.stats = result.stats;
  report.steal = result.steal;
  if (const core::EvalLedger* ledger = backend->eval_ledger()) {
    report.eval = *ledger;
  }
  return report;
}

std::vector<SolveReport> Solver::solve_many(
    std::span<const fsp::Instance> instances, ThreadPool& pool) const {
  std::vector<SolveReport> reports(instances.size());
  if (instances.empty()) return reports;
  // One chunk per instance: whichever worker frees up takes the next one.
  pool.parallel_for(
      0, instances.size(),
      [&](std::size_t lo, std::size_t hi, std::size_t /*worker*/) {
        for (std::size_t i = lo; i < hi; ++i) {
          reports[i] = run_one(instances[i], nullptr);
        }
      },
      instances.size());
  return reports;
}

std::vector<SolveReport> Solver::solve_many(
    std::span<const fsp::Instance> instances) const {
  std::size_t workers = config_.batch_workers;
  if (workers == 0) {
    workers = std::min<std::size_t>(std::max<std::size_t>(instances.size(), 1),
                                    config_.threads);
  }
  ThreadPool pool(workers);
  return solve_many(instances, pool);
}

}  // namespace fsbb::api
