#include "api/solver.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace fsbb::api {
namespace {

/// Reports in input order, or the first (input-order) error rethrown with
/// its original type — after the whole batch already finished.
std::vector<SolveReport> reports_or_first_error(
    std::vector<SolveOutcome> outcomes) {
  for (const SolveOutcome& outcome : outcomes) {
    if (!outcome.ok()) std::rethrow_exception(outcome.exception);
  }
  std::vector<SolveReport> reports;
  reports.reserve(outcomes.size());
  for (SolveOutcome& outcome : outcomes) {
    reports.push_back(std::move(*outcome.report));
  }
  return reports;
}

}  // namespace

Solver::Solver(SolverConfig config) : config_(std::move(config)) {
  config_.validate();
  BackendRegistry::global().require(config_.backend);
}

SolverService& Solver::service() const {
  const LockGuard lock(service_mu_);
  if (!service_) {
    SolverService::Options options;
    options.workers = config_.batch_workers != 0
                          ? config_.batch_workers
                          : std::max<std::size_t>(config_.threads, 1);
    service_ = std::make_unique<SolverService>(options);
  }
  return *service_;
}

void Solver::arm(core::SearchControl& control) const {
  if (config_.deadline_ms) {
    control.set_deadline_after(static_cast<double>(*config_.deadline_ms) /
                               1e3);
  }
}

SolveReport Solver::solve(const fsp::Instance& inst) const {
  return service().submit(inst, config_).wait_report();
}

SolveReport Solver::solve_frozen(const fsp::Instance& inst,
                                 const core::FrozenPool& frozen) const {
  core::SearchControl control;
  arm(control);
  return detail::execute_solve(inst, config_, &control, &frozen);
}

std::vector<SolveOutcome> Solver::solve_many_outcomes(
    std::span<const fsp::Instance> instances) const {
  std::vector<SolveHandle> handles;
  handles.reserve(instances.size());
  for (const fsp::Instance& inst : instances) {
    handles.push_back(service().submit(inst, config_));
  }
  std::vector<SolveOutcome> outcomes;
  outcomes.reserve(handles.size());
  for (SolveHandle& handle : handles) {
    outcomes.push_back(handle.wait());
  }
  return outcomes;
}

std::vector<SolveReport> Solver::solve_many(
    std::span<const fsp::Instance> instances) const {
  return reports_or_first_error(solve_many_outcomes(instances));
}

std::vector<SolveReport> Solver::solve_many(
    std::span<const fsp::Instance> instances, ThreadPool& pool) const {
  std::vector<SolveOutcome> outcomes(instances.size());
  if (instances.empty()) return {};
  // One chunk per instance: whichever worker frees up takes the next one.
  pool.parallel_for(
      0, instances.size(),
      [&](std::size_t lo, std::size_t hi, std::size_t /*worker*/) {
        for (std::size_t i = lo; i < hi; ++i) {
          try {
            core::SearchControl control;
            arm(control);
            outcomes[i].report =
                detail::execute_solve(instances[i], config_, &control);
          } catch (const std::exception& e) {
            outcomes[i].error = e.what();
            outcomes[i].exception = std::current_exception();
          } catch (...) {
            outcomes[i].error = "unknown error";
            outcomes[i].exception = std::current_exception();
          }
        }
      },
      instances.size());
  return reports_or_first_error(std::move(outcomes));
}

}  // namespace fsbb::api
