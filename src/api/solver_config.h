// SolverConfig — the one value type that selects everything about a solve.
//
// The paper frames GPU-accelerated B&B as a single engine with
// interchangeable bounding operators; SolverConfig is that framing as data:
// backend key (see api/backend_registry.h), bound choice, selection
// strategy, batch size, device/placement knobs, limits, and the instance
// spec used by the CLI and batch front ends. Every field parses from
// `--flag value` command lines (common/cli) and round-trips through
// to_cli(), so a report's config echo is a reproducible invocation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.h"
#include "core/pool.h"
#include "core/steal_stats.h"
#include "fsp/instance.h"
#include "gpubb/gpu_evaluator.h"
#include "gpubb/placement.h"
#include "gpusim/device_spec.h"

namespace fsbb::api {

/// Which lower bound the bounding operator computes.
enum class Bound {
  kLb0,  ///< single-machine bound, Θ(n m) — the cheap baseline
  kLb1,  ///< Lageweg–Lenstra–Rinnooy Kan two-machine bound (the paper's)
  kLb2,  ///< LB1 with node-local head/tail minima — dominates LB1
};

const char* to_string(Bound b);
Bound parse_bound(const std::string& text);  ///< "lb0" | "lb1" | "lb2"

core::SelectionStrategy parse_strategy(const std::string& text);
gpubb::PlacementPolicy parse_placement(const std::string& text);

/// Which problem instance(s) the CLI front ends solve.
struct InstanceSpec {
  /// > 0 selects the published Taillard instance ta<id> (1..120) and the
  /// jobs/machines/seed fields are ignored.
  int ta_id = 0;
  int jobs = 10;
  int machines = 5;
  std::int32_t seed = 123456789;  ///< Taillard time seed
  /// Batch solves: `count` instances with seeds seed .. seed + count - 1.
  int count = 1;

  bool operator==(const InstanceSpec&) const = default;
};

/// Materializes the spec (count instances; ta_id implies count == 1).
std::vector<fsp::Instance> make_instances(const InstanceSpec& spec);

/// Full description of one solve. Defaults are deterministic: nothing in
/// here (and nothing derived from it, e.g. evaluator names) depends on the
/// machine's detected hardware concurrency.
struct SolverConfig {
  /// Backend registry key: cpu-serial, cpu-threads, callback, gpu-sim,
  /// adaptive, multicore (api/backend_registry.h has the authoritative list).
  std::string backend = "cpu-serial";
  Bound bound = Bound::kLb1;
  core::SelectionStrategy strategy = core::SelectionStrategy::kBestFirst;
  /// Children accumulated per bounding batch; 0 = the backend's default.
  std::size_t batch_size = 0;
  /// Host worker threads for cpu-threads / adaptive / multicore. Fixed
  /// default (not hardware concurrency) so reports are machine-stable.
  std::size_t threads = 4;
  /// Concurrent jobs on the Solver's internal service (solve_many and
  /// solve alike); 0 = config.threads workers.
  std::size_t batch_workers = 0;
  /// cpu-steal: victim scan order for starving workers.
  core::VictimOrder victim_order = core::VictimOrder::kRoundRobin;
  /// cpu-steal: nodes moved per successful steal (>= 1).
  std::size_t steal_batch = 4;
  /// cpu-steal: shard deque implementation (mutex | chase-lev).
  core::DequeKind deque = core::DequeKind::kMutex;
  /// GPU kernel block size; 0 = the placement's recommended size.
  int block_threads = 0;
  gpubb::PlacementPolicy placement = gpubb::PlacementPolicy::kAuto;
  /// Device pool organization for gpu-sim/adaptive: per-SM resident shards
  /// (the default) or the paper's per-offload full-pool repack.
  gpubb::GpuPoolMode gpu_pool = gpubb::GpuPoolMode::kResident;
  /// Simulated device: "c2050" (the paper's) or "c1060".
  std::string device = "c2050";
  /// Simulated device COUNT for gpu-sim/adaptive: "N" shards the pool
  /// over N cards of `device`'s spec, "N:key,key,..." names each card's
  /// spec explicitly (heterogeneous mixes allowed, count must match).
  /// "1" keeps the single-device evaluator.
  std::string gpu_devices = "1";
  /// Starting incumbent; NEH if unset.
  std::optional<fsp::Time> initial_ub;
  std::uint64_t node_budget = 0;     ///< 0 = solve to optimality
  double time_limit_seconds = 0;     ///< 0 = unlimited
  /// Hard wall-clock deadline in milliseconds, measured from submission.
  /// Unlike time_limit_seconds (which only the serial engine honors, at
  /// batch granularity), the deadline flows through core::SearchControl
  /// and stops every backend. A value of 0 is an already-expired deadline:
  /// the search stops before branching anything. Unset = no deadline.
  std::optional<std::uint64_t> deadline_ms;
  /// Minimum interval between streamed periodic progress events (ticks)
  /// when a subscriber is attached; incumbent events always pass.
  std::uint64_t progress_interval_ms = 200;
  /// Multi-tenant serving (serve::): the API-key-like tenant the request
  /// is accounted against. Admission quotas key on it; plain config data
  /// so every report echo records who asked.
  std::string tenant = "anonymous";
  /// Priority class for admission-control load shedding: "high" |
  /// "normal" | "low". Lower classes are shed first as the service queue
  /// fills (serve::AdmissionController documents the thresholds).
  std::string priority = "normal";
  InstanceSpec instance;

  bool operator==(const SolverConfig&) const = default;

  /// Every `--flag` the config understands, for CliArgs::parse.
  static const std::vector<std::string>& cli_flags();

  /// Reads every recognized flag; untouched fields keep their defaults.
  /// Throws CheckFailure on unparseable enum values.
  static SolverConfig from_cli(const CliArgs& args);

  /// Parses argv directly (extra_flags are accepted but ignored — for
  /// binaries that add their own switches on top).
  static SolverConfig from_argv(int argc, const char* const* argv,
                                const std::vector<std::string>& extra_flags = {});

  /// The config as `--flag=value` tokens; from_cli(parse(to_cli())) == *this.
  std::vector<std::string> to_cli() const;

  /// Checks enum-free fields (device key, thread counts); backend existence
  /// is checked by the registry at Solver construction.
  void validate() const;
};

/// Resolves config.device ("c2050" | "c1060"); throws CheckFailure otherwise.
gpusim::DeviceSpec device_spec_for(const SolverConfig& config);

/// Resolves config.gpu_devices into one spec per simulated card: "N" is N
/// copies of config.device's spec, "N:key,key" the named specs (the count
/// must equal N). Throws CheckFailure on malformed values. Size 1 means
/// the single-device evaluator path.
std::vector<gpusim::DeviceSpec> multi_device_specs(const SolverConfig& config);

}  // namespace fsbb::api
