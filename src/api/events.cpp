#include "api/events.h"

#include "common/json.h"

namespace fsbb::api {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kCanceled:
      return "canceled";
    case JobState::kFailed:
      return "failed";
  }
  return "?";
}

const char* to_string(ProgressEvent::Kind kind) {
  switch (kind) {
    case ProgressEvent::Kind::kIncumbent:
      return "incumbent";
    case ProgressEvent::Kind::kTick:
      return "tick";
    case ProgressEvent::Kind::kFinished:
      return "finished";
  }
  return "?";
}

std::string ProgressEvent::to_json() const {
  JsonWriter o;
  o.str("kind", to_string(kind));
  o.integer("job", job);
  o.real("elapsed_seconds", elapsed_seconds);
  o.integer("incumbent", incumbent);
  o.integer("branched", branched);
  o.integer("evaluated", evaluated);
  o.integer("pruned", pruned);
  if (kind == Kind::kIncumbent) {
    std::string perm = "[";
    for (std::size_t i = 0; i < permutation.size(); ++i) {
      if (i) perm += ",";
      perm += std::to_string(permutation[i]);
    }
    o.field("permutation", perm + "]");
  }
  if (kind == Kind::kFinished) {
    // A failed job has no stop reason — it never stopped, it threw.
    if (error.empty()) {
      o.str("stop_reason", core::to_string(stop_reason));
    } else {
      o.str("error", error);
    }
  }
  return o.done();
}

ProgressEvent from_search_event(const core::SearchEvent& event,
                                std::uint64_t job) {
  ProgressEvent out;
  out.kind = event.kind == core::SearchEvent::Kind::kIncumbent
                 ? ProgressEvent::Kind::kIncumbent
                 : ProgressEvent::Kind::kTick;
  out.job = job;
  out.elapsed_seconds = event.elapsed_seconds;
  out.incumbent = event.incumbent;
  out.permutation = event.permutation;
  out.branched = event.branched;
  out.evaluated = event.evaluated;
  out.pruned = event.pruned;
  return out;
}

}  // namespace fsbb::api
