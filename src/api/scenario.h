// Facade over the paper's §IV experimental protocol and offload pricing.
//
// Hard Taillard classes cannot be solved in a benchmark run, so the paper
// measures every competitor on the same frozen pool L and prices
// configurations with the calibrated offload model. This header is that
// workflow behind SolverConfig, so benches and harnesses configure it the
// same way they configure real solves (device, placement, block size all
// come from the config).
#pragma once

#include <cstddef>
#include <memory>

#include "api/solver_config.h"
#include "core/protocol.h"
#include "gpubb/autotuner.h"
#include "gpubb/offload_model.h"
#include "gpusim/kernel.h"

namespace fsbb::api {

/// Default frozen-list size (doubles as the kernel measurement sample).
inline constexpr std::size_t kDefaultFreezeTarget = 1024;

/// Default live-frontier size assumed by the host-side heap model.
inline constexpr std::size_t kDefaultFrontierNodes = 4096;

/// One benchmark instance with its LB tables and frozen workload.
struct Workload {
  std::unique_ptr<fsp::Instance> instance;
  std::unique_ptr<fsp::LowerBoundData> data;
  core::FrozenPool frozen;

  const fsp::Instance& inst() const { return *instance; }
  const fsp::LowerBoundData& lb() const { return *data; }
};

/// Builds the (jobs x machines) Taillard class representative and freezes
/// its pool with a serial best-first run.
Workload make_class_workload(int jobs, int machines = 20,
                             std::size_t freeze_target = kDefaultFreezeTarget);

/// Same for an arbitrary instance spec (ta_id or synthetic seed). The
/// incumbent used while freezing defaults to NEH; pass a weaker bound to
/// force branching on instances NEH nearly solves.
Workload make_workload(const InstanceSpec& spec,
                       std::size_t freeze_target = kDefaultFreezeTarget,
                       std::optional<fsp::Time> initial_ub = std::nullopt);

/// Samples the bounding kernel on the workload's frozen nodes and prices
/// the offload under the config's device/placement/block-size choices.
gpubb::OffloadScenario measure_offload(
    gpusim::SimDevice& device, const Workload& workload,
    const SolverConfig& config,
    std::size_t frontier_nodes = kDefaultFrontierNodes);

}  // namespace fsbb::api
