#include "api/report.h"

#include <ostream>
#include <sstream>

namespace fsbb::api {
namespace {

using fsbb::JsonWriter;

std::string num(double v) {
  std::ostringstream ss;
  ss << v;
  return ss.str();
}

std::string config_json(const SolverConfig& c) {
  JsonWriter inst;
  inst.integer("ta_id", c.instance.ta_id);
  inst.integer("jobs", c.instance.jobs);
  inst.integer("machines", c.instance.machines);
  inst.integer("seed", c.instance.seed);
  inst.integer("count", c.instance.count);

  JsonWriter o;
  o.str("backend", c.backend);
  o.str("bound", to_string(c.bound));
  o.str("strategy", core::to_string(c.strategy));
  o.integer("batch_size", c.batch_size);
  o.integer("threads", c.threads);
  o.integer("batch_workers", c.batch_workers);
  o.str("victim_order", core::to_string(c.victim_order));
  o.str("deque", core::to_string(c.deque));
  o.integer("steal_batch", c.steal_batch);
  o.integer("block_threads", c.block_threads);
  o.str("placement", gpubb::to_string(c.placement));
  o.str("gpu_pool", gpubb::to_string(c.gpu_pool));
  o.str("device", c.device);
  o.str("gpu_devices", c.gpu_devices);
  o.field("initial_ub",
          c.initial_ub ? std::to_string(*c.initial_ub) : "null");
  o.integer("node_budget", c.node_budget);
  o.real("time_limit_seconds", c.time_limit_seconds);
  o.field("deadline_ms",
          c.deadline_ms ? std::to_string(*c.deadline_ms) : "null");
  o.integer("progress_interval_ms", c.progress_interval_ms);
  o.str("tenant", c.tenant);
  o.str("priority", c.priority);
  o.field("instance", inst.done());
  return o.done();
}

std::string stats_json(const core::EngineStats& s) {
  return engine_stats_to_json(s);
}

std::string ledger_json(const core::EvalLedger& l) {
  JsonWriter o;
  o.integer("batches", l.batches);
  o.integer("nodes", l.nodes);
  o.real("wall_seconds", l.wall_seconds);
  return o.done();
}

std::string steal_json(const core::StealStats& s) {
  JsonWriter o;
  o.integer("attempts", s.steal_attempts);
  o.integer("successes", s.steal_successes);
  o.integer("nodes_stolen", s.nodes_stolen);
  o.real("success_rate", s.success_rate());
  return o.done();
}

}  // namespace

std::string SolveReport::to_json() const {
  JsonWriter inst;
  inst.str("name", instance_name);
  inst.integer("jobs", jobs);
  inst.integer("machines", machines);

  std::string perm = "[";
  for (std::size_t i = 0; i < best_permutation.size(); ++i) {
    if (i) perm += ",";
    perm += std::to_string(best_permutation[i]);
  }
  perm += "]";

  JsonWriter result;
  result.integer("best_makespan", best_makespan);
  result.boolean("proven_optimal", proven_optimal);
  result.str("stop_reason", core::to_string(stop_reason));
  result.field("best_permutation", perm);

  JsonWriter o;
  o.field("config", config_json(config));
  o.field("instance", inst.done());
  o.str("backend", backend);
  o.str("evaluator", evaluator);
  o.field("result", result.done());
  o.field("stats", stats_json(stats));
  o.field("eval", eval ? ledger_json(*eval) : "null");
  o.field("steal", steal ? steal_json(*steal) : "null");
  o.field("pool", pool ? pool_stats_to_json(*pool) : "null");
  return o.done();
}

void SolveReport::print_text(std::ostream& os) const {
  os << instance_name << " (" << jobs << "x" << machines << ") via " << backend;
  if (!evaluator.empty()) os << " [" << evaluator << "]";
  os << "\n  makespan " << best_makespan;
  if (proven_optimal) {
    os << " (proven optimal)";
  } else {
    os << " (not proven; stopped: " << core::to_string(stop_reason) << ")";
  }
  os << "\n  ";
  if (best_permutation.empty()) {
    os << "no schedule beat the initial bound";
  } else {
    os << "order";
    for (const fsp::JobId j : best_permutation) os << " J" << j;
  }
  os << "\n  " << stats.branched << " branched, " << stats.evaluated
     << " bounded, " << stats.pruned << " pruned, " << stats.leaves
     << " leaves, " << stats.ub_updates << " incumbent updates\n"
     << "  " << num(stats.wall_seconds) << " s total, "
     << static_cast<int>(stats.bounding_fraction() * 100)
     << "% in the bounding operator\n";
  if (steal) {
    os << "  " << steal->nodes_stolen << " nodes stolen in "
       << steal->steal_successes << "/" << steal->steal_attempts
       << " successful steals\n";
  }
  if (pool) {
    os << "  resident pool: " << pool->shards.size() << " shards x "
       << (pool->shards.empty() ? 0
                                : pool->capacity / pool->shards.size())
       << " slots, peak " << pool->peak_live() << " live, " << pool->refills
       << " refills, " << pool->overflow << " overflow";
    if (pool->devices > 1) {
      os << " (" << pool->devices << " devices, " << pool->rebalanced
         << " rebalanced)";
    }
    os << "\n";
  }
}

std::ostream& operator<<(std::ostream& os, const SolveReport& report) {
  report.print_text(os);
  return os;
}

std::string engine_stats_to_json(const core::EngineStats& s) {
  JsonWriter o;
  o.integer("branched", s.branched);
  o.integer("generated", s.generated);
  o.integer("evaluated", s.evaluated);
  o.integer("pruned", s.pruned);
  o.integer("leaves", s.leaves);
  o.integer("ub_updates", s.ub_updates);
  o.real("wall_seconds", s.wall_seconds);
  o.real("bounding_seconds", s.bounding_seconds);
  o.integer("initial_ub", s.initial_ub);
  return o.done();
}

core::EngineStats engine_stats_from_json(const JsonValue& v) {
  core::EngineStats s;
  s.branched = static_cast<std::uint64_t>(v.int_or("branched", 0));
  s.generated = static_cast<std::uint64_t>(v.int_or("generated", 0));
  s.evaluated = static_cast<std::uint64_t>(v.int_or("evaluated", 0));
  s.pruned = static_cast<std::uint64_t>(v.int_or("pruned", 0));
  s.leaves = static_cast<std::uint64_t>(v.int_or("leaves", 0));
  s.ub_updates = static_cast<std::uint64_t>(v.int_or("ub_updates", 0));
  if (const JsonValue* w = v.find("wall_seconds")) s.wall_seconds = w->as_number();
  if (const JsonValue* b = v.find("bounding_seconds")) {
    s.bounding_seconds = b->as_number();
  }
  s.initial_ub = static_cast<fsp::Time>(v.int_or("initial_ub", 0));
  return s;
}

std::string pool_stats_to_json(const core::ResidentPoolStats& p) {
  std::string shards = "[";
  for (std::size_t i = 0; i < p.shards.size(); ++i) {
    const core::ShardOccupancy& s = p.shards[i];
    JsonWriter o;
    o.integer("device", s.device);
    o.integer("live", s.live);
    o.integer("peak_live", s.peak_live);
    o.integer("allocated", s.allocated);
    o.integer("released", s.released);
    o.integer("spills", s.spills);
    o.integer("steals", s.steals);
    o.integer("refills", s.refills);
    if (i) shards += ",";
    shards += o.done();
  }
  shards += "]";

  JsonWriter o;
  o.integer("capacity", p.capacity);
  o.integer("slot_bytes", p.slot_bytes);
  o.integer("overflow", p.overflow);
  o.integer("refills", p.refills);
  o.integer("devices", p.devices);
  o.integer("rebalanced", p.rebalanced);
  o.integer("peak_live", p.peak_live());
  o.field("shards", shards);
  return o.done();
}

core::ResidentPoolStats pool_stats_from_json(const JsonValue& v) {
  core::ResidentPoolStats p;
  p.capacity = static_cast<std::uint64_t>(v.int_or("capacity", 0));
  p.slot_bytes = static_cast<std::uint64_t>(v.int_or("slot_bytes", 0));
  p.overflow = static_cast<std::uint64_t>(v.int_or("overflow", 0));
  p.refills = static_cast<std::uint64_t>(v.int_or("refills", 0));
  p.devices = static_cast<std::uint64_t>(v.int_or("devices", 1));
  p.rebalanced = static_cast<std::uint64_t>(v.int_or("rebalanced", 0));
  if (const JsonValue* shards = v.find("shards")) {
    for (const JsonValue& sv : shards->as_array()) {
      core::ShardOccupancy s;
      s.device = static_cast<std::uint64_t>(sv.int_or("device", 0));
      s.live = static_cast<std::uint64_t>(sv.int_or("live", 0));
      s.peak_live = static_cast<std::uint64_t>(sv.int_or("peak_live", 0));
      s.allocated = static_cast<std::uint64_t>(sv.int_or("allocated", 0));
      s.released = static_cast<std::uint64_t>(sv.int_or("released", 0));
      s.spills = static_cast<std::uint64_t>(sv.int_or("spills", 0));
      s.steals = static_cast<std::uint64_t>(sv.int_or("steals", 0));
      s.refills = static_cast<std::uint64_t>(sv.int_or("refills", 0));
      p.shards.push_back(s);
    }
  }
  return p;
}

void accumulate_engine_stats(core::EngineStats& into,
                             const core::EngineStats& more) {
  into.branched += more.branched;
  into.generated += more.generated;
  into.evaluated += more.evaluated;
  into.pruned += more.pruned;
  into.leaves += more.leaves;
  into.ub_updates += more.ub_updates;
  into.bounding_seconds += more.bounding_seconds;
  if (more.wall_seconds > into.wall_seconds) {
    into.wall_seconds = more.wall_seconds;
  }
  if (into.initial_ub == 0) into.initial_ub = more.initial_ub;
}

core::StopReason combine_stop_reasons(core::StopReason a, core::StopReason b) {
  // Severity for aggregation; a shard that was canceled or deadlined taints
  // the merged report even if every other shard finished optimal.
  const auto rank = [](core::StopReason r) {
    switch (r) {
      case core::StopReason::kCanceled:
        return 4;
      case core::StopReason::kDeadline:
        return 3;
      case core::StopReason::kBudget:
        return 2;
      case core::StopReason::kFrozen:
        return 1;
      case core::StopReason::kOptimal:
        return 0;
    }
    return 0;
  };
  return rank(a) >= rank(b) ? a : b;
}

}  // namespace fsbb::api
