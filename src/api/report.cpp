#include "api/report.h"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace fsbb::api {

// Minimal JSON writer: enough for the report shape, deterministic output.
// Every control character (U+0000–U+001F) must be escaped — RFC 8259 — or
// a backend name / error string with a stray byte emits invalid JSON.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string num(double v) {
  std::ostringstream ss;
  ss << v;
  return ss.str();
}

class JsonObject {
 public:
  void field(const std::string& key, const std::string& raw_value) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + json_escape(key) + "\":" + raw_value;
  }
  void str(const std::string& key, const std::string& value) {
    field(key, "\"" + json_escape(value) + "\"");
  }
  template <typename T>
  void integer(const std::string& key, T value) {
    field(key, std::to_string(value));
  }
  void real(const std::string& key, double value) { field(key, num(value)); }
  void boolean(const std::string& key, bool value) {
    field(key, value ? "true" : "false");
  }
  std::string done() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

std::string config_json(const SolverConfig& c) {
  JsonObject inst;
  inst.integer("ta_id", c.instance.ta_id);
  inst.integer("jobs", c.instance.jobs);
  inst.integer("machines", c.instance.machines);
  inst.integer("seed", c.instance.seed);
  inst.integer("count", c.instance.count);

  JsonObject o;
  o.str("backend", c.backend);
  o.str("bound", to_string(c.bound));
  o.str("strategy", core::to_string(c.strategy));
  o.integer("batch_size", c.batch_size);
  o.integer("threads", c.threads);
  o.integer("batch_workers", c.batch_workers);
  o.str("victim_order", core::to_string(c.victim_order));
  o.integer("steal_batch", c.steal_batch);
  o.integer("block_threads", c.block_threads);
  o.str("placement", gpubb::to_string(c.placement));
  o.str("device", c.device);
  o.field("initial_ub",
          c.initial_ub ? std::to_string(*c.initial_ub) : "null");
  o.integer("node_budget", c.node_budget);
  o.real("time_limit_seconds", c.time_limit_seconds);
  o.field("instance", inst.done());
  return o.done();
}

std::string stats_json(const core::EngineStats& s) {
  JsonObject o;
  o.integer("branched", s.branched);
  o.integer("generated", s.generated);
  o.integer("evaluated", s.evaluated);
  o.integer("pruned", s.pruned);
  o.integer("leaves", s.leaves);
  o.integer("ub_updates", s.ub_updates);
  o.real("wall_seconds", s.wall_seconds);
  o.real("bounding_seconds", s.bounding_seconds);
  o.integer("initial_ub", s.initial_ub);
  return o.done();
}

std::string ledger_json(const core::EvalLedger& l) {
  JsonObject o;
  o.integer("batches", l.batches);
  o.integer("nodes", l.nodes);
  o.real("wall_seconds", l.wall_seconds);
  return o.done();
}

std::string steal_json(const core::StealStats& s) {
  JsonObject o;
  o.integer("attempts", s.steal_attempts);
  o.integer("successes", s.steal_successes);
  o.integer("nodes_stolen", s.nodes_stolen);
  o.real("success_rate", s.success_rate());
  return o.done();
}

}  // namespace

std::string SolveReport::to_json() const {
  JsonObject inst;
  inst.str("name", instance_name);
  inst.integer("jobs", jobs);
  inst.integer("machines", machines);

  std::string perm = "[";
  for (std::size_t i = 0; i < best_permutation.size(); ++i) {
    if (i) perm += ",";
    perm += std::to_string(best_permutation[i]);
  }
  perm += "]";

  JsonObject result;
  result.integer("best_makespan", best_makespan);
  result.boolean("proven_optimal", proven_optimal);
  result.field("best_permutation", perm);

  JsonObject o;
  o.field("config", config_json(config));
  o.field("instance", inst.done());
  o.str("backend", backend);
  o.str("evaluator", evaluator);
  o.field("result", result.done());
  o.field("stats", stats_json(stats));
  o.field("eval", eval ? ledger_json(*eval) : "null");
  o.field("steal", steal ? steal_json(*steal) : "null");
  return o.done();
}

void SolveReport::print_text(std::ostream& os) const {
  os << instance_name << " (" << jobs << "x" << machines << ") via " << backend;
  if (!evaluator.empty()) os << " [" << evaluator << "]";
  os << "\n  makespan " << best_makespan
     << (proven_optimal ? " (proven optimal)" : " (not proven)") << "\n  ";
  if (best_permutation.empty()) {
    os << "no schedule beat the initial bound";
  } else {
    os << "order";
    for (const fsp::JobId j : best_permutation) os << " J" << j;
  }
  os << "\n  " << stats.branched << " branched, " << stats.evaluated
     << " bounded, " << stats.pruned << " pruned, " << stats.leaves
     << " leaves, " << stats.ub_updates << " incumbent updates\n"
     << "  " << num(stats.wall_seconds) << " s total, "
     << static_cast<int>(stats.bounding_fraction() * 100)
     << "% in the bounding operator\n";
  if (steal) {
    os << "  " << steal->nodes_stolen << " nodes stolen in "
       << steal->steal_successes << "/" << steal->steal_attempts
       << " successful steals\n";
  }
}

std::ostream& operator<<(std::ostream& os, const SolveReport& report) {
  report.print_text(os);
  return os;
}

}  // namespace fsbb::api
