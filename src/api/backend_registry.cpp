#include "api/backend_registry.h"

#include <initializer_list>
#include <utility>

#include "common/check.h"
#include "fsp/lb1.h"
#include "fsp/lb2.h"
#include "fsp/lb_one_machine.h"
#include "gpubb/adaptive_evaluator.h"
#include "gpubb/autotuner.h"
#include "gpubb/gpu_evaluator.h"
#include "gpubb/multi_device_pool.h"
#include "gpusim/kernel.h"
#include "mtbb/mt_engine.h"
#include "mtbb/steal_engine.h"

namespace fsbb::api {
namespace {

// Engine batch size each backend uses when config.batch_size == 0. The
// serial modes bound node-by-node (the classic B&B); the parallel modes
// accumulate a pool, the paper's Type-1 offload shape.
std::size_t default_batch(const std::string& key) {
  if (key == "cpu-threads") return 64;
  if (key == "gpu-sim" || key == "adaptive") return 256;
  return 1;
}

// The explicit reject-or-run decision per (backend, bound) combination:
// every parallel backend names exactly the bounds it implements, and a
// rejected combo says what was asked, what the backend supports, and
// which backends do support the requested bound — no silent fallbacks.
void require_bound(const BackendContext& ctx, const std::string& key,
                   std::initializer_list<Bound> supported) {
  const Bound want = ctx.config->bound;
  for (const Bound b : supported) {
    if (b == want) return;
  }
  std::string have;
  for (const Bound b : supported) {
    if (!have.empty()) have += "|";
    have += to_string(b);
  }
  std::string alternatives = "cpu-serial or callback";
  if (want == Bound::kLb2) {
    alternatives += " or cpu-threads/multicore/cpu-steal";
  }
  FSBB_CHECK_MSG(false, "backend '" + key + "' supports --bound " + have +
                            " but got " + std::string(to_string(want)) +
                            "; use " + alternatives + " for " +
                            std::string(to_string(want)));
}

// Serial evaluator for the configured bound. LB1 and LB2 get the
// scratch-reusing sibling fast path (the evaluator owns the lb2 tables);
// LB0 goes through the callback seam.
std::unique_ptr<core::BoundEvaluator> make_serial_evaluator(
    const BackendContext& ctx) {
  const fsp::Instance& inst = *ctx.instance;
  const fsp::LowerBoundData& data = *ctx.data;
  switch (ctx.config->bound) {
    case Bound::kLb1:
      return std::make_unique<core::SerialCpuEvaluator>(inst, data);
    case Bound::kLb0: {
      // CallbackEvaluator evaluates serially, so one scratch per
      // evaluator (captured by the closure) removes the per-node
      // allocations of the convenience overload.
      auto scratch = std::make_shared<fsp::Lb1Scratch>(inst.jobs(),
                                                       inst.machines());
      return std::make_unique<core::CallbackEvaluator>(
          "lb0-serial", [&inst, &data, scratch](const core::Subproblem& sp) {
            return fsp::lb0_from_prefix(inst, data, sp.prefix(), *scratch);
          });
    }
    case Bound::kLb2:
      return std::make_unique<core::SerialCpuEvaluator>(
          inst, data, fsp::Lb2Data::build(inst));
  }
  FSBB_CHECK_MSG(false, "unreachable bound");
  return nullptr;
}

/// Backend driving the shared BBEngine with an owned BoundEvaluator.
class EngineBackend final : public Backend {
 public:
  EngineBackend(std::string key, const BackendContext& ctx,
                std::unique_ptr<gpusim::SimDevice> device,
                std::unique_ptr<core::BoundEvaluator> evaluator)
      : key_(std::move(key)),
        ctx_(ctx),
        device_(std::move(device)),
        evaluator_(std::move(evaluator)) {}

  std::string name() const override { return key_; }
  std::string detail() const override { return evaluator_->name(); }

  core::SolveResult solve() override {
    core::BBEngine engine(*ctx_.instance, *ctx_.data, *evaluator_, options());
    return engine.solve();
  }

  core::SolveResult solve_from(std::vector<core::Subproblem> initial,
                               fsp::Time initial_ub) override {
    core::BBEngine engine(*ctx_.instance, *ctx_.data, *evaluator_, options());
    return engine.solve_from(std::move(initial), initial_ub);
  }

  const core::EvalLedger* eval_ledger() const override {
    return &evaluator_->ledger();
  }

  bool collects_remaining_pool() const override { return true; }

 private:
  core::EngineOptions options() const {
    const SolverConfig& c = *ctx_.config;
    core::EngineOptions o;
    o.strategy = c.strategy;
    o.batch_size = c.batch_size != 0 ? c.batch_size : default_batch(key_);
    o.initial_ub = c.initial_ub;
    o.node_budget = c.node_budget;
    o.time_limit_seconds = c.time_limit_seconds;
    o.collect_pool_on_stop = ctx_.collect_pool_on_stop;
    o.control = ctx_.control;
    return o;
  }

  std::string key_;
  BackendContext ctx_;
  std::unique_ptr<gpusim::SimDevice> device_;  // referenced by evaluator_
  std::unique_ptr<core::BoundEvaluator> evaluator_;
};

mtbb::MtOptions mt_options(const BackendContext& ctx) {
  mtbb::MtOptions o;
  o.threads = ctx.config->threads;
  o.bound = ctx.config->bound == Bound::kLb2 ? mtbb::MtBound::kLb2
                                             : mtbb::MtBound::kLb1;
  o.initial_ub = ctx.config->initial_ub;
  o.node_budget = ctx.config->node_budget;
  o.victim_order = ctx.config->victim_order;
  o.steal_batch = ctx.config->steal_batch;
  o.deque = ctx.config->deque;
  o.control = ctx.control;
  return o;
}

/// The §V shared-pool Pthread baseline, which runs its own search loop.
class MulticoreBackend final : public Backend {
 public:
  explicit MulticoreBackend(const BackendContext& ctx) : ctx_(ctx) {}

  std::string name() const override { return "multicore"; }

  core::SolveResult solve() override {
    return mtbb::mt_solve(*ctx_.instance, *ctx_.data, mt_options(ctx_));
  }

  core::SolveResult solve_from(std::vector<core::Subproblem> initial,
                               fsp::Time initial_ub) override {
    return mtbb::mt_solve_from(*ctx_.instance, *ctx_.data, std::move(initial),
                               initial_ub, mt_options(ctx_));
  }

 private:
  BackendContext ctx_;
};

/// The sharded-pool work-stealing engine (mtbb/steal_engine.h).
class StealBackend final : public Backend {
 public:
  explicit StealBackend(const BackendContext& ctx) : ctx_(ctx) {}

  std::string name() const override { return "cpu-steal"; }

  core::SolveResult solve() override {
    return mtbb::steal_solve(*ctx_.instance, *ctx_.data, mt_options(ctx_));
  }

  core::SolveResult solve_from(std::vector<core::Subproblem> initial,
                               fsp::Time initial_ub) override {
    return mtbb::steal_solve_from(*ctx_.instance, *ctx_.data,
                                  std::move(initial), initial_ub,
                                  mt_options(ctx_));
  }

 private:
  BackendContext ctx_;
};

/// --gpu-pool / --gpu-devices resolved to one (spec, mode) pair per card.
/// "auto" runs the analytic autotuner probe per device — heterogeneous
/// cards may genuinely pick different modes — except that dfs is
/// all-or-nothing across cards (the SubtreeDfs seam cannot mix with
/// per-level lanes), so a split dfs vote falls back to resident. The
/// resolved modes are echoed through the evaluator's name() in reports,
/// and re-resolving the same config picks the same modes, so "auto" runs
/// stay reproducible.
struct GpuSetup {
  std::vector<gpusim::DeviceSpec> specs;
  std::vector<gpubb::GpuPoolMode> modes;
};

GpuSetup resolve_gpu_setup(const BackendContext& ctx) {
  GpuSetup setup;
  setup.specs = multi_device_specs(*ctx.config);
  if (ctx.config->gpu_pool != gpubb::GpuPoolMode::kAuto) {
    setup.modes.assign(setup.specs.size(), ctx.config->gpu_pool);
    return setup;
  }
  const bool allow_dfs =
      ctx.config->strategy == core::SelectionStrategy::kDepthFirst;
  std::size_t dfs_votes = 0;
  for (const gpusim::DeviceSpec& spec : setup.specs) {
    const gpubb::PoolModeChoice choice = gpubb::choose_pool_mode(
        spec, *ctx.data, ctx.config->placement, allow_dfs,
        ctx.config->block_threads);
    setup.modes.push_back(choice.mode);
    if (choice.mode == gpubb::GpuPoolMode::kDfs) ++dfs_votes;
  }
  if (dfs_votes != 0 && dfs_votes != setup.modes.size()) {
    for (gpubb::GpuPoolMode& mode : setup.modes) {
      if (mode == gpubb::GpuPoolMode::kDfs) mode = gpubb::GpuPoolMode::kResident;
    }
  }
  return setup;
}

gpubb::MultiDeviceConfig multi_device_config(const BackendContext& ctx,
                                             GpuSetup setup) {
  gpubb::MultiDeviceConfig mdc;
  mdc.specs = std::move(setup.specs);
  mdc.modes = std::move(setup.modes);
  mdc.policy = ctx.config->placement;
  mdc.block_threads = ctx.config->block_threads;
  mdc.control = ctx.control;  // cross-card incumbent broadcast target
  return mdc;
}

void check_context(const BackendContext& ctx) {
  FSBB_CHECK_MSG(ctx.instance && ctx.data && ctx.config,
                 "BackendContext must carry instance, data and config");
}

void register_builtins(BackendRegistry& r) {
  r.add("cpu-serial",
        "serial host bounding (lb0/lb1/lb2 per --bound); the reference",
        [](const BackendContext& ctx) -> std::unique_ptr<Backend> {
          return std::make_unique<EngineBackend>("cpu-serial", ctx, nullptr,
                                                 make_serial_evaluator(ctx));
        });
  r.add("callback",
        "serial callback evaluator around the configured bound; the "
        "template for plugging in new bounds",
        [](const BackendContext& ctx) -> std::unique_ptr<Backend> {
          const fsp::Instance& inst = *ctx.instance;
          const fsp::LowerBoundData& data = *ctx.data;
          std::unique_ptr<core::BoundEvaluator> eval;
          if (ctx.config->bound == Bound::kLb1) {
            eval = std::make_unique<core::CallbackEvaluator>(
                "lb1-callback", [&inst, &data](const core::Subproblem& sp) {
                  return fsp::lb1_from_prefix(inst, data, sp.prefix());
                });
          } else if (ctx.config->bound == Bound::kLb2) {
            // Stays a genuine per-node replay (no sibling seam): the
            // differential-fuzz suite uses this backend as the replay
            // reference against the incremental contexts.
            auto lb2 = std::make_shared<fsp::Lb2Data>(fsp::Lb2Data::build(inst));
            auto scratch = std::make_shared<fsp::Lb2Scratch>(inst.jobs(),
                                                             inst.machines());
            eval = std::make_unique<core::CallbackEvaluator>(
                "lb2-callback",
                [&inst, &data, lb2, scratch](const core::Subproblem& sp) {
                  return fsp::lb2_from_prefix(inst, data, *lb2, sp.prefix(),
                                              *scratch);
                });
          } else {
            eval = make_serial_evaluator(ctx);
          }
          return std::make_unique<EngineBackend>("callback", ctx, nullptr,
                                                 std::move(eval));
        });
  r.add("cpu-threads",
        "lb1/lb2 fanned over a host thread pool (--threads); Type-1 "
        "parallelism",
        [](const BackendContext& ctx) -> std::unique_ptr<Backend> {
          require_bound(ctx, "cpu-threads", {Bound::kLb1, Bound::kLb2});
          auto eval =
              ctx.config->bound == Bound::kLb2
                  ? std::make_unique<core::ThreadedCpuEvaluator>(
                        *ctx.instance, *ctx.data,
                        fsp::Lb2Data::build(*ctx.instance),
                        ctx.config->threads)
                  : std::make_unique<core::ThreadedCpuEvaluator>(
                        *ctx.instance, *ctx.data, ctx.config->threads);
          return std::make_unique<EngineBackend>("cpu-threads", ctx, nullptr,
                                                 std::move(eval));
        });
  r.add("gpu-sim",
        "hybrid CPU + simulated-GPU B&B (the paper's contribution); "
        "--device, --gpu-devices, --placement, --block-threads, --gpu-pool "
        "(incl. auto) apply",
        [](const BackendContext& ctx) -> std::unique_ptr<Backend> {
          require_bound(ctx, "gpu-sim", {Bound::kLb1});
          GpuSetup setup = resolve_gpu_setup(ctx);
          if (setup.specs.size() == 1) {
            auto device =
                std::make_unique<gpusim::SimDevice>(setup.specs.front());
            auto eval = std::make_unique<gpubb::GpuBoundEvaluator>(
                *device, *ctx.instance, *ctx.data, ctx.config->placement,
                ctx.config->block_threads,
                gpusim::GpuCalibration::fermi_defaults(),
                setup.modes.front());
            return std::make_unique<EngineBackend>(
                "gpu-sim", ctx, std::move(device), std::move(eval));
          }
          auto eval = std::make_unique<gpubb::MultiDevicePool>(
              *ctx.instance, *ctx.data,
              multi_device_config(ctx, std::move(setup)));
          return std::make_unique<EngineBackend>("gpu-sim", ctx, nullptr,
                                                 std::move(eval));
        });
  r.add("adaptive",
        "concurrent host threads + simulated GPU(s) split at the modeled "
        "break-even pool size (§VI outlook); --gpu-pool, --gpu-devices "
        "apply",
        [](const BackendContext& ctx) -> std::unique_ptr<Backend> {
          require_bound(ctx, "adaptive", {Bound::kLb1});
          GpuSetup setup = resolve_gpu_setup(ctx);
          if (setup.specs.size() == 1) {
            auto device =
                std::make_unique<gpusim::SimDevice>(setup.specs.front());
            auto eval = std::make_unique<gpubb::AdaptiveEvaluator>(
                *device, *ctx.instance, *ctx.data, ctx.config->placement,
                ctx.config->threads, /*threshold=*/0, setup.modes.front());
            return std::make_unique<EngineBackend>(
                "adaptive", ctx, std::move(device), std::move(eval));
          }
          auto eval = std::make_unique<gpubb::AdaptiveEvaluator>(
              *ctx.instance, *ctx.data,
              multi_device_config(ctx, std::move(setup)),
              ctx.config->threads, /*threshold=*/0);
          return std::make_unique<EngineBackend>("adaptive", ctx, nullptr,
                                                 std::move(eval));
        });
  r.add("multicore",
        "shared-pool Pthread-style B&B over --threads workers (§V "
        "baseline; lb1 or lb2 per --bound); strategy/batch/time-limit do "
        "not apply",
        [](const BackendContext& ctx) -> std::unique_ptr<Backend> {
          require_bound(ctx, "multicore", {Bound::kLb1, Bound::kLb2});
          return std::make_unique<MulticoreBackend>(ctx);
        });
  r.add("cpu-steal",
        "work-stealing sharded-pool B&B over --threads workers "
        "(--victim-order, --steal-batch, --deque; lb1 or lb2 per "
        "--bound); strategy/batch/time-limit do not apply",
        [](const BackendContext& ctx) -> std::unique_ptr<Backend> {
          require_bound(ctx, "cpu-steal", {Bound::kLb1, Bound::kLb2});
          return std::make_unique<StealBackend>(ctx);
        });
}

}  // namespace

BackendRegistry& BackendRegistry::global() {
  static BackendRegistry* registry = [] {
    auto* r = new BackendRegistry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

void BackendRegistry::add(std::string key, std::string description,
                          Factory factory) {
  FSBB_CHECK_MSG(!key.empty(), "backend key must not be empty");
  FSBB_CHECK_MSG(factory != nullptr, "backend factory must not be null");
  const LockGuard lock(mu_);
  const bool inserted =
      entries_
          .emplace(std::move(key),
                   Entry{std::move(description), std::move(factory)})
          .second;
  FSBB_CHECK_MSG(inserted, "backend key already registered");
}

bool BackendRegistry::contains(const std::string& key) const {
  const LockGuard lock(mu_);
  return entries_.count(key) != 0;
}

std::vector<std::string> BackendRegistry::keys() const {
  const LockGuard lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(key);
  return out;  // std::map iteration order: already sorted
}

std::string BackendRegistry::description(const std::string& key) const {
  const LockGuard lock(mu_);
  const auto it = entries_.find(key);
  FSBB_CHECK_MSG(it != entries_.end(), "unknown backend '" + key + "'");
  return it->second.description;
}

void BackendRegistry::require(const std::string& key) const {
  const LockGuard lock(mu_);
  if (entries_.count(key) != 0) return;
  std::string known;
  for (const auto& [k, entry] : entries_) {
    if (!known.empty()) known += ", ";
    known += k;
  }
  FSBB_CHECK_MSG(false,
                 "unknown backend '" + key + "' (registered: " + known + ")");
}

std::unique_ptr<Backend> BackendRegistry::create(
    const std::string& key, const BackendContext& ctx) const {
  check_context(ctx);
  require(key);
  Factory factory;
  {
    const LockGuard lock(mu_);
    factory = entries_.at(key).factory;
  }
  std::unique_ptr<Backend> backend = factory(ctx);
  FSBB_CHECK_MSG(backend != nullptr, "backend factory returned null");
  return backend;
}

}  // namespace fsbb::api
