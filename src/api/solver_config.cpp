#include "api/solver_config.h"

#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "fsp/taillard.h"

namespace fsbb::api {

const char* to_string(Bound b) {
  switch (b) {
    case Bound::kLb0:
      return "lb0";
    case Bound::kLb1:
      return "lb1";
    case Bound::kLb2:
      return "lb2";
  }
  return "?";
}

Bound parse_bound(const std::string& text) {
  if (text == "lb0") return Bound::kLb0;
  if (text == "lb1") return Bound::kLb1;
  if (text == "lb2") return Bound::kLb2;
  FSBB_CHECK_MSG(false, "unknown bound '" + text + "' (lb0|lb1|lb2)");
  return Bound::kLb1;
}

core::SelectionStrategy parse_strategy(const std::string& text) {
  if (text == "best-first") return core::SelectionStrategy::kBestFirst;
  if (text == "depth-first") return core::SelectionStrategy::kDepthFirst;
  FSBB_CHECK_MSG(false,
                 "unknown strategy '" + text + "' (best-first|depth-first)");
  return core::SelectionStrategy::kBestFirst;
}

gpubb::PlacementPolicy parse_placement(const std::string& text) {
  using gpubb::PlacementPolicy;
  for (const PlacementPolicy p :
       {PlacementPolicy::kAllGlobal, PlacementPolicy::kSharedJmPtm,
        PlacementPolicy::kSharedJm, PlacementPolicy::kSharedPtm,
        PlacementPolicy::kAuto}) {
    if (text == gpubb::to_string(p)) return p;
  }
  FSBB_CHECK_MSG(false, "unknown placement '" + text +
                            "' (all-global|shared-JM+PTM|shared-JM|"
                            "shared-PTM|auto-greedy)");
  return PlacementPolicy::kAuto;
}

std::vector<fsp::Instance> make_instances(const InstanceSpec& spec) {
  std::vector<fsp::Instance> out;
  if (spec.ta_id > 0) {
    out.push_back(fsp::taillard_instance(spec.ta_id));
    return out;
  }
  FSBB_CHECK_MSG(spec.count >= 1, "instance count must be >= 1");
  out.reserve(static_cast<std::size_t>(spec.count));
  for (int i = 0; i < spec.count; ++i) {
    const auto seed = static_cast<std::int32_t>(spec.seed + i);
    std::ostringstream name;
    name << "ta-like-" << spec.jobs << "x" << spec.machines << "-s" << seed;
    out.push_back(fsp::make_taillard_instance(spec.jobs, spec.machines, seed,
                                              name.str()));
  }
  return out;
}

namespace {

// Non-negative numeric flag; rejects negatives before the unsigned cast
// (a raw cast would wrap -1 to SIZE_MAX and sail past validate()).
std::size_t get_count_flag(const CliArgs& args, const std::string& name,
                           std::size_t fallback) {
  const std::int64_t v =
      args.get_int_or(name, static_cast<std::int64_t>(fallback));
  FSBB_CHECK_MSG(v >= 0, "flag --" + name + " must be >= 0");
  return static_cast<std::size_t>(v);
}

}  // namespace

const std::vector<std::string>& SolverConfig::cli_flags() {
  static const std::vector<std::string> kFlags = {
      "backend",    "bound",         "strategy",   "batch",
      "threads",    "batch-workers", "block-threads", "placement",
      "device",     "ub",            "node-budget",   "time-limit",
      "ta",         "jobs",          "machines",      "seed",
      "count",      "victim-order",  "steal-batch",   "deque",
      "deadline-ms",
      "progress-interval-ms",        "gpu-pool",      "tenant",
      "priority",   "gpu-devices",
  };
  return kFlags;
}

SolverConfig SolverConfig::from_cli(const CliArgs& args) {
  SolverConfig c;
  c.backend = args.get_or("backend", c.backend);
  if (const auto v = args.get("bound")) c.bound = parse_bound(*v);
  if (const auto v = args.get("strategy")) c.strategy = parse_strategy(*v);
  c.batch_size = get_count_flag(args, "batch", c.batch_size);
  c.threads = get_count_flag(args, "threads", c.threads);
  c.batch_workers = get_count_flag(args, "batch-workers", c.batch_workers);
  if (const auto v = args.get("victim-order")) {
    c.victim_order = core::parse_victim_order(*v);
  }
  c.steal_batch = get_count_flag(args, "steal-batch", c.steal_batch);
  if (const auto v = args.get("deque")) {
    c.deque = core::parse_deque_kind(*v);
  }
  c.block_threads =
      static_cast<int>(args.get_int_or("block-threads", c.block_threads));
  if (const auto v = args.get("placement")) c.placement = parse_placement(*v);
  if (const auto v = args.get("gpu-pool")) {
    c.gpu_pool = gpubb::parse_gpu_pool_mode(*v);
  }
  c.device = args.get_or("device", c.device);
  c.gpu_devices = args.get_or("gpu-devices", c.gpu_devices);
  if (args.has("ub")) {
    c.initial_ub = static_cast<fsp::Time>(args.get_int_or("ub", 0));
  }
  c.node_budget =
      static_cast<std::uint64_t>(get_count_flag(args, "node-budget",
                                                static_cast<std::size_t>(c.node_budget)));
  c.time_limit_seconds = args.get_double_or("time-limit", c.time_limit_seconds);
  if (args.has("deadline-ms")) {
    c.deadline_ms = get_count_flag(args, "deadline-ms", 0);
  }
  c.progress_interval_ms =
      get_count_flag(args, "progress-interval-ms", c.progress_interval_ms);
  c.tenant = args.get_or("tenant", c.tenant);
  c.priority = args.get_or("priority", c.priority);
  c.instance.ta_id = static_cast<int>(args.get_int_or("ta", c.instance.ta_id));
  c.instance.jobs = static_cast<int>(args.get_int_or("jobs", c.instance.jobs));
  c.instance.machines =
      static_cast<int>(args.get_int_or("machines", c.instance.machines));
  c.instance.seed = static_cast<std::int32_t>(
      args.get_int_or("seed", c.instance.seed));
  c.instance.count =
      static_cast<int>(args.get_int_or("count", c.instance.count));
  c.validate();
  return c;
}

SolverConfig SolverConfig::from_argv(
    int argc, const char* const* argv,
    const std::vector<std::string>& extra_flags) {
  std::vector<std::string> known = cli_flags();
  known.insert(known.end(), extra_flags.begin(), extra_flags.end());
  return from_cli(CliArgs::parse(argc, argv, known));
}

std::vector<std::string> SolverConfig::to_cli() const {
  std::vector<std::string> out;
  const auto flag = [&out](const std::string& name, const std::string& value) {
    out.push_back("--" + name + "=" + value);
  };
  flag("backend", backend);
  flag("bound", to_string(bound));
  flag("strategy", core::to_string(strategy));
  flag("batch", std::to_string(batch_size));
  flag("threads", std::to_string(threads));
  flag("batch-workers", std::to_string(batch_workers));
  flag("victim-order", core::to_string(victim_order));
  flag("steal-batch", std::to_string(steal_batch));
  flag("deque", core::to_string(deque));
  flag("block-threads", std::to_string(block_threads));
  flag("placement", gpubb::to_string(placement));
  flag("gpu-pool", gpubb::to_string(gpu_pool));
  flag("device", device);
  flag("gpu-devices", gpu_devices);
  if (initial_ub) flag("ub", std::to_string(*initial_ub));
  flag("node-budget", std::to_string(node_budget));
  {
    // max_digits10 keeps the from_cli(parse(to_cli())) round-trip exact.
    std::ostringstream ss;
    ss << std::setprecision(std::numeric_limits<double>::max_digits10)
       << time_limit_seconds;
    flag("time-limit", ss.str());
  }
  if (deadline_ms) flag("deadline-ms", std::to_string(*deadline_ms));
  flag("progress-interval-ms", std::to_string(progress_interval_ms));
  flag("tenant", tenant);
  flag("priority", priority);
  flag("ta", std::to_string(instance.ta_id));
  flag("jobs", std::to_string(instance.jobs));
  flag("machines", std::to_string(instance.machines));
  flag("seed", std::to_string(instance.seed));
  flag("count", std::to_string(instance.count));
  return out;
}

void SolverConfig::validate() const {
  FSBB_CHECK_MSG(!backend.empty(), "backend key must not be empty");
  FSBB_CHECK_MSG(threads >= 1, "threads must be >= 1");
  FSBB_CHECK_MSG(steal_batch >= 1, "steal batch must be >= 1");
  FSBB_CHECK_MSG(time_limit_seconds >= 0, "time limit must be >= 0");
  FSBB_CHECK_MSG(!tenant.empty(), "tenant must not be empty");
  FSBB_CHECK_MSG(
      priority == "high" || priority == "normal" || priority == "low",
      "unknown priority '" + priority + "' (high|normal|low)");
  device_spec_for(*this);     // throws on unknown device keys
  multi_device_specs(*this);  // throws on malformed --gpu-devices
  if (instance.ta_id == 0) {
    FSBB_CHECK_MSG(instance.jobs >= 1 && instance.machines >= 1,
                   "instance dimensions must be >= 1");
    FSBB_CHECK_MSG(instance.count >= 1, "instance count must be >= 1");
  }
}

namespace {

gpusim::DeviceSpec device_spec_for_key(const std::string& key) {
  if (key == "c2050") return gpusim::DeviceSpec::tesla_c2050();
  if (key == "c1060") return gpusim::DeviceSpec::tesla_c1060();
  FSBB_CHECK_MSG(false, "unknown device '" + key + "' (c2050|c1060)");
  return gpusim::DeviceSpec::tesla_c2050();
}

}  // namespace

gpusim::DeviceSpec device_spec_for(const SolverConfig& config) {
  return device_spec_for_key(config.device);
}

std::vector<gpusim::DeviceSpec> multi_device_specs(const SolverConfig& config) {
  const std::string& text = config.gpu_devices;
  const std::size_t colon = text.find(':');
  const std::string count_text = text.substr(0, colon);
  std::size_t pos = 0;
  int count = 0;
  try {
    count = std::stoi(count_text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  FSBB_CHECK_MSG(pos == count_text.size() && !count_text.empty() && count >= 1,
                 "--gpu-devices wants N or N:key,key..., got '" + text + "'");

  std::vector<gpusim::DeviceSpec> specs;
  if (colon == std::string::npos) {
    specs.assign(static_cast<std::size_t>(count),
                 device_spec_for_key(config.device));
    return specs;
  }
  std::string rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    specs.push_back(device_spec_for_key(rest.substr(0, comma)));
    if (comma == std::string::npos) break;
    rest = rest.substr(comma + 1);
  }
  FSBB_CHECK_MSG(specs.size() == static_cast<std::size_t>(count),
                 "--gpu-devices '" + text + "' names " +
                     std::to_string(specs.size()) + " spec(s) but asks for " +
                     std::to_string(count));
  return specs;
}

}  // namespace fsbb::api
