#include "api/scenario.h"

#include "common/check.h"
#include "fsp/taillard.h"

namespace fsbb::api {

Workload make_class_workload(int jobs, int machines,
                             std::size_t freeze_target) {
  Workload w;
  w.instance = std::make_unique<fsp::Instance>(
      fsp::taillard_class_representative(jobs, machines));
  w.data = std::make_unique<fsp::LowerBoundData>(
      fsp::LowerBoundData::build(*w.instance));
  w.frozen = core::freeze_pool(*w.instance, *w.data, freeze_target);
  return w;
}

Workload make_workload(const InstanceSpec& spec, std::size_t freeze_target,
                       std::optional<fsp::Time> initial_ub) {
  std::vector<fsp::Instance> instances = make_instances(spec);
  FSBB_CHECK_MSG(instances.size() == 1,
                 "a workload freezes exactly one instance (count must be 1)");
  Workload w;
  w.instance = std::make_unique<fsp::Instance>(std::move(instances.front()));
  w.data = std::make_unique<fsp::LowerBoundData>(
      fsp::LowerBoundData::build(*w.instance));
  w.frozen = core::freeze_pool(*w.instance, *w.data, freeze_target, initial_ub);
  return w;
}

gpubb::OffloadScenario measure_offload(gpusim::SimDevice& device,
                                       const Workload& workload,
                                       const SolverConfig& config,
                                       std::size_t frontier_nodes) {
  return gpubb::measure_scenario(device, workload.inst(), workload.lb(),
                                 config.placement, workload.frozen.nodes,
                                 frontier_nodes, config.block_threads);
}

}  // namespace fsbb::api
