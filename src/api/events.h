// Streaming progress events for asynchronous jobs.
//
// A submitted job (api/service.h) can be observed while it runs: the
// engine-side core::SearchEvents (incumbent improvements, periodic
// counter ticks) are lifted into ProgressEvents tagged with the job id,
// and the service appends one terminal kFinished event carrying the stop
// reason (or the error). Every event serializes to a single-line JSON
// object — the NDJSON vocabulary fsbb_serve speaks on stdout.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/search_control.h"
#include "fsp/instance.h"

namespace fsbb::api {

/// Lifecycle of a submitted job.
enum class JobState {
  kQueued,    ///< accepted, waiting for a service worker
  kRunning,   ///< a worker is searching
  kDone,      ///< finished with a report (optimal or early-stopped)
  kCanceled,  ///< finished with a report whose stop reason is canceled
  kFailed,    ///< the solve threw; the outcome carries the error
};

const char* to_string(JobState state);

/// One streamed observation of an in-flight (or just-finished) job.
struct ProgressEvent {
  enum class Kind {
    kIncumbent,  ///< the incumbent improved (permutation attached)
    kTick,       ///< periodic counters heartbeat (rate limited)
    kFinished,   ///< terminal: stop_reason (or error) is meaningful
  };

  Kind kind = Kind::kTick;
  std::uint64_t job = 0;  ///< service job id (0 = direct, unmanaged solve)
  double elapsed_seconds = 0;
  fsp::Time incumbent = std::numeric_limits<fsp::Time>::max();
  std::vector<fsp::JobId> permutation;  ///< kIncumbent events only
  std::uint64_t branched = 0;
  std::uint64_t evaluated = 0;
  std::uint64_t pruned = 0;
  /// kFinished only: why the search returned.
  core::StopReason stop_reason = core::StopReason::kOptimal;
  /// kFinished only: non-empty when the job failed instead of finishing.
  std::string error;

  /// Single-line JSON object, deterministic key order.
  std::string to_json() const;
};

const char* to_string(ProgressEvent::Kind kind);

/// Lifts an engine-side search event into the job-tagged API event.
ProgressEvent from_search_event(const core::SearchEvent& event,
                                std::uint64_t job);

}  // namespace fsbb::api
