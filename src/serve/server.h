// serve::Server / serve::Client — the multi-tenant serving core.
//
// One Server owns the shared machinery every front end multiplexes onto:
// the api::SolverService worker pool, the admission controller, the
// canonical-instance result cache and the metrics registry. One Client is
// the per-peer protocol endpoint — the stdio daemon holds exactly one,
// the TCP listener holds one per connection — carrying the peer's job-id
// namespace and its serialized output sink.
//
// The request protocol is the fsbb_serve NDJSON vocabulary (see
// tools/fsbb_serve.cpp) extended for multi-tenancy:
//
//   {"op":"submit","id":"j1","cli":"--jobs 10 ...",
//    "tenant":"acme","priority":"low","cache":"use"}
//   {"op":"metrics"}
//
// On submit the Client runs, in order: config parsing → result-cache
// consultation (exact hit answers immediately; a cached-but-unproven
// incumbent becomes the job's root bound = warm start) → admission
// control (per-tenant quota, priority-scaled queue ceiling; rejections
// carry a machine-readable reason and a retry-after hint) → service
// submission. Completion callbacks stream the result, feed the cache,
// release the tenant's quota and record latency — whatever order jobs
// finish in.
//
// A Client must be owned by std::shared_ptr (job callbacks keep it alive
// past a disconnect); close() makes the sink a no-op and cancels the
// peer's jobs, so tearing a connection down mid-solve leaves the service
// draining in the background and the server healthy.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "api/service.h"
#include "common/json.h"
#include "common/mutex.h"
#include "serve/admission.h"
#include "serve/metrics.h"
#include "serve/result_cache.h"

namespace fsbb::serve {

struct ServerOptions {
  /// Concurrent solve jobs (the SolverService worker pool).
  std::size_t workers = 8;
  /// Suppress progress events (results still flow).
  bool quiet_progress = false;
  /// Request-line cap, both transports; longer lines are discarded and
  /// answered with a structured error.
  std::size_t max_line_bytes = 1 << 20;
  AdmissionController::Options admission;
  ResultCache::Options cache;
  /// Socket sessions only: close a connection after this long without a
  /// complete request line (0 = never).
  std::uint64_t idle_timeout_ms = 0;
  /// Socket mode: concurrent connections accepted; extras are turned
  /// away with an error line.
  std::size_t max_connections = 64;
  /// Log a compact metrics line to stderr this often (0 = never).
  std::uint64_t metrics_interval_ms = 0;
  /// Socket mode: whether a client's "shutdown" op stops the whole
  /// server (CI teardown) instead of just its own session.
  bool allow_remote_shutdown = false;
};

/// Shared serving state. Construction starts the service workers (and the
/// metrics logger when configured); destruction cancels in-flight jobs
/// and drains them.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const ServerOptions& options() const { return options_; }
  api::SolverService& service() { return service_; }
  AdmissionController& admission() { return admission_; }
  ResultCache& cache() { return cache_; }
  Metrics& metrics() { return metrics_; }

  /// The full metrics registry + live queue snapshot as one JSON object.
  std::string metrics_json();

 private:
  const ServerOptions options_;
  Metrics metrics_;
  AdmissionController admission_;
  ResultCache cache_;
  std::atomic<bool> stop_logger_{false};
  std::thread logger_;
  api::SolverService service_;  // last member: jobs drain first on teardown
};

/// One protocol endpoint. The sink receives complete single-line JSON
/// events, already serialized (never concurrently) and never after
/// close() returned.
class Client : public std::enable_shared_from_this<Client> {
 public:
  using Sink = std::function<void(const std::string&)>;

  enum class Action {
    kContinue,  ///< keep reading
    kShutdown,  ///< the peer asked to shut down (transport decides scope)
  };

  Client(Server& server, Sink sink);

  /// Handles one normalized request line.
  Action handle_line(const std::string& line);

  /// Answers an over-long request line with a structured error.
  void handle_oversized_line();

  /// Stops all output to the sink, then cancels this peer's jobs. Safe to
  /// call twice; after it returns the sink is never invoked again.
  void close();

  /// Cancels this peer's jobs without muting the sink (stdio shutdown:
  /// the canceled results still stream before the process exits).
  void cancel_all();

  /// Blocks until every job submitted by this peer reached a terminal
  /// state (results still stream unless close() ran first).
  void drain();

  /// Jobs of this peer not yet forgotten (terminal results evict).
  std::size_t jobs_open() const;

 private:
  void submit(const JsonValue& request);
  void cancel(const JsonValue& request);
  void status(const JsonValue& request);
  void metrics_request();
  void reject(const std::string& id, const std::string& error);
  void protocol_error(const std::string& error);
  /// Serialized, close-gated write to the sink.
  void emit(const std::string& json);

  Server& server_;
  const Sink sink_;
  Mutex out_mu_;
  bool closed_ FSBB_GUARDED_BY(out_mu_) = false;
  mutable Mutex mu_;
  std::map<std::string, api::SolveHandle> jobs_ FSBB_GUARDED_BY(mu_);
};

}  // namespace fsbb::serve
