// serve::Listener — the TCP front end of the serving layer.
//
// Accepts loopback (or any bound-address) connections and runs one
// Session per peer: a reader thread feeding a BoundedLineReader, a
// mutex-serialized socket writer as the peer's Client sink, and the full
// multi-tenant submit pipeline behind it (serve::Client). All sessions
// multiplex onto the one Server — its SolverService pool, admission
// quotas, result cache and metrics are shared across connections, which
// is the whole point: N clients, one incumbent cache, one set of quotas.
//
// Lifecycle properties the tests pin:
//   * port 0 binds an ephemeral port; port() reports the real one.
//   * a peer disconnecting mid-solve (or exceeding the idle timeout) gets
//     its jobs canceled and its fd closed; the service drains in the
//     background and the server keeps answering other connections.
//   * connections beyond max_connections receive one structured error
//     line and are closed without a session thread.
//   * request_stop() (any thread) unwinds the accept loop and every
//     session within one poll tick; serve() returns with all threads
//     joined and all fds closed.
//
// A peer's {"op":"shutdown"} closes only its own session unless the
// server was started with allow_remote_shutdown (CI teardown), in which
// case it stops the whole listener.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "serve/server.h"

namespace fsbb::serve {

class Listener {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    /// 0 = ephemeral; the bound port is reported by port().
    std::uint16_t port = 0;
  };

  /// Binds and listens (throwing CheckFailure on failure); the accept
  /// loop does not run until serve().
  Listener(Server& server, Options options);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// The actually bound port (resolves port 0).
  std::uint16_t port() const { return port_; }

  /// Blocking accept loop; returns after request_stop() with every
  /// session joined and every fd closed.
  void serve();

  /// Thread- and signal-safe stop request; serve() unwinds within one
  /// poll tick (~200ms).
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Sessions whose thread is still running (joins finished ones).
  std::size_t active_sessions();

 private:
  struct Session;

  void run_session(Session* session, int fd);
  /// Joins sessions whose loop ended; under mu_.
  void reap_locked() FSBB_REQUIRES(mu_);

  Server& server_;
  const Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  Mutex mu_;
  std::vector<std::unique_ptr<Session>> sessions_ FSBB_GUARDED_BY(mu_);
};

}  // namespace fsbb::serve
