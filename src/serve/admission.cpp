#include "serve/admission.h"

#include <algorithm>

#include "common/check.h"

namespace fsbb::serve {

const char* to_string(Priority p) {
  switch (p) {
    case Priority::kHigh:
      return "high";
    case Priority::kNormal:
      return "normal";
    case Priority::kLow:
      return "low";
  }
  return "?";
}

Priority parse_priority(const std::string& text) {
  if (text == "high") return Priority::kHigh;
  if (text == "normal") return Priority::kNormal;
  if (text == "low") return Priority::kLow;
  FSBB_CHECK_MSG(false, "unknown priority '" + text + "' (high|normal|low)");
  return Priority::kNormal;
}

namespace {

/// Queue-depth ceiling for one priority class: the shedding thresholds
/// documented in the header. Integer math rounds down, so e.g. a
/// max_queue_depth of 4 sheds low-priority work from depth 2 on.
std::size_t depth_ceiling(std::size_t max_depth, Priority priority) {
  switch (priority) {
    case Priority::kHigh:
      return max_depth;
    case Priority::kNormal:
      return (max_depth * 85) / 100;
    case Priority::kLow:
      return max_depth / 2;
  }
  return max_depth;
}

/// Back-off hint: at least 100ms, at least one observed median job — a
/// slot opens when a job finishes, so "one job from now" is the earliest
/// a retry can plausibly succeed.
std::uint64_t retry_hint_ms(double observed_job_ms, std::size_t backlog) {
  const double one_job = std::max(100.0, observed_job_ms);
  const double wait = one_job * static_cast<double>(std::max<std::size_t>(
                                    1, backlog));
  return static_cast<std::uint64_t>(std::min(wait, 60e3));
}

}  // namespace

AdmissionController::AdmissionController(Options options)
    : options_(options) {}

AdmissionDecision AdmissionController::try_admit(const std::string& tenant,
                                                 Priority priority,
                                                 std::size_t queue_depth,
                                                 double observed_job_ms) {
  AdmissionDecision decision;
  const LockGuard lock(mu_);
  if (options_.max_queue_depth != 0) {
    const std::size_t ceiling =
        depth_ceiling(options_.max_queue_depth, priority);
    if (queue_depth >= ceiling) {
      decision.admitted = false;
      decision.reason = "queue-full";
      decision.detail = "service queue at depth " +
                        std::to_string(queue_depth) + " >= " +
                        std::to_string(ceiling) + " (the " +
                        std::string(to_string(priority)) +
                        "-priority ceiling of max-queue-depth " +
                        std::to_string(options_.max_queue_depth) + ")";
      decision.retry_after_ms = retry_hint_ms(observed_job_ms, queue_depth);
      return decision;
    }
  }
  std::size_t& active = active_[tenant];
  if (options_.max_tenant_jobs != 0 && active >= options_.max_tenant_jobs) {
    decision.admitted = false;
    decision.reason = "tenant-quota";
    decision.detail = "tenant '" + tenant + "' already has " +
                      std::to_string(active) +
                      " active jobs (quota " +
                      std::to_string(options_.max_tenant_jobs) + ")";
    decision.retry_after_ms = retry_hint_ms(observed_job_ms, 1);
    return decision;
  }
  ++active;
  return decision;
}

void AdmissionController::release(const std::string& tenant) {
  const LockGuard lock(mu_);
  const auto it = active_.find(tenant);
  FSBB_CHECK_MSG(it != active_.end() && it->second > 0,
                 "admission release without a matching admit for tenant '" +
                     tenant + "'");
  if (--it->second == 0) active_.erase(it);
}

std::size_t AdmissionController::active_jobs(const std::string& tenant) const {
  const LockGuard lock(mu_);
  const auto it = active_.find(tenant);
  return it == active_.end() ? 0 : it->second;
}

}  // namespace fsbb::serve
