// Incumbent-warm-start result cache keyed by canonical instance form.
//
// The big lever for serving heavy repeated traffic: two tenants (or the
// same one, twice) submitting the same instance — possibly with relabeled
// jobs or the reversed machine axis — should not pay for two searches.
// The cache stores, per canonical digest (fsp::CanonicalForm), the best
// schedule any job ever produced for that problem, in *canonical space*:
//
//   * exact hit: the cached schedule is proven optimal → the serving
//     layer answers immediately, translating the schedule back into the
//     requester's job labels. No solve runs.
//   * warm start: a schedule is cached but not proven optimal (an earlier
//     budget- or deadline-stopped run) → the serving layer injects its
//     makespan as the new job's root bound (SolverConfig::initial_ub +
//     SolveHandle::offer_incumbent), so the search resumes below the
//     cached incumbent instead of rediscovering it from NEH. Safe by
//     construction: cached bounds come from real schedules, and the
//     monotone-incumbent event stream already admits externally injected
//     bounds.
//
// Every lookup re-verifies the translated schedule against the actual
// instance (one O(n m) makespan evaluation), so even a 128-bit digest
// collision degrades to a cache miss, never to a wrong answer.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "fsp/canonical.h"
#include "fsp/instance.h"

namespace fsbb::serve {

/// What a lookup found, already translated into the queried instance's
/// job labels (and verified against its matrix).
struct CacheHit {
  fsp::Time makespan = 0;
  std::vector<fsp::JobId> permutation;  ///< valid schedule of the query
  bool proven_optimal = false;
  std::string source_instance;  ///< name of the instance that filled the entry
};

/// Thread-safe LRU cache over canonical instance forms.
class ResultCache {
 public:
  struct Options {
    /// Max canonical entries kept; least-recently-used evicts first.
    std::size_t capacity = 1024;
  };

  explicit ResultCache(Options options);

  /// Looks the instance's canonical form up; a hit refreshes LRU order.
  /// The caller passes the form it already computed (submission needs it
  /// for insert() later anyway; computing it once keeps the hot path to
  /// one O(n m log n) canonicalization per request).
  std::optional<CacheHit> lookup(const fsp::Instance& inst,
                                 const fsp::CanonicalForm& form) const;

  /// Records a finished solve: `perm` is a valid schedule of `inst` with
  /// the given makespan. Keeps the better of the existing entry and this
  /// one (lower makespan wins; at equal makespan, proven-optimal wins).
  /// Empty permutations are ignored — a bound without a schedule cannot
  /// seed future warm starts. Returns true when the entry was created or
  /// improved.
  bool insert(const fsp::Instance& inst, const fsp::CanonicalForm& form,
              fsp::Time makespan, std::span<const fsp::JobId> perm,
              bool proven_optimal);

  std::size_t size() const;

 private:
  struct Entry {
    std::string digest;
    fsp::Time makespan = 0;
    std::vector<fsp::JobId> canonical_perm;
    bool proven_optimal = false;
    std::string source_instance;
    int jobs = 0;
    int machines = 0;
  };

  const Options options_;
  mutable Mutex mu_;
  /// LRU list, most recent at the front; the map indexes into it.
  mutable std::list<Entry> entries_ FSBB_GUARDED_BY(mu_);
  mutable std::map<std::string, std::list<Entry>::iterator> by_digest_
      FSBB_GUARDED_BY(mu_);
};

}  // namespace fsbb::serve
