// Admission control — the gate between the transport and the service
// queue.
//
// A shared solver serving many tenants dies two ways: one tenant floods
// the queue (starving everyone), or the queue itself grows without bound
// (every job admitted, none finishing in useful time). The controller
// enforces both limits *before* SolverService::submit, so rejected work
// costs one map lookup instead of a queued job:
//
//   * per-tenant concurrency quota: at most max_tenant_jobs jobs of one
//     tenant may be active (queued + running) at once.
//   * global queue-depth quota, scaled by priority class: "high" requests
//     may fill the queue completely, "normal" is shed at 85% and "low" at
//     50% — so when the service saturates, background traffic drops first
//     and interactive traffic keeps landing (criticality-based load
//     shedding).
//
// Rejections are structured: a machine-readable reason plus a
// retry-after hint derived from observed job latency, so a well-behaved
// client backs off instead of hammering.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/mutex.h"

namespace fsbb::serve {

/// Priority classes, best first. Parsed from SolverConfig::priority.
enum class Priority { kHigh, kNormal, kLow };

const char* to_string(Priority p);
Priority parse_priority(const std::string& text);  ///< high|normal|low

/// Outcome of one admission check. When !admitted, `reason` is one of
/// "tenant-quota" | "queue-full" and retry_after_ms is the back-off hint.
struct AdmissionDecision {
  bool admitted = true;
  std::string reason;
  std::string detail;
  std::uint64_t retry_after_ms = 0;
};

/// Thread-safe per-tenant admission state. The caller owns the pairing:
/// every admitted job must be release()d exactly once when it reaches a
/// terminal state (the serving layer does this from the completion
/// callback), or the tenant's quota leaks.
class AdmissionController {
 public:
  struct Options {
    /// Max active (queued + running) jobs per tenant; 0 = unlimited.
    std::size_t max_tenant_jobs = 4;
    /// Max service queue depth (queued, not running); 0 = unlimited.
    /// Priority classes shed below this: low at 50%, normal at 85%.
    std::size_t max_queue_depth = 256;
  };

  explicit AdmissionController(Options options);

  /// Checks the quotas against the current service queue depth and, on
  /// success, charges the tenant one active job. `observed_job_ms` (the
  /// metrics registry's p50 job latency; 0 when nothing completed yet)
  /// sizes the retry-after hint on rejection.
  AdmissionDecision try_admit(const std::string& tenant, Priority priority,
                              std::size_t queue_depth,
                              double observed_job_ms);

  /// Returns one active job of `tenant` to its quota.
  void release(const std::string& tenant);

  /// Currently charged jobs of one tenant (0 for unknown tenants).
  std::size_t active_jobs(const std::string& tenant) const;

  const Options& options() const { return options_; }

 private:
  const Options options_;
  mutable Mutex mu_;
  std::map<std::string, std::size_t> active_ FSBB_GUARDED_BY(mu_);
};

}  // namespace fsbb::serve
