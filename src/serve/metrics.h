// serve::Metrics — the serving layer's observable surface.
//
// One registry aggregates everything an operator (or the CI smoke test)
// asks the daemon about: admission accepts/rejects by reason, result-cache
// traffic (exact hits / warm starts / misses), per-backend job counts and
// node throughput, connection churn, protocol errors, and an approximate
// job-latency distribution. Exported two ways: the `metrics` request
// returns the full JSON object (next to a live QueueSnapshot), and the
// daemon can log a compact one-line summary periodically.
//
// Latency quantiles come from a fixed geometric histogram (1ms buckets
// growing by 1.5x, ~64 buckets to cover a week): recording is O(1) and
// lock-cheap, and p50/p99 are exact to within one bucket's width — the
// right trade for a serving path that must never stall on bookkeeping.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "api/service.h"
#include "common/mutex.h"
#include "core/search_control.h"

namespace fsbb::serve {

class Metrics {
 public:
  Metrics() = default;

  // ---- admission + protocol -------------------------------------------
  void record_submit_accepted();
  void record_admission_reject(const std::string& reason);
  void record_protocol_error();   ///< malformed request line
  void record_oversized_line();   ///< request line over the cap

  // ---- result cache ----------------------------------------------------
  void record_cache_exact_hit();
  void record_cache_warm_start();
  void record_cache_miss();
  void record_cache_insert();

  // ---- connections -----------------------------------------------------
  void record_connection_opened();
  void record_connection_closed();
  void record_connection_rejected();
  void record_idle_timeout();

  // ---- job completions -------------------------------------------------
  /// One terminal job: which backend ran it, whether it produced a
  /// report, why it stopped, wall latency (submission to terminal) and
  /// nodes branched (0 for failures).
  void record_completion(const std::string& backend, bool ok,
                         core::StopReason stop_reason, double latency_ms,
                         std::uint64_t branched);

  /// Approximate latency quantile in ms over all completions (q in
  /// [0, 1]); 0 when nothing completed yet.
  double latency_quantile_ms(double q) const;

  /// Median job latency for admission retry-after hints.
  double p50_latency_ms() const { return latency_quantile_ms(0.5); }

  std::uint64_t completions() const;
  std::uint64_t cache_exact_hits() const;
  std::uint64_t cache_warm_starts() const;
  std::uint64_t admission_rejects() const;

  /// The full registry as a JSON object: {"queue":…,"admission":…,
  /// "cache":…,"latency_ms":…,"backends":…,"connections":…,"errors":…}.
  /// The queue snapshot and cache entry count are passed in so the
  /// registry stays decoupled from the service and the cache.
  std::string to_json(const api::QueueSnapshot& queue,
                      std::size_t cache_entries) const;

  /// Compact single-line summary for periodic operator logs.
  std::string log_line(const api::QueueSnapshot& queue,
                       std::size_t cache_entries) const;

 private:
  struct BackendStats {
    std::uint64_t jobs = 0;
    std::uint64_t failed = 0;
    double solve_ms = 0;
    std::uint64_t branched = 0;
  };

  static constexpr std::size_t kBuckets = 64;
  static double bucket_upper_ms(std::size_t index);

  mutable Mutex mu_;
  std::uint64_t accepted_ FSBB_GUARDED_BY(mu_) = 0;
  std::map<std::string, std::uint64_t> rejects_ FSBB_GUARDED_BY(mu_);
  std::uint64_t protocol_errors_ FSBB_GUARDED_BY(mu_) = 0;
  std::uint64_t oversized_lines_ FSBB_GUARDED_BY(mu_) = 0;
  std::uint64_t cache_exact_ FSBB_GUARDED_BY(mu_) = 0;
  std::uint64_t cache_warm_ FSBB_GUARDED_BY(mu_) = 0;
  std::uint64_t cache_miss_ FSBB_GUARDED_BY(mu_) = 0;
  std::uint64_t cache_insert_ FSBB_GUARDED_BY(mu_) = 0;
  std::uint64_t conns_opened_ FSBB_GUARDED_BY(mu_) = 0;
  std::uint64_t conns_closed_ FSBB_GUARDED_BY(mu_) = 0;
  std::uint64_t conns_rejected_ FSBB_GUARDED_BY(mu_) = 0;
  std::uint64_t idle_timeouts_ FSBB_GUARDED_BY(mu_) = 0;
  std::map<std::string, BackendStats> backends_ FSBB_GUARDED_BY(mu_);
  std::map<std::string, std::uint64_t> stop_reasons_ FSBB_GUARDED_BY(mu_);
  std::uint64_t completions_ FSBB_GUARDED_BY(mu_) = 0;
  double max_latency_ms_ FSBB_GUARDED_BY(mu_) = 0;
  std::array<std::uint64_t, kBuckets> latency_buckets_ FSBB_GUARDED_BY(mu_) =
      {};
};

}  // namespace fsbb::serve
