#include "serve/result_cache.h"

#include "common/check.h"
#include "fsp/makespan.h"

namespace fsbb::serve {

ResultCache::ResultCache(Options options) : options_(options) {
  FSBB_CHECK_MSG(options_.capacity >= 1, "cache capacity must be >= 1");
}

std::optional<CacheHit> ResultCache::lookup(
    const fsp::Instance& inst, const fsp::CanonicalForm& form) const {
  Entry entry;
  {
    const LockGuard lock(mu_);
    const auto it = by_digest_.find(form.digest());
    if (it == by_digest_.end()) return std::nullopt;
    // Dimensions are part of the digest, but they are also the cheap
    // first line of collision defense — check before touching the perm.
    if (it->second->jobs != inst.jobs() ||
        it->second->machines != inst.machines()) {
      return std::nullopt;
    }
    entries_.splice(entries_.begin(), entries_, it->second);  // LRU refresh
    entry = *it->second;
  }

  CacheHit hit;
  hit.makespan = entry.makespan;
  hit.permutation = form.from_canonical(entry.canonical_perm);
  hit.proven_optimal = entry.proven_optimal;
  hit.source_instance = entry.source_instance;
  // Re-verify against the actual matrix: a digest collision (or any bug
  // upstream) must degrade to a miss, never to a wrong answer.
  if (!fsp::is_valid_permutation(inst, hit.permutation) ||
      fsp::makespan(inst, hit.permutation) != hit.makespan) {
    return std::nullopt;
  }
  return hit;
}

bool ResultCache::insert(const fsp::Instance& inst,
                         const fsp::CanonicalForm& form, fsp::Time makespan,
                         std::span<const fsp::JobId> perm,
                         bool proven_optimal) {
  if (perm.empty()) return false;
  FSBB_CHECK_MSG(static_cast<int>(perm.size()) == inst.jobs(),
                 "cached schedule length must match the instance");
  std::vector<fsp::JobId> canonical = form.to_canonical(perm);

  const LockGuard lock(mu_);
  const auto it = by_digest_.find(form.digest());
  if (it != by_digest_.end()) {
    Entry& existing = *it->second;
    // Lower makespan wins; at equal makespan a proven-optimal solve
    // upgrades an unproven entry (same bound, stronger claim).
    const bool better =
        makespan < existing.makespan ||
        (makespan == existing.makespan && proven_optimal &&
         !existing.proven_optimal);
    entries_.splice(entries_.begin(), entries_, it->second);
    if (!better) return false;
    existing.makespan = makespan;
    existing.canonical_perm = std::move(canonical);
    existing.proven_optimal = proven_optimal;
    existing.source_instance = inst.name();
    return true;
  }

  Entry entry;
  entry.digest = form.digest();
  entry.makespan = makespan;
  entry.canonical_perm = std::move(canonical);
  entry.proven_optimal = proven_optimal;
  entry.source_instance = inst.name();
  entry.jobs = inst.jobs();
  entry.machines = inst.machines();
  entries_.push_front(std::move(entry));
  by_digest_[entries_.front().digest] = entries_.begin();
  while (entries_.size() > options_.capacity) {
    by_digest_.erase(entries_.back().digest);
    entries_.pop_back();
  }
  return true;
}

std::size_t ResultCache::size() const {
  const LockGuard lock(mu_);
  return entries_.size();
}

}  // namespace fsbb::serve
