#include "serve/line_io.h"

#include <cstring>
#include <limits>

#include "common/check.h"
#include "dist/transport.h"

namespace fsbb::serve {

BoundedLineReader::BoundedLineReader(std::size_t max_line_bytes)
    : max_(max_line_bytes) {
  FSBB_CHECK_MSG(max_ >= 2, "line cap must be at least 2 bytes");
}

std::vector<BoundedLineReader::Line> BoundedLineReader::feed(
    const char* data, std::size_t size) {
  std::vector<Line> out;
  std::size_t offset = 0;
  while (offset < size) {
    const char* nl = static_cast<const char*>(
        std::memchr(data + offset, '\n', size - offset));
    const std::size_t take = nl == nullptr
                                 ? size - offset
                                 : static_cast<std::size_t>(nl - data) - offset;
    if (discarding_) {
      // Skipping the tail of a line that already blew the cap; the
      // marker for it was emitted when the cap was crossed.
      if (nl != nullptr) discarding_ = false;
    } else if (buffer_.size() + take > max_) {
      buffer_.clear();
      buffer_.shrink_to_fit();
      discarding_ = nl == nullptr;
      out.push_back(Line{"", true});
    } else {
      buffer_.append(data + offset, take);
      if (nl != nullptr) {
        std::string line = std::move(buffer_);
        buffer_.clear();
        if (dist::normalize_transport_line(line)) {
          out.push_back(Line{std::move(line), false});
        }
      }
    }
    offset += take + (nl != nullptr ? 1 : 0);
  }
  return out;
}

LineStatus read_line_bounded(std::istream& in, std::string& out,
                             std::size_t max_line_bytes) {
  out.clear();
  // istream::getline with a fixed buffer is the bounded primitive: it
  // stops at '\n' (consumed, not stored) or when the buffer fills
  // (failbit, '\n' still pending) — so the line grows chunk by chunk and
  // the cap is checked between chunks.
  char chunk[4096];
  for (;;) {
    in.getline(chunk, sizeof chunk);
    const auto got = static_cast<std::size_t>(in.gcount());
    if (in.bad()) return LineStatus::kEof;
    if (in.fail() && !in.eof()) {
      if (got == 0 && out.empty()) return LineStatus::kEof;  // zero-size read
      // Buffer filled before '\n': part of a longer line.
      out.append(chunk, got);
      if (out.size() > max_line_bytes) {
        out.clear();
        in.clear();
        in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
        return in.bad() ? LineStatus::kEof : LineStatus::kOversized;
      }
      in.clear();
      continue;
    }
    if (in.eof() && got == 0 && out.empty()) return LineStatus::kEof;
    // getline consumed the '\n' (gcount includes it, the buffer doesn't).
    const std::size_t text = in.eof() ? got : (got > 0 ? got - 1 : 0);
    out.append(chunk, text);
    if (out.size() > max_line_bytes) return LineStatus::kOversized;
    return LineStatus::kLine;
  }
}

}  // namespace fsbb::serve
