// Bounded line reading for the serving front ends.
//
// The NDJSON protocol is line-oriented, and "one request per line" is an
// invitation for a malformed (or malicious) client to stream gigabytes
// without ever sending '\n' — an unbounded std::getline happily grows a
// string until the daemon OOMs. Both transports therefore read through a
// cap: a line longer than max_line_bytes is *discarded* (the rest of it is
// skipped up to the next '\n') and surfaced to the caller as an oversized
// marker, so the front end can answer with a structured error instead of
// dying. The connection stays usable — the next well-behaved line parses
// normally.
#pragma once

#include <cstddef>
#include <istream>
#include <string>
#include <vector>

namespace fsbb::serve {

/// Incremental bounded splitter for a byte stream (the socket sessions).
/// Like dist::LineReader, but a line whose length exceeds the cap is
/// dropped and reported instead of buffered without limit: the reader
/// holds at most max_line_bytes + one read chunk in memory, whatever the
/// peer sends.
class BoundedLineReader {
 public:
  struct Line {
    std::string text;       ///< normalized line ("" when oversized)
    bool oversized = false; ///< true: a line exceeded the cap and was dropped
  };

  explicit BoundedLineReader(std::size_t max_line_bytes);

  /// Appends `size` bytes; returns completed lines (CRLF-normalized,
  /// blank lines dropped) and one oversized marker per discarded line.
  std::vector<Line> feed(const char* data, std::size_t size);

  /// Bytes of the unterminated trailing line still buffered.
  std::size_t pending() const { return buffer_.size(); }

 private:
  const std::size_t max_;
  std::string buffer_;
  /// True while skipping the remainder of an oversized line.
  bool discarding_ = false;
};

/// One bounded getline from a (blocking) istream — the stdio daemon loop.
enum class LineStatus {
  kLine,       ///< `out` holds a complete line (normalized, possibly blank)
  kOversized,  ///< the line exceeded the cap and was skipped entirely
  kEof,        ///< stream exhausted, nothing read
};

/// Reads up to '\n' (or EOF) into `out`, never holding more than
/// max_line_bytes; an over-long line is skipped to its '\n' and reported
/// as kOversized. A final unterminated line still counts as a line.
LineStatus read_line_bounded(std::istream& in, std::string& out,
                             std::size_t max_line_bytes);

}  // namespace fsbb::serve
