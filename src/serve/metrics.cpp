#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/json.h"

namespace fsbb::serve {

void Metrics::record_submit_accepted() {
  const LockGuard lock(mu_);
  ++accepted_;
}

void Metrics::record_admission_reject(const std::string& reason) {
  const LockGuard lock(mu_);
  ++rejects_[reason];
}

void Metrics::record_protocol_error() {
  const LockGuard lock(mu_);
  ++protocol_errors_;
}

void Metrics::record_oversized_line() {
  const LockGuard lock(mu_);
  ++oversized_lines_;
}

void Metrics::record_cache_exact_hit() {
  const LockGuard lock(mu_);
  ++cache_exact_;
}

void Metrics::record_cache_warm_start() {
  const LockGuard lock(mu_);
  ++cache_warm_;
}

void Metrics::record_cache_miss() {
  const LockGuard lock(mu_);
  ++cache_miss_;
}

void Metrics::record_cache_insert() {
  const LockGuard lock(mu_);
  ++cache_insert_;
}

void Metrics::record_connection_opened() {
  const LockGuard lock(mu_);
  ++conns_opened_;
}

void Metrics::record_connection_closed() {
  const LockGuard lock(mu_);
  ++conns_closed_;
}

void Metrics::record_connection_rejected() {
  const LockGuard lock(mu_);
  ++conns_rejected_;
}

void Metrics::record_idle_timeout() {
  const LockGuard lock(mu_);
  ++idle_timeouts_;
}

double Metrics::bucket_upper_ms(std::size_t index) {
  // 1ms * 1.5^index: bucket 0 covers (0, 1ms], bucket 63 tops out around
  // 10 days — everything a solve job can plausibly take.
  return std::pow(1.5, static_cast<double>(index));
}

void Metrics::record_completion(const std::string& backend, bool ok,
                                core::StopReason stop_reason,
                                double latency_ms, std::uint64_t branched) {
  const LockGuard lock(mu_);
  BackendStats& b = backends_[backend];
  ++b.jobs;
  if (!ok) ++b.failed;
  b.solve_ms += latency_ms;
  b.branched += branched;
  if (ok) ++stop_reasons_[core::to_string(stop_reason)];
  ++completions_;
  max_latency_ms_ = std::max(max_latency_ms_, latency_ms);
  std::size_t bucket = 0;
  while (bucket + 1 < kBuckets && latency_ms > bucket_upper_ms(bucket)) {
    ++bucket;
  }
  ++latency_buckets_[bucket];
}

double Metrics::latency_quantile_ms(double q) const {
  const LockGuard lock(mu_);
  if (completions_ == 0) return 0;
  const double rank = q * static_cast<double>(completions_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += latency_buckets_[i];
    if (static_cast<double>(seen) >= rank) {
      // Report the geometric bucket midpoint, clamped to the observed
      // maximum so a lone slow job does not inflate the tail estimate.
      const double lower = i == 0 ? 0 : bucket_upper_ms(i - 1);
      const double mid = (lower + bucket_upper_ms(i)) / 2;
      return std::min(mid, max_latency_ms_);
    }
  }
  return max_latency_ms_;
}

std::uint64_t Metrics::completions() const {
  const LockGuard lock(mu_);
  return completions_;
}

std::uint64_t Metrics::cache_exact_hits() const {
  const LockGuard lock(mu_);
  return cache_exact_;
}

std::uint64_t Metrics::cache_warm_starts() const {
  const LockGuard lock(mu_);
  return cache_warm_;
}

std::uint64_t Metrics::admission_rejects() const {
  const LockGuard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [reason, count] : rejects_) total += count;
  return total;
}

std::string Metrics::to_json(const api::QueueSnapshot& queue,
                             std::size_t cache_entries) const {
  // Quantiles re-lock internally, so compute them before taking mu_.
  const double p50 = latency_quantile_ms(0.5);
  const double p99 = latency_quantile_ms(0.99);

  const LockGuard lock(mu_);
  JsonWriter rejects;
  for (const auto& [reason, count] : rejects_) {
    rejects.integer(reason, count);
  }
  JsonWriter admission;
  admission.integer("accepted", accepted_);
  admission.field("rejected", rejects.done());

  JsonWriter cache;
  cache.integer("exact_hits", cache_exact_);
  cache.integer("warm_starts", cache_warm_);
  cache.integer("misses", cache_miss_);
  cache.integer("insertions", cache_insert_);
  cache.integer("entries", cache_entries);

  JsonWriter latency;
  latency.integer("count", completions_);
  latency.real("p50", p50);
  latency.real("p99", p99);
  latency.real("max", max_latency_ms_);

  JsonWriter backends;
  for (const auto& [name, b] : backends_) {
    JsonWriter one;
    one.integer("jobs", b.jobs);
    one.integer("failed", b.failed);
    one.real("solve_ms", b.solve_ms);
    one.integer("nodes", b.branched);
    one.real("nodes_per_second",
             b.solve_ms > 0 ? static_cast<double>(b.branched) /
                                  (b.solve_ms / 1e3)
                            : 0);
    backends.field(name, one.done());
  }

  JsonWriter stop_reasons;
  for (const auto& [reason, count] : stop_reasons_) {
    stop_reasons.integer(reason, count);
  }

  JsonWriter connections;
  connections.integer("opened", conns_opened_);
  connections.integer("closed", conns_closed_);
  connections.integer("rejected", conns_rejected_);
  connections.integer("idle_timeouts", idle_timeouts_);

  JsonWriter errors;
  errors.integer("malformed_requests", protocol_errors_);
  errors.integer("oversized_lines", oversized_lines_);

  JsonWriter o;
  o.field("queue", queue.to_json());
  o.field("admission", admission.done());
  o.field("cache", cache.done());
  o.field("latency_ms", latency.done());
  o.field("backends", backends.done());
  o.field("stop_reasons", stop_reasons.done());
  o.field("connections", connections.done());
  o.field("errors", errors.done());
  return o.done();
}

std::string Metrics::log_line(const api::QueueSnapshot& queue,
                              std::size_t cache_entries) const {
  const double p50 = latency_quantile_ms(0.5);
  const double p99 = latency_quantile_ms(0.99);
  const LockGuard lock(mu_);
  std::uint64_t rejected = 0;
  for (const auto& [reason, count] : rejects_) rejected += count;
  std::ostringstream os;
  os << "[serve] queued=" << queue.queued << " running=" << queue.running
     << " completed=" << queue.completed << " accepted=" << accepted_
     << " rejected=" << rejected << " cache=" << cache_exact_ << "x/"
     << cache_warm_ << "w/" << cache_miss_ << "m (" << cache_entries
     << " entries)"
     << " p50=" << p50 << "ms p99=" << p99 << "ms";
  return os.str();
}

}  // namespace fsbb::serve
