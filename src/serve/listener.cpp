#include "serve/listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/check.h"
#include "common/json.h"
#include "serve/line_io.h"

namespace fsbb::serve {
namespace {

constexpr int kPollTickMs = 200;

/// Mutex-serialized line writer over one socket fd. Owns the fd; close()
/// (or destruction) releases it, after which writes become no-ops — so a
/// Client sink can safely outlive its session. MSG_NOSIGNAL keeps a peer
/// that hung up from killing the process with SIGPIPE.
class SocketWriter {
 public:
  explicit SocketWriter(int fd) : fd_(fd) {}
  ~SocketWriter() { close(); }

  SocketWriter(const SocketWriter&) = delete;
  SocketWriter& operator=(const SocketWriter&) = delete;

  void line(const std::string& json) {
    const LockGuard lock(mu_);
    if (fd_ < 0) return;
    std::string framed = json;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        // Peer gone (EPIPE/ECONNRESET/...): drop the fd, swallow the
        // event — the reader side notices the hangup and tears down.
        ::close(fd_);
        fd_ = -1;
        return;
      }
      sent += static_cast<std::size_t>(n);
    }
  }

  void close() {
    const LockGuard lock(mu_);
    if (fd_ < 0) return;
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }

 private:
  Mutex mu_;
  int fd_ FSBB_GUARDED_BY(mu_);
};

}  // namespace

struct Listener::Session {
  std::shared_ptr<Client> client;
  std::shared_ptr<SocketWriter> writer;
  std::atomic<bool> done{false};
  std::thread thread;
};

Listener::Listener(Server& server, Options options)
    : server_(server), options_(std::move(options)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  FSBB_CHECK_MSG(listen_fd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw CheckFailure("invalid bind address '" + options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw CheckFailure("cannot listen on " + options_.bind_address + ":" +
                       std::to_string(options_.port) + ": " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  FSBB_CHECK(::getsockname(listen_fd_,
                           reinterpret_cast<sockaddr*>(&bound),
                           &bound_len) == 0);
  port_ = ntohs(bound.sin_port);
}

Listener::~Listener() {
  request_stop();
  {
    const LockGuard lock(mu_);
    for (auto& session : sessions_) {
      if (session->thread.joinable()) session->thread.join();
    }
    sessions_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Listener::reap_locked() {
  auto it = sessions_.begin();
  while (it != sessions_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t Listener::active_sessions() {
  const LockGuard lock(mu_);
  reap_locked();
  return sessions_.size();
}

void Listener::serve() {
  FSBB_CHECK_MSG(listen_fd_ >= 0, "listener was not bound");
  while (!stop_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      const LockGuard lock(mu_);
      reap_locked();
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    const LockGuard lock(mu_);
    reap_locked();
    if (sessions_.size() >= server_.options().max_connections) {
      server_.metrics().record_connection_rejected();
      SocketWriter turned_away(fd);  // takes fd ownership; closes on exit
      JsonWriter o;
      o.str("event", "error");
      o.str("error", "server at max connections (" +
                         std::to_string(server_.options().max_connections) +
                         "); retry later");
      turned_away.line(o.done());
      continue;
    }

    server_.metrics().record_connection_opened();
    auto session = std::make_unique<Session>();
    session->writer = std::make_shared<SocketWriter>(fd);
    const std::shared_ptr<SocketWriter> writer = session->writer;
    session->client = std::make_shared<Client>(
        server_, [writer](const std::string& json) { writer->line(json); });
    Session* raw = session.get();
    session->thread = std::thread([this, raw, fd] { run_session(raw, fd); });
    sessions_.push_back(std::move(session));
  }

  // Unwind: every session sees stop_ within one poll tick and tears
  // itself down; join them all before returning.
  std::vector<std::unique_ptr<Session>> sessions;
  {
    const LockGuard lock(mu_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) {
    if (session->thread.joinable()) session->thread.join();
  }
}

void Listener::run_session(Session* session, int fd) {
  BoundedLineReader reader(server_.options().max_line_bytes);
  const std::uint64_t idle_limit_ms = server_.options().idle_timeout_ms;
  auto last_activity = std::chrono::steady_clock::now();
  char buf[4096];

  bool keep_going = true;
  while (keep_going && !stop_requested()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      if (idle_limit_ms > 0) {
        const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - last_activity)
                              .count();
        if (static_cast<std::uint64_t>(idle) >= idle_limit_ms) {
          server_.metrics().record_idle_timeout();
          JsonWriter o;
          o.str("event", "error");
          o.str("error", "idle timeout after " +
                             std::to_string(idle_limit_ms) +
                             "ms without a request");
          session->writer->line(o.done());
          break;
        }
      }
      continue;
    }

    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    last_activity = std::chrono::steady_clock::now();
    for (const BoundedLineReader::Line& line :
         reader.feed(buf, static_cast<std::size_t>(n))) {
      if (line.oversized) {
        session->client->handle_oversized_line();
        continue;
      }
      if (session->client->handle_line(line.text) ==
          Client::Action::kShutdown) {
        if (server_.options().allow_remote_shutdown) request_stop();
        keep_going = false;
        break;
      }
    }
  }

  // Teardown order matters: close() first (cancels this peer's jobs and
  // gates the sink), then release the fd. Job callbacks may still run
  // afterwards — their emits are discarded, their quota releases and
  // cache inserts still happen.
  session->client->close();
  session->writer->close();
  server_.metrics().record_connection_closed();
  session->done.store(true, std::memory_order_release);
}

}  // namespace fsbb::serve
