#include "serve/server.h"

#include <chrono>
#include <iostream>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/matrix.h"
#include "core/search_control.h"
#include "fsp/makespan.h"

namespace fsbb::serve {
namespace {

/// Envelope helper: {"event":<event>,"id":<id>, ...extras}.
JsonWriter envelope(const std::string& event, const std::string& id) {
  JsonWriter o;
  o.str("event", event);
  o.str("id", id);
  return o;
}

/// Splits a "cli" payload (string or array of strings) into argv tokens.
std::vector<std::string> cli_tokens(const JsonValue& cli) {
  std::vector<std::string> tokens;
  if (cli.is_array()) {
    for (const JsonValue& item : cli.as_array()) {
      tokens.push_back(item.as_string());
    }
    return tokens;
  }
  std::istringstream stream(cli.as_string());
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

api::SolverConfig config_from_cli_tokens(
    const std::vector<std::string>& tokens) {
  std::vector<const char*> argv{"fsbb_serve"};
  argv.reserve(tokens.size() + 1);
  for (const std::string& t : tokens) argv.push_back(t.c_str());
  return api::SolverConfig::from_argv(static_cast<int>(argv.size()),
                                      argv.data());
}

/// Optional top-level "instance" object on submit: an explicit job-major
/// processing-time matrix replacing the generator spec in the cli
/// payload. Serving real workloads means accepting real matrices — and
/// the permutation-invariant result cache is only reachable over the
/// wire this way (a generator spec can never express a relabeled twin).
///   {"instance":{"name":"acme-1","ptm":[[5,3,2],[1,4,4]]}}
fsp::Instance instance_from_json(const JsonValue& value) {
  const JsonValue* ptm = value.find("ptm");
  FSBB_CHECK_MSG(ptm != nullptr && ptm->is_array(),
                 "explicit instance needs a \"ptm\" array of job rows");
  const auto& rows = ptm->as_array();
  FSBB_CHECK_MSG(!rows.empty(), "explicit instance needs >= 1 job row");
  const std::size_t machines = rows.front().as_array().size();
  Matrix<fsp::Time> pt(rows.size(), machines);
  for (std::size_t j = 0; j < rows.size(); ++j) {
    const auto& row = rows[j].as_array();
    FSBB_CHECK_MSG(row.size() == machines,
                   "\"ptm\" rows must all have the same machine count");
    for (std::size_t k = 0; k < machines; ++k) {
      pt(j, k) = static_cast<fsp::Time>(row[k].as_int());
    }
  }
  return fsp::Instance(value.string_or("name", "wire-instance"),
                       std::move(pt));
}

/// A proven-optimal cache hit becomes a full SolveReport without running
/// a search: backend "cache", zero stats, the cached bound doubling as
/// the (already optimal) initial upper bound.
api::SolveReport exact_hit_report(const fsp::Instance& inst,
                                  const api::SolverConfig& config,
                                  const CacheHit& hit) {
  api::SolveReport report;
  report.config = config;
  report.instance_name = inst.name();
  report.jobs = inst.jobs();
  report.machines = inst.machines();
  report.backend = "cache";
  report.evaluator = "result-cache (filled by '" + hit.source_instance + "')";
  report.best_makespan = hit.makespan;
  report.best_permutation = hit.permutation;
  report.proven_optimal = true;
  report.stop_reason = core::StopReason::kOptimal;
  report.stats.initial_ub = hit.makespan;
  return report;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      admission_(options.admission),
      cache_(options.cache),
      service_(api::SolverService::Options{options.workers}) {
  if (options_.metrics_interval_ms > 0) {
    logger_ = std::thread([this] {
      const auto interval =
          std::chrono::milliseconds(options_.metrics_interval_ms);
      auto next = std::chrono::steady_clock::now() + interval;
      while (!stop_logger_.load(std::memory_order_relaxed)) {
        // Sleep in short chunks so teardown never waits a full interval.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        if (std::chrono::steady_clock::now() < next) continue;
        next += interval;
        std::cerr << metrics_.log_line(service_.snapshot(), cache_.size())
                  << "\n";
      }
    });
  }
}

Server::~Server() {
  // Stop the logger before member destruction: service_ (declared last)
  // destructs first, and the logger reads its snapshot.
  stop_logger_.store(true, std::memory_order_relaxed);
  if (logger_.joinable()) logger_.join();
}

std::string Server::metrics_json() {
  return metrics_.to_json(service_.snapshot(), cache_.size());
}

Client::Client(Server& server, Sink sink)
    : server_(server), sink_(std::move(sink)) {
  FSBB_CHECK_MSG(sink_ != nullptr, "Client needs an output sink");
}

void Client::emit(const std::string& json) {
  const LockGuard lock(out_mu_);
  if (closed_) return;
  sink_(json);
}

void Client::reject(const std::string& id, const std::string& error) {
  JsonWriter o = envelope("rejected", id);
  o.str("error", error);
  emit(o.done());
}

void Client::protocol_error(const std::string& error) {
  server_.metrics().record_protocol_error();
  JsonWriter o;
  o.str("event", "error");
  o.str("error", error);
  emit(o.done());
}

void Client::handle_oversized_line() {
  server_.metrics().record_oversized_line();
  JsonWriter o;
  o.str("event", "error");
  o.str("error",
        "request line exceeds " +
            std::to_string(server_.options().max_line_bytes) +
            " bytes and was discarded");
  emit(o.done());
}

void Client::close() {
  {
    const LockGuard lock(out_mu_);
    closed_ = true;
  }
  // The peer is gone: its jobs only waste workers now. Cancellation is
  // cooperative; the completion callbacks still run (releasing quotas and
  // feeding the cache) but their output is discarded above.
  cancel_all();
}

void Client::cancel_all() {
  std::vector<api::SolveHandle> handles;
  {
    const LockGuard lock(mu_);
    for (auto& [id, handle] : jobs_) handles.push_back(handle);
  }
  for (api::SolveHandle& handle : handles) handle.cancel();
}

void Client::drain() {
  std::vector<api::SolveHandle> handles;
  {
    const LockGuard lock(mu_);
    for (auto& [id, handle] : jobs_) handles.push_back(handle);
  }
  for (api::SolveHandle& handle : handles) handle.wait();
}

std::size_t Client::jobs_open() const {
  const LockGuard lock(mu_);
  return jobs_.size();
}

Client::Action Client::handle_line(const std::string& line) {
  JsonValue request;
  try {
    request = JsonValue::parse(line);
  } catch (const std::exception& e) {
    protocol_error(e.what());
    return Action::kContinue;
  }
  const std::string op = request.string_or("op", "");
  if (op == "submit") {
    submit(request);
  } else if (op == "cancel") {
    cancel(request);
  } else if (op == "status") {
    status(request);
  } else if (op == "metrics") {
    metrics_request();
  } else if (op == "shutdown") {
    return Action::kShutdown;
  } else {
    protocol_error("unknown op '" + op + "'");
  }
  return Action::kContinue;
}

void Client::metrics_request() {
  JsonWriter o;
  o.str("event", "metrics");
  o.field("data", server_.metrics_json());
  emit(o.done());
}

void Client::submit(const JsonValue& request) {
  const std::string id = request.string_or("id", "");
  if (id.empty()) {
    reject(id, "submit needs a non-empty \"id\"");
    return;
  }
  const JsonValue* cli = request.find("cli");
  if (cli == nullptr) {
    reject(id, "submit needs a \"cli\" string or array");
    return;
  }
  {
    const LockGuard lock(mu_);
    if (jobs_.count(id) != 0) {
      reject(id, "job id already in use");
      return;
    }
  }

  // The job may start (and even finish) on a worker thread before this
  // thread prints the accepted line; every callback takes this gate, which
  // is held until the accepted line is out — so the event stream always
  // reads accepted → progress* → result for each id.
  auto gate = std::make_shared<Mutex>();
  const LockGuard announcing(*gate);

  Metrics& metrics = server_.metrics();
  bool quota_charged = false;
  std::string charged_tenant;
  try {
    api::SolverConfig config = config_from_cli_tokens(cli_tokens(*cli));
    // Top-level request fields override the cli payload — transports that
    // stamp tenancy per connection need not rewrite the flag string.
    if (const JsonValue* t = request.find("tenant")) {
      config.tenant = t->as_string();
    }
    if (const JsonValue* p = request.find("priority")) {
      config.priority = p->as_string();
    }
    FSBB_CHECK_MSG(!config.tenant.empty(), "tenant must be non-empty");
    const Priority priority = parse_priority(config.priority);
    const std::string cache_mode = request.string_or("cache", "use");
    FSBB_CHECK_MSG(
        cache_mode == "use" || cache_mode == "refresh" ||
            cache_mode == "bypass",
        "\"cache\" must be one of use | refresh | bypass");

    std::optional<fsp::Instance> parsed;
    if (const JsonValue* explicit_inst = request.find("instance")) {
      parsed = instance_from_json(*explicit_inst);
    } else {
      std::vector<fsp::Instance> instances =
          api::make_instances(config.instance);
      if (instances.size() != 1) {
        reject(id,
               "submit solves exactly one instance per job (got --count " +
                   std::to_string(instances.size()) + "); submit one job "
                   "per instance instead");
        return;
      }
      parsed = std::move(instances.front());
    }
    fsp::Instance inst = std::move(*parsed);

    // Cache consultation before admission: an exact hit costs no worker,
    // so it should not be charged against (or blocked by) any quota.
    std::shared_ptr<const fsp::CanonicalForm> form;
    std::optional<CacheHit> hit;
    if (cache_mode != "bypass") {
      form = std::make_shared<fsp::CanonicalForm>(fsp::CanonicalForm::of(inst));
      hit = server_.cache().lookup(inst, *form);
    }

    if (hit && hit->proven_optimal && cache_mode == "use") {
      metrics.record_cache_exact_hit();
      JsonWriter a = envelope("accepted", id);
      a.integer("job", 0);
      a.str("tenant", config.tenant);
      a.str("cache", "exact");
      emit(a.done());
      const api::SolveReport report = exact_hit_report(inst, config, *hit);
      metrics.record_completion("cache", true, core::StopReason::kOptimal,
                                0.0, 0);
      JsonWriter o = envelope("result", id);
      o.boolean("ok", true);
      o.str("stop_reason", core::to_string(report.stop_reason));
      o.str("cache", "exact");
      o.field("report", report.to_json());
      emit(o.done());
      return;
    }

    std::string cache_note = "bypass";
    std::optional<fsp::Time> warm_ub;
    std::vector<fsp::JobId> warm_perm;
    if (hit) {
      // Warm start: the cached incumbent becomes the root bound. Setting
      // initial_ub makes the engine start below it (and records it in
      // stats.initial_ub); offer_incumbent after submit covers a job that
      // was already queued with a weaker config-supplied bound.
      warm_ub = hit->makespan;
      warm_perm = hit->permutation;
      if (!config.initial_ub || hit->makespan < *config.initial_ub) {
        config.initial_ub = hit->makespan;
      }
      metrics.record_cache_warm_start();
      cache_note = "warm";
    } else if (form != nullptr) {
      metrics.record_cache_miss();
      cache_note = "miss";
    }

    const AdmissionDecision decision = server_.admission().try_admit(
        config.tenant, priority, server_.service().snapshot().queued,
        metrics.p50_latency_ms());
    if (!decision.admitted) {
      metrics.record_admission_reject(decision.reason);
      JsonWriter o = envelope("rejected", id);
      o.str("error", decision.detail);
      o.str("reason", decision.reason);
      o.integer("retry_after_ms", decision.retry_after_ms);
      o.str("tenant", config.tenant);
      emit(o.done());
      return;
    }
    quota_charged = true;
    charged_tenant = config.tenant;

    auto self = shared_from_this();
    api::SolverService::EventCallback on_event;
    if (!server_.options().quiet_progress) {
      on_event = [self, id, gate](const api::ProgressEvent& event) {
        if (event.kind == api::ProgressEvent::Kind::kFinished) return;
        const LockGuard announced(*gate);
        JsonWriter o = envelope("progress", id);
        o.field("data", event.to_json());
        self->emit(o.done());
      };
    }
    const auto submitted_at = std::chrono::steady_clock::now();
    const bool cache_writable = cache_mode != "bypass";
    auto on_complete = [self, id, gate, submitted_at, inst, form, warm_ub,
                        warm_perm, cache_writable,
                        tenant = config.tenant](
                           const api::SolveOutcome& outcome) {
      const double latency_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - submitted_at)
              .count();
      api::SolveOutcome final_outcome = outcome;
      Server& server = self->server_;
      if (final_outcome.ok()) {
        api::SolveReport& report = *final_outcome.report;
        // A warm-started job that never improved on the cached incumbent
        // returns an empty permutation (nothing beat the root bound);
        // splice the cached schedule back in so the peer still receives
        // a concrete schedule for the reported makespan.
        if (report.best_permutation.empty() && warm_ub.has_value() &&
            report.best_makespan == *warm_ub) {
          report.best_permutation = warm_perm;
        }
        server.metrics().record_completion(report.backend, true,
                                           report.stop_reason, latency_ms,
                                           report.stats.branched);
        if (cache_writable && form != nullptr &&
            !report.best_permutation.empty()) {
          const bool proven = report.proven_optimal &&
                              report.stop_reason == core::StopReason::kOptimal;
          if (server.cache().insert(inst, *form, report.best_makespan,
                                    report.best_permutation, proven)) {
            server.metrics().record_cache_insert();
          }
        }
      } else {
        server.metrics().record_completion("error", false,
                                           core::StopReason::kCanceled,
                                           latency_ms, 0);
      }
      server.admission().release(tenant);
      {
        const LockGuard announced(*gate);
        JsonWriter o = envelope("result", id);
        o.boolean("ok", final_outcome.ok());
        if (final_outcome.ok()) {
          o.str("stop_reason",
                core::to_string(final_outcome.report->stop_reason));
          o.field("report", final_outcome.report->to_json());
        } else {
          o.str("error", final_outcome.error);
        }
        self->emit(o.done());
      }
      // The result streamed: forget the job so a long-running server does
      // not accumulate every instance + report it ever solved.
      const LockGuard lock(self->mu_);
      self->jobs_.erase(id);
    };

    api::SolveHandle handle =
        server_.service().submit(std::move(inst), config, std::move(on_event),
                                 std::move(on_complete));
    if (warm_ub.has_value()) handle.offer_incumbent(*warm_ub);
    metrics.record_submit_accepted();
    {
      const LockGuard lock(mu_);
      jobs_.emplace(id, handle);
    }
    JsonWriter o = envelope("accepted", id);
    o.integer("job", handle.id());
    o.str("tenant", config.tenant);
    o.str("priority", config.priority);
    o.str("cache", cache_note);
    if (warm_ub.has_value()) o.integer("warm_ub", *warm_ub);
    emit(o.done());
  } catch (const std::exception& e) {
    if (quota_charged) server_.admission().release(charged_tenant);
    reject(id, e.what());
  }
}

void Client::cancel(const JsonValue& request) {
  const std::string id = request.string_or("id", "");
  api::SolveHandle handle;
  {
    const LockGuard lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      reject(id, "unknown job id");
      return;
    }
    handle = it->second;
  }
  handle.cancel();
  emit(envelope("canceling", id).done());
}

void Client::status(const JsonValue& request) {
  const std::string id = request.string_or("id", "");
  std::vector<std::pair<std::string, api::SolveHandle>> selected;
  {
    const LockGuard lock(mu_);
    for (auto& [job_id, handle] : jobs_) {
      if (id.empty() || job_id == id) selected.emplace_back(job_id, handle);
    }
  }
  if (!id.empty() && selected.empty()) {
    reject(id, "unknown job id");
    return;
  }
  for (auto& [job_id, handle] : selected) {
    JsonWriter o = envelope("status", job_id);
    o.str("state", api::to_string(handle.state()));
    emit(o.done());
  }
}

}  // namespace fsbb::serve
