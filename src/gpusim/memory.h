// Simulated device memory: owning buffers tagged with a memory space, plus
// the lightweight views kernels read through (every access is counted).
//
// Functionally all spaces are host RAM; the space tag drives the access
// counters and therefore the timing model. Buffers RAII-track their bytes
// against the owning device's capacity (the C2050's 2.8 GB is why the paper
// excludes the 500-job instances). Shared-memory staging (a block copying a
// global table into its shared array) is modeled by gpubb at launch time —
// see gpubb/device_lb_data.h.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/check.h"
#include "gpusim/counters.h"

namespace fsbb::gpusim {

/// Read-only kernel-side view of a device buffer.
template <typename T>
struct DeviceView {
  const T* data = nullptr;
  std::size_t size = 0;
  MemSpace space = MemSpace::kGlobal;
};

/// Mutable kernel-side view (kernel outputs).
template <typename T>
struct DeviceMutView {
  T* data = nullptr;
  std::size_t size = 0;
  MemSpace space = MemSpace::kGlobal;
};

/// Owning simulated device allocation. Move-only: the buffer decrements the
/// device's allocation ledger when destroyed.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(std::size_t count, MemSpace space,
               std::shared_ptr<std::atomic<std::size_t>> ledger = nullptr)
      : storage_(count), space_(space), ledger_(std::move(ledger)),
        tracked_bytes_(ledger_ ? count * sizeof(T) : 0) {}

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceBuffer(DeviceBuffer&& o) noexcept
      : storage_(std::move(o.storage_)), space_(o.space_),
        ledger_(std::move(o.ledger_)), tracked_bytes_(o.tracked_bytes_) {
    o.tracked_bytes_ = 0;
  }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      storage_ = std::move(o.storage_);
      space_ = o.space_;
      ledger_ = std::move(o.ledger_);
      tracked_bytes_ = o.tracked_bytes_;
      o.tracked_bytes_ = 0;
    }
    return *this;
  }

  ~DeviceBuffer() { release(); }

  std::size_t size() const { return storage_.size(); }
  std::size_t size_bytes() const { return storage_.size() * sizeof(T); }
  MemSpace space() const { return space_; }
  bool empty() const { return storage_.empty(); }

  std::span<T> host_span() { return storage_; }
  std::span<const T> host_span() const { return storage_; }

  DeviceView<T> view() const {
    return DeviceView<T>{storage_.data(), storage_.size(), space_};
  }
  DeviceMutView<T> mut_view() {
    return DeviceMutView<T>{storage_.data(), storage_.size(), space_};
  }

 private:
  void release() {
    if (ledger_ && tracked_bytes_ > 0) {
      ledger_->fetch_sub(tracked_bytes_, std::memory_order_relaxed);
      tracked_bytes_ = 0;
    }
  }

  std::vector<T> storage_;
  MemSpace space_ = MemSpace::kGlobal;
  std::shared_ptr<std::atomic<std::size_t>> ledger_;
  std::size_t tracked_bytes_ = 0;
};

/// Capacity-only device reservation: counts bytes against the device like a
/// DeviceBuffer but backs them with no host storage. For state the timing
/// model must budget (it occupies device DRAM on a real card) yet the
/// functional simulation never materializes — e.g. per-thread local arenas
/// whose contents live in each simulated thread's own scratch.
class DeviceReservation {
 public:
  DeviceReservation() = default;
  DeviceReservation(std::size_t bytes,
                    std::shared_ptr<std::atomic<std::size_t>> ledger)
      : ledger_(std::move(ledger)), bytes_(ledger_ ? bytes : 0) {}

  DeviceReservation(const DeviceReservation&) = delete;
  DeviceReservation& operator=(const DeviceReservation&) = delete;

  DeviceReservation(DeviceReservation&& o) noexcept
      : ledger_(std::move(o.ledger_)), bytes_(o.bytes_) {
    o.bytes_ = 0;
  }
  DeviceReservation& operator=(DeviceReservation&& o) noexcept {
    if (this != &o) {
      release();
      ledger_ = std::move(o.ledger_);
      bytes_ = o.bytes_;
      o.bytes_ = 0;
    }
    return *this;
  }

  ~DeviceReservation() { release(); }

  std::size_t bytes() const { return bytes_; }

 private:
  void release() {
    if (ledger_ && bytes_ > 0) {
      ledger_->fetch_sub(bytes_, std::memory_order_relaxed);
      bytes_ = 0;
    }
  }

  std::shared_ptr<std::atomic<std::size_t>> ledger_;
  std::size_t bytes_ = 0;
};

}  // namespace fsbb::gpusim
