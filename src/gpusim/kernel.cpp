#include "gpusim/kernel.h"

#include <vector>

#include "common/check.h"

namespace fsbb::gpusim {

SimDevice::SimDevice(DeviceSpec spec, ThreadPool* pool)
    : spec_(std::move(spec)), pool_(pool) {
  spec_.validate();
  if (pool_ == nullptr) {
    owned_pool_ = std::make_unique<ThreadPool>();
    pool_ = owned_pool_.get();
  }
}

KernelRun SimDevice::run_blocks(const LaunchConfig& config, int blocks_to_run,
                                const KernelBody& body,
                                const BlockPrologue& prologue) {
  FSBB_CHECK_MSG(config.grid_blocks >= 1, "empty grid");
  FSBB_CHECK_MSG(config.block_threads >= 1 &&
                     config.block_threads <= spec_.max_threads_per_block,
                 "invalid block size");
  FSBB_CHECK(blocks_to_run >= 1 && blocks_to_run <= config.grid_blocks);

  // One counter set per worker (+1 for the caller, which participates).
  struct WorkerState {
    AccessCounters counters;
    std::uint64_t work_sum = 0;
    std::uint64_t warp_max_sum = 0;
  };
  std::vector<WorkerState> per_worker(pool_->thread_count() + 1);
  const int warp = spec_.warp_size;

  pool_->parallel_for(
      0, static_cast<std::size_t>(blocks_to_run),
      [&](std::size_t lo, std::size_t hi, std::size_t worker) {
        WorkerState& state = per_worker[worker];
        AccessCounters& counters = state.counters;
        for (std::size_t b = lo; b < hi; ++b) {
          const int block_idx = static_cast<int>(b);
          if (prologue) prologue(block_idx, counters);
          // Execute warp by warp, tracking the busiest lane of each warp
          // for the lockstep-divergence measurement.
          for (int w = 0; w < config.block_threads; w += warp) {
            std::uint64_t lane_max = 0;
            const int lanes = std::min(warp, config.block_threads - w);
            for (int lane = 0; lane < lanes; ++lane) {
              const std::uint64_t before = counters.work_units();
              ThreadCtx ctx(block_idx, w + lane, config.block_threads,
                            counters);
              body(ctx);
              const std::uint64_t delta = counters.work_units() - before;
              state.work_sum += delta;
              lane_max = std::max(lane_max, delta);
            }
            state.warp_max_sum += lane_max * static_cast<std::uint64_t>(lanes);
          }
        }
      },
      /*chunks=*/std::max<std::size_t>(pool_->thread_count() * 4,
                                       std::size_t{1}));

  KernelRun run;
  for (const WorkerState& state : per_worker) {
    run.counters += state.counters;
    run.work_units_sum += state.work_sum;
    run.work_units_warp_max += state.warp_max_sum;
  }
  run.blocks_executed = blocks_to_run;
  run.threads_executed =
      static_cast<std::int64_t>(blocks_to_run) * config.block_threads;
  run.threads_logical = config.total_threads();
  return run;
}

KernelRun SimDevice::launch(const LaunchConfig& config, const KernelBody& body,
                            const BlockPrologue& prologue) {
  return run_blocks(config, config.grid_blocks, body, prologue);
}

KernelRun SimDevice::launch_sampled(const LaunchConfig& config,
                                    std::int64_t max_threads,
                                    const KernelBody& body,
                                    const BlockPrologue& prologue) {
  FSBB_CHECK_MSG(max_threads >= 1, "sample must allow at least one thread");
  int blocks = static_cast<int>(max_threads / config.block_threads);
  blocks = std::max(1, std::min(blocks, config.grid_blocks));
  return run_blocks(config, blocks, body, prologue);
}

}  // namespace fsbb::gpusim
