// Fermi occupancy calculator (the "CUDA GPU occupancy calculator" the paper
// invokes in §IV-B to explain why the shared-memory placement caps active
// warps at 32 / 16 depending on the instance size).
//
// Resident blocks per SM are limited by four resources; the binding one is
// reported so benches can print the same analysis as the paper:
//   * the resident-block cap,
//   * the resident-warp cap,
//   * the register file (warp-granular allocation units),
//   * shared memory (block-granular allocation units, split-dependent).
#pragma once

#include <cstddef>

#include "gpusim/device_spec.h"

namespace fsbb::gpusim {

/// Static per-kernel resource demands.
struct KernelResources {
  int block_threads = 256;
  int registers_per_thread = 0;
  std::size_t shared_bytes_per_block = 0;
};

/// Which resource capped the resident-block count.
enum class OccupancyLimiter {
  kBlockCap,
  kWarpCap,
  kRegisters,
  kSharedMemory,
};

const char* to_string(OccupancyLimiter l);

/// Occupancy of one SM for a kernel.
struct OccupancyResult {
  int blocks_per_sm = 0;
  int warps_per_block = 0;
  int active_warps = 0;    ///< blocks_per_sm * warps_per_block
  double occupancy = 0.0;  ///< active_warps / max_warps_per_sm
  OccupancyLimiter limiter = OccupancyLimiter::kBlockCap;
};

/// Computes resident blocks/warps per SM. Throws CheckFailure if the kernel
/// cannot run at all (block too large, or one block exceeds a resource).
OccupancyResult compute_occupancy(const DeviceSpec& spec, SmemConfig config,
                                  const KernelResources& kernel);

}  // namespace fsbb::gpusim
