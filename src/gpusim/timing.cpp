#include "gpusim/timing.h"

#include <algorithm>

#include "common/check.h"

namespace fsbb::gpusim {

ThreadWork ThreadWork::from_run(const KernelRun& run) {
  ThreadWork w;
  w.ops = run.per_thread_ops();
  for (int s = 0; s < kNumSpaces; ++s) {
    w.accesses[static_cast<std::size_t>(s)] =
        run.per_thread(static_cast<MemSpace>(s));
  }
  w.divergence = run.divergence_factor();
  return w;
}

KernelTimeEstimate estimate_kernel_time(const DeviceSpec& spec,
                                        const GpuCalibration& calib,
                                        const LaunchConfig& config,
                                        const OccupancyResult& occupancy,
                                        const ThreadWork& work) {
  FSBB_CHECK(config.grid_blocks >= 1);
  FSBB_CHECK(occupancy.blocks_per_sm >= 1);

  // Per-warp cycle budgets from the per-thread averages (a warp executes
  // its 32 lanes in lockstep, so per-thread counts are per-warp-instruction
  // counts).
  double issue_warp = work.ops * calib.issue_cycles_per_op;
  double latency_warp = 0;
  for (int s = 0; s < kNumSpaces; ++s) {
    const auto i = static_cast<std::size_t>(s);
    issue_warp += work.accesses[i] * calib.issue_cycles_per_access[i];
    latency_warp += work.accesses[i] * calib.latency_cycles[i];
  }
  // Lockstep: the warp executes at the pace of its busiest lane.
  issue_warp *= std::max(1.0, work.divergence);
  latency_warp *= std::max(1.0, work.divergence);

  const double grid = config.grid_blocks;
  const double sms = spec.sm_count;

  // Effective resident warps per busy SM and the number of slot rounds.
  // Tiny grids leave SMs idle but each busy SM still hosts a whole block;
  // mid-size grids under-fill the occupancy limit; large grids run at the
  // occupancy limit for grid/(S*B) rounds (fractional: the hardware
  // scheduler backfills finishing SMs, so no ceil cliff).
  double w_eff;
  double rounds;
  if (grid <= sms) {
    w_eff = occupancy.warps_per_block;
    rounds = 1.0;
  } else {
    const double blocks_per_sm_eff =
        std::min(static_cast<double>(occupancy.blocks_per_sm), grid / sms);
    w_eff = blocks_per_sm_eff * occupancy.warps_per_block;
    rounds = std::max(1.0, grid / (sms * occupancy.blocks_per_sm));
  }

  const double hiding =
      1.0 + calib.latency_hiding_beta * std::max(0.0, w_eff - 1.0);
  const double t_slot_cycles = w_eff * issue_warp + latency_warp / hiding;

  const double clock_hz = spec.clock_ghz * 1e9;

  KernelTimeEstimate est;
  est.rounds = rounds;
  est.effective_warps = w_eff;
  est.issue_seconds = rounds * w_eff * issue_warp / clock_hz;
  est.latency_seconds = rounds * (latency_warp / hiding) / clock_hz;
  est.seconds =
      rounds * t_slot_cycles / clock_hz + calib.kernel_launch_overhead_s;
  est.seconds_per_thread_ =
      est.seconds /
      std::max<double>(1.0, static_cast<double>(config.total_threads()));
  return est;
}

}  // namespace fsbb::gpusim
