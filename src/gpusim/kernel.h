// Functional kernel execution over simulated thread grids.
//
// A kernel is a C++ callable invoked once per simulated thread with a
// ThreadCtx that identifies the thread and counts its memory traffic.
// Blocks are distributed over a host thread pool; per-worker counters are
// reduced afterwards, so execution is deterministic and lock-free.
//
// Two modes:
//   * launch()          — every logical thread runs (functional results are
//                         complete; engines use this).
//   * launch_sampled()  — only a prefix of the blocks runs; counters are
//                         per-executed-thread averages for the timing model.
//                         Outputs for non-executed threads are untouched.
//                         Benchmark harnesses use this to price paper-scale
//                         pools without paying paper-scale compute.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/threadpool.h"
#include "gpusim/counters.h"
#include "gpusim/device_spec.h"
#include "gpusim/memory.h"

namespace fsbb::gpusim {

/// Kernel launch geometry (the paper's "pool size = blocks x threads").
struct LaunchConfig {
  int grid_blocks = 1;
  int block_threads = 256;

  std::int64_t total_threads() const {
    return static_cast<std::int64_t>(grid_blocks) * block_threads;
  }
};

/// Per-thread execution context handed to kernel bodies.
class ThreadCtx {
 public:
  ThreadCtx(int block_idx, int thread_idx, int block_dim,
            AccessCounters& counters)
      : block_idx_(block_idx), thread_idx_(thread_idx), block_dim_(block_dim),
        counters_(&counters) {}

  int block_idx() const { return block_idx_; }
  int thread_idx() const { return thread_idx_; }
  int block_dim() const { return block_dim_; }
  std::int64_t global_idx() const {
    return static_cast<std::int64_t>(block_idx_) * block_dim_ + thread_idx_;
  }

  /// Counted load through a tagged view.
  template <typename T>
  T ld(const DeviceView<T>& v, std::size_t i) {
    FSBB_ASSERT(i < v.size);
    counters_->add_load(v.space);
    return v.data[i];
  }

  /// Counted store through a tagged view.
  template <typename T>
  void st(const DeviceMutView<T>& v, std::size_t i, T value) {
    FSBB_ASSERT(i < v.size);
    counters_->add_store(v.space);
    v.data[i] = value;
  }

  /// Bulk accounting for work not expressed through views (e.g. per-thread
  /// scratch in local memory, or arithmetic).
  void add_loads(MemSpace s, std::uint64_t n) { counters_->add_load(s, n); }
  void add_stores(MemSpace s, std::uint64_t n) { counters_->add_store(s, n); }
  void add_ops(std::uint64_t n) { counters_->add_ops(n); }

  AccessCounters& counters() { return *counters_; }

 private:
  int block_idx_;
  int thread_idx_;
  int block_dim_;
  AccessCounters* counters_;
};

/// What a launch executed and counted.
struct KernelRun {
  AccessCounters counters;            ///< summed over executed threads
  std::int64_t threads_executed = 0;  ///< functionally run
  std::int64_t threads_logical = 0;   ///< grid * block
  int blocks_executed = 0;
  std::uint64_t work_units_sum = 0;       ///< per-thread work, summed
  std::uint64_t work_units_warp_max = 0;  ///< sum over warps of 32 * max lane

  /// Lockstep penalty: >= 1; the ratio between warp-serialized work (every
  /// lane pays for the slowest) and ideal per-thread work.
  double divergence_factor() const {
    return work_units_sum > 0 ? static_cast<double>(work_units_warp_max) /
                                    static_cast<double>(work_units_sum)
                              : 1.0;
  }

  /// executed / logical (1.0 for full launches).
  double sample_fraction() const {
    return threads_logical > 0
               ? static_cast<double>(threads_executed) / threads_logical
               : 0.0;
  }

  /// Per-thread average accesses of one space (loads + stores).
  double per_thread(MemSpace s) const {
    return threads_executed > 0
               ? static_cast<double>(counters.of(s).total()) / threads_executed
               : 0.0;
  }
  double per_thread_ops() const {
    return threads_executed > 0
               ? static_cast<double>(counters.arithmetic_ops) / threads_executed
               : 0.0;
  }
};

/// Kernel body: invoked once per simulated thread.
using KernelBody = std::function<void(ThreadCtx&)>;

/// Block prologue: invoked once per simulated block before its threads, with
/// the counters of thread 0 (models per-block one-time work such as staging
/// tables into shared memory).
using BlockPrologue = std::function<void(int block_idx, AccessCounters&)>;

/// A simulated device instance executing kernels on a host thread pool.
class SimDevice {
 public:
  /// `pool` may be shared with other components; if null an internal pool
  /// with hardware concurrency is created.
  explicit SimDevice(DeviceSpec spec, ThreadPool* pool = nullptr);

  const DeviceSpec& spec() const { return spec_; }

  /// Allocates a simulated buffer. Global/constant allocations count
  /// against the device capacity until the buffer is destroyed.
  template <typename T>
  DeviceBuffer<T> alloc(std::size_t count, MemSpace space) {
    if (space == MemSpace::kGlobal || space == MemSpace::kConstant) {
      const std::size_t now =
          allocated_bytes_->fetch_add(count * sizeof(T),
                                      std::memory_order_relaxed) +
          count * sizeof(T);
      FSBB_CHECK_MSG(now <= spec_.global_mem_bytes,
                     "simulated device memory exhausted");
      return DeviceBuffer<T>(count, space, allocated_bytes_);
    }
    return DeviceBuffer<T>(count, space);
  }

  /// Claims capacity without host backing (see DeviceReservation).
  DeviceReservation reserve(std::size_t bytes) {
    const std::size_t now =
        allocated_bytes_->fetch_add(bytes, std::memory_order_relaxed) + bytes;
    FSBB_CHECK_MSG(now <= spec_.global_mem_bytes,
                   "simulated device memory exhausted");
    return DeviceReservation(bytes, allocated_bytes_);
  }

  std::size_t allocated_bytes() const {
    return allocated_bytes_->load(std::memory_order_relaxed);
  }

  /// Runs every thread of the grid.
  KernelRun launch(const LaunchConfig& config, const KernelBody& body,
                   const BlockPrologue& prologue = nullptr);

  /// Runs only the first blocks covering at most `max_threads` threads
  /// (at least one block). Counters then describe a sample.
  KernelRun launch_sampled(const LaunchConfig& config, std::int64_t max_threads,
                           const KernelBody& body,
                           const BlockPrologue& prologue = nullptr);

 private:
  KernelRun run_blocks(const LaunchConfig& config, int blocks_to_run,
                       const KernelBody& body, const BlockPrologue& prologue);

  DeviceSpec spec_;
  ThreadPool* pool_;
  std::unique_ptr<ThreadPool> owned_pool_;
  std::shared_ptr<std::atomic<std::size_t>> allocated_bytes_ =
      std::make_shared<std::atomic<std::size_t>>(0);
};

}  // namespace fsbb::gpusim
