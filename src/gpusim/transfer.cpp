#include "gpusim/transfer.h"

namespace fsbb::gpusim {

double TransferModel::seconds(std::size_t bytes) const {
  const double bw_bytes_per_s = spec_->pcie_bandwidth_gbps * 1e9;
  return spec_->pcie_latency_s + static_cast<double>(bytes) / bw_bytes_per_s;
}

double TransferModel::record(TransferDir dir, std::size_t bytes,
                             TransferLedger& ledger) const {
  const double s = seconds(bytes);
  if (dir == TransferDir::kHostToDevice) {
    ++ledger.h2d_transfers;
    ledger.h2d_bytes += bytes;
    ledger.h2d_seconds += s;
  } else {
    ++ledger.d2h_transfers;
    ledger.d2h_bytes += bytes;
    ledger.d2h_seconds += s;
  }
  return s;
}

}  // namespace fsbb::gpusim
