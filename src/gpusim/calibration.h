// Every tunable constant of the analytic GPU timing model, in one place.
//
// The functional simulator counts real per-thread work (arithmetic ops and
// per-space memory accesses); this header prices that work. Constants are
// calibrated so the reproduction harnesses land in the bands of the paper's
// Tables II/III on the simulated C2050 (see EXPERIMENTS.md for the
// calibration story and the residuals). They are deliberately coarse —
// single-digit cycle costs and one latency per space — because the paper's
// claims depend on ratios and trends, not absolute nanoseconds.
#pragma once

#include <array>

#include "gpusim/counters.h"

namespace fsbb::gpusim {

/// Cost parameters of the kernel-time estimator (gpusim/timing.h).
struct GpuCalibration {
  /// Issue cycles consumed per arithmetic op (warp-instruction granular).
  double issue_cycles_per_op = 1.0;

  /// Issue/throughput cycles per memory access, by space. Global accesses
  /// pay address generation + transaction overhead; shared/constant are
  /// single-cycle-class; register traffic is folded into the op cost.
  std::array<double, kNumSpaces> issue_cycles_per_access{
      /*global=*/6.0, /*shared=*/2.0, /*constant=*/2.0, /*local=*/2.0,
      /*register=*/0.25};

  /// Round-trip latency cycles per access, by space. The global figure is
  /// an L1/DRAM mix (Fermi DRAM ~400-800 cycles, L1 ~30; the LB tables are
  /// small enough that many accesses hit L1, more so in kPreferL1 mode).
  std::array<double, kNumSpaces> latency_cycles{
      /*global=*/200.0, /*shared=*/30.0, /*constant=*/12.0, /*local=*/40.0,
      /*register=*/1.0};

  /// Fraction of one extra resident warp's issue stream that hides memory
  /// latency: exposed latency = latency / (1 + beta * (W - 1)).
  double latency_hiding_beta = 1.0;

  /// Fixed device-side cost of launching one kernel.
  double kernel_launch_overhead_s = 10e-6;

  /// Host/driver cost per offload iteration (stream sync, kernel argument
  /// setup, bulk heap maintenance). Amortized over the pool, this is what
  /// makes very small pools unattractive end-to-end.
  double iteration_overhead_base_s = 0.1e-3;

  /// Instance-footprint component of the per-iteration overhead: pinned
  /// staging buffers, bulk pool (re)assembly and result scatter all scale
  /// with the node size, i.e. with the job count n. Calibrated so the
  /// per-instance pool-size trends of Tables II/III reproduce (large
  /// instances keep gaining from bigger pools; small ones peak early).
  double iteration_overhead_per_job_s = 25e-6;

  double iteration_overhead_s(int jobs) const {
    return iteration_overhead_base_s + iteration_overhead_per_job_s * jobs;
  }

  /// Host-side cost of packing one byte of pool data for transfer.
  double host_pack_seconds_per_byte = 0.3e-9;

  static GpuCalibration fermi_defaults() { return GpuCalibration{}; }
};

}  // namespace fsbb::gpusim
