// Simulated GPU device descriptions.
//
// The evaluation substitutes a functional + analytic-timing simulator for
// the paper's real hardware (see DESIGN.md §2). DeviceSpec captures every
// architectural parameter the occupancy calculator and the timing model
// consume. tesla_c2050() matches the card the paper used; tesla_c1060()
// (the previous generation, no configurable shared/L1) is provided for
// what-if ablations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace fsbb::gpusim {

/// Shared-memory / L1 split of a Fermi-class multiprocessor (paper §IV-B).
enum class SmemConfig {
  kPreferL1,      ///< 16 KB shared memory, 48 KB L1 cache
  kPreferShared,  ///< 48 KB shared memory, 16 KB L1 cache
};

const char* to_string(SmemConfig c);

/// Architectural description of a simulated CUDA device.
struct DeviceSpec {
  std::string name;

  int sm_count = 0;               ///< streaming multiprocessors
  int cores_per_sm = 0;           ///< CUDA cores per SM
  double clock_ghz = 0;           ///< core clock
  int warp_size = 32;

  int max_warps_per_sm = 0;       ///< resident-warp cap
  int max_blocks_per_sm = 0;      ///< resident-block cap
  int max_threads_per_block = 0;

  std::uint32_t registers_per_sm = 0;      ///< 32-bit registers per SM
  std::uint32_t register_alloc_unit = 64;  ///< warp-granular allocation unit

  std::size_t shared_mem_prefer_l1 = 0;      ///< bytes when kPreferL1
  std::size_t shared_mem_prefer_shared = 0;  ///< bytes when kPreferShared
  std::size_t shared_alloc_unit = 128;       ///< per-block rounding, bytes

  std::size_t global_mem_bytes = 0;
  double global_bandwidth_gbps = 0;  ///< device memory bandwidth

  double pcie_bandwidth_gbps = 0;  ///< effective host<->device throughput
  double pcie_latency_s = 0;       ///< per-transfer fixed cost

  double peak_gflops_double = 0;  ///< for the iso-GFLOPS comparison (Fig. 5)

  std::size_t shared_mem_bytes(SmemConfig c) const {
    return c == SmemConfig::kPreferShared ? shared_mem_prefer_shared
                                          : shared_mem_prefer_l1;
  }

  int total_cores() const { return sm_count * cores_per_sm; }

  /// Validates internal consistency (positive counts, warp multiples, ...).
  void validate() const;

  /// The Tesla C2050 of the paper: Fermi, 14 SMs x 32 cores @ 1.15 GHz,
  /// 448 cores, 2.8 GB global (ECC on), 515 double GFLOPS.
  static DeviceSpec tesla_c2050();

  /// Previous-generation Tesla C1060 (GT200): no L1/shared split, 30 SMs
  /// x 8 cores. Used by the what-if ablation bench.
  static DeviceSpec tesla_c1060();
};

}  // namespace fsbb::gpusim
