#include "gpusim/occupancy.h"

#include <algorithm>

#include "common/check.h"

namespace fsbb::gpusim {

const char* to_string(OccupancyLimiter l) {
  switch (l) {
    case OccupancyLimiter::kBlockCap:
      return "block-cap";
    case OccupancyLimiter::kWarpCap:
      return "warp-cap";
    case OccupancyLimiter::kRegisters:
      return "registers";
    case OccupancyLimiter::kSharedMemory:
      return "shared-memory";
  }
  return "?";
}

namespace {

std::size_t round_up(std::size_t value, std::size_t unit) {
  return unit == 0 ? value : (value + unit - 1) / unit * unit;
}

}  // namespace

OccupancyResult compute_occupancy(const DeviceSpec& spec, SmemConfig config,
                                  const KernelResources& kernel) {
  FSBB_CHECK_MSG(kernel.block_threads >= 1, "empty thread block");
  FSBB_CHECK_MSG(kernel.block_threads <= spec.max_threads_per_block,
                 "block exceeds max_threads_per_block");
  FSBB_CHECK_MSG(kernel.registers_per_thread >= 0, "negative register count");

  const int warps_per_block =
      (kernel.block_threads + spec.warp_size - 1) / spec.warp_size;

  // Register allocation is warp-granular on Fermi: each warp reserves
  // ceil(regs_per_thread * warp_size / unit) * unit registers.
  const std::uint32_t regs_per_warp = static_cast<std::uint32_t>(round_up(
      static_cast<std::size_t>(kernel.registers_per_thread) *
          static_cast<std::size_t>(spec.warp_size),
      spec.register_alloc_unit));
  const std::uint32_t regs_per_block =
      regs_per_warp * static_cast<std::uint32_t>(warps_per_block);

  const std::size_t smem_per_block =
      round_up(kernel.shared_bytes_per_block, spec.shared_alloc_unit);
  const std::size_t smem_budget = spec.shared_mem_bytes(config);

  FSBB_CHECK_MSG(smem_per_block <= smem_budget,
                 "one block's shared memory exceeds the SM budget");
  FSBB_CHECK_MSG(regs_per_block == 0 || regs_per_block <= spec.registers_per_sm,
                 "one block's registers exceed the SM register file");

  struct Limit {
    int blocks;
    OccupancyLimiter which;
  };
  Limit limits[4] = {
      {spec.max_blocks_per_sm, OccupancyLimiter::kBlockCap},
      {spec.max_warps_per_sm / warps_per_block, OccupancyLimiter::kWarpCap},
      {regs_per_block == 0
           ? spec.max_blocks_per_sm
           : static_cast<int>(spec.registers_per_sm / regs_per_block),
       OccupancyLimiter::kRegisters},
      {smem_per_block == 0
           ? spec.max_blocks_per_sm
           : static_cast<int>(smem_budget / smem_per_block),
       OccupancyLimiter::kSharedMemory},
  };

  OccupancyResult r;
  r.warps_per_block = warps_per_block;
  r.blocks_per_sm = limits[0].blocks;
  r.limiter = limits[0].which;
  for (const Limit& lim : limits) {
    if (lim.blocks < r.blocks_per_sm) {
      r.blocks_per_sm = lim.blocks;
      r.limiter = lim.which;
    }
  }
  FSBB_CHECK_MSG(r.blocks_per_sm >= 1,
                 "kernel cannot be resident on this device");
  r.active_warps = r.blocks_per_sm * warps_per_block;
  r.occupancy =
      static_cast<double>(r.active_warps) / spec.max_warps_per_sm;
  return r;
}

}  // namespace fsbb::gpusim
