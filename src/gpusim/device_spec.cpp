#include "gpusim/device_spec.h"

#include "common/check.h"

namespace fsbb::gpusim {

const char* to_string(SmemConfig c) {
  switch (c) {
    case SmemConfig::kPreferL1:
      return "16KB-shared/48KB-L1";
    case SmemConfig::kPreferShared:
      return "48KB-shared/16KB-L1";
  }
  return "?";
}

void DeviceSpec::validate() const {
  FSBB_CHECK_MSG(sm_count > 0, "sm_count must be positive");
  FSBB_CHECK_MSG(cores_per_sm > 0, "cores_per_sm must be positive");
  FSBB_CHECK_MSG(clock_ghz > 0, "clock must be positive");
  FSBB_CHECK_MSG(warp_size > 0, "warp size must be positive");
  FSBB_CHECK_MSG(max_warps_per_sm > 0, "max_warps_per_sm must be positive");
  FSBB_CHECK_MSG(max_blocks_per_sm > 0, "max_blocks_per_sm must be positive");
  FSBB_CHECK_MSG(max_threads_per_block % warp_size == 0,
                 "max block size must be warp-aligned");
  FSBB_CHECK_MSG(registers_per_sm > 0, "registers_per_sm must be positive");
  FSBB_CHECK_MSG(global_mem_bytes > 0, "global memory must be positive");
  FSBB_CHECK_MSG(pcie_bandwidth_gbps > 0, "pcie bandwidth must be positive");
}

DeviceSpec DeviceSpec::tesla_c2050() {
  DeviceSpec s;
  s.name = "Tesla C2050 (Fermi, simulated)";
  s.sm_count = 14;
  s.cores_per_sm = 32;
  s.clock_ghz = 1.15;
  s.warp_size = 32;
  s.max_warps_per_sm = 48;
  s.max_blocks_per_sm = 8;
  s.max_threads_per_block = 1024;
  s.registers_per_sm = 32768;
  s.register_alloc_unit = 64;
  s.shared_mem_prefer_l1 = 16 * 1024;
  s.shared_mem_prefer_shared = 48 * 1024;
  s.shared_alloc_unit = 128;
  s.global_mem_bytes = std::size_t{2800} * 1024 * 1024;  // 2.8 GB (ECC on)
  s.global_bandwidth_gbps = 144.0;
  s.pcie_bandwidth_gbps = 5.6;  // effective PCIe 2.0 x16
  s.pcie_latency_s = 15e-6;
  s.peak_gflops_double = 515.0;
  s.validate();
  return s;
}

DeviceSpec DeviceSpec::tesla_c1060() {
  DeviceSpec s;
  s.name = "Tesla C1060 (GT200, simulated)";
  s.sm_count = 30;
  s.cores_per_sm = 8;
  s.clock_ghz = 1.30;
  s.warp_size = 32;
  s.max_warps_per_sm = 32;
  s.max_blocks_per_sm = 8;
  s.max_threads_per_block = 512;
  s.registers_per_sm = 16384;
  s.register_alloc_unit = 64;
  // GT200 has a fixed 16 KB shared memory and no L1; model both configs as
  // the same 16 KB so kPreferShared is a no-op on this device.
  s.shared_mem_prefer_l1 = 16 * 1024;
  s.shared_mem_prefer_shared = 16 * 1024;
  s.shared_alloc_unit = 512;
  s.global_mem_bytes = std::size_t{4096} * 1024 * 1024;
  s.global_bandwidth_gbps = 102.0;
  s.pcie_bandwidth_gbps = 5.2;
  s.pcie_latency_s = 15e-6;
  s.peak_gflops_double = 78.0;
  s.validate();
  return s;
}

}  // namespace fsbb::gpusim
