// Memory-space taxonomy and access counters.
//
// Every load/store a simulated kernel performs is tagged with the memory
// space it would hit on the real device; the timing model prices each space
// differently (issue cost + latency). Counters are kept per host worker and
// reduced after the launch, so the functional execution stays lock-free.
#pragma once

#include <array>
#include <cstdint>

namespace fsbb::gpusim {

/// CUDA memory spaces the simulator distinguishes (paper §III-B).
enum class MemSpace : std::uint8_t {
  kGlobal = 0,
  kShared = 1,
  kConstant = 2,
  kLocal = 3,     ///< thread-private local memory / L1-backed spills
  kRegister = 4,  ///< register-file traffic (essentially free)
};

inline constexpr int kNumSpaces = 5;

const char* to_string(MemSpace s);

/// Loads/stores observed in one memory space.
struct SpaceCounters {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;

  std::uint64_t total() const { return loads + stores; }

  SpaceCounters& operator+=(const SpaceCounters& o) {
    loads += o.loads;
    stores += o.stores;
    return *this;
  }
};

/// Full per-kernel (or per-worker) counter set.
struct AccessCounters {
  std::array<SpaceCounters, kNumSpaces> space{};
  std::uint64_t arithmetic_ops = 0;

  void add_load(MemSpace s, std::uint64_t n = 1) {
    space[static_cast<std::size_t>(s)].loads += n;
  }
  void add_store(MemSpace s, std::uint64_t n = 1) {
    space[static_cast<std::size_t>(s)].stores += n;
  }
  void add_ops(std::uint64_t n) { arithmetic_ops += n; }

  const SpaceCounters& of(MemSpace s) const {
    return space[static_cast<std::size_t>(s)];
  }

  std::uint64_t total_accesses() const {
    std::uint64_t t = 0;
    for (const auto& s : space) t += s.total();
    return t;
  }

  /// Accesses + arithmetic: the work proxy used for warp-divergence
  /// measurement (a lockstep warp is as slow as its busiest lane).
  std::uint64_t work_units() const { return total_accesses() + arithmetic_ops; }

  AccessCounters& operator+=(const AccessCounters& o) {
    for (std::size_t i = 0; i < space.size(); ++i) space[i] += o.space[i];
    arithmetic_ops += o.arithmetic_ops;
    return *this;
  }
};

inline const char* to_string(MemSpace s) {
  switch (s) {
    case MemSpace::kGlobal:
      return "global";
    case MemSpace::kShared:
      return "shared";
    case MemSpace::kConstant:
      return "constant";
    case MemSpace::kLocal:
      return "local";
    case MemSpace::kRegister:
      return "register";
  }
  return "?";
}

}  // namespace fsbb::gpusim
