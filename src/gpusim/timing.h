// Analytic kernel-time estimator.
//
// Inputs: the launch geometry, the SM occupancy (how many warps are
// resident), and the *measured* per-thread work of the kernel (ops and
// per-space accesses from the functional run). Output: modeled seconds.
//
// Model (one SM "slot round" completes its resident W warps):
//
//   issue_warp   = ops * c_op + sum_s acc_s * c_issue[s]     (cycles/warp)
//   latency_warp = sum_s acc_s * latency[s]                  (cycles/warp)
//   T_slot(W)    = W * issue_warp + latency_warp / (1 + beta*(W-1))
//
// i.e. the issue streams of the W warps serialize on the SM's pipelines
// while memory latency is progressively hidden by warp interleaving —
// exactly the occupancy story of paper §IV-B: fewer resident warps expose
// more latency.
//
// Grid mapping assumes the hardware scheduler keeps SMs fed (dynamic block
// dispatch): with G blocks over S SMs at B resident blocks/SM,
//   rounds        = max(1, G / (S * B_eff))      (fractional, no ceil)
//   B_eff         = min(B, G / S)                (small grids under-occupy)
//   W_eff         = B_eff_warps                  (per-SM resident warps)
//   kernel time   = rounds * T_slot(W_eff) / clock + launch overhead
// Small grids therefore run latency-exposed (the paper's "the number of
// blocks must be at least double the number of multiprocessors").
#pragma once

#include "gpusim/calibration.h"
#include "gpusim/counters.h"
#include "gpusim/device_spec.h"
#include "gpusim/kernel.h"
#include "gpusim/occupancy.h"

namespace fsbb::gpusim {

/// Per-thread average work of a kernel (from KernelRun).
struct ThreadWork {
  double ops = 0;
  std::array<double, kNumSpaces> accesses{};  // loads + stores per space
  /// Lockstep penalty (>= 1): warps advance at the pace of their busiest
  /// lane, so per-warp cycle budgets scale by this factor.
  double divergence = 1.0;

  static ThreadWork from_run(const KernelRun& run);
};

/// Modeled kernel time with its components, for reporting.
struct KernelTimeEstimate {
  double seconds = 0;          ///< total modeled time incl. launch overhead
  double issue_seconds = 0;    ///< issue-serialization component
  double latency_seconds = 0;  ///< exposed-latency component
  double rounds = 0;           ///< slot rounds executed per SM
  double effective_warps = 0;  ///< resident warps actually achieved
  double per_thread_seconds() const { return seconds_per_thread_; }

  double seconds_per_thread_ = 0;
};

/// Prices one kernel launch.
KernelTimeEstimate estimate_kernel_time(const DeviceSpec& spec,
                                        const GpuCalibration& calib,
                                        const LaunchConfig& config,
                                        const OccupancyResult& occupancy,
                                        const ThreadWork& work);

}  // namespace fsbb::gpusim
