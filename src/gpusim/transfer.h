// Host <-> device transfer cost model (PCIe).
//
// Each direction of an offload iteration (paper Fig. 3: pool down, bounds
// up) is priced as latency + bytes / bandwidth. The ledger accumulates the
// modeled seconds and byte counts so harnesses can report the
// compute-to-communication ratio the paper discusses in §IV-A.
#pragma once

#include <cstddef>
#include <cstdint>

#include "gpusim/device_spec.h"

namespace fsbb::gpusim {

/// Direction of a transfer.
enum class TransferDir { kHostToDevice, kDeviceToHost };

/// Accumulated transfer activity.
struct TransferLedger {
  std::uint64_t h2d_transfers = 0;
  std::uint64_t d2h_transfers = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  double h2d_seconds = 0;
  double d2h_seconds = 0;

  double total_seconds() const { return h2d_seconds + d2h_seconds; }
};

/// Prices transfers against a device's PCIe parameters.
class TransferModel {
 public:
  explicit TransferModel(const DeviceSpec& spec) : spec_(&spec) {}

  /// Modeled seconds for one transfer of `bytes`.
  double seconds(std::size_t bytes) const;

  /// Records a transfer in the ledger and returns its modeled seconds.
  double record(TransferDir dir, std::size_t bytes, TransferLedger& ledger) const;

 private:
  const DeviceSpec* spec_;
};

}  // namespace fsbb::gpusim
