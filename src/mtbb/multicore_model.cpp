#include "mtbb/multicore_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fsbb::mtbb {

double multicore_speedup(const MulticoreModelParams& params, int threads,
                         int jobs) {
  FSBB_CHECK(threads >= 1 && jobs >= 1);
  const int phys = std::min(threads, params.physical_cores);
  // Physical cores scale near-linearly with a small scheduling drag;
  // hyper-threads add only their SMT yield.
  double effective =
      phys * (1.0 - params.per_core_overhead * (phys - 1));
  if (threads > params.physical_cores) {
    effective += params.smt_yield * (threads - params.physical_cores);
  }
  // Smaller instances keep PTM/LM/JM cache-resident on every core.
  const double cache_factor =
      1.0 + params.cache_bonus *
                std::log10(static_cast<double>(params.reference_jobs) /
                           static_cast<double>(jobs));
  return params.clock_ratio() * effective * cache_factor;
}

double multicore_gflops(const MulticoreModelParams& params, int threads) {
  return params.gflops_per_thread * threads;
}

int threads_for_gflops(const MulticoreModelParams& params, double gflops) {
  FSBB_CHECK(gflops > 0);
  return static_cast<int>(std::ceil(gflops / params.gflops_per_thread));
}

}  // namespace fsbb::mtbb
