// The branch + bound expansion step shared by the mtbb engines.
//
// Both the shared-pool baseline (mt_engine) and the work-stealing engine
// (steal_engine) expand a popped node the same way: bind the incremental
// LB1 context to the parent once, then for every free job bound the child
// with an O(m) front extension and a remaining-jobs-only sweep — the same
// sibling-batch discipline the serial engine gets through the
// BoundEvaluator::evaluate_siblings seam, and bit-identical to the old
// per-child prefix replay (the differential-fuzz suite checks it).
// Children are written straight into the shared NodeArena; survivors
// travel as 12-byte NodeRef handles.
//
// One definition here keeps the two engines bit-identical per node — the
// cross-engine agreement the differential-fuzz suite checks depends on it.
#pragma once

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include "core/engine.h"
#include "core/node_arena.h"
#include "core/subproblem.h"
#include "fsp/instance.h"
#include "fsp/lb1.h"
#include "fsp/lb2.h"
#include "fsp/lb_data.h"
#include "fsp/makespan.h"
#include "fsp/neh.h"

namespace fsbb::mtbb::detail {

/// LB2 bound context with the same set_parent/bound_child surface as
/// fsp::Lb1BoundContext, so expand_node is generic over the bound. This
/// used to replay prefix+job through lb2_from_prefix per child; the
/// node-local rm_U/qm_U minima turned out to have an incremental sibling
/// form after all (two-smallest tracking per machine — see
/// fsp::Lb2BoundContext), so the engines now get the same O(m)-per-child
/// seam for LB2 that LB1 has always had.
using Lb2BoundContext = fsp::Lb2BoundContext;

/// Best complete schedule seen while expanding one node.
struct BestLeaf {
  fsp::Time makespan = std::numeric_limits<fsp::Time>::max();
  std::vector<fsp::JobId> perm;
};

/// Branches the node behind `node.slot`, bounds every incomplete child
/// with the bound context (fsp::Lb1BoundContext or Lb2BoundContext — any
/// type with set_parent/bound_child), appends the children below
/// `ub_snapshot` to `survivors` (cleared first) and accumulates the
/// generated/evaluated/pruned/leaves counters into `stats`. Children are
/// allocated on `lane`; the caller still owns (and must release) the
/// parent slot. Returns the best complete child, if any.
template <typename BoundContext>
inline BestLeaf expand_node(const fsp::Instance& inst, core::NodeArena& arena,
                            std::size_t lane, const core::NodeRef& node,
                            fsp::Time ub_snapshot, BoundContext& ctx,
                            core::EngineStats& stats,
                            std::vector<core::NodeRef>& survivors) {
  survivors.clear();
  BestLeaf best;
  const auto perm = arena.perm(node.slot);
  const auto d = static_cast<std::size_t>(node.depth);
  const int r = inst.jobs() - node.depth;
  if (r == 1) {
    // The single child is complete and equals the parent's permutation
    // (the one free job is already in place); its makespan is exact.
    ++stats.generated;
    ++stats.leaves;
    const fsp::Time ms = fsp::makespan(inst, perm);
    if (ms < best.makespan) {
      best.makespan = ms;
      best.perm.assign(perm.begin(), perm.end());
    }
    return best;
  }
  ctx.set_parent(perm.first(d));
  for (int i = 0; i < r; ++i) {
    ++stats.generated;
    const fsp::JobId job = perm[d + static_cast<std::size_t>(i)];
    const fsp::Time lb = ctx.bound_child(job);
    ++stats.evaluated;
    if (lb < ub_snapshot) {
      const core::NodeArena::Handle c = arena.allocate(lane);
      core::write_child_perm(perm, d, static_cast<std::size_t>(i),
                             arena.perm(c));
      survivors.push_back(core::NodeRef{lb, node.depth + 1, c});
    } else {
      ++stats.pruned;
    }
  }
  return best;
}

/// The engines' shared root-solve prologue: the starting incumbent (NEH
/// unless overridden) with its seed schedule, plus the bounded root node.
struct RootStart {
  fsp::Time ub;
  std::vector<fsp::JobId> seed_perm;
  core::Subproblem root;
};

/// `lb2` non-null bounds the root with LB2, so the root's bound matches
/// what the workers will compute for its descendants.
inline RootStart make_root_start(const fsp::Instance& inst,
                                 const fsp::LowerBoundData& data,
                                 const std::optional<fsp::Time>& initial_ub,
                                 const fsp::Lb2Data* lb2 = nullptr) {
  RootStart start;
  if (initial_ub.has_value()) {
    start.ub = *initial_ub;
  } else {
    fsp::NehResult neh = fsp::neh(inst);
    start.ub = neh.makespan;
    start.seed_perm = std::move(neh.permutation);
  }
  start.root = core::Subproblem::root(inst.jobs());
  start.root.lb =
      lb2 ? fsp::lb2_from_prefix(inst, data, *lb2, start.root.prefix())
          : fsp::lb1_from_prefix(inst, data, start.root.prefix());
  return start;
}

}  // namespace fsbb::mtbb::detail
