// The branch + bound expansion step shared by the mtbb engines.
//
// Both the shared-pool baseline (mt_engine) and the work-stealing engine
// (steal_engine) expand a popped node the same way: branch every free job,
// route complete children through the makespan, bound the rest with the
// scratch-reusing LB1 and keep the survivors under the incumbent snapshot.
// One definition here keeps the two engines bit-identical per node — the
// cross-engine agreement the differential-fuzz suite checks depends on it.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "core/engine.h"
#include "core/subproblem.h"
#include "fsp/instance.h"
#include "fsp/lb1.h"
#include "fsp/lb_data.h"
#include "fsp/makespan.h"
#include "fsp/neh.h"

namespace fsbb::mtbb::detail {

/// Best complete schedule seen while expanding one node.
struct BestLeaf {
  fsp::Time makespan = std::numeric_limits<fsp::Time>::max();
  std::vector<fsp::JobId> perm;
};

/// Branches `node`, bounds every incomplete child with LB1, appends the
/// children below `ub_snapshot` to `survivors` (cleared first) and
/// accumulates the generated/evaluated/pruned/leaves counters into
/// `stats`. Returns the best complete child, if any.
inline BestLeaf expand_node(const fsp::Instance& inst,
                            const fsp::LowerBoundData& data,
                            const core::Subproblem& node,
                            fsp::Time ub_snapshot, fsp::Lb1Scratch& scratch,
                            core::EngineStats& stats,
                            std::vector<core::Subproblem>& survivors) {
  survivors.clear();
  BestLeaf best;
  const int r = node.remaining();
  for (int i = 0; i < r; ++i) {
    core::Subproblem child = node.child(i);
    ++stats.generated;
    if (child.is_complete()) {
      ++stats.leaves;
      const fsp::Time ms = fsp::makespan(inst, child.perm);
      if (ms < best.makespan) {
        best.makespan = ms;
        best.perm = child.perm;
      }
      continue;
    }
    child.lb = fsp::lb1_from_prefix(inst, data, child.prefix(), scratch);
    ++stats.evaluated;
    if (child.lb < ub_snapshot) {
      survivors.push_back(std::move(child));
    } else {
      ++stats.pruned;
    }
  }
  return best;
}

/// The engines' shared root-solve prologue: the starting incumbent (NEH
/// unless overridden) with its seed schedule, plus the bounded root node.
struct RootStart {
  fsp::Time ub;
  std::vector<fsp::JobId> seed_perm;
  core::Subproblem root;
};

inline RootStart make_root_start(const fsp::Instance& inst,
                                 const fsp::LowerBoundData& data,
                                 const std::optional<fsp::Time>& initial_ub) {
  RootStart start;
  if (initial_ub.has_value()) {
    start.ub = *initial_ub;
  } else {
    fsp::NehResult neh = fsp::neh(inst);
    start.ub = neh.makespan;
    start.seed_perm = std::move(neh.permutation);
  }
  start.root = core::Subproblem::root(inst.jobs());
  start.root.lb = fsp::lb1_from_prefix(inst, data, start.root.prefix());
  return start;
}

}  // namespace fsbb::mtbb::detail
