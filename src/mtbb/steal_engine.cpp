#include "mtbb/steal_engine.h"

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/audit.h"
#include "core/node_arena.h"
#include "core/work_steal.h"
#include "fsp/lb1.h"
#include "mtbb/branch_expand.h"

namespace fsbb::mtbb {
namespace {

using core::NodeRef;
using core::StealStats;
using core::Subproblem;

/// Failed steal rounds before a starving worker naps instead of spinning.
constexpr int kSpinRoundsBeforeNap = 16;
constexpr auto kNap = std::chrono::microseconds(100);

/// Everything the workers share. The hot path (pop/push/prune) only
/// touches the worker's own shard and two atomics; permutations live in
/// the shared arena and never move — a steal copies 12-byte handles.
/// PoolT is the sharded pool over either deque kind (mutexed heap deques
/// or lock-free Chase–Lev arrays) — the search loop is byte-for-byte the
/// same; only the shard synchronization differs.
template <typename PoolT>
struct Shared {
  explicit Shared(std::size_t workers, int jobs)
      : pool(workers), arena(jobs, workers + 1) {}

  PoolT pool;
  core::NodeArena arena;
  /// Nodes resident anywhere: in a deque or being branched. Children are
  /// counted before their parent is released, so 0 means the tree is done.
  std::atomic<std::uint64_t> in_flight{0};
  std::atomic<fsp::Time> ub{std::numeric_limits<fsp::Time>::max()};
  std::atomic<std::uint64_t> branched{0};  // budget accounting only
  std::atomic<bool> stop{false};           // early-stop flag (see stop_latch)
  /// First stop reason latched (as int; -1 = none). Written once via CAS
  /// before `stop` is raised, so every worker reports the same reason.
  std::atomic<int> stop_latch{-1};
  std::uint64_t node_budget = 0;
  core::SearchControl* control = nullptr;  // may be null
  core::VictimOrder victim_order = core::VictimOrder::kRoundRobin;
  std::size_t steal_batch = 1;
  /// LB2 tables, shared read-only by every worker (kLb2 runs only).
  const fsp::Lb2Data* lb2 = nullptr;

  Mutex best_mu;
  fsp::Time best_perm_makespan FSBB_GUARDED_BY(best_mu) =
      std::numeric_limits<fsp::Time>::max();
  std::vector<fsp::JobId> best_perm FSBB_GUARDED_BY(best_mu);
  /// Acceptance-order auditor (core/audit.h); null when auditing is off.
  /// Observes inside the best_mu critical section, in acceptance order.
  core::audit::IncumbentAudit* incumbent_audit = nullptr;

  Mutex stats_mu;  // merge point at worker exit
  core::EngineStats stats FSBB_GUARDED_BY(stats_mu);
  StealStats steal_stats FSBB_GUARDED_BY(stats_mu);

  /// Start barrier: workers spin here until the whole gang exists, so the
  /// shard holding the root cannot race ahead of thieves that the OS has
  /// not scheduled yet (on short solves that skew serializes the search).
  std::atomic<std::size_t> ready{0};
};

template <typename PoolT>
void request_stop(Shared<PoolT>& sh, core::StopReason reason) {
  int expected = -1;
  sh.stop_latch.compare_exchange_strong(expected, static_cast<int>(reason),
                                        std::memory_order_acq_rel);
  sh.stop.store(true, std::memory_order_release);
}

template <typename PoolT>
void await_gang(Shared<PoolT>& sh) {
  sh.ready.fetch_add(1, std::memory_order_acq_rel);
  while (sh.ready.load(std::memory_order_acquire) < sh.pool.shards()) {
    std::this_thread::yield();
  }
}

/// One victim-scan round. Returns a node to process (stolen batch minus
/// one lands in the thief's own deque) or nullopt if every victim was dry.
template <typename PoolT>
std::optional<NodeRef> try_steal(Shared<PoolT>& sh, std::size_t id,
                                 std::size_t& rr_cursor, SplitMix64& rng,
                                 std::vector<NodeRef>& loot,
                                 StealStats& local) {
  const std::size_t workers = sh.pool.shards();
  if (workers <= 1) return std::nullopt;
  for (std::size_t probe = 0; probe + 1 < workers; ++probe) {
    std::size_t victim;
    if (sh.victim_order == core::VictimOrder::kRandom) {
      victim = static_cast<std::size_t>(rng.next_below(workers - 1));
      if (victim >= id) ++victim;  // skip self, stay uniform
    } else {
      // Skip self without consuming a probe, so every scan covers all
      // W-1 other shards (at 2 threads the single probe must always
      // land on the other worker).
      if (rr_cursor == id) rr_cursor = rr_cursor + 1 == workers ? 0 : rr_cursor + 1;
      victim = rr_cursor;
      rr_cursor = rr_cursor + 1 == workers ? 0 : rr_cursor + 1;
    }
    loot.clear();
    ++local.steal_attempts;
    if (sh.pool.shard(victim).steal(loot, sh.steal_batch) == 0) continue;
    ++local.steal_successes;
    local.nodes_stolen += loot.size();
    // Keep the oldest node for immediate branching; the rest refill the
    // local deque (in_flight is unchanged — the nodes merely moved shard).
    NodeRef next = loot.front();
    for (std::size_t i = 1; i < loot.size(); ++i) {
      sh.pool.shard(id).push(std::move(loot[i]));
    }
    return next;
  }
  return std::nullopt;
}

/// BoundContext is fsp::Lb1BoundContext or detail::Lb2BoundContext — the
/// search loop is byte-for-byte the same either way; only bound_child's
/// arithmetic differs.
template <typename PoolT, typename BoundContext>
void worker(const fsp::Instance& inst, const fsp::LowerBoundData& /*data*/,
            Shared<PoolT>& sh, std::size_t id, BoundContext ctx) {
  core::EngineStats local;
  StealStats local_steals;
  std::vector<NodeRef> survivors;
  std::vector<NodeRef> loot;
  std::size_t rr_cursor = (id + 1) % sh.pool.shards();
  SplitMix64 rng(0x5163a1ULL + id);  // per-worker victim sequence
  int dry_rounds = 0;
  await_gang(sh);

  for (;;) {
    if (sh.stop.load(std::memory_order_acquire)) break;
    // Cooperative stop: polled once per node, so cancellation and deadlines
    // take effect within one expansion per worker.
    if (sh.control) {
      if (const auto reason = sh.control->should_stop()) {
        request_stop(sh, *reason);
        break;
      }
      // Fold externally offered incumbents (dist/ broadcasts) into the
      // shared bound: CAS-min on the ub atomic only — best_perm stays the
      // best *locally discovered* schedule.
      const fsp::Time external = sh.control->external_incumbent();
      fsp::Time cur = sh.ub.load(std::memory_order_relaxed);
      while (external < cur &&
             !sh.ub.compare_exchange_weak(cur, external,
                                          std::memory_order_acq_rel)) {
      }
    }
    std::optional<NodeRef> node = sh.pool.shard(id).pop();
    if (!node) node = try_steal(sh, id, rr_cursor, rng, loot, local_steals);
    if (!node) {
      // Two-phase quiescence: observing zero once is not enough in
      // general (a node could be between a pop and its children's
      // pushes), so confirm after a full fence. in_flight counts
      // children before releasing the parent, which makes the confirmed
      // zero final: nothing can re-raise it.
      if (sh.in_flight.load(std::memory_order_acquire) == 0) {
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (sh.in_flight.load(std::memory_order_seq_cst) == 0) break;
      }
      if (++dry_rounds >= kSpinRoundsBeforeNap) {
        std::this_thread::sleep_for(kNap);
      } else {
        std::this_thread::yield();
      }
      continue;
    }
    dry_rounds = 0;

    const fsp::Time ub_snapshot = sh.ub.load(std::memory_order_acquire);
    if (node->lb >= ub_snapshot) {
      ++local.pruned;
      sh.arena.release(node->slot, id);
      sh.in_flight.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    const std::uint64_t branched_total =
        sh.branched.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (sh.node_budget != 0 && branched_total >= sh.node_budget) {
      request_stop(sh, core::StopReason::kBudget);
    }
    ++local.branched;

    detail::BestLeaf best_leaf = detail::expand_node(
        inst, sh.arena, id, *node, ub_snapshot, ctx, local, survivors);
    sh.arena.release(node->slot, id);

    if (best_leaf.makespan < sh.ub.load(std::memory_order_acquire)) {
      // Lock-free incumbent: CAS-min the atomic every worker prunes
      // against, then record the permutation behind the mutex (its own
      // makespan field keeps late-arriving weaker updates out).
      fsp::Time cur = sh.ub.load(std::memory_order_relaxed);
      while (best_leaf.makespan < cur &&
             !sh.ub.compare_exchange_weak(cur, best_leaf.makespan,
                                          std::memory_order_acq_rel)) {
      }
      bool improved = false;
      std::vector<fsp::JobId> improved_perm;
      {
        const LockGuard lock(sh.best_mu);
        if (best_leaf.makespan < sh.best_perm_makespan) {
          sh.best_perm_makespan = best_leaf.makespan;
          if (sh.incumbent_audit) {
            sh.incumbent_audit->observe(best_leaf.makespan);
          }
          if (sh.control) improved_perm = best_leaf.perm;  // for the event
          sh.best_perm = std::move(best_leaf.perm);
          ++local.ub_updates;
          improved = true;
        }
      }
      if (improved && sh.control) {
        // Global branched count + incumbent; per-operator counters only
        // exist merged, in the final report.
        sh.control->emit_incumbent(best_leaf.makespan, improved_perm,
                                   branched_total, 0, 0);
      }
    }
    if (sh.control) {
      sh.control->maybe_emit_tick(sh.ub.load(std::memory_order_acquire),
                                  branched_total, 0, 0);
    }

    // Children first, parent last: in_flight can only hit zero when the
    // whole subtree below every popped node has been accounted.
    const fsp::Time ub_fresh = sh.ub.load(std::memory_order_acquire);
    for (NodeRef& child : survivors) {
      if (child.lb < ub_fresh) {
        sh.in_flight.fetch_add(1, std::memory_order_acq_rel);
        sh.pool.shard(id).push(std::move(child));
      } else {
        ++local.pruned;
        sh.arena.release(child.slot, id);
      }
    }
    sh.in_flight.fetch_sub(1, std::memory_order_acq_rel);
  }

  const LockGuard lock(sh.stats_mu);
  sh.stats.branched += local.branched;
  sh.stats.generated += local.generated;
  sh.stats.evaluated += local.evaluated;
  sh.stats.pruned += local.pruned;
  sh.stats.leaves += local.leaves;
  sh.stats.ub_updates += local.ub_updates;
  sh.steal_stats.steal_attempts += local_steals.steal_attempts;
  sh.steal_stats.steal_successes += local_steals.steal_successes;
  sh.steal_stats.nodes_stolen += local_steals.nodes_stolen;
}

template <typename PoolT>
core::SolveResult run_impl(const fsp::Instance& inst,
                           const fsp::LowerBoundData& data,
                           std::vector<Subproblem> initial,
                           fsp::Time initial_ub, const MtOptions& options,
                           std::vector<fsp::JobId> seed_perm,
                           const fsp::Lb2Data* lb2) {
  FSBB_CHECK_MSG(options.threads >= 1, "need at least one worker");
  FSBB_CHECK_MSG(options.steal_batch >= 1, "steal batch must be >= 1");
  FSBB_CHECK_MSG(options.bound != MtBound::kLb2 || lb2 != nullptr,
                 "lb2 runs need the Lb2Data tables");
  const WallTimer timer;

  // Auditors (core/audit.h): snapshot the mode once per solve.
  std::unique_ptr<core::audit::ArenaAudit> arena_audit;
  std::unique_ptr<core::audit::IncumbentAudit> incumbent_audit;
  if (core::audit::enabled()) {
    arena_audit = std::make_unique<core::audit::ArenaAudit>("cpu-steal");
    incumbent_audit =
        std::make_unique<core::audit::IncumbentAudit>("cpu-steal");
  }

  Shared<PoolT> sh(options.threads, inst.jobs());
  if (arena_audit != nullptr) sh.arena.set_audit(arena_audit.get());
  sh.incumbent_audit = incumbent_audit.get();
  sh.lb2 = lb2;
  const std::size_t main_lane = options.threads;
  sh.ub.store(initial_ub, std::memory_order_relaxed);
  sh.node_budget = options.node_budget;
  sh.control = options.control;
  sh.victim_order = options.victim_order;
  sh.steal_batch = options.steal_batch;
  {
    // Workers have not started; the locks are uncontended and keep every
    // guarded-field access inside a critical section.
    const LockGuard lock(sh.best_mu);
    sh.best_perm_makespan = initial_ub;
    sh.best_perm = std::move(seed_perm);
  }
  {
    const LockGuard lock(sh.stats_mu);
    sh.stats.initial_ub = initial_ub;
  }

  std::vector<NodeRef> live;
  live.reserve(initial.size());
  for (Subproblem& sp : initial) {
    FSBB_CHECK_MSG(sp.lb != Subproblem::kUnevaluated,
                   "steal engine requires bounded initial nodes");
    if (sp.lb < initial_ub) {
      live.push_back(NodeRef{sp.lb, sp.depth, sh.arena.adopt(sp, main_lane)});
    } else {
      const LockGuard lock(sh.stats_mu);
      ++sh.stats.pruned;
    }
  }
  sh.in_flight.store(live.size(), std::memory_order_relaxed);
  sh.pool.distribute(std::move(live));

  {
    std::vector<std::thread> workers;
    workers.reserve(options.threads);
    for (std::size_t i = 0; i < options.threads; ++i) {
      if (options.bound == MtBound::kLb2) {
        // Per-worker two-smallest state lives inside the context: no
        // allocation and no sharing on the hot path.
        workers.emplace_back([&inst, &data, &sh, i, lb2 = sh.lb2] {
          worker(inst, data, sh, i,
                 detail::Lb2BoundContext(inst, data, *lb2));
        });
      } else {
        workers.emplace_back([&inst, &data, &sh, i] {
          worker(inst, data, sh, i, fsp::Lb1BoundContext(inst, data));
        });
      }
    }
    for (auto& w : workers) w.join();
  }

  core::SolveResult result;
  {
    const LockGuard lock(sh.best_mu);
    result.best_makespan = sh.best_perm_makespan;
    result.best_permutation = std::move(sh.best_perm);
  }
  result.proven_optimal = !sh.stop.load(std::memory_order_acquire);
  const int latched = sh.stop_latch.load(std::memory_order_acquire);
  result.stop_reason = latched >= 0 ? static_cast<core::StopReason>(latched)
                                    : core::StopReason::kOptimal;
  {
    const LockGuard lock(sh.stats_mu);
    result.stats = sh.stats;
    result.steal = sh.steal_stats;
  }
  if (arena_audit != nullptr) {
    // Early stops leave unexplored nodes in the shards; release them so
    // the drain check distinguishes "still pooled" from "leaked".
    for (NodeRef& ref : sh.pool.drain()) {
      sh.arena.release(ref.slot, main_lane);
    }
    arena_audit->check_drained();
  }
  result.stats.wall_seconds = timer.seconds();
  // Bounding dominates worker time; report it as such for the profile bench.
  result.stats.bounding_seconds = result.stats.wall_seconds;
  return result;
}

/// Dispatches on the deque kind once per solve; everything below the
/// branch is the same templated search.
core::SolveResult run(const fsp::Instance& inst,
                      const fsp::LowerBoundData& data,
                      std::vector<Subproblem> initial, fsp::Time initial_ub,
                      const MtOptions& options,
                      std::vector<fsp::JobId> seed_perm,
                      const fsp::Lb2Data* lb2) {
  if (options.deque == core::DequeKind::kChaseLev) {
    return run_impl<
        core::ShardedPoolT<NodeRef, core::ChaseLevStorage<NodeRef>>>(
        inst, data, std::move(initial), initial_ub, options,
        std::move(seed_perm), lb2);
  }
  return run_impl<core::ShardedPoolT<NodeRef>>(inst, data, std::move(initial),
                                               initial_ub, options,
                                               std::move(seed_perm), lb2);
}

}  // namespace

core::SolveResult steal_solve(const fsp::Instance& inst,
                              const fsp::LowerBoundData& data,
                              const MtOptions& options) {
  std::unique_ptr<fsp::Lb2Data> lb2;
  if (options.bound == MtBound::kLb2) {
    lb2 = std::make_unique<fsp::Lb2Data>(fsp::Lb2Data::build(inst));
  }
  detail::RootStart start =
      detail::make_root_start(inst, data, options.initial_ub, lb2.get());
  std::vector<Subproblem> initial;
  initial.push_back(std::move(start.root));
  return run(inst, data, std::move(initial), start.ub, options,
             std::move(start.seed_perm), lb2.get());
}

core::SolveResult steal_solve_from(const fsp::Instance& inst,
                                   const fsp::LowerBoundData& data,
                                   std::vector<core::Subproblem> initial,
                                   fsp::Time initial_ub,
                                   const MtOptions& options) {
  std::unique_ptr<fsp::Lb2Data> lb2;
  if (options.bound == MtBound::kLb2) {
    lb2 = std::make_unique<fsp::Lb2Data>(fsp::Lb2Data::build(inst));
  }
  return run(inst, data, std::move(initial), initial_ub, options, {},
             lb2.get());
}

}  // namespace fsbb::mtbb
