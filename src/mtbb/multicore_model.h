// Analytic model of the paper's multi-core baseline (Table IV, Figure 5).
//
// The paper runs its Pthread B&B on an Intel Core i7-970 (6 cores / 12
// hardware threads, 3.20 GHz, 76.8 double GFLOPS per core) and reports
// speedups *relative to the serial B&B on the 2.27 GHz Xeon E5520*. That
// cross-machine baseline is why 3 threads already yield x4: the clock
// ratio (3.20 / 2.27 = 1.41) multiplies near-linear scaling. Beyond the 6
// physical cores, extra threads only harvest the small SMT yield, which is
// what saturates Table IV around x9-x11; smaller instances scale slightly
// better because their working set stays cache-resident.
#pragma once

namespace fsbb::mtbb {

/// Constants of the Table IV model.
struct MulticoreModelParams {
  double reference_clock_ghz = 2.27;  ///< serial baseline: Xeon E5520
  double multicore_clock_ghz = 3.20;  ///< Intel Core i7-970
  int physical_cores = 6;
  double smt_yield = 0.12;            ///< marginal value of a hyper-thread
  double per_core_overhead = 0.005;   ///< scheduling drag per extra core
  double cache_bonus = 0.09;          ///< small-instance cache advantage
  int reference_jobs = 200;           ///< instance size with bonus == 1
  double gflops_per_thread = 76.8;    ///< the paper's per-core peak figure

  double clock_ratio() const {
    return multicore_clock_ghz / reference_clock_ghz;
  }

  static MulticoreModelParams i7_970_defaults() {
    return MulticoreModelParams{};
  }
};

/// Modeled speedup of `threads` workers on an n-job instance, relative to
/// the serial reference core (the paper's Table IV cells).
double multicore_speedup(const MulticoreModelParams& params, int threads,
                         int jobs);

/// The paper's "theoretical peak of GFLOPS" column: threads x 76.8.
double multicore_gflops(const MulticoreModelParams& params, int threads);

/// Threads needed to reach (at least) the given GFLOPS budget — how the
/// paper picks 7 threads for the iso-500-GFLOPS comparison of Figure 5.
int threads_for_gflops(const MulticoreModelParams& params, double gflops);

}  // namespace fsbb::mtbb
