// Work-stealing multicore B&B — the sharded-pool successor to the §V
// shared-pool baseline (mt_engine.h).
//
// Each of the N workers owns one deque of core::ShardedPool: it pushes and
// pops LIFO locally (depth-first dive, no contention), and when its deque
// runs dry it steals the oldest nodes from a victim chosen per
// MtOptions::victim_order. The incumbent is a lock-free atomic that every
// worker prunes against; the best permutation rides behind a small mutex
// touched only on improvement. Termination is a global in-flight node
// counter (nodes resident in any deque or being branched) with a two-phase
// quiescence check: a starving worker that observes zero re-reads after a
// full fence before exiting, so no node can be in transit past it.
//
// Like the baseline, the search is exact — the optimum is deterministic,
// node counts vary across runs because incumbent updates race.
#pragma once

#include <vector>

#include "core/engine.h"
#include "fsp/instance.h"
#include "fsp/lb_data.h"
#include "mtbb/mt_engine.h"

namespace fsbb::mtbb {

/// Solves from the root with `options.threads` work-stealing workers.
/// The result carries merged StealStats in SolveResult::steal.
core::SolveResult steal_solve(const fsp::Instance& inst,
                              const fsp::LowerBoundData& data,
                              const MtOptions& options);

/// Explores a frozen node list with a given incumbent (protocol runs).
/// Initial nodes are round-robined across the worker shards.
core::SolveResult steal_solve_from(const fsp::Instance& inst,
                                   const fsp::LowerBoundData& data,
                                   std::vector<core::Subproblem> initial,
                                   fsp::Time initial_ub,
                                   const MtOptions& options);

}  // namespace fsbb::mtbb
