#include "mtbb/mt_engine.h"

#include <limits>
#include <thread>

#include "common/check.h"
#include "common/mutex.h"
#include "common/timer.h"
#include "core/audit.h"
#include "core/node_arena.h"
#include "core/pool.h"
#include "fsp/lb1.h"
#include "fsp/lb2.h"
#include "mtbb/branch_expand.h"

namespace fsbb::mtbb {
namespace {

using core::NodeRef;
using core::Subproblem;

/// Everything the workers share.
struct Shared {
  Mutex mu;
  CondVar cv;
  core::NodeArena* arena = nullptr;  // lanes: one per worker + main
  std::unique_ptr<core::ArenaPool> pool FSBB_GUARDED_BY(mu);
  /// Nodes popped but not yet re-inserted.
  std::size_t in_flight FSBB_GUARDED_BY(mu) = 0;
  bool stop FSBB_GUARDED_BY(mu) = false;  // budget exhausted
  /// Incumbent; a best_perm update must ride the same critical section.
  fsp::Time ub FSBB_GUARDED_BY(mu);
  std::vector<fsp::JobId> best_perm FSBB_GUARDED_BY(mu);
  std::uint64_t branched FSBB_GUARDED_BY(mu) = 0;
  std::uint64_t node_budget = 0;  // set before the gang starts
  core::EngineStats stats FSBB_GUARDED_BY(mu);  // merged at worker exit
  core::StopReason stop_reason FSBB_GUARDED_BY(mu) = core::StopReason::kOptimal;
  core::SearchControl* control = nullptr;  // may be null
  /// Acceptance-order auditor (core/audit.h); null when auditing is off.
  core::audit::IncumbentAudit* incumbent_audit = nullptr;
};

/// Latches the first stop reason and wakes every worker. Caller must NOT
/// hold sh.mu.
void request_stop(Shared& sh, core::StopReason reason) {
  const LockGuard lock(sh.mu);
  if (!sh.stop) {
    sh.stop = true;
    sh.stop_reason = reason;
  }
  sh.cv.notify_all();
}

/// BoundContext is fsp::Lb1BoundContext or detail::Lb2BoundContext — the
/// search loop is byte-for-byte the same either way; only bound_child's
/// arithmetic differs.
template <typename BoundContext>
void worker(const fsp::Instance& inst, Shared& sh, std::size_t lane,
            BoundContext ctx) {
  core::EngineStats local;
  std::vector<NodeRef> survivors;

  for (;;) {
    // Cooperative stop: polled before taking the lock, so a canceled or
    // past-deadline search unwinds within one node expansion per worker.
    if (sh.control) {
      if (const auto reason = sh.control->should_stop()) {
        request_stop(sh, *reason);
        break;
      }
      // Fold externally offered incumbents (dist/ broadcasts) into the
      // shared bound; best_perm stays the best locally found schedule.
      const fsp::Time external = sh.control->external_incumbent();
      if (external < std::numeric_limits<fsp::Time>::max()) {
        const LockGuard lock(sh.mu);
        if (external < sh.ub) sh.ub = external;
      }
    }
    NodeRef node;
    std::uint64_t branched_total = 0;
    {
      UniqueLock lock(sh.mu);
      while (!sh.stop && sh.pool->empty() && sh.in_flight != 0) {
        sh.cv.wait(lock);
      }
      if (sh.stop || (sh.pool->empty() && sh.in_flight == 0)) break;
      if (sh.pool->empty()) continue;  // spurious: others still in flight
      node = sh.pool->pop();
      if (node.lb >= sh.ub) {
        ++local.pruned;
        sh.arena->release(node.slot, lane);  // lane-local, lock-free
        if (sh.pool->empty() && sh.in_flight == 0) sh.cv.notify_all();
        continue;
      }
      ++sh.branched;
      ++sh.in_flight;
      branched_total = sh.branched;
      if (sh.node_budget != 0 && sh.branched >= sh.node_budget && !sh.stop) {
        sh.stop = true;
        sh.stop_reason = core::StopReason::kBudget;
        sh.cv.notify_all();
      }
    }
    ++local.branched;

    // Branch + bound the children without holding the lock.
    const fsp::Time ub_snapshot = [&] {
      const LockGuard lock(sh.mu);
      return sh.ub;
    }();
    detail::BestLeaf best_leaf = detail::expand_node(
        inst, *sh.arena, lane, node, ub_snapshot, ctx, local, survivors);
    sh.arena->release(node.slot, lane);

    bool improved = false;
    std::vector<fsp::JobId> improved_perm;
    fsp::Time tick_ub;
    {
      const LockGuard lock(sh.mu);
      if (best_leaf.makespan < sh.ub) {
        sh.ub = best_leaf.makespan;
        // The audit observes inside the acceptance critical section, so it
        // sees exactly the order the engine committed incumbents in.
        if (sh.incumbent_audit) sh.incumbent_audit->observe(best_leaf.makespan);
        if (sh.control) improved_perm = best_leaf.perm;  // for the event
        sh.best_perm = std::move(best_leaf.perm);
        ++local.ub_updates;
        improved = true;
      }
      for (NodeRef& child : survivors) {
        // Re-check against the freshest incumbent before inserting.
        if (child.lb < sh.ub) {
          sh.pool->push(std::move(child));
        } else {
          ++local.pruned;
          sh.arena->release(child.slot, lane);
        }
      }
      --sh.in_flight;
      tick_ub = sh.ub;
      sh.cv.notify_all();
    }
    if (sh.control) {
      // Parallel engines stream the global branched count and incumbent;
      // the per-operator counters only exist merged, in the final report.
      if (improved) {
        sh.control->emit_incumbent(best_leaf.makespan, improved_perm,
                                   branched_total, 0, 0);
      }
      sh.control->maybe_emit_tick(tick_ub, branched_total, 0, 0);
    }
  }

  const LockGuard lock(sh.mu);
  sh.stats.branched += local.branched;
  sh.stats.generated += local.generated;
  sh.stats.evaluated += local.evaluated;
  sh.stats.pruned += local.pruned;
  sh.stats.leaves += local.leaves;
  sh.stats.ub_updates += local.ub_updates;
}

core::SolveResult run(const fsp::Instance& inst,
                      const fsp::LowerBoundData& data,
                      std::vector<Subproblem> initial, fsp::Time initial_ub,
                      const MtOptions& options,
                      std::vector<fsp::JobId> seed_perm) {
  FSBB_CHECK_MSG(options.threads >= 1, "need at least one worker");
  const WallTimer timer;

  // LB2 tables, shared read-only by every worker (each worker's context
  // keeps its own two-smallest state; the tables themselves are immutable).
  std::unique_ptr<fsp::Lb2Data> lb2;
  if (options.bound == MtBound::kLb2) {
    lb2 = std::make_unique<fsp::Lb2Data>(fsp::Lb2Data::build(inst));
  }

  // One allocation lane per worker plus one for this (the coordinating)
  // thread, which adopts the initial nodes.
  core::NodeArena arena(inst.jobs(), options.threads + 1);
  const std::size_t main_lane = options.threads;

  // Auditors (core/audit.h): snapshot the mode once per solve.
  std::unique_ptr<core::audit::ArenaAudit> arena_audit;
  std::unique_ptr<core::audit::IncumbentAudit> incumbent_audit;
  if (core::audit::enabled()) {
    arena_audit = std::make_unique<core::audit::ArenaAudit>("multicore");
    incumbent_audit =
        std::make_unique<core::audit::IncumbentAudit>("multicore");
    arena.set_audit(arena_audit.get());
  }

  Shared sh;
  sh.arena = &arena;
  sh.node_budget = options.node_budget;
  sh.control = options.control;
  sh.incumbent_audit = incumbent_audit.get();
  {
    // Workers have not started; the lock is uncontended and keeps every
    // access to the guarded fields inside a critical section.
    const LockGuard lock(sh.mu);
    sh.pool = core::make_pool<NodeRef>(core::SelectionStrategy::kBestFirst);
    sh.ub = initial_ub;
    sh.best_perm = std::move(seed_perm);
    sh.stats.initial_ub = initial_ub;
    for (Subproblem& sp : initial) {
      FSBB_CHECK_MSG(sp.lb != Subproblem::kUnevaluated,
                     "mt engine requires bounded initial nodes");
      if (sp.lb < sh.ub) {
        sh.pool->push(NodeRef{sp.lb, sp.depth, arena.adopt(sp, main_lane)});
      } else {
        ++sh.stats.pruned;
      }
    }
  }

  {
    std::vector<std::thread> workers;
    workers.reserve(options.threads);
    for (std::size_t i = 0; i < options.threads; ++i) {
      if (lb2 != nullptr) {
        workers.emplace_back([&inst, &data, &sh, i, lb2 = lb2.get()] {
          worker(inst, sh, i, detail::Lb2BoundContext(inst, data, *lb2));
        });
      } else {
        workers.emplace_back([&inst, &data, &sh, i] {
          worker(inst, sh, i, fsp::Lb1BoundContext(inst, data));
        });
      }
    }
    for (auto& w : workers) w.join();
  }

  core::SolveResult result;
  {
    const LockGuard lock(sh.mu);
    result.best_makespan = sh.ub;
    result.best_permutation = std::move(sh.best_perm);
    result.proven_optimal = !sh.stop;  // stopped only when pool drained
    result.stop_reason = sh.stop_reason;
    result.stats = sh.stats;
    if (arena_audit != nullptr) {
      // Early stops leave unexplored nodes in the pool; release them so
      // the drain check distinguishes "still pooled" from "leaked".
      while (!sh.pool->empty()) {
        arena.release(sh.pool->pop().slot, main_lane);
      }
    }
  }
  if (arena_audit != nullptr) arena_audit->check_drained();
  result.stats.wall_seconds = timer.seconds();
  // Bounding dominates worker time; report it as such for the profile bench.
  result.stats.bounding_seconds = result.stats.wall_seconds;
  return result;
}

}  // namespace

core::SolveResult mt_solve(const fsp::Instance& inst,
                           const fsp::LowerBoundData& data,
                           const MtOptions& options) {
  std::unique_ptr<fsp::Lb2Data> lb2;
  if (options.bound == MtBound::kLb2) {
    lb2 = std::make_unique<fsp::Lb2Data>(fsp::Lb2Data::build(inst));
  }
  detail::RootStart start =
      detail::make_root_start(inst, data, options.initial_ub, lb2.get());
  std::vector<Subproblem> initial;
  initial.push_back(std::move(start.root));
  return run(inst, data, std::move(initial), start.ub, options,
             std::move(start.seed_perm));
}

core::SolveResult mt_solve_from(const fsp::Instance& inst,
                                const fsp::LowerBoundData& data,
                                std::vector<core::Subproblem> initial,
                                fsp::Time initial_ub,
                                const MtOptions& options) {
  return run(inst, data, std::move(initial), initial_ub, options, {});
}

}  // namespace fsbb::mtbb
