#include "mtbb/mt_engine.h"

#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/timer.h"
#include "core/node_arena.h"
#include "core/pool.h"
#include "fsp/lb1.h"
#include "mtbb/branch_expand.h"

namespace fsbb::mtbb {
namespace {

using core::NodeRef;
using core::Subproblem;

/// Everything the workers share.
struct Shared {
  std::mutex mu;
  std::condition_variable cv;
  core::NodeArena* arena = nullptr;         // lanes: one per worker + main
  std::unique_ptr<core::ArenaPool> pool;    // guarded by mu
  std::size_t in_flight = 0;          // nodes popped but not yet re-inserted
  bool stop = false;                  // budget exhausted
  fsp::Time ub;                       // guarded by mu (perm update must match)
  std::vector<fsp::JobId> best_perm;  // guarded by mu
  std::uint64_t branched = 0;         // guarded by mu
  std::uint64_t node_budget = 0;
  core::EngineStats stats;            // merged under mu
  core::StopReason stop_reason = core::StopReason::kOptimal;  // guarded by mu
  core::SearchControl* control = nullptr;  // may be null
};

/// Latches the first stop reason and wakes every worker. Caller must NOT
/// hold sh.mu.
void request_stop(Shared& sh, core::StopReason reason) {
  const std::lock_guard<std::mutex> lock(sh.mu);
  if (!sh.stop) {
    sh.stop = true;
    sh.stop_reason = reason;
  }
  sh.cv.notify_all();
}

void worker(const fsp::Instance& inst, const fsp::LowerBoundData& data,
            Shared& sh, std::size_t lane) {
  fsp::Lb1BoundContext ctx(inst, data);
  core::EngineStats local;
  std::vector<NodeRef> survivors;

  for (;;) {
    // Cooperative stop: polled before taking the lock, so a canceled or
    // past-deadline search unwinds within one node expansion per worker.
    if (sh.control) {
      if (const auto reason = sh.control->should_stop()) {
        request_stop(sh, *reason);
        break;
      }
    }
    NodeRef node;
    std::uint64_t branched_total = 0;
    {
      std::unique_lock<std::mutex> lock(sh.mu);
      sh.cv.wait(lock, [&] {
        return sh.stop || !sh.pool->empty() || sh.in_flight == 0;
      });
      if (sh.stop || (sh.pool->empty() && sh.in_flight == 0)) break;
      if (sh.pool->empty()) continue;  // spurious: others still in flight
      node = sh.pool->pop();
      if (node.lb >= sh.ub) {
        ++local.pruned;
        sh.arena->release(node.slot, lane);  // lane-local, lock-free
        if (sh.pool->empty() && sh.in_flight == 0) sh.cv.notify_all();
        continue;
      }
      ++sh.branched;
      ++sh.in_flight;
      branched_total = sh.branched;
      if (sh.node_budget != 0 && sh.branched >= sh.node_budget && !sh.stop) {
        sh.stop = true;
        sh.stop_reason = core::StopReason::kBudget;
        sh.cv.notify_all();
      }
    }
    ++local.branched;

    // Branch + bound the children without holding the lock.
    const fsp::Time ub_snapshot = [&] {
      std::lock_guard<std::mutex> lock(sh.mu);
      return sh.ub;
    }();
    detail::BestLeaf best_leaf = detail::expand_node(
        inst, *sh.arena, lane, node, ub_snapshot, ctx, local, survivors);
    sh.arena->release(node.slot, lane);

    bool improved = false;
    std::vector<fsp::JobId> improved_perm;
    fsp::Time tick_ub;
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      if (best_leaf.makespan < sh.ub) {
        sh.ub = best_leaf.makespan;
        if (sh.control) improved_perm = best_leaf.perm;  // for the event
        sh.best_perm = std::move(best_leaf.perm);
        ++local.ub_updates;
        improved = true;
      }
      for (NodeRef& child : survivors) {
        // Re-check against the freshest incumbent before inserting.
        if (child.lb < sh.ub) {
          sh.pool->push(std::move(child));
        } else {
          ++local.pruned;
          sh.arena->release(child.slot, lane);
        }
      }
      --sh.in_flight;
      tick_ub = sh.ub;
      sh.cv.notify_all();
    }
    if (sh.control) {
      // Parallel engines stream the global branched count and incumbent;
      // the per-operator counters only exist merged, in the final report.
      if (improved) {
        sh.control->emit_incumbent(best_leaf.makespan, improved_perm,
                                   branched_total, 0, 0);
      }
      sh.control->maybe_emit_tick(tick_ub, branched_total, 0, 0);
    }
  }

  std::lock_guard<std::mutex> lock(sh.mu);
  sh.stats.branched += local.branched;
  sh.stats.generated += local.generated;
  sh.stats.evaluated += local.evaluated;
  sh.stats.pruned += local.pruned;
  sh.stats.leaves += local.leaves;
  sh.stats.ub_updates += local.ub_updates;
}

core::SolveResult run(const fsp::Instance& inst,
                      const fsp::LowerBoundData& data,
                      std::vector<Subproblem> initial, fsp::Time initial_ub,
                      const MtOptions& options,
                      std::vector<fsp::JobId> seed_perm) {
  FSBB_CHECK_MSG(options.threads >= 1, "need at least one worker");
  FSBB_CHECK_MSG(options.bound == MtBound::kLb1,
                 "the shared-pool baseline is lb1-only; use cpu-steal for lb2");
  const WallTimer timer;

  // One allocation lane per worker plus one for this (the coordinating)
  // thread, which adopts the initial nodes.
  core::NodeArena arena(inst.jobs(), options.threads + 1);
  const std::size_t main_lane = options.threads;

  Shared sh;
  sh.arena = &arena;
  sh.pool = core::make_pool<NodeRef>(core::SelectionStrategy::kBestFirst);
  sh.ub = initial_ub;
  sh.best_perm = std::move(seed_perm);
  sh.node_budget = options.node_budget;
  sh.control = options.control;
  sh.stats.initial_ub = initial_ub;
  for (Subproblem& sp : initial) {
    FSBB_CHECK_MSG(sp.lb != Subproblem::kUnevaluated,
                   "mt engine requires bounded initial nodes");
    if (sp.lb < sh.ub) {
      sh.pool->push(NodeRef{sp.lb, sp.depth, arena.adopt(sp, main_lane)});
    } else {
      ++sh.stats.pruned;
    }
  }

  {
    std::vector<std::thread> workers;
    workers.reserve(options.threads);
    for (std::size_t i = 0; i < options.threads; ++i) {
      workers.emplace_back(
          [&inst, &data, &sh, i] { worker(inst, data, sh, i); });
    }
    for (auto& w : workers) w.join();
  }

  core::SolveResult result;
  result.best_makespan = sh.ub;
  result.best_permutation = std::move(sh.best_perm);
  result.proven_optimal = !sh.stop;  // stopped only when pool drained
  result.stop_reason = sh.stop_reason;
  result.stats = sh.stats;
  result.stats.wall_seconds = timer.seconds();
  // Bounding dominates worker time; report it as such for the profile bench.
  result.stats.bounding_seconds = result.stats.wall_seconds;
  return result;
}

}  // namespace

core::SolveResult mt_solve(const fsp::Instance& inst,
                           const fsp::LowerBoundData& data,
                           const MtOptions& options) {
  detail::RootStart start =
      detail::make_root_start(inst, data, options.initial_ub);
  std::vector<Subproblem> initial;
  initial.push_back(std::move(start.root));
  return run(inst, data, std::move(initial), start.ub, options,
             std::move(start.seed_perm));
}

core::SolveResult mt_solve_from(const fsp::Instance& inst,
                                const fsp::LowerBoundData& data,
                                std::vector<core::Subproblem> initial,
                                fsp::Time initial_ub,
                                const MtOptions& options) {
  return run(inst, data, std::move(initial), initial_ub, options, {});
}

}  // namespace fsbb::mtbb
