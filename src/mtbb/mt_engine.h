// Low-level multi-threaded B&B (the paper §V baseline, which uses POSIX
// threads over a shared pool on a multi-core host).
//
// N workers share one best-first pool behind a mutex and a global atomic
// incumbent. Each worker pops a node, branches and bounds its children
// with thread-local scratch (the expensive part, fully parallel), then
// reinserts the survivors. Termination: pool empty and no node in flight.
//
// The search is exact and deterministic in its *result* (the optimum);
// node counts vary slightly across runs because incumbent updates race —
// exactly as in the paper's Pthread implementation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/engine.h"
#include "core/search_control.h"
#include "core/steal_stats.h"
#include "fsp/instance.h"
#include "fsp/lb_data.h"

namespace fsbb::mtbb {

/// Which lower bound the workers compute per child. Both engines support
/// both bounds through the incremental sibling contexts
/// (fsp::Lb1BoundContext / fsp::Lb2BoundContext): one set_parent per
/// popped node, one O(m) front extension plus a compacted Johnson sweep
/// per child.
enum class MtBound {
  kLb1,
  kLb2,
};

/// Multi-threaded solve configuration (shared by the shared-pool baseline
/// and the work-stealing engine; the steal knobs only affect the latter).
struct MtOptions {
  std::size_t threads = 4;
  /// Lower bound the workers compute per child.
  MtBound bound = MtBound::kLb1;
  /// Starting incumbent; NEH if unset.
  std::optional<fsp::Time> initial_ub;
  /// Stop after this many branched nodes across all workers (0 = solve).
  std::uint64_t node_budget = 0;
  /// Victim scan order for starving workers (steal engine only).
  core::VictimOrder victim_order = core::VictimOrder::kRoundRobin;
  /// Nodes moved per successful steal (steal engine only; >= 1).
  std::size_t steal_batch = 4;
  /// Shard deque implementation (steal engine only): per-shard mutex or
  /// the lock-free Chase–Lev circular array.
  core::DequeKind deque = core::DequeKind::kMutex;
  /// Cooperative cancellation / deadline / progress block (not owned; may
  /// be null). Every worker polls it once per node expansion.
  core::SearchControl* control = nullptr;
};

/// Solves from the root with `options.threads` workers.
core::SolveResult mt_solve(const fsp::Instance& inst,
                           const fsp::LowerBoundData& data,
                           const MtOptions& options);

/// Explores a frozen node list with a given incumbent (protocol runs).
core::SolveResult mt_solve_from(const fsp::Instance& inst,
                                const fsp::LowerBoundData& data,
                                std::vector<core::Subproblem> initial,
                                fsp::Time initial_ub, const MtOptions& options);

}  // namespace fsbb::mtbb
