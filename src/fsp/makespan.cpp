#include "fsp/makespan.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace fsbb::fsp {

void extend_fronts(const Instance& inst, JobId job, std::span<Time> fronts) {
  FSBB_ASSERT(fronts.size() == static_cast<std::size_t>(inst.machines()));
  Time prev = 0;
  for (int k = 0; k < inst.machines(); ++k) {
    const Time start = std::max(prev, fronts[k]);
    prev = start + inst.pt(job, k);
    fronts[k] = prev;
  }
}

void compute_fronts(const Instance& inst, std::span<const JobId> prefix,
                    std::span<Time> fronts) {
  FSBB_CHECK(fronts.size() == static_cast<std::size_t>(inst.machines()));
  std::fill(fronts.begin(), fronts.end(), Time{0});
  for (const JobId job : prefix) {
    extend_fronts(inst, job, fronts);
  }
}

Time makespan(const Instance& inst, std::span<const JobId> perm) {
  FSBB_CHECK(perm.size() == static_cast<std::size_t>(inst.jobs()));
  std::vector<Time> fronts(static_cast<std::size_t>(inst.machines()), 0);
  for (const JobId job : perm) {
    extend_fronts(inst, job, fronts);
  }
  return fronts.back();
}

Matrix<Time> completion_matrix(const Instance& inst,
                               std::span<const JobId> perm) {
  const auto n = static_cast<std::size_t>(perm.size());
  const auto m = static_cast<std::size_t>(inst.machines());
  Matrix<Time> c(n, m);
  std::vector<Time> fronts(m, 0);
  for (std::size_t i = 0; i < n; ++i) {
    extend_fronts(inst, perm[i], fronts);
    std::copy(fronts.begin(), fronts.end(), c.row(i).begin());
  }
  return c;
}

bool is_valid_permutation(const Instance& inst, std::span<const JobId> perm) {
  const int n = inst.jobs();
  if (perm.size() != static_cast<std::size_t>(n)) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (const JobId job : perm) {
    if (job < 0 || job >= n || seen[static_cast<std::size_t>(job)]) {
      return false;
    }
    seen[static_cast<std::size_t>(job)] = true;
  }
  return true;
}

std::vector<JobId> identity_permutation(int jobs) {
  std::vector<JobId> perm(static_cast<std::size_t>(jobs));
  std::iota(perm.begin(), perm.end(), JobId{0});
  return perm;
}

}  // namespace fsbb::fsp
