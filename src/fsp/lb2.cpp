#include "fsp/lb2.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "fsp/makespan.h"

namespace fsbb::fsp {
namespace {

/// lb1_evaluate provider with node-local rm/qm vectors.
class Lb2Provider {
 public:
  Lb2Provider(const LowerBoundData& d, std::span<const Time> rm_u,
              std::span<const Time> qm_u)
      : d_(&d), rm_u_(rm_u), qm_u_(qm_u) {}

  int jobs() const { return d_->jobs(); }
  int machines() const { return d_->machines(); }
  int pairs() const { return d_->pairs(); }
  JobId jm(int pair, int pos) const { return d_->jm(pair, pos); }
  Time lm(int job, int pair) const { return d_->lm(job, pair); }
  Time ptm(int job, int machine) const { return d_->ptm(job, machine); }
  Time rm(int machine) const {
    return rm_u_[static_cast<std::size_t>(machine)];
  }
  Time qm(int machine) const {
    return qm_u_[static_cast<std::size_t>(machine)];
  }
  int mm_k(int pair) const { return d_->mm(pair).k; }
  int mm_l(int pair) const { return d_->mm(pair).l; }

 private:
  const LowerBoundData* d_;
  std::span<const Time> rm_u_;
  std::span<const Time> qm_u_;
};

}  // namespace

Lb2Data Lb2Data::build(const Instance& inst) {
  const auto n = static_cast<std::size_t>(inst.jobs());
  const auto m = static_cast<std::size_t>(inst.machines());
  Lb2Data d;
  d.hm_ = Matrix<Time>(n, m);
  d.tm_ = Matrix<Time>(n, m);
  for (int j = 0; j < inst.jobs(); ++j) {
    Time head = 0;
    for (int k = 0; k < inst.machines(); ++k) {
      d.hm_(j, k) = head;
      head += inst.pt(j, k);
    }
    Time tail = 0;
    for (int k = inst.machines() - 1; k >= 0; --k) {
      d.tm_(j, k) = tail;
      tail += inst.pt(j, k);
    }
  }
  return d;
}

Lb2BoundContext::Lb2BoundContext(const Instance& inst,
                                 const LowerBoundData& lb1_data,
                                 const Lb2Data& lb2_data)
    : inst_(&inst), data_(&lb1_data), lb2_(&lb2_data),
      parent_fronts_(static_cast<std::size_t>(inst.machines())),
      child_fronts_(static_cast<std::size_t>(inst.machines())),
      scheduled_(static_cast<std::size_t>(inst.jobs())),
      free_seq_(static_cast<std::size_t>(lb1_data.pairs()) *
                static_cast<std::size_t>(inst.jobs())),
      head_min1_(static_cast<std::size_t>(inst.machines())),
      head_min2_(static_cast<std::size_t>(inst.machines())),
      tail_min1_(static_cast<std::size_t>(inst.machines())),
      tail_min2_(static_cast<std::size_t>(inst.machines())),
      head_arg_(static_cast<std::size_t>(inst.machines())),
      tail_arg_(static_cast<std::size_t>(inst.machines())),
      rm_u_(static_cast<std::size_t>(inst.machines())),
      qm_u_(static_cast<std::size_t>(inst.machines())) {}

void Lb2BoundContext::set_parent(std::span<const JobId> prefix) {
  FSBB_CHECK(prefix.size() <= static_cast<std::size_t>(inst_->jobs()));
  const int n = inst_->jobs();
  const int m = inst_->machines();
  const int n_pairs = data_->pairs();
  compute_fronts(*inst_, prefix, parent_fronts_);
  std::fill(scheduled_.begin(), scheduled_.end(), std::uint8_t{0});
  for (const JobId job : prefix) {
    scheduled_[static_cast<std::size_t>(job)] = 1;
  }
  free_count_ = n - static_cast<int>(prefix.size());
  // Compact each couple's Johnson order down to the unscheduled jobs (the
  // same discipline as Lb1BoundContext).
  for (int s = 0; s < n_pairs; ++s) {
    JobId* row = free_seq_.data() + static_cast<std::size_t>(s) *
                                        static_cast<std::size_t>(free_count_);
    int out = 0;
    for (int i = 0; i < n; ++i) {
      const JobId job = data_->jm(s, i);
      if (!scheduled_[static_cast<std::size_t>(job)]) {
        row[out++] = job;
      }
    }
    FSBB_ASSERT(out == free_count_);
  }
  // Two-smallest head/tail per machine over the unscheduled set. Ascending
  // job order and strict < keep the first attaining job as argmin.
  constexpr Time kInf = std::numeric_limits<Time>::max();
  std::fill(head_min1_.begin(), head_min1_.end(), kInf);
  std::fill(head_min2_.begin(), head_min2_.end(), kInf);
  std::fill(tail_min1_.begin(), tail_min1_.end(), kInf);
  std::fill(tail_min2_.begin(), tail_min2_.end(), kInf);
  std::fill(head_arg_.begin(), head_arg_.end(), JobId{-1});
  std::fill(tail_arg_.begin(), tail_arg_.end(), JobId{-1});
  for (int j = 0; j < n; ++j) {
    if (scheduled_[static_cast<std::size_t>(j)]) continue;
    for (int k = 0; k < m; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      const Time h = lb2_->head(j, k);
      if (h < head_min1_[kk]) {
        head_min2_[kk] = head_min1_[kk];
        head_min1_[kk] = h;
        head_arg_[kk] = static_cast<JobId>(j);
      } else {
        head_min2_[kk] = std::min(head_min2_[kk], h);
      }
      const Time t = lb2_->tail(j, k);
      if (t < tail_min1_[kk]) {
        tail_min2_[kk] = tail_min1_[kk];
        tail_min1_[kk] = t;
        tail_arg_[kk] = static_cast<JobId>(j);
      } else {
        tail_min2_[kk] = std::min(tail_min2_[kk], t);
      }
    }
  }
}

Time Lb2BoundContext::bound_child(JobId job) {
  FSBB_ASSERT(!scheduled_[static_cast<std::size_t>(job)]);
  std::copy(parent_fronts_.begin(), parent_fronts_.end(),
            child_fronts_.begin());
  extend_fronts(*inst_, job, child_fronts_);
  if (free_count_ == 1) {
    return child_fronts_.back();  // complete schedule: the makespan is exact
  }

  const int m = inst_->machines();
  for (int k = 0; k < m; ++k) {
    const auto kk = static_cast<std::size_t>(k);
    rm_u_[kk] = head_arg_[kk] == job ? head_min2_[kk] : head_min1_[kk];
    qm_u_[kk] = tail_arg_[kk] == job ? tail_min2_[kk] : tail_min1_[kk];
  }

  const LowerBoundData& d = *data_;
  const int n_pairs = d.pairs();
  const int fc = free_count_;
  Time lb = 0;
  for (int s = 0; s < n_pairs; ++s) {
    const auto [k, l] = d.mm(s);
    Time t1 = std::max(child_fronts_[static_cast<std::size_t>(k)],
                       rm_u_[static_cast<std::size_t>(k)]);
    Time t2 = std::max(child_fronts_[static_cast<std::size_t>(l)],
                       rm_u_[static_cast<std::size_t>(l)]);
    const JobId* row = free_seq_.data() + static_cast<std::size_t>(s) *
                                              static_cast<std::size_t>(fc);
    for (int i = 0; i < fc; ++i) {
      const JobId q = row[i];
      if (q == job) continue;  // the one job the child scheduled
      t1 += d.ptm(q, k);
      const Time arrival = t1 + d.lm(q, s);
      t2 = (t2 > arrival ? t2 : arrival) + d.ptm(q, l);
    }
    t2 += qm_u_[static_cast<std::size_t>(l)];
    lb = std::max(lb, t2);
  }
  return lb;
}

Time lb2_from_state(const LowerBoundData& lb1_data, const Lb2Data& lb2_data,
                    std::span<const Time> fronts,
                    std::span<const std::uint8_t> scheduled,
                    Lb2Scratch& scratch) {
  const int n = lb1_data.jobs();
  const int m = lb1_data.machines();
  FSBB_CHECK(fronts.size() == static_cast<std::size_t>(m));
  FSBB_CHECK(scheduled.size() == static_cast<std::size_t>(n));

  // Node-local minima over the unscheduled set.
  const auto rm_u = scratch.rm_u();
  const auto qm_u = scratch.qm_u();
  std::fill(rm_u.begin(), rm_u.end(), std::numeric_limits<Time>::max());
  std::fill(qm_u.begin(), qm_u.end(), std::numeric_limits<Time>::max());
  bool any_remaining = false;
  for (int j = 0; j < n; ++j) {
    if (scheduled[static_cast<std::size_t>(j)]) continue;
    any_remaining = true;
    for (int k = 0; k < m; ++k) {
      rm_u[static_cast<std::size_t>(k)] =
          std::min(rm_u[static_cast<std::size_t>(k)], lb2_data.head(j, k));
      qm_u[static_cast<std::size_t>(k)] =
          std::min(qm_u[static_cast<std::size_t>(k)], lb2_data.tail(j, k));
    }
  }
  if (!any_remaining) {
    return fronts.back();  // complete schedule: the makespan is exact
  }
  return lb1_evaluate(Lb2Provider(lb1_data, rm_u, qm_u), fronts, scheduled);
}

Time lb2_from_state(const LowerBoundData& lb1_data, const Lb2Data& lb2_data,
                    std::span<const Time> fronts,
                    std::span<const std::uint8_t> scheduled) {
  Lb2Scratch scratch(lb1_data.jobs(), lb1_data.machines());
  return lb2_from_state(lb1_data, lb2_data, fronts, scheduled, scratch);
}

Time lb2_from_prefix(const Instance& inst, const LowerBoundData& lb1_data,
                     const Lb2Data& lb2_data, std::span<const JobId> prefix,
                     Lb2Scratch& scratch) {
  const auto fronts = scratch.base().fronts();
  const auto scheduled = scratch.base().scheduled();
  compute_fronts(inst, prefix, fronts);
  std::fill(scheduled.begin(), scheduled.end(), std::uint8_t{0});
  for (const JobId job : prefix) {
    scheduled[static_cast<std::size_t>(job)] = 1;
  }
  return lb2_from_state(lb1_data, lb2_data, fronts, scheduled, scratch);
}

Time lb2_from_prefix(const Instance& inst, const LowerBoundData& lb1_data,
                     const Lb2Data& lb2_data, std::span<const JobId> prefix) {
  Lb2Scratch scratch(inst.jobs(), inst.machines());
  return lb2_from_prefix(inst, lb1_data, lb2_data, prefix, scratch);
}

}  // namespace fsbb::fsp
