#include "fsp/lb2.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "fsp/makespan.h"

namespace fsbb::fsp {
namespace {

/// lb1_evaluate provider with node-local rm/qm vectors.
class Lb2Provider {
 public:
  Lb2Provider(const LowerBoundData& d, std::span<const Time> rm_u,
              std::span<const Time> qm_u)
      : d_(&d), rm_u_(rm_u), qm_u_(qm_u) {}

  int jobs() const { return d_->jobs(); }
  int machines() const { return d_->machines(); }
  int pairs() const { return d_->pairs(); }
  JobId jm(int pair, int pos) const { return d_->jm(pair, pos); }
  Time lm(int job, int pair) const { return d_->lm(job, pair); }
  Time ptm(int job, int machine) const { return d_->ptm(job, machine); }
  Time rm(int machine) const {
    return rm_u_[static_cast<std::size_t>(machine)];
  }
  Time qm(int machine) const {
    return qm_u_[static_cast<std::size_t>(machine)];
  }
  int mm_k(int pair) const { return d_->mm(pair).k; }
  int mm_l(int pair) const { return d_->mm(pair).l; }

 private:
  const LowerBoundData* d_;
  std::span<const Time> rm_u_;
  std::span<const Time> qm_u_;
};

}  // namespace

Lb2Data Lb2Data::build(const Instance& inst) {
  const auto n = static_cast<std::size_t>(inst.jobs());
  const auto m = static_cast<std::size_t>(inst.machines());
  Lb2Data d;
  d.hm_ = Matrix<Time>(n, m);
  d.tm_ = Matrix<Time>(n, m);
  for (int j = 0; j < inst.jobs(); ++j) {
    Time head = 0;
    for (int k = 0; k < inst.machines(); ++k) {
      d.hm_(j, k) = head;
      head += inst.pt(j, k);
    }
    Time tail = 0;
    for (int k = inst.machines() - 1; k >= 0; --k) {
      d.tm_(j, k) = tail;
      tail += inst.pt(j, k);
    }
  }
  return d;
}

Time lb2_from_state(const LowerBoundData& lb1_data, const Lb2Data& lb2_data,
                    std::span<const Time> fronts,
                    std::span<const std::uint8_t> scheduled,
                    Lb2Scratch& scratch) {
  const int n = lb1_data.jobs();
  const int m = lb1_data.machines();
  FSBB_CHECK(fronts.size() == static_cast<std::size_t>(m));
  FSBB_CHECK(scheduled.size() == static_cast<std::size_t>(n));

  // Node-local minima over the unscheduled set.
  const auto rm_u = scratch.rm_u();
  const auto qm_u = scratch.qm_u();
  std::fill(rm_u.begin(), rm_u.end(), std::numeric_limits<Time>::max());
  std::fill(qm_u.begin(), qm_u.end(), std::numeric_limits<Time>::max());
  bool any_remaining = false;
  for (int j = 0; j < n; ++j) {
    if (scheduled[static_cast<std::size_t>(j)]) continue;
    any_remaining = true;
    for (int k = 0; k < m; ++k) {
      rm_u[static_cast<std::size_t>(k)] =
          std::min(rm_u[static_cast<std::size_t>(k)], lb2_data.head(j, k));
      qm_u[static_cast<std::size_t>(k)] =
          std::min(qm_u[static_cast<std::size_t>(k)], lb2_data.tail(j, k));
    }
  }
  if (!any_remaining) {
    return fronts.back();  // complete schedule: the makespan is exact
  }
  return lb1_evaluate(Lb2Provider(lb1_data, rm_u, qm_u), fronts, scheduled);
}

Time lb2_from_state(const LowerBoundData& lb1_data, const Lb2Data& lb2_data,
                    std::span<const Time> fronts,
                    std::span<const std::uint8_t> scheduled) {
  Lb2Scratch scratch(lb1_data.jobs(), lb1_data.machines());
  return lb2_from_state(lb1_data, lb2_data, fronts, scheduled, scratch);
}

Time lb2_from_prefix(const Instance& inst, const LowerBoundData& lb1_data,
                     const Lb2Data& lb2_data, std::span<const JobId> prefix,
                     Lb2Scratch& scratch) {
  const auto fronts = scratch.base().fronts();
  const auto scheduled = scratch.base().scheduled();
  compute_fronts(inst, prefix, fronts);
  std::fill(scheduled.begin(), scheduled.end(), std::uint8_t{0});
  for (const JobId job : prefix) {
    scheduled[static_cast<std::size_t>(job)] = 1;
  }
  return lb2_from_state(lb1_data, lb2_data, fronts, scheduled, scratch);
}

Time lb2_from_prefix(const Instance& inst, const LowerBoundData& lb1_data,
                     const Lb2Data& lb2_data, std::span<const JobId> prefix) {
  Lb2Scratch scratch(inst.jobs(), inst.machines());
  return lb2_from_prefix(inst, lb1_data, lb2_data, prefix, scratch);
}

}  // namespace fsbb::fsp
