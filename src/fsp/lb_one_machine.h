// LB0 — the classic single-machine flow-shop bound, used as the cheap
// baseline for the ablation benches: for every machine k,
//   LB_k = start_k + sum of remaining work on k + min remaining tail after k
// and LB0 = max_k LB_k. Weaker than LB1 but Θ(n m) instead of Θ(n m^2).
#pragma once

#include <span>

#include "fsp/instance.h"
#include "fsp/lb1.h"
#include "fsp/lb_data.h"

namespace fsbb::fsp {

/// LB0 of a node given its fronts and scheduled mask (same contract as
/// lb1_from_state). Uses RM/QM from LowerBoundData for heads/tails.
Time lb0_from_state(const Instance& inst, const LowerBoundData& data,
                    std::span<const Time> fronts,
                    std::span<const std::uint8_t> scheduled);

/// Convenience: replays the prefix. O(|prefix| m + n m).
Time lb0_from_prefix(const Instance& inst, const LowerBoundData& data,
                     std::span<const JobId> prefix);

/// Same but with caller-provided scratch (no allocation), mirroring the
/// lb1_from_prefix scratch overload.
Time lb0_from_prefix(const Instance& inst, const LowerBoundData& data,
                     std::span<const JobId> prefix, Lb1Scratch& scratch);

}  // namespace fsbb::fsp
