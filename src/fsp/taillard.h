// Taillard's flow-shop benchmark generator and instance registry.
//
// É. Taillard, "Benchmarks for basic scheduling problems", EJOR 64 (1993).
// Processing times are unif(1, 99) drawn machine-major from the
// minimal-standard LCG (common/rng.h Lcg31). Given the published time seeds
// this reproduces the standard ta001–ta120 instance set bit-for-bit; the
// CLUSTER'12 paper evaluates the m = 20 classes (20x20 … 200x20).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "fsp/instance.h"

namespace fsbb::fsp {

/// One entry of the standard benchmark registry.
struct TaillardSpec {
  int id;                  ///< 1-based standard index (ta001 == 1).
  int jobs;                ///< n
  int machines;            ///< m
  std::int32_t time_seed;  ///< published seed for the processing-time matrix
};

/// The 120 published instance specs (12 classes x 10 instances).
std::span<const TaillardSpec> taillard_registry();

/// Generates an n x m instance from an arbitrary seed (Taillard's scheme).
Instance make_taillard_instance(int jobs, int machines, std::int32_t time_seed,
                                std::string name = {});

/// The standard instance ta<id> (id in [1, 120]).
Instance taillard_instance(int id);

/// First registry instance of the (jobs x machines) class; throws if the
/// class is not part of the published set.
Instance taillard_class_representative(int jobs, int machines);

}  // namespace fsbb::fsp
