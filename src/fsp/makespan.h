// Schedule evaluation: makespans, machine fronts, completion matrices.
//
// "Fronts" are the per-machine completion times of a scheduled prefix — the
// state a branch-and-bound node needs in order to bound or extend itself.
#pragma once

#include <span>

#include "common/matrix.h"
#include "fsp/instance.h"

namespace fsbb::fsp {

/// Makespan of a complete permutation schedule. O(n * m).
Time makespan(const Instance& inst, std::span<const JobId> perm);

/// Per-machine completion times after processing `prefix` in order.
/// `fronts` must have size m; it is fully overwritten. O(|prefix| * m).
void compute_fronts(const Instance& inst, std::span<const JobId> prefix,
                    std::span<Time> fronts);

/// Extends fronts in place by scheduling one more job. O(m).
void extend_fronts(const Instance& inst, JobId job, std::span<Time> fronts);

/// Full completion-time matrix C(i, k) = completion of perm[i] on machine k.
Matrix<Time> completion_matrix(const Instance& inst,
                               std::span<const JobId> perm);

/// True iff perm is a permutation of {0, .., n-1} for this instance.
bool is_valid_permutation(const Instance& inst, std::span<const JobId> perm);

/// Identity permutation 0..n-1.
std::vector<JobId> identity_permutation(int jobs);

}  // namespace fsbb::fsp
