// Permutation flow-shop problem instance.
//
// n jobs must each visit machines M_0 .. M_{m-1} in that order; machine k
// processes job j for pt(j, k) uninterrupted time units; machines handle one
// job at a time and every machine processes jobs in the same (permutation)
// order. Objective: minimize the makespan C_max.
#pragma once

#include <cstdint>
#include <string>

#include "common/matrix.h"

namespace fsbb::fsp {

/// Job index. int16 comfortably covers the largest Taillard instances (500).
using JobId = std::int16_t;

/// Time quantity (processing times, completion times, makespans, bounds).
using Time = std::int32_t;

/// Immutable problem instance: the processing-time matrix plus metadata.
class Instance {
 public:
  /// `pt` is job-major: pt(j, k) = processing time of job j on machine k.
  /// Throws CheckFailure on empty dimensions or negative times.
  Instance(std::string name, Matrix<Time> pt);

  int jobs() const { return static_cast<int>(pt_.rows()); }
  int machines() const { return static_cast<int>(pt_.cols()); }

  Time pt(int job, int machine) const { return pt_(job, machine); }

  /// The full processing-time matrix (the paper's PTM), job-major.
  const Matrix<Time>& ptm() const { return pt_; }

  const std::string& name() const { return name_; }

  /// Sum of all processing times — a trivial upper bound on the makespan.
  Time total_work() const { return total_work_; }

  /// Number of machine couples (k, l), k < l: m * (m - 1) / 2.
  int machine_pairs() const {
    const int m = machines();
    return m * (m - 1) / 2;
  }

 private:
  std::string name_;
  Matrix<Time> pt_;
  Time total_work_ = 0;
};

}  // namespace fsbb::fsp
