// Exhaustive enumeration — the correctness oracle for every solver and
// bound in the test suite. Only sensible for small n (n! schedules).
#pragma once

#include <span>
#include <vector>

#include "fsp/instance.h"

namespace fsbb::fsp {

/// Optimal schedule found by exhaustive enumeration.
struct BruteForceResult {
  std::vector<JobId> permutation;
  Time makespan = 0;
  std::uint64_t schedules_evaluated = 0;
};

/// Enumerates all n! permutations. Throws if n > max_jobs (guard against
/// accidental combinatorial explosions in tests).
BruteForceResult brute_force(const Instance& inst, int max_jobs = 10);

/// Best makespan over all completions of a fixed prefix (used to verify
/// that lower bounds never exceed the best reachable schedule of a node).
BruteForceResult brute_force_completion(const Instance& inst,
                                        std::span<const JobId> prefix,
                                        int max_free_jobs = 10);

}  // namespace fsbb::fsp
