#include "fsp/lb1.h"

#include <algorithm>

#include "common/check.h"
#include "fsp/makespan.h"

namespace fsbb::fsp {

Time lb1_from_prefix(const Instance& inst, const LowerBoundData& data,
                     std::span<const JobId> prefix, Lb1Scratch& scratch) {
  FSBB_CHECK(prefix.size() <= static_cast<std::size_t>(inst.jobs()));
  auto fronts = scratch.fronts();
  auto scheduled = scratch.scheduled();
  compute_fronts(inst, prefix, fronts);
  std::fill(scheduled.begin(), scheduled.end(), std::uint8_t{0});
  for (const JobId job : prefix) {
    scheduled[static_cast<std::size_t>(job)] = 1;
  }
  return lb1_evaluate(HostLb1Provider(data), fronts, scheduled);
}

Time lb1_from_prefix(const Instance& inst, const LowerBoundData& data,
                     std::span<const JobId> prefix) {
  Lb1Scratch scratch(inst.jobs(), inst.machines());
  return lb1_from_prefix(inst, data, prefix, scratch);
}

Lb1BoundContext::Lb1BoundContext(const Instance& inst,
                                 const LowerBoundData& data)
    : inst_(&inst), data_(&data),
      parent_fronts_(static_cast<std::size_t>(inst.machines())),
      child_fronts_(static_cast<std::size_t>(inst.machines())),
      scheduled_(static_cast<std::size_t>(inst.jobs())),
      free_seq_(static_cast<std::size_t>(data.pairs()) *
                static_cast<std::size_t>(inst.jobs())) {
  const auto n_pairs = static_cast<std::size_t>(data.pairs());
  const auto n = static_cast<std::size_t>(inst.jobs());
  mk_.resize(n_pairs);
  ml_.resize(n_pairs);
  rmk_.resize(n_pairs);
  rml_.resize(n_pairs);
  qml_.resize(n_pairs);
  for (std::size_t s = 0; s < n_pairs; ++s) {
    const auto [k, l] = data.mm(static_cast<int>(s));
    mk_[s] = k;
    ml_[s] = l;
    rmk_[s] = data.rm(k);
    rml_[s] = data.rm(l);
    qml_[s] = data.qm(l);
  }
  pack_job_.resize(n_pairs * n);
  pack_p1_.resize(n_pairs * n);
  pack_p2_.resize(n_pairs * n);
  pack_lag_.resize(n_pairs * n);
  t1_.resize(n_pairs);
  t2_.resize(n_pairs);
}

void Lb1BoundContext::set_parent(std::span<const JobId> prefix) {
  FSBB_CHECK(prefix.size() <= static_cast<std::size_t>(inst_->jobs()));
  const int n = inst_->jobs();
  const int n_pairs = data_->pairs();
  compute_fronts(*inst_, prefix, parent_fronts_);
  std::fill(scheduled_.begin(), scheduled_.end(), std::uint8_t{0});
  for (const JobId job : prefix) {
    scheduled_[static_cast<std::size_t>(job)] = 1;
  }
  free_count_ = n - static_cast<int>(prefix.size());
  // Compact each couple's Johnson order down to the unscheduled jobs, so
  // every sibling's sweep iterates free_count_ entries instead of n. Two
  // layouts are kept: couple-major rows for the scalar reference sweep,
  // and position-major pre-gathered columns ([i * pairs + s]) for the
  // vectorized sweep — the per-parent scatter here buys a branch-free,
  // unit-stride inner loop for every sibling.
  const auto np = static_cast<std::size_t>(n_pairs);
  for (int s = 0; s < n_pairs; ++s) {
    JobId* row = free_seq_.data() +
                 static_cast<std::size_t>(s) * static_cast<std::size_t>(free_count_);
    const int k = mk_[static_cast<std::size_t>(s)];
    const int l = ml_[static_cast<std::size_t>(s)];
    int out = 0;
    for (int i = 0; i < n; ++i) {
      const JobId job = data_->jm(s, i);
      if (!scheduled_[static_cast<std::size_t>(job)]) {
        row[out] = job;
        const std::size_t at =
            static_cast<std::size_t>(out) * np + static_cast<std::size_t>(s);
        pack_job_[at] = job;
        pack_p1_[at] = data_->ptm(job, k);
        pack_p2_[at] = data_->ptm(job, l);
        pack_lag_[at] = data_->lm(job, s);
        ++out;
      }
    }
    FSBB_ASSERT(out == free_count_);
  }
}

void Lb1BoundContext::extend_child_fronts(JobId job) {
  FSBB_ASSERT(!scheduled_[static_cast<std::size_t>(job)]);
  std::copy(parent_fronts_.begin(), parent_fronts_.end(),
            child_fronts_.begin());
  extend_fronts(*inst_, job, child_fronts_);
}

Time Lb1BoundContext::bound_child(JobId job) {
  extend_child_fronts(job);

  const int n_pairs = data_->pairs();
  const auto np = static_cast<std::size_t>(n_pairs);
  const int fc = free_count_;
  // Per-couple accumulator lanes (the couple axis has no cross-lane
  // dependency; the position axis does).
  for (std::size_t s = 0; s < np; ++s) {
    t1_[s] = std::max(child_fronts_[static_cast<std::size_t>(mk_[s])], rmk_[s]);
    t2_[s] = std::max(child_fronts_[static_cast<std::size_t>(ml_[s])], rml_[s]);
  }
  const Time tjob = job;
  for (int i = 0; i < fc; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * np;
    const Time* jid = pack_job_.data() + base;
    const Time* p1 = pack_p1_.data() + base;
    const Time* p2 = pack_p2_.data() + base;
    const Time* lag = pack_lag_.data() + base;
    Time* t1 = t1_.data();
    Time* t2 = t2_.data();
    for (std::size_t s = 0; s < np; ++s) {
      // keep == 0 reproduces the scalar `continue` exactly: both
      // accumulators stay untouched for the couple whose entry is the
      // child's own job.
      const Time keep = static_cast<Time>(jid[s] != tjob);
      t1[s] += keep * p1[s];
      const Time arrival = t1[s] + lag[s];
      const Time stepped = (t2[s] > arrival ? t2[s] : arrival) + p2[s];
      t2[s] += keep * (stepped - t2[s]);
    }
  }
  Time lb = 0;
  for (std::size_t s = 0; s < np; ++s) {
    lb = std::max(lb, t2_[s] + qml_[s]);
  }
  return lb;
}

Time Lb1BoundContext::bound_child_reference(JobId job) {
  extend_child_fronts(job);

  const LowerBoundData& d = *data_;
  const int n_pairs = d.pairs();
  const int fc = free_count_;
  Time lb = 0;
  for (int s = 0; s < n_pairs; ++s) {
    const auto [k, l] = d.mm(s);
    Time t1 = std::max(child_fronts_[static_cast<std::size_t>(k)], d.rm(k));
    Time t2 = std::max(child_fronts_[static_cast<std::size_t>(l)], d.rm(l));
    const JobId* row = free_seq_.data() +
                       static_cast<std::size_t>(s) * static_cast<std::size_t>(fc);
    for (int i = 0; i < fc; ++i) {
      const JobId q = row[i];
      if (q == job) continue;  // the one job the child scheduled
      t1 += d.ptm(q, k);
      const Time arrival = t1 + d.lm(q, s);
      t2 = (t2 > arrival ? t2 : arrival) + d.ptm(q, l);
    }
    t2 += d.qm(l);
    lb = std::max(lb, t2);
  }
  return lb;
}

Time lb1_from_state(const LowerBoundData& data, std::span<const Time> fronts,
                    std::span<const std::uint8_t> scheduled) {
  FSBB_CHECK(fronts.size() == static_cast<std::size_t>(data.machines()));
  FSBB_CHECK(scheduled.size() == static_cast<std::size_t>(data.jobs()));
  return lb1_evaluate(HostLb1Provider(data), fronts, scheduled);
}

}  // namespace fsbb::fsp
