#include "fsp/lb1.h"

#include <algorithm>

#include "common/check.h"
#include "fsp/makespan.h"

namespace fsbb::fsp {

Time lb1_from_prefix(const Instance& inst, const LowerBoundData& data,
                     std::span<const JobId> prefix, Lb1Scratch& scratch) {
  FSBB_CHECK(prefix.size() <= static_cast<std::size_t>(inst.jobs()));
  auto fronts = scratch.fronts();
  auto scheduled = scratch.scheduled();
  compute_fronts(inst, prefix, fronts);
  std::fill(scheduled.begin(), scheduled.end(), std::uint8_t{0});
  for (const JobId job : prefix) {
    scheduled[static_cast<std::size_t>(job)] = 1;
  }
  return lb1_evaluate(HostLb1Provider(data), fronts, scheduled);
}

Time lb1_from_prefix(const Instance& inst, const LowerBoundData& data,
                     std::span<const JobId> prefix) {
  Lb1Scratch scratch(inst.jobs(), inst.machines());
  return lb1_from_prefix(inst, data, prefix, scratch);
}

Lb1BoundContext::Lb1BoundContext(const Instance& inst,
                                 const LowerBoundData& data)
    : inst_(&inst), data_(&data),
      parent_fronts_(static_cast<std::size_t>(inst.machines())),
      child_fronts_(static_cast<std::size_t>(inst.machines())),
      scheduled_(static_cast<std::size_t>(inst.jobs())),
      free_seq_(static_cast<std::size_t>(data.pairs()) *
                static_cast<std::size_t>(inst.jobs())) {}

void Lb1BoundContext::set_parent(std::span<const JobId> prefix) {
  FSBB_CHECK(prefix.size() <= static_cast<std::size_t>(inst_->jobs()));
  const int n = inst_->jobs();
  const int n_pairs = data_->pairs();
  compute_fronts(*inst_, prefix, parent_fronts_);
  std::fill(scheduled_.begin(), scheduled_.end(), std::uint8_t{0});
  for (const JobId job : prefix) {
    scheduled_[static_cast<std::size_t>(job)] = 1;
  }
  free_count_ = n - static_cast<int>(prefix.size());
  // Compact each couple's Johnson order down to the unscheduled jobs, so
  // every sibling's sweep iterates free_count_ entries instead of n.
  for (int s = 0; s < n_pairs; ++s) {
    JobId* row = free_seq_.data() +
                 static_cast<std::size_t>(s) * static_cast<std::size_t>(free_count_);
    int out = 0;
    for (int i = 0; i < n; ++i) {
      const JobId job = data_->jm(s, i);
      if (!scheduled_[static_cast<std::size_t>(job)]) row[out++] = job;
    }
    FSBB_ASSERT(out == free_count_);
  }
}

Time Lb1BoundContext::bound_child(JobId job) {
  FSBB_ASSERT(!scheduled_[static_cast<std::size_t>(job)]);
  std::copy(parent_fronts_.begin(), parent_fronts_.end(),
            child_fronts_.begin());
  extend_fronts(*inst_, job, child_fronts_);

  const LowerBoundData& d = *data_;
  const int n_pairs = d.pairs();
  const int fc = free_count_;
  Time lb = 0;
  for (int s = 0; s < n_pairs; ++s) {
    const auto [k, l] = d.mm(s);
    Time t1 = std::max(child_fronts_[static_cast<std::size_t>(k)], d.rm(k));
    Time t2 = std::max(child_fronts_[static_cast<std::size_t>(l)], d.rm(l));
    const JobId* row = free_seq_.data() +
                       static_cast<std::size_t>(s) * static_cast<std::size_t>(fc);
    for (int i = 0; i < fc; ++i) {
      const JobId q = row[i];
      if (q == job) continue;  // the one job the child scheduled
      t1 += d.ptm(q, k);
      const Time arrival = t1 + d.lm(q, s);
      t2 = (t2 > arrival ? t2 : arrival) + d.ptm(q, l);
    }
    t2 += d.qm(l);
    lb = std::max(lb, t2);
  }
  return lb;
}

Time lb1_from_state(const LowerBoundData& data, std::span<const Time> fronts,
                    std::span<const std::uint8_t> scheduled) {
  FSBB_CHECK(fronts.size() == static_cast<std::size_t>(data.machines()));
  FSBB_CHECK(scheduled.size() == static_cast<std::size_t>(data.jobs()));
  return lb1_evaluate(HostLb1Provider(data), fronts, scheduled);
}

}  // namespace fsbb::fsp
