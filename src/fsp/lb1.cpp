#include "fsp/lb1.h"

#include <algorithm>

#include "common/check.h"
#include "fsp/makespan.h"

namespace fsbb::fsp {

Time lb1_from_prefix(const Instance& inst, const LowerBoundData& data,
                     std::span<const JobId> prefix, Lb1Scratch& scratch) {
  FSBB_CHECK(prefix.size() <= static_cast<std::size_t>(inst.jobs()));
  auto fronts = scratch.fronts();
  auto scheduled = scratch.scheduled();
  compute_fronts(inst, prefix, fronts);
  std::fill(scheduled.begin(), scheduled.end(), std::uint8_t{0});
  for (const JobId job : prefix) {
    scheduled[static_cast<std::size_t>(job)] = 1;
  }
  return lb1_evaluate(HostLb1Provider(data), fronts, scheduled);
}

Time lb1_from_prefix(const Instance& inst, const LowerBoundData& data,
                     std::span<const JobId> prefix) {
  Lb1Scratch scratch(inst.jobs(), inst.machines());
  return lb1_from_prefix(inst, data, prefix, scratch);
}

Time lb1_from_state(const LowerBoundData& data, std::span<const Time> fronts,
                    std::span<const std::uint8_t> scheduled) {
  FSBB_CHECK(fronts.size() == static_cast<std::size_t>(data.machines()));
  FSBB_CHECK(scheduled.size() == static_cast<std::size_t>(data.jobs()));
  return lb1_evaluate(HostLb1Provider(data), fronts, scheduled);
}

}  // namespace fsbb::fsp
