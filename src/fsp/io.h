// Instance file I/O in the Taillard benchmark text format.
//
// A file holds one or more instances, each introduced by a header line
//   number of jobs, number of machines, initial seed, upper bound, lower bound :
// followed by a line of the five values, a "processing times :" line, and
// the m x n processing-time matrix (machine-major: row k lists every job's
// time on machine k). The parser is whitespace-tolerant.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "fsp/instance.h"

namespace fsbb::fsp {

/// Metadata carried by a Taillard-format instance entry.
struct InstanceRecord {
  Instance instance;
  std::int32_t time_seed = 0;
  std::optional<Time> published_upper_bound;
  std::optional<Time> published_lower_bound;
};

/// Parses every instance in the stream. Throws CheckFailure on malformed
/// input (wrong counts, negative times, truncated matrix).
std::vector<InstanceRecord> read_taillard_stream(std::istream& in);

/// Parses a file on disk.
std::vector<InstanceRecord> read_taillard_file(const std::string& path);

/// Writes one instance in the same format (seed/bounds may be zero).
void write_taillard_stream(std::ostream& out, const Instance& inst,
                           std::int32_t time_seed = 0, Time upper_bound = 0,
                           Time lower_bound = 0);

/// Round-trip helper used by tests and the examples.
void write_taillard_file(const std::string& path, const Instance& inst,
                         std::int32_t time_seed = 0, Time upper_bound = 0,
                         Time lower_bound = 0);

}  // namespace fsbb::fsp
