#include "fsp/io.h"

#include <fstream>
#include <sstream>
#include <string>

#include "common/check.h"
#include "common/matrix.h"

namespace fsbb::fsp {
namespace {

// Pulls the next integer token out of the stream, skipping any non-numeric
// words (header labels like "processing times :"). Returns nullopt at EOF.
std::optional<long long> next_int(std::istream& in) {
  std::string tok;
  while (in >> tok) {
    try {
      std::size_t used = 0;
      const long long v = std::stoll(tok, &used);
      if (used == tok.size()) return v;
    } catch (const std::exception&) {
      // Not a number — header text; keep scanning.
    }
  }
  return std::nullopt;
}

}  // namespace

std::vector<InstanceRecord> read_taillard_stream(std::istream& in) {
  std::vector<InstanceRecord> out;
  for (;;) {
    const auto n_opt = next_int(in);
    if (!n_opt) break;
    const auto m_opt = next_int(in);
    FSBB_CHECK_MSG(m_opt.has_value(), "truncated header: missing machine count");
    const auto seed = next_int(in);
    const auto ub = next_int(in);
    const auto lb = next_int(in);
    FSBB_CHECK_MSG(seed && ub && lb, "truncated header: missing seed/bounds");

    const int n = static_cast<int>(*n_opt);
    const int m = static_cast<int>(*m_opt);
    FSBB_CHECK_MSG(n >= 1 && m >= 1, "non-positive dimensions in header");

    Matrix<Time> pt(static_cast<std::size_t>(n), static_cast<std::size_t>(m));
    for (int machine = 0; machine < m; ++machine) {
      for (int job = 0; job < n; ++job) {
        const auto v = next_int(in);
        FSBB_CHECK_MSG(v.has_value(), "truncated processing-time matrix");
        FSBB_CHECK_MSG(*v >= 0, "negative processing time");
        pt(job, machine) = static_cast<Time>(*v);
      }
    }

    InstanceRecord rec{
        Instance(std::to_string(n) + "x" + std::to_string(m), std::move(pt)),
        static_cast<std::int32_t>(*seed), std::nullopt, std::nullopt};
    if (*ub > 0) rec.published_upper_bound = static_cast<Time>(*ub);
    if (*lb > 0) rec.published_lower_bound = static_cast<Time>(*lb);
    out.push_back(std::move(rec));
  }
  return out;
}

std::vector<InstanceRecord> read_taillard_file(const std::string& path) {
  std::ifstream in(path);
  FSBB_CHECK_MSG(in.good(), "cannot open instance file: " + path);
  return read_taillard_stream(in);
}

void write_taillard_stream(std::ostream& out, const Instance& inst,
                           std::int32_t time_seed, Time upper_bound,
                           Time lower_bound) {
  out << "number of jobs, number of machines, initial seed, upper bound, "
         "lower bound :\n";
  out << "    " << inst.jobs() << "  " << inst.machines() << "  " << time_seed
      << "  " << upper_bound << "  " << lower_bound << "\n";
  out << "processing times :\n";
  for (int machine = 0; machine < inst.machines(); ++machine) {
    for (int job = 0; job < inst.jobs(); ++job) {
      out << (job == 0 ? "" : " ") << inst.pt(job, machine);
    }
    out << "\n";
  }
}

void write_taillard_file(const std::string& path, const Instance& inst,
                         std::int32_t time_seed, Time upper_bound,
                         Time lower_bound) {
  std::ofstream out(path);
  FSBB_CHECK_MSG(out.good(), "cannot open file for writing: " + path);
  write_taillard_stream(out, inst, time_seed, upper_bound, lower_bound);
}

}  // namespace fsbb::fsp
