#include "fsp/brute_force.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "fsp/makespan.h"

namespace fsbb::fsp {

BruteForceResult brute_force_completion(const Instance& inst,
                                        std::span<const JobId> prefix,
                                        int max_free_jobs) {
  const int n = inst.jobs();
  std::vector<std::uint8_t> in_prefix(static_cast<std::size_t>(n), 0);
  for (const JobId job : prefix) {
    FSBB_CHECK(job >= 0 && job < n && !in_prefix[static_cast<std::size_t>(job)]);
    in_prefix[static_cast<std::size_t>(job)] = 1;
  }
  std::vector<JobId> rest;
  for (JobId j = 0; j < n; ++j) {
    if (!in_prefix[static_cast<std::size_t>(j)]) rest.push_back(j);
  }
  FSBB_CHECK_MSG(static_cast<int>(rest.size()) <= max_free_jobs,
                 "too many free jobs for brute force");

  std::vector<JobId> perm(prefix.begin(), prefix.end());
  perm.insert(perm.end(), rest.begin(), rest.end());

  BruteForceResult best;
  best.makespan = std::numeric_limits<Time>::max();
  std::sort(perm.begin() + static_cast<std::ptrdiff_t>(prefix.size()),
            perm.end());
  do {
    const Time ms = makespan(inst, perm);
    ++best.schedules_evaluated;
    if (ms < best.makespan) {
      best.makespan = ms;
      best.permutation = perm;
    }
  } while (std::next_permutation(
      perm.begin() + static_cast<std::ptrdiff_t>(prefix.size()), perm.end()));
  return best;
}

BruteForceResult brute_force(const Instance& inst, int max_jobs) {
  FSBB_CHECK_MSG(inst.jobs() <= max_jobs, "instance too large for brute force");
  return brute_force_completion(inst, {}, max_jobs);
}

}  // namespace fsbb::fsp
