#include "fsp/generators.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace fsbb::fsp {

const char* to_string(InstanceFamily family) {
  switch (family) {
    case InstanceFamily::kUniform:
      return "uniform";
    case InstanceFamily::kJobCorrelated:
      return "job-correlated";
    case InstanceFamily::kMachineCorrelated:
      return "machine-correlated";
    case InstanceFamily::kTrend:
      return "trend";
    case InstanceFamily::kTwoPlateaus:
      return "two-plateaus";
  }
  return "?";
}

namespace {

Time clamp99(std::int64_t v) {
  return static_cast<Time>(std::clamp<std::int64_t>(v, 1, 99));
}

}  // namespace

Instance make_instance(InstanceFamily family, int jobs, int machines,
                       std::uint64_t seed) {
  FSBB_CHECK(jobs >= 1 && machines >= 1);
  SplitMix64 rng(seed ^ (static_cast<std::uint64_t>(family) << 56));
  Matrix<Time> pt(static_cast<std::size_t>(jobs),
                  static_cast<std::size_t>(machines));

  switch (family) {
    case InstanceFamily::kUniform: {
      for (auto& v : pt.flat()) v = static_cast<Time>(rng.next_in(1, 99));
      break;
    }
    case InstanceFamily::kJobCorrelated: {
      // Each job has a base duration; machines add small noise. LB1 is
      // nearly exact at the root, yet trees grow large: swapping similar
      // jobs barely changes the makespan, so bounds tie and pruning lags.
      for (int j = 0; j < jobs; ++j) {
        const std::int64_t base = rng.next_in(10, 90);
        for (int k = 0; k < machines; ++k) {
          pt(j, k) = clamp99(base + rng.next_in(-8, 8));
        }
      }
      break;
    }
    case InstanceFamily::kMachineCorrelated: {
      // Each machine has a speed factor; a few bottleneck machines carry
      // most of the load. The one-machine bound LB0 is nearly tight here.
      std::vector<double> factor(static_cast<std::size_t>(machines));
      for (auto& f : factor) f = 0.3 + 1.4 * rng.next_double();
      for (int j = 0; j < jobs; ++j) {
        for (int k = 0; k < machines; ++k) {
          const double base = 10 + 60 * rng.next_double();
          pt(j, k) = clamp99(static_cast<std::int64_t>(
              base * factor[static_cast<std::size_t>(k)]));
        }
      }
      break;
    }
    case InstanceFamily::kTrend: {
      // Processing times grow along the machine axis, so the last
      // machines dominate every schedule; the (k, m-1) machine couples of
      // LB1 are nearly exact and the tree collapses quickly.
      for (int j = 0; j < jobs; ++j) {
        for (int k = 0; k < machines; ++k) {
          const std::int64_t low = 1 + 60 * k / std::max(1, machines - 1);
          pt(j, k) = clamp99(low + rng.next_in(0, 38));
        }
      }
      break;
    }
    case InstanceFamily::kTwoPlateaus: {
      // Operations are either short (1..20) or long (70..99) — schedules
      // hinge on packing the long ones; bimodality defeats averaging
      // arguments in heuristics.
      for (auto& v : pt.flat()) {
        v = static_cast<Time>(rng.next_below(2) == 0 ? rng.next_in(1, 20)
                                                     : rng.next_in(70, 99));
      }
      break;
    }
  }

  std::string name = std::string(to_string(family)) + "-" +
                     std::to_string(jobs) + "x" + std::to_string(machines) +
                     "-s" + std::to_string(seed);
  return Instance(std::move(name), std::move(pt));
}

}  // namespace fsbb::fsp
