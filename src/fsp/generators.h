// Synthetic instance families beyond the uniform Taillard distribution.
//
// The hardness of flow-shop B&B depends heavily on the processing-time
// structure — and not the way folklore suggests: families with many
// near-tied schedules (bimodal "two-plateaus", job-correlated) blow the
// tree up even when the root gap is under 1%, because plateaus of equal
// bounds resist pruning; machine-dominated and trend instances collapse
// after a handful of nodes. bench_instance_families prints the study.
// All generators are deterministic in (shape, seed).
#pragma once

#include <cstdint>
#include <string>

#include "fsp/instance.h"

namespace fsbb::fsp {

/// Synthetic family selector.
enum class InstanceFamily {
  kUniform,            ///< iid unif(1, 99) — Taillard's distribution
  kJobCorrelated,      ///< per-job base +- small noise (long/short jobs)
  kMachineCorrelated,  ///< per-machine speed factor (bottleneck machines)
  kTrend,              ///< times drift upward along the machine axis
  kTwoPlateaus,        ///< bimodal mix of short and long operations
};

const char* to_string(InstanceFamily family);

/// Generates an n x m instance of the given family. Times are in [1, 99]
/// like the published benchmarks so packed GPU buffers stay valid.
Instance make_instance(InstanceFamily family, int jobs, int machines,
                       std::uint64_t seed);

}  // namespace fsbb::fsp
