#include "fsp/lb_one_machine.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "fsp/makespan.h"

namespace fsbb::fsp {

Time lb0_from_state(const Instance& inst, const LowerBoundData& data,
                    std::span<const Time> fronts,
                    std::span<const std::uint8_t> scheduled) {
  const int n = inst.jobs();
  const int m = inst.machines();
  FSBB_CHECK(fronts.size() == static_cast<std::size_t>(m));
  FSBB_CHECK(scheduled.size() == static_cast<std::size_t>(n));

  Time lb = fronts[static_cast<std::size_t>(m - 1)];
  for (int k = 0; k < m; ++k) {
    Time remaining = 0;
    for (int j = 0; j < n; ++j) {
      if (!scheduled[static_cast<std::size_t>(j)]) remaining += inst.pt(j, k);
    }
    const Time start = std::max(fronts[static_cast<std::size_t>(k)], data.rm(k));
    lb = std::max(lb, start + remaining + data.qm(k));
  }
  return lb;
}

Time lb0_from_prefix(const Instance& inst, const LowerBoundData& data,
                     std::span<const JobId> prefix, Lb1Scratch& scratch) {
  const auto fronts = scratch.fronts();
  const auto scheduled = scratch.scheduled();
  compute_fronts(inst, prefix, fronts);
  std::fill(scheduled.begin(), scheduled.end(), std::uint8_t{0});
  for (const JobId job : prefix) {
    scheduled[static_cast<std::size_t>(job)] = 1;
  }
  return lb0_from_state(inst, data, fronts, scheduled);
}

Time lb0_from_prefix(const Instance& inst, const LowerBoundData& data,
                     std::span<const JobId> prefix) {
  Lb1Scratch scratch(inst.jobs(), inst.machines());
  return lb0_from_prefix(inst, data, prefix, scratch);
}

}  // namespace fsbb::fsp
