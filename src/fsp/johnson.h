// Johnson's rule for the two-machine flow-shop, with and without time lags.
//
// S. M. Johnson (1954): the 2-machine permutation flow-shop is solved
// optimally in O(n log n) by scheduling jobs with a_j < b_j first in
// non-decreasing a_j, then the rest in non-increasing b_j.
//
// Mitten's extension: with per-job time lags l_j (job j may start on M2 no
// earlier than l_j after finishing on M1), applying Johnson's rule to the
// modified times (a_j + l_j, l_j + b_j) is optimal over permutation
// schedules. This is the kernel of the Lageweg–Lenstra–Rinnooy Kan
// flow-shop lower bound used throughout the paper.
#pragma once

#include <span>
#include <vector>

#include "fsp/instance.h"

namespace fsbb::fsp {

/// Optimal 2-machine order by Johnson's rule. a[j] / b[j] are job j's times
/// on machines 1 / 2. Ties are broken by job id, so the order is unique.
std::vector<JobId> johnson_order(std::span<const Time> a,
                                 std::span<const Time> b);

/// Johnson order of the lag-modified problem (a_j + l_j, l_j + b_j).
std::vector<JobId> johnson_order_with_lags(std::span<const Time> a,
                                           std::span<const Time> b,
                                           std::span<const Time> lags);

/// Makespan of `order` on the 2-machine (no-lag) problem.
Time two_machine_makespan(std::span<const JobId> order,
                          std::span<const Time> a, std::span<const Time> b);

/// Makespan of `order` on the 2-machine problem with lags, where machine 1
/// is first free at start1 and machine 2 at start2. Recurrence per job:
///   t1 += a_j;  t2 = max(t2, t1 + l_j) + b_j.
Time two_machine_lag_makespan(std::span<const JobId> order,
                              std::span<const Time> a,
                              std::span<const Time> b,
                              std::span<const Time> lags, Time start1 = 0,
                              Time start2 = 0);

}  // namespace fsbb::fsp
