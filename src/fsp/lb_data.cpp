#include "fsp/lb_data.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "fsp/johnson.h"

namespace fsbb::fsp {

LowerBoundData LowerBoundData::build(const Instance& inst) {
  const int n = inst.jobs();
  const int m = inst.machines();
  const int p = inst.machine_pairs();

  LowerBoundData d;
  d.jobs_ = n;
  d.machines_ = m;
  d.ptm_ = inst.ptm();

  // MM: couples (k, l), k < l, in the paper's iteration order.
  d.mm_.reserve(static_cast<std::size_t>(p));
  for (std::int16_t k = 0; k < m; ++k) {
    for (std::int16_t l = static_cast<std::int16_t>(k + 1); l < m; ++l) {
      d.mm_.push_back(MachinePair{k, l});
    }
  }
  FSBB_CHECK(static_cast<int>(d.mm_.size()) == p);

  // LM: lags per (job, pair).
  d.lm_ = Matrix<Time>(static_cast<std::size_t>(n), static_cast<std::size_t>(p));
  for (int j = 0; j < n; ++j) {
    for (int s = 0; s < p; ++s) {
      const auto [k, l] = d.mm_[static_cast<std::size_t>(s)];
      Time lag = 0;
      for (int u = k + 1; u < l; ++u) lag += inst.pt(j, u);
      d.lm_(j, s) = lag;
    }
  }

  // JM: Johnson order of the lag-modified 2-machine problem per pair.
  d.jm_ = Matrix<JobId>(static_cast<std::size_t>(p), static_cast<std::size_t>(n));
  {
    std::vector<Time> a(static_cast<std::size_t>(n));
    std::vector<Time> b(static_cast<std::size_t>(n));
    std::vector<Time> lags(static_cast<std::size_t>(n));
    for (int s = 0; s < p; ++s) {
      const auto [k, l] = d.mm_[static_cast<std::size_t>(s)];
      for (int j = 0; j < n; ++j) {
        a[static_cast<std::size_t>(j)] = inst.pt(j, k);
        b[static_cast<std::size_t>(j)] = inst.pt(j, l);
        lags[static_cast<std::size_t>(j)] = d.lm_(j, s);
      }
      const std::vector<JobId> order = johnson_order_with_lags(a, b, lags);
      std::copy(order.begin(), order.end(), d.jm_.row(s).begin());
    }
  }

  // RM / QM: per-machine minima of heads / tails over all jobs.
  d.rm_.assign(static_cast<std::size_t>(m), std::numeric_limits<Time>::max());
  d.qm_.assign(static_cast<std::size_t>(m), std::numeric_limits<Time>::max());
  for (int j = 0; j < n; ++j) {
    Time head = 0;
    for (int k = 0; k < m; ++k) {
      d.rm_[static_cast<std::size_t>(k)] =
          std::min(d.rm_[static_cast<std::size_t>(k)], head);
      head += inst.pt(j, k);
    }
    Time tail = 0;
    for (int k = m - 1; k >= 0; --k) {
      d.qm_[static_cast<std::size_t>(k)] =
          std::min(d.qm_[static_cast<std::size_t>(k)], tail);
      tail += inst.pt(j, k);
    }
  }
  return d;
}

LowerBoundData::StructureSizes LowerBoundData::host_sizes() const {
  return StructureSizes{
      .ptm = ptm_.size_bytes(),
      .lm = lm_.size_bytes(),
      .jm = jm_.size_bytes(),
      .rm = rm_.size() * sizeof(Time),
      .qm = qm_.size() * sizeof(Time),
      .mm = mm_.size() * sizeof(MachinePair),
  };
}

LowerBoundData::AccessCounts LowerBoundData::accesses_per_eval(
    int n_remaining) const {
  // Table I of the paper: counts per single lower-bound evaluation.
  const std::int64_t m = machines_;
  const std::int64_t n = jobs_;
  const std::int64_t nr = n_remaining;
  const std::int64_t p = m * (m - 1) / 2;
  return AccessCounts{
      .ptm = nr * m * (m - 1),  // two loads per unscheduled job per pair
      .lm = nr * p,
      .jm = n * p,  // the Johnson row is scanned fully per pair
      .rm = m * (m - 1),
      .qm = p,
      .mm = m * (m - 1),
  };
}

}  // namespace fsbb::fsp
