// LB2 — LB1 strengthened with node-local head/tail minima (the paper's
// conclusion asks for "other lower bound functions"; this is the natural
// next rung of the same Johnson ladder).
//
// LB1 keeps RM/QM as *static* per-machine minima over ALL jobs so they fit
// Table I's O(m) footprint. LB2 instead takes, per node, the minima over
// the *unscheduled* jobs only:
//
//   rm_U(k) = min_{j in U} sum_{u<k}  p(j,u)     (earliest arrival at k)
//   qm_U(l) = min_{j in U} sum_{u>l}  p(j,u)     (shortest tail after l)
//
// Both are >= the static values, so LB2 dominates LB1 node-for-node while
// remaining a valid lower bound; the extra cost is one O(n m) sweep per
// node over precomputed head/tail matrices (HM/TM, n x m each). On the
// GPU these two matrices would join PTM in the placement discussion —
// the ablation bench quantifies whether the smaller trees pay for the
// extra per-node work and shared-memory pressure.
#pragma once

#include <span>

#include "fsp/instance.h"
#include "fsp/lb1.h"
#include "fsp/lb_data.h"

namespace fsbb::fsp {

/// LB2's additional precomputed tables.
class Lb2Data {
 public:
  static Lb2Data build(const Instance& inst);

  /// HM(j, k): work job j must finish before it can reach machine k.
  Time head(int job, int machine) const { return hm_(job, machine); }
  /// TM(j, k): work job j still has after leaving machine k.
  Time tail(int job, int machine) const { return tm_(job, machine); }

  const Matrix<Time>& head_matrix() const { return hm_; }
  const Matrix<Time>& tail_matrix() const { return tm_; }

 private:
  Lb2Data() = default;
  Matrix<Time> hm_;
  Matrix<Time> tm_;
};

/// Reusable buffers for the LB2 sweep (fronts + mask + the node-local
/// rm_U/qm_U minima), mirroring Lb1Scratch so hot loops do not allocate.
class Lb2Scratch {
 public:
  Lb2Scratch(int jobs, int machines)
      : base_(jobs, machines),
        rm_u_(static_cast<std::size_t>(machines)),
        qm_u_(static_cast<std::size_t>(machines)) {}

  Lb1Scratch& base() { return base_; }
  std::span<Time> rm_u() { return rm_u_; }
  std::span<Time> qm_u() { return qm_u_; }

 private:
  Lb1Scratch base_;
  std::vector<Time> rm_u_;
  std::vector<Time> qm_u_;
};

/// LB2 of a node. Falls back to fronts.back() for complete schedules.
/// Requires the LB1 data (Johnson orders, lags, machine pairs) plus the
/// LB2 head/tail matrices.
Time lb2_from_state(const LowerBoundData& lb1_data, const Lb2Data& lb2_data,
                    std::span<const Time> fronts,
                    std::span<const std::uint8_t> scheduled);

/// Same, with caller-provided rm_U/qm_U buffers (no allocation).
Time lb2_from_state(const LowerBoundData& lb1_data, const Lb2Data& lb2_data,
                    std::span<const Time> fronts,
                    std::span<const std::uint8_t> scheduled,
                    Lb2Scratch& scratch);

/// Convenience wrapper replaying the prefix (mirrors lb1_from_prefix).
Time lb2_from_prefix(const Instance& inst, const LowerBoundData& lb1_data,
                     const Lb2Data& lb2_data, std::span<const JobId> prefix);

/// Same but with caller-provided scratch (no allocation).
Time lb2_from_prefix(const Instance& inst, const LowerBoundData& lb1_data,
                     const Lb2Data& lb2_data, std::span<const JobId> prefix,
                     Lb2Scratch& scratch);

}  // namespace fsbb::fsp
