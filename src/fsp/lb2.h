// LB2 — LB1 strengthened with node-local head/tail minima (the paper's
// conclusion asks for "other lower bound functions"; this is the natural
// next rung of the same Johnson ladder).
//
// LB1 keeps RM/QM as *static* per-machine minima over ALL jobs so they fit
// Table I's O(m) footprint. LB2 instead takes, per node, the minima over
// the *unscheduled* jobs only:
//
//   rm_U(k) = min_{j in U} sum_{u<k}  p(j,u)     (earliest arrival at k)
//   qm_U(l) = min_{j in U} sum_{u>l}  p(j,u)     (shortest tail after l)
//
// Both are >= the static values, so LB2 dominates LB1 node-for-node while
// remaining a valid lower bound; the extra cost is one O(n m) sweep per
// node over precomputed head/tail matrices (HM/TM, n x m each). On the
// GPU these two matrices would join PTM in the placement discussion —
// the ablation bench quantifies whether the smaller trees pay for the
// extra per-node work and shared-memory pressure.
#pragma once

#include <span>

#include "fsp/instance.h"
#include "fsp/lb1.h"
#include "fsp/lb_data.h"

namespace fsbb::fsp {

/// LB2's additional precomputed tables.
class Lb2Data {
 public:
  static Lb2Data build(const Instance& inst);

  /// HM(j, k): work job j must finish before it can reach machine k.
  Time head(int job, int machine) const { return hm_(job, machine); }
  /// TM(j, k): work job j still has after leaving machine k.
  Time tail(int job, int machine) const { return tm_(job, machine); }

  const Matrix<Time>& head_matrix() const { return hm_; }
  const Matrix<Time>& tail_matrix() const { return tm_; }

 private:
  Lb2Data() = default;
  Matrix<Time> hm_;
  Matrix<Time> tm_;
};

/// Reusable buffers for the LB2 sweep (fronts + mask + the node-local
/// rm_U/qm_U minima), mirroring Lb1Scratch so hot loops do not allocate.
class Lb2Scratch {
 public:
  Lb2Scratch(int jobs, int machines)
      : base_(jobs, machines),
        rm_u_(static_cast<std::size_t>(machines)),
        qm_u_(static_cast<std::size_t>(machines)) {}

  Lb1Scratch& base() { return base_; }
  std::span<Time> rm_u() { return rm_u_; }
  std::span<Time> qm_u() { return qm_u_; }

 private:
  Lb1Scratch base_;
  std::vector<Time> rm_u_;
  std::vector<Time> qm_u_;
};

/// Incremental sibling-batch LB2, mirroring Lb1BoundContext (same
/// set_parent/bound_child surface, so generic expansion code is oblivious
/// to the bound).
///
/// The node-local minima DO have an incremental sibling form: a child
/// removes exactly one job j from the parent's unscheduled set U, so
///
///   rm_{U \ {j}}(k) = min1 if argmin != j else min2
///
/// where (min1, min2, argmin) are the two smallest head values over U at
/// machine k — computed once per parent in O(n m) — and symmetrically for
/// the tails. Each bound_child is then O(m) front extension + O(m) minima
/// selection + the O(pairs (n - depth)) compacted Johnson sweep, instead
/// of the full prefix replay. The sweep visits the surviving jobs in the
/// same Johnson order with the same arithmetic as lb2_from_prefix on the
/// child's prefix, so the bounds are bit-identical — a tested invariant.
///
/// Ties are safe: if several jobs attain min1, argmin is the first one,
/// and removing any other job leaves min1 attained; removing argmin
/// yields min2, which then equals min1's value. Either way the selected
/// value is the true minimum over U \ {j}.
class Lb2BoundContext {
 public:
  Lb2BoundContext(const Instance& inst, const LowerBoundData& lb1_data,
                  const Lb2Data& lb2_data);

  /// Binds the parent whose children are about to be bounded.
  void set_parent(std::span<const JobId> prefix);

  /// LB2 of the child scheduling `job` next. `job` must be one of the
  /// parent's free jobs. Valid until the next set_parent. For the last
  /// free job the child is a complete schedule and the exact makespan is
  /// returned (matching lb2_from_state's fallback).
  Time bound_child(JobId job);

  /// Unscheduled jobs of the bound parent.
  int free_count() const { return free_count_; }

 private:
  const Instance* inst_;
  const LowerBoundData* data_;
  const Lb2Data* lb2_;
  std::vector<Time> parent_fronts_;
  std::vector<Time> child_fronts_;
  std::vector<std::uint8_t> scheduled_;
  /// pairs x free_count (stride free_count_): each machine couple's
  /// Johnson order restricted to the parent's unscheduled jobs.
  std::vector<JobId> free_seq_;
  int free_count_ = 0;
  // Two-smallest head/tail values over the parent's unscheduled set, per
  // machine, with the job attaining the smallest.
  std::vector<Time> head_min1_, head_min2_, tail_min1_, tail_min2_;
  std::vector<JobId> head_arg_, tail_arg_;
  // Per-child node-local minima (selected from the pairs above).
  std::vector<Time> rm_u_, qm_u_;
};

/// LB2 of a node. Falls back to fronts.back() for complete schedules.
/// Requires the LB1 data (Johnson orders, lags, machine pairs) plus the
/// LB2 head/tail matrices.
Time lb2_from_state(const LowerBoundData& lb1_data, const Lb2Data& lb2_data,
                    std::span<const Time> fronts,
                    std::span<const std::uint8_t> scheduled);

/// Same, with caller-provided rm_U/qm_U buffers (no allocation).
Time lb2_from_state(const LowerBoundData& lb1_data, const Lb2Data& lb2_data,
                    std::span<const Time> fronts,
                    std::span<const std::uint8_t> scheduled,
                    Lb2Scratch& scratch);

/// Convenience wrapper replaying the prefix (mirrors lb1_from_prefix).
Time lb2_from_prefix(const Instance& inst, const LowerBoundData& lb1_data,
                     const Lb2Data& lb2_data, std::span<const JobId> prefix);

/// Same but with caller-provided scratch (no allocation).
Time lb2_from_prefix(const Instance& inst, const LowerBoundData& lb1_data,
                     const Lb2Data& lb2_data, std::span<const JobId> prefix,
                     Lb2Scratch& scratch);

}  // namespace fsbb::fsp
