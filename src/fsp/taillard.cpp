#include "fsp/taillard.h"

#include <array>

#include "common/check.h"
#include "common/rng.h"

namespace fsbb::fsp {
namespace {

// Published time seeds, 10 per class, classes in the standard order
// (Taillard 1993, table reproduced on the benchmark web page the paper
// cites). Index base: ta001 is 20x5 instance 1.
struct ClassSeeds {
  int jobs;
  int machines;
  std::array<std::int32_t, 10> seeds;
};

constexpr std::array<ClassSeeds, 12> kClasses{{
    {20, 5,
     {873654221, 379008056, 1866992158, 216771124, 495070989, 402959317,
      1369363414, 2021925980, 573109518, 88325120}},
    {20, 10,
     {587595453, 1401007982, 873136276, 268827376, 1634173168, 691823909,
      73807235, 1273398721, 2065119309, 1672900551}},
    {20, 20,
     {479340445, 268827376, 1958948863, 918272953, 555010963, 2010851491,
      1519833303, 1748670931, 1923497586, 1829909967}},
    {50, 5,
     {1328042058, 200382020, 496319842, 1203030903, 1730708564, 450926852,
      1303135678, 1273398721, 587288402, 248421594}},
    {50, 10,
     {1958948863, 575633267, 655816003, 1977864101, 93805469, 1803345551,
      49612559, 1899802599, 2013025619, 578962478}},
    {50, 20,
     {1539989115, 691823909, 655816003, 1315102446, 1949668355, 1923497586,
      1805594913, 1861070898, 715643788, 464843328}},
    {100, 5,
     {896678084, 1179439976, 1122278347, 416756875, 267829958, 1835213917,
      1328833962, 1418570761, 161033112, 304212574}},
    {100, 10,
     {1539989115, 655816003, 960914243, 1915696806, 2013025619, 1168140026,
      1923497586, 167698528, 1528387973, 993794175}},
    {100, 20,
     {450926852, 1462772409, 1021685265, 83696007, 508154254, 1861070898,
      26482542, 444956424, 2115448041, 118254244}},
    {200, 10,
     {471503978, 1215892992, 135346136, 1602504050, 160037322, 551454346,
      519485142, 383947510, 1968171878, 540872513}},
    {200, 20,
     {2013025619, 475051709, 914834335, 810642687, 1019331795, 2056065863,
      1342855162, 1325809384, 1988803007, 765656702}},
    {500, 20,
     {1368624604, 450181436, 1927888393, 1759567256, 606425239, 19268348,
      1298201670, 2041736264, 379756761, 28837162}},
}};

std::array<TaillardSpec, 120> build_registry() {
  std::array<TaillardSpec, 120> out{};
  int id = 1;
  for (const auto& cls : kClasses) {
    for (const std::int32_t seed : cls.seeds) {
      out[id - 1] = TaillardSpec{id, cls.jobs, cls.machines, seed};
      ++id;
    }
  }
  return out;
}

const std::array<TaillardSpec, 120>& registry() {
  static const std::array<TaillardSpec, 120> reg = build_registry();
  return reg;
}

}  // namespace

std::span<const TaillardSpec> taillard_registry() { return registry(); }

Instance make_taillard_instance(int jobs, int machines, std::int32_t time_seed,
                                std::string name) {
  FSBB_CHECK(jobs >= 1 && machines >= 1);
  Lcg31 rng(time_seed);
  Matrix<Time> pt(static_cast<std::size_t>(jobs),
                  static_cast<std::size_t>(machines));
  // Taillard generates the matrix machine-major: all jobs on machine 1
  // first, then machine 2, ... This ordering is part of the spec; changing
  // it would produce different (non-standard) instances.
  for (int machine = 0; machine < machines; ++machine) {
    for (int job = 0; job < jobs; ++job) {
      pt(job, machine) = rng.unif(1, 99);
    }
  }
  if (name.empty()) {
    name = std::to_string(jobs) + "x" + std::to_string(machines) + "_s" +
           std::to_string(time_seed);
  }
  return Instance(std::move(name), std::move(pt));
}

Instance taillard_instance(int id) {
  FSBB_CHECK_MSG(id >= 1 && id <= 120, "Taillard id must be in [1, 120]");
  const TaillardSpec& spec = registry()[static_cast<std::size_t>(id - 1)];
  std::string name = "ta" + std::string(id < 10 ? "00" : id < 100 ? "0" : "") +
                     std::to_string(id);
  return make_taillard_instance(spec.jobs, spec.machines, spec.time_seed,
                                std::move(name));
}

Instance taillard_class_representative(int jobs, int machines) {
  for (const TaillardSpec& spec : registry()) {
    if (spec.jobs == jobs && spec.machines == machines) {
      return taillard_instance(spec.id);
    }
  }
  FSBB_CHECK_MSG(false, "no published Taillard class " + std::to_string(jobs) +
                            "x" + std::to_string(machines));
  // Unreachable; FSBB_CHECK_MSG throws.
  throw CheckFailure("unreachable");
}

}  // namespace fsbb::fsp
