// NEH constructive heuristic (Nawaz–Enscore–Ham 1983) with Taillard's
// O(n^2 m) acceleration. The engine seeds its initial upper bound with the
// NEH makespan — the "initial seed UB" of the paper's Figure 1 — so pruning
// starts working from the first branching.
#pragma once

#include <span>
#include <vector>

#include "fsp/instance.h"

namespace fsbb::fsp {

/// Result of the NEH construction.
struct NehResult {
  std::vector<JobId> permutation;
  Time makespan = 0;
};

/// Runs NEH: jobs sorted by non-increasing total processing time, then
/// inserted one-by-one at the makespan-minimizing position. Taillard's
/// heads/tails trick evaluates all q+1 insertion slots of a q-job partial
/// sequence in O(q m), for O(n^2 m) total.
NehResult neh(const Instance& inst);

/// Evaluates every insertion position of `job` into `sequence` and returns
/// (best_position, best_makespan). Exposed for tests; O(|sequence| * m).
std::pair<int, Time> best_insertion(const Instance& inst,
                                    std::span<const JobId> sequence,
                                    JobId job);

}  // namespace fsbb::fsp
