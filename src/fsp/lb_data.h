// The six lower-bound data structures of the paper (Table I).
//
//   PTM  n x m            processing times
//   LM   n x p            lags: LM(j, s) = sum of job j's times on machines
//                         strictly between the pair s = (k, l)
//   JM   p x n            Johnson order of the lag-modified 2-machine problem
//                         per pair (stored pair-major; the paper's JM[i][s]
//                         is the transpose — same content, same size)
//   RM   m                min over ALL jobs of the head sum_{u<k} pt(j, u)
//   QM   m                min over ALL jobs of the tail sum_{u>k} pt(j, u)
//   MM   p                the machine couples (k, l), k < l, p = m(m-1)/2
//
// RM/QM are taken over all jobs (a superset of the unscheduled set), which
// keeps them O(m)-sized static tables exactly as Table I accounts them,
// at the price of a marginally weaker — still valid — bound.
#pragma once

#include <cstdint>
#include <span>

#include "common/matrix.h"
#include "fsp/instance.h"

namespace fsbb::fsp {

/// A couple of machines (k, l) with k < l.
struct MachinePair {
  std::int16_t k;
  std::int16_t l;
};

/// Immutable bundle of the six structures, built once per instance.
class LowerBoundData {
 public:
  static LowerBoundData build(const Instance& inst);

  int jobs() const { return jobs_; }
  int machines() const { return machines_; }
  int pairs() const { return static_cast<int>(mm_.size()); }

  Time ptm(int job, int machine) const { return ptm_(job, machine); }
  Time lm(int job, int pair) const { return lm_(job, pair); }
  JobId jm(int pair, int pos) const { return jm_(pair, pos); }
  Time rm(int machine) const { return rm_[static_cast<std::size_t>(machine)]; }
  Time qm(int machine) const { return qm_[static_cast<std::size_t>(machine)]; }
  const MachinePair& mm(int pair) const {
    return mm_[static_cast<std::size_t>(pair)];
  }

  const Matrix<Time>& ptm_matrix() const { return ptm_; }
  const Matrix<Time>& lm_matrix() const { return lm_; }
  const Matrix<JobId>& jm_matrix() const { return jm_; }
  std::span<const Time> rm_span() const { return rm_; }
  std::span<const Time> qm_span() const { return qm_; }
  std::span<const MachinePair> mm_span() const { return mm_; }

  /// Host-side sizes in bytes (for reporting; the GPU placement planner uses
  /// the packed device widths, see gpubb/device_lb_data.h).
  struct StructureSizes {
    std::size_t ptm, lm, jm, rm, qm, mm;
    std::size_t total() const { return ptm + lm + jm + rm + qm + mm; }
  };
  StructureSizes host_sizes() const;

  /// Table I access counts for one LB evaluation with n_remaining jobs left.
  struct AccessCounts {
    std::int64_t ptm, lm, jm, rm, qm, mm;
    std::int64_t total() const { return ptm + lm + jm + rm + qm + mm; }
  };
  AccessCounts accesses_per_eval(int n_remaining) const;

 private:
  LowerBoundData() = default;

  int jobs_ = 0;
  int machines_ = 0;
  Matrix<Time> ptm_;
  Matrix<Time> lm_;
  Matrix<JobId> jm_;
  std::vector<Time> rm_;
  std::vector<Time> qm_;
  std::vector<MachinePair> mm_;
};

}  // namespace fsbb::fsp
