#include "fsp/johnson.h"

#include <algorithm>

#include "common/check.h"

namespace fsbb::fsp {
namespace {

std::vector<JobId> johnson_order_impl(std::span<const Time> a,
                                      std::span<const Time> b) {
  FSBB_CHECK(a.size() == b.size());
  const auto n = a.size();
  std::vector<JobId> first;   // a_j < b_j, ascending a_j
  std::vector<JobId> second;  // a_j >= b_j, descending b_j
  first.reserve(n);
  second.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    (a[j] < b[j] ? first : second).push_back(static_cast<JobId>(j));
  }
  // stable_sort + job-id tiebreak keeps the order deterministic, which the
  // bit-exactness tests between CPU and simulated-GPU bounding rely on.
  std::stable_sort(first.begin(), first.end(), [&](JobId x, JobId y) {
    if (a[x] != a[y]) return a[x] < a[y];
    return x < y;
  });
  std::stable_sort(second.begin(), second.end(), [&](JobId x, JobId y) {
    if (b[x] != b[y]) return b[x] > b[y];
    return x < y;
  });
  first.insert(first.end(), second.begin(), second.end());
  return first;
}

}  // namespace

std::vector<JobId> johnson_order(std::span<const Time> a,
                                 std::span<const Time> b) {
  return johnson_order_impl(a, b);
}

std::vector<JobId> johnson_order_with_lags(std::span<const Time> a,
                                           std::span<const Time> b,
                                           std::span<const Time> lags) {
  FSBB_CHECK(a.size() == b.size() && a.size() == lags.size());
  std::vector<Time> am(a.size());
  std::vector<Time> bm(b.size());
  for (std::size_t j = 0; j < a.size(); ++j) {
    am[j] = a[j] + lags[j];
    bm[j] = lags[j] + b[j];
  }
  return johnson_order_impl(am, bm);
}

Time two_machine_makespan(std::span<const JobId> order,
                          std::span<const Time> a, std::span<const Time> b) {
  Time t1 = 0;
  Time t2 = 0;
  for (const JobId j : order) {
    t1 += a[j];
    t2 = std::max(t2, t1) + b[j];
  }
  return t2;
}

Time two_machine_lag_makespan(std::span<const JobId> order,
                              std::span<const Time> a,
                              std::span<const Time> b,
                              std::span<const Time> lags, Time start1,
                              Time start2) {
  Time t1 = start1;
  Time t2 = start2;
  for (const JobId j : order) {
    t1 += a[j];
    t2 = std::max(t2, t1 + lags[j]) + b[j];
  }
  return t2;
}

}  // namespace fsbb::fsp
