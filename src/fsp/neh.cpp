#include "fsp/neh.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/matrix.h"
#include "fsp/makespan.h"

namespace fsbb::fsp {
namespace {

// Taillard acceleration scaffolding for one insertion round:
//   e(i, k)  completion time of sequence prefix [0, i) on machine k
//   q(i, k)  "tail": duration between the start of sequence suffix [i, q)
//            on machine k and the end of the schedule
//   f(i, k)  completion time of the candidate job inserted at slot i
// Makespan with the candidate at slot i = max_k f(i, k) + q(i, k).
struct InsertionTables {
  Matrix<Time> e, q, f;
};

InsertionTables build_tables(const Instance& inst,
                             std::span<const JobId> seq, JobId job) {
  const auto len = seq.size();
  const auto m = static_cast<std::size_t>(inst.machines());
  InsertionTables t{
      Matrix<Time>(len + 1, m), Matrix<Time>(len + 1, m), Matrix<Time>(len + 1, m)};

  for (std::size_t i = 0; i <= len; ++i) {
    for (std::size_t k = 0; k < m; ++k) {
      // e: forward completion times of the prefix of length i.
      if (i == 0) {
        t.e(i, k) = 0;
      } else {
        const Time up = t.e(i - 1, k);
        const Time left = k == 0 ? Time{0} : t.e(i, k - 1);
        t.e(i, k) = std::max(up, left) +
                    inst.pt(seq[i - 1], static_cast<int>(k));
      }
    }
  }
  for (std::size_t ii = len + 1; ii-- > 0;) {
    for (std::size_t kk = m; kk-- > 0;) {
      // q: backward tails of the suffix starting at ii.
      if (ii == len) {
        t.q(ii, kk) = 0;
      } else {
        const Time down = t.q(ii + 1, kk);
        const Time right = kk == m - 1 ? Time{0} : t.q(ii, kk + 1);
        t.q(ii, kk) = std::max(down, right) +
                      inst.pt(seq[ii], static_cast<int>(kk));
      }
    }
  }
  for (std::size_t i = 0; i <= len; ++i) {
    for (std::size_t k = 0; k < m; ++k) {
      // f: candidate job completion when inserted at slot i.
      const Time up = t.e(i, k);
      const Time left = k == 0 ? Time{0} : t.f(i, k - 1);
      t.f(i, k) = std::max(up, left) + inst.pt(job, static_cast<int>(k));
    }
  }
  return t;
}

}  // namespace

std::pair<int, Time> best_insertion(const Instance& inst,
                                    std::span<const JobId> sequence,
                                    JobId job) {
  const InsertionTables t = build_tables(inst, sequence, job);
  const auto len = sequence.size();
  const auto m = static_cast<std::size_t>(inst.machines());

  int best_pos = 0;
  Time best_ms = std::numeric_limits<Time>::max();
  for (std::size_t i = 0; i <= len; ++i) {
    Time ms = 0;
    for (std::size_t k = 0; k < m; ++k) {
      ms = std::max(ms, t.f(i, k) + t.q(i, k));
    }
    if (ms < best_ms) {  // strict < keeps the earliest best slot (NEH tie rule)
      best_ms = ms;
      best_pos = static_cast<int>(i);
    }
  }
  return {best_pos, best_ms};
}

NehResult neh(const Instance& inst) {
  const int n = inst.jobs();
  std::vector<JobId> by_total = identity_permutation(n);
  std::vector<Time> totals(static_cast<std::size_t>(n), 0);
  for (int j = 0; j < n; ++j) {
    for (int k = 0; k < inst.machines(); ++k) {
      totals[static_cast<std::size_t>(j)] += inst.pt(j, k);
    }
  }
  std::stable_sort(by_total.begin(), by_total.end(), [&](JobId x, JobId y) {
    if (totals[static_cast<std::size_t>(x)] !=
        totals[static_cast<std::size_t>(y)]) {
      return totals[static_cast<std::size_t>(x)] >
             totals[static_cast<std::size_t>(y)];
    }
    return x < y;
  });

  std::vector<JobId> seq;
  seq.reserve(static_cast<std::size_t>(n));
  Time ms = 0;
  for (const JobId job : by_total) {
    const auto [pos, best_ms] = best_insertion(inst, seq, job);
    seq.insert(seq.begin() + pos, job);
    ms = best_ms;
  }
  FSBB_CHECK(is_valid_permutation(inst, seq));
  FSBB_CHECK(ms == makespan(inst, seq));
  return NehResult{std::move(seq), ms};
}

}  // namespace fsbb::fsp
