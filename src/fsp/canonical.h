// Canonical instance form — the cache key of the serving layer.
//
// Two submitted instances can be "the same problem" without being equal
// byte-for-byte. The permutation flow shop has exactly two cheap
// symmetries the result cache may quotient by without ever returning a
// wrong answer:
//
//   * job relabeling: permuting the rows of the processing-time matrix
//     renames the jobs; every schedule of one instance maps to a schedule
//     of the other with the same makespan by applying the same renaming.
//   * machine reversal: reversing the machine axis (pt'(j, k) =
//     pt(j, m-1-k)) yields the classical "reverse problem"; a schedule of
//     one maps to the other by reversing the processing order, again with
//     the same makespan.
//
// Arbitrary machine *permutations* are NOT an equivalence — jobs traverse
// machines in order, so swapping two inner machines changes the optimum —
// and the canonical form deliberately stays sensitive to them (pinned by
// test). CanonicalForm computes the quotient representative: for both
// machine orientations, sort the job rows lexicographically, then keep the
// lexicographically smaller of the two matrices. The digest hashes that
// representative, so any two instances equal up to the symmetries above
// collide on purpose, and the stored job/orientation maps translate
// schedules in and out of canonical space.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fsp/instance.h"

namespace fsbb::fsp {

/// The canonical representative of one instance, with the maps needed to
/// translate schedules between the instance's labels and canonical space.
/// Construction is O(n m log n); the object is immutable afterwards.
class CanonicalForm {
 public:
  static CanonicalForm of(const Instance& inst);

  int jobs() const { return jobs_; }
  int machines() const { return machines_; }

  /// True when the canonical representative uses the reversed machine
  /// axis of the instance this form was computed from.
  bool reversed() const { return reversed_; }

  /// 128-bit content digest of the canonical matrix as 32 hex chars.
  /// Equal for instances that differ only by job relabeling, machine
  /// reversal, or instance name; two independent 64-bit hashes keep the
  /// accidental-collision probability negligible (and the result cache
  /// re-verifies every hit against the actual matrix anyway).
  const std::string& digest() const { return digest_; }

  /// The first 64 bits of the digest, for hash tables and logs.
  std::uint64_t hash64() const { return hash_; }

  /// Translates a schedule of the source instance into canonical space:
  /// the returned permutation has the same makespan on the canonical
  /// matrix as `perm` has on the source instance.
  std::vector<JobId> to_canonical(std::span<const JobId> perm) const;

  /// Inverse of to_canonical: lifts a canonical-space schedule back onto
  /// the instance this form was computed from, preserving the makespan.
  std::vector<JobId> from_canonical(std::span<const JobId> perm) const;

 private:
  CanonicalForm() = default;

  int jobs_ = 0;
  int machines_ = 0;
  bool reversed_ = false;
  /// canonical row index -> source job id (and its inverse).
  std::vector<JobId> job_of_row_;
  std::vector<JobId> row_of_job_;
  std::uint64_t hash_ = 0;
  std::string digest_;
};

}  // namespace fsbb::fsp
