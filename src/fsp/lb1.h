// LB1 — the Lageweg–Lenstra–Rinnooy Kan two-machine lower bound (paper §II-C
// and Fig. 2), generalized over a data provider so the exact same arithmetic
// runs on the CPU (plain arrays) and inside the simulated GPU kernel
// (access-counting device buffers). Bit-exactness between the two is a
// tested invariant.
//
// Provider concept P:
//   int    jobs()  / machines() / pairs()
//   JobId  jm(pair, pos)      Johnson order entry
//   Time   lm(job, pair)      lag
//   Time   ptm(job, machine)  processing time
//   Time   rm(machine)        static head minimum
//   Time   qm(machine)        static tail minimum
//   int    mm_k(pair) / mm_l(pair)
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "fsp/instance.h"
#include "fsp/lb_data.h"

namespace fsbb::fsp {

/// Core LB1 sweep. `fronts` (size m) are the machine completion times of the
/// scheduled prefix; `scheduled[j]` != 0 marks scheduled jobs. Valid for any
/// prefix, including complete schedules where it returns the exact makespan.
template <typename P>
Time lb1_evaluate(const P& p, std::span<const Time> fronts,
                  std::span<const std::uint8_t> scheduled) {
  Time lb = 0;
  const int n = p.jobs();
  const int n_pairs = p.pairs();
  for (int s = 0; s < n_pairs; ++s) {
    const int k = p.mm_k(s);
    const int l = p.mm_l(s);
    // Machine k is held by the prefix until fronts[k]; no unscheduled job
    // can arrive at k before the head minimum rm(k). Both are valid lower
    // bounds on the start, so their max is too (same for l).
    Time t1 = std::max(fronts[static_cast<std::size_t>(k)], p.rm(k));
    Time t2 = std::max(fronts[static_cast<std::size_t>(l)], p.rm(l));
    for (int i = 0; i < n; ++i) {
      const JobId job = p.jm(s, i);
      if (!scheduled[static_cast<std::size_t>(job)]) {
        t1 += p.ptm(job, k);
        const Time arrival = t1 + p.lm(job, s);
        t2 = (t2 > arrival ? t2 : arrival) + p.ptm(job, l);
      }
    }
    t2 += p.qm(l);
    lb = std::max(lb, t2);
  }
  return lb;
}

/// Plain-array provider over a host LowerBoundData.
class HostLb1Provider {
 public:
  explicit HostLb1Provider(const LowerBoundData& d) : d_(&d) {}

  int jobs() const { return d_->jobs(); }
  int machines() const { return d_->machines(); }
  int pairs() const { return d_->pairs(); }
  JobId jm(int pair, int pos) const { return d_->jm(pair, pos); }
  Time lm(int job, int pair) const { return d_->lm(job, pair); }
  Time ptm(int job, int machine) const { return d_->ptm(job, machine); }
  Time rm(int machine) const { return d_->rm(machine); }
  Time qm(int machine) const { return d_->qm(machine); }
  int mm_k(int pair) const { return d_->mm(pair).k; }
  int mm_l(int pair) const { return d_->mm(pair).l; }

 private:
  const LowerBoundData* d_;
};

/// Reusable scratch (fronts + scheduled mask) so hot loops do not allocate.
class Lb1Scratch {
 public:
  Lb1Scratch(int jobs, int machines)
      : fronts_(static_cast<std::size_t>(machines)),
        scheduled_(static_cast<std::size_t>(jobs)) {}

  std::span<Time> fronts() { return fronts_; }
  std::span<std::uint8_t> scheduled() { return scheduled_; }

 private:
  std::vector<Time> fronts_;
  std::vector<std::uint8_t> scheduled_;
};

/// Incremental sibling-batch LB1 (the hot path of every CPU backend).
///
/// A branch-and-bound node's children share the parent's scheduled prefix,
/// so everything the per-node replay recomputes — machine fronts, the
/// scheduled mask, and the scheduled entries the Johnson sweep has to skip
/// — can be computed once per parent and reused for every sibling:
///
///   set_parent(prefix)   replays the prefix once (O(depth m)) and compacts
///                        each machine couple's Johnson order down to the
///                        unscheduled jobs (O(pairs n));
///   bound_child(job)     extends a copy of the parent fronts by one job
///                        (O(m)) and sweeps only the remaining jobs
///                        (O(pairs (n - depth)) instead of O(pairs n)).
///
/// The sweep visits the surviving jobs in the same Johnson order and does
/// the same arithmetic as lb1_evaluate on the child's full state, so the
/// bounds are bit-identical to lb1_from_prefix — a tested invariant.
///
/// The hot sweep is vectorized ACROSS machine couples: the per-couple
/// Johnson recurrence is sequential in the position axis (t1 accumulates,
/// t2 chains through a max), but at any fixed position every couple
/// updates independently. set_parent therefore lays the compacted rows
/// out position-major ([position][couple], couple index contiguous) with
/// the ptm/lag table entries pre-gathered, and bound_child runs a
/// branchless position-outer/couple-inner loop over parallel t1[]/t2[]
/// accumulators — the "skip the child's job" branch becomes a 0/1
/// multiplier, so the inner loop auto-vectorizes. bound_child_reference
/// keeps the scalar couple-outer sweep; the two are bit-identical (the
/// keep-mask form performs exactly the same adds and maxes per couple, in
/// the same position order) — a tested invariant.
class Lb1BoundContext {
 public:
  Lb1BoundContext(const Instance& inst, const LowerBoundData& data);

  /// Binds the parent whose children are about to be bounded.
  void set_parent(std::span<const JobId> prefix);

  /// LB1 of the child scheduling `job` next. `job` must be one of the
  /// parent's free jobs. Valid until the next set_parent.
  Time bound_child(JobId job);

  /// The pre-vectorization scalar sweep (couple-outer, branchy skip),
  /// kept as the equality oracle for bound_child.
  Time bound_child_reference(JobId job);

  /// Machine fronts of the bound parent (for the property tests).
  std::span<const Time> parent_fronts() const { return parent_fronts_; }
  /// Scheduled mask of the bound parent.
  std::span<const std::uint8_t> scheduled() const { return scheduled_; }
  /// Unscheduled jobs of the bound parent.
  int free_count() const { return free_count_; }

 private:
  void extend_child_fronts(JobId job);

  const Instance* inst_;
  const LowerBoundData* data_;
  std::vector<Time> parent_fronts_;
  std::vector<Time> child_fronts_;
  std::vector<std::uint8_t> scheduled_;
  /// pairs x free_count (stride free_count_): each machine couple's Johnson
  /// order restricted to the parent's unscheduled jobs (the scalar
  /// reference sweep's layout).
  std::vector<JobId> free_seq_;
  int free_count_ = 0;

  // Couple-contiguous vectorization state. Static per instance:
  std::vector<int> mk_, ml_;        ///< machine ids per couple
  std::vector<Time> rmk_, rml_, qml_;
  // Rebuilt per parent, position-major with stride pairs: entry
  // [i * pairs + s] describes the job at compacted Johnson position i of
  // couple s (its id, widened ptm on both machines, and lag).
  std::vector<Time> pack_job_, pack_p1_, pack_p2_, pack_lag_;
  // Per-child parallel accumulators (one lane per couple).
  std::vector<Time> t1_, t2_;
};

/// Convenience entry point: LB1 of the node whose scheduled prefix is
/// `prefix` (replays the prefix to obtain fronts). O(|prefix| m + m^2 n).
Time lb1_from_prefix(const Instance& inst, const LowerBoundData& data,
                     std::span<const JobId> prefix);

/// Same but with caller-provided scratch (no allocation).
Time lb1_from_prefix(const Instance& inst, const LowerBoundData& data,
                     std::span<const JobId> prefix, Lb1Scratch& scratch);

/// LB1 given already-maintained fronts and scheduled mask (the fast path the
/// branch-and-bound engine uses with incrementally extended fronts).
Time lb1_from_state(const LowerBoundData& data, std::span<const Time> fronts,
                    std::span<const std::uint8_t> scheduled);

}  // namespace fsbb::fsp
