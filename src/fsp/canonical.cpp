#include "fsp/canonical.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace fsbb::fsp {

namespace {

/// One machine orientation of the instance: the job rows (reversed or
/// not), plus the lexicographic row order that sorts them.
struct Orientation {
  std::vector<std::vector<Time>> rows;  // rows[j] = pt(j, machines in order)
  std::vector<JobId> order;             // canonical row i = job order[i]
};

Orientation orient(const Instance& inst, bool reversed) {
  const int n = inst.jobs();
  const int m = inst.machines();
  Orientation o;
  o.rows.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    std::vector<Time>& row = o.rows[static_cast<std::size_t>(j)];
    row.resize(static_cast<std::size_t>(m));
    for (int k = 0; k < m; ++k) {
      row[static_cast<std::size_t>(k)] = inst.pt(j, reversed ? m - 1 - k : k);
    }
  }
  o.order.resize(static_cast<std::size_t>(n));
  std::iota(o.order.begin(), o.order.end(), JobId{0});
  // Ties broken by job id for determinism; jobs with identical rows are
  // genuinely interchangeable, so which one sorts first never matters.
  std::sort(o.order.begin(), o.order.end(), [&o](JobId a, JobId b) {
    const auto& ra = o.rows[static_cast<std::size_t>(a)];
    const auto& rb = o.rows[static_cast<std::size_t>(b)];
    if (ra != rb) return ra < rb;
    return a < b;
  });
  return o;
}

/// Lexicographic comparison of the two sorted matrices, row by row.
bool sorted_less(const Orientation& a, const Orientation& b) {
  for (std::size_t i = 0; i < a.order.size(); ++i) {
    const auto& ra = a.rows[static_cast<std::size_t>(a.order[i])];
    const auto& rb = b.rows[static_cast<std::size_t>(b.order[i])];
    if (ra != rb) return ra < rb;
  }
  return false;
}

/// FNV-1a over the canonical matrix bytes, parameterized by the offset
/// basis so two independent 64-bit hashes make up the 128-bit digest.
std::uint64_t fnv1a(const Orientation& o, int machines, std::uint64_t seed) {
  constexpr std::uint64_t kPrime = 0x00000100000001b3ULL;
  std::uint64_t h = seed;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffU;
      h *= kPrime;
    }
  };
  mix(o.order.size());
  mix(static_cast<std::uint64_t>(machines));
  for (const JobId row : o.order) {
    for (const Time t : o.rows[static_cast<std::size_t>(row)]) {
      mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(t)));
    }
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xfU];
    v >>= 4;
  }
  return out;
}

}  // namespace

CanonicalForm CanonicalForm::of(const Instance& inst) {
  const Orientation fwd = orient(inst, /*reversed=*/false);
  const Orientation rev = orient(inst, /*reversed=*/true);
  const bool use_rev = sorted_less(rev, fwd);
  const Orientation& chosen = use_rev ? rev : fwd;

  CanonicalForm form;
  form.jobs_ = inst.jobs();
  form.machines_ = inst.machines();
  form.reversed_ = use_rev;
  form.job_of_row_ = chosen.order;
  form.row_of_job_.resize(chosen.order.size());
  for (std::size_t i = 0; i < chosen.order.size(); ++i) {
    form.row_of_job_[static_cast<std::size_t>(chosen.order[i])] =
        static_cast<JobId>(i);
  }
  form.hash_ = fnv1a(chosen, form.machines_, 0xcbf29ce484222325ULL);
  const std::uint64_t hash2 = fnv1a(chosen, form.machines_,
                                    0x9e3779b97f4a7c15ULL);
  form.digest_ = hex64(form.hash_) + hex64(hash2);
  return form;
}

std::vector<JobId> CanonicalForm::to_canonical(
    std::span<const JobId> perm) const {
  FSBB_CHECK_MSG(perm.size() == job_of_row_.size(),
                 "permutation length does not match the instance");
  std::vector<JobId> out(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    // Machine reversal maps a schedule to its reverse problem by
    // reversing the processing order (the classical PFSP symmetry).
    const std::size_t at = reversed_ ? perm.size() - 1 - i : i;
    out[at] = row_of_job_[static_cast<std::size_t>(perm[i])];
  }
  return out;
}

std::vector<JobId> CanonicalForm::from_canonical(
    std::span<const JobId> perm) const {
  FSBB_CHECK_MSG(perm.size() == job_of_row_.size(),
                 "permutation length does not match the instance");
  std::vector<JobId> out(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const std::size_t at = reversed_ ? perm.size() - 1 - i : i;
    out[at] = job_of_row_[static_cast<std::size_t>(perm[i])];
  }
  return out;
}

}  // namespace fsbb::fsp
