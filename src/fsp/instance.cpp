#include "fsp/instance.h"

#include <numeric>

#include "common/check.h"

namespace fsbb::fsp {

Instance::Instance(std::string name, Matrix<Time> pt)
    : name_(std::move(name)), pt_(std::move(pt)) {
  FSBB_CHECK_MSG(pt_.rows() >= 1, "instance needs at least one job");
  FSBB_CHECK_MSG(pt_.cols() >= 1, "instance needs at least one machine");
  for (const Time t : pt_.flat()) {
    FSBB_CHECK_MSG(t >= 0, "processing times must be non-negative");
  }
  total_work_ = std::accumulate(pt_.flat().begin(), pt_.flat().end(), Time{0});
}

}  // namespace fsbb::fsp
