// Sharded work-stealing pools — the scalable alternative to the single
// mutex-guarded Pool of the §V multicore baseline.
//
// Each worker owns one deque-backed local pool: it pushes and pops at the
// back (LIFO — dive toward leaves, hot caches), while thieves steal from
// the front (FIFO — the oldest nodes sit closest to the root and carry the
// biggest subtrees, so one steal moves a large chunk of work). This is the
// per-worker-pool design Gmys (2020) and Chakroun & Melab (2012) show is
// what lets exact flow-shop B&B scale past the shared-pool ceiling.
//
// The deque is generic over its node type AND its storage. The steal
// engine instantiates it over 12-byte NodeRef handles with the default
// unbounded heap storage; the simulated GPU instantiates the same shard
// structure over bounded rings living in externally owned fixed-stride
// memory (a DeviceBuffer span) — one ShardedPool abstraction spanning the
// host workers and the per-SM device-resident pools. Fine-grained
// per-shard locking is retained (the owner's lock is uncontended in the
// common case, and the architecture — local LIFO, steal-oldest,
// round-robin victims — is what buys the scaling); with handle entries
// the critical sections are a few-word move, which is the precondition
// ROADMAP names for a Chase–Lev array upgrade if profiles ever show the
// lock.
//
// drain() is deterministic given the deque contents (shard 0..W-1, each
// front to back), so the frozen-pool protocol keeps working on top.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "core/node_arena.h"
#include "core/steal_stats.h"
#include "core/subproblem.h"

namespace fsbb::core {

/// Unbounded heap-backed deque storage — the host engines' default. Push
/// can never fail; capacity() is "infinite".
template <typename Node>
class HeapDequeStorage {
 public:
  bool full() const { return false; }
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return static_cast<std::size_t>(-1); }
  bool empty() const { return items_.empty(); }

  bool push_back(Node&& n) {
    items_.push_back(std::move(n));
    return true;
  }
  Node pop_back() {
    Node n = std::move(items_.back());
    items_.pop_back();
    return n;
  }
  Node pop_front() {
    Node n = std::move(items_.front());
    items_.pop_front();
    return n;
  }
  /// Front-to-back element i (drain order).
  Node& at(std::size_t i) { return items_[i]; }
  void clear() { items_.clear(); }

 private:
  std::deque<Node> items_;
};

/// Bounded ring deque over externally owned fixed-stride storage: an arena
/// chunk, a device buffer span — any contiguous slab of Node slots whose
/// lifetime outlives the ring. The ring never allocates; push_back fails
/// (returns false) when the slab is full, which is the signal the owner
/// uses to spill to a sibling shard or back to the host.
template <typename Node>
class FixedRingStorage {
 public:
  FixedRingStorage() = default;
  explicit FixedRingStorage(std::span<Node> slots) : slots_(slots) {}

  bool full() const { return count_ == slots_.size(); }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return slots_.size(); }
  bool empty() const { return count_ == 0; }

  bool push_back(Node&& n) {
    if (count_ == slots_.size()) return false;
    slots_[index(count_)] = std::move(n);
    ++count_;
    return true;
  }
  Node pop_back() {
    FSBB_ASSERT(count_ > 0);
    --count_;
    return std::move(slots_[index(count_)]);
  }
  Node pop_front() {
    FSBB_ASSERT(count_ > 0);
    Node n = std::move(slots_[head_]);
    head_ = head_ + 1 == slots_.size() ? 0 : head_ + 1;
    --count_;
    return n;
  }
  Node& at(std::size_t i) {
    FSBB_ASSERT(i < count_);
    return slots_[index(i)];
  }
  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  std::size_t index(std::size_t i) const {
    const std::size_t raw = head_ + i;
    return raw >= slots_.size() ? raw - slots_.size() : raw;
  }

  std::span<Node> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// One worker's local pool. Owner operations (push/pop) hit the back;
/// steals take the oldest nodes from the front. All operations are
/// thread-safe; the owner's lock is uncontended unless a thief is present.
template <typename Node, typename Storage = HeapDequeStorage<Node>>
class WorkStealingDequeT {
 public:
  WorkStealingDequeT() = default;
  /// Shard over externally owned storage (bounded rings and the like).
  explicit WorkStealingDequeT(Storage storage) : items_(std::move(storage)) {}

  /// Owner: push a node on the back (LIFO hot end). Returns false when a
  /// bounded storage is full (unbounded storages always succeed).
  bool push(Node&& sp) {
    const LockGuard lock(mu_);
    return items_.push_back(std::move(sp));
  }

  /// Owner: pop the most recently pushed node; nullopt when empty.
  std::optional<Node> pop() {
    const LockGuard lock(mu_);
    if (items_.empty()) return std::nullopt;
    return items_.pop_back();
  }

  /// Thief: move up to `max_nodes` of the *oldest* nodes into `out`.
  /// Returns how many were taken (0 when the deque is empty).
  std::size_t steal(std::vector<Node>& out, std::size_t max_nodes) {
    const LockGuard lock(mu_);
    std::size_t taken = 0;
    while (taken < max_nodes && !items_.empty()) {
      out.push_back(items_.pop_front());
      ++taken;
    }
    return taken;
  }

  std::size_t size() const {
    const LockGuard lock(mu_);
    return items_.size();
  }
  bool empty() const { return size() == 0; }
  /// Slots this shard can hold (bounded storages; "infinite" otherwise).
  std::size_t capacity() const {
    const LockGuard lock(mu_);
    return items_.capacity();
  }

  /// Removes every node front-to-back (deterministic given the contents).
  std::vector<Node> drain() {
    const LockGuard lock(mu_);
    std::vector<Node> out;
    out.reserve(items_.size());
    for (std::size_t i = 0; i < items_.size(); ++i) {
      out.push_back(std::move(items_.at(i)));
    }
    items_.clear();
    return out;
  }

 private:
  mutable Mutex mu_;
  Storage items_ FSBB_GUARDED_BY(mu_);
};

/// A fixed set of per-worker deques plus the cross-shard operations the
/// steal engine, the frozen-pool protocol and the device-resident pools
/// need. Shard addresses are stable for the pool's lifetime.
template <typename Node, typename Storage = HeapDequeStorage<Node>>
class ShardedPoolT {
 public:
  using Deque = WorkStealingDequeT<Node, Storage>;

  /// `shards` default-constructed shards (heap storage: the host form).
  explicit ShardedPoolT(std::size_t shards) {
    FSBB_CHECK_MSG(shards >= 1, "sharded pool needs at least one shard");
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Deque>());
    }
  }

  /// One shard per storage, each living over externally owned memory (an
  /// arena chunk, a device-buffer span). The pool does not own the slabs.
  explicit ShardedPoolT(std::vector<Storage> storages) {
    FSBB_CHECK_MSG(!storages.empty(), "sharded pool needs at least one shard");
    shards_.reserve(storages.size());
    for (Storage& s : storages) {
      shards_.push_back(std::make_unique<Deque>(std::move(s)));
    }
  }

  std::size_t shards() const { return shards_.size(); }
  Deque& shard(std::size_t i) { return *shards_[i]; }
  const Deque& shard(std::size_t i) const { return *shards_[i]; }

  /// Round-robin an initial node list across the shards (node i goes to
  /// shard i % W) so every worker starts with a slice of the frozen pool.
  /// On bounded storages a full home shard spills to the next shard with
  /// room; a completely full pool is an error, never a silent drop.
  void distribute(std::vector<Node> nodes) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      bool placed = false;
      for (std::size_t probe = 0; probe < shards_.size() && !placed; ++probe) {
        placed = shards_[(i + probe) % shards_.size()]->push(
            std::move(nodes[i]));
      }
      FSBB_CHECK_MSG(placed, "sharded pool is full; node not distributable");
    }
  }

  std::size_t size() const {  ///< sum over shards (racy under concurrency)
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard->size();
    return total;
  }
  bool empty() const { return size() == 0; }

  /// Drains shard 0..W-1, each front-to-back — deterministic given the
  /// per-shard contents, like Pool::drain().
  std::vector<Node> drain() {
    std::vector<Node> out;
    for (const auto& shard : shards_) {
      std::vector<Node> part = shard->drain();
      for (Node& sp : part) out.push_back(std::move(sp));
    }
    return out;
  }

 private:
  std::vector<std::unique_ptr<Deque>> shards_;
};

/// Value-typed instantiations: the protocol/test-facing form.
using WorkStealingDeque = WorkStealingDequeT<Subproblem>;
using ShardedPool = ShardedPoolT<Subproblem>;

}  // namespace fsbb::core
