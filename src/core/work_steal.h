// Sharded work-stealing pools — the scalable alternative to the single
// mutex-guarded Pool of the §V multicore baseline.
//
// Each worker owns one deque-backed local pool: it pushes and pops at the
// back (LIFO — dive toward leaves, hot caches), while thieves steal from
// the front (FIFO — the oldest nodes sit closest to the root and carry the
// biggest subtrees, so one steal moves a large chunk of work). This is the
// per-worker-pool design Gmys (2020) and Chakroun & Melab (2012) show is
// what lets exact flow-shop B&B scale past the shared-pool ceiling.
//
// Subproblems own heap memory (the permutation vector), so the deques use
// fine-grained per-shard locking rather than a Chase–Lev array: the owner's
// lock is uncontended in the common case and a steal only touches one
// victim. The architecture (local LIFO, steal-oldest, round-robin victims)
// is what buys the scaling, not the lock elision.
//
// drain() is deterministic given the deque contents (shard 0..W-1, each
// front to back), so the frozen-pool protocol keeps working on top.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/steal_stats.h"
#include "core/subproblem.h"

namespace fsbb::core {

/// One worker's local pool. Owner operations (push/pop) hit the back;
/// steals take the oldest nodes from the front. All operations are
/// thread-safe; the owner's lock is uncontended unless a thief is present.
class WorkStealingDeque {
 public:
  /// Owner: push a node on the back (LIFO hot end).
  void push(Subproblem&& sp);

  /// Owner: pop the most recently pushed node; nullopt when empty.
  std::optional<Subproblem> pop();

  /// Thief: move up to `max_nodes` of the *oldest* nodes into `out`.
  /// Returns how many were taken (0 when the deque is empty).
  std::size_t steal(std::vector<Subproblem>& out, std::size_t max_nodes);

  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// Removes every node front-to-back (deterministic given the contents).
  std::vector<Subproblem> drain();

 private:
  mutable std::mutex mu_;
  std::deque<Subproblem> items_;
};

/// A fixed set of per-worker deques plus the cross-shard operations the
/// steal engine and the frozen-pool protocol need. Shard addresses are
/// stable for the pool's lifetime.
class ShardedPool {
 public:
  explicit ShardedPool(std::size_t shards);

  std::size_t shards() const { return shards_.size(); }
  WorkStealingDeque& shard(std::size_t i) { return *shards_[i]; }
  const WorkStealingDeque& shard(std::size_t i) const { return *shards_[i]; }

  /// Round-robin an initial node list across the shards (node i goes to
  /// shard i % W) so every worker starts with a slice of the frozen pool.
  void distribute(std::vector<Subproblem> nodes);

  std::size_t size() const;  ///< sum over shards (racy under concurrency)
  bool empty() const { return size() == 0; }

  /// Drains shard 0..W-1, each front-to-back — deterministic given the
  /// per-shard contents, like Pool::drain().
  std::vector<Subproblem> drain();

 private:
  std::vector<std::unique_ptr<WorkStealingDeque>> shards_;
};

}  // namespace fsbb::core
