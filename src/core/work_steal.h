// Sharded work-stealing pools — the scalable alternative to the single
// mutex-guarded Pool of the §V multicore baseline.
//
// Each worker owns one deque-backed local pool: it pushes and pops at the
// back (LIFO — dive toward leaves, hot caches), while thieves steal from
// the front (FIFO — the oldest nodes sit closest to the root and carry the
// biggest subtrees, so one steal moves a large chunk of work). This is the
// per-worker-pool design Gmys (2020) and Chakroun & Melab (2012) show is
// what lets exact flow-shop B&B scale past the shared-pool ceiling.
//
// The deque is generic over its node type AND its storage. The steal
// engine instantiates it over 12-byte NodeRef handles — with the default
// unbounded heap storage behind a per-shard mutex, or (selectable via
// MtOptions::deque / --deque chase-lev) the lock-free Chase–Lev circular
// array specialized below; the simulated GPU instantiates the same shard
// structure over bounded rings living in externally owned fixed-stride
// memory (a DeviceBuffer span) — one ShardedPool abstraction spanning the
// host workers and the per-SM device-resident pools. The mutexed form's
// critical sections are a few-word move (handle entries), which is what
// made the Chase–Lev upgrade a drop-in: same push/pop/steal/drain surface,
// different synchronization.
//
// drain() is deterministic given the deque contents (shard 0..W-1, each
// front to back), so the frozen-pool protocol keeps working on top.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "core/node_arena.h"
#include "core/steal_stats.h"
#include "core/subproblem.h"

namespace fsbb::core {

/// Unbounded heap-backed deque storage — the host engines' default. Push
/// can never fail; capacity() is "infinite".
template <typename Node>
class HeapDequeStorage {
 public:
  bool full() const { return false; }
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return static_cast<std::size_t>(-1); }
  bool empty() const { return items_.empty(); }

  bool push_back(Node&& n) {
    items_.push_back(std::move(n));
    return true;
  }
  Node pop_back() {
    Node n = std::move(items_.back());
    items_.pop_back();
    return n;
  }
  Node pop_front() {
    Node n = std::move(items_.front());
    items_.pop_front();
    return n;
  }
  /// Front-to-back element i (drain order).
  Node& at(std::size_t i) { return items_[i]; }
  void clear() { items_.clear(); }

 private:
  std::deque<Node> items_;
};

/// Bounded ring deque over externally owned fixed-stride storage: an arena
/// chunk, a device buffer span — any contiguous slab of Node slots whose
/// lifetime outlives the ring. The ring never allocates; push_back fails
/// (returns false) when the slab is full, which is the signal the owner
/// uses to spill to a sibling shard or back to the host.
template <typename Node>
class FixedRingStorage {
 public:
  FixedRingStorage() = default;
  explicit FixedRingStorage(std::span<Node> slots) : slots_(slots) {}

  bool full() const { return count_ == slots_.size(); }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return slots_.size(); }
  bool empty() const { return count_ == 0; }

  bool push_back(Node&& n) {
    if (count_ == slots_.size()) return false;
    slots_[index(count_)] = std::move(n);
    ++count_;
    return true;
  }
  Node pop_back() {
    FSBB_ASSERT(count_ > 0);
    --count_;
    return std::move(slots_[index(count_)]);
  }
  Node pop_front() {
    FSBB_ASSERT(count_ > 0);
    Node n = std::move(slots_[head_]);
    head_ = head_ + 1 == slots_.size() ? 0 : head_ + 1;
    --count_;
    return n;
  }
  Node& at(std::size_t i) {
    FSBB_ASSERT(i < count_);
    return slots_[index(i)];
  }
  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  std::size_t index(std::size_t i) const {
    const std::size_t raw = head_ + i;
    return raw >= slots_.size() ? raw - slots_.size() : raw;
  }

  std::span<Node> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Storage tag selecting the lock-free Chase–Lev specialization of
/// WorkStealingDequeT below. Unlike HeapDequeStorage/FixedRingStorage this
/// is not a container — the Chase–Lev algorithm owns its circular array
/// and its synchronization — but it rides the same Storage slot so
/// ShardedPoolT composes over it unchanged.
template <typename Node>
class ChaseLevStorage {};

/// One worker's local pool. Owner operations (push/pop) hit the back;
/// steals take the oldest nodes from the front. All operations are
/// thread-safe; the owner's lock is uncontended unless a thief is present.
template <typename Node, typename Storage = HeapDequeStorage<Node>>
class WorkStealingDequeT {
 public:
  WorkStealingDequeT() = default;
  /// Shard over externally owned storage (bounded rings and the like).
  explicit WorkStealingDequeT(Storage storage) : items_(std::move(storage)) {}

  /// Owner: push a node on the back (LIFO hot end). Returns false when a
  /// bounded storage is full (unbounded storages always succeed).
  bool push(Node&& sp) {
    const LockGuard lock(mu_);
    return items_.push_back(std::move(sp));
  }

  /// Owner: pop the most recently pushed node; nullopt when empty.
  std::optional<Node> pop() {
    const LockGuard lock(mu_);
    if (items_.empty()) return std::nullopt;
    return items_.pop_back();
  }

  /// Thief: move up to `max_nodes` of the *oldest* nodes into `out`.
  /// Returns how many were taken (0 when the deque is empty).
  std::size_t steal(std::vector<Node>& out, std::size_t max_nodes) {
    const LockGuard lock(mu_);
    std::size_t taken = 0;
    while (taken < max_nodes && !items_.empty()) {
      out.push_back(items_.pop_front());
      ++taken;
    }
    return taken;
  }

  std::size_t size() const {
    const LockGuard lock(mu_);
    return items_.size();
  }
  bool empty() const { return size() == 0; }
  /// Slots this shard can hold (bounded storages; "infinite" otherwise).
  std::size_t capacity() const {
    const LockGuard lock(mu_);
    return items_.capacity();
  }

  /// Removes every node front-to-back (deterministic given the contents).
  std::vector<Node> drain() {
    const LockGuard lock(mu_);
    std::vector<Node> out;
    out.reserve(items_.size());
    for (std::size_t i = 0; i < items_.size(); ++i) {
      out.push_back(std::move(items_.at(i)));
    }
    items_.clear();
    return out;
  }

 private:
  mutable Mutex mu_;
  Storage items_ FSBB_GUARDED_BY(mu_);
};

/// Lock-free Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005) with
/// the C11 fence placement of Lê, Pop, Cohen & Zappa Nardelli (PPoPP
/// 2013). Same public surface as the mutexed deque, so ShardedPoolT and
/// the steal engine are oblivious to which one they run over.
///
/// The owner pushes/pops `bottom`; thieves CAS `top`. Cells are arrays of
/// relaxed atomic 32-bit words (NodeRef is 12 bytes = 3 words): a thief
/// may read a cell the owner is concurrently overwriting, but the torn
/// value is never *used* — the subsequent CAS on `top` fails for exactly
/// the interleavings that could have torn it, which is the standard
/// data-race-free formulation of the algorithm. Growth (owner-only)
/// copies into a bigger array and publishes it; retired arrays are kept
/// until destruction so a thief holding a stale pointer still reads live
/// memory (its CAS then decides whether the value counts).
///
/// drain()/clear-style maintenance is quiescent-only (no concurrent
/// owner/thieves) — the steal engine drains after the gang has joined.
template <typename Node>
class WorkStealingDequeT<Node, ChaseLevStorage<Node>> {
  static_assert(std::is_trivially_copyable_v<Node>,
                "Chase-Lev cells hold raw words; Node must be trivially "
                "copyable (use 12-byte NodeRef handles, not Subproblem)");

 public:
  WorkStealingDequeT() {
    owned_.push_back(std::make_unique<Buffer>(kInitialCapacity));
    buffer_.store(owned_.back().get(), std::memory_order_relaxed);
  }

  /// Owner: push a node on the back (LIFO hot end). Never fails — the
  /// array grows like the heap storage.
  bool push(Node&& n) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(buf->capacity()) - 1) {
      grow(t, b);
      buf = buffer_.load(std::memory_order_relaxed);
    }
    buf->put(b, n);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return true;
  }

  /// Owner: pop the most recently pushed node; nullopt when empty (or when
  /// a thief won the race for the last node).
  std::optional<Node> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // already empty: undo the reservation
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    Node n = buf->get(b);
    if (t == b) {
      // Last node: race the thieves for it via the same CAS they use.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      if (!won) return std::nullopt;
    }
    return n;
  }

  /// Thief: move up to `max_nodes` of the *oldest* nodes into `out`.
  /// Returns how many were taken. A lost CAS race ends the batch early
  /// (the caller's victim scan simply moves on).
  std::size_t steal(std::vector<Node>& out, std::size_t max_nodes) {
    std::size_t taken = 0;
    while (taken < max_nodes) {
      std::int64_t t = top_.load(std::memory_order_acquire);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      const std::int64_t b = bottom_.load(std::memory_order_acquire);
      if (t >= b) break;  // empty
      Buffer* buf = buffer_.load(std::memory_order_acquire);
      Node n = buf->get(t);
      if (!top_.compare_exchange_strong(t, t + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        break;  // lost to the owner or another thief
      }
      out.push_back(n);
      ++taken;
    }
    return taken;
  }

  /// Racy under concurrency (like every cross-shard size sum).
  std::size_t size() const {
    const std::int64_t t = top_.load(std::memory_order_acquire);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }
  bool empty() const { return size() == 0; }
  /// Unbounded (grows like the heap storage).
  std::size_t capacity() const { return static_cast<std::size_t>(-1); }

  /// Removes every node front-to-back (deterministic given the contents).
  /// Quiescent-only: no concurrent owner or thieves.
  std::vector<Node> drain() {
    const std::int64_t t = top_.load(std::memory_order_acquire);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    std::vector<Node> out;
    out.reserve(b > t ? static_cast<std::size_t>(b - t) : 0);
    for (std::int64_t i = t; i < b; ++i) {
      out.push_back(buf->get(i));
    }
    top_.store(b, std::memory_order_relaxed);
    return out;
  }

 private:
  static constexpr std::size_t kInitialCapacity = 64;  // power of two
  static constexpr std::size_t kWords = (sizeof(Node) + 3) / 4;

  /// Power-of-two circular array of word-atomic cells.
  class Buffer {
   public:
    explicit Buffer(std::size_t cap) : mask_(cap - 1), cells_(cap * kWords) {
      FSBB_ASSERT((cap & (cap - 1)) == 0);
    }

    std::size_t capacity() const { return mask_ + 1; }

    void put(std::int64_t i, const Node& n) {
      std::uint32_t w[kWords] = {};
      std::memcpy(w, &n, sizeof(Node));
      std::atomic<std::uint32_t>* c = cell(i);
      for (std::size_t k = 0; k < kWords; ++k) {
        c[k].store(w[k], std::memory_order_relaxed);
      }
    }
    Node get(std::int64_t i) const {
      std::uint32_t w[kWords];
      const std::atomic<std::uint32_t>* c = cell(i);
      for (std::size_t k = 0; k < kWords; ++k) {
        w[k] = c[k].load(std::memory_order_relaxed);
      }
      Node n;
      std::memcpy(&n, w, sizeof(Node));
      return n;
    }

   private:
    std::atomic<std::uint32_t>* cell(std::int64_t i) {
      return cells_.data() +
             (static_cast<std::size_t>(i) & mask_) * kWords;
    }
    const std::atomic<std::uint32_t>* cell(std::int64_t i) const {
      return cells_.data() +
             (static_cast<std::size_t>(i) & mask_) * kWords;
    }

    std::size_t mask_;
    std::vector<std::atomic<std::uint32_t>> cells_;
  };

  /// Owner-only (called from push): double the array, copy the live
  /// window, publish. The old buffer stays alive in owned_ for stale
  /// thief reads.
  void grow(std::int64_t t, std::int64_t b) {
    Buffer* old = buffer_.load(std::memory_order_relaxed);
    auto bigger = std::make_unique<Buffer>(old->capacity() * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->put(i, old->get(i));
    }
    buffer_.store(bigger.get(), std::memory_order_release);
    owned_.push_back(std::move(bigger));
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_{nullptr};
  std::vector<std::unique_ptr<Buffer>> owned_;  // current + retired arrays
};

/// A fixed set of per-worker deques plus the cross-shard operations the
/// steal engine, the frozen-pool protocol and the device-resident pools
/// need. Shard addresses are stable for the pool's lifetime.
template <typename Node, typename Storage = HeapDequeStorage<Node>>
class ShardedPoolT {
 public:
  using Deque = WorkStealingDequeT<Node, Storage>;

  /// `shards` default-constructed shards (heap storage: the host form).
  explicit ShardedPoolT(std::size_t shards) {
    FSBB_CHECK_MSG(shards >= 1, "sharded pool needs at least one shard");
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Deque>());
    }
  }

  /// One shard per storage, each living over externally owned memory (an
  /// arena chunk, a device-buffer span). The pool does not own the slabs.
  explicit ShardedPoolT(std::vector<Storage> storages) {
    FSBB_CHECK_MSG(!storages.empty(), "sharded pool needs at least one shard");
    shards_.reserve(storages.size());
    for (Storage& s : storages) {
      shards_.push_back(std::make_unique<Deque>(std::move(s)));
    }
  }

  std::size_t shards() const { return shards_.size(); }
  Deque& shard(std::size_t i) { return *shards_[i]; }
  const Deque& shard(std::size_t i) const { return *shards_[i]; }

  /// Round-robin an initial node list across the shards (node i goes to
  /// shard i % W) so every worker starts with a slice of the frozen pool.
  /// On bounded storages a full home shard spills to the next shard with
  /// room; a completely full pool is an error, never a silent drop.
  void distribute(std::vector<Node> nodes) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      bool placed = false;
      for (std::size_t probe = 0; probe < shards_.size() && !placed; ++probe) {
        placed = shards_[(i + probe) % shards_.size()]->push(
            std::move(nodes[i]));
      }
      FSBB_CHECK_MSG(placed, "sharded pool is full; node not distributable");
    }
  }

  std::size_t size() const {  ///< sum over shards (racy under concurrency)
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard->size();
    return total;
  }
  bool empty() const { return size() == 0; }

  /// Drains shard 0..W-1, each front-to-back — deterministic given the
  /// per-shard contents, like Pool::drain().
  std::vector<Node> drain() {
    std::vector<Node> out;
    for (const auto& shard : shards_) {
      std::vector<Node> part = shard->drain();
      for (Node& sp : part) out.push_back(std::move(sp));
    }
    return out;
  }

 private:
  std::vector<std::unique_ptr<Deque>> shards_;
};

/// Value-typed instantiations: the protocol/test-facing form.
using WorkStealingDeque = WorkStealingDequeT<Subproblem>;
using ShardedPool = ShardedPoolT<Subproblem>;

}  // namespace fsbb::core
