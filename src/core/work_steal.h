// Sharded work-stealing pools — the scalable alternative to the single
// mutex-guarded Pool of the §V multicore baseline.
//
// Each worker owns one deque-backed local pool: it pushes and pops at the
// back (LIFO — dive toward leaves, hot caches), while thieves steal from
// the front (FIFO — the oldest nodes sit closest to the root and carry the
// biggest subtrees, so one steal moves a large chunk of work). This is the
// per-worker-pool design Gmys (2020) and Chakroun & Melab (2012) show is
// what lets exact flow-shop B&B scale past the shared-pool ceiling.
//
// The deque is generic over its node type. The steal engine instantiates
// it over 12-byte NodeRef handles into a shared NodeArena, so a steal
// moves a few words per node and never touches permutation bytes; the
// value-typed Subproblem instantiation remains for the frozen-pool
// protocol and the concurrency tests. Fine-grained per-shard locking is
// retained (the owner's lock is uncontended in the common case, and the
// architecture — local LIFO, steal-oldest, round-robin victims — is what
// buys the scaling); with handle entries the critical sections are now a
// few-word move, which is the precondition ROADMAP names for a Chase–Lev
// array upgrade if profiles ever show the lock.
//
// drain() is deterministic given the deque contents (shard 0..W-1, each
// front to back), so the frozen-pool protocol keeps working on top.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/check.h"
#include "core/node_arena.h"
#include "core/steal_stats.h"
#include "core/subproblem.h"

namespace fsbb::core {

/// One worker's local pool. Owner operations (push/pop) hit the back;
/// steals take the oldest nodes from the front. All operations are
/// thread-safe; the owner's lock is uncontended unless a thief is present.
template <typename Node>
class WorkStealingDequeT {
 public:
  /// Owner: push a node on the back (LIFO hot end).
  void push(Node&& sp) {
    const std::lock_guard<std::mutex> lock(mu_);
    items_.push_back(std::move(sp));
  }

  /// Owner: pop the most recently pushed node; nullopt when empty.
  std::optional<Node> pop() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    Node sp = std::move(items_.back());
    items_.pop_back();
    return sp;
  }

  /// Thief: move up to `max_nodes` of the *oldest* nodes into `out`.
  /// Returns how many were taken (0 when the deque is empty).
  std::size_t steal(std::vector<Node>& out, std::size_t max_nodes) {
    const std::lock_guard<std::mutex> lock(mu_);
    std::size_t taken = 0;
    while (taken < max_nodes && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++taken;
    }
    return taken;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  bool empty() const { return size() == 0; }

  /// Removes every node front-to-back (deterministic given the contents).
  std::vector<Node> drain() {
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<Node> out;
    out.reserve(items_.size());
    for (Node& sp : items_) out.push_back(std::move(sp));
    items_.clear();
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::deque<Node> items_;
};

/// A fixed set of per-worker deques plus the cross-shard operations the
/// steal engine and the frozen-pool protocol need. Shard addresses are
/// stable for the pool's lifetime.
template <typename Node>
class ShardedPoolT {
 public:
  explicit ShardedPoolT(std::size_t shards) {
    FSBB_CHECK_MSG(shards >= 1, "sharded pool needs at least one shard");
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<WorkStealingDequeT<Node>>());
    }
  }

  std::size_t shards() const { return shards_.size(); }
  WorkStealingDequeT<Node>& shard(std::size_t i) { return *shards_[i]; }
  const WorkStealingDequeT<Node>& shard(std::size_t i) const {
    return *shards_[i];
  }

  /// Round-robin an initial node list across the shards (node i goes to
  /// shard i % W) so every worker starts with a slice of the frozen pool.
  void distribute(std::vector<Node> nodes) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      shards_[i % shards_.size()]->push(std::move(nodes[i]));
    }
  }

  std::size_t size() const {  ///< sum over shards (racy under concurrency)
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard->size();
    return total;
  }
  bool empty() const { return size() == 0; }

  /// Drains shard 0..W-1, each front-to-back — deterministic given the
  /// per-shard contents, like Pool::drain().
  std::vector<Node> drain() {
    std::vector<Node> out;
    for (const auto& shard : shards_) {
      std::vector<Node> part = shard->drain();
      for (Node& sp : part) out.push_back(std::move(sp));
    }
    return out;
  }

 private:
  std::vector<std::unique_ptr<WorkStealingDequeT<Node>>> shards_;
};

/// Value-typed instantiations: the protocol/test-facing form.
using WorkStealingDeque = WorkStealingDequeT<Subproblem>;
using ShardedPool = ShardedPoolT<Subproblem>;

}  // namespace fsbb::core
