// The bounding operator as a batch interface.
//
// The paper's "Type 1" parallelism is exactly this seam: the engine hands a
// pool (batch) of sub-problems to a BoundEvaluator, which fills in each
// node's lower bound. Implementations: serial CPU (this file), pooled host
// threads (this file), and the simulated GPU (gpubb/gpu_evaluator.h).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "common/threadpool.h"
#include "common/timer.h"
#include "core/steal_stats.h"
#include "core/subproblem.h"
#include "fsp/instance.h"
#include "fsp/lb1.h"
#include "fsp/lb2.h"
#include "fsp/lb_data.h"

namespace fsbb::core {

/// Running totals an evaluator keeps about the bounding work done.
struct EvalLedger {
  std::uint64_t batches = 0;
  std::uint64_t nodes = 0;
  double wall_seconds = 0;  ///< measured host time inside evaluate()
};

/// One parent's children, described without materializing them: the child
/// scheduling next_jobs[i] is exactly parent.child(i), because an engine
/// only bounds incomplete children and those exist precisely when ALL of
/// the parent's free jobs spawn one child each. parent_prefix and
/// next_jobs therefore concatenate to the parent's full permutation.
struct SiblingBatch {
  std::span<const JobId> parent_prefix;  ///< the parent's scheduled jobs
  std::span<const JobId> next_jobs;      ///< the parent's free jobs, in order
  std::span<Time> bounds;                ///< out: one LB per child
};

/// One parent in a resident-pool offload iteration. `perm` is the parent's
/// FULL permutation ([0, depth) scheduled, the rest the free jobs in
/// order); children are the free jobs expanded in order, exactly like
/// SiblingBatch. `ticket` identifies the parent's resident payload inside
/// the evaluator's pool — kNullTicket means the parent is not resident and
/// the evaluator must refill it from `perm` (priced as a full node upload).
struct ResidentGroup {
  static constexpr std::uint32_t kNullTicket = 0xFFFFFFFFu;

  std::uint32_t ticket = kNullTicket;    ///< resident parent, or refill
  std::span<const JobId> perm;           ///< parent's full permutation
  std::int32_t depth = 0;                ///< parent depth
  std::span<Time> bounds;                ///< out: one LB per child
  std::span<std::uint32_t> child_tickets;  ///< out: resident child payloads
                                           ///< (kNullTicket when not kept)
};

/// Evaluator-owned resident node store (Chakroun & Melab's device-resident
/// per-SM pools). The engine drives offload iterations against it: node
/// payloads stay inside the pool, only tickets, incumbents and bounds cross
/// the seam. Tickets are owned by the engine once iterate() returns them:
/// every non-null parent and child ticket must eventually be release()d.
class ResidentPool {
 public:
  static constexpr std::uint32_t kNullTicket = ResidentGroup::kNullTicket;

  virtual ~ResidentPool() = default;

  /// One select→branch→bound offload iteration: derives every group's
  /// children from its resident parent payload (or the refill `perm`),
  /// bounds them, fills bounds/child_tickets. `ub` is the host incumbent,
  /// shipped down so the device side is never stale. Parent tickets are
  /// still valid afterwards (the engine releases them).
  virtual void iterate(Time ub, std::span<ResidentGroup> groups) = 0;

  /// Frees a resident payload (host-side bookkeeping; no device traffic).
  virtual void release(std::uint32_t ticket) = 0;

  /// Per-shard occupancy/steal/refill counters, for SolveReport.
  virtual ResidentPoolStats shard_stats() const = 0;
};

/// One root subtree handed to a SubtreeDfs launch. `perm` is the node's
/// FULL permutation ([0, depth) scheduled, free jobs after, exactly the
/// arena layout); `lb` is its already-computed lower bound — the launch
/// performs the lazy pop-time elimination check itself, at the exact
/// point in the exploration order a serial engine would.
struct DfsRoot {
  std::span<const JobId> perm;
  std::int32_t depth = 0;
  Time lb = 0;
};

/// Incumbent improvement discovered inside a DFS launch, in discovery
/// order. The counter fields are the launch-LOCAL totals at the moment of
/// the improvement, so the host replays SearchControl::emit_incumbent with
/// exact running totals (pre-launch base + these deltas) — keeping the
/// incumbent stream bit-identical to cpu-serial.
struct DfsIncumbentEvent {
  Time makespan = 0;
  std::vector<JobId> permutation;  ///< the complete schedule
  std::uint64_t branched = 0;
  std::uint64_t evaluated = 0;
  std::uint64_t pruned = 0;
};

/// Per-launch operator counters (launch-local; the engine adds them to
/// EngineStats). Semantics match the serial engine exactly: branched
/// counts expanded nodes, generated their children, evaluated the bounded
/// (incomplete) children, pruned both pop-time and insert-time
/// eliminations, leaves the complete schedules reached.
struct DfsLaunchStats {
  std::uint64_t branched = 0;
  std::uint64_t generated = 0;
  std::uint64_t evaluated = 0;
  std::uint64_t pruned = 0;
  std::uint64_t leaves = 0;
};

/// Outcome of one SubtreeDfs launch.
struct DfsLaunchResult {
  DfsLaunchStats stats;
  std::vector<DfsIncumbentEvent> incumbents;  ///< in discovery order
  /// Live nodes surfaced by the expansion-quota interrupt, in the exact
  /// order a serial depth-first engine would pop them next (deepest
  /// pending sibling first). Empty when every started subtree exhausted.
  std::vector<Subproblem> surfaced;
  /// Roots [0, roots_started) were consumed (explored, pruned, or
  /// surfaced through `surfaced`); roots [roots_started, roots.size())
  /// were never begun and must return to the pool untouched.
  std::size_t roots_started = 0;
};

/// Evaluator-owned per-thread iterative DFS (the device-side search mode,
/// gpubb/dfs_pool.h). Each launch explores one subtree per device lane —
/// select, branch and bound fused inside the kernel, the incumbent checked
/// between expansions — and only surfaces work at subtree exhaustion or
/// when the expansion quota (host-initiated recall) interrupts it. The
/// exploration order, elimination points and counters are bit-identical to
/// a serial depth-first engine with batch_size 1 — a fuzzed invariant.
class SubtreeDfs {
 public:
  virtual ~SubtreeDfs() = default;

  /// Subtree lanes one launch can run (the device thread budget).
  virtual std::size_t max_roots() const = 0;

  /// Default expansion quota per launch — the recall granularity at which
  /// control returns to the host (stop checks, pool rebalancing).
  virtual std::uint64_t launch_expansions() const = 0;

  /// Runs one fused DFS launch over `roots` (each lane owns one subtree,
  /// explored in root order) with shared incumbent `ub`, interrupting
  /// after `max_expansions` nodes have been branched.
  virtual DfsLaunchResult run_subtrees(Time ub, std::span<const DfsRoot> roots,
                                       std::uint64_t max_expansions) = 0;
};

/// Batch lower-bound evaluator. Implementations must be deterministic:
/// identical batches yield identical bounds regardless of thread count.
class BoundEvaluator {
 public:
  virtual ~BoundEvaluator() = default;

  /// Fills sp.lb for every node in the batch.
  virtual void evaluate(std::span<Subproblem> batch) = 0;

  /// True when evaluate_siblings exploits the shared parent state; the
  /// engine then groups children by parent instead of materializing one
  /// flat Subproblem batch.
  virtual bool supports_sibling_batches() const { return false; }

  /// Bounds every group's children given their common parent. The default
  /// materializes the children and routes them through evaluate(), so
  /// callback/GPU evaluators work unchanged; the CPU evaluators override
  /// it with the O(m)-incremental Lb1BoundContext path. Bounds are
  /// bit-identical between the two paths — a tested invariant.
  virtual void evaluate_siblings(std::span<const SiblingBatch> groups);

  /// Non-null when this evaluator keeps node payloads resident in its own
  /// memory; the engine then drives ResidentPool::iterate() offload
  /// iterations instead of flat evaluate() batches. Takes precedence over
  /// the sibling seam. The pool's bounds are bit-identical to evaluate()'s
  /// — the engine's search (and so every EngineStats counter) is unchanged.
  virtual ResidentPool* resident_pool() { return nullptr; }

  /// Non-null when this evaluator runs whole subtrees device-side through
  /// per-thread iterative DFS launches; the engine then drives
  /// SubtreeDfs::run_subtrees() instead of per-level bounding batches.
  /// Takes precedence over resident_pool() and the sibling seam. Requires
  /// SelectionStrategy::kDepthFirst (the launch IS a depth-first
  /// exploration); counters stay bit-identical to cpu-serial.
  virtual SubtreeDfs* subtree_dfs() { return nullptr; }

  virtual std::string name() const = 0;
  virtual const EvalLedger& ledger() const = 0;
};

/// Serial CPU evaluator applying LB1 node by node. Sibling batches take
/// the incremental context; flat batches replay each prefix.
class SerialCpuEvaluator final : public BoundEvaluator {
 public:
  SerialCpuEvaluator(const fsp::Instance& inst, const fsp::LowerBoundData& data);
  /// LB2 variant: owns the head/tail tables; bounds via the incremental
  /// fsp::Lb2BoundContext on the sibling seam, lb2_from_prefix otherwise.
  SerialCpuEvaluator(const fsp::Instance& inst, const fsp::LowerBoundData& data,
                     fsp::Lb2Data lb2);

  void evaluate(std::span<Subproblem> batch) override;
  bool supports_sibling_batches() const override { return true; }
  void evaluate_siblings(std::span<const SiblingBatch> groups) override;
  /// "lb2-serial" in LB2 mode, keeping report strings stable across the
  /// CallbackEvaluator it replaced.
  std::string name() const override { return lb2_ ? "lb2-serial" : "cpu-serial"; }
  const EvalLedger& ledger() const override { return ledger_; }

 private:
  const fsp::Instance* inst_;
  const fsp::LowerBoundData* data_;
  fsp::Lb1Scratch scratch_;
  fsp::Lb1BoundContext context_;
  // Engaged together in LB2 mode; context_/scratch_ are then unused.
  std::optional<fsp::Lb2Data> lb2_;
  std::optional<fsp::Lb2Scratch> lb2_scratch_;
  std::optional<fsp::Lb2BoundContext> lb2_context_;
  EvalLedger ledger_;
};

/// Serial evaluator around an arbitrary bound callback — the hook for
/// alternative lower bounds (LB0, LB2, ...) without touching the engine.
/// The callback must be deterministic and thread-compatible.
class CallbackEvaluator final : public BoundEvaluator {
 public:
  using BoundFn = std::function<Time(const Subproblem&)>;

  CallbackEvaluator(std::string name, BoundFn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  void evaluate(std::span<Subproblem> batch) override {
    const WallTimer timer;
    for (Subproblem& sp : batch) {
      sp.lb = fn_(sp);
    }
    ++ledger_.batches;
    ledger_.nodes += batch.size();
    ledger_.wall_seconds += timer.seconds();
  }

  std::string name() const override { return name_; }
  const EvalLedger& ledger() const override { return ledger_; }

 private:
  std::string name_;
  BoundFn fn_;
  EvalLedger ledger_;
};

/// Multi-threaded CPU evaluator: the batch is split across a thread pool,
/// one LB per node, results written in place (no cross-thread interaction,
/// hence bit-identical to the serial evaluator).
class ThreadedCpuEvaluator final : public BoundEvaluator {
 public:
  /// threads == 0 picks hardware concurrency.
  ThreadedCpuEvaluator(const fsp::Instance& inst,
                       const fsp::LowerBoundData& data, std::size_t threads = 0);
  /// LB2 variant: owns the head/tail tables; per-worker incremental
  /// fsp::Lb2BoundContext on the sibling seam, lb2_from_prefix otherwise.
  ThreadedCpuEvaluator(const fsp::Instance& inst,
                       const fsp::LowerBoundData& data, fsp::Lb2Data lb2,
                       std::size_t threads = 0);

  void evaluate(std::span<Subproblem> batch) override;
  bool supports_sibling_batches() const override { return true; }
  /// Whole sibling groups are the unit of parallelism: each worker binds
  /// its incremental context to a group's parent once and bounds all of
  /// that parent's children, so the per-parent setup is never repeated.
  void evaluate_siblings(std::span<const SiblingBatch> groups) override;
  std::string name() const override;
  const EvalLedger& ledger() const override { return ledger_; }
  std::size_t threads() const { return pool_.thread_count(); }

 private:
  const fsp::Instance* inst_;
  const fsp::LowerBoundData* data_;
  ThreadPool pool_;
  // Per-worker state, hoisted out of evaluate(): worker_index may also be
  // thread_count() (the calling thread participates), hence + 1.
  std::vector<fsp::Lb1Scratch> scratch_;
  std::vector<fsp::Lb1BoundContext> contexts_;
  // Engaged together in LB2 mode; the LB1 vectors above are then empty.
  std::optional<fsp::Lb2Data> lb2_;
  std::vector<fsp::Lb2Scratch> lb2_scratch_;
  std::vector<fsp::Lb2BoundContext> lb2_contexts_;
  EvalLedger ledger_;
};

}  // namespace fsbb::core
