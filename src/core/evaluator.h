// The bounding operator as a batch interface.
//
// The paper's "Type 1" parallelism is exactly this seam: the engine hands a
// pool (batch) of sub-problems to a BoundEvaluator, which fills in each
// node's lower bound. Implementations: serial CPU (this file), pooled host
// threads (this file), and the simulated GPU (gpubb/gpu_evaluator.h).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "common/threadpool.h"
#include "common/timer.h"
#include "core/subproblem.h"
#include "fsp/instance.h"
#include "fsp/lb1.h"
#include "fsp/lb_data.h"

namespace fsbb::core {

/// Running totals an evaluator keeps about the bounding work done.
struct EvalLedger {
  std::uint64_t batches = 0;
  std::uint64_t nodes = 0;
  double wall_seconds = 0;  ///< measured host time inside evaluate()
};

/// Batch lower-bound evaluator. Implementations must be deterministic:
/// identical batches yield identical bounds regardless of thread count.
class BoundEvaluator {
 public:
  virtual ~BoundEvaluator() = default;

  /// Fills sp.lb for every node in the batch.
  virtual void evaluate(std::span<Subproblem> batch) = 0;

  virtual std::string name() const = 0;
  virtual const EvalLedger& ledger() const = 0;
};

/// Serial CPU evaluator applying LB1 node by node.
class SerialCpuEvaluator final : public BoundEvaluator {
 public:
  SerialCpuEvaluator(const fsp::Instance& inst, const fsp::LowerBoundData& data);

  void evaluate(std::span<Subproblem> batch) override;
  std::string name() const override { return "cpu-serial"; }
  const EvalLedger& ledger() const override { return ledger_; }

 private:
  const fsp::Instance* inst_;
  const fsp::LowerBoundData* data_;
  fsp::Lb1Scratch scratch_;
  EvalLedger ledger_;
};

/// Serial evaluator around an arbitrary bound callback — the hook for
/// alternative lower bounds (LB0, LB2, ...) without touching the engine.
/// The callback must be deterministic and thread-compatible.
class CallbackEvaluator final : public BoundEvaluator {
 public:
  using BoundFn = std::function<Time(const Subproblem&)>;

  CallbackEvaluator(std::string name, BoundFn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  void evaluate(std::span<Subproblem> batch) override {
    const WallTimer timer;
    for (Subproblem& sp : batch) {
      sp.lb = fn_(sp);
    }
    ++ledger_.batches;
    ledger_.nodes += batch.size();
    ledger_.wall_seconds += timer.seconds();
  }

  std::string name() const override { return name_; }
  const EvalLedger& ledger() const override { return ledger_; }

 private:
  std::string name_;
  BoundFn fn_;
  EvalLedger ledger_;
};

/// Multi-threaded CPU evaluator: the batch is split across a thread pool,
/// one LB per node, results written in place (no cross-thread interaction,
/// hence bit-identical to the serial evaluator).
class ThreadedCpuEvaluator final : public BoundEvaluator {
 public:
  /// threads == 0 picks hardware concurrency.
  ThreadedCpuEvaluator(const fsp::Instance& inst,
                       const fsp::LowerBoundData& data, std::size_t threads = 0);

  void evaluate(std::span<Subproblem> batch) override;
  std::string name() const override;
  const EvalLedger& ledger() const override { return ledger_; }
  std::size_t threads() const { return pool_.thread_count(); }

 private:
  const fsp::Instance* inst_;
  const fsp::LowerBoundData* data_;
  ThreadPool pool_;
  EvalLedger ledger_;
};

}  // namespace fsbb::core
