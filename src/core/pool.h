// Pools of pending sub-problems — the paper's selection operator.
//
// Best-first (the strategy the paper uses for its GPU pools) pops the node
// with the smallest lower bound; depth-first pops LIFO. Both are fully
// deterministic: ties break on (deeper first, then insertion sequence).
//
// The pool is generic over its node type: the engines store 12-byte
// NodeRef handles into a NodeArena (permutations never move through the
// heap), while the frozen-pool protocol and the tests keep using the
// value-typed Subproblem instantiation. Any type with `lb` and `depth`
// members orders the same way.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "core/node_arena.h"
#include "core/subproblem.h"

namespace fsbb::core {

/// Node selection strategies (paper §II-A).
enum class SelectionStrategy {
  kDepthFirst,
  kBestFirst,
};

const char* to_string(SelectionStrategy s);

/// Abstract pool of pending (already-bounded) sub-problems.
template <typename Node>
class PoolT {
 public:
  virtual ~PoolT() = default;

  virtual void push(Node&& sp) = 0;
  /// Pops the next node per the strategy. Pool must be non-empty.
  virtual Node pop() = 0;
  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }

  /// Removes and returns every node (order unspecified but deterministic).
  /// Used by the frozen-pool experimental protocol.
  virtual std::vector<Node> drain() = 0;
};

/// Value-typed pool: the public/protocol form.
using Pool = PoolT<Subproblem>;
/// Handle-typed pool: what the engines keep hot.
using ArenaPool = PoolT<NodeRef>;

namespace detail {

template <typename Node>
class DfsPool final : public PoolT<Node> {
 public:
  void push(Node&& sp) override { stack_.push_back(std::move(sp)); }

  Node pop() override {
    FSBB_CHECK(!stack_.empty());
    Node sp = std::move(stack_.back());
    stack_.pop_back();
    return sp;
  }

  std::size_t size() const override { return stack_.size(); }

  std::vector<Node> drain() override {
    std::vector<Node> out;
    out.swap(stack_);
    return out;
  }

 private:
  std::vector<Node> stack_;
};

// Entry with an insertion sequence number for deterministic tie-breaking.
template <typename Node>
struct BestFirstEntry {
  Node sp;
  std::uint64_t seq;
};

// Max-heap comparator that makes the *best* node the heap top: smaller lb
// wins, then larger depth (dive toward leaves), then earlier insertion.
template <typename Node>
struct WorseThan {
  bool operator()(const BestFirstEntry<Node>& a,
                  const BestFirstEntry<Node>& b) const {
    if (a.sp.lb != b.sp.lb) return a.sp.lb > b.sp.lb;
    if (a.sp.depth != b.sp.depth) return a.sp.depth < b.sp.depth;
    return a.seq > b.seq;
  }
};

template <typename Node>
class BestFirstPool final : public PoolT<Node> {
 public:
  void push(Node&& sp) override {
    heap_.push_back(BestFirstEntry<Node>{std::move(sp), next_seq_++});
    std::push_heap(heap_.begin(), heap_.end(), WorseThan<Node>{});
  }

  Node pop() override {
    FSBB_CHECK(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), WorseThan<Node>{});
    Node sp = std::move(heap_.back().sp);
    heap_.pop_back();
    return sp;
  }

  std::size_t size() const override { return heap_.size(); }

  std::vector<Node> drain() override {
    // Deterministic order: repeatedly pop the best.
    std::vector<Node> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) out.push_back(pop());
    return out;
  }

 private:
  std::vector<BestFirstEntry<Node>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace detail

template <typename Node = Subproblem>
std::unique_ptr<PoolT<Node>> make_pool(SelectionStrategy strategy) {
  switch (strategy) {
    case SelectionStrategy::kDepthFirst:
      return std::make_unique<detail::DfsPool<Node>>();
    case SelectionStrategy::kBestFirst:
      return std::make_unique<detail::BestFirstPool<Node>>();
  }
  FSBB_CHECK_MSG(false, "unknown selection strategy");
  return nullptr;
}

}  // namespace fsbb::core
