// Pools of pending sub-problems — the paper's selection operator.
//
// Best-first (the strategy the paper uses for its GPU pools) pops the node
// with the smallest lower bound; depth-first pops LIFO. Both are fully
// deterministic: ties break on (deeper first, then insertion sequence).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/subproblem.h"

namespace fsbb::core {

/// Node selection strategies (paper §II-A).
enum class SelectionStrategy {
  kDepthFirst,
  kBestFirst,
};

const char* to_string(SelectionStrategy s);

/// Abstract pool of pending (already-bounded) sub-problems.
class Pool {
 public:
  virtual ~Pool() = default;

  virtual void push(Subproblem&& sp) = 0;
  /// Pops the next node per the strategy. Pool must be non-empty.
  virtual Subproblem pop() = 0;
  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }

  /// Removes and returns every node (order unspecified but deterministic).
  /// Used by the frozen-pool experimental protocol.
  virtual std::vector<Subproblem> drain() = 0;
};

std::unique_ptr<Pool> make_pool(SelectionStrategy strategy);

}  // namespace fsbb::core
