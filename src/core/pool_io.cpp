#include "core/pool_io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace fsbb::core {

namespace {
constexpr const char* kMagic = "fsbb-frozen-pool";
constexpr int kVersion = 1;
}  // namespace

void write_frozen_pool(std::ostream& out, const FrozenPool& pool) {
  FSBB_CHECK_MSG(!pool.nodes.empty(), "refusing to write an empty pool");
  const int jobs = pool.nodes.front().jobs();
  out << kMagic << " " << kVersion << "\n";
  out << jobs << " " << pool.nodes.size() << " " << pool.incumbent << "\n";
  for (const Subproblem& sp : pool.nodes) {
    FSBB_CHECK_MSG(sp.jobs() == jobs, "heterogeneous pool");
    FSBB_CHECK_MSG(sp.lb != Subproblem::kUnevaluated, "unevaluated node");
    out << sp.depth;
    for (const JobId j : sp.perm) out << " " << j;
    out << " " << sp.lb << "\n";
  }
}

void write_frozen_pool_file(const std::string& path, const FrozenPool& pool) {
  std::ofstream out(path);
  FSBB_CHECK_MSG(out.good(), "cannot open for writing: " + path);
  write_frozen_pool(out, pool);
}

FrozenPool read_frozen_pool(std::istream& in) {
  std::string magic;
  int version = 0;
  FSBB_CHECK_MSG(static_cast<bool>(in >> magic >> version),
                 "missing frozen-pool header");
  FSBB_CHECK_MSG(magic == kMagic, "not a frozen-pool file");
  FSBB_CHECK_MSG(version == kVersion, "unsupported frozen-pool version");

  int jobs = 0;
  std::size_t count = 0;
  FrozenPool pool;
  FSBB_CHECK_MSG(static_cast<bool>(in >> jobs >> count >> pool.incumbent),
                 "truncated frozen-pool header line");
  FSBB_CHECK_MSG(jobs >= 1 && count >= 1, "empty frozen pool");

  pool.nodes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Subproblem sp;
    sp.perm.resize(static_cast<std::size_t>(jobs));
    FSBB_CHECK_MSG(static_cast<bool>(in >> sp.depth), "truncated node line");
    FSBB_CHECK_MSG(sp.depth >= 0 && sp.depth <= jobs, "depth out of range");
    std::vector<bool> seen(static_cast<std::size_t>(jobs), false);
    for (int j = 0; j < jobs; ++j) {
      int v = -1;
      FSBB_CHECK_MSG(static_cast<bool>(in >> v), "truncated permutation");
      FSBB_CHECK_MSG(v >= 0 && v < jobs && !seen[static_cast<std::size_t>(v)],
                     "corrupt permutation");
      seen[static_cast<std::size_t>(v)] = true;
      sp.perm[static_cast<std::size_t>(j)] = static_cast<JobId>(v);
    }
    FSBB_CHECK_MSG(static_cast<bool>(in >> sp.lb), "truncated lower bound");
    FSBB_CHECK_MSG(sp.lb >= 0, "negative lower bound");
    pool.nodes.push_back(std::move(sp));
  }
  return pool;
}

FrozenPool read_frozen_pool_file(const std::string& path) {
  std::ifstream in(path);
  FSBB_CHECK_MSG(in.good(), "cannot open frozen-pool file: " + path);
  return read_frozen_pool(in);
}

}  // namespace fsbb::core
