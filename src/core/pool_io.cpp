#include "core/pool_io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace fsbb::core {

namespace {
constexpr const char* kMagic = "fsbb-frozen-pool";
constexpr int kVersion = 1;

/// Line-oriented reader over the stream: every parse error names the
/// source and the 1-based line it happened on.
class PoolReader {
 public:
  PoolReader(std::istream& in, const std::string& source)
      : in_(in), source_(source) {}

  /// Advances to the next line (stripping a trailing CR so checkpoint
  /// files written on Windows still load); fails with `what` at EOF.
  std::istringstream next_line(const std::string& what) {
    std::string line;
    if (!std::getline(in_, line)) fail("unexpected end of input — " + what);
    ++line_number_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return std::istringstream(line);
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw CheckFailure("read_frozen_pool(\"" + source_ + "\", line " +
                       std::to_string(line_number_ == 0 ? 1 : line_number_) +
                       "): " + what);
  }

  /// Reads one whitespace-separated value from the current line.
  template <typename T>
  T read(std::istringstream& line, const std::string& what) {
    T value{};
    if (!(line >> value)) fail("truncated or malformed " + what);
    return value;
  }

  /// Fails if the current line still carries unparsed tokens.
  void expect_line_end(std::istringstream& line) {
    std::string extra;
    if (line >> extra) fail("unexpected trailing token '" + extra + "'");
  }

 private:
  std::istream& in_;
  const std::string source_;
  std::size_t line_number_ = 0;
};

}  // namespace

void write_frozen_pool(std::ostream& out, const FrozenPool& pool) {
  if (pool.nodes.empty()) {
    throw CheckFailure(
        "write_frozen_pool: refusing to serialize an empty pool (a frozen "
        "pool must hold at least one node; a drained search has nothing to "
        "checkpoint)");
  }
  const int jobs = pool.nodes.front().jobs();
  out << kMagic << " " << kVersion << "\n";
  out << jobs << " " << pool.nodes.size() << " " << pool.incumbent << "\n";
  for (const Subproblem& sp : pool.nodes) {
    FSBB_CHECK_MSG(sp.jobs() == jobs, "heterogeneous pool");
    FSBB_CHECK_MSG(sp.lb != Subproblem::kUnevaluated, "unevaluated node");
    out << sp.depth;
    for (const JobId j : sp.perm) out << " " << j;
    out << " " << sp.lb << "\n";
  }
}

void write_frozen_pool_file(const std::string& path, const FrozenPool& pool) {
  std::ofstream out(path);
  FSBB_CHECK_MSG(out.good(), "cannot open for writing: " + path);
  write_frozen_pool(out, pool);
}

std::string write_frozen_pool_string(const FrozenPool& pool) {
  std::ostringstream out;
  write_frozen_pool(out, pool);
  return out.str();
}

FrozenPool read_frozen_pool(std::istream& in, const std::string& source) {
  PoolReader reader(in, source);

  std::istringstream header = reader.next_line("missing frozen-pool header");
  const auto magic = reader.read<std::string>(header, "frozen-pool magic");
  if (magic != kMagic) reader.fail("not a frozen-pool file");
  const int version = reader.read<int>(header, "frozen-pool version");
  if (version != kVersion) {
    reader.fail("unsupported frozen-pool version " + std::to_string(version));
  }
  reader.expect_line_end(header);

  std::istringstream counts = reader.next_line("missing pool header line");
  const int jobs = reader.read<int>(counts, "job count");
  const auto count = reader.read<long long>(counts, "node count");
  FrozenPool pool;
  pool.incumbent = reader.read<Time>(counts, "incumbent");
  reader.expect_line_end(counts);
  if (jobs < 1 || count < 1) reader.fail("empty frozen pool");

  pool.nodes.reserve(static_cast<std::size_t>(count));
  for (long long i = 0; i < count; ++i) {
    std::istringstream node_line = reader.next_line(
        "node " + std::to_string(i + 1) + " of " + std::to_string(count));
    Subproblem sp;
    sp.perm.resize(static_cast<std::size_t>(jobs));
    sp.depth = reader.read<std::int32_t>(node_line, "node depth");
    if (sp.depth < 0 || sp.depth > jobs) reader.fail("depth out of range");
    std::vector<bool> seen(static_cast<std::size_t>(jobs), false);
    for (int j = 0; j < jobs; ++j) {
      const int v = reader.read<int>(node_line, "permutation");
      if (v < 0 || v >= jobs || seen[static_cast<std::size_t>(v)]) {
        reader.fail("corrupt permutation");
      }
      seen[static_cast<std::size_t>(v)] = true;
      sp.perm[static_cast<std::size_t>(j)] = static_cast<JobId>(v);
    }
    sp.lb = reader.read<Time>(node_line, "lower bound");
    if (sp.lb < 0) reader.fail("negative lower bound");
    reader.expect_line_end(node_line);
    pool.nodes.push_back(std::move(sp));
  }
  return pool;
}

FrozenPool read_frozen_pool_file(const std::string& path) {
  std::ifstream in(path);
  FSBB_CHECK_MSG(in.good(), "cannot open frozen-pool file: " + path);
  return read_frozen_pool(in, path);
}

FrozenPool read_frozen_pool_string(const std::string& text,
                                   const std::string& source) {
  std::istringstream in(text);
  return read_frozen_pool(in, source);
}

}  // namespace fsbb::core
