#include "core/engine.h"

#include <algorithm>

#include "common/check.h"
#include "common/timer.h"
#include "core/audit.h"
#include "core/node_arena.h"
#include "fsp/makespan.h"
#include "fsp/neh.h"

namespace fsbb::core {
namespace {

/// One parent's children inside the pending batch (sibling/resident mode).
struct GroupExtent {
  NodeArena::Handle parent;
  std::int32_t depth;       ///< parent depth
  std::uint32_t first;      ///< index of the first child in the batch
  std::uint32_t count;
  std::uint32_t ticket = ResidentPool::kNullTicket;  ///< resident mode only
};

}  // namespace

BBEngine::BBEngine(const fsp::Instance& inst, const fsp::LowerBoundData& data,
                   BoundEvaluator& evaluator, EngineOptions options)
    : inst_(&inst), data_(&data), evaluator_(&evaluator),
      options_(std::move(options)) {
  FSBB_CHECK_MSG(options_.batch_size >= 1, "batch_size must be >= 1");
}

SolveResult BBEngine::solve() {
  Time ub;
  std::vector<JobId> seed_perm;
  if (options_.initial_ub.has_value()) {
    ub = *options_.initial_ub;
  } else {
    fsp::NehResult neh = fsp::neh(*inst_);
    ub = neh.makespan;
    seed_perm = std::move(neh.permutation);
  }

  std::vector<Subproblem> initial;
  Subproblem root = Subproblem::root(inst_->jobs());
  evaluator_->evaluate({&root, 1});
  initial.push_back(std::move(root));

  SolveResult result = run(std::move(initial), ub);
  // The NEH schedule is the incumbent until something beats it.
  if (!seed_perm.empty() && result.best_permutation.empty()) {
    result.best_makespan = ub;
    result.best_permutation = std::move(seed_perm);
  }
  return result;
}

SolveResult BBEngine::solve_from(std::vector<Subproblem> initial,
                                 Time initial_ub) {
  for (const Subproblem& sp : initial) {
    FSBB_CHECK_MSG(sp.lb != Subproblem::kUnevaluated,
                   "solve_from requires bounded nodes");
  }
  return run(std::move(initial), initial_ub);
}

SolveResult BBEngine::run(std::vector<Subproblem> initial, Time ub) {
  const WallTimer total_timer;
  SolveResult result;
  result.stats.initial_ub = ub;
  result.best_makespan = ub;

  const int n = inst_->jobs();
  // All live nodes sit in the arena; the pool moves 12-byte handles. The
  // engine's control loop is serial, so one lane suffices (the evaluator's
  // threads never touch the arena — they only read the parent spans).
  NodeArena arena(n);
  // Auditors (core/audit.h): snapshot the mode once per solve.
  std::unique_ptr<audit::ArenaAudit> arena_audit;
  std::unique_ptr<audit::TicketAudit> ticket_audit;
  std::unique_ptr<audit::IncumbentAudit> incumbent_audit;
  if (audit::enabled()) {
    arena_audit = std::make_unique<audit::ArenaAudit>("bb-engine");
    incumbent_audit = std::make_unique<audit::IncumbentAudit>("bb-engine");
    arena.set_audit(arena_audit.get());
  }
  auto pool = make_pool<NodeRef>(options_.strategy);
  for (Subproblem& sp : initial) {
    if (sp.lb < ub) {
      pool->push(NodeRef{sp.lb, sp.depth, arena.adopt(sp)});
    } else {
      ++result.stats.pruned;
    }
  }

  // Resident mode drives offload iterations against an evaluator-owned
  // device pool: node payloads stay resident, the engine moves tickets.
  // The select/branch/insert logic below is byte-for-byte the sibling
  // path's, so every EngineStats counter matches the host backends.
  // Sibling mode bounds children in place (no Subproblem materialization);
  // the fallback keeps the evaluator-facing flat batch of value nodes so
  // callback bounds and the GPU staging path see exactly what they used to.
  // DFS mode drives whole-subtree device launches through the SubtreeDfs
  // seam: the engine pops a set of roots, the kernel explores them with
  // fused select/branch/bound per lane, and work only resurfaces at
  // subtree exhaustion or the expansion-quota recall. Takes precedence
  // over the resident pool and the sibling seam.
  SubtreeDfs* dfs = evaluator_->subtree_dfs();
  if (dfs != nullptr) {
    FSBB_CHECK_MSG(options_.strategy == SelectionStrategy::kDepthFirst,
                   "the device DFS pool explores subtrees depth-first; "
                   "combine --gpu-pool dfs with --strategy depth-first");
  }
  ResidentPool* resident =
      dfs == nullptr ? evaluator_->resident_pool() : nullptr;
  if (resident != nullptr && audit::enabled()) {
    ticket_audit = std::make_unique<audit::TicketAudit>("resident-pool");
  }
  const bool sibling_mode =
      resident != nullptr || evaluator_->supports_sibling_batches();

  // Ticket of each arena slot's resident payload (resident mode only).
  // Slots are reused after release, so entries are reset to kNullTicket.
  std::vector<std::uint32_t> ticket_of;
  auto ticket_ref = [&](NodeArena::Handle h) -> std::uint32_t& {
    if (ticket_of.size() <= h) {
      ticket_of.resize(static_cast<std::size_t>(h) + 1,
                       ResidentPool::kNullTicket);
    }
    return ticket_of[h];
  };
  // Frees a node's resident payload (if any) and its arena slot.
  auto release_node = [&](NodeArena::Handle h) {
    if (resident && h < ticket_of.size() &&
        ticket_of[h] != ResidentPool::kNullTicket) {
      if (ticket_audit != nullptr) ticket_audit->on_release(ticket_of[h]);
      resident->release(ticket_of[h]);
      ticket_of[h] = ResidentPool::kNullTicket;
    }
    arena.release(h);
  };

  std::vector<Subproblem> pending_mat;   // fallback: materialized children
  std::vector<NodeRef> pending_refs;     // sibling: arena-backed children
  std::vector<NodeRef> dfs_refs;         // dfs: roots popped for a launch
  std::vector<DfsRoot> dfs_roots;
  std::vector<GroupExtent> extents;
  std::vector<SiblingBatch> groups;
  std::vector<ResidentGroup> rgroups;
  std::vector<Time> bounds;
  std::vector<std::uint32_t> child_tickets;
  pending_mat.reserve(options_.batch_size + static_cast<std::size_t>(n));
  pending_refs.reserve(options_.batch_size + static_cast<std::size_t>(n));

  std::optional<StopReason> stop;
  auto budget_exhausted = [&] {
    return options_.node_budget != 0 &&
           result.stats.branched >= options_.node_budget;
  };
  // Checked once per bounding batch; the engine may overrun a deadline or
  // cancellation by at most one batch.
  auto stop_reason_now = [&]() -> std::optional<StopReason> {
    if (budget_exhausted()) return StopReason::kBudget;
    if (options_.freeze_pool_size != 0 &&
        pool->size() >= options_.freeze_pool_size) {
      return StopReason::kFrozen;
    }
    if (options_.time_limit_seconds > 0 &&
        total_timer.seconds() >= options_.time_limit_seconds) {
      return StopReason::kDeadline;
    }
    if (options_.control) return options_.control->should_stop();
    return std::nullopt;
  };

  while (!pool->empty()) {
    if ((stop = stop_reason_now())) break;
    // Externally offered incumbents (another process's schedule, broadcast
    // through the control block) tighten the pruning bound without a
    // permutation: best_permutation stays whatever was found locally, and
    // the final makespan is a valid global bound either way.
    if (options_.control) {
      const Time external = options_.control->external_incumbent();
      if (external < result.best_makespan) result.best_makespan = external;
    }

    // --- DFS mode: one whole-subtree device launch per iteration ------
    if (dfs != nullptr) {
      // Pop the top-of-stack roots blindly: the launch performs the lazy
      // pop-time elimination per lane, at the exact point in the serial
      // exploration order where a batch_size-1 engine would.
      const std::size_t want = std::min(pool->size(), dfs->max_roots());
      dfs_refs.clear();
      dfs_roots.clear();
      for (std::size_t i = 0; i < want; ++i) {
        const NodeRef node = pool->pop();
        dfs_refs.push_back(node);
        dfs_roots.push_back(DfsRoot{arena.perm(node.slot), node.depth,
                                    node.lb});
      }
      std::uint64_t quota = std::max<std::uint64_t>(
          1, dfs->launch_expansions());
      // Scale the recall to the subscription: with few roots, most lanes
      // idle while the first subtrees monopolize a big quota serially, so
      // recall early — the surfaced deep children refill the idle lanes on
      // the next launch. Quota placement never changes the exploration
      // order (lanes run in serial pop order to exhaustion or recall), so
      // counters stay bit-identical to cpu-serial for any quota sequence.
      quota = std::min(quota, static_cast<std::uint64_t>(want) * 32);
      quota = std::max<std::uint64_t>(1, quota);
      if (options_.node_budget != 0) {
        // stop_reason_now() above guarantees branched < node_budget here.
        quota = std::min(quota,
                         options_.node_budget - result.stats.branched);
      }
      DfsLaunchResult launch;
      {
        const WallTimer bound_timer;
        launch = dfs->run_subtrees(result.best_makespan, dfs_roots, quota);
        result.stats.bounding_seconds += bound_timer.seconds();
      }
      // Replay incumbent improvements in discovery order with exact
      // running totals (pre-launch base + launch-local deltas): the
      // emitted stream is bit-identical to cpu-serial's.
      for (DfsIncumbentEvent& ev : launch.incumbents) {
        FSBB_ASSERT(ev.makespan < result.best_makespan);
        result.best_makespan = ev.makespan;
        if (incumbent_audit != nullptr) incumbent_audit->observe(ev.makespan);
        result.best_permutation = std::move(ev.permutation);
        ++result.stats.ub_updates;
        if (options_.control) {
          options_.control->emit_incumbent(
              ev.makespan, result.best_permutation,
              result.stats.branched + ev.branched,
              result.stats.evaluated + ev.evaluated,
              result.stats.pruned + ev.pruned);
        }
      }
      result.stats.branched += launch.stats.branched;
      result.stats.generated += launch.stats.generated;
      result.stats.evaluated += launch.stats.evaluated;
      result.stats.pruned += launch.stats.pruned;
      result.stats.leaves += launch.stats.leaves;
      // Consumed roots died inside the launch (their live descendants, if
      // any, came back through `surfaced`).
      FSBB_ASSERT(launch.roots_started <= dfs_refs.size());
      for (std::size_t i = 0; i < launch.roots_started; ++i) {
        release_node(dfs_refs[i].slot);
      }
      // Rebuild the exact serial stack: LIFO means pushing in reverse pop
      // order — untouched roots first (deepest in the stack), then the
      // surfaced nodes so the first-to-pop ends up on top.
      for (std::size_t i = dfs_refs.size(); i-- > launch.roots_started;) {
        NodeRef ref = dfs_refs[i];
        pool->push(std::move(ref));
      }
      for (auto it = launch.surfaced.rbegin(); it != launch.surfaced.rend();
           ++it) {
        pool->push(NodeRef{it->lb, it->depth, arena.adopt(*it)});
      }
      if (options_.control) {
        options_.control->maybe_emit_tick(result.best_makespan,
                                          result.stats.branched,
                                          result.stats.evaluated,
                                          result.stats.pruned);
      }
      continue;
    }

    // --- selection + elimination (lazy) + branching ------------------
    pending_mat.clear();
    pending_refs.clear();
    extents.clear();
    std::size_t pending_count = 0;
    while (pending_count < options_.batch_size && !pool->empty()) {
      const NodeRef node = pool->pop();
      if (node.lb >= result.best_makespan) {
        ++result.stats.pruned;  // UB improved since this node was inserted
        release_node(node.slot);
        continue;
      }
      ++result.stats.branched;
      const auto perm = arena.perm(node.slot);
      const auto d = static_cast<std::size_t>(node.depth);
      const int r = n - node.depth;
      if (r == 1) {
        // The single child is complete and its permutation is the
        // parent's (the one free job is already in place); its makespan
        // is exact, no bounding needed.
        ++result.stats.generated;
        ++result.stats.leaves;
        const Time ms = fsp::makespan(*inst_, perm);
        if (ms < result.best_makespan) {
          result.best_makespan = ms;
          if (incumbent_audit != nullptr) incumbent_audit->observe(ms);
          result.best_permutation.assign(perm.begin(), perm.end());
          ++result.stats.ub_updates;
          if (options_.control) {
            options_.control->emit_incumbent(
                ms, result.best_permutation, result.stats.branched,
                result.stats.evaluated, result.stats.pruned);
          }
        }
        release_node(node.slot);
      } else if (sibling_mode) {
        const auto first = static_cast<std::uint32_t>(pending_refs.size());
        for (int i = 0; i < r; ++i) {
          ++result.stats.generated;
          const NodeArena::Handle c = arena.allocate();
          write_child_perm(perm, d, static_cast<std::size_t>(i),
                           arena.perm(c));
          pending_refs.push_back(
              NodeRef{Subproblem::kUnevaluated, node.depth + 1, c});
        }
        // The parent stays allocated until after bounding: the sibling
        // batch reads its prefix and free jobs straight from the arena,
        // and the resident pool derives the children from its payload.
        const std::uint32_t ticket =
            resident ? ticket_ref(node.slot) : ResidentPool::kNullTicket;
        extents.push_back(GroupExtent{node.slot, node.depth, first,
                                      static_cast<std::uint32_t>(r), ticket});
        pending_count += static_cast<std::size_t>(r);
      } else {
        for (int i = 0; i < r; ++i) {
          ++result.stats.generated;
          Subproblem child;
          child.perm.resize(perm.size());
          write_child_perm(perm, d, static_cast<std::size_t>(i), child.perm);
          child.depth = node.depth + 1;
          pending_mat.push_back(std::move(child));
        }
        arena.release(node.slot);
        pending_count = pending_mat.size();
      }
      if (budget_exhausted()) break;
    }
    if (pending_count == 0) continue;

    // --- bounding (possibly offloaded) --------------------------------
    {
      const WallTimer bound_timer;
      if (resident) {
        // One offload iteration: parents travel as tickets (plus refill
        // permutations for non-resident ones), children are derived and
        // bounded inside the pool, bounds and child tickets come back.
        bounds.resize(pending_refs.size());
        child_tickets.assign(pending_refs.size(), ResidentPool::kNullTicket);
        rgroups.clear();
        rgroups.reserve(extents.size());
        for (const GroupExtent& e : extents) {
          ResidentGroup g;
          g.ticket = e.ticket;
          g.perm = arena.perm(e.parent);
          g.depth = e.depth;
          g.bounds = std::span<Time>(bounds).subspan(e.first, e.count);
          g.child_tickets =
              std::span<std::uint32_t>(child_tickets).subspan(e.first, e.count);
          rgroups.push_back(g);
        }
        resident->iterate(result.best_makespan, rgroups);
      } else if (sibling_mode) {
        bounds.resize(pending_refs.size());
        groups.clear();
        groups.reserve(extents.size());
        for (const GroupExtent& e : extents) {
          const auto parent_perm = arena.perm(e.parent);
          const auto depth = static_cast<std::size_t>(e.depth);
          groups.push_back(SiblingBatch{
              parent_perm.first(depth), parent_perm.subspan(depth),
              std::span<Time>(bounds).subspan(e.first, e.count)});
        }
        evaluator_->evaluate_siblings(groups);
      } else {
        evaluator_->evaluate(pending_mat);
      }
      result.stats.bounding_seconds += bound_timer.seconds();
      result.stats.evaluated += pending_count;
    }

    // --- elimination + insertion --------------------------------------
    if (sibling_mode) {
      for (std::size_t i = 0; i < pending_refs.size(); ++i) {
        NodeRef child = pending_refs[i];
        child.lb = bounds[i];
        FSBB_ASSERT(child.lb != Subproblem::kUnevaluated);
        if (resident) {
          ticket_ref(child.slot) = child_tickets[i];
          if (ticket_audit != nullptr &&
              child_tickets[i] != ResidentPool::kNullTicket) {
            ticket_audit->on_issue(child_tickets[i]);
          }
        }
        if (child.lb < result.best_makespan) {
          pool->push(std::move(child));
        } else {
          ++result.stats.pruned;
          release_node(child.slot);
        }
      }
      for (const GroupExtent& e : extents) release_node(e.parent);
    } else {
      for (Subproblem& child : pending_mat) {
        FSBB_ASSERT(child.lb != Subproblem::kUnevaluated);
        if (child.lb < result.best_makespan) {
          pool->push(NodeRef{child.lb, child.depth, arena.adopt(child)});
        } else {
          ++result.stats.pruned;
        }
      }
    }

    if (options_.control) {
      options_.control->maybe_emit_tick(result.best_makespan,
                                        result.stats.branched,
                                        result.stats.evaluated,
                                        result.stats.pruned);
    }
  }

  // The pending buffers are always drained here: the stop conditions are
  // only honoured at the top of the loop, after the previous batch was
  // inserted.
  result.proven_optimal = !stop && pool->empty();
  result.stop_reason = stop.value_or(StopReason::kOptimal);
  // The reported occupancy is the pool as the search left it (an early
  // stop reports its live nodes) — snapshot before any audit drain below.
  if (resident) result.pool = resident->shard_stats();
  if (stop && (options_.collect_pool_on_stop || arena_audit != nullptr)) {
    std::vector<NodeRef> refs = pool->drain();
    if (options_.collect_pool_on_stop) {
      result.remaining_pool.reserve(refs.size());
      for (const NodeRef& ref : refs) {
        result.remaining_pool.push_back(
            arena.materialize(ref.slot, ref.depth, ref.lb));
      }
    }
    // Release what the stop left behind, so the audits below can insist
    // on full conservation (anything still live is a genuine leak).
    for (const NodeRef& ref : refs) release_node(ref.slot);
  }
  if (arena_audit != nullptr) arena_audit->check_drained();
  if (ticket_audit != nullptr) ticket_audit->finish(resident->shard_stats());
  result.stats.wall_seconds = total_timer.seconds();
  return result;
}

}  // namespace fsbb::core
