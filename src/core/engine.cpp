#include "core/engine.h"

#include <algorithm>

#include "common/check.h"
#include "common/timer.h"
#include "fsp/makespan.h"
#include "fsp/neh.h"

namespace fsbb::core {

BBEngine::BBEngine(const fsp::Instance& inst, const fsp::LowerBoundData& data,
                   BoundEvaluator& evaluator, EngineOptions options)
    : inst_(&inst), data_(&data), evaluator_(&evaluator),
      options_(std::move(options)) {
  FSBB_CHECK_MSG(options_.batch_size >= 1, "batch_size must be >= 1");
}

SolveResult BBEngine::solve() {
  Time ub;
  std::vector<JobId> seed_perm;
  if (options_.initial_ub.has_value()) {
    ub = *options_.initial_ub;
  } else {
    fsp::NehResult neh = fsp::neh(*inst_);
    ub = neh.makespan;
    seed_perm = std::move(neh.permutation);
  }

  std::vector<Subproblem> initial;
  Subproblem root = Subproblem::root(inst_->jobs());
  evaluator_->evaluate({&root, 1});
  initial.push_back(std::move(root));

  SolveResult result = run(std::move(initial), ub);
  // The NEH schedule is the incumbent until something beats it.
  if (!seed_perm.empty() && result.best_permutation.empty()) {
    result.best_makespan = ub;
    result.best_permutation = std::move(seed_perm);
  }
  return result;
}

SolveResult BBEngine::solve_from(std::vector<Subproblem> initial,
                                 Time initial_ub) {
  for (const Subproblem& sp : initial) {
    FSBB_CHECK_MSG(sp.lb != Subproblem::kUnevaluated,
                   "solve_from requires bounded nodes");
  }
  return run(std::move(initial), initial_ub);
}

SolveResult BBEngine::run(std::vector<Subproblem> initial, Time ub) {
  const WallTimer total_timer;
  SolveResult result;
  result.stats.initial_ub = ub;
  result.best_makespan = ub;

  auto pool = make_pool(options_.strategy);
  for (Subproblem& sp : initial) {
    if (sp.lb < ub) {
      pool->push(std::move(sp));
    } else {
      ++result.stats.pruned;
    }
  }

  std::vector<Subproblem> pending;  // children awaiting the bounding operator
  pending.reserve(options_.batch_size + static_cast<std::size_t>(inst_->jobs()));

  std::optional<StopReason> stop;
  auto budget_exhausted = [&] {
    return options_.node_budget != 0 &&
           result.stats.branched >= options_.node_budget;
  };
  // Checked once per bounding batch; the engine may overrun a deadline or
  // cancellation by at most one batch.
  auto stop_reason_now = [&]() -> std::optional<StopReason> {
    if (budget_exhausted()) return StopReason::kBudget;
    if (options_.freeze_pool_size != 0 &&
        pool->size() >= options_.freeze_pool_size) {
      return StopReason::kFrozen;
    }
    if (options_.time_limit_seconds > 0 &&
        total_timer.seconds() >= options_.time_limit_seconds) {
      return StopReason::kDeadline;
    }
    if (options_.control) return options_.control->should_stop();
    return std::nullopt;
  };

  while (!pool->empty()) {
    if ((stop = stop_reason_now())) break;

    // --- selection + elimination (lazy) + branching ------------------
    pending.clear();
    while (pending.size() < options_.batch_size && !pool->empty()) {
      Subproblem node = pool->pop();
      if (node.lb >= result.best_makespan) {
        ++result.stats.pruned;  // UB improved since this node was inserted
        continue;
      }
      ++result.stats.branched;
      const int r = node.remaining();
      for (int i = 0; i < r; ++i) {
        Subproblem child = node.child(i);
        ++result.stats.generated;
        if (child.is_complete()) {
          // Leaf: its makespan is exact; no bounding needed.
          ++result.stats.leaves;
          const Time ms = fsp::makespan(*inst_, child.perm);
          if (ms < result.best_makespan) {
            result.best_makespan = ms;
            result.best_permutation = child.perm;
            ++result.stats.ub_updates;
            if (options_.control) {
              options_.control->emit_incumbent(
                  ms, child.perm, result.stats.branched,
                  result.stats.evaluated, result.stats.pruned);
            }
          }
        } else {
          pending.push_back(std::move(child));
        }
      }
      if (budget_exhausted()) break;
    }
    if (pending.empty()) continue;

    // --- bounding (possibly offloaded) --------------------------------
    {
      const WallTimer bound_timer;
      evaluator_->evaluate(pending);
      result.stats.bounding_seconds += bound_timer.seconds();
      result.stats.evaluated += pending.size();
    }

    // --- elimination + insertion --------------------------------------
    for (Subproblem& child : pending) {
      FSBB_ASSERT(child.lb != Subproblem::kUnevaluated);
      if (child.lb < result.best_makespan) {
        pool->push(std::move(child));
      } else {
        ++result.stats.pruned;
      }
    }
    pending.clear();

    if (options_.control) {
      options_.control->maybe_emit_tick(result.best_makespan,
                                        result.stats.branched,
                                        result.stats.evaluated,
                                        result.stats.pruned);
    }
  }

  // `pending` is always empty here: the stop conditions are only honoured at
  // the top of the loop, after the previous batch was inserted.
  result.proven_optimal = !stop && pool->empty();
  result.stop_reason = stop.value_or(StopReason::kOptimal);
  if (stop && options_.collect_pool_on_stop) {
    result.remaining_pool = pool->drain();
  }
  result.stats.wall_seconds = total_timer.seconds();
  return result;
}

}  // namespace fsbb::core
