#include "core/pool.h"

namespace fsbb::core {

const char* to_string(SelectionStrategy s) {
  switch (s) {
    case SelectionStrategy::kDepthFirst:
      return "depth-first";
    case SelectionStrategy::kBestFirst:
      return "best-first";
  }
  return "?";
}

}  // namespace fsbb::core
