#include "core/pool.h"

#include <algorithm>

#include "common/check.h"

namespace fsbb::core {

const char* to_string(SelectionStrategy s) {
  switch (s) {
    case SelectionStrategy::kDepthFirst:
      return "depth-first";
    case SelectionStrategy::kBestFirst:
      return "best-first";
  }
  return "?";
}

namespace {

class DfsPool final : public Pool {
 public:
  void push(Subproblem&& sp) override { stack_.push_back(std::move(sp)); }

  Subproblem pop() override {
    FSBB_CHECK(!stack_.empty());
    Subproblem sp = std::move(stack_.back());
    stack_.pop_back();
    return sp;
  }

  std::size_t size() const override { return stack_.size(); }

  std::vector<Subproblem> drain() override {
    std::vector<Subproblem> out;
    out.swap(stack_);
    return out;
  }

 private:
  std::vector<Subproblem> stack_;
};

// Entry with an insertion sequence number for deterministic tie-breaking.
struct BestFirstEntry {
  Subproblem sp;
  std::uint64_t seq;
};

// Max-heap comparator that makes the *best* node the heap top: smaller lb
// wins, then larger depth (dive toward leaves), then earlier insertion.
struct WorseThan {
  bool operator()(const BestFirstEntry& a, const BestFirstEntry& b) const {
    if (a.sp.lb != b.sp.lb) return a.sp.lb > b.sp.lb;
    if (a.sp.depth != b.sp.depth) return a.sp.depth < b.sp.depth;
    return a.seq > b.seq;
  }
};

class BestFirstPool final : public Pool {
 public:
  void push(Subproblem&& sp) override {
    heap_.push_back(BestFirstEntry{std::move(sp), next_seq_++});
    std::push_heap(heap_.begin(), heap_.end(), WorseThan{});
  }

  Subproblem pop() override {
    FSBB_CHECK(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), WorseThan{});
    Subproblem sp = std::move(heap_.back().sp);
    heap_.pop_back();
    return sp;
  }

  std::size_t size() const override { return heap_.size(); }

  std::vector<Subproblem> drain() override {
    // Deterministic order: repeatedly pop the best.
    std::vector<Subproblem> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) out.push_back(pop());
    return out;
  }

 private:
  std::vector<BestFirstEntry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace

std::unique_ptr<Pool> make_pool(SelectionStrategy strategy) {
  switch (strategy) {
    case SelectionStrategy::kDepthFirst:
      return std::make_unique<DfsPool>();
    case SelectionStrategy::kBestFirst:
      return std::make_unique<BestFirstPool>();
  }
  FSBB_CHECK_MSG(false, "unknown selection strategy");
  return nullptr;
}

}  // namespace fsbb::core
