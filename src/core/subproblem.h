// Branch-and-bound node for the permutation flow-shop.
//
// A node is a complete permutation whose first `depth` entries are the fixed
// scheduled prefix; the remainder is the free-job set in an arbitrary order.
// Branching swaps each free job into position `depth` (the classic
// decomposition of paper Fig. 1: child i schedules job i next).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "fsp/instance.h"

namespace fsbb::core {

using fsp::JobId;
using fsp::Time;

/// One sub-problem (tree node).
struct Subproblem {
  /// Sentinel: the node has not been through the bounding operator yet.
  static constexpr Time kUnevaluated = -1;

  std::vector<JobId> perm;  ///< full permutation; [0, depth) is fixed
  std::int32_t depth = 0;   ///< number of scheduled jobs
  Time lb = kUnevaluated;   ///< lower bound on any completion of the prefix

  /// The root node: empty prefix over n jobs (identity free order).
  static Subproblem root(int jobs);

  int jobs() const { return static_cast<int>(perm.size()); }
  int remaining() const { return jobs() - depth; }
  bool is_complete() const { return depth == jobs(); }

  std::span<const JobId> prefix() const {
    return {perm.data(), static_cast<std::size_t>(depth)};
  }
  std::span<const JobId> free_jobs() const {
    return {perm.data() + depth, static_cast<std::size_t>(jobs() - depth)};
  }

  /// Child that schedules free_jobs()[i] next. The free-job order of the
  /// child is the parent's with one swap (write_child_perm) — deterministic.
  Subproblem child(int i) const;
};

/// The branching rule, single-sourced: child i of a node at `depth` is the
/// parent's permutation with positions depth and depth+i swapped. Every
/// expansion site (the serial engine, the mtbb engines, the evaluator
/// fallback) must write children with this exact rule — the cross-backend
/// bit-identity the differential-fuzz suite pins depends on it.
inline void write_child_perm(std::span<const JobId> parent_perm,
                             std::size_t depth, std::size_t i,
                             std::span<JobId> out) {
  FSBB_ASSERT(out.size() == parent_perm.size());
  FSBB_ASSERT(depth + i < parent_perm.size());
  std::copy(parent_perm.begin(), parent_perm.end(), out.begin());
  std::swap(out[depth], out[depth + i]);
}

inline Subproblem Subproblem::root(int jobs) {
  FSBB_CHECK(jobs >= 1);
  Subproblem r;
  r.perm.resize(static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) r.perm[static_cast<std::size_t>(j)] = static_cast<JobId>(j);
  r.depth = 0;
  return r;
}

inline Subproblem Subproblem::child(int i) const {
  FSBB_ASSERT(i >= 0 && i < remaining());
  Subproblem c;
  c.perm.resize(perm.size());
  write_child_perm(perm, static_cast<std::size_t>(depth),
                   static_cast<std::size_t>(i), c.perm);
  c.depth = depth + 1;
  c.lb = kUnevaluated;
  return c;
}

}  // namespace fsbb::core
