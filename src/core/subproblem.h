// Branch-and-bound node for the permutation flow-shop.
//
// A node is a complete permutation whose first `depth` entries are the fixed
// scheduled prefix; the remainder is the free-job set in an arbitrary order.
// Branching swaps each free job into position `depth` (the classic
// decomposition of paper Fig. 1: child i schedules job i next).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "fsp/instance.h"

namespace fsbb::core {

using fsp::JobId;
using fsp::Time;

/// One sub-problem (tree node).
struct Subproblem {
  /// Sentinel: the node has not been through the bounding operator yet.
  static constexpr Time kUnevaluated = -1;

  std::vector<JobId> perm;  ///< full permutation; [0, depth) is fixed
  std::int32_t depth = 0;   ///< number of scheduled jobs
  Time lb = kUnevaluated;   ///< lower bound on any completion of the prefix

  /// The root node: empty prefix over n jobs (identity free order).
  static Subproblem root(int jobs);

  int jobs() const { return static_cast<int>(perm.size()); }
  int remaining() const { return jobs() - depth; }
  bool is_complete() const { return depth == jobs(); }

  std::span<const JobId> prefix() const {
    return {perm.data(), static_cast<std::size_t>(depth)};
  }
  std::span<const JobId> free_jobs() const {
    return {perm.data() + depth, static_cast<std::size_t>(jobs() - depth)};
  }

  /// Child that schedules free_jobs()[i] next. The free-job order of the
  /// child is the parent's with one swap — deterministic.
  Subproblem child(int i) const {
    FSBB_ASSERT(i >= 0 && i < remaining());
    Subproblem c;
    c.perm = perm;
    std::swap(c.perm[static_cast<std::size_t>(depth)],
              c.perm[static_cast<std::size_t>(depth + i)]);
    c.depth = depth + 1;
    c.lb = kUnevaluated;
    return c;
  }
};

inline Subproblem Subproblem::root(int jobs) {
  FSBB_CHECK(jobs >= 1);
  Subproblem r;
  r.perm.resize(static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) r.perm[static_cast<std::size_t>(j)] = static_cast<JobId>(j);
  r.depth = 0;
  return r;
}

}  // namespace fsbb::core
