// Flat node storage for the branch-and-bound engines.
//
// Every live sub-problem's permutation lives in one fixed-stride slab
// (jobs() entries per slot), so expanding a node is a memcpy into
// preallocated storage and pools/deques move small POD handles instead of
// heap-owning std::vector<JobId> nodes. This is the host-side analogue of
// the paper's packed device pools, and what Gmys (2020) and Chakroun &
// Melab rely on for their node rates: no allocator traffic on the hot
// path, and node data that stays cache-resident.
//
// Storage is chunked (kChunkNodes slots per slab) with stable addresses:
// growing never moves existing permutations, so spans handed out for a
// handle stay valid until that handle is released. Allocation is sharded
// into `lanes` — one per worker thread plus one for the coordinating
// thread — each with a private freelist and a private bump range, so the
// concurrent engines allocate and release without locking; only carving a
// fresh chunk out of the global slab list takes the (rare) mutex.
//
// Thread contract: lane i must only be used by one thread at a time. A
// handle may be released on any lane (freed slots simply join the
// releasing worker's lane). Reading perm(h) of a handle received through
// a synchronizing structure (pool mutex, deque mutex, atomic) is safe:
// the chunk pointer was published before the handle ever escaped.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "core/subproblem.h"
#include "fsp/instance.h"

namespace fsbb::core {

namespace audit {
class ArenaAudit;
}  // namespace audit

class NodeArena {
 public:
  /// Slot index. 32 bits cover every pool any engine here can hold.
  using Handle = std::uint32_t;
  static constexpr Handle kNull = 0xFFFFFFFFu;

  static constexpr std::size_t kChunkNodes = 4096;
  static constexpr std::size_t kMaxChunks = 1u << 16;  // ~268M slots

  /// `lanes` = number of threads that will allocate/release concurrently.
  explicit NodeArena(int jobs, std::size_t lanes = 1);

  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  int jobs() const { return jobs_; }
  std::size_t lanes() const { return lanes_.size(); }

  /// Slot with uninitialized permutation storage.
  Handle allocate(std::size_t lane = 0);

  /// Returns the slot to `lane`'s freelist. The handle's spans die here.
  void release(Handle h, std::size_t lane = 0);

  std::span<fsp::JobId> perm(Handle h) {
    return {slab_for(h), static_cast<std::size_t>(jobs_)};
  }
  std::span<const fsp::JobId> perm(Handle h) const {
    return {slab_for(h), static_cast<std::size_t>(jobs_)};
  }

  /// Copies a value node into the arena (the frozen-pool/solve_from seam).
  Handle adopt(const Subproblem& sp, std::size_t lane = 0);

  /// Materializes a handle back into a value node (does NOT release).
  Subproblem materialize(Handle h, std::int32_t depth, fsp::Time lb) const;

  /// Live slots across every lane. Coordinating-thread only (racy while
  /// workers run); the leak tests call it after the gang joined.
  std::size_t live() const;

  /// Attaches a lifecycle auditor (core/audit.h): every allocate/release
  /// is mirrored into it. nullptr detaches. Set before workers start;
  /// the pointer itself is not synchronized.
  void set_audit(audit::ArenaAudit* audit) { audit_ = audit; }

 private:
  struct Lane {
    std::vector<Handle> free;
    Handle bump_next = 0;
    Handle bump_end = 0;  // exclusive; == bump_next when the range is dry
    std::uint64_t allocated = 0;
    std::uint64_t released = 0;
    // Workers on separate cache lines; the hot fields are all above.
    char pad[64];
  };

  /// Two-level chunk directory: a fixed 256-entry top level (a few KB,
  /// paid per arena) pointing at on-demand 256-entry leaves. Both levels
  /// are fixed-capacity, so readers never race a reallocation; leaf and
  /// slab pointers are published under grow_mu_ before any handle in
  /// them escapes.
  static constexpr std::size_t kLeafChunks = 256;
  static constexpr std::size_t kTopEntries = kMaxChunks / kLeafChunks;

  struct Leaf {
    std::unique_ptr<fsp::JobId[]> slabs[kLeafChunks];
  };

  fsp::JobId* slab_for(Handle h) const {
    FSBB_ASSERT(h != kNull);
    const std::size_t chunk = h / kChunkNodes;
    const std::size_t slot = h % kChunkNodes;
    const Leaf* leaf = top_[chunk / kLeafChunks].get();
    FSBB_ASSERT(leaf != nullptr);
    fsp::JobId* slab = leaf->slabs[chunk % kLeafChunks].get();
    FSBB_ASSERT(slab != nullptr);
    return slab + slot * static_cast<std::size_t>(jobs_);
  }

  void refill_bump_range(Lane& lane);

  int jobs_;
  std::vector<std::unique_ptr<Leaf>> top_;
  std::vector<Lane> lanes_;
  Mutex grow_mu_;
  std::size_t chunks_used_ FSBB_GUARDED_BY(grow_mu_) = 0;
  audit::ArenaAudit* audit_ = nullptr;
};

/// A pooled node: the lower bound and depth ride along so selection
/// (best-first ordering, lazy pruning) never dereferences the arena, and
/// the permutation is a 4-byte slot index instead of an owning vector.
struct NodeRef {
  fsp::Time lb = Subproblem::kUnevaluated;
  std::int32_t depth = 0;
  NodeArena::Handle slot = NodeArena::kNull;
};

}  // namespace fsbb::core
