// The frozen-pool experimental protocol (paper §IV, after [Mezmaz et al.,
// IPDPS'07]).
//
// Hard Taillard instances cannot be solved to optimality in a benchmark
// run, so the paper measures all competitors on the *same* frozen list L of
// active sub-problems: a serial best-first B&B runs until its pool reaches
// a target size, then the pool is snapshot together with the incumbent.
// Every backend then explores exactly L (same node set, same incumbent),
// making T_serial / T_backend a meaningful parallel efficiency.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/engine.h"
#include "core/evaluator.h"
#include "core/subproblem.h"
#include "fsp/instance.h"
#include "fsp/lb_data.h"

namespace fsbb::core {

/// A reproducible exploration workload.
struct FrozenPool {
  std::vector<Subproblem> nodes;  ///< bounded, deterministic order
  Time incumbent = 0;             ///< UB at freeze time
  EngineStats generation_stats;   ///< work done to produce the snapshot
};

/// Runs a serial best-first B&B until the live pool holds at least
/// `target_nodes` nodes, then freezes it. The incumbent defaults to NEH;
/// tests pass a weaker bound to force branching on easy instances. Throws
/// if the instance is solved before the pool ever reaches the target
/// (pick a smaller target or a weaker incumbent).
FrozenPool freeze_pool(const fsp::Instance& inst,
                       const fsp::LowerBoundData& data,
                       std::size_t target_nodes,
                       std::optional<Time> initial_ub = std::nullopt);

/// Explores a frozen pool to completion (or node_budget) with the given
/// evaluator/batch size. Identical `frozen` inputs yield identical node
/// counts for any evaluator — the determinism tests rely on it.
SolveResult explore_frozen(const fsp::Instance& inst,
                           const fsp::LowerBoundData& data,
                           const FrozenPool& frozen, BoundEvaluator& evaluator,
                           SelectionStrategy strategy, std::size_t batch_size,
                           std::uint64_t node_budget = 0);

}  // namespace fsbb::core
