#include "core/evaluator.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/timer.h"
#include "fsp/makespan.h"

namespace fsbb::core {

void BoundEvaluator::evaluate_siblings(std::span<const SiblingBatch> groups) {
  // Fallback: materialize every child exactly as Subproblem::child() would
  // (prefix ++ free jobs, one swap) and route the flat batch through
  // evaluate(), so evaluators unaware of sibling structure — callback
  // bounds, the simulated GPU — behave byte-for-byte as before.
  std::vector<JobId> parent_perm;
  std::vector<Subproblem> children;
  for (const SiblingBatch& g : groups) {
    FSBB_CHECK(g.bounds.size() == g.next_jobs.size());
    // prefix ++ free jobs IS the parent's full permutation (see the
    // SiblingBatch contract), so child i follows the shared branch rule.
    parent_perm.assign(g.parent_prefix.begin(), g.parent_prefix.end());
    parent_perm.insert(parent_perm.end(), g.next_jobs.begin(),
                       g.next_jobs.end());
    children.clear();
    children.reserve(g.next_jobs.size());
    const auto depth = static_cast<std::int32_t>(g.parent_prefix.size());
    for (std::size_t i = 0; i < g.next_jobs.size(); ++i) {
      Subproblem child;
      child.perm.resize(parent_perm.size());
      write_child_perm(parent_perm, static_cast<std::size_t>(depth), i,
                       child.perm);
      child.depth = depth + 1;
      children.push_back(std::move(child));
    }
    evaluate(children);
    for (std::size_t i = 0; i < children.size(); ++i) {
      g.bounds[i] = children[i].lb;
    }
  }
}

SerialCpuEvaluator::SerialCpuEvaluator(const fsp::Instance& inst,
                                       const fsp::LowerBoundData& data)
    : inst_(&inst), data_(&data), scratch_(inst.jobs(), inst.machines()),
      context_(inst, data) {}

SerialCpuEvaluator::SerialCpuEvaluator(const fsp::Instance& inst,
                                       const fsp::LowerBoundData& data,
                                       fsp::Lb2Data lb2)
    : SerialCpuEvaluator(inst, data) {
  lb2_.emplace(std::move(lb2));
  lb2_scratch_.emplace(inst.jobs(), inst.machines());
  lb2_context_.emplace(inst, data, *lb2_);
}

void SerialCpuEvaluator::evaluate(std::span<Subproblem> batch) {
  const WallTimer timer;
  for (Subproblem& sp : batch) {
    sp.lb = lb2_ ? fsp::lb2_from_prefix(*inst_, *data_, *lb2_, sp.prefix(),
                                        *lb2_scratch_)
                 : fsp::lb1_from_prefix(*inst_, *data_, sp.prefix(), scratch_);
  }
  ++ledger_.batches;
  ledger_.nodes += batch.size();
  ledger_.wall_seconds += timer.seconds();
}

void SerialCpuEvaluator::evaluate_siblings(
    std::span<const SiblingBatch> groups) {
  const WallTimer timer;
  std::size_t nodes = 0;
  auto bound_groups = [&](auto& ctx) {
    for (const SiblingBatch& g : groups) {
      FSBB_CHECK(g.bounds.size() == g.next_jobs.size());
      ctx.set_parent(g.parent_prefix);
      for (std::size_t i = 0; i < g.next_jobs.size(); ++i) {
        g.bounds[i] = ctx.bound_child(g.next_jobs[i]);
      }
      nodes += g.next_jobs.size();
    }
  };
  if (lb2_context_) {
    bound_groups(*lb2_context_);
  } else {
    bound_groups(context_);
  }
  ++ledger_.batches;
  ledger_.nodes += nodes;
  ledger_.wall_seconds += timer.seconds();
}

ThreadedCpuEvaluator::ThreadedCpuEvaluator(const fsp::Instance& inst,
                                           const fsp::LowerBoundData& data,
                                           std::size_t threads)
    : inst_(&inst), data_(&data), pool_(threads) {
  // Per-worker scratch/context, built once: evaluate() used to reallocate
  // these vectors on every batch, which showed up in the bounding profile.
  scratch_.reserve(pool_.thread_count() + 1);
  contexts_.reserve(pool_.thread_count() + 1);
  for (std::size_t i = 0; i <= pool_.thread_count(); ++i) {
    scratch_.emplace_back(inst.jobs(), inst.machines());
    contexts_.emplace_back(inst, data);
  }
}

ThreadedCpuEvaluator::ThreadedCpuEvaluator(const fsp::Instance& inst,
                                           const fsp::LowerBoundData& data,
                                           fsp::Lb2Data lb2,
                                           std::size_t threads)
    : inst_(&inst), data_(&data), pool_(threads) {
  lb2_.emplace(std::move(lb2));
  lb2_scratch_.reserve(pool_.thread_count() + 1);
  lb2_contexts_.reserve(pool_.thread_count() + 1);
  for (std::size_t i = 0; i <= pool_.thread_count(); ++i) {
    lb2_scratch_.emplace_back(inst.jobs(), inst.machines());
    lb2_contexts_.emplace_back(inst, data, *lb2_);
  }
}

std::string ThreadedCpuEvaluator::name() const {
  // Deliberately excludes the thread count: bounds are bit-identical for
  // any pool size, and reports/golden tests must not vary by machine.
  // threads() still exposes the actual pool size.
  return lb2_ ? "lb2-threads" : "cpu-threads";
}

void ThreadedCpuEvaluator::evaluate(std::span<Subproblem> batch) {
  const WallTimer timer;
  pool_.parallel_for(
      0, batch.size(),
      [&](std::size_t lo, std::size_t hi, std::size_t worker) {
        for (std::size_t i = lo; i < hi; ++i) {
          batch[i].lb =
              lb2_ ? fsp::lb2_from_prefix(*inst_, *data_, *lb2_,
                                          batch[i].prefix(),
                                          lb2_scratch_[worker])
                   : fsp::lb1_from_prefix(*inst_, *data_, batch[i].prefix(),
                                          scratch_[worker]);
        }
      });
  ++ledger_.batches;
  ledger_.nodes += batch.size();
  ledger_.wall_seconds += timer.seconds();
}

void ThreadedCpuEvaluator::evaluate_siblings(
    std::span<const SiblingBatch> groups) {
  const WallTimer timer;
  std::size_t nodes = 0;
  for (const SiblingBatch& g : groups) {
    FSBB_CHECK(g.bounds.size() == g.next_jobs.size());
    nodes += g.next_jobs.size();
  }
  auto bound_group = [](auto& ctx, const SiblingBatch& g) {
    ctx.set_parent(g.parent_prefix);
    for (std::size_t i = 0; i < g.next_jobs.size(); ++i) {
      g.bounds[i] = ctx.bound_child(g.next_jobs[i]);
    }
  };
  pool_.parallel_for(
      0, groups.size(),
      [&](std::size_t lo, std::size_t hi, std::size_t worker) {
        for (std::size_t gi = lo; gi < hi; ++gi) {
          if (lb2_) {
            bound_group(lb2_contexts_[worker], groups[gi]);
          } else {
            bound_group(contexts_[worker], groups[gi]);
          }
        }
      },
      // One chunk per group: chunks are claimed dynamically, so uneven
      // group sizes still balance across the pool.
      groups.size());
  ++ledger_.batches;
  ledger_.nodes += nodes;
  ledger_.wall_seconds += timer.seconds();
}

}  // namespace fsbb::core
