#include "core/evaluator.h"

#include <vector>

#include "common/timer.h"
#include "fsp/makespan.h"

namespace fsbb::core {

SerialCpuEvaluator::SerialCpuEvaluator(const fsp::Instance& inst,
                                       const fsp::LowerBoundData& data)
    : inst_(&inst), data_(&data), scratch_(inst.jobs(), inst.machines()) {}

void SerialCpuEvaluator::evaluate(std::span<Subproblem> batch) {
  const WallTimer timer;
  for (Subproblem& sp : batch) {
    sp.lb = fsp::lb1_from_prefix(*inst_, *data_, sp.prefix(), scratch_);
  }
  ++ledger_.batches;
  ledger_.nodes += batch.size();
  ledger_.wall_seconds += timer.seconds();
}

ThreadedCpuEvaluator::ThreadedCpuEvaluator(const fsp::Instance& inst,
                                           const fsp::LowerBoundData& data,
                                           std::size_t threads)
    : inst_(&inst), data_(&data), pool_(threads) {}

std::string ThreadedCpuEvaluator::name() const {
  // Deliberately excludes the thread count: bounds are bit-identical for
  // any pool size, and reports/golden tests must not vary by machine.
  // threads() still exposes the actual pool size.
  return "cpu-threads";
}

void ThreadedCpuEvaluator::evaluate(std::span<Subproblem> batch) {
  const WallTimer timer;
  // Per-worker scratch: worker_index may also be thread_count() (caller).
  std::vector<fsp::Lb1Scratch> scratch;
  scratch.reserve(pool_.thread_count() + 1);
  for (std::size_t i = 0; i <= pool_.thread_count(); ++i) {
    scratch.emplace_back(inst_->jobs(), inst_->machines());
  }
  pool_.parallel_for(
      0, batch.size(),
      [&](std::size_t lo, std::size_t hi, std::size_t worker) {
        for (std::size_t i = lo; i < hi; ++i) {
          batch[i].lb = fsp::lb1_from_prefix(*inst_, *data_, batch[i].prefix(),
                                             scratch[worker]);
        }
      });
  ++ledger_.batches;
  ledger_.nodes += batch.size();
  ledger_.wall_seconds += timer.seconds();
}

}  // namespace fsbb::core
