#include "core/evaluator.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/timer.h"
#include "fsp/makespan.h"

namespace fsbb::core {

void BoundEvaluator::evaluate_siblings(std::span<const SiblingBatch> groups) {
  // Fallback: materialize every child exactly as Subproblem::child() would
  // (prefix ++ free jobs, one swap) and route the flat batch through
  // evaluate(), so evaluators unaware of sibling structure — callback
  // bounds, the simulated GPU — behave byte-for-byte as before.
  std::vector<JobId> parent_perm;
  std::vector<Subproblem> children;
  for (const SiblingBatch& g : groups) {
    FSBB_CHECK(g.bounds.size() == g.next_jobs.size());
    // prefix ++ free jobs IS the parent's full permutation (see the
    // SiblingBatch contract), so child i follows the shared branch rule.
    parent_perm.assign(g.parent_prefix.begin(), g.parent_prefix.end());
    parent_perm.insert(parent_perm.end(), g.next_jobs.begin(),
                       g.next_jobs.end());
    children.clear();
    children.reserve(g.next_jobs.size());
    const auto depth = static_cast<std::int32_t>(g.parent_prefix.size());
    for (std::size_t i = 0; i < g.next_jobs.size(); ++i) {
      Subproblem child;
      child.perm.resize(parent_perm.size());
      write_child_perm(parent_perm, static_cast<std::size_t>(depth), i,
                       child.perm);
      child.depth = depth + 1;
      children.push_back(std::move(child));
    }
    evaluate(children);
    for (std::size_t i = 0; i < children.size(); ++i) {
      g.bounds[i] = children[i].lb;
    }
  }
}

SerialCpuEvaluator::SerialCpuEvaluator(const fsp::Instance& inst,
                                       const fsp::LowerBoundData& data)
    : inst_(&inst), data_(&data), scratch_(inst.jobs(), inst.machines()),
      context_(inst, data) {}

void SerialCpuEvaluator::evaluate(std::span<Subproblem> batch) {
  const WallTimer timer;
  for (Subproblem& sp : batch) {
    sp.lb = fsp::lb1_from_prefix(*inst_, *data_, sp.prefix(), scratch_);
  }
  ++ledger_.batches;
  ledger_.nodes += batch.size();
  ledger_.wall_seconds += timer.seconds();
}

void SerialCpuEvaluator::evaluate_siblings(
    std::span<const SiblingBatch> groups) {
  const WallTimer timer;
  std::size_t nodes = 0;
  for (const SiblingBatch& g : groups) {
    FSBB_CHECK(g.bounds.size() == g.next_jobs.size());
    context_.set_parent(g.parent_prefix);
    for (std::size_t i = 0; i < g.next_jobs.size(); ++i) {
      g.bounds[i] = context_.bound_child(g.next_jobs[i]);
    }
    nodes += g.next_jobs.size();
  }
  ++ledger_.batches;
  ledger_.nodes += nodes;
  ledger_.wall_seconds += timer.seconds();
}

ThreadedCpuEvaluator::ThreadedCpuEvaluator(const fsp::Instance& inst,
                                           const fsp::LowerBoundData& data,
                                           std::size_t threads)
    : inst_(&inst), data_(&data), pool_(threads) {
  // Per-worker scratch/context, built once: evaluate() used to reallocate
  // these vectors on every batch, which showed up in the bounding profile.
  scratch_.reserve(pool_.thread_count() + 1);
  contexts_.reserve(pool_.thread_count() + 1);
  for (std::size_t i = 0; i <= pool_.thread_count(); ++i) {
    scratch_.emplace_back(inst.jobs(), inst.machines());
    contexts_.emplace_back(inst, data);
  }
}

std::string ThreadedCpuEvaluator::name() const {
  // Deliberately excludes the thread count: bounds are bit-identical for
  // any pool size, and reports/golden tests must not vary by machine.
  // threads() still exposes the actual pool size.
  return "cpu-threads";
}

void ThreadedCpuEvaluator::evaluate(std::span<Subproblem> batch) {
  const WallTimer timer;
  pool_.parallel_for(
      0, batch.size(),
      [&](std::size_t lo, std::size_t hi, std::size_t worker) {
        for (std::size_t i = lo; i < hi; ++i) {
          batch[i].lb = fsp::lb1_from_prefix(*inst_, *data_, batch[i].prefix(),
                                             scratch_[worker]);
        }
      });
  ++ledger_.batches;
  ledger_.nodes += batch.size();
  ledger_.wall_seconds += timer.seconds();
}

void ThreadedCpuEvaluator::evaluate_siblings(
    std::span<const SiblingBatch> groups) {
  const WallTimer timer;
  std::size_t nodes = 0;
  for (const SiblingBatch& g : groups) {
    FSBB_CHECK(g.bounds.size() == g.next_jobs.size());
    nodes += g.next_jobs.size();
  }
  pool_.parallel_for(
      0, groups.size(),
      [&](std::size_t lo, std::size_t hi, std::size_t worker) {
        fsp::Lb1BoundContext& ctx = contexts_[worker];
        for (std::size_t gi = lo; gi < hi; ++gi) {
          const SiblingBatch& g = groups[gi];
          ctx.set_parent(g.parent_prefix);
          for (std::size_t i = 0; i < g.next_jobs.size(); ++i) {
            g.bounds[i] = ctx.bound_child(g.next_jobs[i]);
          }
        }
      },
      // One chunk per group: chunks are claimed dynamically, so uneven
      // group sizes still balance across the pool.
      groups.size());
  ++ledger_.batches;
  ledger_.nodes += nodes;
  ledger_.wall_seconds += timer.seconds();
}

}  // namespace fsbb::core
