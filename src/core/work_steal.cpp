#include "core/work_steal.h"

#include "common/check.h"

namespace fsbb::core {

const char* to_string(VictimOrder order) {
  switch (order) {
    case VictimOrder::kRoundRobin:
      return "round-robin";
    case VictimOrder::kRandom:
      return "random";
  }
  return "?";
}

VictimOrder parse_victim_order(const std::string& text) {
  if (text == "round-robin") return VictimOrder::kRoundRobin;
  if (text == "random") return VictimOrder::kRandom;
  FSBB_CHECK_MSG(false,
                 "unknown victim order '" + text + "' (round-robin|random)");
  return VictimOrder::kRoundRobin;
}

const char* to_string(DequeKind kind) {
  switch (kind) {
    case DequeKind::kMutex:
      return "mutex";
    case DequeKind::kChaseLev:
      return "chase-lev";
  }
  return "?";
}

DequeKind parse_deque_kind(const std::string& text) {
  if (text == "mutex") return DequeKind::kMutex;
  if (text == "chase-lev") return DequeKind::kChaseLev;
  FSBB_CHECK_MSG(false,
                 "unknown deque kind '" + text + "' (mutex|chase-lev)");
  return DequeKind::kMutex;
}

}  // namespace fsbb::core
