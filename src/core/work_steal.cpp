#include "core/work_steal.h"

#include <utility>

#include "common/check.h"

namespace fsbb::core {

const char* to_string(VictimOrder order) {
  switch (order) {
    case VictimOrder::kRoundRobin:
      return "round-robin";
    case VictimOrder::kRandom:
      return "random";
  }
  return "?";
}

VictimOrder parse_victim_order(const std::string& text) {
  if (text == "round-robin") return VictimOrder::kRoundRobin;
  if (text == "random") return VictimOrder::kRandom;
  FSBB_CHECK_MSG(false,
                 "unknown victim order '" + text + "' (round-robin|random)");
  return VictimOrder::kRoundRobin;
}

void WorkStealingDeque::push(Subproblem&& sp) {
  const std::lock_guard<std::mutex> lock(mu_);
  items_.push_back(std::move(sp));
}

std::optional<Subproblem> WorkStealingDeque::pop() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (items_.empty()) return std::nullopt;
  Subproblem sp = std::move(items_.back());
  items_.pop_back();
  return sp;
}

std::size_t WorkStealingDeque::steal(std::vector<Subproblem>& out,
                                     std::size_t max_nodes) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t taken = 0;
  while (taken < max_nodes && !items_.empty()) {
    out.push_back(std::move(items_.front()));
    items_.pop_front();
    ++taken;
  }
  return taken;
}

std::size_t WorkStealingDeque::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

std::vector<Subproblem> WorkStealingDeque::drain() {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Subproblem> out;
  out.reserve(items_.size());
  for (Subproblem& sp : items_) out.push_back(std::move(sp));
  items_.clear();
  return out;
}

ShardedPool::ShardedPool(std::size_t shards) {
  FSBB_CHECK_MSG(shards >= 1, "sharded pool needs at least one shard");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<WorkStealingDeque>());
  }
}

void ShardedPool::distribute(std::vector<Subproblem> nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    shards_[i % shards_.size()]->push(std::move(nodes[i]));
  }
}

std::size_t ShardedPool::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

std::vector<Subproblem> ShardedPool::drain() {
  std::vector<Subproblem> out;
  for (const auto& shard : shards_) {
    std::vector<Subproblem> part = shard->drain();
    for (Subproblem& sp : part) out.push_back(std::move(sp));
  }
  return out;
}

}  // namespace fsbb::core
