#include "core/cost_model.h"

#include <bit>

namespace fsbb::core {

double CpuCostModel::pool_op_seconds(std::size_t pool_size) const {
  const auto log2_size =
      static_cast<double>(std::bit_width(pool_size | std::size_t{1}));
  return params_.pool_op_base_seconds + params_.pool_op_log_seconds * log2_size;
}

}  // namespace fsbb::core
