// Frozen-pool serialization: save the §IV experimental workload (node list
// + incumbent) to a text file and reload it bit-identically, so the exact
// node set of a benchmark run can be archived and replayed across
// processes and machines — the reproducibility backbone of the protocol.
//
// Format (line-oriented, whitespace-separated):
//   fsbb-frozen-pool 1          header + version
//   <jobs> <node_count> <incumbent>
//   <depth> <perm[0]> ... <perm[n-1]>      one line per node (lb last)
//   ... where each node line ends with its lower bound.
#pragma once

#include <iosfwd>
#include <string>

#include "core/protocol.h"

namespace fsbb::core {

/// Writes a frozen pool. `jobs` is taken from the first node (the pool
/// must be non-empty and homogeneous).
void write_frozen_pool(std::ostream& out, const FrozenPool& pool);
void write_frozen_pool_file(const std::string& path, const FrozenPool& pool);

/// Reads a frozen pool; validates the header, permutation integrity and
/// bounds. Throws CheckFailure on malformed input.
FrozenPool read_frozen_pool(std::istream& in);
FrozenPool read_frozen_pool_file(const std::string& path);

}  // namespace fsbb::core
