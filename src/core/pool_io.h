// Frozen-pool serialization: save the §IV experimental workload (node list
// + incumbent) to a text file and reload it bit-identically, so the exact
// node set of a benchmark run can be archived and replayed across
// processes and machines — the reproducibility backbone of the protocol.
// The same text format is the distributed wire format: dist/ ships
// sub-pools to worker processes and checkpoints them back as one escaped
// JSON string each (see write_frozen_pool_string).
//
// Format (line-oriented, whitespace-separated):
//   fsbb-frozen-pool 1          header + version
//   <jobs> <node_count> <incumbent>
//   <depth> <perm[0]> ... <perm[n-1]>      one line per node (lb last)
//   ... where each node line ends with its lower bound.
//
// Read errors throw CheckFailure naming the source and the 1-based line,
// e.g. `read_frozen_pool("pool.txt", line 37): corrupt permutation`, so a
// corrupt checkpoint is diagnosable from the message alone.
#pragma once

#include <iosfwd>
#include <string>

#include "core/protocol.h"

namespace fsbb::core {

/// Writes a frozen pool. `jobs` is taken from the first node (the pool
/// must be non-empty and homogeneous); an empty pool throws CheckFailure.
void write_frozen_pool(std::ostream& out, const FrozenPool& pool);
void write_frozen_pool_file(const std::string& path, const FrozenPool& pool);

/// The pool as one in-memory string — the distributed transport embeds it
/// in NDJSON messages (newlines survive JSON string escaping).
std::string write_frozen_pool_string(const FrozenPool& pool);

/// Reads a frozen pool; validates the header, permutation integrity and
/// bounds. Throws CheckFailure naming `source` and the offending 1-based
/// line on malformed input. Tolerates CRLF line endings.
FrozenPool read_frozen_pool(std::istream& in,
                            const std::string& source = "<stream>");
FrozenPool read_frozen_pool_file(const std::string& path);
FrozenPool read_frozen_pool_string(const std::string& text,
                                   const std::string& source = "<string>");

}  // namespace fsbb::core
