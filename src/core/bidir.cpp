#include "core/bidir.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "common/timer.h"
#include "fsp/lb1.h"
#include "fsp/makespan.h"
#include "fsp/neh.h"

namespace fsbb::core {
namespace {

/// Machine "backs": B[k] = minimal span between the start of the suffix's
/// processing on machine k and the end of the whole schedule. Computed as
/// machine fronts of the suffix reversed in both job order and machine
/// order, then re-indexed.
void compute_backs(const fsp::Instance& inst, const BidirNode& node,
                   std::span<fsp::Time> backs, std::span<fsp::Time> rev) {
  const int m = inst.machines();
  const int n = node.jobs();
  FSBB_ASSERT(backs.size() == static_cast<std::size_t>(m));
  FSBB_ASSERT(rev.size() == static_cast<std::size_t>(m));
  std::fill(rev.begin(), rev.end(), fsp::Time{0});
  // Suffix jobs from the last position backwards == prefix of the
  // reversed problem.
  for (int pos = n - 1; pos >= n - node.tail; --pos) {
    const fsp::JobId job = node.perm[static_cast<std::size_t>(pos)];
    fsp::Time prev = 0;
    for (int rk = 0; rk < m; ++rk) {
      // Reversed machine rk corresponds to original machine m-1-rk.
      const fsp::Time start = std::max(prev, rev[static_cast<std::size_t>(rk)]);
      prev = start + inst.pt(job, m - 1 - rk);
      rev[static_cast<std::size_t>(rk)] = prev;
    }
  }
  for (int k = 0; k < m; ++k) {
    backs[static_cast<std::size_t>(k)] = rev[static_cast<std::size_t>(m - 1 - k)];
  }
}

/// Provider that finishes each machine couple with max(QM, B[l]) instead
/// of QM alone. It reuses the lb1_evaluate sweep by overriding qm().
class BidirProvider {
 public:
  BidirProvider(const fsp::LowerBoundData& d, std::span<const fsp::Time> backs)
      : d_(&d), backs_(backs) {}

  int jobs() const { return d_->jobs(); }
  int machines() const { return d_->machines(); }
  int pairs() const { return d_->pairs(); }
  fsp::JobId jm(int pair, int pos) const { return d_->jm(pair, pos); }
  fsp::Time lm(int job, int pair) const { return d_->lm(job, pair); }
  fsp::Time ptm(int job, int machine) const { return d_->ptm(job, machine); }
  fsp::Time rm(int machine) const { return d_->rm(machine); }
  fsp::Time qm(int machine) const {
    return std::max(d_->qm(machine),
                    backs_[static_cast<std::size_t>(machine)]);
  }
  int mm_k(int pair) const { return d_->mm(pair).k; }
  int mm_l(int pair) const { return d_->mm(pair).l; }

 private:
  const fsp::LowerBoundData* d_;
  std::span<const fsp::Time> backs_;
};

struct QueueEntry {
  BidirNode node;
  std::uint64_t seq;
};

struct WorseThan {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    if (a.node.lb != b.node.lb) return a.node.lb > b.node.lb;
    const int da = a.node.head + a.node.tail;
    const int db = b.node.head + b.node.tail;
    if (da != db) return da < db;
    return a.seq > b.seq;
  }
};

}  // namespace

BidirNode BidirNode::root(int jobs) {
  FSBB_CHECK(jobs >= 1);
  BidirNode r;
  r.perm.resize(static_cast<std::size_t>(jobs));
  for (int j = 0; j < jobs; ++j) {
    r.perm[static_cast<std::size_t>(j)] = static_cast<fsp::JobId>(j);
  }
  return r;
}

Time bidir_lower_bound(const fsp::Instance& inst,
                       const fsp::LowerBoundData& data, const BidirNode& node,
                       BidirScratch& scratch) {
  FSBB_CHECK(node.jobs() == inst.jobs());
  FSBB_CHECK(node.head >= 0 && node.tail >= 0 &&
             node.head + node.tail <= node.jobs());
  if (node.is_complete()) {
    return fsp::makespan(inst, node.perm);
  }

  const auto fronts = scratch.fronts();
  const auto backs = scratch.backs();
  fsp::compute_fronts(
      inst,
      std::span<const fsp::JobId>(node.perm.data(),
                                  static_cast<std::size_t>(node.head)),
      fronts);
  compute_backs(inst, node, backs, scratch.rev());

  const auto scheduled = scratch.scheduled();
  std::fill(scheduled.begin(), scheduled.end(), std::uint8_t{0});
  for (int i = 0; i < node.head; ++i) {
    scheduled[static_cast<std::size_t>(node.perm[static_cast<std::size_t>(i)])] = 1;
  }
  for (int i = node.jobs() - node.tail; i < node.jobs(); ++i) {
    scheduled[static_cast<std::size_t>(node.perm[static_cast<std::size_t>(i)])] = 1;
  }

  return fsp::lb1_evaluate(BidirProvider(data, backs), fronts, scheduled);
}

Time bidir_lower_bound(const fsp::Instance& inst,
                       const fsp::LowerBoundData& data,
                       const BidirNode& node) {
  BidirScratch scratch(inst.jobs(), inst.machines());
  return bidir_lower_bound(inst, data, node, scratch);
}

namespace {

fsp::Instance reverse_instance(const fsp::Instance& inst) {
  const auto n = static_cast<std::size_t>(inst.jobs());
  const auto m = static_cast<std::size_t>(inst.machines());
  Matrix<fsp::Time> pt(n, m);
  for (int j = 0; j < inst.jobs(); ++j) {
    for (int k = 0; k < inst.machines(); ++k) {
      pt(static_cast<std::size_t>(j), static_cast<std::size_t>(k)) =
          inst.pt(j, inst.machines() - 1 - k);
    }
  }
  return fsp::Instance(inst.name() + "-rev", std::move(pt));
}

void reverse_node_into(const BidirNode& node, BidirNode& rev) {
  rev.perm.assign(node.perm.rbegin(), node.perm.rend());
  rev.head = node.tail;
  rev.tail = node.head;
}

}  // namespace

BidirBounder::BidirBounder(const fsp::Instance& inst,
                           const fsp::LowerBoundData& data)
    : inst_(&inst), data_(&data), rev_inst_(reverse_instance(inst)),
      rev_data_(fsp::LowerBoundData::build(rev_inst_)),
      scratch_(inst.jobs(), inst.machines()) {}

Time BidirBounder::bound(const BidirNode& node) const {
  const Time forward = bidir_lower_bound(*inst_, *data_, node, scratch_);
  if (node.is_complete()) return forward;
  reverse_node_into(node, scratch_.rev_node());
  const Time backward =
      bidir_lower_bound(rev_inst_, rev_data_, scratch_.rev_node(), scratch_);
  return std::max(forward, backward);
}

BidirResult bidir_solve(const fsp::Instance& inst,
                        const fsp::LowerBoundData& data,
                        const BidirOptions& options) {
  const WallTimer timer;
  BidirResult result;
  const BidirBounder bounder(inst, data);

  Time ub;
  if (options.initial_ub.has_value()) {
    ub = *options.initial_ub;
  } else {
    fsp::NehResult neh = fsp::neh(inst);
    ub = neh.makespan;
    result.best_permutation = std::move(neh.permutation);
  }
  result.stats.initial_ub = ub;
  result.best_makespan = ub;

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, WorseThan> queue;
  std::uint64_t seq = 0;
  {
    BidirNode root = BidirNode::root(inst.jobs());
    const WallTimer bound_timer;
    root.lb = bounder.bound(root);
    result.stats.bounding_seconds += bound_timer.seconds();
    ++result.stats.evaluated;
    if (root.lb < ub) queue.push(QueueEntry{std::move(root), seq++});
  }

  bool stopped_early = false;
  while (!queue.empty()) {
    if (options.node_budget != 0 &&
        result.stats.branched >= options.node_budget) {
      stopped_early = true;
      break;
    }
    BidirNode node = queue.top().node;
    queue.pop();
    if (node.lb >= result.best_makespan) {
      ++result.stats.pruned;
      continue;
    }
    ++result.stats.branched;

    // Extend the end with fewer fixed jobs (balanced bidirectional rule).
    const bool extend_head = node.head <= node.tail;
    const int r = node.remaining();
    for (int i = 0; i < r; ++i) {
      BidirNode child = node;
      if (extend_head) {
        std::swap(child.perm[static_cast<std::size_t>(child.head)],
                  child.perm[static_cast<std::size_t>(child.head + i)]);
        ++child.head;
      } else {
        const int last_free = child.jobs() - child.tail - 1;
        std::swap(child.perm[static_cast<std::size_t>(last_free)],
                  child.perm[static_cast<std::size_t>(last_free - i)]);
        ++child.tail;
      }
      ++result.stats.generated;

      if (child.is_complete()) {
        ++result.stats.leaves;
        const Time ms = fsp::makespan(inst, child.perm);
        if (ms < result.best_makespan) {
          result.best_makespan = ms;
          result.best_permutation = child.perm;
          ++result.stats.ub_updates;
        }
        continue;
      }
      {
        const WallTimer bound_timer;
        child.lb = bounder.bound(child);
        result.stats.bounding_seconds += bound_timer.seconds();
      }
      ++result.stats.evaluated;
      if (child.lb < result.best_makespan) {
        queue.push(QueueEntry{std::move(child), seq++});
      } else {
        ++result.stats.pruned;
      }
    }
  }

  result.proven_optimal = !stopped_early && queue.empty();
  result.stats.wall_seconds = timer.seconds();
  return result;
}

}  // namespace fsbb::core
