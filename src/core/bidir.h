// Bidirectional branching — the classic strengthening of forward-only
// decomposition (Potts 1980) used by the follow-up works of the paper's
// group: a node fixes a prefix AND a suffix of the permutation, and
// branching extends whichever end currently has fewer fixed jobs. Fixing
// jobs at both ends tightens the bound from both directions, which prunes
// dramatically better on instances whose congestion sits late in the
// machine order.
//
// The node bound generalizes LB1: machine fronts F (from the prefix) and
// symmetric machine "backs" B (from the suffix, computed on the reversed
// instance) bracket the free middle jobs; each machine couple (k, l) runs
// the Johnson-with-lags relaxation from max(F, RM) and finishes with
// max(QM, B[l]) — every term a valid lower bound on the completion side
// it accounts for. Validity at every node is property-tested against
// exhaustive completion search.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/engine.h"
#include "fsp/instance.h"
#include "fsp/lb_data.h"

namespace fsbb::core {

/// A bidirectional node: perm = [fixed head][free middle][fixed tail].
struct BidirNode {
  std::vector<JobId> perm;
  std::int32_t head = 0;  ///< jobs fixed at the front: perm[0, head)
  std::int32_t tail = 0;  ///< jobs fixed at the back: perm[n - tail, n)
  Time lb = -1;

  int jobs() const { return static_cast<int>(perm.size()); }
  int remaining() const { return jobs() - head - tail; }
  bool is_complete() const { return remaining() == 0; }

  static BidirNode root(int jobs);
};

/// Reusable buffers for the bidirectional bound (fronts, backs, the
/// reversed-machine staging row and the scheduled mask), so per-node
/// bounding does not allocate — mirroring the lb1_from_prefix scratch
/// overload. One scratch serves both the forward and the reversed view
/// (same dimensions); not safe for concurrent use.
class BidirScratch {
 public:
  BidirScratch(int jobs, int machines)
      : fronts_(static_cast<std::size_t>(machines)),
        backs_(static_cast<std::size_t>(machines)),
        rev_(static_cast<std::size_t>(machines)),
        scheduled_(static_cast<std::size_t>(jobs)) {}

  std::span<Time> fronts() { return fronts_; }
  std::span<Time> backs() { return backs_; }
  std::span<Time> rev() { return rev_; }
  std::span<std::uint8_t> scheduled() { return scheduled_; }
  BidirNode& rev_node() { return rev_node_; }

 private:
  std::vector<Time> fronts_;
  std::vector<Time> backs_;
  std::vector<Time> rev_;
  std::vector<std::uint8_t> scheduled_;
  BidirNode rev_node_;
};

/// One-directional bound of a bidirectional node (see header comment):
/// LB1's machine-couple sweep bracketed by the prefix fronts and the
/// suffix backs. Exact (the makespan) for complete nodes. The tail side
/// only enters through max(QM, B[l]), which is coarse — the solver uses
/// BidirBounder, which also evaluates the reversed problem.
Time bidir_lower_bound(const fsp::Instance& inst,
                       const fsp::LowerBoundData& data, const BidirNode& node);

/// Same but with caller-provided scratch (no allocation).
Time bidir_lower_bound(const fsp::Instance& inst,
                       const fsp::LowerBoundData& data, const BidirNode& node,
                       BidirScratch& scratch);

/// Symmetric bound: max of the forward bound and the same bound on the
/// reversed instance (machines reversed, permutation reversed — makespans
/// are invariant under this transform). The reversed view sees the suffix
/// as a prefix, so tail-extended children get a first-class Johnson bound
/// instead of the coarse back term. This is what makes bidirectional
/// branching actually pay.
class BidirBounder {
 public:
  BidirBounder(const fsp::Instance& inst, const fsp::LowerBoundData& data);

  Time bound(const BidirNode& node) const;

  const fsp::Instance& reversed_instance() const { return rev_inst_; }

 private:
  const fsp::Instance* inst_;
  const fsp::LowerBoundData* data_;
  fsp::Instance rev_inst_;
  fsp::LowerBoundData rev_data_;
  /// Per-bounder buffers: bound() is logically const but reuses these, so
  /// a BidirBounder must not be shared across threads.
  mutable BidirScratch scratch_;
};

/// Options of the bidirectional solver.
struct BidirOptions {
  std::optional<Time> initial_ub;  ///< NEH if unset
  std::uint64_t node_budget = 0;   ///< 0 = solve to optimality
};

/// Result bundle (reuses the forward engine's stats shape).
struct BidirResult {
  Time best_makespan = 0;
  std::vector<JobId> best_permutation;
  bool proven_optimal = false;
  EngineStats stats;
};

/// Serial best-first bidirectional B&B.
BidirResult bidir_solve(const fsp::Instance& inst,
                        const fsp::LowerBoundData& data,
                        const BidirOptions& options = {});

}  // namespace fsbb::core
