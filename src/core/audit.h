// Debug-mode structural invariant auditors for the concurrent engines.
//
// Parallel B&B fails *silently*: a leaked arena slot, a double-released
// resident-pool ticket or a non-monotone incumbent stream does not change
// the reported optimum on small instances — it corrupts memory accounting
// or the event contract in ways that only surface at scale (Chakroun &
// Melab 2012, Gmys 2020 both call incumbent propagation and pool
// rebalancing out as the places parallel implementations diverge). The
// auditors here turn those structural invariants into loud CheckFailure
// throws with actionable messages:
//
//   * ArenaAudit      — every NodeArena slot is released exactly once
//                       (double frees throw at the releasing call site;
//                       leaks throw at end-of-solve drain), with the
//                       allocating lane in every message.
//   * TicketAudit     — resident-pool tickets issued == released, and the
//                       pool's own ShardOccupancy counters conserve
//                       (allocated == released per shard, spills == steals
//                       in total, issued + cross-device rebalance moves ==
//                       total allocated, zero live slots after drain).
//   * IncumbentAudit  — an observed incumbent stream is strictly
//                       improving (the SearchControl event contract and
//                       every engine's internal acceptance order).
//
// Auditing is compiled in unconditionally (the classes are unit-tested in
// every build) and *enabled* per process: the FSBB_AUDIT CMake option sets
// the compile-time default (ON in Debug builds), the FSBB_AUDIT
// environment variable ("0" disables, anything else enables) overrides it
// at load, and set_enabled()/ScopedEnable override it at runtime — which
// is how the differential-fuzz suites run audited in any build type.
// Engines snapshot enabled() once per solve; a disabled process pays one
// relaxed atomic load per solve and nothing on the hot path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "fsp/instance.h"

namespace fsbb::core {

struct ResidentPoolStats;

namespace audit {

/// Whether engines should attach auditors to this solve.
bool enabled();
/// Flips auditing process-wide (thread-safe; engines snapshot at solve
/// start, so a running solve keeps the mode it started with).
void set_enabled(bool on);

/// RAII enable/disable for tests: restores the previous mode on scope exit.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true);
  ~ScopedEnable();

  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

/// Audits the allocate/release lifecycle of NodeArena slots. Attach with
/// NodeArena::set_audit(); hooks are invoked from every lane (worker
/// thread), so the audit serializes behind its own mutex — a debug-mode
/// cost by design. Violations throw fsbb::CheckFailure immediately
/// (double release) or at check_drained() (leaks).
class ArenaAudit {
 public:
  /// `engine` labels every diagnostic ("cpu-steal", "bb-engine", ...).
  explicit ArenaAudit(std::string engine);

  /// Records slot `slot` as live. Throws if the slot is already live
  /// (the arena handed one slot out twice — a freelist corruption).
  void on_allocate(std::uint32_t slot, std::size_t lane);

  /// Records slot `slot` as released. Throws if the slot is not live
  /// (double release, or release of a never-allocated handle).
  void on_release(std::uint32_t slot, std::size_t lane);

  /// End-of-solve drain check: throws unless every allocated slot was
  /// released exactly once, naming the leak count, a sample slot and the
  /// lane that allocated it.
  void check_drained() const;

  std::uint64_t allocations() const;
  std::uint64_t releases() const;

 private:
  static constexpr std::uint32_t kFree = 0xFFFFFFFFu;

  const std::string engine_;
  mutable Mutex mu_;
  /// state_[slot]: kFree, or the lane that allocated it (live).
  std::vector<std::uint32_t> state_ FSBB_GUARDED_BY(mu_);
  std::uint64_t allocated_ FSBB_GUARDED_BY(mu_) = 0;
  std::uint64_t released_ FSBB_GUARDED_BY(mu_) = 0;
};

/// Audits resident-pool ticket conservation: every ticket the engine is
/// handed (non-null child tickets out of ResidentPool::iterate) must be
/// released exactly once, and at finish() the pool's own per-shard
/// counters must conserve.
class TicketAudit {
 public:
  explicit TicketAudit(std::string pool);

  /// Records a ticket handed to the engine. Throws if it is already
  /// outstanding (the pool issued one slot to two children).
  void on_issue(std::uint32_t ticket);

  /// Records a ticket released by the engine. Throws if it is not
  /// outstanding (double release, or release of a never-issued ticket).
  void on_release(std::uint32_t ticket);

  /// End-of-solve conservation check against the pool's ShardOccupancy
  /// counters (taken AFTER the engine released everything): zero
  /// outstanding tickets, zero live slots, allocated == released per
  /// shard, total spills == total steals, issued + rebalanced == total
  /// allocated (cross-device moves re-allocate a slot the engine's ticket
  /// never sees), refill totals consistent.
  void finish(const ResidentPoolStats& stats) const;

  std::uint64_t issued() const;
  std::uint64_t released() const;

 private:
  const std::string pool_;
  mutable Mutex mu_;
  std::vector<std::uint8_t> outstanding_ FSBB_GUARDED_BY(mu_);
  std::uint64_t issued_ FSBB_GUARDED_BY(mu_) = 0;
  std::uint64_t released_ FSBB_GUARDED_BY(mu_) = 0;
  std::uint64_t outstanding_count_ FSBB_GUARDED_BY(mu_) = 0;
};

/// Audits that a stream of accepted incumbents is strictly improving.
/// SearchControl attaches one to its (already gated) event stream; every
/// engine observes its own acceptance order — both must be strictly
/// decreasing or the incumbent propagation protocol is broken.
class IncumbentAudit {
 public:
  explicit IncumbentAudit(std::string stream);

  /// Throws unless `makespan` strictly improves on every value observed.
  void observe(fsp::Time makespan);

  std::uint64_t observed() const;

 private:
  const std::string stream_;
  mutable Mutex mu_;
  bool has_best_ FSBB_GUARDED_BY(mu_) = false;
  fsp::Time best_ FSBB_GUARDED_BY(mu_) = 0;
  std::uint64_t observed_ FSBB_GUARDED_BY(mu_) = 0;
};

}  // namespace audit
}  // namespace fsbb::core
